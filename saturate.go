package resilient

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"resilient/internal/msg"
	"resilient/internal/netxport"
)

// SaturationOptions configures a TCP saturation run: a loopback mesh pushed
// as hard as the transport allows, with no protocol logic on top. It is the
// live-path throughput probe behind `consensus-sim -engine tcp -saturate`
// and the CI bench-live lane.
type SaturationOptions struct {
	// N is the mesh size (default 7). Every endpoint sends concurrently,
	// round-robin over its n-1 peers -- the shape of a broadcast storm.
	N int
	// Messages is the total message budget across all senders (default
	// 200000).
	Messages int
	// Payload is the per-message payload size in bytes (default 0:
	// header-only frames, the protocols' common case).
	Payload int
	// TCP tunes the transport under test (linger, queue cap, direct mode).
	TCP TCPTuning
	// Metrics, when non-nil, receives the endpoints' "net." accounting.
	Metrics *MetricsRegistry
}

// SaturationReport is the outcome of one saturation run.
type SaturationReport struct {
	// Messages is the number of messages actually delivered end to end.
	Messages int
	// Bytes is the wire volume those messages occupied (length prefix and
	// instance header included).
	Bytes int64
	// Elapsed is the wall-clock duration from first send to last delivery.
	Elapsed time.Duration
	// MsgsPerSec and MBPerSec are the aggregate throughput headlines.
	MsgsPerSec float64
	MBPerSec   float64
}

func (r *SaturationReport) String() string {
	return fmt.Sprintf("%d msgs in %v: %.0f msgs/s, %.1f MB/s",
		r.Messages, r.Elapsed.Round(time.Millisecond), r.MsgsPerSec, r.MBPerSec)
}

// wireFrameLen is the on-the-wire size of one message: 4-byte length prefix,
// 4-byte instance id, msg encoding.
func wireFrameLen(m msg.Message) int64 { return int64(msg.EncodedLen(m)) + 8 }

// RunTCPSaturation floods a loopback TCP mesh with consensus-shaped frames
// and reports the aggregate throughput. The context bounds the run; on
// expiry the report covers what was delivered before the deadline, returned
// alongside the context's error.
func RunTCPSaturation(ctx context.Context, opts SaturationOptions) (*SaturationReport, error) {
	n := opts.N
	if n <= 0 {
		n = 7
	}
	if n < 2 {
		return nil, fmt.Errorf("resilient: saturation needs n >= 2, got %d", n)
	}
	total := opts.Messages
	if total <= 0 {
		total = 200000
	}
	if opts.Payload < 0 || opts.Payload > msg.MaxPayload {
		return nil, fmt.Errorf("resilient: payload %d outside [0, %d]", opts.Payload, msg.MaxPayload)
	}

	endpoints, err := tcpMeshEndpoints(n, opts.Metrics, opts.TCP)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, ep := range endpoints {
			ep.Close()
		}
	}()

	var payload []byte
	if opts.Payload > 0 {
		payload = make([]byte, opts.Payload)
	}
	proto := msg.Graph(0, 0, payload) // one representative message, reused
	if payload == nil {
		proto = msg.Val(0, 0, msg.V1)
	}

	var received atomic.Int64
	for _, ep := range endpoints {
		go func(ep *netxport.Endpoint) {
			for {
				if _, err := ep.Recv(); err != nil {
					return
				}
				received.Add(1)
			}
		}(ep)
	}

	// Split the budget across the n senders, remainder to the low ids.
	quota := make([]int, n)
	for i := 0; i < n; i++ {
		quota[i] = total / n
		if i < total%n {
			quota[i]++
		}
	}
	var sent atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			ep := endpoints[self]
			for k := 0; k < quota[self]; k++ {
				if k%1024 == 0 && ctx.Err() != nil {
					return
				}
				to := msg.ID((self + 1 + k%(n-1)) % n) // round-robin over peers
				if err := ep.Send(to, proto); err != nil {
					return
				}
				sent.Add(1)
			}
		}(i)
	}
	wg.Wait()

	// Drain: every sent frame must come out the other side.
	var ctxErr error
	for received.Load() < sent.Load() {
		if err := ctx.Err(); err != nil {
			ctxErr = fmt.Errorf("resilient: saturation drained %d/%d before deadline: %w",
				received.Load(), sent.Load(), err)
			break
		}
		runtime.Gosched()
	}
	elapsed := time.Since(start)

	delivered := int(received.Load())
	rep := &SaturationReport{
		Messages: delivered,
		Bytes:    int64(delivered) * wireFrameLen(proto),
		Elapsed:  elapsed,
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.MsgsPerSec = float64(delivered) / secs
		rep.MBPerSec = float64(rep.Bytes) / secs / 1e6
	}
	if ctxErr == nil && delivered < total {
		ctxErr = fmt.Errorf("resilient: saturation sent %d/%d before cancellation: %w",
			delivered, total, ctx.Err())
	}
	return rep, ctxErr
}
