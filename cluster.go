package resilient

import (
	"context"
	"fmt"
	"time"

	"resilient/internal/core"
	"resilient/internal/livenet"
	"resilient/internal/msg"
	"resilient/internal/netxport"
	"resilient/internal/proto"
	"resilient/internal/transport"
)

// ClusterReport summarizes a live cluster run; see the livenet package.
type ClusterReport = livenet.Report

// ClusterDecision is one process's decision in a live run.
type ClusterDecision = livenet.Decision

// TCPTuning tunes the loopback TCP transport behind EngineTCP runs. The
// zero value keeps the transport defaults (coalescing on, 50µs linger,
// 1 MiB per-peer queue).
type TCPTuning struct {
	// Linger is the write-coalescing window: how long a waking writer lets
	// a burst accumulate before flushing it in one syscall (0 = default).
	Linger time.Duration
	// QueueCap is the per-peer pending-buffer cap in bytes; beyond it sends
	// block until the writer drains (0 = default).
	QueueCap int
	// NoCoalesce selects the one-write-per-frame direct path -- the
	// pre-coalescing transport's cost profile, kept for comparison.
	NoCoalesce bool
}

func (t TCPTuning) apply(ep *netxport.Endpoint) {
	if t.Linger > 0 {
		ep.SetLinger(t.Linger)
	}
	if t.QueueCap > 0 {
		ep.SetQueueCap(t.QueueCap)
	}
	ep.SetCoalescing(!t.NoCoalesce)
}

// ClusterOption configures a live cluster run.
type ClusterOption func(*clusterOptions)

type clusterOptions struct {
	metrics *MetricsRegistry
	tcp     TCPTuning
	coin    CoinScheme
}

// WithClusterMetrics attaches a metrics registry to a live run: the
// goroutine engine records under "livenet." and (for TCP runs) the
// endpoints under "net.".
func WithClusterMetrics(reg *MetricsRegistry) ClusterOption {
	return func(o *clusterOptions) { o.metrics = reg }
}

// WithTCPTuning tunes the TCP transport of a RunTCPCluster run; other
// cluster runners ignore it.
func WithTCPTuning(t TCPTuning) ClusterOption {
	return func(o *clusterOptions) { o.tcp = t }
}

// WithCoinScheme overrides the coin scheme of randomized protocols for a
// cluster run (see SimOptions.Coin).
func WithCoinScheme(c CoinScheme) ClusterOption {
	return func(o *clusterOptions) { o.coin = c }
}

func applyClusterOptions(opts []ClusterOption) clusterOptions {
	var o clusterOptions
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// buildMachines constructs one honest machine per process. Local coins get
// a distinct per-process seed derived from the run seed; the shared coin
// gets the run seed itself, so every process flips the same sequence.
func buildMachines(p Protocol, n, k int, inputs []Value, seed uint64, override CoinScheme) ([]core.Machine, error) {
	if len(inputs) != n {
		return nil, fmt.Errorf("resilient: %d inputs for %d processes", len(inputs), n)
	}
	d, ok := proto.Lookup(p)
	if !ok {
		return nil, fmt.Errorf("resilient: unknown protocol %d", int(p))
	}
	scheme, err := d.ResolveCoin(override)
	if err != nil {
		return nil, fmt.Errorf("resilient: %w", err)
	}
	machines := make([]core.Machine, n)
	for i := 0; i < n; i++ {
		cfg := MachineConfig{N: n, K: k, Self: ID(i), Input: inputs[i], Coin: override}
		switch scheme {
		case CoinLocal:
			cfg.CoinSeed = seed ^ uint64(i+1)*0x9e3779b97f4a7c15
		case CoinShared:
			cfg.CoinSeed = seed
		}
		m, err := NewMachine(p, cfg)
		if err != nil {
			return nil, fmt.Errorf("resilient: build p%d: %w", i, err)
		}
		machines[i] = m
	}
	return machines, nil
}

// RunCluster executes the protocol live: one goroutine per process over an
// in-memory message system, until every process decides or ctx expires.
func RunCluster(ctx context.Context, p Protocol, n, k int, inputs []Value, opts ...ClusterOption) (*ClusterReport, error) {
	o := applyClusterOptions(opts)
	machines, err := buildMachines(p, n, k, inputs, 1, o.coin)
	if err != nil {
		return nil, err
	}
	cluster, err := livenet.NewMemCluster(machines)
	if err != nil {
		return nil, err
	}
	cluster.Metrics = o.metrics
	return cluster.Run(ctx)
}

// tcpMeshEndpoints starts n loopback TCP endpoints on ephemeral ports and
// wires them into a full mesh: everyone listens first, then the discovered
// addresses are exchanged. On error, every endpoint opened so far is closed.
func tcpMeshEndpoints(n int, reg *MetricsRegistry, tune TCPTuning) ([]*netxport.Endpoint, error) {
	endpoints := make([]*netxport.Endpoint, n)
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	for i := 0; i < n; i++ {
		ep, err := netxport.Listen(msg.ID(i), addrs)
		if err != nil {
			for j := 0; j < i; j++ {
				endpoints[j].Close()
			}
			return nil, err
		}
		ep.SetMetrics(reg)
		tune.apply(ep)
		endpoints[i] = ep
	}
	final := make([]string, n)
	for i, ep := range endpoints {
		final[i] = ep.Addr()
	}
	for _, ep := range endpoints {
		for j, a := range final {
			ep.SetPeerAddr(msg.ID(j), a)
		}
	}
	return endpoints, nil
}

// tcpMeshConns is tcpMeshEndpoints as transport.Conn values.
func tcpMeshConns(n int, reg *MetricsRegistry, tune TCPTuning) ([]transport.Conn, error) {
	endpoints, err := tcpMeshEndpoints(n, reg, tune)
	if err != nil {
		return nil, err
	}
	conns := make([]transport.Conn, n)
	for i, ep := range endpoints {
		conns[i] = ep
	}
	return conns, nil
}

// RunTCPCluster executes the protocol live over loopback TCP: every process
// gets its own listening socket and a full mesh of connections. It is the
// deployment-shaped demonstration; for experiments use Simulate.
func RunTCPCluster(ctx context.Context, p Protocol, n, k int, inputs []Value, opts ...ClusterOption) (*ClusterReport, error) {
	o := applyClusterOptions(opts)
	machines, err := buildMachines(p, n, k, inputs, 1, o.coin)
	if err != nil {
		return nil, err
	}
	conns, err := tcpMeshConns(n, o.metrics, o.tcp)
	if err != nil {
		return nil, err
	}
	cluster, err := livenet.NewCluster(machines, conns)
	if err != nil {
		for _, c := range conns {
			c.Close()
		}
		return nil, err
	}
	cluster.Metrics = o.metrics
	return cluster.Run(ctx)
}
