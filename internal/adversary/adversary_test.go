package adversary

import (
	"math/rand/v2"
	"testing"

	"resilient/internal/msg"
	"resilient/internal/sched"
)

func rng() *rand.Rand { return rand.New(rand.NewPCG(1, 2)) }

func TestHalves(t *testing.T) {
	g := Halves(3)
	for id := msg.ID(0); id < 3; id++ {
		if g(id) != 0 {
			t.Errorf("p%d in group %d, want 0", id, g(id))
		}
	}
	for id := msg.ID(3); id < 6; id++ {
		if g(id) != 1 {
			t.Errorf("p%d in group %d, want 1", id, g(id))
		}
	}
}

func TestOverlap(t *testing.T) {
	g := Overlap(2, 4)
	want := []int{0, 0, 2, 2, 1, 1}
	for id, w := range want {
		if got := g(msg.ID(id)); got != w {
			t.Errorf("p%d in group %d, want %d", id, got, w)
		}
	}
}

func TestPartitionDelaysCrossTraffic(t *testing.T) {
	p := Partition{GroupOf: Halves(2)}
	r := rng()
	in := p.Delay(0, 1, msg.Message{}, 0, r)
	cross := p.Delay(0, 3, msg.Message{}, 0, r)
	if in >= CrossDelay {
		t.Errorf("in-group delay %v includes the cross penalty", in)
	}
	if cross < CrossDelay {
		t.Errorf("cross delay %v below CrossDelay", cross)
	}
}

func TestPartitionNilGroupIsTransparent(t *testing.T) {
	p := Partition{}
	if d := p.Delay(0, 5, msg.Message{}, 0, rng()); d >= CrossDelay {
		t.Errorf("nil GroupOf delayed: %v", d)
	}
}

func TestPartitionCustomBase(t *testing.T) {
	p := Partition{GroupOf: Halves(2), Base: sched.Constant{D: 7}}
	if d := p.Delay(0, 1, msg.Message{}, 0, rng()); d != 7 {
		t.Errorf("base not used: %v", d)
	}
	if d := p.Delay(0, 3, msg.Message{}, 0, rng()); d != 7+CrossDelay {
		t.Errorf("cross with base: %v", d)
	}
}

func TestBridgeCoalitionTalksToBothSides(t *testing.T) {
	b := Bridge{GroupOf: Overlap(2, 4)}
	r := rng()
	// Coalition (group 2) to either side: fast.
	if d := b.Delay(2, 0, msg.Message{}, 0, r); d >= CrossDelay {
		t.Errorf("coalition->S delayed: %v", d)
	}
	if d := b.Delay(3, 5, msg.Message{}, 0, r); d >= CrossDelay {
		t.Errorf("coalition->T delayed: %v", d)
	}
	if d := b.Delay(0, 2, msg.Message{}, 0, r); d >= CrossDelay {
		t.Errorf("S->coalition delayed: %v", d)
	}
	// S-only to T-only: delayed, both directions.
	if d := b.Delay(0, 5, msg.Message{}, 0, r); d < CrossDelay {
		t.Errorf("S->T not delayed: %v", d)
	}
	if d := b.Delay(5, 1, msg.Message{}, 0, r); d < CrossDelay {
		t.Errorf("T->S not delayed: %v", d)
	}
}

func TestBridgeNilGroupIsTransparent(t *testing.T) {
	b := Bridge{}
	if d := b.Delay(0, 5, msg.Message{}, 0, rng()); d >= CrossDelay {
		t.Errorf("nil GroupOf delayed: %v", d)
	}
}
