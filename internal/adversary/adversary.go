// Package adversary provides the scripted schedulers used by the
// lower-bound experiments (Theorem 1 and Theorem 3 of the paper).
//
// The impossibility proofs construct executions in which two groups of
// processes run disjoint schedules: messages inside a group flow normally
// while messages crossing the boundary are delayed indefinitely -- legal in
// a completely asynchronous system, where "messages can be delayed
// arbitrarily long" (Section 1). Combined with a fault budget that equals or
// exceeds the n/2 (fail-stop) or n/3 (malicious) bound, each group is large
// enough to decide on its own, and the two groups can be driven to opposite
// decisions.
package adversary

import (
	"math/rand/v2"

	"resilient/internal/msg"
	"resilient/internal/sched"
)

// CrossDelay is the delay applied to messages crossing a partition: far
// beyond any experiment horizon yet finite, so the execution prefix we
// observe is a legal prefix of a run in which every message is eventually
// delivered (the message system stays reliable, as the model requires).
const CrossDelay = 1e9

// Partition is a scheduler that delivers messages quickly inside groups and
// delays messages across group boundaries by CrossDelay.
type Partition struct {
	// GroupOf assigns each process to a group.
	GroupOf func(msg.ID) int
	// Base supplies in-group delays; defaults to Uniform[0.1, 1].
	Base sched.Scheduler
}

var _ sched.Scheduler = Partition{}

// Delay implements sched.Scheduler.
func (p Partition) Delay(from, to msg.ID, m msg.Message, now float64, rng *rand.Rand) float64 {
	base := p.Base
	if base == nil {
		base = sched.Uniform{Min: 0.1, Max: 1}
	}
	d := base.Delay(from, to, m, now, rng)
	if p.GroupOf != nil && p.GroupOf(from) != p.GroupOf(to) {
		return d + CrossDelay
	}
	return d
}

// Halves returns a GroupOf function splitting processes into [0, boundary)
// and [boundary, n).
func Halves(boundary msg.ID) func(msg.ID) int {
	return func(id msg.ID) int {
		if id < boundary {
			return 0
		}
		return 1
	}
}

// Overlap returns a GroupOf function for the Theorem 3 construction with
// sets S = [0, sEnd) and T = [tStart, n): processes in the intersection
// [tStart, sEnd) -- the malicious coalition -- belong to *both* groups, so
// their messages are never delayed and they can talk to both sides.
// Group assignment: S-only processes are group 0, T-only processes group 1,
// and coalition members group 2 which Bridge treats as adjacent to both.
func Overlap(tStart, sEnd msg.ID) func(msg.ID) int {
	return func(id msg.ID) int {
		switch {
		case id < tStart:
			return 0 // S only
		case id < sEnd:
			return 2 // coalition: in both S and T
		default:
			return 1 // T only
		}
	}
}

// Bridge is a scheduler for overlapping groups: messages are delayed only
// between group 0 and group 1; group 2 (the coalition) communicates freely
// with everyone.
type Bridge struct {
	GroupOf func(msg.ID) int
	Base    sched.Scheduler
}

var _ sched.Scheduler = Bridge{}

// Delay implements sched.Scheduler.
func (b Bridge) Delay(from, to msg.ID, m msg.Message, now float64, rng *rand.Rand) float64 {
	base := b.Base
	if base == nil {
		base = sched.Uniform{Min: 0.1, Max: 1}
	}
	d := base.Delay(from, to, m, now, rng)
	if b.GroupOf == nil {
		return d
	}
	gf, gt := b.GroupOf(from), b.GroupOf(to)
	if (gf == 0 && gt == 1) || (gf == 1 && gt == 0) {
		return d + CrossDelay
	}
	return d
}
