package experiments

import (
	"fmt"

	"resilient/internal/adversary"
	"resilient/internal/byzantine"
	"resilient/internal/core"
	"resilient/internal/failstop"
	"resilient/internal/malicious"
	"resilient/internal/msg"
	"resilient/internal/quorum"
	"resilient/internal/runtime"
	"resilient/internal/trace"
)

// E5 demonstrates the lower bounds (Theorems 1 and 3) empirically.
//
// The theorems say no protocol can be floor(n/2)-resilient (fail-stop) or
// floor(n/3)-resilient (malicious): any protocol that keeps deciding in the
// proofs' split executions must disagree, and any protocol that refuses to
// disagree must stop deciding. Both horns are exhibited:
//
//   - A "greedy" strawman protocol that stays live with k = n/2 (it decides
//     as soon as its n-k received values are unanimous) is driven to
//     DISAGREEMENT by the sigma_0/sigma_1 partition schedule of Theorem 1,
//     and by the two-faced coalition of Theorem 3 at n = 3k.
//   - The paper's own protocols, configured beyond their bounds, convert
//     the same attacks into a liveness loss: their strictly-more-than-
//     (n+k)/2 thresholds become unreachable from n-k messages, so they
//     stall rather than split. Safety is never violated.
//
// A control row shows the greedy protocol under the same partition but with
// k within the bound: the minority side just waits and no disagreement is
// possible.
func E5(p Params) ([]*Table, error) {
	t := &Table{
		ID:     "E5",
		Title:  "lower-bound executions: liveness or safety must fail beyond the bounds",
		Source: "Theorem 1 and Theorem 3 proof constructions",
		Header: []string{"scenario", "protocol", "n", "k", "outcome", "agreement kept"},
	}

	addRow := func(scenario, protocol string, n, k int, res *runtime.Result) {
		t.AddRow(scenario, protocol, fmt.Sprintf("%d", n), fmt.Sprintf("%d", k),
			describeOutcome(res), fmt.Sprintf("%v", res.Agreement))
	}

	// --- Theorem 1: n = 2k, clean partition, halves with opposite inputs. ---
	n1, k1 := 6, 3
	spawnGreedy := func(ctx runtime.SpawnContext) (core.Machine, error) {
		return newGreedy(ctx.Config, ctx.Sink), nil
	}
	resGreedy, err := runPartitioned(n1, k1, msg.ID(n1/2), spawnGreedy, p.Seed)
	if err != nil {
		return nil, fmt.Errorf("E5 thm1 greedy: %w", err)
	}
	addRow("Thm 1: n=2k, partition", "greedy strawman (live at k=n/2)", n1, k1, resGreedy)
	if resGreedy.Agreement {
		t.AddNote("UNEXPECTED: the Theorem 1 construction failed to split the greedy protocol")
	}

	resFig1, err := runPartitioned(n1, k1, msg.ID(n1/2), func(ctx runtime.SpawnContext) (core.Machine, error) {
		return failstop.NewUnsafe(ctx.Config, ctx.Sink), nil
	}, p.Seed+1)
	if err != nil {
		return nil, fmt.Errorf("E5 thm1 fig1: %w", err)
	}
	addRow("Thm 1: n=2k, partition", "Figure 1 (unsafe k=n/2)", n1, k1, resFig1)
	if !resFig1.Agreement {
		t.AddNote("UNEXPECTED: Figure 1 violated safety at n=2k")
	}

	// --- Control: greedy under the same partition, k within the bound. ---
	nc, kc := 7, 3
	resCtl, err := runPartitioned(nc, kc, msg.ID(4), spawnGreedy, p.Seed+2)
	if err != nil {
		return nil, fmt.Errorf("E5 control: %w", err)
	}
	addRow("control: k=floor((n-1)/2), partition", "greedy strawman", nc, kc, resCtl)
	if !resCtl.Agreement {
		t.AddNote("UNEXPECTED: control row disagreed within the bound")
	}

	// --- Theorem 3: n = 3k, two-faced coalition bridging the partition. ---
	// S-only = {0, 1}, coalition = {2, 3}, T-only = {4, 5}.
	n3, k3 := 6, 2
	coalition := map[msg.ID]bool{2: true, 3: true}
	bridge := adversary.Bridge{GroupOf: adversary.Overlap(2, 4)}
	spawnTwoFacedGreedy := func(ctx runtime.SpawnContext) (core.Machine, error) {
		inner := newGreedy(ctx.Config, ctx.Sink)
		if !ctx.Byzantine {
			return inner, nil
		}
		return byzantine.NewTwoFaced(inner, ctx.Config.N, msg.ID(4)), nil
	}
	res3, err := runtime.Run(runtime.Config{
		N: n3, K: k3, Inputs: splitInputs(n3, 4),
		Spawn:      spawnTwoFacedGreedy,
		Byzantine:  coalition,
		Scheduler:  bridge,
		Seed:       p.Seed + 3,
		MaxSimTime: 1000,
	})
	if err != nil {
		return nil, fmt.Errorf("E5 thm3 greedy: %w", err)
	}
	addRow("Thm 3: n=3k, two-faced coalition", "greedy strawman", n3, k3, res3)
	if res3.Agreement {
		t.AddNote("UNEXPECTED: the Theorem 3 construction failed to split the greedy protocol")
	}

	resFig2, err := runtime.Run(runtime.Config{
		N: n3, K: k3, Inputs: splitInputs(n3, 4),
		Spawn: func(ctx runtime.SpawnContext) (core.Machine, error) {
			inner := malicious.NewUnsafe(ctx.Config, ctx.Sink)
			if !ctx.Byzantine {
				return inner, nil
			}
			return byzantine.NewTwoFaced(inner, ctx.Config.N, msg.ID(4)), nil
		},
		Byzantine:  coalition,
		Scheduler:  bridge,
		Seed:       p.Seed + 4,
		MaxSimTime: 1000,
	})
	if err != nil {
		return nil, fmt.Errorf("E5 thm3 fig2: %w", err)
	}
	addRow("Thm 3: n=3k, two-faced coalition", "Figure 2 (echo, unsafe k=n/3)", n3, k3, resFig2)
	if !resFig2.Agreement {
		t.AddNote("UNEXPECTED: Figure 2's echo mechanism allowed disagreement")
	}

	t.AddNote("greedy rows beyond the bounds must disagree; the paper's protocols instead stall (their decide thresholds exceed the n-k messages available), keeping safety")
	t.AddNote("the control row keeps agreement: with k within the bound the minority partition cannot assemble a deciding view")
	return []*Table{t}, nil
}

// runPartitioned runs a protocol under a clean partition at `boundary` with
// all-0 inputs on one side and all-1 on the other.
func runPartitioned(n, k int, boundary msg.ID, spawn runtime.Spawner, seed uint64) (*runtime.Result, error) {
	return runtime.Run(runtime.Config{
		N: n, K: k, Inputs: splitInputs(n, int(boundary)),
		Spawn:      spawn,
		Scheduler:  adversary.Partition{GroupOf: adversary.Halves(boundary)},
		Seed:       seed,
		MaxSimTime: 1000,
	})
}

func splitInputs(n, boundary int) []msg.Value {
	in := make([]msg.Value, n)
	for i := range in {
		if i >= boundary {
			in[i] = msg.V1
		}
	}
	return in
}

func describeOutcome(res *runtime.Result) string {
	switch {
	case !res.Agreement:
		return fmt.Sprintf("DISAGREEMENT (%d decided)", res.DecidedCount())
	case res.AllDecided:
		return fmt.Sprintf("all decided %d", res.Value)
	case res.DecidedCount() > 0:
		return fmt.Sprintf("partial: %d decided %d, rest stalled (%v)",
			res.DecidedCount(), res.Value, res.Stalled)
	default:
		return fmt.Sprintf("stalled (%v), nobody decided", res.Stalled)
	}
}

// greedy is the strawman protocol of the lower-bound demonstrations: each
// phase it broadcasts its value, waits for n-k values, adopts the majority,
// and decides as soon as the n-k values it received are unanimous. That
// decision rule keeps it live inside a partition of size n-k -- which is
// exactly what Theorems 1 and 3 prove must cost it safety.
type greedy struct {
	cfg  core.Config
	sink trace.Sink

	value    msg.Value
	phase    msg.Phase
	msgCount [2]int
	counted  map[msg.ID]bool
	pending  map[msg.Phase][]msg.Message

	started  bool
	decided  bool
	decision msg.Value
}

var _ core.Machine = (*greedy)(nil)

func newGreedy(cfg core.Config, sink trace.Sink) *greedy {
	if sink == nil {
		sink = trace.Nop{}
	}
	return &greedy{
		cfg:     cfg,
		sink:    sink,
		value:   cfg.Input,
		counted: make(map[msg.ID]bool),
		pending: make(map[msg.Phase][]msg.Message),
	}
}

func (g *greedy) ID() msg.ID                 { return g.cfg.Self }
func (g *greedy) Phase() msg.Phase           { return g.phase }
func (g *greedy) Decided() (msg.Value, bool) { return g.decision, g.decided }
func (g *greedy) Halted() bool               { return false }
func (g *greedy) CurrentValue() msg.Value    { return g.value }
func (g *greedy) Start() []core.Outbound {
	if g.started {
		return nil
	}
	g.started = true
	return []core.Outbound{core.ToAll(msg.Val(g.cfg.Self, g.phase, g.value))}
}

func (g *greedy) OnMessage(in msg.Message) []core.Outbound {
	if !g.started {
		return nil
	}
	switch in.Kind {
	case msg.KindValue:
		// The only kind the greedy baseline speaks.
	case msg.KindState, msg.KindInitial, msg.KindEcho, msg.KindBenOrReport,
		msg.KindBenOrProposal, msg.KindGraph, msg.KindGossip, msg.KindReady:
		return nil // explicitly ignored: other protocols' wire kinds
	default:
		return nil
	}
	if !in.Value.Valid() {
		return nil
	}
	var out []core.Outbound
	queue := []msg.Message{in}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		switch {
		case cur.Phase < g.phase:
			continue
		case cur.Phase > g.phase:
			g.pending[cur.Phase] = append(g.pending[cur.Phase], cur)
			continue
		}
		if g.counted[cur.From] {
			continue
		}
		g.counted[cur.From] = true
		g.msgCount[cur.Value]++
		if g.msgCount[0]+g.msgCount[1] < quorum.WaitCount(g.cfg.N, g.cfg.K) {
			continue
		}
		// Phase end: unanimous view decides; otherwise adopt the majority.
		if !g.decided {
			switch {
			case g.msgCount[0] == 0:
				g.decided, g.decision, g.value = true, msg.V1, msg.V1
			case g.msgCount[1] == 0:
				g.decided, g.decision, g.value = true, msg.V0, msg.V0
			case g.msgCount[1] > g.msgCount[0]:
				g.value = msg.V1
			default:
				g.value = msg.V0
			}
			if g.decided {
				g.sink.Record(trace.Event{
					Kind: trace.EventDecide, Process: g.cfg.Self,
					Phase: g.phase, Value: g.decision,
				})
			}
		}
		g.msgCount = [2]int{}
		clear(g.counted)
		g.phase++
		out = append(out, core.ToAll(msg.Val(g.cfg.Self, g.phase, g.value)))
		if buf := g.pending[g.phase]; len(buf) > 0 {
			queue = append(queue, buf...)
			delete(g.pending, g.phase)
		}
	}
	return out
}
