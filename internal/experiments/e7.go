package experiments

import (
	"fmt"

	"resilient/internal/msg"
	"resilient/internal/runtime"
	"resilient/internal/stats"
	"resilient/internal/sweep"
)

// E7 verifies the Section 3.3 note: "if k < n/5, once a correct process
// decides, all the other processes also decide within one phase." We run
// Figure 2 with k Byzantine balancers in both regimes -- k < n/5 and
// n/5 <= k <= (n-1)/3 -- and measure the spread between the first and last
// correct decision phases.
func E7(p Params) ([]*Table, error) {
	t := &Table{
		ID:     "E7",
		Title:  "Figure 2 decision-phase spread: k < n/5 propagates within one phase",
		Source: "Section 3.3 closing note",
		Header: []string{"n", "k", "regime", "mean spread", "max spread", "spread <= 1"},
	}
	configs := []struct {
		n, k int
	}{
		{11, 2}, // 5k = 10 < 11: fast regime
		{16, 3}, // 5k = 15 < 16: fast regime
		{10, 3}, // 5k = 15 >= 10: slow regime allowed to exceed 1
	}
	if p.Quick {
		configs = configs[:2]
	}
	for row, cfg := range configs {
		trials := p.trials()
		spreads, err := sweep.Run(trials, p.workers(), func(tr int) (int, error) {
			seed := p.seedFor(row, tr)
			inputs := randomInputs(cfg.n, seed)
			byz := make(map[msg.ID]bool, cfg.k)
			for i := 0; i < cfg.k; i++ {
				byz[msg.ID(cfg.n-1-i)] = true
			}
			res, err := runtime.Run(runtime.Config{
				N: cfg.n, K: cfg.k, Inputs: inputs,
				Spawn:     byzSpawner("balancer"),
				Byzantine: byz,
				Seed:      seed,
				MaxEvents: 50_000_000,
			})
			if err != nil {
				return 0, fmt.Errorf("E7 n=%d k=%d trial %d: %w", cfg.n, cfg.k, tr, err)
			}
			if !res.AllDecided {
				return 0, fmt.Errorf("E7 n=%d k=%d trial %d: stalled (%v)", cfg.n, cfg.k, tr, res.Stalled)
			}
			return phaseSpread(res), nil
		})
		if err != nil {
			return nil, err
		}
		var spreadAcc stats.Accumulator
		maxSpread := 0
		for _, s := range spreads {
			spreadAcc.Add(float64(s))
			if s > maxSpread {
				maxSpread = s
			}
		}
		regime := "k < n/5 (fast)"
		if 5*cfg.k >= cfg.n {
			regime = "k >= n/5"
		}
		t.AddRow(
			fmt.Sprintf("%d", cfg.n), fmt.Sprintf("%d", cfg.k), regime,
			f2(spreadAcc.Mean()), fmt.Sprintf("%d", maxSpread),
			fmt.Sprintf("%v", maxSpread <= 1),
		)
	}
	t.AddNote("paper: with k < n/5, once one correct process decides all others decide within one phase -- the fast-regime rows must show max spread <= 1")
	return []*Table{t}, nil
}

func phaseSpread(res *runtime.Result) int {
	first := true
	lo, hi := 0, 0
	for _, ph := range res.DecisionPhase {
		v := int(ph)
		if first {
			lo, hi = v, v
			first = false
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}
