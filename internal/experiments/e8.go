package experiments

import (
	"fmt"

	"resilient/internal/benor"
	"resilient/internal/core"
	"resilient/internal/failstop"
	"resilient/internal/quorum"
	"resilient/internal/runtime"
	"resilient/internal/stats"
	"resilient/internal/sweep"
)

// E8 reproduces the Section 6 comparison with [BenO83]: Ben-Or's protocol
// puts the randomness in the processes (a local coin) and pays an expected
// termination time that grows exponentially with n when k = Theta(n),
// whereas the Bracha-Toueg protocols lean on the message system's
// randomness and stay flat. Both protocols run in the same engine with the
// same fault budget k = floor((n-1)/2) and random inputs.
func E8(p Params) ([]*Table, error) {
	t := &Table{
		ID:     "E8",
		Title:  "Ben-Or [BenO83] vs Figure 1: rounds/phases to full decision, k = floor((n-1)/2)",
		Source: "Section 6 (and [BenO83])",
		Header: []string{"n", "k", "Ben-Or rounds ±95%", "Ben-Or max", "Fig 1 phases ±95%", "Fig 1 max"},
	}
	sizes := []int{5, 7, 9, 11, 13}
	if p.Quick {
		sizes = []int{5, 7}
	}
	var benorMeans []float64
	for row, n := range sizes {
		k := quorum.MaxFaults(n, quorum.FailStop)
		trials := p.trials()
		if trials > 150 {
			trials = 150 // Ben-Or's exponential tail dominates runtime
		}
		type trial struct {
			rounds, phases int
		}
		results, err := sweep.Run(trials, p.workers(), func(tr int) (trial, error) {
			seed := p.seedFor(row, tr)
			inputs := randomInputs(n, seed)
			resB, err := runtime.Run(runtime.Config{
				N: n, K: k, Inputs: inputs,
				Spawn: func(ctx runtime.SpawnContext) (core.Machine, error) {
					return benor.New(ctx.Config, benor.Crash, ctx.RNG, ctx.Sink)
				},
				Seed:      seed,
				MaxEvents: 50_000_000,
			})
			if err != nil {
				return trial{}, fmt.Errorf("E8 benor n=%d trial %d: %w", n, tr, err)
			}
			if !resB.AllDecided {
				return trial{}, fmt.Errorf("E8 benor n=%d trial %d: stalled (%v)", n, tr, resB.Stalled)
			}
			resF, err := runtime.Run(runtime.Config{
				N: n, K: k, Inputs: inputs,
				Spawn: func(ctx runtime.SpawnContext) (core.Machine, error) {
					return failstop.New(ctx.Config, ctx.Sink)
				},
				Seed: seed,
			})
			if err != nil {
				return trial{}, fmt.Errorf("E8 fig1 n=%d trial %d: %w", n, tr, err)
			}
			if !resF.AllDecided {
				return trial{}, fmt.Errorf("E8 fig1 n=%d trial %d: stalled (%v)", n, tr, resF.Stalled)
			}
			return trial{rounds: maxDecisionPhase(resB), phases: maxDecisionPhase(resF)}, nil
		})
		if err != nil {
			return nil, err
		}
		var bo, f1 stats.Accumulator
		boMax, f1Max := 0, 0
		for _, r := range results {
			bo.Add(float64(r.rounds))
			if r.rounds > boMax {
				boMax = r.rounds
			}
			f1.Add(float64(r.phases))
			if r.phases > f1Max {
				f1Max = r.phases
			}
		}
		benorMeans = append(benorMeans, bo.Mean())
		t.AddRow(
			fmt.Sprintf("%d", n), fmt.Sprintf("%d", k),
			fmt.Sprintf("%s ± %s", f2(bo.Mean()), f2(bo.CI95())),
			fmt.Sprintf("%d", boMax),
			fmt.Sprintf("%s ± %s", f2(f1.Mean()), f2(f1.CI95())),
			fmt.Sprintf("%d", f1Max),
		)
	}
	growing := len(benorMeans) >= 2 && benorMeans[len(benorMeans)-1] > benorMeans[0]
	t.AddNote(fmt.Sprintf("paper: Ben-Or's expected time is exponential for k = Theta(n) while the message-system-randomized protocols stay flat; Ben-Or column growing: %v", growing))
	t.AddNote("resilience: Ben-Or's malicious variant needs 5k < n, Figure 2 only 3k < n -- the paper's other advantage")
	return []*Table{t}, nil
}
