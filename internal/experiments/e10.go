package experiments

import (
	"fmt"

	"resilient/internal/bivalence"
	"resilient/internal/core"
	"resilient/internal/faults"
	"resilient/internal/msg"
	"resilient/internal/runtime"
	"resilient/internal/sweep"
)

// E10 exercises the Section 5 discussion of bivalence interpretations: the
// footnote's protocol for initially-dead faults satisfies the paper's weak
// interpretation -- both decision values are reachable when all processes
// are correct (the decision is a bivalent function, the parity, of the
// inputs), while any fault pins the decision to 0 -- and it overcomes ANY
// number of initially-dead processes, far beyond the floor((n-1)/2) bound
// that strong bivalence imposes.
func E10(p Params) ([]*Table, error) {
	t := &Table{
		ID:     "E10",
		Title:  "Section 5 weak-bivalence protocol under initially-dead faults",
		Source: "Section 5 and its footnote (the G+ construction)",
		Header: []string{"n", "dead", "inputs", "terminated", "agreement", "decision"},
	}
	spawn := func(ctx runtime.SpawnContext) (core.Machine, error) {
		return bivalence.New(ctx.Config, ctx.Sink)
	}
	type scenario struct {
		n      int
		dead   []msg.ID
		inputs []msg.Value
		want   string // expected decision as a string, "" = any
	}
	scenarios := []scenario{
		{5, nil, []msg.Value{0, 0, 0, 0, 0}, "0"},
		{5, nil, []msg.Value{1, 0, 0, 0, 0}, "1"},
		{5, nil, []msg.Value{1, 1, 0, 0, 0}, "0"},
		{5, nil, []msg.Value{1, 1, 1, 1, 1}, "1"},
		{6, []msg.ID{5}, []msg.Value{1, 1, 1, 1, 1, 1}, "0"},
		{6, []msg.ID{3, 4, 5}, []msg.Value{1, 1, 1, 1, 1, 1}, "0"},
		{6, []msg.ID{1, 2, 3, 4, 5}, []msg.Value{1, 1, 1, 1, 1, 1}, "0"},
	}
	if p.Quick {
		scenarios = scenarios[:4]
	}
	for row, sc := range scenarios {
		trials := max(p.trials()/10, 5)
		k := len(sc.dead)
		if k == 0 {
			// K = 0: wait for everyone; the graph is complete.
			k = 0
		}
		type e10Trial struct {
			term, agree bool
			decision    string
		}
		results, err := sweep.Run(trials, p.workers(), func(tr int) (e10Trial, error) {
			res, err := runtime.Run(runtime.Config{
				N: sc.n, K: k, Inputs: sc.inputs,
				Spawn:   spawn,
				Crashes: faults.InitiallyDead(sc.dead...),
				Seed:    p.seedFor(row, tr),
			})
			if err != nil {
				return e10Trial{}, fmt.Errorf("E10 row %d trial %d: %w", row, tr, err)
			}
			out := e10Trial{
				term:  res.AllDecided && res.Stalled == runtime.NotStalled,
				agree: res.Agreement,
			}
			if res.DecidedCount() > 0 {
				out.decision = fmt.Sprintf("%d", res.Value)
				if sc.want != "" && out.decision != sc.want {
					out.decision += " (want " + sc.want + ") UNEXPECTED"
				}
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		term, agree := 0, 0
		decision := "-"
		for _, r := range results {
			if r.term {
				term++
			}
			if r.agree {
				agree++
			}
			if r.decision != "" {
				decision = r.decision
			}
		}
		t.AddRow(
			fmt.Sprintf("%d", sc.n),
			fmt.Sprintf("%d", len(sc.dead)),
			inputsString(sc.inputs),
			pct(float64(term)/float64(trials)),
			pct(float64(agree)/float64(trials)),
			decision,
		)
	}
	t.AddNote("all-correct rows decide the parity of the inputs: flipping one input flips the decision (weak bivalence)")
	t.AddNote("any initial death pins the decision to 0 -- the fixed decision permitted under faults -- including n-1 dead processes, beyond any strong-bivalence bound")
	return []*Table{t}, nil
}

func inputsString(in []msg.Value) string {
	b := make([]byte, len(in))
	for i, v := range in {
		b[i] = '0' + byte(v)
	}
	return string(b)
}
