package experiments

import (
	"fmt"

	"resilient/internal/core"
	"resilient/internal/failstop"
	"resilient/internal/malicious"
	"resilient/internal/msg"
	"resilient/internal/quorum"
	"resilient/internal/runtime"
	"resilient/internal/stats"
	"resilient/internal/sweep"
)

// E6 reproduces the "approximation of the majority" notes closing Sections
// 2.3 and 3.3: both protocols decide a value that tracks the majority of
// the initial inputs, and when strictly more than (n+k)/2 processes share
// an input the decision is that value within three phases (Figure 1) or two
// phases (Figure 2).
func E6(p Params) ([]*Table, error) {
	tables := make([]*Table, 0, 2)
	type proto struct {
		id, title string
		n, k      int
		phaseCap  int // the paper's phase bound for supermajority inputs
		spawn     runtime.Spawner
	}
	protos := []proto{
		{
			id: "E6a", title: "Figure 1: decision vs initial 1-count", n: 9, k: 4, phaseCap: 3,
			spawn: func(ctx runtime.SpawnContext) (core.Machine, error) {
				return failstop.New(ctx.Config, ctx.Sink)
			},
		},
		{
			id: "E6b", title: "Figure 2: decision vs initial 1-count", n: 10, k: 3, phaseCap: 2,
			spawn: func(ctx runtime.SpawnContext) (core.Machine, error) {
				return malicious.New(ctx.Config, ctx.Sink)
			},
		},
	}
	for pi, pr := range protos {
		t := &Table{
			ID:     pr.id,
			Title:  fmt.Sprintf("%s (n=%d, k=%d, no faults)", pr.title, pr.n, pr.k),
			Source: "Sections 2.3 and 3.3 closing notes",
			Header: []string{"initial 1s", "P(decide 1)", "phases ±95%", "max phases", "supermajority"},
		}
		superCut := quorum.SupermajorityInput(pr.n, pr.k)
		ones := []int{0, 2, pr.n / 2, pr.n - 2, pr.n}
		if !p.Quick {
			ones = nil
			for m := 0; m <= pr.n; m++ {
				ones = append(ones, m)
			}
		}
		violations := 0
		for _, m := range ones {
			trials := p.trials()
			type trial struct {
				one    bool
				phases int
			}
			results, err := sweep.Run(trials, p.workers(), func(tr int) (trial, error) {
				seed := p.seedFor(pi*100+m, tr)
				inputs := make([]msg.Value, pr.n)
				for i := 0; i < m; i++ {
					inputs[i] = msg.V1
				}
				res, err := runtime.Run(runtime.Config{
					N: pr.n, K: pr.k, Inputs: inputs,
					Spawn: pr.spawn, Seed: seed,
				})
				if err != nil {
					return trial{}, fmt.Errorf("%s m=%d trial %d: %w", pr.id, m, tr, err)
				}
				if !res.AllDecided || !res.Agreement {
					return trial{}, fmt.Errorf("%s m=%d trial %d: run failed (%v)", pr.id, m, tr, res.Stalled)
				}
				return trial{one: res.Value == msg.V1, phases: maxDecisionPhase(res)}, nil
			})
			if err != nil {
				return nil, err
			}
			var phases stats.Accumulator
			decide1 := 0
			maxPhases := 0
			for _, r := range results {
				if r.one {
					decide1++
				}
				phases.Add(float64(r.phases))
				if r.phases > maxPhases {
					maxPhases = r.phases
				}
			}
			super := ""
			isSuper := m >= superCut || pr.n-m >= superCut
			if isSuper {
				super = fmt.Sprintf("yes (cap %d)", pr.phaseCap)
				if maxPhases > pr.phaseCap {
					violations++
					super += " VIOLATED"
				}
			}
			t.AddRow(
				fmt.Sprintf("%d/%d", m, pr.n),
				pct(float64(decide1)/float64(trials)),
				fmt.Sprintf("%s ± %s", f2(phases.Mean()), f2(phases.CI95())),
				fmt.Sprintf("%d", maxPhases),
				super,
			)
		}
		t.AddNote("P(decide 1) must rise monotonically (in distribution) with the initial 1-count: the decision 'is still likely to be equal to the majority of the initial input values'")
		if violations == 0 {
			t.AddNote(fmt.Sprintf("supermajority inputs (> (n+k)/2 = %d equal values) always decided within %d phases, as the paper claims", superCut-1, pr.phaseCap))
		} else {
			t.AddNote(fmt.Sprintf("UNEXPECTED: %d supermajority rows exceeded the paper's %d-phase cap", violations, pr.phaseCap))
		}
		tables = append(tables, t)
	}
	return tables, nil
}
