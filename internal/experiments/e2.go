package experiments

import (
	"fmt"
	"math/rand/v2"

	"resilient/internal/markov"
	"resilient/internal/mc"
	"resilient/internal/stats"
	"resilient/internal/sweep"
)

// E2 reproduces the Section 4.2 malicious-case analysis.
//
// Table E2a: for k = l*sqrt(n)/2 balancing adversaries, the expected phases
// to absorption from the balanced state is bounded by 1/(2*Phi(l)) in the
// paper's collapsed model. We report the bound, the exact chain solution
// under both adversary-delivery models, and Monte-Carlo measurements.
//
// Table E2b: the "constant for k = o(sqrt(n))" claim -- with fixed k the
// absorption time stays flat as n grows.
func E2(p Params) ([]*Table, error) {
	ta := &Table{
		ID:     "E2a",
		Title:  "malicious chain: expected phases to absorption, k = l*sqrt(n)/2 balancing adversaries (n = 100)",
		Source: "Section 4.2, eqs. (1)-(2)",
		Header: []string{"l", "k", "bound 1/(2*Phi(l))", "exact (forced)", "exact (mixed)", "MC forced ±95%", "MC mixed ±95%"},
	}
	n := 100
	ls := []float64{0.5, 1.0, 1.5, 2.0}
	if p.Quick {
		ls = []float64{1.0, 2.0}
	}
	for row, l := range ls {
		k := markov.KForL(n, l)
		if k < 1 {
			k = 1
		}
		bound := markov.MaliciousBound(markov.LForK(n, k))
		exactForced, err := (markov.Malicious{N: n, K: k, Forced: true}).ExpectedFromBalanced()
		if err != nil {
			return nil, fmt.Errorf("E2a l=%v: %w", l, err)
		}
		exactMixed, err := (markov.Malicious{N: n, K: k, Forced: false}).ExpectedFromBalanced()
		if err != nil {
			return nil, fmt.Errorf("E2a l=%v: %w", l, err)
		}
		mcF, err := e2MC(&mc.Malicious{N: n, K: k, Model: mc.Forced, Metrics: p.Metrics}, p, 300+row)
		if err != nil {
			return nil, err
		}
		mcM, err := e2MC(&mc.Malicious{N: n, K: k, Model: mc.Mixed, Metrics: p.Metrics}, p, 400+row)
		if err != nil {
			return nil, err
		}
		ta.AddRow(
			f2(markov.LForK(n, k)), fmt.Sprintf("%d", k),
			f3(bound), f3(exactForced), f3(exactMixed),
			fmt.Sprintf("%s ± %s", f3(mcF.Mean()), f3(mcF.CI95())),
			fmt.Sprintf("%s ± %s", f3(mcM.Mean()), f3(mcM.CI95())),
		)
	}
	ta.AddNote("paper: expected transitions to absorption bounded by 1/(2*Phi(l)) in the collapsed model")
	ta.AddNote("the exact chain resolves the full state space, so moderate deviations from the 2-state bound are expected; the shape (growth with l) must match")

	tb := &Table{
		ID:     "E2b",
		Title:  "malicious chain: k = o(sqrt(n)) gives constant absorption time (k = 2 fixed)",
		Source: "Section 4.2, closing remark",
		Header: []string{"n", "k", "exact (forced)", "MC forced ±95%"},
	}
	sizes := []int{64, 144, 256, 400}
	if p.Quick {
		sizes = []int{64, 144}
	}
	for row, nn := range sizes {
		k := 2
		exact, err := (markov.Malicious{N: nn, K: k, Forced: true}).ExpectedFromBalanced()
		if err != nil {
			return nil, fmt.Errorf("E2b n=%d: %w", nn, err)
		}
		est, err := e2MC(&mc.Malicious{N: nn, K: k, Model: mc.Forced, Metrics: p.Metrics}, p, 500+row)
		if err != nil {
			return nil, err
		}
		tb.AddRow(fmt.Sprintf("%d", nn), fmt.Sprintf("%d", k), f3(exact),
			fmt.Sprintf("%s ± %s", f3(est.Mean()), f3(est.CI95())))
	}
	tb.AddNote("paper: for k = o(sqrt(n)) the expected absorption time is constant; the column must stay flat as n grows")
	return []*Table{ta, tb}, nil
}

func e2MC(chain *mc.Malicious, p Params, rowSeed int) (*stats.Accumulator, error) {
	phases, err := sweep.Run(p.trials(), p.workers(), func(tr int) (int, error) {
		rng := rand.New(rand.NewPCG(p.seedFor(rowSeed, tr), 11))
		return chain.AbsorptionRun(chain.Correct()/2, rng, 0)
	})
	if err != nil {
		return nil, fmt.Errorf("E2 MC n=%d k=%d: %w", chain.N, chain.K, err)
	}
	var acc stats.Accumulator
	for _, ph := range phases {
		acc.Add(float64(ph))
	}
	return &acc, nil
}
