package experiments

import (
	"fmt"

	"resilient/internal/core"
	"resilient/internal/failstop"
	"resilient/internal/malicious"
	"resilient/internal/quorum"
	"resilient/internal/runtime"
	"resilient/internal/stats"
	"resilient/internal/sweep"
)

// E9 measures the price of Byzantine tolerance in messages: Figure 1 sends
// O(n^2) messages per phase (one broadcast per process) while Figure 2's
// echo mechanism sends O(n^3) (every process echoes every initial to
// everyone). The normalized columns msgs/(phases*n^2) and msgs/(phases*n^3)
// must stay roughly flat as n grows.
func E9(p Params) ([]*Table, error) {
	t := &Table{
		ID:     "E9",
		Title:  "message complexity: Figure 1 (O(n^2)/phase) vs Figure 2 (O(n^3)/phase)",
		Source: "Figures 1 and 2 (protocol structure)",
		Header: []string{"n", "k", "Fig1 msgs", "Fig1 msgs/(ph*n^2)", "Fig2 msgs", "Fig2 msgs/(ph*n^3)", "Fig2/Fig1"},
	}
	sizes := []int{4, 7, 10, 13, 16}
	if p.Quick {
		sizes = []int{4, 7}
	}
	for row, n := range sizes {
		k := quorum.MaxFaults(n, quorum.Malicious)
		trials := max(p.trials()/4, 10)
		type e9Trial struct {
			msgs1, msgs2   float64
			ratio1, ratio2 float64
		}
		results, err := sweep.Run(trials, p.workers(), func(tr int) (e9Trial, error) {
			seed := p.seedFor(row, tr)
			inputs := randomInputs(n, seed)
			resA, err := runtime.Run(runtime.Config{
				N: n, K: k, Inputs: inputs,
				Spawn: func(ctx runtime.SpawnContext) (core.Machine, error) {
					return failstop.New(ctx.Config, ctx.Sink)
				},
				Seed: seed,
			})
			if err != nil {
				return e9Trial{}, fmt.Errorf("E9 fig1 n=%d: %w", n, err)
			}
			resB, err := runtime.Run(runtime.Config{
				N: n, K: k, Inputs: inputs,
				Spawn: func(ctx runtime.SpawnContext) (core.Machine, error) {
					return malicious.New(ctx.Config, ctx.Sink)
				},
				Seed: seed,
			})
			if err != nil {
				return e9Trial{}, fmt.Errorf("E9 fig2 n=%d: %w", n, err)
			}
			ph1 := float64(max(maxDecisionPhase(resA), 1))
			ph2 := float64(max(maxDecisionPhase(resB), 1))
			return e9Trial{
				msgs1:  float64(resA.MessagesSent),
				msgs2:  float64(resB.MessagesSent),
				ratio1: float64(resA.MessagesSent) / (ph1 * float64(n) * float64(n)),
				ratio2: float64(resB.MessagesSent) / (ph2 * float64(n) * float64(n) * float64(n)),
			}, nil
		})
		if err != nil {
			return nil, err
		}
		var m1, m2, r1, r2 stats.Accumulator
		for _, res := range results {
			m1.Add(res.msgs1)
			m2.Add(res.msgs2)
			r1.Add(res.ratio1)
			r2.Add(res.ratio2)
		}
		ratio := "-"
		if m1.Mean() > 0 {
			ratio = f2(m2.Mean() / m1.Mean())
		}
		t.AddRow(
			fmt.Sprintf("%d", n), fmt.Sprintf("%d", k),
			f2(m1.Mean()), f3(r1.Mean()),
			f2(m2.Mean()), f3(r2.Mean()),
			ratio,
		)
	}
	t.AddNote("both normalized columns must stay O(1) as n grows; the Fig2/Fig1 ratio grows ~linearly in n -- the cost of echo-based equivocation defence")
	return []*Table{t}, nil
}
