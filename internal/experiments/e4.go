package experiments

import (
	"fmt"

	"resilient/internal/byzantine"
	"resilient/internal/core"
	"resilient/internal/malicious"
	"resilient/internal/msg"
	"resilient/internal/runtime"
	"resilient/internal/stats"
	"resilient/internal/sweep"
)

// byzSpawner builds a runtime spawner with the named strategy on the last
// |byz| processes and honest Figure-2 machines elsewhere.
func byzSpawner(strategy string) runtime.Spawner {
	mixedOrder := []string{"balancer", "equivocator", "silent", "flipper", "liar", "double-echo"}
	return func(ctx runtime.SpawnContext) (core.Machine, error) {
		if !ctx.Byzantine {
			return malicious.New(ctx.Config, ctx.Sink)
		}
		if strategy == "mixed" {
			// Heterogeneous coalition: each adversary plays a different
			// strategy, assigned by id.
			strategy = mixedOrder[int(ctx.Config.Self)%len(mixedOrder)]
		}
		if strategy == "silent" {
			return byzantine.NewSilent(ctx.Config.Self), nil
		}
		inner := malicious.NewUnsafe(ctx.Config, ctx.Sink)
		switch strategy {
		case "balancer":
			return byzantine.NewBalancer(inner, ctx.World), nil
		case "equivocator":
			return byzantine.NewEquivocator(inner, ctx.Config.N), nil
		case "liar":
			return byzantine.NewFixedLiar(inner, msg.V1), nil
		case "flipper":
			return byzantine.NewFlipper(inner, ctx.RNG), nil
		case "double-echo":
			return byzantine.NewDoubleEchoer(inner), nil
		default:
			return nil, fmt.Errorf("unknown strategy %q", strategy)
		}
	}
}

// E4 verifies Theorem 4: the Figure 2 protocol is k-resilient for the
// malicious case, k <= floor((n-1)/3), against a battery of Byzantine
// strategies including the omniscient balancer. Termination, agreement and
// validity must be 100% in every row.
func E4(p Params) ([]*Table, error) {
	strategies := []string{"silent", "balancer", "equivocator", "liar", "flipper", "double-echo", "mixed"}
	sizes := [][2]int{{7, 2}, {10, 3}, {13, 4}}
	if p.Quick {
		sizes = [][2]int{{7, 2}}
		strategies = []string{"silent", "balancer", "equivocator"}
	}

	t := &Table{
		ID:     "E4",
		Title:  "Figure 2 (malicious) under Byzantine strategies at the floor((n-1)/3) bound",
		Source: "Theorem 4",
		Header: []string{"n", "k", "strategy", "terminated", "agreement", "validity", "phases ±95%"},
	}
	// One scoped view for every trial: resolving it per trial was the
	// in-loop handle lookup the metricshandle lint rule now rejects.
	scoped := p.Metrics.Scoped("malicious.")
	row := 0
	for _, nk := range sizes {
		n, k := nk[0], nk[1]
		for _, strat := range strategies {
			trials := p.trials()
			// The omniscient balancer at the exact bound has a long tail;
			// keep trial counts moderate there.
			if strat == "balancer" && !p.Quick {
				trials = min(trials, 100)
				if n >= 13 {
					trials = min(trials, 40)
				}
			}
			byz := make(map[msg.ID]bool, k)
			for i := 0; i < k; i++ {
				byz[msg.ID(n-1-i)] = true
			}
			type trial struct {
				term, agree, valid bool
				phases             float64
			}
			results, err := sweep.Run(trials, p.workers(), func(tr int) (trial, error) {
				seed := p.seedFor(row, tr)
				inputs := randomInputs(n, seed)
				res, err := runtime.Run(runtime.Config{
					N: n, K: k, Inputs: inputs,
					Spawn:     byzSpawner(strat),
					Byzantine: byz,
					Seed:      seed,
					MaxEvents: 50_000_000,
					Metrics:   scoped,
				})
				if err != nil {
					return trial{}, fmt.Errorf("E4 %s n=%d trial %d: %w", strat, n, tr, err)
				}
				return trial{
					term:   res.AllDecided && res.Stalled == runtime.NotStalled,
					agree:  res.Agreement,
					valid:  byzValidityHolds(inputs, byz, res),
					phases: float64(maxDecisionPhase(res)),
				}, nil
			})
			if err != nil {
				return nil, err
			}
			var phases stats.Accumulator
			term, agree, valid := 0, 0, 0
			for _, r := range results {
				if r.term {
					term++
				}
				if r.agree {
					agree++
				}
				if r.valid {
					valid++
				}
				phases.Add(r.phases)
			}
			t.AddRow(
				fmt.Sprintf("%d", n), fmt.Sprintf("%d", k), strat,
				pct(float64(term)/float64(trials)),
				pct(float64(agree)/float64(trials)),
				pct(float64(valid)/float64(trials)),
				fmt.Sprintf("%s ± %s", f2(phases.Mean()), f2(phases.CI95())),
			)
			row++
		}
	}
	t.AddNote("paper: Figure 2 is k-resilient for k <= floor((n-1)/3) malicious processes")
	t.AddNote("validity: unanimous inputs among correct processes force that decision (the k liars cannot override a supermajority)")
	return []*Table{t}, nil
}

// byzValidityHolds checks validity with Byzantine faults: if every CORRECT
// process started with v and more than (n+k)/2 processes are correct with
// input v (always true at unanimity, since n-k > (n+k)/2), decisions must
// equal v.
func byzValidityHolds(inputs []msg.Value, byz map[msg.ID]bool, res *runtime.Result) bool {
	var v msg.Value
	first := true
	for i, in := range inputs {
		if byz[msg.ID(i)] {
			continue
		}
		if first {
			v = in
			first = false
			continue
		}
		if in != v {
			return true // not unanimous: nothing to check
		}
	}
	for _, d := range res.Decisions {
		if d != v {
			return false
		}
	}
	return true
}
