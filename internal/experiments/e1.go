package experiments

import (
	"fmt"
	"math/rand/v2"

	"resilient/internal/core"
	"resilient/internal/majority"
	"resilient/internal/markov"
	"resilient/internal/mc"
	"resilient/internal/metrics"
	"resilient/internal/msg"
	"resilient/internal/quorum"
	"resilient/internal/runtime"
	"resilient/internal/stats"
	"resilient/internal/sweep"
)

// E1 reproduces the Section 4.1 fail-stop analysis.
//
// Table E1a compares, for k = n/3 (the paper's parametrization), the exact
// expected absorption time of the Markov chain P from the balanced state
// against the paper's collapsed 3-state bound (eq. 13) and a Monte-Carlo
// measurement under the Section 4 view model. The paper's headline -- the
// bound is below 7 phases for every n -- must hold in every row.
//
// Table E1b measures the protocol-level quantity: phases until every
// process has decided in the majority variant, via Monte Carlo (large n)
// and via the full message-level engine (small n).
func E1(p Params) ([]*Table, error) {
	sizes := []int{30, 60, 90, 150, 300}
	if p.Quick {
		sizes = []int{30, 60}
	}

	ta := &Table{
		ID:     "E1a",
		Title:  "fail-stop chain: expected phases to absorption from the balanced state (k = n/3)",
		Source: "Section 4.1, eqs. (1)-(13)",
		Header: []string{"n", "k", "exact E[T]", "MC E[T] ±95%", "P[T > 7]", "bound eq.(13)", "bound < 7"},
	}
	for row, n := range sizes {
		k := n / 3
		chain := markov.FailStop{N: n, K: k}
		exact, err := chain.ExpectedFromBalanced()
		if err != nil {
			return nil, fmt.Errorf("E1a n=%d: %w", n, err)
		}
		mcChain := mc.FailStop{N: n, K: k, Metrics: p.Metrics}
		phases, err := sweep.Run(p.trials(), p.workers(), func(tr int) (int, error) {
			rng := rand.New(rand.NewPCG(p.seedFor(row, tr), 7))
			return mcChain.AbsorptionRun(n/2, rng, 0)
		})
		if err != nil {
			return nil, fmt.Errorf("E1a n=%d: %w", n, err)
		}
		var acc stats.Accumulator
		for _, ph := range phases {
			acc.Add(float64(ph))
		}
		bound := markov.CollapsedBound(n, markov.DefaultL)
		tail, err := chain.TailFromBalanced(7)
		if err != nil {
			return nil, fmt.Errorf("E1a tail n=%d: %w", n, err)
		}
		ta.AddRow(
			fmt.Sprintf("%d", n), fmt.Sprintf("%d", k),
			f3(exact),
			fmt.Sprintf("%s ± %s", f3(acc.Mean()), f3(acc.CI95())),
			fmt.Sprintf("%.2e", tail[7]),
			f3(bound),
			fmt.Sprintf("%v", bound < 7),
		)
	}
	ta.AddNote("paper: expected phases from the balanced state < 7 for l^2 = 1.5, any n")
	ta.AddNote("P[T > 7] is the exact probability of exceeding the paper's bound: the run-length distribution, not just its mean, sits far inside it")
	ta.AddNote("exact E[T] solves N = (I-Q)^-1 on the full chain; the eq.(13) bound must dominate it")

	tb := &Table{
		ID:     "E1b",
		Title:  "majority variant: phases until every process decides (balanced inputs)",
		Source: "Section 4.1 protocol, decision threshold > (n+k)/2",
		Header: []string{"n", "k", "MC phases ±95%", "engine phases ±95%", "engine agreement"},
	}
	engineSizes := map[int]bool{30: true}
	if p.Quick {
		engineSizes = map[int]bool{30: true}
	}
	for row, n := range sizes {
		k := quorum.MaxFaults(n, quorum.Malicious) // 3k < n for reachability
		mcChain := mc.FailStop{N: n, K: k, Metrics: p.Metrics}
		mcPhases, err := sweep.Run(p.trials(), p.workers(), func(tr int) (int, error) {
			rng := rand.New(rand.NewPCG(p.seedFor(100+row, tr), 7))
			phases, _, err := mcChain.DecisionRun(n/2, rng, 0)
			return phases, err
		})
		if err != nil {
			return nil, fmt.Errorf("E1b n=%d: %w", n, err)
		}
		var mcAcc stats.Accumulator
		for _, ph := range mcPhases {
			mcAcc.Add(float64(ph))
		}
		engCell, agreeCell := "-", "-"
		if engineSizes[n] {
			engTrials := p.trials() / 5
			if engTrials < 5 {
				engTrials = 5
			}
			type engTrial struct {
				agree  bool
				phases float64
			}
			engResults, err := sweep.Run(engTrials, p.workers(), func(tr int) (engTrial, error) {
				res, err := runEngineMajority(n, k, p.seedFor(200+row, tr), p.Metrics)
				if err != nil {
					return engTrial{}, fmt.Errorf("E1b engine n=%d trial %d: %w", n, tr, err)
				}
				return engTrial{agree: res.Agreement, phases: float64(maxDecisionPhase(res))}, nil
			})
			if err != nil {
				return nil, err
			}
			var engAcc stats.Accumulator
			agree := 0
			for _, r := range engResults {
				if r.agree {
					agree++
				}
				engAcc.Add(r.phases)
			}
			engCell = fmt.Sprintf("%s ± %s", f3(engAcc.Mean()), f3(engAcc.CI95()))
			agreeCell = pct(float64(agree) / float64(engTrials))
		}
		tb.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", k),
			fmt.Sprintf("%s ± %s", f3(mcAcc.Mean()), f3(mcAcc.CI95())),
			engCell, agreeCell)
	}
	tb.AddNote("MC uses the Section 4 uniform-view model; the engine measures the full message-level protocol")
	return []*Table{ta, tb}, nil
}

func runEngineMajority(n, k int, seed uint64, reg *metrics.Registry) (*runtime.Result, error) {
	inputs := make([]msg.Value, n)
	for i := range inputs {
		inputs[i] = msg.Value(i % 2)
	}
	return runtime.Run(runtime.Config{
		N: n, K: k, Inputs: inputs,
		Spawn: func(ctx runtime.SpawnContext) (core.Machine, error) {
			return majority.New(ctx.Config, ctx.Sink)
		},
		Seed:    seed,
		Metrics: reg.Scoped("majority."),
	})
}

func maxDecisionPhase(res *runtime.Result) int {
	max := 0
	for _, ph := range res.DecisionPhase {
		if int(ph) > max {
			//lint:allow maprange max fold is order-insensitive
			max = int(ph)
		}
	}
	return max
}
