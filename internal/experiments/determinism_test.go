package experiments

import (
	"bytes"
	"testing"
)

// renderAll runs every experiment under p and renders every table to one
// byte string -- the campaign's complete observable output.
func renderAll(t *testing.T, p Params) string {
	t.Helper()
	var buf bytes.Buffer
	for _, e := range All() {
		tables, err := e.Run(p)
		if err != nil {
			t.Fatalf("%s (workers=%d): %v", e.ID, p.Workers, err)
		}
		for _, tb := range tables {
			tb.Format(&buf)
		}
	}
	return buf.String()
}

// TestExperimentsDeterministicAcrossWorkers is the campaign-level
// determinism regression: every experiment table must be byte-identical for
// workers = 1, 4 and 16, and across two runs at the same worker count.
// Parallelism buys wall-clock time, never different numbers.
func TestExperimentsDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full campaign four times")
	}
	p := Params{Trials: 8, Seed: 3, Quick: true, Workers: 1}
	base := renderAll(t, p)
	if base == "" {
		t.Fatal("empty campaign output")
	}
	for _, w := range []int{1, 4, 16} {
		pw := p
		pw.Workers = w
		if got := renderAll(t, pw); got != base {
			t.Errorf("workers=%d changed experiment output:\n%s\n-- want --\n%s", w, got, base)
		}
	}
}
