package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every experiment at reduced scale and checks
// the structural invariants each table asserts via notes.
func TestAllExperimentsQuick(t *testing.T) {
	p := QuickParams()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(p)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Errorf("%s table %s has no rows", e.ID, tb.ID)
				}
				for _, n := range tb.Notes {
					if strings.Contains(n, "UNEXPECTED") {
						t.Errorf("%s table %s flags: %s", e.ID, tb.ID, n)
					}
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Header) {
						t.Errorf("%s table %s: row width %d != header %d",
							e.ID, tb.ID, len(row), len(tb.Header))
					}
					for _, cell := range row {
						if strings.Contains(cell, "UNEXPECTED") || strings.Contains(cell, "VIOLATED") {
							t.Errorf("%s table %s: bad cell %q", e.ID, tb.ID, cell)
						}
					}
				}
				var buf bytes.Buffer
				tb.Format(&buf)
				if buf.Len() == 0 {
					t.Errorf("%s table %s renders empty", e.ID, tb.ID)
				}
				buf.Reset()
				tb.Markdown(&buf)
				if !strings.Contains(buf.String(), "|") {
					t.Errorf("%s table %s markdown missing pipes", e.ID, tb.ID)
				}
			}
		})
	}
}

// TestE3AllRowsPerfect asserts the resilience sweep's core claim: 100%
// termination, agreement and validity in every row.
func TestE3AllRowsPerfect(t *testing.T) {
	tables, err := E3(Params{Trials: 40, Seed: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		for col := 3; col <= 5; col++ {
			if row[col] != "100.0%" {
				t.Errorf("row %v: column %d = %s, want 100.0%%", row[:3], col, row[col])
			}
		}
	}
}

// TestE4AllRowsPerfect does the same for the Byzantine sweep.
func TestE4AllRowsPerfect(t *testing.T) {
	tables, err := E4(Params{Trials: 20, Seed: 5, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		for col := 3; col <= 5; col++ {
			if row[col] != "100.0%" {
				t.Errorf("row %v: column %d = %s, want 100.0%%", row[:3], col, row[col])
			}
		}
	}
}

// TestE5Outcomes pins the lower-bound table's qualitative outcomes.
func TestE5Outcomes(t *testing.T) {
	tables, err := E5(Params{Trials: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5", len(rows))
	}
	// Row 0: greedy at n=2k must disagree.
	if !strings.Contains(rows[0][4], "DISAGREEMENT") {
		t.Errorf("thm1 greedy row: %v", rows[0])
	}
	// Row 1: Figure 1 must keep agreement.
	if rows[1][5] != "true" {
		t.Errorf("fig1 row lost agreement: %v", rows[1])
	}
	// Row 2: control keeps agreement.
	if rows[2][5] != "true" {
		t.Errorf("control row: %v", rows[2])
	}
	// Row 3: greedy vs two-faced coalition must disagree.
	if !strings.Contains(rows[3][4], "DISAGREEMENT") {
		t.Errorf("thm3 greedy row: %v", rows[3])
	}
	// Row 4: Figure 2 keeps agreement.
	if rows[4][5] != "true" {
		t.Errorf("fig2 row: %v", rows[4])
	}
}

func TestByIDAndParams(t *testing.T) {
	if _, ok := ByID("e5"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("unknown id found")
	}
	p := Params{}
	if p.trials() <= 0 {
		t.Error("default trials not positive")
	}
	if p.seedFor(1, 2) == p.seedFor(2, 1) {
		t.Error("seed derivation collides trivially")
	}
}

func TestTableRenderingGolden(t *testing.T) {
	tb := &Table{
		ID:     "EX",
		Title:  "demo",
		Source: "nowhere",
		Header: []string{"a", "bb"},
		Notes:  []string{"a note"},
	}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")

	var text bytes.Buffer
	tb.Format(&text)
	wantText := "EX — demo\n" +
		"    (reproduces nowhere)\n" +
		"  a    bb\n" +
		"  --------\n" +
		"  1    2\n" +
		"  333  4\n" +
		"  note: a note\n\n"
	if text.String() != wantText {
		t.Errorf("Format:\n%q\nwant\n%q", text.String(), wantText)
	}

	var md bytes.Buffer
	tb.Markdown(&md)
	wantMD := "### EX — demo\n\n" +
		"*Reproduces nowhere.*\n\n" +
		"| a | bb |\n" +
		"| --- | --- |\n" +
		"| 1 | 2 |\n" +
		"| 333 | 4 |\n\n" +
		"- a note\n\n"
	if md.String() != wantMD {
		t.Errorf("Markdown:\n%q\nwant\n%q", md.String(), wantMD)
	}
}

func TestAddNoteFormats(t *testing.T) {
	tb := &Table{}
	tb.AddNote("x=%d", 7)
	if len(tb.Notes) != 1 || tb.Notes[0] != "x=7" {
		t.Errorf("notes %v", tb.Notes)
	}
}
