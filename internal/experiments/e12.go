package experiments

import (
	"fmt"

	"resilient/internal/byzantine"
	"resilient/internal/core"
	"resilient/internal/malicious"
	"resilient/internal/msg"
	"resilient/internal/runtime"
	"resilient/internal/sweep"
)

// E12 is the authentication ablation, reproducing the Section 3.1 remark:
// "the message system must provide a way for correct processes to verify
// the identity of the sender of each message. Otherwise, one malicious
// process can impersonate the whole system, leading the correct processes
// to conflicting decisions."
//
// One impersonator fabricates a complete phase-0 history of Figure 2 under
// every identity -- unanimous 0 toward half the victims, unanimous 1 toward
// the rest. With sender authentication on (the model's requirement, and the
// engine default) the forgeries collapse into duplicates from one sender
// and the system decides consistently; with authentication off the victims
// split immediately.
func E12(p Params) ([]*Table, error) {
	t := &Table{
		ID:     "E12",
		Title:  "authentication ablation: one impersonator vs Figure 2 (n=7, k=1)",
		Source: "Section 3.1 (why authentication is required)",
		Header: []string{"message system", "outcome", "agreement kept"},
	}
	n, k := 7, 1
	boundary := msg.ID(3)
	attacker := msg.ID(6)
	spawn := func(ctx runtime.SpawnContext) (core.Machine, error) {
		if ctx.Byzantine {
			return byzantine.NewImpersonatorMachine(ctx.Config.Self, ctx.Config.N, boundary), nil
		}
		return malicious.New(ctx.Config, ctx.Sink)
	}
	configs := []bool{false, true}
	results, err := sweep.Run(len(configs), p.workers(), func(i int) (*runtime.Result, error) {
		forgery := configs[i]
		res, err := runtime.Run(runtime.Config{
			N: n, K: k,
			// Balanced honest inputs: without interference the system could
			// go either way, so a split is the attacker's doing.
			Inputs:       []msg.Value{0, 1, 0, 1, 0, 1, 0},
			Spawn:        spawn,
			Byzantine:    map[msg.ID]bool{attacker: true},
			Seed:         p.Seed,
			AllowForgery: forgery,
			MaxSimTime:   2000,
		})
		if err != nil {
			return nil, fmt.Errorf("E12 forgery=%v: %w", forgery, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for i, forgery := range configs {
		res := results[i]
		label := "authenticated (model requirement)"
		if forgery {
			label = "forgeable senders"
		}
		t.AddRow(label, describeOutcome(res), fmt.Sprintf("%v", res.Agreement))
		if forgery && res.Agreement {
			t.AddNote("UNEXPECTED: the impersonation attack failed without authentication")
		}
		if !forgery && !res.Agreement {
			t.AddNote("UNEXPECTED: agreement broke despite authentication")
		}
	}
	t.AddNote("paper: without sender verification 'one malicious process can impersonate the whole system, leading the correct processes to conflicting decisions' -- the forgeable row must disagree, the authenticated row must not")
	return []*Table{t}, nil
}
