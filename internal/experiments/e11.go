package experiments

import (
	"fmt"
	"math/rand/v2"

	"resilient/internal/core"
	"resilient/internal/failstop"
	"resilient/internal/markov"
	"resilient/internal/mc"
	"resilient/internal/msg"
	"resilient/internal/runtime"
	"resilient/internal/sched"
	"resilient/internal/stats"
	"resilient/internal/sweep"
)

// E11 is the ablation study (not a table from the paper): it probes the
// design choices DESIGN.md calls out.
//
// E11a varies the delivery scheduler under Figure 1. The paper's
// convergence argument needs only that every (n-k)-view has positive
// probability (Section 2.3); the measured phase counts must therefore be
// stable across any scheduler with that property, degrading gracefully
// under a heavily skewed one.
//
// E11b computes the analytic decision split B = N*R of the Section 4.1
// chain -- the probability that consensus lands on 1 as a function of the
// initial 1-count -- against per-process simulation, quantifying the
// paper's "the consensus value is still likely to be equal to the majority
// of the initial input values".
func E11(p Params) ([]*Table, error) {
	ta := &Table{
		ID:     "E11a",
		Title:  "ablation: Figure 1 phase count vs delivery scheduler (n=9, k=4)",
		Source: "Section 2.3 assumption (ablation, not a paper table)",
		Header: []string{"scheduler", "terminated", "agreement", "phases ±95%"},
	}
	n, k := 9, 4
	schedulers := []struct {
		name string
		s    sched.Scheduler
	}{
		{"uniform[0.1,1]", sched.Uniform{Min: 0.1, Max: 1}},
		{"uniform[0.9,1.1] (near-sync)", sched.Uniform{Min: 0.9, Max: 1.1}},
		{"exponential(mean=1)", sched.Exponential{Mean: 1}},
		{"constant(1) (lock-step)", sched.Constant{D: 1}},
		{"skewed x10 on 3 processes", sched.Skewed{
			Base:       sched.Uniform{Min: 0.1, Max: 1},
			SlowSet:    map[msg.ID]bool{0: true, 1: true, 2: true},
			SlowFactor: 10,
		}},
	}
	for row, sc := range schedulers {
		trials := p.trials()
		type e11Trial struct {
			term, agree bool
			phases      float64
		}
		results, err := sweep.Run(trials, p.workers(), func(tr int) (e11Trial, error) {
			seed := p.seedFor(600+row, tr)
			res, err := runtime.Run(runtime.Config{
				N: n, K: k, Inputs: randomInputs(n, seed),
				Spawn: func(ctx runtime.SpawnContext) (core.Machine, error) {
					return failstop.New(ctx.Config, ctx.Sink)
				},
				Scheduler: sc.s,
				Seed:      seed,
			})
			if err != nil {
				return e11Trial{}, fmt.Errorf("E11a %s trial %d: %w", sc.name, tr, err)
			}
			return e11Trial{
				term:   res.AllDecided && res.Stalled == runtime.NotStalled,
				agree:  res.Agreement,
				phases: float64(maxDecisionPhase(res)),
			}, nil
		})
		if err != nil {
			return nil, err
		}
		var phases stats.Accumulator
		term, agree := 0, 0
		for _, r := range results {
			if r.term {
				term++
			}
			if r.agree {
				agree++
			}
			phases.Add(r.phases)
		}
		ta.AddRow(sc.name,
			pct(float64(term)/float64(trials)),
			pct(float64(agree)/float64(trials)),
			fmt.Sprintf("%s ± %s", f2(phases.Mean()), f2(phases.CI95())))
	}
	ta.AddNote("convergence must hold under every scheduler (the Section 2.3 epsilon-assumption is all the proofs need); only the constant matters, not the delay law")

	tb := &Table{
		ID:     "E11b",
		Title:  "analytic decision split B = N*R vs simulation (majority variant, n=30, k=9)",
		Source: "Section 2.3/3.3 majority-approximation remarks (analytic companion)",
		Header: []string{"initial 1s", "analytic P(decide 1)", "simulated P(decide 1)"},
	}
	nn, kk := 30, 9
	chain := markov.FailStop{N: nn, K: kk}
	split, err := chain.AbsorptionSplit()
	if err != nil {
		return nil, fmt.Errorf("E11b: %w", err)
	}
	sim := mc.FailStop{N: nn, K: kk}
	starts := []int{6, 11, 13, 15, 17, 19, 24}
	if p.Quick {
		starts = []int{11, 15, 19}
	}
	for row, start := range starts {
		trials := p.trials() * 4
		decisions, err := sweep.Run(trials, p.workers(), func(tr int) (bool, error) {
			rng := rand.New(rand.NewPCG(p.seedFor(700+row, tr), 5))
			_, decided1, err := sim.DecisionRun(start, rng, 0)
			if err != nil {
				return false, fmt.Errorf("E11b start %d trial %d: %w", start, tr, err)
			}
			return decided1, nil
		})
		if err != nil {
			return nil, err
		}
		ones := 0
		for _, d := range decisions {
			if d {
				ones++
			}
		}
		tb.AddRow(
			fmt.Sprintf("%d/%d", start, nn),
			f3(split[start]),
			f3(float64(ones)/float64(trials)),
		)
	}
	tb.AddNote("the analytic column comes from the fundamental-matrix split of the exact chain; the simulated column from per-process decision runs under the same view model")
	return []*Table{ta, tb}, nil
}
