package experiments

import (
	"fmt"

	"resilient/internal/coin"
	"resilient/internal/core"
	"resilient/internal/proto"
	"resilient/internal/runtime"
	"resilient/internal/stats"
	"resilient/internal/sweep"

	// The comparison iterates the protocol registry; the blank imports pull
	// every compared protocol's registration in.
	_ "resilient/internal/benor"
	_ "resilient/internal/failstop"
	_ "resilient/internal/majority"
	_ "resilient/internal/malicious"
)

// E13 is the Section 6 style cross-protocol comparison over the registry:
// every consensus protocol of the zoo runs the same random-input workload
// at its own resilience bound, and the table reports termination,
// agreement, expected phases, and message cost side by side. The headline
// contrast is the coin column: local-coin Ben-Or's expected phases grow
// with n (the [BenO83] cost the paper's Section 6 discussion accepts for
// asynchrony), while the shared-coin variant stays flat -- all correct
// processes flip the same value, so every coin round has a constant
// probability of unifying.
func E13(p Params) ([]*Table, error) {
	type config struct {
		id   proto.ID
		n, k int
	}
	sizes := []int{7, 15}
	if p.Quick {
		sizes = []int{7}
	}
	zoo := []proto.ID{
		proto.FailStop, proto.Malicious, proto.Majority,
		proto.BenOrCrash, proto.BenOrByzantine, proto.BenOrShared,
	}
	var configs []config
	for _, n := range sizes {
		for _, id := range zoo {
			configs = append(configs, config{id: id, n: n, k: id.MaxFaults(n)})
		}
	}

	header := []string{"protocol", "coin", "n", "k", "terminated", "agreement", "phases ±95%", "mean msgs"}
	if p.WallTimes {
		header = append(header, "wall ms")
	}
	t := &Table{
		ID:     "E13",
		Title:  "protocol zoo: phases, messages and coin schemes across the registry",
		Source: "Section 6 discussion; [BenO83]",
		Header: header,
	}
	scoped := p.Metrics.Scoped("zoo.")
	for row, cfg := range configs {
		d, ok := proto.Lookup(cfg.id)
		if !ok {
			return nil, fmt.Errorf("E13: protocol %d not registered", int(cfg.id))
		}
		scheme, err := d.ResolveCoin(coin.SchemeAuto)
		if err != nil {
			return nil, fmt.Errorf("E13: %w", err)
		}
		trials := p.trials()
		type trial struct {
			term, agree        bool
			phases, msgs, wall float64
		}
		results, err := sweep.Run(trials, p.workers(), func(tr int) (trial, error) {
			seed := p.seedFor(row, tr)
			res, err := runtime.Run(runtime.Config{
				N: cfg.n, K: cfg.k,
				Inputs:  randomInputs(cfg.n, seed),
				Spawn:   zooSpawner(d, scheme, seed),
				Seed:    seed,
				Metrics: scoped,
			})
			if err != nil {
				return trial{}, fmt.Errorf("E13 row %d trial %d: %w", row, tr, err)
			}
			return trial{
				term:   res.AllDecided && res.Stalled == runtime.NotStalled,
				agree:  res.Agreement,
				phases: float64(maxDecisionPhase(res)),
				msgs:   float64(res.MessagesSent),
				wall:   res.WallClock.Seconds() * 1e3,
			}, nil
		})
		if err != nil {
			return nil, err
		}
		var phases, msgs, wall stats.Accumulator
		term, agree := 0, 0
		for _, r := range results {
			if r.term {
				term++
			}
			if r.agree {
				agree++
			}
			phases.Add(r.phases)
			msgs.Add(r.msgs)
			wall.Add(r.wall)
		}
		cells := []string{
			d.Name, scheme.String(),
			fmt.Sprintf("%d", cfg.n), fmt.Sprintf("%d", cfg.k),
			pct(float64(term) / float64(trials)),
			pct(float64(agree) / float64(trials)),
			fmt.Sprintf("%s ± %s", f2(phases.Mean()), f2(phases.CI95())),
			f2(msgs.Mean()),
		}
		if p.WallTimes {
			cells = append(cells, f3(wall.Mean()))
		}
		t.AddRow(cells...)
	}
	t.AddNote("every protocol runs random inputs at its own bound k; terminated and agreement must be 100%%")
	t.AddNote("benor-crash (local coins) phase counts grow with n; benor-shared (common coin) stays flat at the same bound")
	t.AddNote("wall times are measured only when requested (cmd/experiments): they vary run to run, unlike every other column")
	return []*Table{t}, nil
}

// zooSpawner builds the engine spawner for one comparison run: the shared
// coin is one per-run source every process queries, the local scheme draws
// from each process's own engine RNG.
func zooSpawner(d proto.Descriptor, scheme coin.Scheme, seed uint64) runtime.Spawner {
	var shared coin.Source
	if scheme == coin.SchemeShared {
		shared = coin.NewShared(seed)
	}
	return func(ctx runtime.SpawnContext) (core.Machine, error) {
		deps := proto.Deps{Sink: ctx.Sink}
		switch scheme {
		case coin.SchemeLocal:
			deps.Coin = coin.NewLocal(ctx.RNG)
		case coin.SchemeShared:
			deps.Coin = shared
		}
		return d.Spawn(ctx.Config, deps)
	}
}
