package experiments

import (
	"fmt"
	"math/rand/v2"

	"resilient/internal/core"
	"resilient/internal/failstop"
	"resilient/internal/faults"
	"resilient/internal/msg"
	"resilient/internal/runtime"
	"resilient/internal/stats"
	"resilient/internal/sweep"
)

// E3 verifies Theorem 2: the Figure 1 protocol is a k-resilient consensus
// protocol for the fail-stop case, for every k up to floor((n-1)/2). Each
// row runs many seeded executions under a crash pattern and reports the
// fraction that terminated, agreed, and satisfied validity, plus the mean
// phases to the last decision. All three fractions must be 100%.
func E3(p Params) ([]*Table, error) {
	type config struct {
		n, k    int
		pattern string
	}
	var configs []config
	sizes := [][2]int{{5, 2}, {7, 3}, {9, 4}, {11, 5}}
	if p.Quick {
		sizes = [][2]int{{5, 2}, {7, 3}}
	}
	for _, nk := range sizes {
		for _, pat := range []string{"none", "initially-dead", "random"} {
			configs = append(configs, config{n: nk[0], k: nk[1], pattern: pat})
		}
	}

	t := &Table{
		ID:     "E3",
		Title:  "Figure 1 (fail-stop) resilience sweep at the floor((n-1)/2) bound",
		Source: "Theorem 2",
		Header: []string{"n", "k", "crash pattern", "terminated", "agreement", "validity", "phases ±95%", "mean msgs"},
	}
	// One scoped view for every trial: resolving it per trial was the
	// in-loop handle lookup the metricshandle lint rule now rejects.
	scoped := p.Metrics.Scoped("failstop.")
	for row, cfg := range configs {
		trials := p.trials()
		type trial struct {
			term, agree, valid bool
			phases, msgs       float64
		}
		results, err := sweep.Run(trials, p.workers(), func(tr int) (trial, error) {
			seed := p.seedFor(row, tr)
			plan := crashPlan(cfg.pattern, cfg.n, cfg.k, seed)
			inputs := randomInputs(cfg.n, seed)
			res, err := runtime.Run(runtime.Config{
				N: cfg.n, K: cfg.k, Inputs: inputs,
				Spawn: func(ctx runtime.SpawnContext) (core.Machine, error) {
					return failstop.New(ctx.Config, ctx.Sink)
				},
				Crashes: plan,
				Seed:    seed,
				Metrics: scoped,
			})
			if err != nil {
				return trial{}, fmt.Errorf("E3 row %d trial %d: %w", row, tr, err)
			}
			return trial{
				term:   res.AllDecided && res.Stalled == runtime.NotStalled,
				agree:  res.Agreement,
				valid:  validityHolds(inputs, plan, res),
				phases: float64(maxDecisionPhase(res)),
				msgs:   float64(res.MessagesSent),
			}, nil
		})
		if err != nil {
			return nil, err
		}
		var phases, msgs stats.Accumulator
		term, agree, valid := 0, 0, 0
		for _, r := range results {
			if r.term {
				term++
			}
			if r.agree {
				agree++
			}
			if r.valid {
				valid++
			}
			phases.Add(r.phases)
			msgs.Add(r.msgs)
		}
		t.AddRow(
			fmt.Sprintf("%d", cfg.n), fmt.Sprintf("%d", cfg.k), cfg.pattern,
			pct(float64(term)/float64(trials)),
			pct(float64(agree)/float64(trials)),
			pct(float64(valid)/float64(trials)),
			fmt.Sprintf("%s ± %s", f2(phases.Mean()), f2(phases.CI95())),
			f2(msgs.Mean()),
		)
	}
	t.AddNote("paper: Figure 1 is k-resilient for k <= floor((n-1)/2); terminated/agreement/validity must all be 100%%")
	t.AddNote("validity is checked in the weak sense the paper proves: unanimous inputs among all processes force that decision")
	return []*Table{t}, nil
}

// crashPlan builds the crash pattern for one trial.
func crashPlan(pattern string, n, k int, seed uint64) faults.Plan {
	switch pattern {
	case "none":
		return faults.None()
	case "initially-dead":
		ids := make([]msg.ID, k)
		for i := range ids {
			ids[i] = msg.ID(n - 1 - i)
		}
		return faults.InitiallyDead(ids...)
	default: // "random"
		rng := rand.New(rand.NewPCG(seed, 0xc0ffee))
		return faults.Random(rng, n, k, 4)
	}
}

func randomInputs(n int, seed uint64) []msg.Value {
	rng := rand.New(rand.NewPCG(seed, 0xbeef))
	in := make([]msg.Value, n)
	for i := range in {
		in[i] = msg.Value(rng.IntN(2))
	}
	return in
}

// validityHolds checks weak validity: if every process (faulty ones
// included -- they may die but never lie) started with the same input v,
// any decision must equal v.
func validityHolds(inputs []msg.Value, _ faults.Plan, res *runtime.Result) bool {
	unanimous := true
	for _, v := range inputs[1:] {
		if v != inputs[0] {
			unanimous = false
			break
		}
	}
	if !unanimous {
		return true
	}
	for _, d := range res.Decisions {
		if d != inputs[0] {
			return false
		}
	}
	return true
}
