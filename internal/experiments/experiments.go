// Package experiments implements the reproduction harness: one function per
// experiment in the DESIGN.md index (E1-E13), each regenerating a table of
// the paper's quantitative claims -- the Section 4 absorption-time analysis,
// the resilience theorems, the embedded claims of Sections 2.3/3.3/5, and
// the [BenO83] comparison.
//
// Each experiment accepts a Params controlling its scale, so the same code
// serves the full reproduction (cmd/experiments), the benchmark suite
// (bench_test.go), and quick smoke tests.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"resilient/internal/metrics"
)

// Params scales an experiment run.
type Params struct {
	// Trials is the number of independent runs per table row.
	Trials int
	// Seed is the base random seed; row r of trial t uses a seed derived
	// deterministically from it.
	Seed uint64
	// Quick shrinks system sizes for smoke tests and benchmarks.
	Quick bool
	// Metrics, when non-nil, aggregates run accounting across the whole
	// campaign: engine runs record under "<protocol>.runtime.", the
	// Monte-Carlo chains under "mc.". cmd/experiments snapshots it to the
	// -metrics-json file.
	Metrics *metrics.Registry
	// Workers bounds the number of concurrent trial workers per table row
	// (0 = GOMAXPROCS). Every trial is seeded per (row, trial) index and
	// results are merged in trial order, so the tables are byte-identical
	// for every worker count.
	Workers int
	// WallTimes adds a measured wall-clock column to experiments that
	// report one (E13). Wall times vary run to run, so the flag defaults to
	// false, keeping default tables byte-identical across runs and worker
	// counts; cmd/experiments turns it on.
	WallTimes bool
}

// DefaultParams returns the full-scale parameters used to produce
// EXPERIMENTS.md.
func DefaultParams() Params {
	return Params{Trials: 400, Seed: 1}
}

// QuickParams returns reduced parameters for benchmarks and smoke tests.
func QuickParams() Params {
	return Params{Trials: 25, Seed: 1, Quick: true}
}

func (p Params) trials() int {
	if p.Trials <= 0 {
		return 100
	}
	return p.Trials
}

// workers is the sweep worker bound (0 lets sweep.Run use GOMAXPROCS).
func (p Params) workers() int { return p.Workers }

// seedFor derives a per-(row, trial) seed.
func (p Params) seedFor(row, trial int) uint64 {
	x := p.Seed + uint64(row)*1_000_003 + uint64(trial)*7_919
	// splitmix64 finalizer.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Table is one reproduced table or figure.
type Table struct {
	// ID is the experiment identifier (E1..E12, possibly with a suffix).
	ID string
	// Title describes the table.
	Title string
	// Source cites the paper location being reproduced.
	Source string
	// Header holds the column names and Rows the cells.
	Header []string
	Rows   [][]string
	// Notes carries caveats and the paper-vs-measured verdict.
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Format renders the table as aligned text.
func (t *Table) Format(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	if t.Source != "" {
		fmt.Fprintf(w, "    (reproduces %s)\n", t.Source)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", pad))
		}
		return strings.TrimRight(b.String(), " ")
	}
	fmt.Fprintf(w, "  %s\n", line(t.Header))
	total := len(t.Header) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintf(w, "  %s\n", strings.Repeat("-", total))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "  %s\n", line(row))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title)
	if t.Source != "" {
		fmt.Fprintf(w, "*Reproduces %s.*\n\n", t.Source)
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | "))
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	fmt.Fprintln(w)
	for _, n := range t.Notes {
		fmt.Fprintf(w, "- %s\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment names a runnable experiment.
type Experiment struct {
	ID   string
	Name string
	Run  func(Params) ([]*Table, error)
}

// All returns every experiment in index order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Name: "fail-stop absorption times (S4.1, eq. 13)", Run: E1},
		{ID: "E2", Name: "malicious absorption times (S4.2)", Run: E2},
		{ID: "E3", Name: "Figure 1 resilience sweep (Thm 2)", Run: E3},
		{ID: "E4", Name: "Figure 2 Byzantine sweep (Thm 4)", Run: E4},
		{ID: "E5", Name: "lower bounds (Thm 1, Thm 3)", Run: E5},
		{ID: "E6", Name: "majority approximation (S2.3/S3.3 notes)", Run: E6},
		{ID: "E7", Name: "k < n/5 fast propagation (S3.3 note)", Run: E7},
		{ID: "E8", Name: "Ben-Or baseline comparison (S6)", Run: E8},
		{ID: "E9", Name: "message complexity Fig 1 vs Fig 2", Run: E9},
		{ID: "E10", Name: "weak bivalence, initially-dead faults (S5)", Run: E10},
		{ID: "E11", Name: "ablations: scheduler sensitivity, decision split", Run: E11},
		{ID: "E12", Name: "authentication ablation: impersonation (S3.1)", Run: E12},
		{ID: "E13", Name: "cross-protocol comparison over the registry (S6)", Run: E13},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
