package malicious

import (
	"fmt"

	"resilient/internal/coin"
	"resilient/internal/core"
	"resilient/internal/proto"
	"resilient/internal/quorum"
	"resilient/internal/sample"
)

func init() {
	proto.Register(proto.Descriptor{
		ID:             proto.Malicious,
		Name:           "malicious(fig2)",
		Aliases:        []string{"malicious", "fig2"},
		Model:          quorum.Malicious,
		Bound:          "(n-1)/3",
		Coin:           coin.SchemeNone,
		NeedsDirectory: true,
		CheckName:      "malicious",
		Spawn: func(cfg core.Config, deps proto.Deps) (core.Machine, error) {
			if deps.Directory != nil {
				dir, ok := deps.Directory.(*sample.Directory)
				if !ok {
					return nil, fmt.Errorf("malicious: unexpected directory type %T", deps.Directory)
				}
				return NewSampled(cfg, dir, deps.Sink)
			}
			if deps.Unsafe {
				return NewUnsafe(cfg, deps.Sink), nil
			}
			return New(cfg, deps.Sink)
		},
	})
}
