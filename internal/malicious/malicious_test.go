package malicious

import (
	"testing"

	"resilient/internal/core"
	"resilient/internal/msg"
	"resilient/internal/quorum"
)

func cfg(n, k int, self msg.ID, input msg.Value) core.Config {
	return core.Config{N: n, K: k, Self: self, Input: input}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(cfg(7, 2, 0, msg.V0), nil); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if _, err := New(cfg(7, 3, 0, msg.V0), nil); err == nil {
		t.Error("k beyond malicious bound accepted")
	}
	if NewUnsafe(cfg(6, 2, 0, msg.V0), nil) == nil {
		t.Error("NewUnsafe returned nil")
	}
}

func TestStartBroadcastsInitial(t *testing.T) {
	m, _ := New(cfg(4, 1, 2, msg.V1), nil)
	outs := m.Start()
	if len(outs) != 1 || outs[0].To != msg.Broadcast {
		t.Fatalf("start outs %+v", outs)
	}
	got := outs[0].Msg
	if got.Kind != msg.KindInitial || got.Phase != 0 || got.Value != msg.V1 || got.Subject != 2 {
		t.Errorf("initial %+v", got)
	}
}

func TestEchoesFirstInitialOnly(t *testing.T) {
	m, _ := New(cfg(4, 1, 0, msg.V0), nil)
	m.Start()
	out1 := m.OnMessage(msg.Initial(1, 0, msg.V1))
	if len(out1) != 1 || out1[0].Msg.Kind != msg.KindEcho ||
		out1[0].Msg.Subject != 1 || out1[0].Msg.Value != msg.V1 {
		t.Fatalf("echo %+v", out1)
	}
	// A second initial from the same (sender, phase) -- even equivocating --
	// is not echoed again.
	if out := m.OnMessage(msg.Initial(1, 0, msg.V0)); out != nil {
		t.Errorf("re-echoed: %+v", out)
	}
	// A different phase gets its own echo.
	if out := m.OnMessage(msg.Initial(1, 5, msg.V0)); len(out) != 1 {
		t.Errorf("future-phase initial not echoed: %+v", out)
	}
}

func TestForgedInitialDropped(t *testing.T) {
	m, _ := New(cfg(4, 1, 0, msg.V0), nil)
	m.Start()
	forged := msg.Initial(2, 0, msg.V1)
	forged.From = 3 // authenticated sender differs from claimed subject
	if out := m.OnMessage(forged); out != nil {
		t.Errorf("forged initial echoed: %+v", out)
	}
}

// echoToAll feeds enough distinct echoes to accept (subject, phase, v).
func echoToAll(t *testing.T, m *Machine, subject msg.ID, phase msg.Phase, v msg.Value, n, k int) {
	t.Helper()
	for s := 0; s < quorum.EchoAcceptCount(n, k); s++ {
		m.OnMessage(msg.Echo(msg.ID(s), subject, phase, v))
	}
}

func TestAcceptanceAndPhaseEnd(t *testing.T) {
	n, k := 4, 1
	m, _ := New(cfg(n, k, 0, msg.V0), nil)
	m.Start()
	// Accept n-k = 3 subjects with value 1 -> phase ends, adopts 1.
	for q := 0; q < 3; q++ {
		echoToAll(t, m, msg.ID(q), 0, msg.V1, n, k)
	}
	if m.Phase() != 1 {
		t.Fatalf("phase %d", m.Phase())
	}
	if m.CurrentValue() != msg.V1 {
		t.Errorf("value %d, want 1", m.CurrentValue())
	}
	// Accepting 3 of 4 with one value: 3 > (4+1)/2 = 2 -> decide.
	if v, ok := m.Decided(); !ok || v != msg.V1 {
		t.Fatalf("decided (%d, %v)", v, ok)
	}
	if !m.Halted() {
		t.Fatal("decided machine not halted (wrapper)")
	}
}

func TestDecisionEmitsWildcards(t *testing.T) {
	n, k := 4, 1
	m, _ := New(cfg(n, k, 0, msg.V0), nil)
	m.Start()
	var outs []core.Outbound
	for q := 0; q < 3; q++ {
		for s := 0; s < quorum.EchoAcceptCount(n, k); s++ {
			outs = append(outs, m.OnMessage(msg.Echo(msg.ID(s), msg.ID(q), 0, msg.V1))...)
		}
	}
	// Expect one wildcard initial + n wildcard echoes among the sends.
	var wildInit, wildEcho int
	for _, o := range outs {
		if !o.Msg.Phase.IsWildcard() {
			continue
		}
		switch o.Msg.Kind {
		case msg.KindInitial:
			wildInit++
		case msg.KindEcho:
			wildEcho++
		}
		if o.Msg.Value != msg.V1 {
			t.Errorf("wildcard with value %d", o.Msg.Value)
		}
	}
	if wildInit != 1 || wildEcho != n {
		t.Errorf("wildcards: %d initial, %d echo; want 1, %d", wildInit, wildEcho, n)
	}
}

func TestNoDecisionWithoutSupermajority(t *testing.T) {
	n, k := 7, 2 // accept threshold 5, wait 5, decide needs > 4.5 i.e. 5
	m, _ := New(cfg(n, k, 0, msg.V0), nil)
	m.Start()
	// 3 accepts of 1, 2 accepts of 0: no value exceeds (n+k)/2 = 4.5? 3 < 5.
	for q := 0; q < 3; q++ {
		echoToAll(t, m, msg.ID(q), 0, msg.V1, n, k)
	}
	for q := 3; q < 5; q++ {
		echoToAll(t, m, msg.ID(q), 0, msg.V0, n, k)
	}
	if _, ok := m.Decided(); ok {
		t.Fatal("decided on 3/5 accepts")
	}
	if m.Phase() != 1 {
		t.Fatalf("phase %d", m.Phase())
	}
	if m.CurrentValue() != msg.V1 {
		t.Errorf("majority not adopted: %d", m.CurrentValue())
	}
}

func TestFutureEchoesBuffered(t *testing.T) {
	n, k := 4, 1
	m, _ := New(cfg(n, k, 0, msg.V0), nil)
	m.Start()
	// Phase-1 echoes arrive while still in phase 0 (values mixed so the
	// cascade does not immediately decide).
	mixedVal := func(q int) msg.Value {
		if q == 2 {
			return msg.V1
		}
		return msg.V0
	}
	for q := 0; q < 3; q++ {
		echoToAll(t, m, msg.ID(q), 1, mixedVal(q), n, k)
	}
	if m.Phase() != 0 {
		t.Fatal("future echoes advanced phase")
	}
	// Completing phase 0 must replay them and cascade through phase 1.
	for q := 0; q < 3; q++ {
		echoToAll(t, m, msg.ID(q), 0, mixedVal(q), n, k)
	}
	if m.Phase() != 2 {
		t.Fatalf("phase %d, want cascade to 2", m.Phase())
	}
	if _, ok := m.Decided(); ok {
		t.Fatal("mixed accepts should not decide")
	}
}

func TestWildcardEchoesCountEveryPhase(t *testing.T) {
	n, k := 4, 1
	m, _ := New(cfg(n, k, 0, msg.V0), nil)
	m.Start()
	// Three decided processes cover subject q for every phase via
	// wildcards; subject 3's echoes for phase 0 use concrete phases.
	for s := 0; s < 3; s++ {
		for q := 0; q < 4; q++ {
			m.OnMessage(msg.Echo(msg.ID(s), msg.ID(q), msg.WildcardPhase, msg.V1))
		}
	}
	// Wildcards alone: 3 echoes per subject = threshold (4+1)/2+1 = 3.
	// So subjects get accepted already; n-k = 3 accepts -> phase advances,
	// wildcards re-apply, cascade. The machine should decide 1 quickly.
	if v, ok := m.Decided(); !ok || v != msg.V1 {
		t.Fatalf("wildcard-driven decision missing: (%d, %v), phase %d", v, ok, m.Phase())
	}
}

func TestDuplicateWildcardIgnored(t *testing.T) {
	n, k := 7, 2
	m, _ := New(cfg(n, k, 0, msg.V0), nil)
	m.Start()
	for i := 0; i < 10; i++ {
		m.OnMessage(msg.Echo(1, 2, msg.WildcardPhase, msg.V1))
	}
	z, o := m.AcceptedCounts()
	if z != 0 || o != 0 {
		t.Errorf("accepted (%d,%d) from one sender's repeated wildcard", z, o)
	}
}

func TestValidityUnanimous(t *testing.T) {
	// Drive a 4-process system by hand: all inputs 1.
	n, k := 4, 1
	machines := make([]*Machine, n)
	var queue []core.Outbound
	for i := 0; i < n; i++ {
		mm, err := New(cfg(n, k, msg.ID(i), msg.V1), nil)
		if err != nil {
			t.Fatal(err)
		}
		machines[i] = mm
		queue = append(queue, mm.Start()...)
	}
	// Synchronous-ish delivery loop.
	for step := 0; step < 10000 && len(queue) > 0; step++ {
		o := queue[0]
		queue = queue[1:]
		if o.To == msg.Broadcast {
			for q := 0; q < n; q++ {
				mcopy := o.Msg
				queue = append(queue, machines[q].OnMessage(mcopy)...)
			}
		} else {
			queue = append(queue, machines[o.To].OnMessage(o.Msg)...)
		}
	}
	for i, mm := range machines {
		v, ok := mm.Decided()
		if !ok {
			t.Fatalf("p%d undecided", i)
		}
		if v != msg.V1 {
			t.Fatalf("p%d decided %d, want 1", i, v)
		}
	}
}
