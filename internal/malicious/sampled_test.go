package malicious

import (
	"math/rand/v2"
	"testing"

	"resilient/internal/core"
	"resilient/internal/msg"
	"resilient/internal/sample"
)

// runNetwork drives a set of machines to quiescence over a FIFO queue,
// stamping the authenticated sender like the engines do. silent processes
// neither send nor receive. Returns the total messages sent by live
// processes.
func runNetwork(t *testing.T, machines []*Machine, silent map[msg.ID]bool) (sent int) {
	t.Helper()
	type envelope struct {
		to msg.ID
		m  msg.Message
	}
	var queue []envelope
	push := func(from msg.ID, outs []core.Outbound) {
		if silent[from] {
			return
		}
		for _, o := range outs {
			o.Msg.From = from
			if o.To == msg.Broadcast {
				for id := range machines {
					queue = append(queue, envelope{msg.ID(id), o.Msg})
					sent++
				}
			} else {
				queue = append(queue, envelope{o.To, o.Msg})
				sent++
			}
		}
	}
	for i, m := range machines {
		push(msg.ID(i), m.Start())
	}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		if silent[e.to] {
			continue
		}
		m := machines[e.to]
		if m.Halted() {
			continue
		}
		push(e.to, m.OnMessage(e.m))
	}
	return sent
}

func buildSampledConsensus(t *testing.T, n, k int, seed uint64, inputs func(msg.ID) msg.Value) []*Machine {
	t.Helper()
	p, err := sample.NewPlan(n, k, sample.DefaultEps)
	if err != nil {
		t.Fatal(err)
	}
	dir := sample.NewDirectory(p, seed)
	machines := make([]*Machine, n)
	for i := range machines {
		m, err := NewSampled(cfg(n, k, msg.ID(i), inputs(msg.ID(i))), dir, nil)
		if err != nil {
			t.Fatal(err)
		}
		machines[i] = m
	}
	return machines
}

func checkAgreement(t *testing.T, machines []*Machine, silent map[msg.ID]bool) msg.Value {
	t.Helper()
	decided := -1
	for id, m := range machines {
		if silent[msg.ID(id)] {
			continue
		}
		v, ok := m.Decided()
		if !ok {
			t.Fatalf("p%d did not decide", id)
		}
		if decided == -1 {
			decided = int(v)
		} else if int(v) != decided {
			t.Fatalf("p%d decided %v, others decided %v", id, v, msg.Value(decided))
		}
	}
	return msg.Value(decided)
}

// TestNewSampledValidates pins the constructor's cross-checks.
func TestNewSampledValidates(t *testing.T) {
	p, err := sample.NewPlan(100, 10, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	dir := sample.NewDirectory(p, 1)
	if _, err := NewSampled(cfg(100, 10, 0, msg.V0), dir, nil); err != nil {
		t.Fatalf("valid sampled config rejected: %v", err)
	}
	if _, err := NewSampled(cfg(99, 10, 0, msg.V0), dir, nil); err == nil {
		t.Error("mismatched n accepted")
	}
	if _, err := NewSampled(cfg(100, 33, 0, msg.V0), dir, nil); err == nil {
		t.Error("mismatched k accepted")
	}
}

// TestSampledEchoesAreUnicast pins the message-complexity mechanism: a
// sampled machine echoes to its echo-target set only, not to everyone.
func TestSampledEchoesAreUnicast(t *testing.T) {
	const n, k = 100, 10
	machines := buildSampledConsensus(t, n, k, 3, func(msg.ID) msg.Value { return msg.V1 })
	m := machines[5]
	outs := m.Start()
	if len(outs) != 1 || outs[0].To != msg.Broadcast {
		t.Fatalf("initial not broadcast: %+v", outs)
	}
	echoes := m.OnMessage(msg.Initial(1, 0, msg.V1))
	if len(echoes) != len(m.echoTargets) || len(echoes) >= n {
		t.Fatalf("%d echo sends for %d targets", len(echoes), len(m.echoTargets))
	}
	for i, o := range echoes {
		if o.To == msg.Broadcast {
			t.Fatal("sampled echo broadcast to everyone")
		}
		if o.To != msg.ID(m.echoTargets[i]) {
			t.Fatalf("echo %d sent to p%d, want p%d", i, o.To, m.echoTargets[i])
		}
		if o.Msg.Kind != msg.KindEcho || o.Msg.Subject != 1 {
			t.Fatalf("echo %d = %+v", i, o.Msg)
		}
	}
}

// TestSampledConsensusFaultFree runs full Figure-2 consensus over the sampled
// echo primitive: all processes must decide the same value, and unanimous
// inputs must win (validity).
func TestSampledConsensusFaultFree(t *testing.T) {
	const n, k = 100, 10
	for seed := uint64(0); seed < 3; seed++ {
		machines := buildSampledConsensus(t, n, k, seed, func(msg.ID) msg.Value { return msg.V1 })
		runNetwork(t, machines, nil)
		if got := checkAgreement(t, machines, nil); got != msg.V1 {
			t.Errorf("seed=%d: unanimous V1 inputs decided %v", seed, got)
		}
	}
}

// TestSampledConsensusMixedInputs checks agreement when inputs are split, the
// case where equivocation-style disagreement would surface if the sampled
// acceptance rule were unsound.
func TestSampledConsensusMixedInputs(t *testing.T) {
	const n, k = 100, 10
	rng := rand.New(rand.NewPCG(9, 9))
	inputs := make([]msg.Value, n)
	for i := range inputs {
		inputs[i] = msg.Value(rng.IntN(2))
	}
	machines := buildSampledConsensus(t, n, k, 4, func(id msg.ID) msg.Value { return inputs[id] })
	runNetwork(t, machines, nil)
	checkAgreement(t, machines, nil)
}

// TestSampledConsensusUnderSilentFaults runs with half the fault budget
// silent (f = k/2, leaving slack in both the n-k wait and the echo samples):
// the live processes must still reach agreement and terminate.
func TestSampledConsensusUnderSilentFaults(t *testing.T) {
	const n, k = 100, 10
	silent := make(map[msg.ID]bool)
	for i := n - k/2; i < n; i++ {
		silent[msg.ID(i)] = true
	}
	for seed := uint64(0); seed < 2; seed++ {
		machines := buildSampledConsensus(t, n, k, seed, func(msg.ID) msg.Value { return msg.V0 })
		runNetwork(t, machines, silent)
		if got := checkAgreement(t, machines, silent); got != msg.V0 {
			t.Errorf("seed=%d: decided %v under silent faults", seed, got)
		}
	}
}

// TestSampledConsensusMessageReduction compares full consensus message counts
// at n=200: the sampled echo stage must cut total traffic well below the
// full-quorum run's. (The gap widens with n -- 6.3x at n=300, 12x+ at
// n=1,000 per the broadcast-level benchmarks -- this pins the mechanism at a
// size the suite can afford.)
func TestSampledConsensusMessageReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("n=200 consensus comparison")
	}
	const n, k = 200, 20
	machines := buildSampledConsensus(t, n, k, 2, func(msg.ID) msg.Value { return msg.V1 })
	sampledSent := runNetwork(t, machines, nil)
	checkAgreement(t, machines, nil)

	full := make([]*Machine, n)
	for i := range full {
		m, err := New(cfg(n, k, msg.ID(i), msg.V1), nil)
		if err != nil {
			t.Fatal(err)
		}
		full[i] = m
	}
	fullSent := runNetwork(t, full, nil)
	checkAgreement(t, full, nil)

	ratio := float64(fullSent) / float64(sampledSent)
	t.Logf("n=%d consensus: full-quorum %d msgs, sampled %d msgs, reduction %.1fx",
		n, fullSent, sampledSent, ratio)
	if ratio < 3 {
		t.Errorf("consensus message reduction %.1fx, want >= 3x", ratio)
	}
}
