package malicious_test

import (
	"math/rand/v2"
	"testing"

	"resilient/internal/core"
	"resilient/internal/machinetest"
	"resilient/internal/malicious"
	"resilient/internal/msg"
)

// TestFuzzInvariants floods Figure 2 machines with hostile streams: forged
// initials, equivocating echoes, wildcard spam, malformed values. The
// machine must keep the model invariants regardless.
func TestFuzzInvariants(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewPCG(seed, 0xabc1))
		n := 4 + rng.IntN(8)
		k := rng.IntN((n-1)/3 + 1)
		m, err := malicious.New(core.Config{
			N: n, K: k, Self: msg.ID(rng.IntN(n)), Input: msg.Value(rng.IntN(2)),
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := machinetest.Fuzz(m, rng, machinetest.Options{N: n, Steps: 2500}); err != nil {
			t.Fatalf("seed %d (n=%d k=%d): %v", seed, n, k, err)
		}
	}
}

// TestFuzzProtocolDialect restricts the stream to initial/echo messages,
// exercising the acceptance machinery heavily.
func TestFuzzProtocolDialect(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewPCG(seed, 0xabc2))
		n := 4 + rng.IntN(8)
		k := rng.IntN((n-1)/3 + 1)
		m, err := malicious.New(core.Config{
			N: n, K: k, Self: 0, Input: msg.Value(rng.IntN(2)),
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		err = machinetest.Fuzz(m, rng, machinetest.Options{
			N: n, Steps: 2500,
			Kinds: []msg.Kind{msg.KindInitial, msg.KindEcho}, MaxPhase: 8,
		})
		if err != nil {
			t.Fatalf("seed %d (n=%d k=%d): %v", seed, n, k, err)
		}
	}
}
