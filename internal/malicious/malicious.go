// Package malicious implements the k-resilient consensus protocol for the
// malicious case -- Figure 2 of Bracha & Toueg, "Resilient Consensus
// Protocols" (PODC 1983) -- for any k <= floor((n-1)/3).
//
// Protocol sketch (Figure 2 + Section 3.3). Each phase, a process
// broadcasts an (initial, p, value, phase) message. Every process echoes
// each first-seen initial message to everyone. A process accepts value v
// from q at phase t once it has counted echoes (echo, q, v, t) from strictly
// more than (n+k)/2 distinct senders; it counts each sender's first echo per
// (q, t) only, which is what defeats equivocation. After accepting messages
// from n-k processes it adopts the majority of the accepted values, decides
// if one value was accepted from strictly more than (n+k)/2 processes, and
// starts the next phase.
//
// Post-decision termination follows the Section 3.3 construction: a decided
// process sends (initial, p, i, *) and echoes (echo, q, i, *) for all q --
// wildcard messages that every receiver re-applies at each subsequent phase
// ("whenever a process receives them, it sends them back to itself") -- and
// then halts. These wildcards stand in for the decided process's continued
// participation, so stragglers keep accepting n-k values per phase and
// decide too.
package malicious

import (
	"fmt"

	"resilient/internal/core"
	"resilient/internal/dense"
	"resilient/internal/echo"
	"resilient/internal/msg"
	"resilient/internal/quorum"
	"resilient/internal/sample"
	"resilient/internal/trace"
)

// echoTally is the acceptance machinery behind the protocol: the dense
// full-quorum echo.Tracker (the paper's > (n+k)/2 rule) or the sparse
// sample.Tracker (the scaled Ê-of-E rule of the sampled broadcast scheme).
// The machine's protocol logic is identical over either.
type echoTally interface {
	Observe(sender, subject msg.ID, p msg.Phase, v msg.Value) (echo.Accept, bool)
	Prune(p msg.Phase)
}

type wildEcho struct {
	sender  msg.ID
	subject msg.ID
	value   msg.Value
}

// phaseMarks is a dense replacement for the map[(id, phase)]bool initial-echo
// dedup: one n-bit set per phase, keyed by the sender id. Initials are never
// pruned (Figure 2 applies no phase guard to them), so sets accumulate one
// per phase seen; a single-entry cache keeps the common same-phase case
// map-free.
type phaseMarks struct {
	n     int
	sets  map[msg.Phase]*dense.Bitset
	cur   *dense.Bitset
	curPh msg.Phase
}

// mark sets bit id for phase ph and reports whether it was already set.
func (p *phaseMarks) mark(ph msg.Phase, id msg.ID) (already bool) {
	if p.cur == nil || p.curPh != ph {
		if p.sets == nil {
			//lint:allow hotalloc lazy one-time map per machine lifetime; per-phase marks reuse dense bitsets
			p.sets = make(map[msg.Phase]*dense.Bitset)
		}
		s := p.sets[ph]
		if s == nil {
			b := dense.NewBitset(p.n)
			s = &b
			p.sets[ph] = s
		}
		p.cur, p.curPh = s, ph
	}
	return p.cur.Set(int(id))
}

// Machine is a Figure-2 protocol instance at one process. It implements
// core.Machine and is not safe for concurrent use.
type Machine struct {
	cfg     core.Config
	sink    trace.Sink
	traceOn bool

	value msg.Value
	phase msg.Phase

	tracker  echoTally
	msgCount [2]int

	// echoTargets, when non-nil, is the set of processes that sampled this
	// machine's echoes under the sampled broadcast scheme; echoes are
	// unicast to them instead of broadcast. nil means full-quorum echo.
	echoTargets []int32

	echoedInitial phaseMarks
	echoedWild    dense.Bitset // one bit per origin process

	wildSeen  dense.Bitset // sender*n+subject, dedup for wildcard echoes
	wildOrder []wildEcho   // receipt order, for deterministic re-application
	wildNext  int          // wild entries [0:wildNext) already applied to current phase

	pendingEchoes dense.PhaseBuffer

	// scratch is the per-step echo replay queue, reused across OnMessage
	// calls so current-phase echo processing allocates nothing.
	scratch []msg.Message

	started  bool
	decided  bool
	decision msg.Value
	halted   bool
}

var (
	_ core.Machine       = (*Machine)(nil)
	_ core.ValueReporter = (*Machine)(nil)
)

// New returns a Figure-2 machine for the given configuration. sink may be
// nil to disable tracing.
func New(cfg core.Config, sink trace.Sink) (*Machine, error) {
	if err := cfg.Validate(quorum.Malicious); err != nil {
		return nil, fmt.Errorf("malicious: %w", err)
	}
	return NewUnsafe(cfg, sink), nil
}

// NewUnsafe returns a machine without validating (n, k) against the
// resilience bound; the Theorem-3 lower-bound experiment configures
// k = n/3 deliberately.
func NewUnsafe(cfg core.Config, sink trace.Sink) *Machine {
	if sink == nil {
		sink = trace.Nop{}
	}
	return &Machine{
		cfg:           cfg,
		sink:          sink,
		traceOn:       sink.Enabled(),
		value:         cfg.Input,
		tracker:       echo.NewTracker(cfg.N, cfg.K),
		echoedInitial: phaseMarks{n: cfg.N},
		echoedWild:    dense.NewBitset(cfg.N),
		wildSeen:      dense.NewBitset(cfg.N * cfg.N),
	}
}

// NewSampled returns a Figure-2 machine whose echo stage runs over the
// sampled broadcast primitive described by dir's plan: echoes are counted
// against this process's echo sample (Ê-of-E instead of > (n+k)/2 of n) and
// sent only to the processes that sampled this one. Everything above the
// echo stage -- initial broadcasts, the n-k wait, the majority/decision
// rules, wildcard termination -- is unchanged, which is the drop-in
// equivalence claim of DESIGN §13. Each acceptance carries the plan's ε
// error, so agreement holds except with probability O(n·ε) per phase.
func NewSampled(cfg core.Config, dir *sample.Directory, sink trace.Sink) (*Machine, error) {
	if err := cfg.Validate(quorum.Malicious); err != nil {
		return nil, fmt.Errorf("malicious: %w", err)
	}
	p := dir.Plan()
	if p.N != cfg.N || p.K != cfg.K {
		return nil, fmt.Errorf("malicious: directory plan (n=%d, k=%d) does not match config (n=%d, k=%d)",
			p.N, p.K, cfg.N, cfg.K)
	}
	m := NewUnsafe(cfg, sink)
	m.tracker = sample.NewTracker(dir, cfg.Self)
	m.echoTargets = dir.EchoTargets(cfg.Self)
	return m, nil
}

// echoSends appends the sends for one echo message: a single broadcast under
// the full-quorum scheme, or unicasts to the sampling processes under the
// sampled scheme.
func (m *Machine) echoSends(out []core.Outbound, e msg.Message) []core.Outbound {
	if m.echoTargets == nil {
		return append(out, core.ToAll(e))
	}
	for _, t := range m.echoTargets {
		out = append(out, core.To(msg.ID(t), e))
	}
	return out
}

// ID implements core.Machine.
func (m *Machine) ID() msg.ID { return m.cfg.Self }

// Phase implements core.Machine.
func (m *Machine) Phase() msg.Phase { return m.phase }

// Decided implements core.Machine.
func (m *Machine) Decided() (msg.Value, bool) { return m.decision, m.decided }

// Halted implements core.Machine.
func (m *Machine) Halted() bool { return m.halted }

// CurrentValue implements core.ValueReporter.
func (m *Machine) CurrentValue() msg.Value { return m.value }

// AcceptedCounts exposes the current phase's accepted-value tallies, for
// tests.
func (m *Machine) AcceptedCounts() (zeros, ones int) {
	return m.msgCount[0], m.msgCount[1]
}

// Start broadcasts the phase-0 initial message.
func (m *Machine) Start() []core.Outbound {
	if m.started {
		return nil
	}
	m.started = true
	return []core.Outbound{core.ToAll(msg.Initial(m.cfg.Self, m.phase, m.value))}
}

// OnMessage consumes one delivered message.
func (m *Machine) OnMessage(in msg.Message) []core.Outbound {
	if m.halted || !m.started {
		return nil
	}
	switch in.Kind {
	case msg.KindInitial:
		return m.onInitial(in)
	case msg.KindEcho:
		return m.onEcho(in)
	case msg.KindState, msg.KindValue, msg.KindBenOrReport, msg.KindBenOrProposal,
		msg.KindGraph, msg.KindGossip, msg.KindReady:
		return nil // explicitly ignored: other protocols' wire kinds
	default:
		return nil
	}
}

// onInitial echoes a first-seen initial message to everyone. Initials are
// echoed regardless of their phase (the Figure-2 case analysis applies no
// phase guard to initial messages). An initial whose Subject differs from
// its authenticated sender is a forgery and is dropped -- the Section 3.1
// model requires that "correct processes verify the identity of the sender".
func (m *Machine) onInitial(in msg.Message) []core.Outbound {
	if in.Subject != in.From || !in.Value.Valid() {
		return nil
	}
	if in.Phase.IsWildcard() {
		if m.echoedWild.Set(int(in.From)) {
			return nil
		}
		return m.echoSends(nil, msg.Echo(m.cfg.Self, in.From, msg.WildcardPhase, in.Value))
	}
	if m.echoedInitial.mark(in.Phase, in.From) {
		return nil
	}
	return m.echoSends(nil, msg.Echo(m.cfg.Self, in.From, in.Phase, in.Value))
}

// onEcho feeds an echo into the acceptance machinery, buffering echoes for
// future phases and recording wildcard echoes for every phase from now on.
func (m *Machine) onEcho(in msg.Message) []core.Outbound {
	if !in.Value.Valid() {
		return nil
	}
	if in.Phase.IsWildcard() {
		if in.Subject < 0 || int(in.Subject) >= m.cfg.N {
			return nil // no such process; nothing it claims can be accepted
		}
		if m.wildSeen.Set(int(in.From)*m.cfg.N + int(in.Subject)) {
			return nil
		}
		m.wildOrder = append(m.wildOrder, wildEcho{sender: in.From, subject: in.Subject, value: in.Value})
		// Apply immediately to the current phase; re-applied automatically
		// on every later phase.
		m.scratch = m.scratch[:0]
		return m.drive()
	}
	switch {
	case in.Phase < m.phase:
		return nil
	case in.Phase > m.phase:
		m.pendingEchoes.Add(in.Phase, in)
		return nil
	}
	m.scratch = append(m.scratch[:0], in)
	return m.drive()
}

// drive processes current-phase echoes (the machine's scratch queue, seeded
// by the caller, plus any wildcards and buffered echoes that become
// applicable), cascading through phase endings until the machine quiesces,
// decides, or runs out of input. The scratch queue's storage is reused
// across steps.
func (m *Machine) drive() []core.Outbound {
	var out []core.Outbound
	queue := m.scratch
	head := 0
	for !m.halted {
		if m.phaseComplete() {
			out = append(out, m.endPhase()...)
			if !m.halted {
				queue = m.pendingEchoes.TakeInto(m.phase, queue)
			}
			continue
		}
		// Re-apply stored wildcard echoes to the current phase first.
		if m.wildNext < len(m.wildOrder) {
			w := m.wildOrder[m.wildNext]
			m.wildNext++
			m.observe(w.sender, w.subject, w.value)
			continue
		}
		if head >= len(queue) {
			break
		}
		cur := queue[head]
		head++
		if cur.Phase != m.phase {
			if cur.Phase > m.phase {
				m.pendingEchoes.Add(cur.Phase, cur)
			}
			continue
		}
		m.observe(cur.From, cur.Subject, cur.Value)
	}
	m.scratch = queue[:0]
	return out
}

// observe counts one echo for the current phase and applies any resulting
// acceptance.
func (m *Machine) observe(sender, subject msg.ID, v msg.Value) {
	acc, ok := m.tracker.Observe(sender, subject, m.phase, v)
	if !ok {
		return
	}
	m.msgCount[acc.Value]++
	if m.traceOn {
		m.sink.Record(trace.Event{
			Kind: trace.EventAccept, Process: m.cfg.Self, Phase: m.phase, Value: acc.Value,
			//lint:allow hotalloc note formatting runs only when a sink is enabled (traceOn gate)
			Note: fmt.Sprintf("from p%d", acc.Subject),
		})
	}
}

func (m *Machine) phaseComplete() bool {
	return m.msgCount[0]+m.msgCount[1] >= quorum.WaitCount(m.cfg.N, m.cfg.K)
}

// endPhase runs the bottom half of the Figure-2 loop body.
func (m *Machine) endPhase() []core.Outbound {
	if m.msgCount[1] > m.msgCount[0] {
		m.value = msg.V1
	} else {
		m.value = msg.V0
	}
	for _, v := range []msg.Value{msg.V0, msg.V1} {
		if quorum.ExceedsHalfNPlusK(m.msgCount[v], m.cfg.N, m.cfg.K) {
			m.decided = true
			m.decision = v
			m.value = v
			break
		}
	}
	m.phase++
	m.msgCount = [2]int{}
	m.wildNext = 0 // wildcards re-apply to the new phase
	m.tracker.Prune(m.phase)
	m.pendingEchoes.DropBelow(m.phase)

	if m.decided {
		m.sink.Record(trace.Event{
			Kind: trace.EventDecide, Process: m.cfg.Self, Phase: m.phase - 1, Value: m.decision,
		})
		m.sink.Record(trace.Event{
			Kind: trace.EventHalt, Process: m.cfg.Self, Phase: m.phase - 1, Value: m.decision,
		})
		m.halted = true
		out := make([]core.Outbound, 0, m.cfg.N+1)
		out = append(out, core.ToAll(msg.Initial(m.cfg.Self, msg.WildcardPhase, m.decision)))
		for q := 0; q < m.cfg.N; q++ {
			out = m.echoSends(out, msg.Echo(m.cfg.Self, msg.ID(q), msg.WildcardPhase, m.decision))
		}
		return out
	}

	m.sink.Record(trace.Event{
		Kind: trace.EventPhase, Process: m.cfg.Self, Phase: m.phase, Value: m.value,
	})
	return []core.Outbound{core.ToAll(msg.Initial(m.cfg.Self, m.phase, m.value))}
}
