package msg

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

func sampleMessages() []Message {
	return []Message{
		State(0, 0, V0, 1),
		State(999, 12345, V1, 67),
		Val(3, 2, V1),
		Initial(5, WildcardPhase, V1),
		Echo(1, 7, WildcardPhase, V0),
		BenOrReport(2, 8, V1),
		BenOrProposal(2, 8, V0, true),
		Graph(6, 3, []byte{0xde, 0xad, 0xbe, 0xef}),
		Graph(6, 3, nil),
		Graph(1, 1, bytes.Repeat([]byte{0xab}, 9000)),
	}
}

func TestAppendEncodeMatchesEncode(t *testing.T) {
	for _, m := range sampleMessages() {
		fresh := Encode(m)
		appended := AppendEncode([]byte("prefix"), m)
		if !bytes.Equal(appended[:6], []byte("prefix")) {
			t.Fatalf("%v: prefix clobbered", m)
		}
		if !bytes.Equal(appended[6:], fresh) {
			t.Errorf("%v: AppendEncode differs from Encode", m)
		}
		if len(fresh) != EncodedLen(m) {
			t.Errorf("%v: EncodedLen %d != actual %d", m, EncodedLen(m), len(fresh))
		}
	}
}

func TestAppendEncodeReusesCapacity(t *testing.T) {
	m := State(1, 2, V1, 3)
	buf := make([]byte, 0, 256)
	out := AppendEncode(buf, m)
	if &out[0] != &buf[:1][0] {
		t.Error("AppendEncode reallocated despite sufficient capacity")
	}
}

// frameStream length-prefixes each message encoding, the Decoder's input
// shape.
func frameStream(msgs []Message) []byte {
	var stream []byte
	for _, m := range msgs {
		stream = AppendFrame(stream, Encode(m))
	}
	return stream
}

func normalizePayload(m Message) Message {
	if len(m.Payload) == 0 {
		m.Payload = nil
	}
	return m
}

func TestDecoderRoundTrip(t *testing.T) {
	msgs := sampleMessages()
	dec := NewDecoder(bytes.NewReader(frameStream(msgs)))
	for i, want := range msgs {
		got, err := dec.Decode()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(normalizePayload(got), normalizePayload(want)) {
			t.Errorf("frame %d: %+v != %+v", i, got, want)
		}
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Errorf("clean end: got %v, want io.EOF", err)
	}
}

// drip delivers one byte per Read, exercising the Decoder's refill loop.
type drip struct{ data []byte }

func (d *drip) Read(p []byte) (int, error) {
	if len(d.data) == 0 {
		return 0, io.EOF
	}
	p[0] = d.data[0]
	d.data = d.data[1:]
	return 1, nil
}

func TestDecoderBytewiseReads(t *testing.T) {
	msgs := sampleMessages()
	dec := NewDecoder(&drip{data: frameStream(msgs)})
	for i, want := range msgs {
		got, err := dec.Decode()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(normalizePayload(got), normalizePayload(want)) {
			t.Errorf("frame %d mismatch", i)
		}
	}
}

func TestDecoderTruncation(t *testing.T) {
	stream := frameStream([]Message{State(1, 2, V1, 3)})
	for cut := 1; cut < len(stream); cut++ {
		dec := NewDecoder(bytes.NewReader(stream[:cut]))
		if _, err := dec.Decode(); err != io.ErrUnexpectedEOF {
			t.Errorf("cut at %d: got %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestDecoderHostileLengthPrefix(t *testing.T) {
	hostile := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	dec := NewDecoder(bytes.NewReader(hostile))
	if _, err := dec.Decode(); err != ErrFrameTooLarge {
		t.Errorf("hostile prefix: got %v, want ErrFrameTooLarge", err)
	}
	// One byte over the limit is rejected before any frame bytes are read.
	over := AppendFrame(nil, make([]byte, MaxFrame+1))
	dec = NewDecoder(bytes.NewReader(over))
	if _, err := dec.Decode(); err != ErrFrameTooLarge {
		t.Errorf("oversize frame: got %v, want ErrFrameTooLarge", err)
	}
}

func TestDecoderMalformedFrameDoesNotDesync(t *testing.T) {
	good := State(1, 2, V1, 3)
	bad := Encode(good)
	bad[0] = 0xFF // invalid kind
	stream := AppendFrame(nil, bad)
	stream = AppendFrame(stream, Encode(good))
	dec := NewDecoder(bytes.NewReader(stream))
	if _, err := dec.Decode(); err != ErrBadKind {
		t.Fatalf("bad frame: got %v, want ErrBadKind", err)
	}
	// The bad frame was consumed whole; the next frame decodes cleanly.
	got, err := dec.Decode()
	if err != nil {
		t.Fatalf("frame after bad one: %v", err)
	}
	if got.Kind != KindState || got.Cardinality != 3 {
		t.Errorf("desynced: %+v", got)
	}
}

func TestDecoderSteadyStateAllocs(t *testing.T) {
	msgs := []Message{Val(1, 2, V0), Echo(1, 2, 3, V1), State(0, 1, V1, 4)}
	stream := frameStream(msgs)
	var loop []byte
	for i := 0; i < 200; i++ {
		loop = append(loop, stream...)
	}
	dec := NewDecoder(bytes.NewReader(loop))
	// Warm the internal buffer.
	for i := 0; i < len(msgs)*100; i++ {
		if _, err := dec.Decode(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := dec.Decode(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state Decode allocates %.1f times per payload-free message, want 0", allocs)
	}
}
