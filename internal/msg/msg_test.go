package msg

import (
	"bytes"
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestValueOther(t *testing.T) {
	if V0.Other() != V1 || V1.Other() != V0 {
		t.Error("Other is not an involution on {0,1}")
	}
	if !V0.Valid() || !V1.Valid() || Value(2).Valid() {
		t.Error("validity wrong")
	}
}

func TestPhaseWildcard(t *testing.T) {
	if !WildcardPhase.IsWildcard() || Phase(0).IsWildcard() || Phase(7).IsWildcard() {
		t.Error("wildcard detection wrong")
	}
	if WildcardPhase.String() != "*" {
		t.Errorf("wildcard renders as %q", WildcardPhase.String())
	}
	if Phase(3).String() != "3" {
		t.Errorf("phase 3 renders as %q", Phase(3).String())
	}
}

func TestKindValidity(t *testing.T) {
	valid := []Kind{KindState, KindValue, KindInitial, KindEcho,
		KindBenOrReport, KindBenOrProposal, KindGraph, KindGossip, KindReady}
	for _, k := range valid {
		if !k.Valid() {
			t.Errorf("%v should be valid", k)
		}
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("%v has no name", k)
		}
	}
	if Kind(0).Valid() || Kind(99).Valid() {
		t.Error("out-of-range kinds accepted")
	}
}

func TestConstructors(t *testing.T) {
	s := State(3, 7, V1, 12)
	if s.Kind != KindState || s.From != 3 || s.Subject != 3 || s.Phase != 7 ||
		s.Value != V1 || s.Cardinality != 12 {
		t.Errorf("State built %+v", s)
	}
	e := Echo(1, 2, 5, V0)
	if e.Kind != KindEcho || e.From != 1 || e.Subject != 2 {
		t.Errorf("Echo built %+v", e)
	}
	p := BenOrProposal(4, 9, V0, true)
	if !p.Bot {
		t.Error("Bot lost")
	}
	g := Graph(2, 1, []byte{1, 2, 3})
	if !bytes.Equal(g.Payload, []byte{1, 2, 3}) {
		t.Error("payload lost")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	msgs := []Message{
		State(0, 0, V0, 1),
		State(999, 12345, V1, 67),
		Val(3, 2, V1),
		Initial(5, WildcardPhase, V1),
		Echo(1, 7, WildcardPhase, V0),
		BenOrReport(2, 8, V1),
		BenOrProposal(2, 8, V0, true),
		Graph(6, 3, []byte{0xde, 0xad, 0xbe, 0xef}),
		Graph(6, 3, nil),
	}
	for _, m := range msgs {
		buf := Encode(m)
		if len(buf) != EncodedLen(m) {
			t.Errorf("%v: EncodedLen %d != actual %d", m, EncodedLen(m), len(buf))
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("%v: decode: %v", m, err)
		}
		if len(got.Payload) == 0 {
			got.Payload = nil
		}
		want := m
		if len(want.Payload) == 0 {
			want.Payload = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip: %+v -> %+v", want, got)
		}
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(kind uint8, from, subject, phase int32, value uint8, card int32, bot bool, payload []byte) bool {
		m := Message{
			Kind:        Kind(kind%7 + 1),
			From:        ID(from),
			Subject:     ID(subject),
			Phase:       Phase(phase),
			Value:       Value(value % 2),
			Cardinality: card,
			Bot:         bot,
			Payload:     payload,
		}
		got, err := Decode(Encode(m))
		if err != nil {
			return false
		}
		if len(got.Payload) == 0 {
			got.Payload = nil
		}
		if len(m.Payload) == 0 {
			m.Payload = nil
		}
		return reflect.DeepEqual(got, m)
	}
	cfg := &quick.Config{
		MaxCount: 300,
		Rand:     nil,
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := Decode(make([]byte, 5)); err == nil {
		t.Error("short buffer accepted")
	}
	good := Encode(State(1, 2, V1, 3))
	bad := append([]byte(nil), good...)
	bad[0] = 0xFF // invalid kind
	if _, err := Decode(bad); err == nil {
		t.Error("invalid kind accepted")
	}
	bad = append([]byte(nil), good...)
	bad[14] = 7 // invalid value
	if _, err := Decode(bad); err == nil {
		t.Error("invalid value accepted")
	}
	// Hostile payload length.
	bad = append([]byte(nil), good...)
	bad[19], bad[20], bad[21], bad[22] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := Decode(bad); err == nil {
		t.Error("hostile payload length accepted")
	}
	// Truncated payload.
	g := Encode(Graph(1, 1, []byte{1, 2, 3, 4}))
	if _, err := Decode(g[:len(g)-2]); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := Graph(1, 1, []byte{1, 2, 3})
	c := m.Clone()
	c.Payload[0] = 9
	if m.Payload[0] == 9 {
		t.Error("Clone shares payload")
	}
}

func TestStringsDoNotPanic(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 100; i++ {
		m := Message{
			Kind:    Kind(rng.IntN(10)),
			From:    ID(rng.IntN(10)),
			Subject: ID(rng.IntN(10)),
			Phase:   Phase(rng.IntN(5) - 1),
			Value:   Value(rng.IntN(2)),
			Bot:     rng.IntN(2) == 0,
		}
		_ = m.String()
	}
}
