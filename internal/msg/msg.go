// Package msg defines the messages exchanged by every protocol in this
// repository: the fail-stop protocol of Figure 1, the malicious-case
// echo protocol of Figure 2 (including its post-decision wildcard messages),
// the Section 4.1 majority variant, the Ben-Or baseline, and the Section 5
// weak-bivalence protocol.
//
// A single Message struct carries all protocols; the Kind discriminates.
// Messages are plain values -- they are copied freely and never shared
// between goroutines after being handed to a transport.
package msg

import (
	"fmt"
)

// ID identifies a process. Processes in an n-process system are numbered
// 0..n-1.
type ID int32

// Broadcast is a pseudo-destination meaning "send to all n processes
// (including the sender)", matching the paper's "for all q, 1 <= q <= n".
const Broadcast ID = -1

// Value is a binary consensus value. The paper's protocols agree on a value
// in {0, 1}.
type Value uint8

const (
	// V0 is consensus value 0.
	V0 Value = 0
	// V1 is consensus value 1.
	V1 Value = 1
)

// Other returns the complementary binary value.
func (v Value) Other() Value {
	if v == V0 {
		return V1
	}
	return V0
}

// Valid reports whether v is a legal binary value.
func (v Value) Valid() bool { return v == V0 || v == V1 }

// Phase is a protocol phase number. WildcardPhase is the paper's "*" phase
// used by decided Figure-2 processes: it matches the receiver's current phase
// and re-matches every later phase.
type Phase int32

// WildcardPhase is the "*" of Section 3.3: a message that matches every
// phase from the receiver's current one onward.
const WildcardPhase Phase = -1

// IsWildcard reports whether p is the "*" phase.
func (p Phase) IsWildcard() bool { return p == WildcardPhase }

// Kind discriminates the protocol message families.
type Kind uint8

const (
	// KindState is the (phaseno, value, cardinality) state message of the
	// Figure 1 fail-stop protocol.
	KindState Kind = iota + 1
	// KindValue is the bare value message of the Section 4.1 majority
	// variant.
	KindValue
	// KindInitial is the (initial, p, value, phaseno) message of Figure 2.
	KindInitial
	// KindEcho is the (echo, q, value, phaseno) message of Figure 2.
	// Subject holds q, the process whose initial message is echoed.
	KindEcho
	// KindBenOrReport is the first-step report message of a Ben-Or round.
	KindBenOrReport
	// KindBenOrProposal is the second-step proposal message of a Ben-Or
	// round. Bot marks the "?" (no proposal) form.
	KindBenOrProposal
	// KindGraph carries the knowledge sets of the Section 5 weak-bivalence
	// protocol (inputs heard and adjacency information) in Payload.
	KindGraph
	// KindGossip is the dissemination message of the sample-based reliable
	// broadcast (Guerraoui et al., arXiv 1908.01738): a relayed copy of the
	// origin's payload. Subject holds the origin; From is the relayer.
	KindGossip
	// KindReady is the totality-amplification message of the sample-based
	// reliable broadcast. Subject holds the origin whose value the sender
	// is ready to deliver.
	KindReady
)

// String returns a short name for the kind.
func (k Kind) String() string {
	switch k {
	case KindState:
		return "state"
	case KindValue:
		return "value"
	case KindInitial:
		return "initial"
	case KindEcho:
		return "echo"
	case KindBenOrReport:
		return "report"
	case KindBenOrProposal:
		return "proposal"
	case KindGraph:
		return "graph"
	case KindGossip:
		return "gossip"
	case KindReady:
		return "ready"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Valid reports whether k is a defined kind.
func (k Kind) Valid() bool {
	return k >= KindState && k <= KindReady
}

// Message is the single wire unit exchanged by all protocols.
//
// From is the authenticated sender: transports stamp it, so a malicious
// process cannot forge another process's identity (the Section 3.1
// requirement). Subject is protocol-dependent: for KindEcho it is the
// process whose initial message is being echoed; other kinds leave it equal
// to From.
type Message struct {
	Kind        Kind   `json:"kind"`
	From        ID     `json:"from"`
	Subject     ID     `json:"subject"`
	Phase       Phase  `json:"phase"`
	Value       Value  `json:"value"`
	Cardinality int32  `json:"cardinality,omitempty"`
	Bot         bool   `json:"bot,omitempty"`
	Payload     []byte `json:"payload,omitempty"`
}

// State builds a Figure-1 state message.
func State(from ID, phase Phase, v Value, cardinality int) Message {
	return Message{
		Kind:        KindState,
		From:        from,
		Subject:     from,
		Phase:       phase,
		Value:       v,
		Cardinality: int32(cardinality),
	}
}

// Val builds a Section-4.1 majority-variant value message.
func Val(from ID, phase Phase, v Value) Message {
	return Message{Kind: KindValue, From: from, Subject: from, Phase: phase, Value: v}
}

// Initial builds a Figure-2 initial message.
func Initial(from ID, phase Phase, v Value) Message {
	return Message{Kind: KindInitial, From: from, Subject: from, Phase: phase, Value: v}
}

// Echo builds a Figure-2 echo of subject's initial message.
func Echo(from, subject ID, phase Phase, v Value) Message {
	return Message{Kind: KindEcho, From: from, Subject: subject, Phase: phase, Value: v}
}

// BenOrReport builds a Ben-Or first-step report.
func BenOrReport(from ID, round Phase, v Value) Message {
	return Message{Kind: KindBenOrReport, From: from, Subject: from, Phase: round, Value: v}
}

// BenOrProposal builds a Ben-Or second-step proposal; bot marks the "?" form.
func BenOrProposal(from ID, round Phase, v Value, bot bool) Message {
	return Message{Kind: KindBenOrProposal, From: from, Subject: from, Phase: round, Value: v, Bot: bot}
}

// Graph builds a Section-5 knowledge message with an opaque payload.
func Graph(from ID, round Phase, payload []byte) Message {
	return Message{Kind: KindGraph, From: from, Subject: from, Phase: round, Payload: payload}
}

// Gossip builds a sample-broadcast dissemination message relaying origin's
// value.
func Gossip(from, origin ID, phase Phase, v Value) Message {
	return Message{Kind: KindGossip, From: from, Subject: origin, Phase: phase, Value: v}
}

// Ready builds a sample-broadcast ready message for origin's value.
func Ready(from, origin ID, phase Phase, v Value) Message {
	return Message{Kind: KindReady, From: from, Subject: origin, Phase: phase, Value: v}
}

// String renders the message in the paper's tuple notation.
func (m Message) String() string {
	switch m.Kind {
	case KindState:
		return fmt.Sprintf("(%s, p%d, phase=%s, v=%d, card=%d)",
			m.Kind, m.From, m.Phase, m.Value, m.Cardinality)
	case KindEcho, KindGossip, KindReady:
		return fmt.Sprintf("(%s, from=p%d, subject=p%d, v=%d, phase=%s)",
			m.Kind, m.From, m.Subject, m.Value, m.Phase)
	case KindBenOrProposal:
		if m.Bot {
			return fmt.Sprintf("(proposal, p%d, round=%s, ?)", m.From, m.Phase)
		}
		return fmt.Sprintf("(proposal, p%d, round=%s, v=%d)", m.From, m.Phase, m.Value)
	default:
		return fmt.Sprintf("(%s, p%d, v=%d, phase=%s)", m.Kind, m.From, m.Value, m.Phase)
	}
}

// String renders a phase, using "*" for the wildcard.
func (p Phase) String() string {
	if p.IsWildcard() {
		return "*"
	}
	return fmt.Sprintf("%d", int32(p))
}

// Clone returns a deep copy of the message (the payload is copied).
func (m Message) Clone() Message {
	c := m
	if m.Payload != nil {
		c.Payload = make([]byte, len(m.Payload))
		copy(c.Payload, m.Payload)
	}
	return c
}
