package msg

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

// FuzzCodec drives both codec layers with arbitrary bytes: the flat
// Decode/Encode round trip and the streaming Decoder over a hostile byte
// stream. Neither layer may panic, accept an invalid message, or -- when a
// buffer does decode -- fail to round-trip it bit-exactly.
func FuzzCodec(f *testing.F) {
	for _, m := range []Message{
		State(0, 0, V0, 1),
		Echo(1, 7, WildcardPhase, V0),
		BenOrProposal(2, 8, V0, true),
		Graph(6, 3, []byte{0xde, 0xad}),
	} {
		f.Add(Encode(m))
		f.Add(AppendFrame(nil, Encode(m)))
	}
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Flat decode: success implies a valid message that round-trips.
		if m, err := Decode(data); err == nil {
			if !m.Kind.Valid() || !m.Value.Valid() {
				t.Fatalf("Decode accepted invalid message %+v", m)
			}
			if len(m.Payload) > MaxPayload {
				t.Fatalf("Decode accepted %d-byte payload", len(m.Payload))
			}
			re := Encode(m)
			back, err := Decode(re)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if !reflect.DeepEqual(normalizePayload(back), normalizePayload(m)) {
				t.Fatalf("round trip drifted: %+v -> %+v", m, back)
			}
			if !bytes.Equal(re, AppendEncode(nil, m)) {
				t.Fatal("Encode and AppendEncode disagree")
			}
		}
		// Streaming decode: the Decoder must terminate on any input --
		// hostile length prefixes included -- without panicking, and every
		// message it yields must be valid.
		dec := NewDecoder(bytes.NewReader(data))
		for i := 0; i < 1000; i++ {
			m, err := dec.Decode()
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF &&
					err != ErrFrameTooLarge && err != ErrShortMessage &&
					err != ErrBadKind && err != ErrBadValue && err != ErrPayloadTooLarge {
					t.Fatalf("unexpected decoder error: %v", err)
				}
				break
			}
			if !m.Kind.Valid() || !m.Value.Valid() {
				t.Fatalf("Decoder yielded invalid message %+v", m)
			}
		}
	})
}
