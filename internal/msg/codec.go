package msg

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire format (big-endian):
//
//	byte  0      kind
//	byte  1      flags (bit0 = Bot)
//	bytes 2-5    From (int32)
//	bytes 6-9    Subject (int32)
//	bytes 10-13  Phase (int32; -1 = wildcard)
//	byte  14     Value
//	bytes 15-18  Cardinality (int32)
//	bytes 19-22  Payload length (uint32)
//	bytes 23..   Payload
const headerLen = 23

const flagBot = 0x01

// MaxPayload bounds payload sizes accepted by Decode, protecting network
// readers from hostile length prefixes.
const MaxPayload = 1 << 20

// ErrShortMessage is returned when a buffer is too small to hold a message.
var ErrShortMessage = errors.New("msg: short message buffer")

// Encode serializes the message into a fresh byte slice.
func Encode(m Message) []byte {
	buf := make([]byte, headerLen+len(m.Payload))
	buf[0] = byte(m.Kind)
	if m.Bot {
		buf[1] |= flagBot
	}
	binary.BigEndian.PutUint32(buf[2:6], uint32(m.From))
	binary.BigEndian.PutUint32(buf[6:10], uint32(m.Subject))
	binary.BigEndian.PutUint32(buf[10:14], uint32(m.Phase))
	buf[14] = byte(m.Value)
	binary.BigEndian.PutUint32(buf[15:19], uint32(m.Cardinality))
	binary.BigEndian.PutUint32(buf[19:23], uint32(len(m.Payload)))
	copy(buf[headerLen:], m.Payload)
	return buf
}

// Decode parses a message previously produced by Encode. It validates the
// kind, the value, and the payload length.
func Decode(buf []byte) (Message, error) {
	if len(buf) < headerLen {
		return Message{}, ErrShortMessage
	}
	m := Message{
		Kind:        Kind(buf[0]),
		Bot:         buf[1]&flagBot != 0,
		From:        ID(int32(binary.BigEndian.Uint32(buf[2:6]))),
		Subject:     ID(int32(binary.BigEndian.Uint32(buf[6:10]))),
		Phase:       Phase(int32(binary.BigEndian.Uint32(buf[10:14]))),
		Value:       Value(buf[14]),
		Cardinality: int32(binary.BigEndian.Uint32(buf[15:19])),
	}
	if !m.Kind.Valid() {
		return Message{}, fmt.Errorf("msg: invalid kind %d", buf[0])
	}
	if !m.Value.Valid() {
		return Message{}, fmt.Errorf("msg: invalid value %d", buf[14])
	}
	plen := binary.BigEndian.Uint32(buf[19:23])
	if plen > MaxPayload {
		return Message{}, fmt.Errorf("msg: payload length %d exceeds limit %d", plen, MaxPayload)
	}
	if len(buf) < headerLen+int(plen) {
		return Message{}, ErrShortMessage
	}
	if plen > 0 {
		m.Payload = make([]byte, plen)
		copy(m.Payload, buf[headerLen:headerLen+int(plen)])
	}
	return m, nil
}

// EncodedLen returns the number of bytes Encode will produce for m.
func EncodedLen(m Message) int {
	return headerLen + len(m.Payload)
}
