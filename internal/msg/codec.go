package msg

import (
	"encoding/binary"
	"errors"
	"io"
)

// Wire format (big-endian):
//
//	byte  0      kind
//	byte  1      flags (bit0 = Bot)
//	bytes 2-5    From (int32)
//	bytes 6-9    Subject (int32)
//	bytes 10-13  Phase (int32; -1 = wildcard)
//	byte  14     Value
//	bytes 15-18  Cardinality (int32)
//	bytes 19-22  Payload length (uint32)
//	bytes 23..   Payload
const headerLen = 23

const flagBot = 0x01

// MaxPayload bounds payload sizes accepted by Decode, protecting network
// readers from hostile length prefixes.
const MaxPayload = 1 << 20

// MaxFrame bounds the length prefix a streaming Decoder accepts: the header,
// a maximal payload, and slack for transport-level framing (e.g. the
// netxport instance-mux header).
const MaxFrame = headerLen + MaxPayload + 64

// Decode errors are fixed values, not formatted strings: decoding runs on
// the transport hot path, and a hostile peer must not be able to make the
// reader allocate per malformed frame.
var (
	// ErrShortMessage is returned when a buffer is too small to hold a
	// message.
	ErrShortMessage = errors.New("msg: short message buffer")
	// ErrBadKind is returned when the kind byte is outside the defined range.
	ErrBadKind = errors.New("msg: invalid kind")
	// ErrBadValue is returned when the value byte is not a binary value.
	ErrBadValue = errors.New("msg: invalid value")
	// ErrPayloadTooLarge is returned when the payload length prefix exceeds
	// MaxPayload.
	ErrPayloadTooLarge = errors.New("msg: payload length exceeds limit")
	// ErrFrameTooLarge is returned by a Decoder when a frame's length prefix
	// exceeds MaxFrame.
	ErrFrameTooLarge = errors.New("msg: frame length exceeds limit")
)

// AppendEncode appends the wire encoding of m to dst and returns the
// extended slice. It allocates only when dst lacks capacity, so transport
// hot paths can reuse one buffer across messages.
func AppendEncode(dst []byte, m Message) []byte {
	var flags byte
	if m.Bot {
		flags |= flagBot
	}
	dst = append(dst, byte(m.Kind), flags)
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.From))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.Subject))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.Phase))
	dst = append(dst, byte(m.Value))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.Cardinality))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Payload)))
	return append(dst, m.Payload...)
}

// Encode serializes the message into a fresh byte slice. Hot paths should
// prefer AppendEncode with a reused buffer.
func Encode(m Message) []byte {
	return AppendEncode(make([]byte, 0, EncodedLen(m)), m)
}

// Decode parses a message previously produced by Encode. It validates the
// kind, the value, and the payload length. The payload, when present, is
// copied out of buf, so the caller may reuse buf immediately.
func Decode(buf []byte) (Message, error) {
	if len(buf) < headerLen {
		return Message{}, ErrShortMessage
	}
	m := Message{
		Kind:        Kind(buf[0]),
		Bot:         buf[1]&flagBot != 0,
		From:        ID(int32(binary.BigEndian.Uint32(buf[2:6]))),
		Subject:     ID(int32(binary.BigEndian.Uint32(buf[6:10]))),
		Phase:       Phase(int32(binary.BigEndian.Uint32(buf[10:14]))),
		Value:       Value(buf[14]),
		Cardinality: int32(binary.BigEndian.Uint32(buf[15:19])),
	}
	if !m.Kind.Valid() {
		return Message{}, ErrBadKind
	}
	if !m.Value.Valid() {
		return Message{}, ErrBadValue
	}
	plen := binary.BigEndian.Uint32(buf[19:23])
	if plen > MaxPayload {
		return Message{}, ErrPayloadTooLarge
	}
	if len(buf) < headerLen+int(plen) {
		return Message{}, ErrShortMessage
	}
	if plen > 0 {
		m.Payload = make([]byte, plen)
		copy(m.Payload, buf[headerLen:headerLen+int(plen)])
	}
	return m, nil
}

// EncodedLen returns the number of bytes Encode will produce for m.
func EncodedLen(m Message) int {
	return headerLen + len(m.Payload)
}

// Decoder reads length-prefixed frames from an io.Reader into one reused
// internal buffer: a 4-byte big-endian length followed by that many frame
// bytes. It replaces the read-loop pattern of allocating a fresh slice per
// frame; steady-state decoding performs no allocations for payload-free
// messages.
//
// A Decoder is not safe for concurrent use.
type Decoder struct {
	r          io.Reader
	buf        []byte // buffered bytes; unread region is buf[head:tail]
	head, tail int
	max        int
}

// NewDecoder returns a Decoder reading frames from r, rejecting frames
// larger than MaxFrame.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: r, buf: make([]byte, 4096), max: MaxFrame}
}

// Frame returns the next frame's bytes, excluding the length prefix. The
// returned slice aliases the Decoder's internal buffer and is valid only
// until the next Frame or Decode call. A clean EOF on a frame boundary
// returns io.EOF; an EOF mid-prefix or mid-frame returns
// io.ErrUnexpectedEOF.
func (d *Decoder) Frame() ([]byte, error) {
	if err := d.fill(4); err != nil {
		return nil, err
	}
	size := int(binary.BigEndian.Uint32(d.buf[d.head:]))
	if size > d.max {
		return nil, ErrFrameTooLarge
	}
	if err := d.fill(4 + size); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	frame := d.buf[d.head+4 : d.head+4+size]
	d.head += 4 + size
	return frame, nil
}

// Decode returns the next frame parsed as a Message.
func (d *Decoder) Decode() (Message, error) {
	frame, err := d.Frame()
	if err != nil {
		return Message{}, err
	}
	return Decode(frame)
}

// fill blocks until at least need unread bytes are buffered. On EOF with
// some-but-not-enough bytes buffered it returns io.ErrUnexpectedEOF; on EOF
// with none it returns io.EOF.
func (d *Decoder) fill(need int) error {
	if d.tail-d.head >= need {
		return nil
	}
	// Compact or grow so buf[head:] can hold the needed bytes.
	if d.head+need > len(d.buf) {
		if need <= len(d.buf) {
			copy(d.buf, d.buf[d.head:d.tail])
		} else {
			grown := make([]byte, need+need/2)
			copy(grown, d.buf[d.head:d.tail])
			d.buf = grown
		}
		d.tail -= d.head
		d.head = 0
	}
	for d.tail-d.head < need {
		n, err := d.r.Read(d.buf[d.tail:])
		d.tail += n
		if err != nil {
			if d.tail-d.head >= need {
				return nil // the final Read delivered enough alongside the error
			}
			if err == io.EOF && d.tail-d.head > 0 {
				return io.ErrUnexpectedEOF
			}
			return err
		}
	}
	return nil
}

// AppendFrame appends a length-prefixed encoding of frame bytes already in
// body form -- the inverse of Decoder.Frame -- and returns the extended
// slice.
func AppendFrame(dst, frame []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(frame)))
	return append(dst, frame...)
}
