// Package coin is the randomness seam of the randomized consensus
// protocols: a Source yields one binary coin value per protocol phase, and
// the two implementations realize the two places randomness can live.
//
// Local is the per-process coin of [BenO83]: independent fair flips drawn
// from a process-private generator, giving exponential expected phases in
// the worst case (disagreeing processes flip independently and keep
// missing each other). Shared is a deterministic common coin in the sense
// of Aspnes' survey (cs/0209014): every correct process computes the same
// value for a phase from the run seed alone, so with probability 1/2 per
// round the common flip matches any value the adversary forced a majority
// toward -- constant expected phases.
//
// The package is deliberately tiny and allocation-free on the Flip path:
// Flip sits inside every randomized machine's per-phase step, and
// consensuslint tracks it as a hot interface.
package coin

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"resilient/internal/msg"
)

// Source yields the coin value for a protocol phase. Implementations must
// be deterministic functions of their construction parameters, the phase,
// and (for stateful local coins) the draw sequence; machines call Flip at
// most once per phase, from a single goroutine.
type Source interface {
	Flip(phase msg.Phase) msg.Value
}

// Local is the process-local coin of [BenO83]: one independent fair flip
// per call, drawn from a process-private generator. Flip draws exactly one
// IntN(2) variate and ignores the phase, which makes a Local wrapping a
// generator draw-identical to calling rng.IntN(2) directly at the same
// points -- the property that keeps the pre-registry golden pins byte-exact
// across the benor refactor.
type Local struct {
	rng *rand.Rand
}

// NewLocal wraps a process-private generator as a local coin. The generator
// must not be shared with any other machine.
func NewLocal(rng *rand.Rand) *Local { return &Local{rng: rng} }

// Flip implements Source: one fair draw, phase-independent.
func (l *Local) Flip(msg.Phase) msg.Value { return msg.Value(l.rng.IntN(2)) }

// Shared is a deterministic common coin derived from (runSeed, phase):
// every process constructed with the same seed computes the same value for
// the same phase, with no communication. It is stateless -- processes may
// query phases in any order, any number of times -- which is what lets
// machines at different rounds still agree on every flip.
//
// A cryptographic common coin would derive the same interface from
// threshold signatures; the seam is the point, not the implementation.
type Shared struct {
	seed uint64
}

// NewShared builds the common coin for one run. Every correct process of
// the run must receive the same seed (the run seed).
func NewShared(seed uint64) *Shared { return &Shared{seed: seed} }

// Flip implements Source: the low bit of a splitmix64 finalizer over the
// (seed, phase) pair.
func (s *Shared) Flip(phase msg.Phase) msg.Value {
	x := s.seed + (uint64(uint32(phase))+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return msg.Value(x & 1)
}

// Scheme names how a run sources coin randomness for a protocol.
type Scheme int

const (
	// SchemeAuto selects the protocol's registered default scheme.
	SchemeAuto Scheme = iota
	// SchemeNone means the protocol draws no coin (the deterministic
	// protocols).
	SchemeNone
	// SchemeLocal gives every process an independent per-process coin.
	SchemeLocal
	// SchemeShared gives every process the same deterministic common coin,
	// derived from the run seed.
	SchemeShared
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case SchemeAuto:
		return "auto"
	case SchemeNone:
		return "none"
	case SchemeLocal:
		return "local"
	case SchemeShared:
		return "shared"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Valid reports whether s names a scheme.
func (s Scheme) Valid() bool {
	return s >= SchemeAuto && s <= SchemeShared
}

// ParseScheme resolves a scheme name: auto | none | local | shared (the
// empty string is auto).
func ParseScheme(name string) (Scheme, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "auto", "":
		return SchemeAuto, nil
	case "none":
		return SchemeNone, nil
	case "local":
		return SchemeLocal, nil
	case "shared":
		return SchemeShared, nil
	default:
		return 0, fmt.Errorf("coin: unknown scheme %q (want auto | none | local | shared)", name)
	}
}
