package coin

import (
	"math/rand/v2"
	"testing"

	"resilient/internal/msg"
)

// TestLocalDrawIdentity pins the property the registry refactor's golden
// stability rests on: a Local wrapping a generator draws exactly the
// sequence rng.IntN(2) would have drawn at the same call sites.
func TestLocalDrawIdentity(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0xdeadbeef} {
		raw := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
		wrapped := NewLocal(rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)))
		for i := 0; i < 1000; i++ {
			want := msg.Value(raw.IntN(2))
			got := wrapped.Flip(msg.Phase(i))
			if got != want {
				t.Fatalf("seed %d draw %d: Flip = %d, rng.IntN(2) = %d", seed, i, got, want)
			}
		}
	}
}

// TestSharedCommon pins the common-coin contract: every instance built from
// the same seed agrees on every phase, independent of query order.
func TestSharedCommon(t *testing.T) {
	a, b := NewShared(7), NewShared(7)
	for ph := msg.Phase(200); ph >= 0; ph-- { // b queries in reverse order
		if a.Flip(ph) != b.Flip(ph) {
			t.Fatalf("phase %d: instances of the same seed disagree", ph)
		}
	}
	// Repeated queries are stable.
	if a.Flip(3) != a.Flip(3) {
		t.Fatal("repeated Flip of the same phase changed value")
	}
}

// TestSharedVariation checks the coin is not degenerate: over many phases
// it lands near fair, and different seeds produce different streams.
func TestSharedVariation(t *testing.T) {
	const phases = 10000
	s := NewShared(1)
	ones := 0
	for ph := 0; ph < phases; ph++ {
		v := s.Flip(msg.Phase(ph))
		if !v.Valid() {
			t.Fatalf("phase %d: invalid value %d", ph, v)
		}
		if v == msg.V1 {
			ones++
		}
	}
	if ones < 4500 || ones > 5500 {
		t.Fatalf("shared coin heavily biased: %d/%d ones", ones, phases)
	}
	other := NewShared(2)
	same := 0
	for ph := 0; ph < phases; ph++ {
		if s.Flip(msg.Phase(ph)) == other.Flip(msg.Phase(ph)) {
			same++
		}
	}
	if same == phases {
		t.Fatal("seeds 1 and 2 produced identical streams")
	}
}

func TestSchemeStringParse(t *testing.T) {
	for _, s := range []Scheme{SchemeAuto, SchemeNone, SchemeLocal, SchemeShared} {
		if !s.Valid() {
			t.Errorf("%v not valid", s)
		}
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScheme(%q) = %v, %v; want %v", s.String(), got, err, s)
		}
	}
	if got, err := ParseScheme(""); err != nil || got != SchemeAuto {
		t.Errorf("ParseScheme(\"\") = %v, %v; want auto", got, err)
	}
	if _, err := ParseScheme("quantum"); err == nil {
		t.Error("ParseScheme accepted an unknown scheme")
	}
	if Scheme(99).Valid() {
		t.Error("Scheme(99) claims valid")
	}
}

// FuzzShared fuzzes the common coin over arbitrary (seed, phase) pairs:
// values are always binary and two instances of the same seed always agree.
func FuzzShared(f *testing.F) {
	f.Add(uint64(0), int32(0))
	f.Add(uint64(1), int32(-1)) // the wildcard phase
	f.Add(^uint64(0), int32(1<<30))
	f.Fuzz(func(t *testing.T, seed uint64, phase int32) {
		a, b := NewShared(seed), NewShared(seed)
		v := a.Flip(msg.Phase(phase))
		if !v.Valid() {
			t.Fatalf("invalid value %d", v)
		}
		if b.Flip(msg.Phase(phase)) != v {
			t.Fatal("same-seed instances disagree")
		}
	})
}
