package core

import (
	"testing"

	"resilient/internal/msg"
	"resilient/internal/quorum"
)

func TestConfigValidate(t *testing.T) {
	good := Config{N: 7, K: 3, Self: 2, Input: msg.V1}
	if err := good.Validate(quorum.FailStop); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	bad := []struct {
		cfg   Config
		model quorum.FaultModel
	}{
		{Config{N: 7, K: 4, Self: 0, Input: msg.V0}, quorum.FailStop},
		{Config{N: 7, K: 3, Self: 0, Input: msg.V0}, quorum.Malicious},
		{Config{N: 7, K: 3, Self: 7, Input: msg.V0}, quorum.FailStop},
		{Config{N: 7, K: 3, Self: -1, Input: msg.V0}, quorum.FailStop},
		{Config{N: 7, K: 3, Self: 0, Input: msg.Value(5)}, quorum.FailStop},
		{Config{N: 0, K: 0, Self: 0, Input: msg.V0}, quorum.FailStop},
	}
	for i, b := range bad {
		if err := b.cfg.Validate(b.model); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, b.cfg)
		}
	}
}

func TestOutboundHelpers(t *testing.T) {
	m := msg.Val(1, 2, msg.V1)
	all := ToAll(m)
	if all.To != msg.Broadcast {
		t.Errorf("ToAll target %d", all.To)
	}
	one := To(4, m)
	if one.To != 4 {
		t.Errorf("To target %d", one.To)
	}
	if all.Msg.Value != m.Value || one.Msg.Phase != m.Phase {
		t.Error("message not carried")
	}
}
