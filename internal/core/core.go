// Package core defines the protocol-machine abstraction shared by every
// consensus protocol in this repository.
//
// A protocol is written as a pure, single-threaded state machine (Machine):
// it is started once, then fed one message at a time, and each step returns
// the messages it wants sent. Machines contain no goroutines, no channels,
// and no clocks -- all asynchrony lives in the execution engines
// (internal/runtime for the deterministic discrete-event simulator,
// internal/livenet for the goroutine/TCP engine). This mirrors the paper's
// model, where an atomic step is "receive a message, perform a local
// computation, send a finite set of messages" (Section 2.1).
package core

import (
	"fmt"

	"resilient/internal/msg"
	"resilient/internal/quorum"
)

// Outbound is one send request produced by a machine step. To may be
// msg.Broadcast to address all n processes (including the sender itself).
type Outbound struct {
	To  msg.ID
	Msg msg.Message
}

// ToAll returns a broadcast outbound for m.
func ToAll(m msg.Message) Outbound {
	return Outbound{To: msg.Broadcast, Msg: m}
}

// To returns a unicast outbound for m.
func To(dst msg.ID, m msg.Message) Outbound {
	return Outbound{To: dst, Msg: m}
}

// Machine is a consensus protocol instance at one process.
//
// The engine contract:
//   - Start is called exactly once, before any OnMessage.
//   - OnMessage is called once per delivered message, never concurrently.
//   - After Halted returns true the engine stops delivering messages.
//   - Decided may flip to true at most once and the value never changes
//     afterwards (the paper's write-once decision variable d_p).
type Machine interface {
	// ID returns the process identifier.
	ID() msg.ID
	// Start performs the first protocol step and returns its sends.
	Start() []Outbound
	// OnMessage consumes one delivered message and returns resulting sends.
	OnMessage(m msg.Message) []Outbound
	// Decided reports the decision value, if the process has decided.
	Decided() (msg.Value, bool)
	// Halted reports whether the process has completed its protocol and
	// will never send again.
	Halted() bool
	// Phase returns the current phase number, for metrics and tracing.
	Phase() msg.Phase
}

// ValueReporter is implemented by machines whose current estimate is
// observable. The omniscient Byzantine strategies of Section 4 (the
// "balancing" adversary) and the experiment harness use it.
type ValueReporter interface {
	CurrentValue() msg.Value
}

// Config carries the common protocol parameters.
type Config struct {
	// N is the total number of processes.
	N int
	// K is the number of faults the protocol must tolerate (the paper's k).
	K int
	// Self is this process's identifier in 0..N-1.
	Self msg.ID
	// Input is the process's initial value i_p.
	Input msg.Value
}

// Validate checks the configuration against the given fault model's
// resilience bound.
func (c Config) Validate(model quorum.FaultModel) error {
	if err := quorum.Check(c.N, c.K, model); err != nil {
		return err
	}
	if c.Self < 0 || int(c.Self) >= c.N {
		return fmt.Errorf("core: self id %d outside 0..%d", c.Self, c.N-1)
	}
	if !c.Input.Valid() {
		return fmt.Errorf("core: invalid input value %d", c.Input)
	}
	return nil
}

// WorldView gives omniscient read access to the global simulation state.
// Only adversary strategies receive one; correct protocol machines never see
// it. It corresponds to the paper's worst-case assumption that malicious
// processes may coordinate "according to some malevolent plan" with full
// knowledge of the system (Section 4: "they will try to balance the number
// of 1 and 0 messages in the system").
type WorldView interface {
	// N returns the number of processes.
	N() int
	// K returns the fault budget.
	K() int
	// CorrectValueCounts returns how many correct processes currently hold
	// value 0 and value 1 respectively.
	CorrectValueCounts() (zeros, ones int)
	// CorrectDecidedCounts returns how many correct processes have decided
	// 0 and 1 respectively.
	CorrectDecidedCounts() (zeros, ones int)
}
