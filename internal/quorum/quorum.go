// Package quorum centralizes the exact integer threshold arithmetic used by
// the Bracha-Toueg consensus protocols.
//
// All thresholds from the paper are implemented with integer comparisons so
// that no floating-point rounding can perturb protocol logic:
//
//   - "more than n/2"        -> 2*c > n
//   - "more than (n+k)/2"    -> 2*c > n+k
//   - "more than k"          -> c > k
//   - fail-stop resilience   -> k <= (n-1)/2, i.e. n >= 2k+1
//   - malicious resilience   -> k <= (n-1)/3, i.e. n >= 3k+1
package quorum

import "fmt"

// FaultModel enumerates the two failure models investigated by the paper.
type FaultModel int

const (
	// FailStop processes may only die (stop participating) without warning.
	FailStop FaultModel = iota + 1
	// Malicious processes may send false and contradictory messages, fail
	// to send messages, and change their internal state arbitrarily.
	Malicious
)

// String returns the conventional name of the fault model.
func (m FaultModel) String() string {
	switch m {
	case FailStop:
		return "fail-stop"
	case Malicious:
		return "malicious"
	default:
		return fmt.Sprintf("FaultModel(%d)", int(m))
	}
}

// Valid reports whether m is one of the defined fault models.
func (m FaultModel) Valid() bool {
	return m == FailStop || m == Malicious
}

// MaxFaults returns the maximal k for which a k-resilient consensus protocol
// exists with n processes under the given fault model: floor((n-1)/2) for
// fail-stop and floor((n-1)/3) for malicious (Theorems 1-4 of the paper).
func MaxFaults(n int, m FaultModel) int {
	switch m {
	case FailStop:
		return (n - 1) / 2
	case Malicious:
		return (n - 1) / 3
	default:
		return 0
	}
}

// MinProcesses returns the minimal n for which k faults are tolerable under
// the given fault model: 2k+1 for fail-stop, 3k+1 for malicious.
func MinProcesses(k int, m FaultModel) int {
	switch m {
	case FailStop:
		return 2*k + 1
	case Malicious:
		return 3*k + 1
	default:
		return k + 1
	}
}

// Check validates an (n, k) configuration against the resilience bound of the
// fault model. It returns a descriptive error when the configuration is
// outside the provable region.
func Check(n, k int, m FaultModel) error {
	if !m.Valid() {
		return fmt.Errorf("quorum: unknown fault model %d", int(m))
	}
	if n < 1 {
		return fmt.Errorf("quorum: need at least one process, got n=%d", n)
	}
	if k < 0 {
		return fmt.Errorf("quorum: negative fault budget k=%d", k)
	}
	if max := MaxFaults(n, m); k > max {
		return fmt.Errorf("quorum: k=%d exceeds the %s bound floor((n-1)/%d)=%d for n=%d",
			k, m, divisorFor(m), max, n)
	}
	return nil
}

func divisorFor(m FaultModel) int {
	if m == Malicious {
		return 3
	}
	return 2
}

// ExceedsHalf reports whether count is strictly greater than n/2
// ("more than n/2" in the paper -- the witness cardinality test of Figure 1).
func ExceedsHalf(count, n int) bool {
	return 2*count > n
}

// ExceedsHalfNPlusK reports whether count is strictly greater than (n+k)/2
// (the echo-accept and decide thresholds of Figure 2).
func ExceedsHalfNPlusK(count, n, k int) bool {
	return 2*count > n+k
}

// BelowHalfNMinusK reports whether count is strictly less than (n-k)/2, the
// lower edge of the Section 4.1 fail-stop absorbing region: with fewer than
// (n-k)/2 ones, every phase view shows a zero majority and the chain
// collapses to all-zeros.
func BelowHalfNMinusK(count, n, k int) bool {
	return 2*count < n-k
}

// BelowHalfNMinus3K reports whether count is strictly less than (n-3k)/2,
// the lower edge of the Section 4.2 malicious absorbing region: even with
// all k adversary votes added, no correct view can reach the (n+k)/2
// threshold for ones.
func BelowHalfNMinus3K(count, n, k int) bool {
	return 2*count < n-3*k
}

// EchoAcceptCount returns the least integer strictly greater than (n+k)/2 --
// the number of matching echoes at which a Figure-2 process accepts a value.
func EchoAcceptCount(n, k int) int {
	return (n+k)/2 + 1
}

// WaitCount returns n-k, the number of messages each process waits for in a
// phase before acting (both protocols).
func WaitCount(n, k int) int {
	return n - k
}

// WitnessDecide reports whether witnessCount suffices to decide in Figure 1
// (strictly more than k witnesses).
func WitnessDecide(witnessCount, k int) bool {
	return witnessCount > k
}

// FastPropagation reports whether the configuration satisfies k < n/5, the
// regime in which, per the Section 3.3 note, all correct processes decide
// within one phase of the first correct decision.
func FastPropagation(n, k int) bool {
	return 5*k < n
}

// SupermajorityInput returns the least number of identical initial values
// that guarantees a fast fixed decision: strictly more than (n+k)/2.
// With that many equal inputs, Figure 1 decides within three phases and
// Figure 2 within two (Sections 2.3 and 3.3 closing notes).
func SupermajorityInput(n, k int) int {
	return (n+k)/2 + 1
}
