package quorum

import (
	"testing"
	"testing/quick"
)

func TestMaxFaultsMatchesPaperBounds(t *testing.T) {
	cases := []struct {
		n     int
		model FaultModel
		want  int
	}{
		{1, FailStop, 0}, {2, FailStop, 0}, {3, FailStop, 1},
		{4, FailStop, 1}, {5, FailStop, 2}, {7, FailStop, 3}, {100, FailStop, 49},
		{1, Malicious, 0}, {3, Malicious, 0}, {4, Malicious, 1},
		{6, Malicious, 1}, {7, Malicious, 2}, {10, Malicious, 3}, {100, Malicious, 33},
	}
	for _, c := range cases {
		if got := MaxFaults(c.n, c.model); got != c.want {
			t.Errorf("MaxFaults(%d, %v) = %d, want %d", c.n, c.model, got, c.want)
		}
	}
}

func TestMinProcessesInvertsMaxFaults(t *testing.T) {
	// Property: MinProcesses(k, m) is the least n with MaxFaults(n, m) >= k.
	for _, m := range []FaultModel{FailStop, Malicious} {
		for k := 0; k <= 50; k++ {
			n := MinProcesses(k, m)
			if MaxFaults(n, m) < k {
				t.Fatalf("%v: MaxFaults(MinProcesses(%d)=%d) = %d < %d",
					m, k, n, MaxFaults(n, m), k)
			}
			if n > 1 && MaxFaults(n-1, m) >= k {
				t.Fatalf("%v: n=%d not minimal for k=%d", m, n, k)
			}
		}
	}
}

func TestCheck(t *testing.T) {
	if err := Check(7, 3, FailStop); err != nil {
		t.Errorf("Check(7,3,failstop): %v", err)
	}
	if err := Check(7, 4, FailStop); err == nil {
		t.Error("Check(7,4,failstop) should fail")
	}
	if err := Check(7, 2, Malicious); err != nil {
		t.Errorf("Check(7,2,malicious): %v", err)
	}
	if err := Check(7, 3, Malicious); err == nil {
		t.Error("Check(7,3,malicious) should fail")
	}
	if err := Check(0, 0, FailStop); err == nil {
		t.Error("Check(0,0) should fail")
	}
	if err := Check(5, -1, FailStop); err == nil {
		t.Error("negative k should fail")
	}
	if err := Check(5, 1, FaultModel(99)); err == nil {
		t.Error("unknown model should fail")
	}
}

func TestExceedsHalfIsExact(t *testing.T) {
	// Property: ExceedsHalf(c, n) iff float comparison c > n/2, without the
	// float: verified against rational arithmetic.
	f := func(c, n uint8) bool {
		return ExceedsHalf(int(c), int(n)) == (2*int(c) > int(n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Boundary cases.
	if ExceedsHalf(2, 4) {
		t.Error("2 is not more than half of 4")
	}
	if !ExceedsHalf(3, 4) {
		t.Error("3 is more than half of 4")
	}
	if !ExceedsHalf(3, 5) {
		t.Error("3 is more than half of 5")
	}
}

func TestEchoAcceptCountIsMinimalExceeder(t *testing.T) {
	for n := 1; n <= 40; n++ {
		for k := 0; k <= n/3; k++ {
			c := EchoAcceptCount(n, k)
			if !ExceedsHalfNPlusK(c, n, k) {
				t.Fatalf("n=%d k=%d: EchoAcceptCount %d does not exceed (n+k)/2", n, k, c)
			}
			if ExceedsHalfNPlusK(c-1, n, k) {
				t.Fatalf("n=%d k=%d: %d already exceeds (n+k)/2; %d not minimal", n, k, c-1, c)
			}
		}
	}
}

func TestEchoQuorumIntersection(t *testing.T) {
	// The Theorem 4 consistency argument: two accept-quorums of size
	// > (n+k)/2 intersect in more than k processes, hence in at least one
	// correct process. Verify the arithmetic for all small configurations.
	for n := 4; n <= 60; n++ {
		for k := 0; k <= MaxFaults(n, Malicious); k++ {
			q := EchoAcceptCount(n, k)
			overlap := 2*q - n
			if overlap <= k {
				t.Fatalf("n=%d k=%d: quorums of %d overlap in %d <= k", n, k, q, overlap)
			}
		}
	}
}

func TestWaitCountExceedsEchoThreshold(t *testing.T) {
	// Deadlock-freedom needs n-k > (n+k)/2, which holds iff n > 3k.
	for n := 4; n <= 60; n++ {
		for k := 0; k <= MaxFaults(n, Malicious); k++ {
			if !ExceedsHalfNPlusK(WaitCount(n, k), n, k) {
				t.Fatalf("n=%d k=%d: n-k=%d does not exceed (n+k)/2", n, k, WaitCount(n, k))
			}
		}
	}
}

func TestSupermajorityInputConsistent(t *testing.T) {
	for n := 2; n <= 50; n++ {
		for k := 0; k <= MaxFaults(n, FailStop); k++ {
			s := SupermajorityInput(n, k)
			if !ExceedsHalfNPlusK(s, n, k) || ExceedsHalfNPlusK(s-1, n, k) {
				t.Fatalf("n=%d k=%d: SupermajorityInput %d not minimal exceeder", n, k, s)
			}
		}
	}
}

func TestFastPropagation(t *testing.T) {
	if !FastPropagation(11, 2) {
		t.Error("k=2 < 11/5 should be fast")
	}
	if FastPropagation(10, 2) {
		t.Error("k=2 = 10/5 is not strictly less")
	}
}

func TestFaultModelStrings(t *testing.T) {
	if FailStop.String() != "fail-stop" || Malicious.String() != "malicious" {
		t.Error("unexpected model names")
	}
	if FaultModel(42).Valid() {
		t.Error("42 should not be a valid model")
	}
}
