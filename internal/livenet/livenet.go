// Package livenet is the goroutine-based live execution engine: one
// goroutine per process, each driving a core.Machine against a
// transport.Conn (in-memory or TCP). Unlike internal/runtime it has no
// global event queue and no simulated clock -- asynchrony comes from real
// goroutine scheduling and real sockets -- so it demonstrates the protocols
// in the deployment shape a downstream user would run them in.
//
// The engine composes the shared fault/delivery layer of internal/policy:
// a faults.Plan becomes per-process FaultHarnesses (crash-at-phase,
// initially-dead, mid-broadcast send suppression -- the same semantics the
// simulator applies) and a policy.LinkPolicy becomes per-connection delay,
// loss, and partition decisions interpreted in wall-clock time. The same
// (protocol, n, k, faults, policy, seed) scenario therefore runs unchanged
// on the simulator and on the live engines.
package livenet

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"time"

	"resilient/internal/core"
	"resilient/internal/faults"
	"resilient/internal/metrics"
	"resilient/internal/msg"
	"resilient/internal/policy"
	"resilient/internal/transport"
)

// liveMetrics holds the engine's instrument handles; all fields are nil
// (free no-ops) when metrics are off.
type liveMetrics struct {
	sent         *metrics.Counter
	received     *metrics.Counter
	decisions    *metrics.Counter
	crashes      *metrics.Counter
	runs         *metrics.Counter
	decisionSecs *metrics.Histogram
	runSecs      *metrics.Histogram
}

func newLiveMetrics(reg *metrics.Registry) liveMetrics {
	if reg == nil {
		return liveMetrics{}
	}
	m := reg.Scoped("livenet.")
	return liveMetrics{
		sent:         m.Counter("messages_sent"),
		received:     m.Counter("messages_received"),
		decisions:    m.Counter("decisions"),
		crashes:      m.Counter("crashes"),
		runs:         m.Counter("runs"),
		decisionSecs: m.Histogram("decision_wall_seconds", metrics.TimeBuckets()),
		runSecs:      m.Histogram("run_wall_seconds", metrics.TimeBuckets()),
	}
}

// Decision reports one process's decision.
type Decision struct {
	Process msg.ID
	Value   msg.Value
	Phase   msg.Phase
	At      time.Time
}

// errCrashed is Driver-internal: a send was suppressed because the fault
// harness reached its planned crash point. It never escapes Run.
var errCrashed = errors.New("livenet: process crashed by fault plan")

// Driver runs one machine against one endpoint.
type Driver struct {
	machine core.Machine
	conn    transport.Conn
	n       int
	met     liveMetrics
	// OnDecide, if set, is invoked exactly once when the machine decides.
	OnDecide func(Decision)
	// Harness, when non-nil, applies a fail-stop crash plan to this
	// process: the driver consults it before every individual send and
	// after every machine step, exactly like the simulator's dispatch loop.
	Harness *policy.FaultHarness
	// OnCrash, if set, is invoked exactly once when the harness kills the
	// process.
	OnCrash func(msg.ID)

	crashNoted bool
}

// NewDriver returns a driver for machine over conn in an n-process system.
func NewDriver(machine core.Machine, conn transport.Conn, n int) *Driver {
	return &Driver{machine: machine, conn: conn, n: n}
}

// Run starts the machine and processes messages until the machine halts,
// dies under its fault plan, the context is cancelled, or the connection
// closes. It returns nil on a clean halt, crash, or connection close and
// the underlying error otherwise.
func (d *Driver) Run(ctx context.Context) error {
	if h := d.Harness; h != nil {
		// An initially-dead process (phase 0, zero budget) dies here; its
		// machine still takes its Start step -- as in the simulator -- but
		// every send is suppressed.
		h.CheckPhase()
	}
	err := d.sendAll(d.machine.Start())
	d.noteDecision()
	if d.dead() {
		d.noteCrash()
		return nil
	}
	if err != nil {
		return err
	}
	for !d.machine.Halted() {
		if err := ctx.Err(); err != nil {
			return nil // cancelled: treated as a clean shutdown
		}
		in, err := d.conn.Recv()
		if err != nil {
			if errors.Is(err, transport.ErrClosed) {
				return nil
			}
			return fmt.Errorf("p%d recv: %w", d.machine.ID(), err)
		}
		d.met.received.Inc()
		outs := d.machine.OnMessage(in)
		if h := d.Harness; h != nil {
			h.CheckPhase() // phase advance may reach the planned crash point
		}
		var sendErr error
		if !d.dead() {
			sendErr = d.sendAll(outs)
		}
		d.noteDecision() // a process may decide in the step it dies
		if d.dead() {
			d.noteCrash()
			return nil
		}
		if sendErr != nil {
			return sendErr
		}
	}
	return nil
}

func (d *Driver) dead() bool {
	return d.Harness != nil && d.Harness.Dead()
}

func (d *Driver) sendAll(outs []core.Outbound) error {
	for _, o := range outs {
		if o.To == msg.Broadcast {
			for q := 0; q < d.n; q++ {
				if err := d.send(msg.ID(q), o.Msg); err != nil {
					return err
				}
			}
			continue
		}
		if err := d.send(o.To, o.Msg); err != nil {
			return err
		}
	}
	return nil
}

func (d *Driver) send(to msg.ID, m msg.Message) error {
	if d.Harness != nil && !d.Harness.AllowSend() {
		return errCrashed // mid-broadcast death: earlier sends stand
	}
	err := d.conn.Send(to, m)
	if err == nil || errors.Is(err, transport.ErrClosed) {
		d.met.sent.Inc()
		return nil // a closed destination is indistinguishable from a slow one
	}
	return fmt.Errorf("p%d send to p%d: %w", d.machine.ID(), to, err)
}

func (d *Driver) noteDecision() {
	if d.OnDecide == nil {
		return
	}
	if v, ok := d.machine.Decided(); ok {
		cb := d.OnDecide
		d.OnDecide = nil
		cb(Decision{
			Process: d.machine.ID(),
			Value:   v,
			Phase:   d.machine.Phase(),
			At:      time.Now(),
		})
	}
}

func (d *Driver) noteCrash() {
	if d.crashNoted {
		return
	}
	d.crashNoted = true
	d.met.crashes.Inc()
	if d.OnCrash != nil {
		d.OnCrash(d.machine.ID())
	}
}

// Report summarizes a cluster run. Its shape mirrors runtime.Result so a
// scenario's outcome reads the same from either engine.
type Report struct {
	// Decisions holds each process's decision, in decision order.
	// Byzantine processes are excluded.
	Decisions []Decision
	// Agreement reports whether all decisions carry the same value.
	Agreement bool
	// Value is the common decision when Agreement holds.
	Value msg.Value
	// AllDecided reports whether every correct (non-Byzantine,
	// non-crash-planned) process decided.
	AllDecided bool
	// Crashed lists the processes that died under the fault plan, in
	// ascending order.
	Crashed []msg.ID
	// Elapsed is the wall-clock duration from start to the last decision.
	Elapsed time.Duration
}

// DecisionMap returns the decisions keyed by process.
func (r *Report) DecisionMap() map[msg.ID]msg.Value {
	m := make(map[msg.ID]msg.Value, len(r.Decisions))
	for _, d := range r.Decisions {
		m[d.Process] = d.Value
	}
	return m
}

// Cluster runs n machines to decision over a shared in-memory message
// system, or over caller-supplied connections (e.g. TCP endpoints).
type Cluster struct {
	machines []core.Machine
	conns    []transport.Conn
	cleanup  func()
	// Metrics, when non-nil, receives live-run accounting under the
	// "livenet." prefix. Set it before calling Run.
	Metrics *metrics.Registry
	// Crashes is the fail-stop fault plan, applied through per-process
	// FaultHarnesses with the same semantics as the simulator. Set it
	// before calling Run.
	Crashes faults.Plan
	// Policy, when non-nil, decides per-link delivery (delay, loss,
	// partition) in wall-clock time, one abstract unit = Unit.
	Policy policy.LinkPolicy
	// Unit is the wall-clock length of one abstract time unit for Policy
	// delays (0 = DefaultUnit).
	Unit time.Duration
	// Seed seeds the per-connection policy RNGs.
	Seed uint64
	// Byzantine marks processes whose machines play an adversary role;
	// they are excluded from decision accounting, like in the simulator.
	Byzantine map[msg.ID]bool
}

// NewMemCluster wires the given machines over a fresh in-memory message
// system. The machine for process i must have ID i.
func NewMemCluster(machines []core.Machine) (*Cluster, error) {
	n := len(machines)
	mem := transport.NewMem(n)
	conns := make([]transport.Conn, n)
	for i, m := range machines {
		if int(m.ID()) != i {
			return nil, fmt.Errorf("livenet: machine %d has id %d", i, m.ID())
		}
		c, err := mem.Conn(msg.ID(i))
		if err != nil {
			return nil, err
		}
		conns[i] = c
	}
	return &Cluster{machines: machines, conns: conns, cleanup: mem.Close}, nil
}

// NewJitterCluster wires the given machines over an in-memory message
// system with random per-message delivery delays up to maxDelay. This
// realizes the paper's probabilistic delivery assumption (Section 2.3) in
// the live engine; protocols whose convergence depends on view randomness
// (notably the Section 4.1 majority variant on balanced inputs) need it.
func NewJitterCluster(machines []core.Machine, maxDelay time.Duration, seed uint64) (*Cluster, error) {
	n := len(machines)
	net := transport.NewJitter(n, maxDelay, seed)
	conns := make([]transport.Conn, n)
	for i, m := range machines {
		if int(m.ID()) != i {
			return nil, fmt.Errorf("livenet: machine %d has id %d", i, m.ID())
		}
		c, err := net.Conn(msg.ID(i))
		if err != nil {
			return nil, err
		}
		conns[i] = c
	}
	return &Cluster{machines: machines, conns: conns, cleanup: net.Close}, nil
}

// NewCluster wires machines over caller-supplied connections (one per
// machine, same order).
func NewCluster(machines []core.Machine, conns []transport.Conn) (*Cluster, error) {
	if len(machines) != len(conns) {
		return nil, fmt.Errorf("livenet: %d machines, %d conns", len(machines), len(conns))
	}
	return &Cluster{machines: machines, conns: conns}, nil
}

// Run drives every machine concurrently until all correct processes have
// decided or the context expires. It returns the collected report; a
// context expiry with missing decisions is reported via the error.
func (c *Cluster) Run(ctx context.Context) (*Report, error) {
	n := len(c.machines)
	if err := c.Crashes.Validate(n); err != nil {
		return nil, err
	}
	start := time.Now()
	conns := c.conns
	if c.Policy != nil {
		conns = make([]transport.Conn, n)
		for i, inner := range c.conns {
			conns[i] = newPolicyConn(inner, c.Policy, c.Unit, start,
				c.Seed^uint64(i+1)*0xbf58476d1ce4e5b9)
		}
	}
	decCh := make(chan Decision, n)
	crashCh := make(chan msg.ID, n)
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	if c.cleanup != nil {
		defer c.cleanup()
	}

	met := newLiveMetrics(c.Metrics)
	var wg sync.WaitGroup
	errCh := make(chan error, n)
	// pending tracks the correct processes whose decisions the run waits
	// for: crash-planned and Byzantine processes are excluded, mirroring
	// the simulator's mustDecide accounting.
	awaited := make([]bool, n)
	pending := 0
	for i := range c.machines {
		id := msg.ID(i)
		_, planned := c.Crashes[id]
		if !planned && !c.Byzantine[id] {
			awaited[i] = true
			pending++
		}
		d := NewDriver(c.machines[i], conns[i], n)
		d.met = met
		if len(c.Crashes) > 0 {
			d.Harness = policy.NewFaultHarness(c.machines[i], c.Crashes)
		}
		d.OnDecide = func(dec Decision) { decCh <- dec }
		d.OnCrash = func(id msg.ID) { crashCh <- id }
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := d.Run(runCtx); err != nil {
				errCh <- err
			}
		}()
	}

	// Close every connection the moment the run context ends -- whether by
	// the normal all-decided cancel, a driver error, or the caller's
	// cancellation/deadline -- so no driver can hang inside conn.Recv
	// after cancellation.
	go func() {
		<-runCtx.Done()
		for _, conn := range conns {
			conn.Close()
		}
	}()

	report := &Report{}
	var runErr error
	record := func(dec Decision) {
		if c.Byzantine[dec.Process] {
			return // an adversary's "decision" carries no weight
		}
		report.Decisions = append(report.Decisions, dec)
		met.decisions.Inc()
		met.decisionSecs.Observe(dec.At.Sub(start).Seconds())
		if awaited[dec.Process] {
			awaited[dec.Process] = false
			pending--
		}
	}
collect:
	for pending > 0 {
		select {
		case dec := <-decCh:
			record(dec)
		case id := <-crashCh:
			report.Crashed = append(report.Crashed, id)
		case err := <-errCh:
			runErr = err
			break collect
		case <-ctx.Done():
			runErr = fmt.Errorf("livenet: %d/%d decisions before deadline: %w",
				len(report.Decisions), len(report.Decisions)+pending, ctx.Err())
			break collect
		}
	}
	report.Elapsed = time.Since(start)

	// Shut down: cancel (the watcher closes the connections, unblocking
	// every receiver), then wait for the drivers.
	cancel()
	wg.Wait()
	// Drain decisions and crashes that raced with shutdown.
	for {
		select {
		case dec := <-decCh:
			record(dec)
			continue
		case id := <-crashCh:
			report.Crashed = append(report.Crashed, id)
			continue
		default:
		}
		break
	}
	met.runs.Inc()
	met.runSecs.Observe(report.Elapsed.Seconds())

	report.AllDecided = pending == 0
	slices.Sort(report.Crashed)
	report.Agreement = true
	for i, dec := range report.Decisions {
		if i == 0 {
			report.Value = dec.Value
			continue
		}
		if dec.Value != report.Value {
			report.Agreement = false
		}
	}
	return report, runErr
}
