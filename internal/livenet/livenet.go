// Package livenet is the goroutine-based live execution engine: one
// goroutine per process, each driving a core.Machine against a
// transport.Conn (in-memory or TCP). Unlike internal/runtime it has no
// global event queue and no simulated clock -- asynchrony comes from real
// goroutine scheduling and real sockets -- so it demonstrates the protocols
// in the deployment shape a downstream user would run them in.
package livenet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"resilient/internal/core"
	"resilient/internal/metrics"
	"resilient/internal/msg"
	"resilient/internal/transport"
)

// liveMetrics holds the engine's instrument handles; all fields are nil
// (free no-ops) when metrics are off.
type liveMetrics struct {
	sent         *metrics.Counter
	received     *metrics.Counter
	decisions    *metrics.Counter
	runs         *metrics.Counter
	decisionSecs *metrics.Histogram
	runSecs      *metrics.Histogram
}

func newLiveMetrics(reg *metrics.Registry) liveMetrics {
	if reg == nil {
		return liveMetrics{}
	}
	m := reg.Scoped("livenet.")
	return liveMetrics{
		sent:         m.Counter("messages_sent"),
		received:     m.Counter("messages_received"),
		decisions:    m.Counter("decisions"),
		runs:         m.Counter("runs"),
		decisionSecs: m.Histogram("decision_wall_seconds", metrics.TimeBuckets()),
		runSecs:      m.Histogram("run_wall_seconds", metrics.TimeBuckets()),
	}
}

// Decision reports one process's decision.
type Decision struct {
	Process msg.ID
	Value   msg.Value
	Phase   msg.Phase
	At      time.Time
}

// Driver runs one machine against one endpoint.
type Driver struct {
	machine core.Machine
	conn    transport.Conn
	n       int
	met     liveMetrics
	// OnDecide, if set, is invoked exactly once when the machine decides.
	OnDecide func(Decision)
}

// NewDriver returns a driver for machine over conn in an n-process system.
func NewDriver(machine core.Machine, conn transport.Conn, n int) *Driver {
	return &Driver{machine: machine, conn: conn, n: n}
}

// Run starts the machine and processes messages until the machine halts,
// the context is cancelled, or the connection closes. It returns nil on a
// clean halt or connection close and the underlying error otherwise.
func (d *Driver) Run(ctx context.Context) error {
	if err := d.sendAll(d.machine.Start()); err != nil {
		return err
	}
	d.noteDecision()
	for !d.machine.Halted() {
		if err := ctx.Err(); err != nil {
			return nil // cancelled: treated as a clean shutdown
		}
		in, err := d.conn.Recv()
		if err != nil {
			if errors.Is(err, transport.ErrClosed) {
				return nil
			}
			return fmt.Errorf("p%d recv: %w", d.machine.ID(), err)
		}
		d.met.received.Inc()
		if err := d.sendAll(d.machine.OnMessage(in)); err != nil {
			return err
		}
		d.noteDecision()
	}
	return nil
}

func (d *Driver) sendAll(outs []core.Outbound) error {
	for _, o := range outs {
		if o.To == msg.Broadcast {
			for q := 0; q < d.n; q++ {
				if err := d.send(msg.ID(q), o.Msg); err != nil {
					return err
				}
			}
			continue
		}
		if err := d.send(o.To, o.Msg); err != nil {
			return err
		}
	}
	return nil
}

func (d *Driver) send(to msg.ID, m msg.Message) error {
	err := d.conn.Send(to, m)
	if err == nil || errors.Is(err, transport.ErrClosed) {
		d.met.sent.Inc()
		return nil // a closed destination is indistinguishable from a slow one
	}
	return fmt.Errorf("p%d send to p%d: %w", d.machine.ID(), to, err)
}

func (d *Driver) noteDecision() {
	if d.OnDecide == nil {
		return
	}
	if v, ok := d.machine.Decided(); ok {
		cb := d.OnDecide
		d.OnDecide = nil
		cb(Decision{
			Process: d.machine.ID(),
			Value:   v,
			Phase:   d.machine.Phase(),
			At:      time.Now(),
		})
	}
}

// Report summarizes a cluster run.
type Report struct {
	// Decisions holds each process's decision, in decision order.
	Decisions []Decision
	// Agreement reports whether all decisions carry the same value.
	Agreement bool
	// Value is the common decision when Agreement holds.
	Value msg.Value
	// Elapsed is the wall-clock duration from start to the last decision.
	Elapsed time.Duration
}

// Cluster runs n machines to decision over a shared in-memory message
// system, or over caller-supplied connections (e.g. TCP endpoints).
type Cluster struct {
	machines []core.Machine
	conns    []transport.Conn
	cleanup  func()
	// Metrics, when non-nil, receives live-run accounting under the
	// "livenet." prefix. Set it before calling Run.
	Metrics *metrics.Registry
}

// NewMemCluster wires the given machines over a fresh in-memory message
// system. The machine for process i must have ID i.
func NewMemCluster(machines []core.Machine) (*Cluster, error) {
	n := len(machines)
	mem := transport.NewMem(n)
	conns := make([]transport.Conn, n)
	for i, m := range machines {
		if int(m.ID()) != i {
			return nil, fmt.Errorf("livenet: machine %d has id %d", i, m.ID())
		}
		c, err := mem.Conn(msg.ID(i))
		if err != nil {
			return nil, err
		}
		conns[i] = c
	}
	return &Cluster{machines: machines, conns: conns, cleanup: mem.Close}, nil
}

// NewJitterCluster wires the given machines over an in-memory message
// system with random per-message delivery delays up to maxDelay. This
// realizes the paper's probabilistic delivery assumption (Section 2.3) in
// the live engine; protocols whose convergence depends on view randomness
// (notably the Section 4.1 majority variant on balanced inputs) need it.
func NewJitterCluster(machines []core.Machine, maxDelay time.Duration, seed uint64) (*Cluster, error) {
	n := len(machines)
	net := transport.NewJitter(n, maxDelay, seed)
	conns := make([]transport.Conn, n)
	for i, m := range machines {
		if int(m.ID()) != i {
			return nil, fmt.Errorf("livenet: machine %d has id %d", i, m.ID())
		}
		c, err := net.Conn(msg.ID(i))
		if err != nil {
			return nil, err
		}
		conns[i] = c
	}
	return &Cluster{machines: machines, conns: conns, cleanup: net.Close}, nil
}

// NewCluster wires machines over caller-supplied connections (one per
// machine, same order).
func NewCluster(machines []core.Machine, conns []transport.Conn) (*Cluster, error) {
	if len(machines) != len(conns) {
		return nil, fmt.Errorf("livenet: %d machines, %d conns", len(machines), len(conns))
	}
	return &Cluster{machines: machines, conns: conns}, nil
}

// Run drives every machine concurrently until all have decided or the
// context expires. It returns the collected report; a context expiry with
// missing decisions is reported via the error.
func (c *Cluster) Run(ctx context.Context) (*Report, error) {
	n := len(c.machines)
	start := time.Now()
	decCh := make(chan Decision, n)
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	if c.cleanup != nil {
		defer c.cleanup()
	}

	met := newLiveMetrics(c.Metrics)
	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for i := range c.machines {
		d := NewDriver(c.machines[i], c.conns[i], n)
		d.met = met
		d.OnDecide = func(dec Decision) { decCh <- dec }
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := d.Run(runCtx); err != nil {
				errCh <- err
			}
		}()
	}

	report := &Report{}
	var runErr error
collect:
	for len(report.Decisions) < n {
		select {
		case dec := <-decCh:
			report.Decisions = append(report.Decisions, dec)
			met.decisions.Inc()
			met.decisionSecs.Observe(dec.At.Sub(start).Seconds())
		case err := <-errCh:
			runErr = err
			break collect
		case <-ctx.Done():
			runErr = fmt.Errorf("livenet: %d/%d decisions before deadline: %w",
				len(report.Decisions), n, ctx.Err())
			break collect
		}
	}
	report.Elapsed = time.Since(start)

	// Shut down: cancel, close connections to unblock receivers, wait.
	cancel()
	for _, conn := range c.conns {
		conn.Close()
	}
	wg.Wait()
	// Drain any decisions that raced with shutdown.
	for {
		select {
		case dec := <-decCh:
			report.Decisions = append(report.Decisions, dec)
			met.decisions.Inc()
			met.decisionSecs.Observe(dec.At.Sub(start).Seconds())
			continue
		default:
		}
		break
	}
	met.runs.Inc()
	met.runSecs.Observe(report.Elapsed.Seconds())

	report.Agreement = true
	for i, dec := range report.Decisions {
		if i == 0 {
			report.Value = dec.Value
			continue
		}
		if dec.Value != report.Value {
			report.Agreement = false
		}
	}
	return report, runErr
}
