package livenet

import (
	"math/rand/v2"
	"sync"
	"time"

	"resilient/internal/msg"
	"resilient/internal/policy"
	"resilient/internal/sched"
	"resilient/internal/transport"
)

// DefaultUnit is the wall-clock length of one abstract time unit when a
// LinkPolicy runs under a live engine. The default Uniform[0.1, 1] policy
// then yields 0.1ms--1ms delays, comfortably above goroutine-scheduling
// noise yet fast enough for tests.
const DefaultUnit = time.Millisecond

// policyConn applies a LinkPolicy to outbound sends in wall-clock time: a
// dropped message vanishes (indistinguishable from an arbitrarily slow one,
// per the model) and a delayed message is delivered by a timer after
// Delay×unit. It is the live-engine counterpart of the discrete-event
// engine's scheduled delivery queue.
type policyConn struct {
	inner transport.Conn
	pol   policy.LinkPolicy
	unit  time.Duration
	epoch time.Time

	mu     sync.Mutex
	rng    *rand.Rand
	seq    uint64
	timers map[uint64]*time.Timer
	closed bool
}

var _ transport.Conn = (*policyConn)(nil)

func newPolicyConn(inner transport.Conn, pol policy.LinkPolicy, unit time.Duration, epoch time.Time, seed uint64) *policyConn {
	if unit <= 0 {
		unit = DefaultUnit
	}
	return &policyConn{
		inner:  inner,
		pol:    pol,
		unit:   unit,
		epoch:  epoch,
		rng:    rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		timers: make(map[uint64]*time.Timer),
	}
}

func (c *policyConn) ID() msg.ID { return c.inner.ID() }

// Send consults the policy and either drops the message, forwards it
// immediately, or schedules a delayed delivery. Delivery errors after the
// delay are deliberately dropped: a message to a closed endpoint is
// indistinguishable from a slow one.
func (c *policyConn) Send(to msg.ID, m msg.Message) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return transport.ErrClosed
	}
	now := float64(time.Since(c.epoch)) / float64(c.unit)
	v := c.pol.Link(c.inner.ID(), to, m, now, c.rng)
	if v.Drop {
		c.mu.Unlock()
		return nil // lost by the link; the sender cannot tell
	}
	d := time.Duration(sched.Clamp(v.Delay) * float64(c.unit))
	c.seq++
	id := c.seq
	// The timer callback deletes its own entry; it cannot run before the
	// entry exists because it needs c.mu, held until after the insert.
	t := time.AfterFunc(d, func() {
		_ = c.inner.Send(to, m)
		c.mu.Lock()
		delete(c.timers, id)
		c.mu.Unlock()
	})
	c.timers[id] = t
	c.mu.Unlock()
	return nil
}

func (c *policyConn) Recv() (msg.Message, error) {
	return c.inner.Recv()
}

// Close stops every pending delayed delivery (in-flight messages at
// shutdown are lost, like any undelivered message) and closes the wrapped
// connection.
func (c *policyConn) Close() error {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		for id, t := range c.timers {
			t.Stop()
			delete(c.timers, id)
		}
	}
	c.mu.Unlock()
	return c.inner.Close()
}
