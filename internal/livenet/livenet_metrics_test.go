package livenet

import (
	"context"
	"testing"
	"time"

	"resilient/internal/metrics"
)

// TestClusterMetricsAccounting runs a memory-transport cluster with a
// registry attached and checks the livenet.* series against the report.
func TestClusterMetricsAccounting(t *testing.T) {
	cluster, err := NewMemCluster(failstopMachines(t, 5, 2, mixed(5)))
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	cluster.Metrics = reg
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := cluster.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Decisions) != 5 || !rep.Agreement {
		t.Fatalf("run did not reach full agreement: %+v", rep)
	}

	c := reg.Snapshot().Counters
	if c["livenet.decisions"] != int64(len(rep.Decisions)) {
		t.Errorf("decisions = %d, want %d", c["livenet.decisions"], len(rep.Decisions))
	}
	if c["livenet.runs"] != 1 {
		t.Errorf("runs = %d, want 1", c["livenet.runs"])
	}
	if c["livenet.messages_sent"] <= 0 || c["livenet.messages_received"] <= 0 {
		t.Errorf("traffic not accounted: sent=%d received=%d",
			c["livenet.messages_sent"], c["livenet.messages_received"])
	}

	h := reg.Snapshot().Histograms
	if got := h["livenet.decision_wall_seconds"].Count; got != uint64(len(rep.Decisions)) {
		t.Errorf("decision_wall_seconds count = %d, want %d", got, len(rep.Decisions))
	}
	if h["livenet.run_wall_seconds"].Count != 1 {
		t.Errorf("run_wall_seconds count = %d, want 1", h["livenet.run_wall_seconds"].Count)
	}
}

// TestClusterNilMetricsStillRuns checks the zero-config path: no registry,
// same protocol outcome.
func TestClusterNilMetricsStillRuns(t *testing.T) {
	cluster, err := NewMemCluster(failstopMachines(t, 5, 2, mixed(5)))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := cluster.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Agreement {
		t.Fatalf("agreement lost without metrics: %+v", rep)
	}
}
