package livenet

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"resilient/internal/core"
	"resilient/internal/failstop"
	"resilient/internal/msg"
	"resilient/internal/netxport"
	"resilient/internal/transport"
)

// tcpMesh starts n netxport endpoints on ephemeral loopback ports, fully
// wired, torn down with the test.
func tcpMesh(t *testing.T, n int) []*netxport.Endpoint {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	endpoints := make([]*netxport.Endpoint, n)
	for i := 0; i < n; i++ {
		ep, err := netxport.Listen(msg.ID(i), addrs)
		if err != nil {
			t.Fatal(err)
		}
		endpoints[i] = ep
		t.Cleanup(func() { ep.Close() })
	}
	for _, ep := range endpoints {
		for j, other := range endpoints {
			ep.SetPeerAddr(msg.ID(j), other.Addr())
		}
	}
	return endpoints
}

// runFailStop runs one fail-stop consensus instance over the given
// connections and returns its decision map. It is goroutine-safe (no
// testing.T), so mux'd instances can run concurrently.
func runFailStop(n, k int, inputs []msg.Value, conns []transport.Conn) (map[msg.ID]msg.Value, error) {
	machines := make([]core.Machine, n)
	for i := range machines {
		m, err := failstop.New(core.Config{N: n, K: k, Self: msg.ID(i), Input: inputs[i]}, nil)
		if err != nil {
			return nil, err
		}
		machines[i] = m
	}
	cluster, err := NewCluster(machines, conns)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := cluster.Run(ctx)
	if err != nil {
		return nil, err
	}
	if !rep.AllDecided || !rep.Agreement {
		return nil, fmt.Errorf("allDecided=%v agreement=%v decisions=%+v",
			rep.AllDecided, rep.Agreement, rep.Decisions)
	}
	return rep.DecisionMap(), nil
}

// TestMuxParityWithDedicatedSockets pins the multiplexing contract: several
// consensus instances sharing ONE socket mesh via Endpoint.Instance must
// decide exactly what each instance decides on a dedicated
// one-socket-mesh-per-instance deployment. Each instance is unanimous on
// the OPPOSITE value of its neighbours, so validity pins every expected
// decision regardless of scheduling (mixed inputs would make the fail-stop
// decision legitimately arrival-order-dependent on a live engine), while a
// cross-instance frame leak injects wrong-valued frames and flips a pinned
// decision rather than hiding in agreement.
func TestMuxParityWithDedicatedSockets(t *testing.T) {
	const (
		n         = 5
		k         = 2
		instances = 3
	)
	inputsFor := func(j int) []msg.Value {
		in := make([]msg.Value, n)
		for i := range in {
			in[i] = msg.Value(j % 2)
		}
		return in
	}

	// Dedicated: each instance gets its own full mesh of sockets.
	dedicated := make([]map[msg.ID]msg.Value, instances)
	for j := 0; j < instances; j++ {
		endpoints := tcpMesh(t, n)
		conns := make([]transport.Conn, n)
		for i := range conns {
			conns[i] = endpoints[i]
		}
		var err error
		dedicated[j], err = runFailStop(n, k, inputsFor(j), conns)
		if err != nil {
			t.Fatalf("dedicated instance %d: %v", j, err)
		}
	}

	// Mux'd: ONE mesh, instances demuxed by the per-frame instance id,
	// all running concurrently to interleave their frames on the sockets.
	endpoints := tcpMesh(t, n)
	muxed := make([]map[msg.ID]msg.Value, instances)
	errs := make([]error, instances)
	instConns := make([][]transport.Conn, instances)
	for j := 0; j < instances; j++ {
		instConns[j] = make([]transport.Conn, n)
		for i, ep := range endpoints {
			c, err := ep.Instance(uint32(j + 1))
			if err != nil {
				t.Fatal(err)
			}
			instConns[j][i] = c
		}
	}
	var wg sync.WaitGroup
	for j := 0; j < instances; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			muxed[j], errs[j] = runFailStop(n, k, inputsFor(j), instConns[j])
		}(j)
	}
	wg.Wait()

	for j := 0; j < instances; j++ {
		if errs[j] != nil {
			t.Fatalf("mux instance %d: %v", j, errs[j])
		}
		if len(muxed[j]) != n {
			t.Fatalf("instance %d: %d decisions over mux, want %d", j, len(muxed[j]), n)
		}
		for id, v := range dedicated[j] {
			if muxed[j][id] != v {
				t.Errorf("instance %d process %d: mux decided %v, dedicated decided %v",
					j, id, muxed[j][id], v)
			}
		}
	}
}
