package livenet

import (
	"context"
	"fmt"
	"sync"

	"resilient/internal/core"
	"resilient/internal/metrics"
	"resilient/internal/msg"
	"resilient/internal/transport"
)

// InstanceOutcome is the result of one multi-instance consensus slot run via
// RunInstance.
type InstanceOutcome struct {
	// Value is the first decision's value; with Agreement it is the slot's
	// decided value.
	Value msg.Value
	// Agreement reports whether every decision carried the same value.
	Agreement bool
	// Decided counts the processes that decided.
	Decided int
}

// RunInstance drives one consensus instance -- one slot of a replicated log
// -- over caller-supplied connections: machines[i] runs over conns[i] for
// every i with run[i] set, sharing the conns' underlying transport with
// every other in-flight instance. Processes with run[i] unset (dead for
// this slot under a slot-boundary fault plan) never start and may have nil
// conns; traffic addressed to them is dropped by the transport, exactly as
// for a crashed process.
//
// The call returns once every running machine has decided, a driver fails,
// or ctx expires. All non-nil conns are closed on return, releasing their
// transport resources (for a netxport instance conn, its demux id).
func RunInstance(ctx context.Context, machines []core.Machine, conns []transport.Conn, run []bool, reg *metrics.Registry) (InstanceOutcome, error) {
	n := len(machines)
	if len(conns) != n || len(run) != n {
		return InstanceOutcome{}, fmt.Errorf("livenet: %d machines, %d conns, %d run flags", n, len(conns), len(run))
	}
	met := newLiveMetrics(reg)
	awaited := 0
	for i := range machines {
		if run[i] {
			if conns[i] == nil {
				return InstanceOutcome{}, fmt.Errorf("livenet: running process %d has nil conn", i)
			}
			awaited++
		}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	decCh := make(chan Decision, n)
	errCh := make(chan error, n)
	var wg sync.WaitGroup
	for i := range machines {
		if !run[i] {
			continue
		}
		d := NewDriver(machines[i], conns[i], n)
		d.met = met
		d.OnDecide = func(dec Decision) { decCh <- dec }
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := d.Run(runCtx); err != nil {
				errCh <- err
			}
		}()
	}
	// Close every conn the moment the instance ends -- decision, error, or
	// cancellation -- so no driver hangs in Recv and the transport resources
	// (mux ids, mailboxes) are released promptly.
	closeAll := func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}
	go func() {
		<-runCtx.Done()
		closeAll()
	}()

	out := InstanceOutcome{Agreement: true}
	var runErr error
collect:
	for out.Decided < awaited {
		select {
		case dec := <-decCh:
			if out.Decided == 0 {
				out.Value = dec.Value
			} else if dec.Value != out.Value {
				out.Agreement = false
			}
			out.Decided++
		case err := <-errCh:
			runErr = err
			break collect
		case <-ctx.Done():
			runErr = fmt.Errorf("livenet: instance %d/%d decisions before deadline: %w",
				out.Decided, awaited, ctx.Err())
			break collect
		}
	}
	cancel()
	wg.Wait()
	// Drain decisions that raced with shutdown.
	for {
		select {
		case dec := <-decCh:
			if out.Decided == 0 {
				out.Value = dec.Value
			} else if dec.Value != out.Value {
				out.Agreement = false
			}
			out.Decided++
			continue
		default:
		}
		break
	}
	return out, runErr
}
