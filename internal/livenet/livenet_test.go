package livenet

import (
	"context"
	"testing"
	"time"

	"resilient/internal/byzantine"
	"resilient/internal/core"
	"resilient/internal/failstop"
	"resilient/internal/majority"
	"resilient/internal/malicious"
	"resilient/internal/msg"
	"resilient/internal/netxport"
	"resilient/internal/transport"
)

func failstopMachines(t *testing.T, n, k int, inputs []msg.Value) []core.Machine {
	t.Helper()
	ms := make([]core.Machine, n)
	for i := range ms {
		m, err := failstop.New(core.Config{N: n, K: k, Self: msg.ID(i), Input: inputs[i]}, nil)
		if err != nil {
			t.Fatal(err)
		}
		ms[i] = m
	}
	return ms
}

func mixed(n int) []msg.Value {
	in := make([]msg.Value, n)
	for i := range in {
		in[i] = msg.Value(i % 2)
	}
	return in
}

func TestMemClusterFailStop(t *testing.T) {
	cluster, err := NewMemCluster(failstopMachines(t, 5, 2, mixed(5)))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := cluster.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Decisions) != 5 || !rep.Agreement {
		t.Fatalf("decisions %d agreement %v", len(rep.Decisions), rep.Agreement)
	}
}

func TestMemClusterMalicious(t *testing.T) {
	n, k := 7, 2
	ms := make([]core.Machine, n)
	for i := range ms {
		m, err := malicious.New(core.Config{N: n, K: k, Self: msg.ID(i), Input: msg.Value(i % 2)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		ms[i] = m
	}
	cluster, err := NewMemCluster(ms)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := cluster.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Decisions) != n || !rep.Agreement {
		t.Fatalf("decisions %d agreement %v", len(rep.Decisions), rep.Agreement)
	}
}

func TestJitterClusterNonHaltingProtocol(t *testing.T) {
	// The majority variant never halts and -- on a balanced input -- can
	// livelock under near-deterministic FIFO delivery, which is precisely
	// why the paper postulates probabilistic message-system behaviour
	// (Section 2.3). The jittered transport provides it; the cluster must
	// then return once everyone has decided.
	n, k := 7, 2
	ms := make([]core.Machine, n)
	for i := range ms {
		m, err := majority.New(core.Config{N: n, K: k, Self: msg.ID(i), Input: msg.Value(i % 2)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		ms[i] = m
	}
	cluster, err := NewJitterCluster(ms, 2*time.Millisecond, 42)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := cluster.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Decisions) != n || !rep.Agreement {
		t.Fatalf("decisions %d agreement %v", len(rep.Decisions), rep.Agreement)
	}
}

func TestMemClusterValidity(t *testing.T) {
	inputs := []msg.Value{1, 1, 1, 1, 1}
	cluster, err := NewMemCluster(failstopMachines(t, 5, 2, inputs))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := cluster.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Agreement || rep.Value != msg.V1 {
		t.Fatalf("validity: agreement %v value %d", rep.Agreement, rep.Value)
	}
}

func TestMemClusterRejectsMismatchedIDs(t *testing.T) {
	ms := failstopMachines(t, 3, 1, mixed(3))
	ms[0], ms[1] = ms[1], ms[0]
	if _, err := NewMemCluster(ms); err == nil {
		t.Error("mismatched ids accepted")
	}
}

func TestClusterRejectsLengthMismatch(t *testing.T) {
	ms := failstopMachines(t, 3, 1, mixed(3))
	if _, err := NewCluster(ms, nil); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestClusterDeadlineExpires(t *testing.T) {
	// One machine that never decides: a cluster of majority machines with
	// an impossible quorum is overkill; instead use a context that is
	// already cancelled and verify the error path.
	cluster, err := NewMemCluster(failstopMachines(t, 3, 1, mixed(3)))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = cluster.Run(ctx)
	if err == nil {
		t.Log("run finished before cancellation was observed (acceptable race)")
	}
}

// crashConn wraps a Conn and kills the process after a fixed number of
// receives: the live-engine analogue of a fail-stop death.
type crashConn struct {
	inner interface {
		ID() msg.ID
		Send(msg.ID, msg.Message) error
		Recv() (msg.Message, error)
		Close() error
	}
	recvLeft int
}

func (c *crashConn) ID() msg.ID { return c.inner.ID() }
func (c *crashConn) Send(to msg.ID, m msg.Message) error {
	if c.recvLeft <= 0 {
		return nil // dead: messages silently vanish
	}
	return c.inner.Send(to, m)
}
func (c *crashConn) Recv() (msg.Message, error) {
	if c.recvLeft <= 0 {
		// Dead: behave like a closed endpoint so the driver exits.
		c.inner.Close()
		return c.inner.Recv()
	}
	c.recvLeft--
	return c.inner.Recv()
}
func (c *crashConn) Close() error { return c.inner.Close() }

func TestLiveClusterSurvivesCrashes(t *testing.T) {
	// n=7, k=3 Figure 1; two processes die mid-run (after a few receives),
	// one never starts receiving at all. The survivors must still decide.
	n, k := 7, 3
	inputs := mixed(n)
	machines := failstopMachines(t, n, k, inputs)
	mem := transport.NewMem(n)
	conns := make([]transport.Conn, n)
	for i := 0; i < n; i++ {
		c, err := mem.Conn(msg.ID(i))
		if err != nil {
			t.Fatal(err)
		}
		switch i {
		case 4:
			conns[i] = &crashConn{inner: c, recvLeft: 0}
		case 5:
			conns[i] = &crashConn{inner: c, recvLeft: 5}
		case 6:
			conns[i] = &crashConn{inner: c, recvLeft: 12}
		default:
			conns[i] = c
		}
	}
	cluster, err := NewCluster(machines, conns)
	if err != nil {
		t.Fatal(err)
	}
	// A short deadline: the survivors decide within milliseconds, and the
	// run can only end by deadline because the dead processes never report.
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	rep, runErr := cluster.Run(ctx)
	_ = runErr
	if len(rep.Decisions) < n-k {
		t.Fatalf("only %d decisions, want >= %d", len(rep.Decisions), n-k)
	}
	if !rep.Agreement {
		t.Fatalf("disagreement under live crashes: %+v", rep.Decisions)
	}
}

func TestTCPByzantineLiveCluster(t *testing.T) {
	// A live TCP cluster with a real Byzantine member: p3 equivocates over
	// actual sockets. The three correct processes (k = 1) must still agree.
	n, k := 4, 1
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	endpoints := make([]*netxport.Endpoint, n)
	for i := 0; i < n; i++ {
		ep, err := netxport.Listen(msg.ID(i), addrs)
		if err != nil {
			t.Fatal(err)
		}
		endpoints[i] = ep
		t.Cleanup(func() { ep.Close() })
	}
	for _, ep := range endpoints {
		for j, other := range endpoints {
			ep.SetPeerAddr(msg.ID(j), other.Addr())
		}
	}
	machines := make([]core.Machine, n)
	conns := make([]transport.Conn, n)
	for i := 0; i < n; i++ {
		cfg := core.Config{N: n, K: k, Self: msg.ID(i), Input: msg.Value(i % 2)}
		if i == 3 {
			machines[i] = byzantine.NewEquivocator(malicious.NewUnsafe(cfg, nil), n)
		} else {
			m, err := malicious.New(cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			machines[i] = m
		}
		conns[i] = endpoints[i]
	}
	cluster, err := NewCluster(machines, conns)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	rep, _ := cluster.Run(ctx)
	correct := 0
	var val msg.Value
	first := true
	for _, d := range rep.Decisions {
		if d.Process == 3 {
			continue // the equivocator's "decision" carries no weight
		}
		correct++
		if first {
			val, first = d.Value, false
		} else if d.Value != val {
			t.Fatalf("correct processes disagreed over TCP: %+v", rep.Decisions)
		}
	}
	if correct != n-1 {
		t.Fatalf("%d correct decisions, want %d", correct, n-1)
	}
}
