package livenet

import (
	"context"
	"slices"
	"testing"
	"time"

	"resilient/internal/adversary"
	"resilient/internal/faults"
	"resilient/internal/msg"
	"resilient/internal/policy"
	"resilient/internal/sched"
)

// TestMemClusterCrashPlan runs the same kind of fail-stop fault plan the
// simulator executes -- one initially-dead process, two crash-at-phase
// deaths (one mid-broadcast) -- on the live engine: the survivors must
// still decide and the report must account for the dead.
func TestMemClusterCrashPlan(t *testing.T) {
	n, k := 7, 3
	cluster, err := NewMemCluster(failstopMachines(t, n, k, mixed(n)))
	if err != nil {
		t.Fatal(err)
	}
	cluster.Crashes = faults.Plan{
		4: {Process: 4, Phase: 0, AfterSends: 0}, // initially dead
		5: {Process: 5, Phase: 1, AfterSends: 3}, // dies mid-broadcast
		6: {Process: 6, Phase: 2, AfterSends: 0}, // dies at a phase boundary
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rep, err := cluster.Run(ctx)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !rep.AllDecided {
		t.Fatalf("survivors did not all decide: %+v", rep)
	}
	if !rep.Agreement {
		t.Fatalf("disagreement under crash plan: %+v", rep.Decisions)
	}
	want := []msg.ID{4, 5, 6}
	if !slices.Equal(rep.Crashed, want) {
		t.Fatalf("crashed %v, want %v", rep.Crashed, want)
	}
	for _, dec := range rep.Decisions {
		if dec.Process >= 4 {
			t.Fatalf("crash-planned p%d decided: %+v", dec.Process, dec)
		}
	}
	if len(rep.Decisions) != n-k {
		t.Fatalf("%d decisions, want %d", len(rep.Decisions), n-k)
	}
}

// TestMemClusterLinkPolicyDelays runs a cluster whose links are jittered by
// the shared policy layer (the same Uniform scheduler the simulator
// defaults to, interpreted in wall-clock units).
func TestMemClusterLinkPolicyDelays(t *testing.T) {
	n, k := 5, 2
	cluster, err := NewMemCluster(failstopMachines(t, n, k, mixed(n)))
	if err != nil {
		t.Fatal(err)
	}
	cluster.Policy = policy.FromScheduler(sched.Uniform{Min: 0.1, Max: 1})
	cluster.Unit = 200 * time.Microsecond
	cluster.Seed = 7
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rep, err := cluster.Run(ctx)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !rep.AllDecided || !rep.Agreement {
		t.Fatalf("jittered cluster failed: %+v", rep)
	}
}

// TestMemClusterPartitionPolicyStalls pins the live-engine version of the
// Theorem 1 construction: a partition that leaves neither side with n-k
// correct processes must prevent global decision, and cancellation must
// still tear the cluster down promptly (no driver stuck in Recv).
func TestMemClusterPartitionPolicyStalls(t *testing.T) {
	n, k := 7, 3
	cluster, err := NewMemCluster(failstopMachines(t, n, k, mixed(n)))
	if err != nil {
		t.Fatal(err)
	}
	// Halves(2): a 2-process group and a 5-process group. The small group
	// can never gather n-k=4 phase messages, so at least two processes
	// never decide.
	cluster.Policy = policy.Partition{GroupOf: adversary.Halves(2)}
	cluster.Unit = 100 * time.Microsecond
	ctx, cancel := context.WithTimeout(context.Background(), 800*time.Millisecond)
	defer cancel()
	done := make(chan struct{})
	var rep *Report
	var runErr error
	go func() {
		rep, runErr = cluster.Run(ctx)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cluster.Run hung after context expiry (Recv not unblocked)")
	}
	if runErr == nil {
		t.Fatalf("partitioned run completed: %+v", rep)
	}
	if rep.AllDecided {
		t.Fatal("partitioned run reported AllDecided")
	}
}

// TestClusterRunClosesConnsOnCancel is the regression test for drivers
// hanging in conn.Recv after the caller cancels: machines that have decided
// nothing and receive no traffic sit in Recv forever unless cancellation
// closes their connections.
func TestClusterRunClosesConnsOnCancel(t *testing.T) {
	n, k := 5, 2
	// Drop every message: no driver will ever leave Recv on its own.
	cluster, err := NewMemCluster(failstopMachines(t, n, k, mixed(n)))
	if err != nil {
		t.Fatal(err)
	}
	cluster.Policy = policy.Drop{P: 1}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		_, _ = cluster.Run(ctx)
		close(done)
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cluster.Run did not return after cancellation")
	}
}

// TestMemClusterByzantineExcluded checks the simulator-aligned accounting:
// a process marked Byzantine neither blocks AllDecided nor contributes a
// decision to the report.
func TestMemClusterByzantineExcluded(t *testing.T) {
	n, k := 5, 2
	inputs := []msg.Value{1, 1, 1, 1, 0}
	cluster, err := NewMemCluster(failstopMachines(t, n, k, inputs))
	if err != nil {
		t.Fatal(err)
	}
	cluster.Byzantine = map[msg.ID]bool{4: true}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rep, err := cluster.Run(ctx)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !rep.AllDecided || !rep.Agreement {
		t.Fatalf("byzantine-excluded run failed: %+v", rep)
	}
	for _, dec := range rep.Decisions {
		if dec.Process == 4 {
			t.Fatalf("byzantine decision recorded: %+v", dec)
		}
	}
	if got := rep.DecisionMap(); len(got) != n-1 {
		t.Fatalf("decision map %v, want %d entries", got, n-1)
	}
}
