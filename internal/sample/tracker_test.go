package sample

import (
	"testing"

	"resilient/internal/echo"
	"resilient/internal/msg"
)

// trackerFixture builds a directory where receiver 0's echo sample is known.
func trackerFixture(t *testing.T) (*Directory, *Tracker) {
	t.Helper()
	d := NewDirectory(mustPlan(t, 120, 12, 1e-2), 5)
	return d, NewTracker(d, 0)
}

func TestTrackerIgnoresNonSampleSenders(t *testing.T) {
	d, tr := trackerFixture(t)
	sample := d.EchoSample(0)
	outside := msg.ID(-1)
	for id := int32(0); int(id) < d.Plan().N; id++ {
		if SampleIndex(sample, msg.ID(id)) < 0 {
			outside = msg.ID(id)
			break
		}
	}
	if outside < 0 {
		t.Skip("sample covers whole population")
	}
	if _, ok := tr.Observe(outside, 3, 0, msg.V1); ok {
		t.Fatal("non-sample sender accepted")
	}
	if z, o := tr.Count(3, 0); z != 0 || o != 0 {
		t.Fatalf("non-sample echo counted: %d/%d", z, o)
	}
	if tr.Seen(outside, 3, 0) {
		t.Fatal("non-sample sender marked seen")
	}
}

func TestTrackerAcceptAtThresholdOnce(t *testing.T) {
	d, tr := trackerFixture(t)
	sample := d.EchoSample(0)
	th := tr.Threshold()
	if th < 2 || th > len(sample) {
		t.Fatalf("odd threshold %d for sample of %d", th, len(sample))
	}
	var accepts int
	for i := 0; i < len(sample); i++ {
		acc, ok := tr.Observe(msg.ID(sample[i]), 7, 2, msg.V1)
		if ok {
			accepts++
			if i+1 != th {
				t.Fatalf("accepted at %d echoes, want %d", i+1, th)
			}
			if acc != (echo.Accept{Subject: 7, Phase: 2, Value: msg.V1}) {
				t.Fatalf("accept = %+v", acc)
			}
		}
	}
	if accepts != 1 {
		t.Fatalf("accepted %d times, want exactly once", accepts)
	}
	if !tr.Accepted(7, 2) || tr.Accepted(7, 3) || tr.Accepted(8, 2) {
		t.Fatal("Accepted() bookkeeping wrong")
	}
}

func TestTrackerFirstMessageRule(t *testing.T) {
	d, tr := trackerFixture(t)
	s := d.EchoSample(0)[0]
	if _, ok := tr.Observe(msg.ID(s), 1, 0, msg.V0); ok {
		t.Fatal("single echo accepted")
	}
	// Same sender again, other value: ignored entirely.
	tr.Observe(msg.ID(s), 1, 0, msg.V1)
	if z, o := tr.Count(1, 0); z != 1 || o != 0 {
		t.Fatalf("duplicate echo changed counts: %d/%d", z, o)
	}
	if !tr.Seen(msg.ID(s), 1, 0) || tr.Seen(msg.ID(s), 2, 0) {
		t.Fatal("Seen() bookkeeping wrong")
	}
	// Same sender, different subject or phase: counted independently.
	tr.Observe(msg.ID(s), 2, 0, msg.V1)
	tr.Observe(msg.ID(s), 1, 1, msg.V1)
	if z, o := tr.Count(2, 0); z != 0 || o != 1 {
		t.Fatalf("other-subject echo miscounted: %d/%d", z, o)
	}
	if z, o := tr.Count(1, 1); z != 0 || o != 1 {
		t.Fatalf("other-phase echo miscounted: %d/%d", z, o)
	}
}

func TestTrackerPruneAndReuse(t *testing.T) {
	d, tr := trackerFixture(t)
	sample := d.EchoSample(0)
	for p := msg.Phase(0); p < 4; p++ {
		for _, s := range sample {
			tr.Observe(msg.ID(s), 9, p, msg.V0)
		}
	}
	tr.Prune(3)
	if z, _ := tr.Count(9, 2); z != 0 {
		t.Fatal("pruned phase still counted")
	}
	if _, ok := tr.Observe(msg.ID(sample[0]), 9, 1, msg.V0); ok {
		t.Fatal("echo for pruned phase accepted")
	}
	if tr.Seen(msg.ID(sample[0]), 9, 1) {
		t.Fatal("pruned phase still seen")
	}
	// Phase 3 survives.
	if z, _ := tr.Count(9, 3); z != len(sample) {
		t.Fatalf("surviving phase lost counts: %d", z)
	}
	// Recycled tallies start clean and accept again.
	var accepts int
	for _, s := range sample {
		if _, ok := tr.Observe(msg.ID(s), 11, 5, msg.V1); ok {
			accepts++
		}
	}
	if accepts != 1 {
		t.Fatalf("post-prune phase accepted %d times, want 1", accepts)
	}
	// Prune is idempotent and never regresses.
	tr.Prune(2)
	if z, _ := tr.Count(9, 3); z != len(sample) {
		t.Fatal("backward prune dropped state")
	}
}

// TestTrackerDegeneratesToEchoTracker feeds the identical echo stream to the
// sparse sampled tracker under a degenerate (sample = whole population) plan
// and to the dense full-quorum echo.Tracker: every Observe must return the
// same acceptance. This is the drop-in equivalence claim of DESIGN §13 at
// its ε→0 endpoint.
func TestTrackerDegeneratesToEchoTracker(t *testing.T) {
	const n, k = 10, 3
	p := mustPlan(t, n, k, 1e-9)
	if p.Echo != n {
		t.Fatalf("plan not degenerate: E=%d", p.Echo)
	}
	d := NewDirectory(p, 1)
	sparse := NewTracker(d, 0)
	den := echo.NewTracker(n, k)
	if sparse.Threshold() != den.Threshold() {
		t.Fatalf("thresholds differ: %d vs %d", sparse.Threshold(), den.Threshold())
	}
	// A deterministic but adversarial-ish stream: every sender echoes every
	// subject with a value that flips by parity, plus duplicate spam.
	for phase := msg.Phase(0); phase < 3; phase++ {
		for sender := 0; sender < n; sender++ {
			for subject := 0; subject < n; subject++ {
				v := msg.Value((sender + subject) % 2)
				a1, ok1 := sparse.Observe(msg.ID(sender), msg.ID(subject), phase, v)
				a2, ok2 := den.Observe(msg.ID(sender), msg.ID(subject), phase, v)
				if ok1 != ok2 || a1 != a2 {
					t.Fatalf("divergence at s=%d subj=%d ph=%d: (%v,%v) vs (%v,%v)",
						sender, subject, phase, a1, ok1, a2, ok2)
				}
				// Duplicate must be ignored by both.
				if _, ok := sparse.Observe(msg.ID(sender), msg.ID(subject), phase, 1-v); ok {
					t.Fatal("sparse tracker accepted duplicate")
				}
			}
		}
		sparse.Prune(phase)
		den.Prune(phase)
	}
	// Unanimous round: both trackers must accept every subject at exactly
	// the same echo.
	for sender := 0; sender < n; sender++ {
		for subject := 0; subject < n; subject++ {
			a1, ok1 := sparse.Observe(msg.ID(sender), msg.ID(subject), 5, msg.V1)
			a2, ok2 := den.Observe(msg.ID(sender), msg.ID(subject), 5, msg.V1)
			if ok1 != ok2 || a1 != a2 {
				t.Fatalf("unanimous divergence at s=%d subj=%d: (%v,%v) vs (%v,%v)",
					sender, subject, a1, ok1, a2, ok2)
			}
		}
	}
	if !sparse.Accepted(0, 5) {
		t.Fatal("unanimous round did not accept")
	}
}

func TestTrackerRejectsInvalid(t *testing.T) {
	_, tr := trackerFixture(t)
	if _, ok := tr.Observe(-1, 0, 0, msg.V0); ok {
		t.Fatal("negative sender accepted")
	}
	if _, ok := tr.Observe(0, 500, 0, msg.V0); ok {
		t.Fatal("out-of-range subject accepted")
	}
	if _, ok := tr.Observe(0, 0, 0, msg.Value(9)); ok {
		t.Fatal("invalid value accepted")
	}
}
