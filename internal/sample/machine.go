package sample

import (
	"fmt"

	"resilient/internal/core"
	"resilient/internal/dense"
	"resilient/internal/echo"
	"resilient/internal/msg"
)

// Machine is one process of a single sample-based reliable broadcast: the
// origin process disseminates its input value by gossip, every process
// echoes the first copy it sees to the receivers that sampled it, accepts at
// the plan's echo threshold, then sends a ready to the receivers whose
// ready sample contains it, and delivers at the ready-deliver threshold
// (Murmur → Sieve → Contagion in the terminology of arXiv 1908.01738).
//
// It is the sampled counterpart of EchoMachine, which runs the same one-shot
// broadcast over the paper's full-quorum Figure-2 primitive; the pair is the
// substrate for the echo-vs-sample benchmarks and for the n=10,000 runs that
// are infeasible under the quorum scheme.
//
// Byzantine relayers can forge the (origin, value) claim inside a gossip
// message — From is transport-stamped but Subject is not — which is exactly
// the attack the echo stage's ε-consistency threshold defends against.
type Machine struct {
	cfg    core.Config
	dir    *Directory
	origin msg.ID

	tracker     *Tracker
	readySample []int32
	readySeen   dense.Bitset
	readyCounts [2]int32

	value     msg.Value
	relayed   bool // gossiped + echoed (first copy already handled)
	readied   bool // own ready sent
	delivered bool

	out []core.Outbound
}

var _ core.Machine = (*Machine)(nil)
var _ core.ValueReporter = (*Machine)(nil)

// NewMachine builds the sampled-broadcast machine for cfg.Self, delivering
// origin's broadcast of its Input value. All machines of one run must share
// dir.
func NewMachine(cfg core.Config, dir *Directory, origin msg.ID) (*Machine, error) {
	p := dir.Plan()
	if cfg.N != p.N || cfg.K != p.K {
		return nil, fmt.Errorf("sample: config (n=%d, k=%d) does not match plan %v", cfg.N, cfg.K, p)
	}
	if origin < 0 || int(origin) >= cfg.N {
		return nil, fmt.Errorf("sample: origin %d outside 0..%d", origin, cfg.N-1)
	}
	m := &Machine{
		cfg:         cfg,
		dir:         dir,
		origin:      origin,
		tracker:     NewTracker(dir, cfg.Self),
		readySample: dir.ReadySample(cfg.Self),
	}
	m.readySeen.Reset(len(m.readySample))
	return m, nil
}

// ID implements core.Machine.
func (m *Machine) ID() msg.ID { return m.cfg.Self }

// Phase implements core.Machine; the one-shot broadcast is all phase 0.
func (m *Machine) Phase() msg.Phase { return 0 }

// Decided implements core.Machine: the delivered value, once delivered.
func (m *Machine) Decided() (msg.Value, bool) { return m.value, m.delivered }

// CurrentValue implements core.ValueReporter.
func (m *Machine) CurrentValue() msg.Value { return m.value }

// Halted reports whether the process will never send again: it has
// delivered and has done its dissemination duty. (Delivery implies the own
// ready was sent: ReadyFeedback <= ReadyDeliver.)
func (m *Machine) Halted() bool { return m.delivered && m.relayed }

// Start implements core.Machine. Only the origin acts: it gossips its value
// and sends its own echo.
func (m *Machine) Start() []core.Outbound {
	if m.cfg.Self != m.origin {
		return nil
	}
	m.out = m.out[:0]
	m.value = m.cfg.Input
	m.relay(m.origin, 0, m.value)
	return m.out
}

// relay marks the first copy handled and emits the gossip fanout plus this
// process's echo to the receivers that sampled it.
func (m *Machine) relay(origin msg.ID, p msg.Phase, v msg.Value) {
	m.relayed = true
	for _, t := range m.dir.GossipTargets(m.cfg.Self) {
		m.out = append(m.out, core.To(msg.ID(t), msg.Gossip(m.cfg.Self, origin, p, v)))
	}
	for _, t := range m.dir.EchoTargets(m.cfg.Self) {
		m.out = append(m.out, core.To(msg.ID(t), msg.Echo(m.cfg.Self, origin, p, v)))
	}
}

// sendReady emits this process's ready to everyone whose ready sample
// contains it.
func (m *Machine) sendReady(v msg.Value) {
	m.readied = true
	for _, t := range m.dir.ReadyTargets(m.cfg.Self) {
		m.out = append(m.out, core.To(msg.ID(t), msg.Ready(m.cfg.Self, m.origin, 0, v)))
	}
}

// OnMessage implements core.Machine.
func (m *Machine) OnMessage(in msg.Message) []core.Outbound {
	if in.Subject != m.origin || !in.Value.Valid() {
		return nil
	}
	m.out = m.out[:0]
	switch in.Kind {
	case msg.KindGossip:
		if !m.relayed {
			m.relay(in.Subject, 0, in.Value)
		}
	case msg.KindEcho:
		if accept, ok := m.tracker.Observe(in.From, in.Subject, 0, in.Value); ok && !m.readied {
			m.sendReady(accept.Value)
		}
	case msg.KindReady:
		m.onReady(in)
	case msg.KindState, msg.KindValue, msg.KindInitial, msg.KindBenOrReport,
		msg.KindBenOrProposal, msg.KindGraph:
		// Explicitly ignored: other protocols' wire kinds.
	}
	return m.out
}

func (m *Machine) onReady(in msg.Message) {
	idx := SampleIndex(m.readySample, in.From)
	if idx < 0 || m.readySeen.Set(idx) {
		return
	}
	m.readyCounts[in.Value]++
	c := int(m.readyCounts[in.Value])
	p := m.dir.Plan()
	if !m.readied && c >= p.ReadyFeedback {
		m.sendReady(in.Value)
	}
	if !m.delivered && c >= p.ReadyDeliver {
		m.delivered = true
		m.value = in.Value
	}
}

// EchoMachine runs the same one-shot broadcast over the full-quorum Figure-2
// echo primitive: the origin broadcasts an initial to all n processes, every
// process echoes the first copy to all n, and delivery happens at the
// > (n+k)/2 acceptance quorum of echo.Tracker. O(n²) messages and an
// O(n²)-bit dedup table per node — the baseline the sampled scheme is
// benchmarked against.
type EchoMachine struct {
	cfg       core.Config
	origin    msg.ID
	tracker   *echo.Tracker
	value     msg.Value
	echoed    bool
	delivered bool
	out       []core.Outbound
}

var _ core.Machine = (*EchoMachine)(nil)
var _ core.ValueReporter = (*EchoMachine)(nil)

// NewEchoMachine builds the full-quorum broadcast machine for cfg.Self.
func NewEchoMachine(cfg core.Config, origin msg.ID) (*EchoMachine, error) {
	if origin < 0 || int(origin) >= cfg.N {
		return nil, fmt.Errorf("sample: origin %d outside 0..%d", origin, cfg.N-1)
	}
	return &EchoMachine{cfg: cfg, origin: origin, tracker: echo.NewTracker(cfg.N, cfg.K)}, nil
}

// ID implements core.Machine.
func (m *EchoMachine) ID() msg.ID { return m.cfg.Self }

// Phase implements core.Machine.
func (m *EchoMachine) Phase() msg.Phase { return 0 }

// Decided implements core.Machine.
func (m *EchoMachine) Decided() (msg.Value, bool) { return m.value, m.delivered }

// CurrentValue implements core.ValueReporter.
func (m *EchoMachine) CurrentValue() msg.Value { return m.value }

// Halted implements core.Machine.
func (m *EchoMachine) Halted() bool { return m.delivered && m.echoed }

// Start implements core.Machine.
func (m *EchoMachine) Start() []core.Outbound {
	if m.cfg.Self != m.origin {
		return nil
	}
	m.out = m.out[:0]
	m.value = m.cfg.Input
	m.out = append(m.out, core.ToAll(msg.Initial(m.cfg.Self, 0, m.value)))
	return m.out
}

// OnMessage implements core.Machine.
func (m *EchoMachine) OnMessage(in msg.Message) []core.Outbound {
	if in.Subject != m.origin || !in.Value.Valid() {
		return nil
	}
	m.out = m.out[:0]
	switch in.Kind {
	case msg.KindInitial:
		if in.From == m.origin && !m.echoed {
			m.echoed = true
			m.out = append(m.out, core.ToAll(msg.Echo(m.cfg.Self, in.From, 0, in.Value)))
		}
	case msg.KindEcho:
		if accept, ok := m.tracker.Observe(in.From, in.Subject, 0, in.Value); ok && !m.delivered {
			m.delivered = true
			m.value = accept.Value
		}
	case msg.KindState, msg.KindValue, msg.KindBenOrReport,
		msg.KindBenOrProposal, msg.KindGraph, msg.KindGossip, msg.KindReady:
		// Explicitly ignored: other protocols' wire kinds.
	}
	return m.out
}
