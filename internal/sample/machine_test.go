package sample

import (
	"testing"

	"resilient/internal/core"
	"resilient/internal/msg"
)

// runLoop drives a set of broadcast machines to quiescence with a FIFO
// queue, stamping the authenticated sender like the engines do. silent
// processes never send. Returns total messages sent by live processes.
func runLoop(t *testing.T, machines []core.Machine, silent map[msg.ID]bool) (sent int) {
	t.Helper()
	type envelope struct {
		to msg.ID
		m  msg.Message
	}
	var queue []envelope
	push := func(from msg.ID, outs []core.Outbound) {
		if silent[from] {
			return
		}
		for _, o := range outs {
			o.Msg.From = from // transport authentication
			if o.To == msg.Broadcast {
				for id := range machines {
					queue = append(queue, envelope{msg.ID(id), o.Msg})
					sent++
				}
			} else {
				queue = append(queue, envelope{o.To, o.Msg})
				sent++
			}
		}
	}
	for i, m := range machines {
		push(msg.ID(i), m.Start())
	}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		if silent[e.to] {
			continue
		}
		m := machines[e.to]
		if m.Halted() {
			continue
		}
		push(e.to, m.OnMessage(e.m))
	}
	return sent
}

func buildSampled(t *testing.T, p Plan, seed uint64, input msg.Value) []core.Machine {
	t.Helper()
	dir := NewDirectory(p, seed)
	machines := make([]core.Machine, p.N)
	for i := range machines {
		m, err := NewMachine(core.Config{N: p.N, K: p.K, Self: msg.ID(i), Input: input}, dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		machines[i] = m
	}
	return machines
}

func buildEcho(t *testing.T, n, k int, input msg.Value) []core.Machine {
	t.Helper()
	machines := make([]core.Machine, n)
	for i := range machines {
		m, err := NewEchoMachine(core.Config{N: n, K: k, Self: msg.ID(i), Input: input}, 0)
		if err != nil {
			t.Fatal(err)
		}
		machines[i] = m
	}
	return machines
}

func countDelivered(machines []core.Machine, silent map[msg.ID]bool, want msg.Value) (delivered int, wrong int) {
	for id, m := range machines {
		if silent[msg.ID(id)] {
			continue
		}
		if v, ok := m.Decided(); ok {
			if v == want {
				delivered++
			} else {
				wrong++
			}
		}
	}
	return delivered, wrong
}

func TestSampledBroadcastFaultFree(t *testing.T) {
	for _, n := range []int{50, 200} {
		p := mustPlan(t, n, n/10, 1e-3)
		for seed := uint64(0); seed < 3; seed++ {
			machines := buildSampled(t, p, seed, msg.V1)
			sent := runLoop(t, machines, nil)
			delivered, wrong := countDelivered(machines, nil, msg.V1)
			if wrong > 0 {
				t.Fatalf("n=%d seed=%d: %d processes delivered the wrong value", n, seed, wrong)
			}
			if delivered < n-1 { // ε-delivery: allow stray sampling misses
				t.Errorf("n=%d seed=%d: only %d/%d delivered", n, seed, delivered, n)
			}
			if int64(sent) > 2*p.ExpectedMessages() {
				t.Errorf("n=%d seed=%d: sent %d messages, expected about %d", n, seed, sent, p.ExpectedMessages())
			}
		}
	}
}

func TestSampledBroadcastUnderSilentFaults(t *testing.T) {
	const n = 200
	p := mustPlan(t, n, n/10, 1e-3)
	silent := make(map[msg.ID]bool)
	for i := n - n/10; i < n; i++ { // the full k budget, ids n-k..n-1
		silent[msg.ID(i)] = true
	}
	for seed := uint64(0); seed < 3; seed++ {
		machines := buildSampled(t, p, seed, msg.V0)
		runLoop(t, machines, silent)
		delivered, wrong := countDelivered(machines, silent, msg.V0)
		if wrong > 0 {
			t.Fatalf("seed=%d: wrong-value deliveries under silent faults", seed)
		}
		correct := n - n/10
		if delivered < correct-2 {
			t.Errorf("seed=%d: %d/%d correct processes delivered", seed, delivered, correct)
		}
	}
}

func TestEchoBroadcastDelivers(t *testing.T) {
	const n, k = 50, 5
	machines := buildEcho(t, n, k, msg.V1)
	sent := runLoop(t, machines, nil)
	delivered, wrong := countDelivered(machines, nil, msg.V1)
	if wrong != 0 || delivered != n {
		t.Fatalf("echo scheme delivered %d/%d (wrong=%d)", delivered, n, wrong)
	}
	if sent != n*(n+1) {
		t.Errorf("echo scheme sent %d messages, want n(n+1)=%d", sent, n*(n+1))
	}
}

// TestMessageReductionAtN1000 is the acceptance-criterion measurement: one
// sampled broadcast at n=1,000 must send at least 5x fewer messages than the
// same broadcast over the full-quorum echo primitive, with every process
// delivering the origin's value.
func TestMessageReductionAtN1000(t *testing.T) {
	const n = 1000
	p := mustPlan(t, n, n/10, 1e-3)
	machines := buildSampled(t, p, 1, msg.V1)
	sampleSent := runLoop(t, machines, nil)
	delivered, wrong := countDelivered(machines, nil, msg.V1)
	if wrong > 0 || delivered < n-1 {
		t.Fatalf("sampled broadcast delivered %d/%d (wrong=%d)", delivered, n, wrong)
	}

	echoM := buildEcho(t, n, n/10, msg.V1)
	echoSent := runLoop(t, echoM, nil)
	if d, w := countDelivered(echoM, nil, msg.V1); w > 0 || d != n {
		t.Fatalf("echo broadcast delivered %d/%d (wrong=%d)", d, n, w)
	}

	ratio := float64(echoSent) / float64(sampleSent)
	t.Logf("n=%d: echo %d msgs, sampled %d msgs, reduction %.1fx (plan %v)",
		n, echoSent, sampleSent, ratio, p)
	if ratio < 5 {
		t.Errorf("message reduction %.1fx, want >= 5x", ratio)
	}
}

func TestMachineValidation(t *testing.T) {
	p := mustPlan(t, 50, 5, 1e-2)
	dir := NewDirectory(p, 0)
	if _, err := NewMachine(core.Config{N: 49, K: 5, Self: 0}, dir, 0); err == nil {
		t.Error("mismatched n accepted")
	}
	if _, err := NewMachine(core.Config{N: 50, K: 5, Self: 0}, dir, 99); err == nil {
		t.Error("out-of-range origin accepted")
	}
	if _, err := NewEchoMachine(core.Config{N: 50, K: 5, Self: 0}, -2); err == nil {
		t.Error("negative origin accepted")
	}
}
