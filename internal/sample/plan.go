// Package sample implements a probabilistic, sample-based reliable-broadcast
// primitive in the style of Guerraoui et al., "Scalable Byzantine Reliable
// Broadcast" (arXiv 1908.01738), as a drop-in alternative to the full-quorum
// Figure-2 echo primitive in internal/echo.
//
// The full-quorum primitive costs O(n²) messages per broadcast: every process
// echoes to every process and accepts at > (n+k)/2 matching echoes. Here each
// process instead draws three small uniform samples of the system — a gossip
// sample (dissemination), an echo sample (consistency), and a ready sample
// (totality amplification) — and applies scaled thresholds to the echoes and
// readies it receives from its own samples. Message cost drops to
// O(n·(G+E+R)) = O(n·log n) per broadcast at the price of a tunable failure
// probability ε per (receiver, broadcast) pair.
//
// All sample sizes and thresholds come from the log-space hypergeometric
// tails in internal/dist. The two constraints on the echo stage are exact
// sampled analogues of the Figure-2 argument:
//
//   - ε-consistency: an equivocating sender can split correct processes
//     between two values, so at most ⌊(n+k)/2⌋ processes (the losing correct
//     half plus all k Byzantine) ever echo any one conflicting value. The
//     threshold Ê is chosen so that P[HG(n, ⌊(n+k)/2⌋, E) ≥ Ê] ≤ ε — the
//     probability a sample contains a conflicting quorum.
//   - ε-delivery: when every correct process echoes the same value
//     (Success = n−k), P[HG(n, n−k, E) < Ê] ≤ ε.
//
// As ε → 0 the search walks E up to n, where the hypergeometric degenerates
// (a sample of the whole population) and Ê becomes ⌊(n+k)/2⌋+1 — exactly
// quorum.EchoAcceptCount. The sampled primitive therefore degenerates to the
// paper's Figure-2 primitive; see DESIGN §13 for the full argument.
package sample

import (
	"fmt"
	"math"

	"resilient/internal/dist"
)

// DefaultEps is the per-(receiver, broadcast) failure-probability budget
// used when a caller does not specify one.
const DefaultEps = 1e-3

// Plan holds the sample sizes and thresholds for one (n, k, ε) operating
// point. A Plan is pure parameters: build one per run and share it across
// all machines (the per-receiver draws live in Directory).
type Plan struct {
	N   int     // system size
	K   int     // Byzantine budget the thresholds defend against
	Eps float64 // per-(receiver, broadcast) failure budget

	// Gossip is the dissemination fanout G: every process forwards the
	// first copy of a broadcast it receives to G sampled targets.
	Gossip int
	// Echo is the echo sample size E: each receiver counts echoes only
	// from its own E-process sample.
	Echo int
	// EchoThreshold is Ê: matching echoes from sample members required to
	// accept (the scaled analogue of quorum.EchoAcceptCount).
	EchoThreshold int
	// Ready is the ready sample size R.
	Ready int
	// ReadyDeliver is R̂_d: readies from sample members required to
	// deliver.
	ReadyDeliver int
	// ReadyFeedback is R̂_f: readies from sample members that make a
	// process send its own ready even before its echo threshold is met
	// (Contagion-style amplification). Chosen so k Byzantine readies alone
	// cannot trigger it: P[HG(n, k, R) ≥ R̂_f] ≤ ε.
	ReadyFeedback int
}

// NewPlan computes a Plan for n processes defending against k Byzantine faults
// at failure budget eps. It requires n > 3k (the paper's resiliency bound)
// and 0 < eps ≤ 0.1. The echo search always terminates: at E = n the plan
// degenerates to the full-quorum Figure-2 thresholds with failure
// probability zero.
func NewPlan(n, k int, eps float64) (Plan, error) {
	if n < 2 {
		return Plan{}, fmt.Errorf("sample: need n >= 2, got n=%d", n)
	}
	if k < 0 || 3*k >= n {
		return Plan{}, fmt.Errorf("sample: need 0 <= 3k < n, got n=%d k=%d", n, k)
	}
	if !(eps > 0 && eps <= 0.1) {
		return Plan{}, fmt.Errorf("sample: need 0 < eps <= 0.1, got eps=%g", eps)
	}
	p := Plan{N: n, K: k, Eps: eps}

	// Gossip fanout: ln(n/ε) relays reach all but an ε fraction of a random
	// push-epidemic digraph; the n/(n−k) factor compensates for picks that
	// land on faulty processes and are never relayed. The end-to-end reach
	// claim is pinned empirically by the internal/mc delivery ensembles.
	g := int(math.Ceil(math.Log(float64(n)/eps) * float64(n) / float64(n-k)))
	if g < 1 {
		g = 1
	}
	if g > n-1 {
		g = n - 1
	}
	p.Gossip = g

	// Echo stage: the adversary's best split leaves at most ⌊(n+k)/2⌋
	// processes echoing any single conflicting value.
	conflict := (n + k) / 2
	e, et, err := sizeStage(n, conflict, n-k, eps)
	if err != nil {
		return Plan{}, fmt.Errorf("sample: echo stage: %w", err)
	}
	p.Echo, p.EchoThreshold = e, et

	// Ready stage: consistency is inherited from the echo stage (correct
	// processes ready at most one value per broadcast), so the ready
	// thresholds only defend against the k Byzantine processes lying in a
	// sample, and the gap k vs n−k is wide — R comes out well below E.
	r, rt, err := sizeStage(n, k, n-k, eps)
	if err != nil {
		return Plan{}, fmt.Errorf("sample: ready stage: %w", err)
	}
	p.Ready, p.ReadyDeliver = r, rt
	p.ReadyFeedback = rt
	return p, nil
}

// sizeStage finds the smallest sample size s (and its threshold t) such that
//
//	safety:   P[HG(n, badSuccess,  s) >= t] <= eps
//	delivery: P[HG(n, goodSuccess, s) <  t] <= eps
//
// for the minimal t satisfying safety. Feasibility is monotone in s for all
// practical parameters, so the search doubles s to find a feasible point and
// then binary-searches the boundary; a final upward walk guards against the
// rare integer-threshold non-monotonicity near the boundary.
func sizeStage(n, badSuccess, goodSuccess int, eps float64) (size, threshold int, err error) {
	feasible := func(s int) (int, bool) {
		t := minSafetyThreshold(n, badSuccess, s, eps)
		if t > s {
			return 0, false
		}
		good := dist.Hypergeometric{Pop: n, Success: goodSuccess, Draw: s}
		return t, good.CDF(t-1) <= eps
	}
	hi := 4
	for hi < n {
		if _, ok := feasible(hi); ok {
			break
		}
		hi *= 2
	}
	if hi >= n {
		hi = n
	}
	if _, ok := feasible(hi); !ok {
		// Can only happen at hi == n if eps is unattainable; at s = n the
		// sample is the whole population, the bad tail is exactly zero
		// above badSuccess and the good mass sits entirely at goodSuccess,
		// so feasibility holds whenever goodSuccess > badSuccess.
		return 0, 0, fmt.Errorf("no feasible sample size at n=%d bad=%d good=%d eps=%g",
			n, badSuccess, goodSuccess, eps)
	}
	lo := 1
	for lo < hi {
		mid := (lo + hi) / 2
		if _, ok := feasible(mid); ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	for s := lo; s <= n; s++ {
		if t, ok := feasible(s); ok {
			return s, t, nil
		}
	}
	return 0, 0, fmt.Errorf("threshold walk escaped population at n=%d", n)
}

// minSafetyThreshold returns the minimal t with P[HG(n, success, draw) >= t]
// <= eps. The tail is monotone decreasing in t; t = draw+1 always satisfies
// it (probability zero).
func minSafetyThreshold(n, success, draw int, eps float64) int {
	h := dist.Hypergeometric{Pop: n, Success: success, Draw: draw}
	lo, hi := 0, draw+1
	for lo < hi {
		mid := (lo + hi) / 2
		if h.TailAbove(mid-1) <= eps {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Degenerate reports whether the echo sample has grown past half the
// population, at which point sampling no longer beats the full quorum and
// callers should either raise eps, lower k, or use the echo scheme.
func (p Plan) Degenerate() bool { return 2*p.Echo > p.N }

// ExpectedMessages returns the expected total message count for one
// broadcast under the plan: every process relays the gossip once and sends
// its echo and ready to the processes that sampled it (the reverse degree of
// a uniform E- or R-sample averages E or R).
func (p Plan) ExpectedMessages() int64 {
	return int64(p.N) * int64(p.Gossip+p.Echo+p.Ready)
}

// EchoFailure returns the analytic per-receiver failure bound actually
// achieved by the echo stage: the larger of the consistency and delivery
// tails at the chosen (E, Ê). It is at most Eps by construction.
func (p Plan) EchoFailure() float64 {
	conflict := dist.Hypergeometric{Pop: p.N, Success: (p.N + p.K) / 2, Draw: p.Echo}
	good := dist.Hypergeometric{Pop: p.N, Success: p.N - p.K, Draw: p.Echo}
	return math.Max(conflict.TailAbove(p.EchoThreshold-1), good.CDF(p.EchoThreshold-1))
}

func (p Plan) String() string {
	return fmt.Sprintf("sample{n=%d k=%d eps=%g G=%d E=%d Ê=%d R=%d R̂d=%d R̂f=%d}",
		p.N, p.K, p.Eps, p.Gossip, p.Echo, p.EchoThreshold,
		p.Ready, p.ReadyDeliver, p.ReadyFeedback)
}
