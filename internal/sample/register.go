package sample

import (
	"fmt"

	"resilient/internal/coin"
	"resilient/internal/core"
	"resilient/internal/proto"
	"resilient/internal/quorum"
)

func init() {
	proto.Register(proto.Descriptor{
		ID:             proto.Broadcast,
		Name:           "broadcast",
		Aliases:        []string{"broadcast"},
		Model:          quorum.Malicious,
		Bound:          "(n-1)/3",
		Coin:           coin.SchemeNone,
		NeedsDirectory: true,
		Spawn: func(cfg core.Config, deps proto.Deps) (core.Machine, error) {
			if deps.Directory != nil {
				dir, ok := deps.Directory.(*Directory)
				if !ok {
					return nil, fmt.Errorf("sample: unexpected directory type %T", deps.Directory)
				}
				return NewMachine(cfg, dir, 0)
			}
			return NewEchoMachine(cfg, 0)
		},
	})
}
