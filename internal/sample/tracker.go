package sample

import (
	"slices"

	"resilient/internal/dense"
	"resilient/internal/echo"
	"resilient/internal/msg"
)

// subjectTally is one (subject, phase)'s sparse echo state: value counts, an
// E-bit dedup bitset indexed by the sender's position in the receiver's
// sorted echo sample, and the accepted latch. Compare echo.phaseTally, which
// keeps an n²-bit dedup bitset and an n-row count table per phase; at
// n=10,000 that is ~12.5 MB per node per phase, while a subjectTally is two
// ints and E bits (~40 bytes under the default plan).
type subjectTally struct {
	subject  msg.ID
	counts   [2]int32
	seen     dense.Bitset
	accepted bool
}

// phaseTally maps the subjects observed in one phase to their tallies.
// Subjects are tracked sparsely: a tally exists only once some sample member
// actually echoed for that subject, so per-phase memory is proportional to
// traffic seen, not to n.
type phaseTally struct {
	phase    msg.Phase
	subjects map[msg.ID]*subjectTally
	// order records subject arrival order so pruning can release tallies to
	// the freelist deterministically (map iteration order is randomized).
	order []msg.ID
}

// Tracker is the sample-scheme replacement for echo.Tracker: it counts only
// echoes from senders inside this receiver's echo sample and accepts a
// (subject, phase, value) at the plan's scaled threshold Ê instead of the
// full-quorum ⌊(n+k)/2⌋+1. Observe and Prune are drop-in compatible (they
// return echo.Accept), so the malicious machine runs unchanged over either
// tracker. It is not safe for concurrent use.
type Tracker struct {
	self      msg.ID
	sample    []int32 // this receiver's sorted echo sample (aliases Directory)
	threshold int32
	n         int

	low     msg.Phase
	cur     *phaseTally
	tallies map[msg.Phase]*phaseTally

	freePhases   []*phaseTally
	freeSubjects []*subjectTally
	scratch      []msg.Phase
}

// NewTracker returns an empty sparse tracker for receiver self, counting
// echoes from its sample in dir.
func NewTracker(dir *Directory, self msg.ID) *Tracker {
	return &Tracker{
		self:      self,
		sample:    dir.EchoSample(self),
		threshold: int32(dir.Plan().EchoThreshold),
		n:         dir.Plan().N,
		tallies:   make(map[msg.Phase]*phaseTally),
	}
}

// Threshold returns the acceptance threshold Ê.
func (t *Tracker) Threshold() int { return int(t.threshold) }

func (t *Tracker) inRange(id msg.ID) bool { return id >= 0 && int(id) < t.n }

func (t *Tracker) tally(p msg.Phase) *phaseTally {
	if t.cur != nil && t.cur.phase == p {
		return t.cur
	}
	pt := t.tallies[p]
	if pt == nil {
		if n := len(t.freePhases); n > 0 {
			pt = t.freePhases[n-1]
			t.freePhases = t.freePhases[:n-1]
		} else {
			//lint:allow hotalloc freelist miss: one map per phase table, recycled by Prune; steady state reuses
			pt = &phaseTally{subjects: make(map[msg.ID]*subjectTally)}
		}
		pt.phase = p
		t.tallies[p] = pt
	}
	t.cur = pt
	return pt
}

func (t *Tracker) subject(pt *phaseTally, subject msg.ID) *subjectTally {
	st := pt.subjects[subject]
	if st == nil {
		if n := len(t.freeSubjects); n > 0 {
			st = t.freeSubjects[n-1]
			t.freeSubjects = t.freeSubjects[:n-1]
		} else {
			st = new(subjectTally)
		}
		st.subject = subject
		st.counts = [2]int32{}
		st.seen.Reset(len(t.sample))
		st.accepted = false
		pt.subjects[subject] = st
		pt.order = append(pt.order, subject)
	}
	return st
}

// Observe registers an echo from sender asserting that subject initiated
// value v in phase p. Echoes from senders outside this receiver's echo
// sample are ignored — that is the entire message-complexity win: only E of
// the n possible echoes are ever counted, and honest senders (routed by
// Directory.EchoTargets) never even send the others. Within the sample the
// semantics mirror echo.Tracker exactly: first echo per (sender, subject,
// phase) counts regardless of value, acceptance fires once per
// (subject, phase) when a value's count reaches Ê, pruned phases are dead.
func (t *Tracker) Observe(sender, subject msg.ID, p msg.Phase, v msg.Value) (echo.Accept, bool) {
	if p < t.low || !v.Valid() || !t.inRange(sender) || !t.inRange(subject) {
		return echo.Accept{}, false
	}
	idx := SampleIndex(t.sample, sender)
	if idx < 0 {
		return echo.Accept{}, false
	}
	pt := t.tally(p)
	st := t.subject(pt, subject)
	if st.seen.Set(idx) {
		return echo.Accept{}, false
	}
	st.counts[v]++
	if !st.accepted && st.counts[v] >= t.threshold {
		st.accepted = true
		return echo.Accept{Subject: subject, Phase: p, Value: v}, true
	}
	return echo.Accept{}, false
}

func (t *Tracker) lookup(p msg.Phase) *phaseTally {
	if t.cur != nil && t.cur.phase == p {
		return t.cur
	}
	return t.tallies[p]
}

// Seen reports whether an echo from sender for (subject, phase) was counted.
// Senders outside the sample are never seen.
func (t *Tracker) Seen(sender, subject msg.ID, p msg.Phase) bool {
	idx := SampleIndex(t.sample, sender)
	if idx < 0 {
		return false
	}
	if pt := t.lookup(p); pt != nil {
		if st := pt.subjects[subject]; st != nil {
			return st.seen.Test(idx)
		}
	}
	return false
}

// Count returns the current sample-echo tallies for (subject, phase).
func (t *Tracker) Count(subject msg.ID, p msg.Phase) (zeros, ones int) {
	if pt := t.lookup(p); pt != nil {
		if st := pt.subjects[subject]; st != nil {
			return int(st.counts[0]), int(st.counts[1])
		}
	}
	return 0, 0
}

// Accepted reports whether (subject, phase) has been accepted.
func (t *Tracker) Accepted(subject msg.ID, p msg.Phase) bool {
	if pt := t.lookup(p); pt != nil {
		if st := pt.subjects[subject]; st != nil {
			return st.accepted
		}
	}
	return false
}

// Prune discards all bookkeeping for phases strictly below p and ignores
// future echoes for those phases, recycling phase tables and subject
// tallies through the freelists (in deterministic order).
func (t *Tracker) Prune(p msg.Phase) {
	if p <= t.low {
		return
	}
	t.scratch = t.scratch[:0]
	for ph := range t.tallies {
		if ph < p {
			t.scratch = append(t.scratch, ph)
		}
	}
	slices.Sort(t.scratch)
	for _, ph := range t.scratch {
		pt := t.tallies[ph]
		delete(t.tallies, ph)
		if t.cur == pt {
			t.cur = nil
		}
		for _, s := range pt.order {
			t.freeSubjects = append(t.freeSubjects, pt.subjects[s])
		}
		clear(pt.subjects)
		pt.order = pt.order[:0]
		t.freePhases = append(t.freePhases, pt)
	}
	t.low = p
}
