package sample

import (
	"fmt"
	"runtime"
	"testing"

	"resilient/internal/msg"
)

// heapDelta runs fill and returns the live heap it retained, in bytes.
func heapDelta(fill func() any) uint64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	kept := fill()
	runtime.GC()
	runtime.ReadMemStats(&after)
	runtime.KeepAlive(kept)
	return after.HeapAlloc - before.HeapAlloc
}

// BenchmarkSparseTrackerMemory pins the sampled scheme's per-node footprint
// against the dense echo.Tracker baseline (see internal/echo's
// BenchmarkTrackerMemory): a sparse tracker holds an E-entry sample plus one
// small tally per active subject, independent of n, while the dense tracker
// holds an n²-bit dedup table per node. The shared directory (all samples +
// reverse maps) is amortized across the run's n processes and reported
// separately as dir-B/node.
func BenchmarkSparseTrackerMemory(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			p, err := NewPlan(n, n/10, DefaultEps)
			if err != nil {
				b.Fatal(err)
			}
			dirBytes := heapDelta(func() any { return NewDirectory(p, 1) })
			dir := NewDirectory(p, 1)
			b.ReportAllocs()
			var total uint64
			const batch = 8
			for i := 0; i < b.N; i++ {
				total += heapDelta(func() any {
					trackers := make([]*Tracker, batch)
					for j := range trackers {
						tr := NewTracker(dir, msg.ID(j))
						tr.Observe(msg.ID(dir.EchoSample(msg.ID(j))[0]), 0, 0, msg.V0)
						trackers[j] = tr
					}
					return trackers
				})
			}
			b.ReportMetric(float64(total)/float64(batch*b.N), "B/node")
			b.ReportMetric(float64(dirBytes)/float64(n), "dir-B/node")
		})
	}
}
