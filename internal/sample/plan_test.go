package sample

import (
	"math"
	"testing"

	"resilient/internal/dist"
	"resilient/internal/quorum"
)

func TestPlanValidation(t *testing.T) {
	if _, err := NewPlan(1, 0, 1e-3); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := NewPlan(10, 4, 1e-3); err == nil {
		t.Error("3k >= n accepted")
	}
	if _, err := NewPlan(10, -1, 1e-3); err == nil {
		t.Error("negative k accepted")
	}
	if _, err := NewPlan(100, 10, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := NewPlan(100, 10, 0.5); err == nil {
		t.Error("eps=0.5 accepted")
	}
}

// TestPlanBounds checks every plan over an (n, k, eps) sweep against the
// constraints it claims: both analytic echo tails within eps, thresholds
// within sample sizes, samples within the population, and the ready stage
// no larger than the echo stage (its success/failure gap is wider).
func TestPlanBounds(t *testing.T) {
	for _, n := range []int{10, 21, 100, 1000, 10_000} {
		for _, kf := range []float64{0, 0.05, 0.10, 0.20, 0.30} {
			k := int(kf * float64(n))
			if 3*k >= n {
				continue
			}
			for _, eps := range []float64{1e-2, 1e-3, 1e-6} {
				p, err := NewPlan(n, k, eps)
				if err != nil {
					t.Fatalf("NewPlan(%d, %d, %g): %v", n, k, eps, err)
				}
				if p.Gossip < 1 || p.Gossip > n-1 {
					t.Errorf("%v: gossip fanout out of range", p)
				}
				if p.Echo < 1 || p.Echo > n || p.EchoThreshold < 1 || p.EchoThreshold > p.Echo {
					t.Errorf("%v: echo stage out of range", p)
				}
				if p.Ready < 1 || p.Ready > n || p.ReadyDeliver > p.Ready {
					t.Errorf("%v: ready stage out of range", p)
				}
				if p.Ready > p.Echo {
					t.Errorf("%v: ready sample larger than echo sample", p)
				}
				if f := p.EchoFailure(); f > eps {
					t.Errorf("%v: echo failure bound %.3g > eps", p, f)
				}
				// Safety of the ready thresholds against k Byzantine alone.
				byz := dist.Hypergeometric{Pop: n, Success: k, Draw: p.Ready}
				if k > 0 && byz.TailAbove(p.ReadyFeedback-1) > eps {
					t.Errorf("%v: k Byzantine can forge feedback readies", p)
				}
			}
		}
	}
}

// TestPlanDegeneratesToFigure2 pins the equivalence argument: at tiny n any
// practical eps drives the echo sample to (essentially) the whole population,
// where both tails are exactly zero — a deterministic scheme — and the
// threshold is exactly the paper's ⌊(n+k)/2⌋+1 echo-acceptance quorum. (The
// search may stop one short of n when sampling n−1 processes already gives
// zero-probability tails; the threshold is the same either way.)
func TestPlanDegeneratesToFigure2(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{10, 3}, {21, 6}, {40, 13}} {
		p, err := NewPlan(tc.n, tc.k, 1e-9)
		if err != nil {
			t.Fatalf("NewPlan(%d, %d): %v", tc.n, tc.k, err)
		}
		if p.Echo < tc.n-1 {
			t.Fatalf("n=%d k=%d: echo sample %d, want >= n-1", tc.n, tc.k, p.Echo)
		}
		want := quorum.EchoAcceptCount(tc.n, tc.k)
		if p.EchoThreshold != want {
			t.Errorf("n=%d k=%d: threshold %d, want EchoAcceptCount=%d",
				tc.n, tc.k, p.EchoThreshold, want)
		}
		if f := p.EchoFailure(); f != 0 {
			t.Errorf("n=%d k=%d: degenerate plan failure bound %g, want 0", tc.n, tc.k, f)
		}
	}
}

// TestPlanScaling pins the headline scaling claim: at n=1,000 and n=10,000
// with a k=n/10 budget, the sampled primitive needs at least 5x fewer
// messages than the n² echo primitive, and sample sizes grow ~logarithmically
// (the n=10,000 echo sample is far below 10x the n=1,000 one).
func TestPlanScaling(t *testing.T) {
	echoMsgs := func(n int) int64 { return int64(n) * int64(n+1) } // n gossip-equivalents + n² echoes
	p1, err := NewPlan(1000, 99, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	p10, err := NewPlan(10_000, 999, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("n=1,000:  %v  expected msgs %d (echo scheme: %d)", p1, p1.ExpectedMessages(), echoMsgs(1000))
	t.Logf("n=10,000: %v  expected msgs %d (echo scheme: %d)", p10, p10.ExpectedMessages(), echoMsgs(10_000))
	if r := float64(echoMsgs(1000)) / float64(p1.ExpectedMessages()); r < 5 {
		t.Errorf("n=1,000 message reduction %.1fx, want >= 5x", r)
	}
	if r := float64(echoMsgs(10_000)) / float64(p10.ExpectedMessages()); r < 25 {
		t.Errorf("n=10,000 message reduction %.1fx, want >= 25x", r)
	}
	if p10.Echo > 4*p1.Echo {
		t.Errorf("echo sample grew %d -> %d; want sublinear growth", p1.Echo, p10.Echo)
	}
	if p1.Degenerate() || p10.Degenerate() {
		t.Errorf("plans unexpectedly degenerate: %v %v", p1, p10)
	}
}

// TestPlanEpsTable logs the ε → sample-size table quoted in DESIGN §13.
func TestPlanEpsTable(t *testing.T) {
	for _, n := range []int{100, 1000, 10_000} {
		for _, kf := range []float64{0.10, 0.20, 0.30} {
			k := int(kf * float64(n))
			if 3*k >= n {
				continue
			}
			for _, eps := range []float64{1e-2, 1e-3, 1e-6} {
				p, err := NewPlan(n, k, eps)
				if err != nil {
					t.Fatalf("NewPlan(%d, %d, %g): %v", n, k, eps, err)
				}
				t.Logf("n=%5d k=%4d eps=%5.0e: G=%3d E=%5d Ê=%5d R=%4d msgs=%9d reduction=%6.1fx degenerate=%v",
					n, k, eps, p.Gossip, p.Echo, p.EchoThreshold, p.Ready,
					p.ExpectedMessages(),
					float64(int64(n)*int64(n+1))/float64(p.ExpectedMessages()),
					p.Degenerate())
			}
		}
	}
}

func TestPlanEchoFailureMatchesTails(t *testing.T) {
	p, err := NewPlan(500, 50, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	conflict := dist.Hypergeometric{Pop: 500, Success: (500 + 50) / 2, Draw: p.Echo}
	good := dist.Hypergeometric{Pop: 500, Success: 450, Draw: p.Echo}
	want := math.Max(conflict.TailAbove(p.EchoThreshold-1), good.CDF(p.EchoThreshold-1))
	if got := p.EchoFailure(); got != want {
		t.Errorf("EchoFailure() = %g, want %g", got, want)
	}
}
