package sample

import (
	"slices"
	"testing"

	"resilient/internal/msg"
)

func mustPlan(t testing.TB, n, k int, eps float64) Plan {
	t.Helper()
	p, err := NewPlan(n, k, eps)
	if err != nil {
		t.Fatalf("NewPlan(%d, %d, %g): %v", n, k, eps, err)
	}
	return p
}

func TestDirectoryShapes(t *testing.T) {
	p := mustPlan(t, 200, 20, 1e-3)
	d := NewDirectory(p, 7)
	totalEcho, totalReady := 0, 0
	for r := 0; r < p.N; r++ {
		id := msg.ID(r)
		es := d.EchoSample(id)
		if len(es) != p.Echo || !slices.IsSorted(es) {
			t.Fatalf("receiver %d: echo sample len=%d sorted=%v", r, len(es), slices.IsSorted(es))
		}
		rs := d.ReadySample(id)
		if len(rs) != p.Ready || !slices.IsSorted(rs) {
			t.Fatalf("receiver %d: ready sample len=%d sorted=%v", r, len(rs), slices.IsSorted(rs))
		}
		gs := d.GossipTargets(id)
		if len(gs) != p.Gossip {
			t.Fatalf("process %d: gossip fanout %d, want %d", r, len(gs), p.Gossip)
		}
		for _, s := range [][]int32{es, rs, gs} {
			for i := 1; i < len(s); i++ {
				if s[i] == s[i-1] {
					t.Fatalf("process %d: duplicate member %d", r, s[i])
				}
			}
			for _, v := range s {
				if v < 0 || int(v) >= p.N {
					t.Fatalf("process %d: member %d out of range", r, v)
				}
			}
		}
		totalEcho += len(d.EchoTargets(id))
		totalReady += len(d.ReadyTargets(id))
	}
	if totalEcho != p.N*p.Echo {
		t.Errorf("echo reverse map covers %d entries, want %d", totalEcho, p.N*p.Echo)
	}
	if totalReady != p.N*p.Ready {
		t.Errorf("ready reverse map covers %d entries, want %d", totalReady, p.N*p.Ready)
	}
}

// TestDirectoryReverseConsistency checks the CSR transpose both ways:
// r ∈ EchoTargets(p) exactly when p ∈ EchoSample(r).
func TestDirectoryReverseConsistency(t *testing.T) {
	p := mustPlan(t, 150, 15, 1e-2)
	d := NewDirectory(p, 99)
	for pid := 0; pid < p.N; pid++ {
		for _, r := range d.EchoTargets(msg.ID(pid)) {
			if SampleIndex(d.EchoSample(msg.ID(r)), msg.ID(pid)) < 0 {
				t.Fatalf("p%d in EchoTargets but not in receiver %d's sample", pid, r)
			}
		}
		for _, r := range d.ReadyTargets(msg.ID(pid)) {
			if SampleIndex(d.ReadySample(msg.ID(r)), msg.ID(pid)) < 0 {
				t.Fatalf("p%d in ReadyTargets but not in receiver %d's ready sample", pid, r)
			}
		}
	}
	for r := 0; r < p.N; r++ {
		for _, m := range d.EchoSample(msg.ID(r)) {
			if !slices.Contains(d.EchoTargets(msg.ID(m)), int32(r)) {
				t.Fatalf("receiver %d sampled p%d but is missing from its targets", r, m)
			}
		}
	}
}

func TestDirectoryDeterministic(t *testing.T) {
	p := mustPlan(t, 300, 30, 1e-3)
	a := NewDirectory(p, 42)
	b := NewDirectory(p, 42)
	c := NewDirectory(p, 43)
	if !slices.Equal(a.echoSamples, b.echoSamples) ||
		!slices.Equal(a.readySamples, b.readySamples) ||
		!slices.Equal(a.gossipTargets, b.gossipTargets) {
		t.Fatal("same seed produced different directories")
	}
	if slices.Equal(a.echoSamples, c.echoSamples) {
		t.Fatal("different seeds produced identical echo samples")
	}
}

func TestSampleIndex(t *testing.T) {
	s := []int32{2, 5, 9, 14}
	for i, v := range s {
		if got := SampleIndex(s, msg.ID(v)); got != i {
			t.Errorf("SampleIndex(%d) = %d, want %d", v, got, i)
		}
	}
	for _, v := range []msg.ID{0, 3, 15, -1} {
		if got := SampleIndex(s, v); got != -1 {
			t.Errorf("SampleIndex(%d) = %d, want -1", v, got)
		}
	}
}
