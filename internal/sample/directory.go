package sample

import (
	"math/rand/v2"
	"slices"

	"resilient/internal/dist"
	"resilient/internal/msg"
)

// directoryStream salts the dedicated PCG stream the directory draws from,
// so sample draws never alias the scheduler's or a machine's variate stream
// for the same run seed.
const directoryStream = 0x5a3b1ebaced15eed

// Directory holds every per-receiver sample for one run: each process's
// sorted echo and ready samples, its gossip fanout targets, and the reverse
// ("who sampled me") target lists that senders use to address their echoes
// and readies. It is drawn deterministically from (seed, Plan) via
// dist.IndexSampler — the same seed always yields the same directory, at any
// worker count, on any engine — and is immutable after construction, so one
// Directory is shared read-only by all n machines of a run.
//
// Memory is O(n·(G+E+R)) in four flat int32 arrays plus two CSR reverse
// maps: about 6 MB at n=10,000 under the default plan, versus the O(n²)
// bitsets the dense full-quorum tracker would need (~12.5 MB per node
// per phase).
type Directory struct {
	plan Plan

	// echoSamples[r*E:(r+1)*E] is receiver r's sorted echo sample.
	echoSamples []int32
	// readySamples[r*R:(r+1)*R] is receiver r's sorted ready sample.
	readySamples []int32
	// gossipTargets[p*G:(p+1)*G] is process p's gossip fanout.
	gossipTargets []int32

	// CSR reverse maps: echoTargets[echoOff[p]:echoOff[p+1]] lists the
	// receivers whose echo sample contains p (ascending), i.e. the set p
	// must send its echoes to. Likewise for readies.
	echoOff      []int32
	echoTargets  []int32
	readyOff     []int32
	readyTargets []int32
}

// NewDirectory draws the directory for plan p from the run seed.
func NewDirectory(p Plan, seed uint64) *Directory {
	rng := rand.New(rand.NewPCG(seed, seed^directoryStream))
	n := p.N
	d := &Directory{
		plan:          p,
		echoSamples:   make([]int32, 0, n*p.Echo),
		readySamples:  make([]int32, 0, n*p.Ready),
		gossipTargets: make([]int32, 0, n*p.Gossip),
	}
	sampler := dist.NewIndexSampler(n)
	// Receivers draw in id order, echo then ready then gossip, so the draw
	// sequence (and therefore every sample) is pinned by the seed alone.
	for r := 0; r < n; r++ {
		start := len(d.echoSamples)
		d.echoSamples = sampler.Draw(rng, p.Echo, d.echoSamples)
		slices.Sort(d.echoSamples[start:])

		start = len(d.readySamples)
		d.readySamples = sampler.Draw(rng, p.Ready, d.readySamples)
		slices.Sort(d.readySamples[start:])

		start = len(d.gossipTargets)
		d.gossipTargets = sampler.Draw(rng, p.Gossip, d.gossipTargets)
		slices.Sort(d.gossipTargets[start:])
	}
	d.echoOff, d.echoTargets = reverse(n, p.Echo, d.echoSamples)
	d.readyOff, d.readyTargets = reverse(n, p.Ready, d.readySamples)
	return d
}

// reverse builds the CSR transpose of the (receiver → sample member) map:
// for each process p, the ascending list of receivers that sampled p.
func reverse(n, width int, samples []int32) (off, targets []int32) {
	off = make([]int32, n+1)
	for _, m := range samples {
		off[m+1]++
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	targets = make([]int32, len(samples))
	cursor := make([]int32, n)
	copy(cursor, off[:n])
	for r := 0; r < n; r++ {
		for _, m := range samples[r*width : (r+1)*width] {
			targets[cursor[m]] = int32(r)
			cursor[m]++
		}
	}
	return off, targets
}

// Plan returns the operating point the directory was drawn for.
func (d *Directory) Plan() Plan { return d.plan }

// EchoSample returns receiver r's sorted echo sample. The slice aliases the
// directory and must not be mutated.
func (d *Directory) EchoSample(r msg.ID) []int32 {
	e := d.plan.Echo
	return d.echoSamples[int(r)*e : (int(r)+1)*e]
}

// ReadySample returns receiver r's sorted ready sample.
func (d *Directory) ReadySample(r msg.ID) []int32 {
	w := d.plan.Ready
	return d.readySamples[int(r)*w : (int(r)+1)*w]
}

// GossipTargets returns process p's gossip fanout targets.
func (d *Directory) GossipTargets(p msg.ID) []int32 {
	g := d.plan.Gossip
	return d.gossipTargets[int(p)*g : (int(p)+1)*g]
}

// EchoTargets returns the receivers whose echo sample contains p: the
// processes p must address its echoes to. Ascending; expected length E.
func (d *Directory) EchoTargets(p msg.ID) []int32 {
	return d.echoTargets[d.echoOff[p]:d.echoOff[p+1]]
}

// ReadyTargets returns the receivers whose ready sample contains p.
func (d *Directory) ReadyTargets(p msg.ID) []int32 {
	return d.readyTargets[d.readyOff[p]:d.readyOff[p+1]]
}

// SampleIndex returns the position of sender within the sorted sample, or
// -1 when the sender was not drawn. Positions index the per-subject seen
// bitsets in Tracker.
func SampleIndex(sample []int32, sender msg.ID) int {
	i, ok := slices.BinarySearch(sample, int32(sender))
	if !ok {
		return -1
	}
	return i
}
