package markov

import (
	"fmt"

	"resilient/internal/matrix"
)

// TailDistribution computes P[T > t] for t = 0..maxSteps, where T is the
// number of phases to absorption starting from the given state: the full
// distribution behind the expectations of Section 4, obtained by iterating
// the transient submatrix (P[T > t] = e_start Q^t 1).
func TailDistribution(states int, absorbed func(int) bool, row func(int) []float64,
	start, maxSteps int) ([]float64, error) {
	if maxSteps < 0 {
		return nil, fmt.Errorf("markov: negative maxSteps %d", maxSteps)
	}
	var transient []int
	index := make(map[int]int, states)
	for i := 0; i < states; i++ {
		if !absorbed(i) {
			index[i] = len(transient)
			transient = append(transient, i)
		}
	}
	tail := make([]float64, maxSteps+1)
	si, ok := index[start]
	if !ok {
		// Starting absorbed: T = 0, so P[T > t] = 0 for all t.
		return tail, nil
	}
	q := matrix.New(len(transient), len(transient))
	for ti, i := range transient {
		r := row(i)
		for j, p := range r {
			if tj, ok := index[j]; ok && p != 0 {
				q.Set(ti, tj, p)
			}
		}
	}
	// prob[i] = P[in transient state i at step t], starting at si.
	prob := make([]float64, len(transient))
	prob[si] = 1
	for t := 0; t <= maxSteps; t++ {
		sum := 0.0
		for _, p := range prob {
			sum += p
		}
		if sum > 1 {
			sum = 1
		}
		tail[t] = sum
		if t == maxSteps {
			break
		}
		next := make([]float64, len(transient))
		for i, p := range prob {
			if p == 0 {
				continue
			}
			for j := range next {
				next[j] += p * q.At(i, j)
			}
		}
		prob = next
	}
	return tail, nil
}

// TailFromBalanced returns P[T > t] for the fail-stop chain from the
// balanced state.
func (c FailStop) TailFromBalanced(maxSteps int) ([]float64, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return TailDistribution(c.N+1, c.Absorbed, c.TransitionRow, c.N/2, maxSteps)
}

// TailFromBalanced returns P[T > t] for the malicious chain from the
// balanced state.
func (c Malicious) TailFromBalanced(maxSteps int) ([]float64, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return TailDistribution(c.Correct()+1, c.Absorbed, c.TransitionRow, c.Correct()/2, maxSteps)
}
