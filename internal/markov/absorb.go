package markov

import (
	"fmt"

	"resilient/internal/matrix"
	"resilient/internal/quorum"
)

// AbsorptionSplit computes, for every transient state, the probability that
// the chain is absorbed in the *high* region (all-ones side) rather than
// the low one, via B = N * R with N the fundamental matrix and R the
// transient-to-absorbing block. Absorbed states report 0 or 1 according to
// their side. This quantifies the paper's closing remark that "the
// consensus value is still likely to be equal to the majority of the
// initial input values".
func (c FailStop) AbsorptionSplit() ([]float64, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return absorptionSplit(c.N+1, c.Absorbed, c.TransitionRow, func(i int) bool {
		return quorum.ExceedsHalfNPlusK(i, c.N, c.K)
	})
}

// AbsorptionSplit is the malicious-chain analogue of FailStop's.
func (c Malicious) AbsorptionSplit() ([]float64, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return absorptionSplit(c.Correct()+1, c.Absorbed, c.TransitionRow, func(i int) bool {
		return quorum.ExceedsHalfNPlusK(i, c.N, c.K)
	})
}

// absorptionSplit solves B = N*R for the probability of ending in the
// "high" absorbing side from each state.
func absorptionSplit(states int, absorbed func(int) bool, row func(int) []float64, high func(int) bool) ([]float64, error) {
	var transient []int
	index := make(map[int]int, states)
	for i := 0; i < states; i++ {
		if !absorbed(i) {
			index[i] = len(transient)
			transient = append(transient, i)
		}
	}
	out := make([]float64, states)
	for i := 0; i < states; i++ {
		if absorbed(i) && high(i) {
			out[i] = 1
		}
	}
	if len(transient) == 0 {
		return out, nil
	}
	q := matrix.New(len(transient), len(transient))
	rHigh := matrix.New(len(transient), 1) // P(one-step absorption into high)
	for ti, i := range transient {
		r := row(i)
		for j, p := range r {
			if p == 0 {
				continue
			}
			if tj, ok := index[j]; ok {
				q.Set(ti, tj, p)
				continue
			}
			if high(j) {
				rHigh.Set(ti, 0, rHigh.At(ti, 0)+p)
			}
		}
	}
	n, err := matrix.Fundamental(q)
	if err != nil {
		return nil, fmt.Errorf("markov: absorption split: %w", err)
	}
	b, err := n.Mul(rHigh)
	if err != nil {
		return nil, err
	}
	for ti, i := range transient {
		p := b.At(ti, 0)
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		out[i] = p
	}
	return out, nil
}
