// Package markov implements the Section 4 performance analysis of the paper
// analytically: the Markov chains describing the protocols' per-phase value
// dynamics, their exact expected absorption times via the fundamental matrix
// N = (I-Q)^-1 ([Isaa76], eq. (12)), and the paper's closed-form collapsed
// bounds -- eq. (13) for the fail-stop case (expected phases < 7 for
// l^2 = 1.5) and 1/(2*Phi(l)) for the malicious case (Section 4.2 eq. (2)).
package markov

import (
	"fmt"
	"math"

	"resilient/internal/dist"
	"resilient/internal/matrix"
	"resilient/internal/quorum"
)

// FailStop is the Section 4.1 chain: states 0..n count the processes holding
// value 1; in each phase every process adopts the majority of a uniform
// (n-k)-view.
type FailStop struct {
	N, K int
}

// Validate checks parameters.
func (c FailStop) Validate() error {
	if c.N < 1 || c.K < 0 || c.K >= c.N {
		return fmt.Errorf("markov: invalid fail-stop chain n=%d k=%d", c.N, c.K)
	}
	return nil
}

// W returns w_i of eq. (1): the probability that one process's uniform
// (n-k)-view of a system in state i contains a strict majority of ones, i.e.
// P[X_(n, i, n-k) > (n-k)/2] with X hypergeometric.
func (c FailStop) W(i int) float64 {
	draw := quorum.WaitCount(c.N, c.K)
	h := dist.Hypergeometric{Pop: c.N, Success: i, Draw: draw}
	return h.TailAbove(draw / 2) // strictly more than half the view
}

// TransitionRow returns row i of the transition matrix P of eq. (1):
// P_{i,j} = C(n, j) * w_i^j * (1-w_i)^(n-j).
func (c FailStop) TransitionRow(i int) []float64 {
	b := dist.Binomial{N: c.N, P: c.W(i)}
	row := make([]float64, c.N+1)
	for j := 0; j <= c.N; j++ {
		row[j] = b.PMF(j)
	}
	return row
}

// Absorbed reports whether state i is in the Section 4.1 absorbing region:
// 2i < n-k (guaranteed collapse to all zeros) or 2i > n+k (to all ones).
// With k = n/3 these are the paper's regions [0, n/3) and (2n/3, n].
func (c FailStop) Absorbed(i int) bool {
	return quorum.BelowHalfNMinusK(i, c.N, c.K) || quorum.ExceedsHalfNPlusK(i, c.N, c.K)
}

// TransientStates returns the non-absorbed states in ascending order.
func (c FailStop) TransientStates() []int {
	var ts []int
	for i := 0; i <= c.N; i++ {
		if !c.Absorbed(i) {
			ts = append(ts, i)
		}
	}
	return ts
}

// ExpectedAbsorption computes the exact expected number of phases to reach
// the absorbing region from every state, by solving the fundamental matrix
// of the transient submatrix Q. The returned slice is indexed by state
// (absorbed states report 0).
func (c FailStop) ExpectedAbsorption() ([]float64, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return expectedAbsorption(c.N+1, c.Absorbed, c.TransitionRow)
}

// ExpectedFromBalanced returns the exact expected absorption time from the
// balanced state floor(n/2), the chain's slowest start.
func (c FailStop) ExpectedFromBalanced() (float64, error) {
	times, err := c.ExpectedAbsorption()
	if err != nil {
		return 0, err
	}
	return times[c.N/2], nil
}

// Malicious is the Section 4.2 chain: states 0..n-k count the *correct*
// processes holding value 1; the k malicious processes always contribute the
// minority value ("the worst that the malicious processes can do is to try
// to balance the number of 1- and 0-messages").
type Malicious struct {
	N, K int
	// Forced places the k adversarial messages in every view (the paper's
	// model); otherwise they compete for delivery with all others.
	Forced bool
}

// Validate checks parameters: the balancing-adversary chain needs a correct
// majority, n >= 2k+1 (the fail-stop resilience bound).
func (c Malicious) Validate() error {
	if c.N < 1 || c.K < 0 || c.N < quorum.MinProcesses(c.K, quorum.FailStop) {
		return fmt.Errorf("markov: invalid malicious chain n=%d k=%d", c.N, c.K)
	}
	return nil
}

// Correct returns n-k, the number of correct processes.
func (c Malicious) Correct() int { return c.N - c.K }

// BalancingAdversaryOnes returns how many of the k adversarial messages
// carry value 1 under the Section 4 balancing strategy, given that
// correctOnes of the n-k correct processes currently hold 1. The adversary
// splits its votes so that the probability of a view adopting 1 lands as
// close to 1/2 as its k integer votes allow -- this realizes the paper's
// eq. (1) of Section 4.2, whose rows within k of the centre are pinned to
// the balanced row P_{n/2}. (Choosing the split by the resulting majority
// probability rather than the view mean also neutralizes the
// tie-goes-to-zero skew of even-sized views, which the paper's continuous
// analysis ignores.)
func BalancingAdversaryOnes(n, k, correctOnes int, forced bool) int {
	best, bestDist := 0, math.Inf(1)
	for a := 0; a <= k; a++ {
		w := viewMajorityProb(n, k, correctOnes, a, forced)
		if d := math.Abs(w - 0.5); d < bestDist {
			best, bestDist = a, d
		}
	}
	return best
}

// BalancingMix returns the *randomized* balancing strategy: the adversary
// sends lo ones with probability 1-pHi and lo+1 ones with probability pHi,
// chosen so that the per-view majority probability equals exactly 1/2
// whenever its k votes can bracket it. This realizes the paper's idealized
// adversary, whose chain rows within k of the centre are pinned to the
// balanced row P_{n/2} -- a deterministic integer split cannot do that when
// one vote moves the majority probability by more than the distance to 1/2
// (the Forced model's low view variance makes this common). Randomized
// behaviour is well within the model: malicious processes may follow "some
// malevolent plan" of any kind.
func BalancingMix(n, k, correctOnes int, forced bool) (lo int, pHi float64) {
	//lint:allow hotalloc per-phase sampler construction; cost is dominated by the HG table build
	wAt := func(a int) float64 { return viewMajorityProb(n, k, correctOnes, a, forced) }
	// w is nondecreasing in the number of adversarial ones.
	if wAt(0) >= 0.5 {
		return 0, 0 // push down as hard as possible
	}
	if wAt(k) <= 0.5 {
		return k, 0 // push up as hard as possible
	}
	for a := 1; a <= k; a++ {
		hi := wAt(a)
		if hi < 0.5 {
			continue
		}
		low := wAt(a - 1)
		if hi == low {
			return a, 0
		}
		return a - 1, (0.5 - low) / (hi - low)
	}
	return k, 0 // unreachable: wAt(k) > 0.5 was handled above
}

// MixedW returns the view-majority probability under the randomized
// balancing strategy of BalancingMix.
func MixedW(n, k, correctOnes int, forced bool) float64 {
	lo, pHi := BalancingMix(n, k, correctOnes, forced)
	w := viewMajorityProb(n, k, correctOnes, lo, forced)
	if pHi > 0 {
		w = (1-pHi)*w + pHi*viewMajorityProb(n, k, correctOnes, lo+1, forced)
	}
	return w
}

// viewMajorityProb is the probability that one correct process's view has a
// strict majority of ones when the adversary sends advOnes ones and
// k-advOnes zeros.
func viewMajorityProb(n, k, correctOnes, advOnes int, forced bool) float64 {
	correct := n - k
	draw := quorum.WaitCount(n, k)
	if forced {
		// Adversary messages always delivered: view = k adversarial +
		// (n-2k)-sample of the n-k correct messages. Majority of the full
		// (n-k)-view: advOnes + X > (n-k)/2.
		h := dist.Hypergeometric{Pop: correct, Success: correctOnes, Draw: draw - k}
		return h.TailAbove(draw/2 - advOnes)
	}
	h := dist.Hypergeometric{Pop: n, Success: correctOnes + advOnes, Draw: draw}
	return h.TailAbove(draw / 2)
}

// W returns the probability that one correct process's view of a system in
// state i (correct ones) has a strict majority of ones, against the
// randomized balancing adversary (MixedW). Per the paper's model, each
// process's view -- including the adversarial votes in it -- is drawn
// independently, which pins W to exactly 1/2 across the central band and
// yields the chain M of Section 4.2 whose near-centre rows equal P_{n/2}.
// (The real Figure 2 protocol is *better* than this: echo broadcast forces
// the adversary's accepted values to be common to all receivers in a phase,
// which herds the correct processes and speeds absorption up.)
func (c Malicious) W(i int) float64 {
	return MixedW(c.N, c.K, i, c.Forced)
}

// TransitionRow returns row i of the chain over states 0..n-k: the number of
// correct processes adopting 1 is Binomial(n-k, W(i)).
func (c Malicious) TransitionRow(i int) []float64 {
	b := dist.Binomial{N: c.Correct(), P: c.W(i)}
	row := make([]float64, c.Correct()+1)
	for j := 0; j <= c.Correct(); j++ {
		row[j] = b.PMF(j)
	}
	return row
}

// Absorbed reports whether state i is in the Section 4.2 absorbing region:
// states 0..(n-3k)/2-1 and (n+k)/2+1..n-k, i.e. 2i < n-3k or 2i > n+k.
func (c Malicious) Absorbed(i int) bool {
	return quorum.BelowHalfNMinus3K(i, c.N, c.K) || quorum.ExceedsHalfNPlusK(i, c.N, c.K)
}

// ExpectedAbsorption computes the exact expected phases to absorption from
// every state 0..n-k.
func (c Malicious) ExpectedAbsorption() ([]float64, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return expectedAbsorption(c.Correct()+1, c.Absorbed, c.TransitionRow)
}

// ExpectedFromBalanced returns the exact expected absorption time from the
// balanced state floor((n-k)/2).
func (c Malicious) ExpectedFromBalanced() (float64, error) {
	times, err := c.ExpectedAbsorption()
	if err != nil {
		return 0, err
	}
	return times[c.Correct()/2], nil
}

// expectedAbsorption solves the absorption-time system for a chain with the
// given number of states, absorption predicate, and row constructor.
func expectedAbsorption(states int, absorbed func(int) bool, row func(int) []float64) ([]float64, error) {
	var transient []int
	index := make(map[int]int, states)
	for i := 0; i < states; i++ {
		if !absorbed(i) {
			index[i] = len(transient)
			transient = append(transient, i)
		}
	}
	times := make([]float64, states)
	if len(transient) == 0 {
		return times, nil
	}
	q := matrix.New(len(transient), len(transient))
	for ti, i := range transient {
		r := row(i)
		for j, p := range r {
			if tj, ok := index[j]; ok && p != 0 {
				q.Set(ti, tj, p)
			}
		}
	}
	abs, err := matrix.AbsorptionTimes(q)
	if err != nil {
		return nil, fmt.Errorf("markov: absorption solve (%d transient states): %w", len(transient), err)
	}
	for ti, i := range transient {
		times[i] = abs[ti]
	}
	return times, nil
}

// CollapsedR builds the paper's 3-state collapsed matrix R of eq. (11) for
// the fail-stop analysis with parameter l (the paper sets l^2 = 1.5):
//
//	        C                 BD                                  AE
//	C   ( 1-2*Phi(l)          2*Phi(l)                            0   )
//	BD  ( Phi((sqrt(n)+3l)/sqrt(8))  1/2-Phi((sqrt(n)+3l)/sqrt(8))  1/2 )
//	AE  ( 0                   0                                   1   )
//
// States: C is the center band of width l*sqrt(n) around n/2, BD the outer
// transient bands, AE the (merged) absorbing regions.
func CollapsedR(n int, l float64) *matrix.Dense {
	phiL := dist.Phi(l)
	phiB := dist.Phi((math.Sqrt(float64(n)) + 3*l) / math.Sqrt(8))
	r := matrix.New(3, 3)
	r.Set(0, 0, 1-2*phiL)
	r.Set(0, 1, 2*phiL)
	r.Set(0, 2, 0)
	r.Set(1, 0, phiB)
	r.Set(1, 1, 0.5-phiB)
	r.Set(1, 2, 0.5)
	r.Set(2, 0, 0)
	r.Set(2, 1, 0)
	r.Set(2, 2, 1)
	return r
}

// CollapsedBound evaluates eq. (13): the paper's upper bound on the expected
// number of phases to absorption from the center state,
//
//	(2*Phi(l) + 1/2 + Phi((sqrt(n)+3l)/sqrt(8))) / Phi(l),
//
// which is < 7 for l^2 = 1.5 and any n.
func CollapsedBound(n int, l float64) float64 {
	phiL := dist.Phi(l)
	phiB := dist.Phi((math.Sqrt(float64(n)) + 3*l) / math.Sqrt(8))
	return (2*phiL + 0.5 + phiB) / phiL
}

// CollapsedBoundViaMatrix computes the same bound by actually solving the
// 2x2 fundamental matrix of R's transient block (eq. (12)) and summing the
// first row -- a consistency check on the closed form.
func CollapsedBoundViaMatrix(n int, l float64) (float64, error) {
	r := CollapsedR(n, l)
	q := matrix.New(2, 2)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			q.Set(i, j, r.At(i, j))
		}
	}
	times, err := matrix.AbsorptionTimes(q)
	if err != nil {
		return 0, err
	}
	return times[0], nil
}

// DefaultL is the paper's choice l = sqrt(1.5).
var DefaultL = math.Sqrt(1.5)

// MaliciousBound evaluates the Section 4.2 bound: with k = l*sqrt(n)/2
// malicious processes the expected number of phases to absorption from the
// balanced state is at most 1/(2*Phi(l)); constant for k = o(sqrt(n)).
func MaliciousBound(l float64) float64 {
	return 1 / (2 * dist.Phi(l))
}

// LForK returns the l corresponding to a fault count k at system size n
// under the paper's parametrization k = l*sqrt(n)/2.
func LForK(n, k int) float64 {
	return 2 * float64(k) / math.Sqrt(float64(n))
}

// KForL returns the fault count k = floor(l*sqrt(n)/2).
func KForL(n int, l float64) int {
	return int(l * math.Sqrt(float64(n)) / 2)
}

// FiveStateM builds the paper's intermediate 5-state matrix over the groups
// A = [0, n/3), B = [n/3, n/2 - l*sqrt(n)/2), C = the centre band,
// D and E their mirrors (Section 4.1). Entries are the paper's bounding
// values: the diagonal centre mass 1 - 2*Phi(l), the band-escape masses
// Phi(l), the outward mass from B of at least 1/2, and the re-entry mass
// Phi((sqrt(n)+3l)/sqrt(8)); remaining mass stays put. A and E are
// absorbing.
func FiveStateM(n int, l float64) *matrix.Dense {
	phiL := dist.Phi(l)
	phiB := dist.Phi((math.Sqrt(float64(n)) + 3*l) / math.Sqrt(8))
	m := matrix.New(5, 5) // order: A, B, C, D, E
	// A and E absorb.
	m.Set(0, 0, 1)
	m.Set(4, 4, 1)
	// B: to A with mass 1/2 (eq. (10)), back to C with phiB (eq. (9)),
	// stays otherwise.
	m.Set(1, 0, 0.5)
	m.Set(1, 2, phiB)
	m.Set(1, 1, 0.5-phiB)
	// C: leaves the centre band to each side with Phi(l), stays otherwise
	// (the paper zeroes the direct C->A mass to slow the chain).
	m.Set(2, 1, phiL)
	m.Set(2, 3, phiL)
	m.Set(2, 2, 1-2*phiL)
	// D mirrors B.
	m.Set(3, 4, 0.5)
	m.Set(3, 2, phiB)
	m.Set(3, 3, 0.5-phiB)
	return m
}

// CollapseFiveToR merges the symmetric groups of the 5-state matrix --
// A with E and B with D -- yielding the paper's 3-state matrix R of
// eq. (11) over (C, BD, AE).
func CollapseFiveToR(m *matrix.Dense) (*matrix.Dense, error) {
	if m.Rows() != 5 || m.Cols() != 5 {
		return nil, fmt.Errorf("markov: collapse needs a 5x5 matrix, got %dx%d", m.Rows(), m.Cols())
	}
	// Group columns: C = {2}, BD = {1, 3}, AE = {0, 4}. Row representatives:
	// C from row 2, BD from row 1 (B and D are mirror-identical).
	groups := [][]int{{2}, {1, 3}, {0, 4}}
	r := matrix.New(3, 3)
	reps := []int{2, 1, 0}
	for gi, rep := range reps {
		for gj, cols := range groups {
			sum := 0.0
			for _, c := range cols {
				sum += m.At(rep, c)
			}
			r.Set(gi, gj, sum)
		}
	}
	return r, nil
}
