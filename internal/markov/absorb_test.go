package markov_test

import (
	"math"
	"math/rand/v2"
	"testing"

	"resilient/internal/markov"
	"resilient/internal/mc"
)

func TestAbsorptionSplitShape(t *testing.T) {
	c := markov.FailStop{N: 61, K: 20} // odd draw: exactly symmetric
	split, err := c.AbsorptionSplit()
	if err != nil {
		t.Fatal(err)
	}
	// Monotone nondecreasing in the start state, 0 at the bottom, 1 at the
	// top, and 1/2 by symmetry at the (half-integer) centre.
	prev := -1.0
	for i, p := range split {
		if p < prev-1e-9 {
			t.Fatalf("split not monotone at %d: %v < %v", i, p, prev)
		}
		if p < 0 || p > 1 {
			t.Fatalf("split[%d] = %v outside [0,1]", i, p)
		}
		prev = p
	}
	if split[0] != 0 || split[61] != 1 {
		t.Errorf("endpoints %v, %v", split[0], split[61])
	}
	mid := (split[30] + split[31]) / 2
	if math.Abs(mid-0.5) > 1e-6 {
		t.Errorf("centre probability %v, want 0.5", mid)
	}
}

func TestAbsorptionSplitSupermajorityCommits(t *testing.T) {
	c := markov.FailStop{N: 60, K: 20}
	split, err := c.AbsorptionSplit()
	if err != nil {
		t.Fatal(err)
	}
	// States already in the absorbing regions are certain.
	for i := 0; i <= 60; i++ {
		if !c.Absorbed(i) {
			continue
		}
		want := 0.0
		if 2*i > c.N+c.K {
			want = 1
		}
		if split[i] != want {
			t.Errorf("absorbed state %d: split %v, want %v", i, split[i], want)
		}
	}
}

func TestMaliciousAbsorptionSplit(t *testing.T) {
	c := markov.Malicious{N: 100, K: 5, Forced: true}
	split, err := c.AbsorptionSplit()
	if err != nil {
		t.Fatal(err)
	}
	correct := c.Correct()
	if split[0] != 0 || split[correct] != 1 {
		t.Errorf("endpoints %v, %v", split[0], split[correct])
	}
	for i := 1; i <= correct; i++ {
		if split[i] < split[i-1]-1e-9 {
			t.Fatalf("split not monotone at %d", i)
		}
	}
}

// TestSplitMatchesSimulatedDecisions cross-checks the analytic absorption
// split against the per-process decision simulation: the fraction of runs
// deciding 1 from a given start state must match B = N*R.
func TestSplitMatchesSimulatedDecisions(t *testing.T) {
	n, k := 30, 9
	chain := markov.FailStop{N: n, K: k}
	split, err := chain.AbsorptionSplit()
	if err != nil {
		t.Fatal(err)
	}
	sim := mc.FailStop{N: n, K: k}
	for _, start := range []int{12, 15, 18} {
		const trials = 2000
		ones := 0
		rng := rand.New(rand.NewPCG(uint64(start), 99))
		for tr := 0; tr < trials; tr++ {
			_, decided1, err := sim.DecisionRun(start, rng, 0)
			if err != nil {
				t.Fatal(err)
			}
			if decided1 {
				ones++
			}
		}
		got := float64(ones) / trials
		want := split[start]
		// 3-sigma binomial tolerance plus a small model slack (decisions
		// can fire from transient states before absorption).
		tol := 3*math.Sqrt(want*(1-want)/trials) + 0.03
		if math.Abs(got-want) > tol {
			t.Errorf("start %d: simulated P(decide 1) = %v, analytic %v (tol %v)",
				start, got, want, tol)
		}
	}
}
