package markov

import (
	"math"
	"testing"

	"resilient/internal/dist"
)

func TestWMonotoneInState(t *testing.T) {
	c := FailStop{N: 60, K: 20}
	prev := -1.0
	for i := 0; i <= 60; i++ {
		w := c.W(i)
		if w < prev-1e-12 {
			t.Fatalf("w not monotone at i=%d: %v < %v", i, w, prev)
		}
		if w < 0 || w > 1 {
			t.Fatalf("w_%d = %v outside [0,1]", i, w)
		}
		prev = w
	}
	if c.W(0) != 0 {
		t.Errorf("w_0 = %v, want 0", c.W(0))
	}
	if c.W(60) != 1 {
		t.Errorf("w_n = %v, want 1", c.W(60))
	}
}

func TestTransitionRowsAreStochastic(t *testing.T) {
	c := FailStop{N: 45, K: 15}
	for i := 0; i <= 45; i += 5 {
		row := c.TransitionRow(i)
		sum := 0.0
		for _, p := range row {
			if p < 0 {
				t.Fatalf("negative probability in row %d", i)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestExpectedAbsorptionShape(t *testing.T) {
	c := FailStop{N: 60, K: 20}
	times, err := c.ExpectedAbsorption()
	if err != nil {
		t.Fatal(err)
	}
	// Absorbed states report zero; transient states are positive and the
	// slowest state sits near the balance point. (With n-k even the
	// tie-goes-to-zero rule skews the chain slightly toward 0, so exact
	// symmetry is not expected here; see the odd-draw test below.)
	slowest, slowestAt := 0.0, -1
	for i := 0; i <= 60; i++ {
		if c.Absorbed(i) && times[i] != 0 {
			t.Errorf("absorbed state %d has time %v", i, times[i])
		}
		if !c.Absorbed(i) {
			if times[i] <= 0 {
				t.Errorf("transient state %d has non-positive time %v", i, times[i])
			}
			if times[i] > slowest {
				slowest, slowestAt = times[i], i
			}
		}
	}
	if slowestAt < 28 || slowestAt > 32 {
		t.Errorf("slowest state %d (time %v) far from balance", slowestAt, slowest)
	}
}

func TestExpectedAbsorptionSymmetryOddDraw(t *testing.T) {
	// With n-k odd there are no majority ties and the chain is exactly
	// symmetric: E_i == E_{n-i}.
	c := FailStop{N: 61, K: 20} // draw 41
	times, err := c.ExpectedAbsorption()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 61; i++ {
		if math.Abs(times[i]-times[61-i]) > 1e-6*(1+times[i]) {
			t.Errorf("asymmetry at %d: %v vs %v", i, times[i], times[61-i])
		}
	}
}

func TestExpectedFromBalancedBelowPaperBound(t *testing.T) {
	// The collapsed-chain bound (13) is an upper bound on the exact chain's
	// absorption time for the k = n/3 parametrization it was derived for.
	for _, n := range []int{30, 60, 90, 150} {
		c := FailStop{N: n, K: n / 3}
		got, err := c.ExpectedFromBalanced()
		if err != nil {
			t.Fatal(err)
		}
		bound := CollapsedBound(n, DefaultL)
		if got > bound {
			t.Errorf("n=%d: exact %v exceeds the paper's bound %v", n, got, bound)
		}
		if got <= 0 {
			t.Errorf("n=%d: non-positive %v", n, got)
		}
	}
}

func TestCollapsedBoundBelowSeven(t *testing.T) {
	// The paper's headline: "the expected number of phases is less than 7"
	// for l^2 = 1.5, independent of n.
	for _, n := range []int{9, 30, 100, 1000, 100000, 10000000} {
		if b := CollapsedBound(n, DefaultL); b >= 7 {
			t.Errorf("n=%d: bound %v >= 7", n, b)
		}
	}
}

func TestCollapsedBoundMatchesMatrixForm(t *testing.T) {
	// Eq. (13) closed form == row sum of N = (I-Q)^-1 for the R matrix.
	for _, n := range []int{30, 300, 3000} {
		for _, l := range []float64{0.8, DefaultL, 2.0} {
			closed := CollapsedBound(n, l)
			viaMatrix, err := CollapsedBoundViaMatrix(n, l)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(closed-viaMatrix) > 1e-9*closed {
				t.Errorf("n=%d l=%v: closed %v vs matrix %v", n, l, closed, viaMatrix)
			}
		}
	}
}

func TestCollapsedRIsStochastic(t *testing.T) {
	r := CollapsedR(100, DefaultL)
	for i := 0; i < 3; i++ {
		if math.Abs(r.RowSum(i)-1) > 1e-9 {
			t.Errorf("row %d sums to %v", i, r.RowSum(i))
		}
	}
	if r.At(2, 2) != 1 {
		t.Error("absorbing state not absorbing")
	}
}

func TestMaliciousBoundValues(t *testing.T) {
	// 1/(2*Phi(l)) at l=0 is 1 (Phi(0)=1/2); increases with l.
	if b := MaliciousBound(0); math.Abs(b-1) > 1e-12 {
		t.Errorf("bound at l=0: %v", b)
	}
	if MaliciousBound(1) <= MaliciousBound(0.5) {
		t.Error("bound not increasing in l")
	}
	// l=1: 1/(2*0.1587) ~ 3.15.
	if b := MaliciousBound(1); math.Abs(b-3.1514) > 0.01 {
		t.Errorf("bound at l=1: %v", b)
	}
}

func TestLForKInvertsKForL(t *testing.T) {
	for _, n := range []int{25, 100, 400} {
		for _, l := range []float64{0.5, 1, 1.5, 2} {
			k := KForL(n, l)
			lBack := LForK(n, k)
			if lBack > l+1e-9 {
				t.Errorf("n=%d l=%v: k=%d gives l=%v > l", n, l, k, lBack)
			}
		}
	}
}

func TestMaliciousChainAbsorption(t *testing.T) {
	for _, forced := range []bool{false, true} {
		c := Malicious{N: 100, K: 5, Forced: forced}
		times, err := c.ExpectedAbsorption()
		if err != nil {
			t.Fatal(err)
		}
		balanced := times[c.Correct()/2]
		if balanced <= 0 {
			t.Fatalf("forced=%v: non-positive balanced time %v", forced, balanced)
		}
		// Section 4.2's scale: the bound 1/(2*Phi(l)) with l = LForK. The
		// exact chain differs from the collapsed one, but must be within a
		// moderate multiple.
		bound := MaliciousBound(LForK(100, 5))
		if balanced > 25*bound {
			t.Errorf("forced=%v: exact %v far beyond paper scale %v", forced, balanced, bound)
		}
	}
}

func TestMaliciousWRespondsToAdversary(t *testing.T) {
	// Below balance the adversary injects ones; at the same correct count
	// the forced model must give a (weakly) higher majority-1 probability
	// than no adversary at all would.
	c := Malicious{N: 100, K: 10, Forced: true}
	noAdv := FailStop{N: 100, K: 10}
	i := 30 // below balance (correct = 90, balance = 45)
	if c.W(i) < noAdv.W(i)-1e-12 {
		t.Errorf("adversary failed to help the minority: %v < %v", c.W(i), noAdv.W(i))
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	if (FailStop{N: 0, K: 0}).Validate() == nil {
		t.Error("n=0 accepted")
	}
	if (Malicious{N: 10, K: 5}).Validate() == nil {
		t.Error("2k=n accepted")
	}
	if _, err := (FailStop{N: 0, K: 0}).ExpectedAbsorption(); err == nil {
		t.Error("invalid chain solved")
	}
}

func TestPhiConsistencyWithDist(t *testing.T) {
	// The bound formulas use dist.Phi; sanity-check the l^2 = 1.5 value
	// that produces the "< 7" claim: Phi(sqrt(1.5)) ~ 0.1103.
	if p := dist.Phi(DefaultL); math.Abs(p-0.1103) > 0.0005 {
		t.Errorf("Phi(sqrt(1.5)) = %v", p)
	}
}

func TestBalancingAdversaryOnesIsOptimal(t *testing.T) {
	// The chosen split's majority probability must be at least as close to
	// 1/2 as any other split's, at every state.
	n, k := 100, 6
	for _, forced := range []bool{false, true} {
		for ones := 0; ones <= n-k; ones++ {
			a := BalancingAdversaryOnes(n, k, ones, forced)
			if a < 0 || a > k {
				t.Fatalf("forced=%v ones=%d: advOnes %d outside [0,%d]", forced, ones, a, k)
			}
			chosen := math.Abs(viewMajorityProb(n, k, ones, a, forced) - 0.5)
			for alt := 0; alt <= k; alt++ {
				d := math.Abs(viewMajorityProb(n, k, ones, alt, forced) - 0.5)
				if d < chosen-1e-12 {
					t.Fatalf("forced=%v ones=%d: advOnes %d (dist %v) beaten by %d (dist %v)",
						forced, ones, a, chosen, alt, d)
				}
			}
		}
	}
}

func TestBalancingMixPinsHalf(t *testing.T) {
	// Wherever the k votes bracket 1/2, the randomized mix must pin the
	// majority probability to exactly 1/2 -- the paper's pinned rows
	// P_{n/2}. At the balanced state this must always be achievable.
	n, k := 100, 6
	for _, forced := range []bool{false, true} {
		balanced := (n - k) / 2
		w := MixedW(n, k, balanced, forced)
		if math.Abs(w-0.5) > 1e-9 {
			t.Errorf("forced=%v: MixedW(balanced) = %v, want 0.5", forced, w)
		}
		// The mix never leaves [0, k] and never makes things worse than the
		// best deterministic split.
		for ones := 0; ones <= n-k; ones++ {
			lo, pHi := BalancingMix(n, k, ones, forced)
			if lo < 0 || lo > k || pHi < 0 || pHi >= 1 {
				t.Fatalf("forced=%v ones=%d: mix (%d, %v) out of range", forced, ones, lo, pHi)
			}
			mixDist := math.Abs(MixedW(n, k, ones, forced) - 0.5)
			a := BalancingAdversaryOnes(n, k, ones, forced)
			detDist := math.Abs(viewMajorityProb(n, k, ones, a, forced) - 0.5)
			if mixDist > detDist+1e-12 {
				t.Fatalf("forced=%v ones=%d: mix dist %v worse than deterministic %v",
					forced, ones, mixDist, detDist)
			}
		}
	}
}

func TestMaliciousBalancedStateNearHalf(t *testing.T) {
	// With the vote-splitting adversary, the view-majority probability at
	// the balanced state must sit near 1/2 -- the chain's slow centre.
	for _, forced := range []bool{false, true} {
		c := Malicious{N: 100, K: 6, Forced: forced}
		w := c.W(c.Correct() / 2)
		if w < 0.3 || w > 0.7 {
			t.Errorf("forced=%v: w(balanced) = %v, want near 0.5", forced, w)
		}
	}
}

func TestMaliciousBoundDominatesExact(t *testing.T) {
	// The paper's collapsed-model bound 1/(2*Phi(l)) is constructed to be
	// an overestimate ("we can decrease probabilities of transition to AE
	// ... the resulting matrix will describe a Markov chain with slower
	// convergence rate"); the exact chain must not exceed it for the
	// k = l*sqrt(n)/2 parametrization.
	n := 100
	for _, l := range []float64{1.0, 1.5, 2.0} {
		k := KForL(n, l)
		exact, err := (Malicious{N: n, K: k, Forced: true}).ExpectedFromBalanced()
		if err != nil {
			t.Fatal(err)
		}
		bound := MaliciousBound(LForK(n, k))
		if exact > bound {
			t.Errorf("l=%v k=%d: exact %v exceeds bound %v", l, k, exact, bound)
		}
	}
}

func TestTailDistribution(t *testing.T) {
	c := FailStop{N: 60, K: 20}
	tail, err := c.TailFromBalanced(40)
	if err != nil {
		t.Fatal(err)
	}
	// P[T > 0] = 1 from a transient start; nonincreasing; expectation
	// recovered as the sum of the tail must match the fundamental-matrix
	// solution.
	if tail[0] != 1 {
		t.Fatalf("P[T>0] = %v", tail[0])
	}
	sum := 0.0
	for i, p := range tail {
		if p < 0 || p > 1 {
			t.Fatalf("tail[%d] = %v", i, p)
		}
		if i > 0 && p > tail[i-1]+1e-12 {
			t.Fatalf("tail increased at %d", i)
		}
		sum += p
	}
	exact, err := c.ExpectedFromBalanced()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum-exact) > 0.01 {
		t.Errorf("sum of tail %v vs exact expectation %v", sum, exact)
	}
	// Starting absorbed: all-zero tail.
	zeroTail, err := TailDistribution(61, c.Absorbed, c.TransitionRow, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range zeroTail {
		if p != 0 {
			t.Fatal("absorbed start has nonzero tail")
		}
	}
}

func TestMaliciousTailDistribution(t *testing.T) {
	c := Malicious{N: 100, K: 5, Forced: true}
	tail, err := c.TailFromBalanced(60)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range tail {
		sum += p
	}
	exact, err := c.ExpectedFromBalanced()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum-exact) > 0.05 {
		t.Errorf("tail sum %v vs exact %v", sum, exact)
	}
}

func TestFiveStateMCollapsesToR(t *testing.T) {
	// The paper builds a 5-state chain over the groups A-E, then collapses
	// the symmetric pairs into the 3-state R of eq. (11). The two
	// constructions must coincide.
	for _, n := range []int{30, 300} {
		for _, l := range []float64{1.0, DefaultL} {
			m := FiveStateM(n, l)
			for i := 0; i < 5; i++ {
				if math.Abs(m.RowSum(i)-1) > 1e-9 {
					t.Fatalf("n=%d l=%v: 5-state row %d sums to %v", n, l, i, m.RowSum(i))
				}
			}
			r, err := CollapseFiveToR(m)
			if err != nil {
				t.Fatal(err)
			}
			want := CollapsedR(n, l)
			for i := 0; i < 3; i++ {
				for j := 0; j < 3; j++ {
					if math.Abs(r.At(i, j)-want.At(i, j)) > 1e-12 {
						t.Fatalf("n=%d l=%v: collapsed (%d,%d) = %v, want %v",
							n, l, i, j, r.At(i, j), want.At(i, j))
					}
				}
			}
		}
	}
}
