package echo

import (
	"testing"

	"resilient/internal/msg"
	"resilient/internal/quorum"
)

func TestThreshold(t *testing.T) {
	tr := NewTracker(10, 3)
	if tr.Threshold() != quorum.EchoAcceptCount(10, 3) {
		t.Errorf("threshold %d", tr.Threshold())
	}
	if tr.Threshold() != 7 { // (10+3)/2 = 6 -> 7
		t.Errorf("threshold %d, want 7", tr.Threshold())
	}
}

func TestAcceptAtExactThreshold(t *testing.T) {
	n, k := 10, 3
	tr := NewTracker(n, k)
	th := tr.Threshold()
	for s := 0; s < th-1; s++ {
		if _, ok := tr.Observe(msg.ID(s), 5, 0, msg.V1); ok {
			t.Fatalf("accepted after only %d echoes", s+1)
		}
	}
	acc, ok := tr.Observe(msg.ID(th-1), 5, 0, msg.V1)
	if !ok {
		t.Fatal("not accepted at threshold")
	}
	if acc.Subject != 5 || acc.Phase != 0 || acc.Value != msg.V1 {
		t.Errorf("accept %+v", acc)
	}
	// No second acceptance for the same (subject, phase).
	if _, ok := tr.Observe(msg.ID(th), 5, 0, msg.V1); ok {
		t.Error("double acceptance")
	}
	if !tr.Accepted(5, 0) {
		t.Error("Accepted not recorded")
	}
}

func TestDuplicateSendersIgnored(t *testing.T) {
	tr := NewTracker(7, 2)
	for i := 0; i < 20; i++ {
		if _, ok := tr.Observe(3, 1, 0, msg.V1); ok {
			t.Fatal("one sender repeated 20 times caused acceptance")
		}
	}
	z, o := tr.Count(1, 0)
	if z != 0 || o != 1 {
		t.Errorf("counts (%d, %d), want (0, 1)", z, o)
	}
}

func TestEquivocationBySenderIsInert(t *testing.T) {
	// A sender's second echo with the other value must not count: the
	// first-message rule of Figure 2.
	tr := NewTracker(7, 2)
	tr.Observe(0, 1, 0, msg.V1)
	tr.Observe(0, 1, 0, msg.V0) // equivocation
	z, o := tr.Count(1, 0)
	if z != 0 || o != 1 {
		t.Errorf("counts (%d, %d) after equivocation, want (0, 1)", z, o)
	}
	if !tr.Seen(0, 1, 0) {
		t.Error("Seen not recorded")
	}
}

func TestNoConflictingAcceptancePossible(t *testing.T) {
	// Even if every process echoes (one value each), the two values cannot
	// both cross the threshold: 2*((n+k)/2+1) > n.
	n, k := 9, 2
	tr := NewTracker(n, k)
	// 5 senders echo 0, 4 echo 1 for the same (subject, phase).
	var accepts int
	for s := 0; s < n; s++ {
		v := msg.V0
		if s >= 5 {
			v = msg.V1
		}
		if _, ok := tr.Observe(msg.ID(s), 0, 0, v); ok {
			accepts++
		}
	}
	if accepts > 1 {
		t.Fatalf("%d acceptances for one (subject, phase)", accepts)
	}
}

func TestPhasesIndependent(t *testing.T) {
	tr := NewTracker(7, 2)
	th := tr.Threshold()
	for s := 0; s < th; s++ {
		tr.Observe(msg.ID(s), 2, 0, msg.V0)
	}
	if tr.Accepted(2, 1) {
		t.Error("acceptance leaked across phases")
	}
	// The same senders can echo again for phase 1.
	var ok bool
	for s := 0; s < th; s++ {
		_, ok = tr.Observe(msg.ID(s), 2, 1, msg.V1)
	}
	if !ok {
		t.Error("no acceptance in phase 1")
	}
}

func TestPruneDropsOldAndBlocksLate(t *testing.T) {
	tr := NewTracker(7, 2)
	tr.Observe(0, 1, 0, msg.V1)
	tr.Prune(3)
	if z, o := tr.Count(1, 0); z != 0 || o != 0 {
		t.Error("pruned counts remain")
	}
	if _, ok := tr.Observe(1, 1, 0, msg.V1); ok {
		t.Error("late echo for pruned phase accepted")
	}
	// Pruning is monotone: lower prune is a no-op, and phases at or above
	// the prune line still count.
	tr.Prune(1)
	if _, ok := tr.Observe(1, 1, 3, msg.V1); ok {
		t.Error("unexpected accept")
	}
	if z, o := tr.Count(1, 3); z != 0 || o != 1 {
		t.Errorf("phase-3 echo not counted after no-op prune: (%d,%d)", z, o)
	}
}

func TestInvalidValueIgnored(t *testing.T) {
	tr := NewTracker(7, 2)
	if _, ok := tr.Observe(0, 1, 0, msg.Value(7)); ok {
		t.Error("invalid value accepted")
	}
	if z, o := tr.Count(1, 0); z != 0 || o != 0 {
		t.Error("invalid value counted")
	}
}

func TestByzantineSubjectCannotDoubleAccept(t *testing.T) {
	// A Byzantine subject sends initial 0 to half and 1 to the other half;
	// senders echo what they saw. At most one value is ever accepted,
	// whatever the interleaving -- Theorem 4's consistency claim.
	n, k := 10, 3
	for pattern := 0; pattern < 1<<10; pattern += 37 {
		tr := NewTracker(n, k)
		accepts := 0
		for s := 0; s < n; s++ {
			v := msg.Value((pattern >> s) & 1)
			if _, ok := tr.Observe(msg.ID(s), 9, 4, v); ok {
				accepts++
			}
		}
		if accepts > 1 {
			t.Fatalf("pattern %b: %d acceptances", pattern, accepts)
		}
	}
}
