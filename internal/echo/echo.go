// Package echo implements the authenticated echo-broadcast acceptance rule
// at the heart of the Figure-2 malicious-case protocol -- the mechanism that
// later evolved into Bracha's reliable broadcast.
//
// A process p "accepts a message with value i from process q [at phase t] if
// it receives more than (n+k)/2 messages of the form (echo, q, i, t)"
// (Section 3.3). Each sender's echo is counted at most once per
// (subject, phase): the pseudocode admits only "the first message received
// from the sender with these values of msg.type, msg.from and msg.phaseno",
// which is exactly what makes equivocation by malicious senders harmless --
// a second, contradictory echo from the same sender is ignored, so no two
// correct processes can accept different values from the same subject in the
// same phase (the consistency claim of Theorem 4).
//
// Tallies are dense: process IDs are always 0..n-1 and values binary, so a
// phase's state is a flat [n][2] count table plus two bitsets (sender x
// subject dedup, per-subject acceptance) rather than the three maps an
// earlier version kept. Phase tables recycle through a freelist on Prune,
// so steady-state observation allocates nothing.
package echo

import (
	"fmt"
	"slices"

	"resilient/internal/dense"
	"resilient/internal/msg"
	"resilient/internal/quorum"
)

// Accept describes the acceptance of subject's phase-p message with value v.
type Accept struct {
	Subject msg.ID
	Phase   msg.Phase
	Value   msg.Value
}

// String renders the acceptance.
func (a Accept) String() string {
	return fmt.Sprintf("accept(p%d, phase=%s, v=%d)", a.Subject, a.Phase, a.Value)
}

// phaseTally is one phase's dense echo state.
type phaseTally struct {
	phase msg.Phase
	// counts[subject] tallies echoes for subject's value 0 and 1.
	counts [][2]int32
	// seen has bit sender*n+subject set once that sender's echo for the
	// subject was counted (the first-message rule).
	seen dense.Bitset
	// accepted has bit subject set once (subject, phase) was accepted.
	accepted dense.Bitset
}

func (t *phaseTally) reset(n int, phase msg.Phase) {
	t.phase = phase
	if cap(t.counts) < n {
		t.counts = make([][2]int32, n)
	} else {
		t.counts = t.counts[:n]
		clear(t.counts)
	}
	t.seen.Reset(n * n)
	t.accepted.Reset(n)
}

// Tracker counts echoes and reports acceptances. It is not safe for
// concurrent use.
type Tracker struct {
	n, k    int
	low     msg.Phase // phases below this have been pruned
	cur     *phaseTally
	tallies map[msg.Phase]*phaseTally
	free    []*phaseTally
	// scratch holds the phases collected by Prune, reused across calls so
	// pruning stays allocation-free in steady state.
	scratch []msg.Phase
}

// NewTracker returns an empty tracker for an n-process system tolerating k
// malicious processes.
func NewTracker(n, k int) *Tracker {
	return &Tracker{
		n:       n,
		k:       k,
		tallies: make(map[msg.Phase]*phaseTally),
	}
}

// Threshold returns the number of matching echoes at which acceptance
// happens: the least integer strictly greater than (n+k)/2.
func (t *Tracker) Threshold() int { return quorum.EchoAcceptCount(t.n, t.k) }

// tally returns phase p's state, creating it (from the freelist when
// possible) on first use. The single-entry cur cache makes the common case
// -- every echo lands on the machine's current phase -- map-free.
func (t *Tracker) tally(p msg.Phase) *phaseTally {
	if t.cur != nil && t.cur.phase == p {
		return t.cur
	}
	pt := t.tallies[p]
	if pt == nil {
		if n := len(t.free); n > 0 {
			pt = t.free[n-1]
			t.free = t.free[:n-1]
		} else {
			pt = new(phaseTally)
		}
		pt.reset(t.n, p)
		t.tallies[p] = pt
	}
	t.cur = pt
	return pt
}

// lookup returns phase p's state without creating it.
func (t *Tracker) lookup(p msg.Phase) *phaseTally {
	if t.cur != nil && t.cur.phase == p {
		return t.cur
	}
	return t.tallies[p]
}

// inRange reports whether id is a real process identifier.
func (t *Tracker) inRange(id msg.ID) bool { return id >= 0 && int(id) < t.n }

// Observe registers an echo from sender asserting that subject initiated
// value v in phase p. It returns an Accept exactly once per (subject, phase):
// on the echo that first pushes the count strictly above (n+k)/2.
//
// Duplicate echoes from the same sender for the same (subject, phase) are
// ignored regardless of value, matching the pseudocode's first-message rule.
// Echoes for pruned phases, or naming ids outside 0..n-1 (which no real
// process has), are ignored.
func (t *Tracker) Observe(sender, subject msg.ID, p msg.Phase, v msg.Value) (Accept, bool) {
	if p < t.low || !v.Valid() || !t.inRange(sender) || !t.inRange(subject) {
		return Accept{}, false
	}
	pt := t.tally(p)
	if pt.seen.Set(int(sender)*t.n + int(subject)) {
		return Accept{}, false
	}
	c := &pt.counts[subject]
	c[v]++
	if !pt.accepted.Test(int(subject)) && quorum.ExceedsHalfNPlusK(int(c[v]), t.n, t.k) {
		pt.accepted.Set(int(subject))
		return Accept{Subject: subject, Phase: p, Value: v}, true
	}
	return Accept{}, false
}

// Seen reports whether an echo from sender for (subject, phase) was already
// counted.
func (t *Tracker) Seen(sender, subject msg.ID, p msg.Phase) bool {
	if !t.inRange(sender) || !t.inRange(subject) {
		return false
	}
	if pt := t.lookup(p); pt != nil {
		return pt.seen.Test(int(sender)*t.n + int(subject))
	}
	return false
}

// Count returns the current echo tallies for (subject, phase).
func (t *Tracker) Count(subject msg.ID, p msg.Phase) (zeros, ones int) {
	if !t.inRange(subject) {
		return 0, 0
	}
	if pt := t.lookup(p); pt != nil {
		return int(pt.counts[subject][0]), int(pt.counts[subject][1])
	}
	return 0, 0
}

// Accepted reports whether (subject, phase) has already been accepted.
func (t *Tracker) Accepted(subject msg.ID, p msg.Phase) bool {
	if !t.inRange(subject) {
		return false
	}
	if pt := t.lookup(p); pt != nil {
		return pt.accepted.Test(int(subject))
	}
	return false
}

// Prune discards all bookkeeping for phases strictly below p and ignores
// future echoes for those phases. Wildcard state is kept by the caller, not
// the tracker, so pruning never loses post-decision messages. Pruned phase
// tables are recycled for later phases.
func (t *Tracker) Prune(p msg.Phase) {
	if p <= t.low {
		return
	}
	// Release in sorted phase order: map iteration order is randomized, and
	// the freelist's recycling order must not depend on it.
	t.scratch = t.scratch[:0]
	for ph := range t.tallies {
		if ph < p {
			t.scratch = append(t.scratch, ph)
		}
	}
	slices.Sort(t.scratch)
	for _, ph := range t.scratch {
		pt := t.tallies[ph]
		delete(t.tallies, ph)
		if t.cur == pt {
			t.cur = nil
		}
		t.free = append(t.free, pt)
	}
	t.low = p
}
