// Package echo implements the authenticated echo-broadcast acceptance rule
// at the heart of the Figure-2 malicious-case protocol -- the mechanism that
// later evolved into Bracha's reliable broadcast.
//
// A process p "accepts a message with value i from process q [at phase t] if
// it receives more than (n+k)/2 messages of the form (echo, q, i, t)"
// (Section 3.3). Each sender's echo is counted at most once per
// (subject, phase): the pseudocode admits only "the first message received
// from the sender with these values of msg.type, msg.from and msg.phaseno",
// which is exactly what makes equivocation by malicious senders harmless --
// a second, contradictory echo from the same sender is ignored, so no two
// correct processes can accept different values from the same subject in the
// same phase (the consistency claim of Theorem 4).
package echo

import (
	"fmt"

	"resilient/internal/msg"
	"resilient/internal/quorum"
)

// Accept describes the acceptance of subject's phase-p message with value v.
type Accept struct {
	Subject msg.ID
	Phase   msg.Phase
	Value   msg.Value
}

// String renders the acceptance.
func (a Accept) String() string {
	return fmt.Sprintf("accept(p%d, phase=%s, v=%d)", a.Subject, a.Phase, a.Value)
}

type countKey struct {
	subject msg.ID
	phase   msg.Phase
}

type senderKey struct {
	sender  msg.ID
	subject msg.ID
	phase   msg.Phase
}

// Tracker counts echoes and reports acceptances. It is not safe for
// concurrent use.
type Tracker struct {
	n, k     int
	counts   map[countKey]*[2]int
	seen     map[senderKey]bool
	accepted map[countKey]bool
	low      msg.Phase // phases below this have been pruned
}

// NewTracker returns an empty tracker for an n-process system tolerating k
// malicious processes.
func NewTracker(n, k int) *Tracker {
	return &Tracker{
		n:        n,
		k:        k,
		counts:   make(map[countKey]*[2]int),
		seen:     make(map[senderKey]bool),
		accepted: make(map[countKey]bool),
	}
}

// Threshold returns the number of matching echoes at which acceptance
// happens: the least integer strictly greater than (n+k)/2.
func (t *Tracker) Threshold() int { return quorum.EchoAcceptCount(t.n, t.k) }

// Observe registers an echo from sender asserting that subject initiated
// value v in phase p. It returns an Accept exactly once per (subject, phase):
// on the echo that first pushes the count strictly above (n+k)/2.
//
// Duplicate echoes from the same sender for the same (subject, phase) are
// ignored regardless of value, matching the pseudocode's first-message rule.
// Echoes for pruned phases are ignored.
func (t *Tracker) Observe(sender, subject msg.ID, p msg.Phase, v msg.Value) (Accept, bool) {
	if p < t.low || !v.Valid() {
		return Accept{}, false
	}
	sk := senderKey{sender: sender, subject: subject, phase: p}
	if t.seen[sk] {
		return Accept{}, false
	}
	t.seen[sk] = true
	ck := countKey{subject: subject, phase: p}
	c := t.counts[ck]
	if c == nil {
		c = new([2]int)
		t.counts[ck] = c
	}
	c[v]++
	if !t.accepted[ck] && quorum.ExceedsHalfNPlusK(c[v], t.n, t.k) {
		t.accepted[ck] = true
		return Accept{Subject: subject, Phase: p, Value: v}, true
	}
	return Accept{}, false
}

// Seen reports whether an echo from sender for (subject, phase) was already
// counted.
func (t *Tracker) Seen(sender, subject msg.ID, p msg.Phase) bool {
	return t.seen[senderKey{sender: sender, subject: subject, phase: p}]
}

// Count returns the current echo tallies for (subject, phase).
func (t *Tracker) Count(subject msg.ID, p msg.Phase) (zeros, ones int) {
	if c := t.counts[countKey{subject: subject, phase: p}]; c != nil {
		return c[0], c[1]
	}
	return 0, 0
}

// Accepted reports whether (subject, phase) has already been accepted.
func (t *Tracker) Accepted(subject msg.ID, p msg.Phase) bool {
	return t.accepted[countKey{subject: subject, phase: p}]
}

// Prune discards all bookkeeping for phases strictly below p and ignores
// future echoes for those phases. Wildcard state is kept by the caller, not
// the tracker, so pruning never loses post-decision messages.
func (t *Tracker) Prune(p msg.Phase) {
	if p <= t.low {
		return
	}
	for k := range t.counts {
		if k.phase < p {
			delete(t.counts, k)
		}
	}
	for k := range t.seen {
		if k.phase < p {
			delete(t.seen, k)
		}
	}
	for k := range t.accepted {
		if k.phase < p {
			delete(t.accepted, k)
		}
	}
	t.low = p
}
