package echo

import (
	"runtime"
	"testing"

	"resilient/internal/msg"
)

// TestTrackerPruneReuseAtScale runs the dense tracker through many phase
// cycles at n=1,000: recycled phase tables must come back clean (fresh
// first-message dedup, fresh acceptance latch, zeroed counts) and the
// steady-state observe/prune cycle must not allocate.
func TestTrackerPruneReuseAtScale(t *testing.T) {
	const n, k = 1000, 100
	tr := NewTracker(n, k)
	th := tr.Threshold()
	subjects := []msg.ID{0, 1, 499, 998, 999}
	for p := msg.Phase(0); p < 8; p++ {
		for _, subj := range subjects {
			accepts := 0
			for s := 0; s < n; s++ {
				if _, ok := tr.Observe(msg.ID(s), subj, p, msg.V1); ok {
					accepts++
				}
				// Duplicates never count, even on recycled tables.
				if _, ok := tr.Observe(msg.ID(s), subj, p, msg.V0); ok {
					t.Fatalf("phase %d: duplicate echo accepted", p)
				}
			}
			if accepts != 1 {
				t.Fatalf("phase %d subject %d: %d acceptances", p, subj, accepts)
			}
			if z, o := tr.Count(subj, p); z != 0 || o != n {
				t.Fatalf("phase %d subject %d: counts %d/%d", p, subj, z, o)
			}
		}
		// Late echoes for the pruned phase are ignored.
		tr.Prune(p + 1)
		if _, ok := tr.Observe(0, 7, p, msg.V1); ok {
			t.Fatalf("phase %d accepted an echo after pruning", p)
		}
	}
	if th != 551 {
		t.Fatalf("threshold %d at n=1000 k=100, want 551", th)
	}

	// Steady state: one full phase cycle against recycled tables is
	// allocation-free (the freelist claim of the package doc).
	phase := msg.Phase(100)
	allocs := testing.AllocsPerRun(5, func() {
		for s := 0; s < n; s++ {
			tr.Observe(msg.ID(s), 3, phase, msg.V1)
		}
		phase++
		tr.Prune(phase)
	})
	if allocs > 0 {
		t.Errorf("steady-state phase cycle allocates %.1f times", allocs)
	}
}

// trackerHeapDelta measures the live heap held by `count` fully-faulted-in
// trackers (one phase table each), in bytes.
func trackerHeapDelta(count, n, k int) uint64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	trackers := make([]*Tracker, count)
	for i := range trackers {
		tr := NewTracker(n, k)
		tr.Observe(0, 0, 0, msg.V0) // fault in the phase table
		trackers[i] = tr
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	runtime.KeepAlive(trackers)
	return after.HeapAlloc - before.HeapAlloc
}

// BenchmarkTrackerMemory pins the dense tracker's per-node footprint: the
// sender x subject dedup bitset is n² bits and the count table 8n bytes, so
// one phase table costs ~n²/8 + 9n bytes per process — ~133 KB at n=1,000,
// ~12.6 MB at n=10,000. This is the baseline the sparse sampled tracker
// (internal/sample, ~E·n bits total) is measured against in DESIGN §13.
func BenchmarkTrackerMemory(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(benchName(n), func(b *testing.B) {
			b.ReportAllocs()
			var total uint64
			for i := 0; i < b.N; i++ {
				total += trackerHeapDelta(8, n, n/10)
			}
			b.ReportMetric(float64(total)/float64(8*b.N), "B/node")
		})
	}
}

func benchName(n int) string {
	switch n {
	case 100:
		return "n=100"
	case 1000:
		return "n=1000"
	case 10000:
		return "n=10000"
	}
	return "n=?"
}

// BenchmarkTrackerObserve pins the per-echo cost at scale.
func BenchmarkTrackerObserve(b *testing.B) {
	const n, k = 1000, 100
	tr := NewTracker(n, k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sender := msg.ID(i % n)
		subject := msg.ID((i / n) % n)
		tr.Observe(sender, subject, tr.low, msg.V1)
		if i%(n*n) == n*n-1 {
			tr.Prune(tr.low + 1)
		}
	}
}
