package mc

import (
	"reflect"
	"strings"
	"testing"

	"resilient/internal/metrics"
)

// TestEnsembleDeterministicAcrossWorkers is the core ensemble guarantee:
// merged results are bit-identical for workers = 1, 4 and 16, and across
// repeated runs at the same worker count.
func TestEnsembleDeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	opts := EnsembleOptions{Trials: 64, Workers: 1, Start: 45, Seed: 9}
	fs := &FailStop{N: 90, K: 30}
	base, err := fs.AbsorptionEnsemble(opts)
	if err != nil {
		t.Fatal(err)
	}
	if base.Trials != 64 || len(base.Phases) != 64 {
		t.Fatalf("base ensemble %+v", base)
	}
	for _, w := range []int{1, 4, 16} {
		o := opts
		o.Workers = w
		for rep := 0; rep < 2; rep++ {
			got, err := fs.AbsorptionEnsemble(o)
			if err != nil {
				t.Fatalf("workers=%d rep=%d: %v", w, rep, err)
			}
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("workers=%d rep=%d diverged:\ngot  %+v\nwant %+v", w, rep, got, base)
			}
		}
	}
}

func TestDecisionEnsembleDeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	fs := &FailStop{N: 30, K: 9}
	opts := EnsembleOptions{Trials: 48, Workers: 1, Start: 15, Seed: 5}
	base, err := fs.DecisionEnsemble(opts)
	if err != nil {
		t.Fatal(err)
	}
	if base.Mean < 1 {
		t.Fatalf("decision ensemble mean %v < 1", base.Mean)
	}
	for _, w := range []int{4, 16} {
		o := opts
		o.Workers = w
		got, err := fs.DecisionEnsemble(o)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d diverged:\ngot  %+v\nwant %+v", w, got, base)
		}
	}
}

func TestMaliciousEnsemblesDeterministic(t *testing.T) {
	t.Parallel()
	for _, model := range []AdversaryModel{Mixed, Forced} {
		mal := &Malicious{N: 100, K: 5, Model: model}
		opts := EnsembleOptions{Trials: 32, Workers: 1, Start: mal.Correct() / 2, Seed: 3}
		base, err := mal.AbsorptionEnsemble(opts)
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		opts.Workers = 8
		got, err := mal.AbsorptionEnsemble(opts)
		if err != nil {
			t.Fatalf("%v workers=8: %v", model, err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("%v diverged across workers", model)
		}

		dec := &Malicious{N: 40, K: 4, Model: model}
		dopts := EnsembleOptions{Trials: 16, Workers: 1, Start: 18, Seed: 7}
		dbase, err := dec.DecisionEnsemble(dopts)
		if err != nil {
			t.Fatalf("%v decision: %v", model, err)
		}
		dopts.Workers = 8
		dgot, err := dec.DecisionEnsemble(dopts)
		if err != nil {
			t.Fatalf("%v decision workers=8: %v", model, err)
		}
		if !reflect.DeepEqual(dgot, dbase) {
			t.Fatalf("%v decision ensemble diverged across workers", model)
		}
	}
}

// TestEnsembleMatchesSequentialRuns pins the seed derivation contract:
// trial t of an ensemble walks exactly the chain that a sequential
// AbsorptionRun with rand.NewPCG(seed, t) walks.
func TestEnsembleMatchesSequentialRuns(t *testing.T) {
	t.Parallel()
	fs := &FailStop{N: 60, K: 20}
	opts := EnsembleOptions{Trials: 20, Workers: 8, Start: 30, Seed: 42}
	e, err := fs.AbsorptionEnsemble(opts)
	if err != nil {
		t.Fatal(err)
	}
	for tr := 0; tr < opts.Trials; tr++ {
		want, err := fs.AbsorptionRun(opts.Start, opts.trialRNG(tr), 0)
		if err != nil {
			t.Fatal(err)
		}
		if e.Phases[tr] != want {
			t.Fatalf("trial %d: ensemble %d phases, sequential %d", tr, e.Phases[tr], want)
		}
	}
}

// TestEnsembleFailsFastOnError covers the mid-ensemble error path: with
// MaxPhases=1 from an unabsorbed start every trial errors, and the ensemble
// must surface the first error rather than hang or return partial results.
func TestEnsembleFailsFastOnError(t *testing.T) {
	t.Parallel()
	fs := &FailStop{N: 90, K: 30}
	for _, w := range []int{1, 8} {
		e, err := fs.AbsorptionEnsemble(EnsembleOptions{
			Trials: 64, Workers: w, Start: 45, Seed: 1, MaxPhases: 1,
		})
		if err == nil {
			t.Fatalf("workers=%d: error swallowed, got %+v", w, e)
		}
		if !strings.Contains(err.Error(), "no absorption within 1") {
			t.Fatalf("workers=%d: unexpected error %v", w, err)
		}
		if e != nil {
			t.Fatalf("workers=%d: partial ensemble returned alongside error", w)
		}
	}
}

func TestEnsembleRejectsBadOptions(t *testing.T) {
	fs := &FailStop{N: 90, K: 30}
	if _, err := fs.AbsorptionEnsemble(EnsembleOptions{Trials: 0}); err == nil {
		t.Error("Trials=0 accepted")
	}
	bad := &FailStop{N: 0, K: 0}
	if _, err := bad.AbsorptionEnsemble(EnsembleOptions{Trials: 4}); err == nil {
		t.Error("invalid chain accepted")
	}
	mal := &Malicious{N: 10, K: 5, Model: Mixed}
	if _, err := mal.AbsorptionEnsemble(EnsembleOptions{Trials: 4}); err == nil {
		t.Error("invalid malicious chain accepted")
	}
}

// TestEnsembleMetricsAggregation checks that striped-counter accounting is
// exact after a concurrent ensemble: absorption_runs must equal Trials and
// the phase histogram must carry one observation per trial.
func TestEnsembleMetricsAggregation(t *testing.T) {
	t.Parallel()
	reg := metrics.NewRegistry()
	fs := &FailStop{N: 60, K: 20, Metrics: reg}
	const trials = 40
	e, err := fs.AbsorptionEnsemble(EnsembleOptions{Trials: trials, Workers: 8, Start: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["mc.failstop.absorption_runs"]; got != trials {
		t.Errorf("absorption_runs = %d, want %d", got, trials)
	}
	sumPhases := 0
	for _, p := range e.Phases {
		sumPhases += p
	}
	if got := snap.Counters["mc.failstop.steps"]; got != int64(sumPhases) {
		t.Errorf("steps = %d, want %d", got, sumPhases)
	}
	h := snap.Histograms["mc.failstop.absorption_phases"]
	if h.Count != trials {
		t.Errorf("histogram count = %d, want %d", h.Count, trials)
	}
}
