package mc

import (
	"math/rand/v2"
	"testing"

	"resilient/internal/metrics"
)

// TestFailStopChainMetrics checks that absorption and decision runs account
// their phases and hypergeometric draws under the mc.failstop. prefix.
func TestFailStopChainMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	c := FailStop{N: 30, K: 9, Metrics: reg}
	rng := rand.New(rand.NewPCG(7, 7))

	phases, err := c.AbsorptionRun(15, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["mc.failstop.absorption_runs"]; got != 1 {
		t.Errorf("absorption_runs = %d, want 1", got)
	}
	if got := snap.Counters["mc.failstop.steps"]; got != int64(phases) {
		t.Errorf("steps = %d, want %d (one per simulated phase)", got, phases)
	}
	if got := snap.Counters["mc.failstop.hg_draws"]; got != int64(phases*c.N) {
		t.Errorf("hg_draws = %d, want %d (n per phase)", got, phases*c.N)
	}
	h := snap.Histograms["mc.failstop.absorption_phases"]
	if h.Count != 1 || h.Sum != float64(phases) {
		t.Errorf("absorption_phases histogram = %+v, want count 1 sum %d", h, phases)
	}

	if _, _, err := c.DecisionRun(20, rng, 0); err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if got := snap.Counters["mc.failstop.decision_runs"]; got != 1 {
		t.Errorf("decision_runs = %d, want 1", got)
	}
	if snap.Histograms["mc.failstop.decision_phases"].Count != 1 {
		t.Error("decision_phases histogram missing the run")
	}
}

// TestMaliciousChainMetrics checks the mc.malicious. prefix and that a nil
// registry leaves the chain's numerical behaviour untouched.
func TestMaliciousChainMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	c := Malicious{N: 10, K: 1, Model: Mixed, Metrics: reg}
	rng := rand.New(rand.NewPCG(11, 11))
	if _, err := c.AbsorptionRun(5, rng, 0); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["mc.malicious.absorption_runs"] != 1 {
		t.Errorf("absorption_runs = %d, want 1", snap.Counters["mc.malicious.absorption_runs"])
	}
	if snap.Counters["mc.malicious.steps"] < 1 {
		t.Error("steps counter never incremented")
	}

	// Same seed with and without a registry must walk the same chain.
	bare := Malicious{N: 10, K: 1, Model: Mixed}
	p1, err := c.AbsorptionRun(5, rand.New(rand.NewPCG(3, 3)), 0)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := bare.AbsorptionRun(5, rand.New(rand.NewPCG(3, 3)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Errorf("metrics perturbed the chain: %d phases with registry, %d without", p1, p2)
	}
}
