// Package mc is the phase-level Monte Carlo engine for the Section 4
// performance analysis.
//
// Section 4 analyses the protocols under two simplifying assumptions: every
// process receives exactly n-k messages per phase, and "any set of n-k
// messages has the same probability of being received". Under those
// assumptions a phase is one step of a Markov chain over the number of
// processes holding value 1, and the per-process view is a hypergeometric
// sample. This package simulates exactly that process -- far faster than the
// message-level engine -- so measured absorption times are directly
// comparable to the analytic bounds of internal/markov.
//
// Two chains are provided, mirroring Sections 4.1 and 4.2:
//
//   - FailStop: n correct processes (the Section 4 worst case for fail-stop
//     faults is that nobody actually dies), majority adoption, decision at
//     strictly more than (n+k)/2 equal values.
//   - Malicious: n-k correct processes plus k balancing adversaries who
//     always contribute the current minority value.
//
// Adversary strength is selectable: Mixed lets the k adversarial messages
// compete for delivery like any others (each view is an (n-k)-sample of all
// n messages); Forced gives the adversary scheduling power so its k
// messages are always in every view (the remaining n-2k slots are sampled
// from the n-k correct messages). The paper's eq. (1) of Section 4.2 is the
// Forced flavour.
package mc

import (
	"fmt"
	"math/rand/v2"
	"sync/atomic"

	"resilient/internal/dist"
	"resilient/internal/markov"
	"resilient/internal/metrics"
	"resilient/internal/quorum"
)

// chainMetrics holds the instrument handles for one chain run; all handles
// are nil (free no-ops) when no registry is attached.
type chainMetrics struct {
	steps            *metrics.Counter
	draws            *metrics.Counter
	absorptionRuns   *metrics.Counter
	decisionRuns     *metrics.Counter
	absorptionPhases *metrics.Histogram
	decisionPhases   *metrics.Histogram
}

func newChainMetrics(reg *metrics.Registry, chain string) *chainMetrics {
	if reg == nil {
		return &chainMetrics{}
	}
	m := reg.Scoped("mc." + chain + ".")
	return &chainMetrics{
		steps:            m.Counter("steps"),
		draws:            m.Counter("hg_draws"),
		absorptionRuns:   m.Counter("absorption_runs"),
		decisionRuns:     m.Counter("decision_runs"),
		absorptionPhases: m.Histogram("absorption_phases", metrics.PhaseBuckets()),
		decisionPhases:   m.Histogram("decision_phases", metrics.PhaseBuckets()),
	}
}

// AdversaryModel selects how the malicious chain's balancing messages enter
// the views.
type AdversaryModel int

const (
	// Mixed samples each view uniformly from all n messages (correct plus
	// adversarial).
	Mixed AdversaryModel = iota + 1
	// Forced places all k adversarial messages in every view and samples
	// the remaining n-2k slots from the n-k correct messages.
	Forced
)

// String names the model.
func (m AdversaryModel) String() string {
	switch m {
	case Mixed:
		return "mixed"
	case Forced:
		return "forced"
	default:
		return fmt.Sprintf("AdversaryModel(%d)", int(m))
	}
}

// StepOutcome summarizes one simulated phase.
type StepOutcome struct {
	// Ones is the number of (correct) processes holding value 1 after the
	// phase.
	Ones int
	// Decided0 and Decided1 count processes whose view crossed the decision
	// threshold for the respective value during the phase.
	Decided0, Decided1 int
}

// FailStop simulates the Section 4.1 chain: n processes, nobody dies, each
// phase every process adopts the majority of a uniform (n-k)-view and
// decides on a strictly-more-than-(n+k)/2 supermajority.
//
// The chain caches its metric handles after the first run, so methods take
// pointer receivers; use one chain value per configuration and do not
// mutate Metrics after the first call. All methods are safe for concurrent
// use (the ensemble entry points fan a single chain value across workers).
type FailStop struct {
	N, K int
	// Metrics, when non-nil, receives chain accounting under the
	// "mc.failstop." prefix (steps, hypergeometric draws, absorption and
	// decision phase histograms).
	Metrics *metrics.Registry

	// met caches the resolved metric handles so the per-phase hot path does
	// not re-enter the registry (mutex + map lookups) on every Step. Racing
	// initializations store equivalent values, so no extra ordering is
	// needed.
	met atomic.Pointer[chainMetrics]
}

// handles returns the cached metric handles, resolving them on first use.
func (c *FailStop) handles() *chainMetrics {
	if m := c.met.Load(); m != nil {
		return m
	}
	m := newChainMetrics(c.Metrics, "failstop")
	c.met.Store(m)
	return m
}

// Validate checks parameters.
func (c *FailStop) Validate() error {
	if c.N < 1 || c.K < 0 || c.K >= c.N {
		return fmt.Errorf("mc: invalid fail-stop chain n=%d k=%d", c.N, c.K)
	}
	return nil
}

// Absorbed reports whether state i (number of processes with value 1) lies
// in the absorbing region of Section 4.1: i < (n-k)/2 guarantees collapse to
// all-zeros in one phase, i > (n+k)/2 guarantees collapse to all-ones.
// (With k = n/3 these are the paper's regions [0, n/3) and (2n/3, n].)
func (c *FailStop) Absorbed(i int) bool {
	return quorum.BelowHalfNMinusK(i, c.N, c.K) || quorum.ExceedsHalfNPlusK(i, c.N, c.K)
}

// Step simulates one phase from state ones and returns the outcome.
func (c *FailStop) Step(ones int, rng *rand.Rand) (StepOutcome, error) {
	return c.step(ones, rng, c.handles())
}

func (c *FailStop) step(ones int, rng *rand.Rand, met *chainMetrics) (StepOutcome, error) {
	draw := quorum.WaitCount(c.N, c.K)
	sampler, err := dist.NewHGSampler(dist.Hypergeometric{Pop: c.N, Success: ones, Draw: draw})
	if err != nil {
		return StepOutcome{}, err
	}
	met.steps.Inc()
	met.draws.Add(int64(c.N))
	var out StepOutcome
	for p := 0; p < c.N; p++ {
		view1 := sampler.Sample(rng)
		view0 := draw - view1
		if view1 > view0 {
			out.Ones++
		}
		if quorum.ExceedsHalfNPlusK(view1, c.N, c.K) {
			out.Decided1++
		}
		if quorum.ExceedsHalfNPlusK(view0, c.N, c.K) {
			out.Decided0++
		}
	}
	return out, nil
}

// AbsorptionRun simulates phases from the given start state until the chain
// enters the absorbing region, returning the number of phases taken.
// maxPhases caps the run (0 = 10000).
func (c *FailStop) AbsorptionRun(start int, rng *rand.Rand, maxPhases int) (int, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if start < 0 || start > c.N {
		return 0, fmt.Errorf("mc: start state %d outside 0..%d", start, c.N)
	}
	if maxPhases <= 0 {
		maxPhases = 10000
	}
	met := c.handles()
	state := start
	for t := 0; t < maxPhases; t++ {
		if c.Absorbed(state) {
			met.absorptionRuns.Inc()
			met.absorptionPhases.Observe(float64(t))
			return t, nil
		}
		out, err := c.step(state, rng, met)
		if err != nil {
			return 0, err
		}
		state = out.Ones
	}
	return maxPhases, fmt.Errorf("mc: no absorption within %d phases", maxPhases)
}

// DecisionRun simulates the majority-variant protocol per process, exactly
// under the Section 4 view model: each phase, every undecided process draws
// a uniform (n-k)-view of the current values (decided processes keep
// broadcasting their pinned decision), adopts the majority, and decides on a
// strictly-more-than-(n+k)/2 supermajority. It returns the phase at which
// the last process decided (phases are counted from 1) and the common
// decision. It requires k < n/3 so the decision threshold is reachable.
func (c *FailStop) DecisionRun(start int, rng *rand.Rand, maxPhases int) (phases int, decidedOnes bool, err error) {
	if err := c.Validate(); err != nil {
		return 0, false, err
	}
	if c.N < quorum.MinProcesses(c.K, quorum.Malicious) {
		return 0, false, fmt.Errorf("mc: decision threshold unreachable for n=%d k=%d (need 3k < n)", c.N, c.K)
	}
	if start < 0 || start > c.N {
		return 0, false, fmt.Errorf("mc: start state %d outside 0..%d", start, c.N)
	}
	if maxPhases <= 0 {
		maxPhases = 100000
	}
	met := c.handles()
	draw := quorum.WaitCount(c.N, c.K)
	values := make([]bool, c.N) // true = 1
	for p := 0; p < start; p++ {
		values[p] = true
	}
	decided := make([]bool, c.N)
	var sawDecision0, sawDecision1 bool
	for t := 1; t <= maxPhases; t++ {
		ones := 0
		for _, v := range values {
			if v {
				ones++
			}
		}
		sampler, err := dist.NewHGSampler(dist.Hypergeometric{Pop: c.N, Success: ones, Draw: draw})
		if err != nil {
			return 0, false, err
		}
		met.steps.Inc()
		remaining := 0
		for p := 0; p < c.N; p++ {
			if decided[p] {
				continue
			}
			met.draws.Inc()
			view1 := sampler.Sample(rng)
			view0 := draw - view1
			switch {
			case quorum.ExceedsHalfNPlusK(view1, c.N, c.K):
				decided[p] = true
				values[p] = true
				sawDecision1 = true
			case quorum.ExceedsHalfNPlusK(view0, c.N, c.K):
				decided[p] = true
				values[p] = false
				sawDecision0 = true
			default:
				values[p] = view1 > view0
				remaining++
			}
		}
		if sawDecision0 && sawDecision1 {
			return 0, false, fmt.Errorf("mc: agreement violated at phase %d (n=%d k=%d)", t, c.N, c.K)
		}
		if remaining == 0 {
			met.decisionRuns.Inc()
			met.decisionPhases.Observe(float64(t))
			return t, sawDecision1, nil
		}
	}
	return maxPhases, sawDecision1, fmt.Errorf("mc: no decision within %d phases", maxPhases)
}

// Malicious simulates the Section 4.2 chain: n-k correct processes plus k
// balancing adversaries.
//
// Like FailStop, the chain caches its metric handles after the first run:
// use one chain value per configuration, do not mutate Metrics after the
// first call, and prefer pointer passing.
type Malicious struct {
	N, K  int
	Model AdversaryModel
	// Metrics, when non-nil, receives chain accounting under the
	// "mc.malicious." prefix.
	Metrics *metrics.Registry

	// met caches the resolved metric handles; see FailStop.met.
	met atomic.Pointer[chainMetrics]
}

// handles returns the cached metric handles, resolving them on first use.
func (c *Malicious) handles() *chainMetrics {
	if m := c.met.Load(); m != nil {
		return m
	}
	m := newChainMetrics(c.Metrics, "malicious")
	c.met.Store(m)
	return m
}

// Validate checks parameters: the balancing-adversary chain needs a correct
// majority, n >= 2k+1 (the fail-stop resilience bound).
func (c *Malicious) Validate() error {
	if c.N < 1 || c.K < 0 || c.N < quorum.MinProcesses(c.K, quorum.FailStop) {
		return fmt.Errorf("mc: invalid malicious chain n=%d k=%d", c.N, c.K)
	}
	if c.Model != Mixed && c.Model != Forced {
		return fmt.Errorf("mc: invalid adversary model %d", int(c.Model))
	}
	return nil
}

// Correct returns the number of correct processes, n-k.
func (c *Malicious) Correct() int { return c.N - c.K }

// Absorbed reports whether state i (correct processes holding 1) is in the
// paper's absorbing region: i < (n-3k)/2 or i > (n+k)/2 (Section 4.2).
func (c *Malicious) Absorbed(i int) bool {
	return quorum.BelowHalfNMinus3K(i, c.N, c.K) || quorum.ExceedsHalfNPlusK(i, c.N, c.K)
}

// Step simulates one phase from state ones (correct processes holding 1).
func (c *Malicious) Step(ones int, rng *rand.Rand) (StepOutcome, error) {
	return c.step(ones, rng, c.handles())
}

func (c *Malicious) step(ones int, rng *rand.Rand, met *chainMetrics) (StepOutcome, error) {
	correct := c.Correct()
	draw := quorum.WaitCount(c.N, c.K)
	views, err := c.viewSamplers(ones)
	if err != nil {
		return StepOutcome{}, err
	}
	met.steps.Inc()
	met.draws.Add(int64(correct))
	var out StepOutcome
	for p := 0; p < correct; p++ {
		view1 := views.sample(rng)
		view0 := draw - view1
		if view1 > view0 {
			out.Ones++
		}
		if quorum.ExceedsHalfNPlusK(view1, c.N, c.K) {
			out.Decided1++
		}
		if quorum.ExceedsHalfNPlusK(view0, c.N, c.K) {
			out.Decided0++
		}
	}
	return out, nil
}

// viewSampler draws one process's count of 1-valued messages among its
// n-k-message view, with the randomized balancing adversary's votes drawn
// independently per view (the paper's Section 4.2 model; see markov.MixedW).
type viewSampler struct {
	pHi     float64
	fixedLo int // adversarial ones added to the view when using lo
	fixedHi int
	lo, hi  *dist.HGSampler
}

func (v *viewSampler) sample(rng *rand.Rand) int {
	if v.pHi > 0 && rng.Float64() < v.pHi {
		return v.fixedHi + v.hi.Sample(rng)
	}
	return v.fixedLo + v.lo.Sample(rng)
}

// viewSamplers builds the per-view sampler for the given state.
func (c *Malicious) viewSamplers(ones int) (*viewSampler, error) {
	correct := c.Correct()
	draw := quorum.WaitCount(c.N, c.K)
	forced := c.Model == Forced
	lo, pHi := markov.BalancingMix(c.N, c.K, ones, forced)
	v := &viewSampler{pHi: pHi}
	//lint:allow hotalloc per-phase sampler construction; cost is dominated by the HG table build
	build := func(advOnes int) (*dist.HGSampler, int, error) {
		if forced {
			s, err := dist.NewHGSampler(dist.Hypergeometric{Pop: correct, Success: ones, Draw: draw - c.K})
			return s, advOnes, err
		}
		s, err := dist.NewHGSampler(dist.Hypergeometric{Pop: c.N, Success: ones + advOnes, Draw: draw})
		return s, 0, err
	}
	var err error
	v.lo, v.fixedLo, err = build(lo)
	if err != nil {
		return nil, err
	}
	if pHi > 0 {
		v.hi, v.fixedHi, err = build(lo + 1)
		if err != nil {
			return nil, err
		}
	}
	return v, nil
}

// AbsorptionRun simulates phases until the chain enters the absorbing
// region, returning the number of phases taken.
func (c *Malicious) AbsorptionRun(start int, rng *rand.Rand, maxPhases int) (int, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if start < 0 || start > c.Correct() {
		return 0, fmt.Errorf("mc: start state %d outside 0..%d", start, c.Correct())
	}
	if maxPhases <= 0 {
		maxPhases = 10000
	}
	met := c.handles()
	state := start
	for t := 0; t < maxPhases; t++ {
		if c.Absorbed(state) {
			met.absorptionRuns.Inc()
			met.absorptionPhases.Observe(float64(t))
			return t, nil
		}
		out, err := c.step(state, rng, met)
		if err != nil {
			return 0, err
		}
		state = out.Ones
	}
	return maxPhases, fmt.Errorf("mc: no absorption within %d phases", maxPhases)
}

// DecisionRun simulates the malicious-case protocol per correct process
// under the Section 4.2 view model, with the balancing adversary active
// every phase. It returns the phase at which the last correct process
// decided (counted from 1) and the common decision. It requires a
// configuration in which the decision threshold is reachable
// (n - k > (n+k)/2, i.e. 3k < n).
func (c *Malicious) DecisionRun(start int, rng *rand.Rand, maxPhases int) (phases int, decidedOnes bool, err error) {
	if err := c.Validate(); err != nil {
		return 0, false, err
	}
	if c.N < quorum.MinProcesses(c.K, quorum.Malicious) {
		return 0, false, fmt.Errorf("mc: decision threshold unreachable for n=%d k=%d (need 3k < n)", c.N, c.K)
	}
	correct := c.Correct()
	if start < 0 || start > correct {
		return 0, false, fmt.Errorf("mc: start state %d outside 0..%d", start, correct)
	}
	if maxPhases <= 0 {
		maxPhases = 100000
	}
	met := c.handles()
	draw := quorum.WaitCount(c.N, c.K)
	values := make([]bool, correct)
	for p := 0; p < start; p++ {
		values[p] = true
	}
	decided := make([]bool, correct)
	var sawDecision0, sawDecision1 bool
	for t := 1; t <= maxPhases; t++ {
		ones := 0
		for _, v := range values {
			if v {
				ones++
			}
		}
		views, err := c.viewSamplers(ones)
		if err != nil {
			return 0, false, err
		}
		met.steps.Inc()
		remaining := 0
		for p := 0; p < correct; p++ {
			if decided[p] {
				continue
			}
			met.draws.Inc()
			view1 := views.sample(rng)
			view0 := draw - view1
			switch {
			case quorum.ExceedsHalfNPlusK(view1, c.N, c.K):
				decided[p] = true
				values[p] = true
				sawDecision1 = true
			case quorum.ExceedsHalfNPlusK(view0, c.N, c.K):
				decided[p] = true
				values[p] = false
				sawDecision0 = true
			default:
				values[p] = view1 > view0
				remaining++
			}
		}
		if sawDecision0 && sawDecision1 {
			return 0, false, fmt.Errorf("mc: agreement violated at phase %d (n=%d k=%d)", t, c.N, c.K)
		}
		if remaining == 0 {
			met.decisionRuns.Inc()
			met.decisionPhases.Observe(float64(t))
			return t, sawDecision1, nil
		}
	}
	return maxPhases, sawDecision1, fmt.Errorf("mc: no decision within %d phases", maxPhases)
}
