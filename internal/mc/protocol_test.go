package mc

import (
	"reflect"
	"testing"

	"resilient/internal/coin"
	"resilient/internal/proto"
)

func TestProtocolEnsembleAcrossRegistry(t *testing.T) {
	for _, d := range proto.All() {
		if d.ID == proto.Broadcast || d.ID == proto.Bivalence {
			// Broadcast is not a consensus; bivalence decides input
			// parity. Both are out of scope for the comparison runner.
			continue
		}
		d := d
		t.Run(d.Name, func(t *testing.T) {
			t.Parallel()
			n := 7
			k := d.ID.MaxFaults(n)
			e, err := ProtocolEnsemble(d.ID, n, k, coin.SchemeAuto,
				EnsembleOptions{Trials: 20, Start: n, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if e.Trials != 20 {
				t.Fatalf("trials %d", e.Trials)
			}
			// Unanimous 1-inputs force decision 1 in every trial
			// (validity), for deterministic and randomized protocols
			// alike.
			if e.Decided1 != 20 {
				t.Errorf("unanimous ones decided 1 in %d/20 trials", e.Decided1)
			}
		})
	}
}

func TestProtocolEnsembleWorkerIndependent(t *testing.T) {
	run := func(workers int) *Ensemble {
		e, err := ProtocolEnsemble(proto.BenOrCrash, 7, 3, coin.SchemeAuto,
			EnsembleOptions{Trials: 24, Workers: workers, Start: 3, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	one, four := run(1), run(4)
	if !reflect.DeepEqual(one.Phases, four.Phases) {
		t.Errorf("phase sequences differ across worker counts:\n1: %v\n4: %v", one.Phases, four.Phases)
	}
	if one.Decided1 != four.Decided1 {
		t.Errorf("decisions differ across worker counts: %d vs %d", one.Decided1, four.Decided1)
	}
}

func TestProtocolEnsembleSharedCoinOverride(t *testing.T) {
	// BenOrCrash accepts a shared-coin override; the run must still decide
	// every trial.
	e, err := ProtocolEnsemble(proto.BenOrCrash, 7, 3, coin.SchemeShared,
		EnsembleOptions{Trials: 10, Start: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if e.Trials != 10 {
		t.Fatalf("trials %d", e.Trials)
	}
}

// TestSharedCoinPhasesFlat is the quantitative point of the shared-coin
// seam: with local coins the expected number of Ben-Or phases grows
// rapidly with n (each coin round unifies only when n independent flips
// happen to align), while the common coin keeps it O(1) -- every correct
// process flips the same value, so each coin round ends the run with
// constant probability. Split inputs are the adversarial case: no phase-1
// majority exists, so the run lives or dies by its coins. The probed means
// at seed 13 are ~5.8 (n=7), ~28 (n=15) and ~157 (n=21) for local coins
// against ~2 flat for the shared coin; the bounds below leave a wide
// margin over trial noise.
func TestSharedCoinPhasesFlat(t *testing.T) {
	mean := func(id proto.ID, n int) float64 {
		e, err := ProtocolEnsemble(id, n, id.MaxFaults(n), coin.SchemeAuto,
			EnsembleOptions{Trials: 40, Start: n / 2, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		if e.Max > 6 && id == proto.BenOrShared {
			t.Errorf("benor-shared n=%d hit %0.f phases; the common coin should finish in a handful", n, e.Max)
		}
		return e.Mean
	}
	for _, n := range []int{7, 15, 21} {
		shared := mean(proto.BenOrShared, n)
		if shared > 4 {
			t.Errorf("benor-shared n=%d mean %.2f phases, want flat O(1)", n, shared)
		}
	}
	small, large := mean(proto.BenOrCrash, 7), mean(proto.BenOrCrash, 21)
	if large < 2*small {
		t.Errorf("benor-crash mean phases %.2f (n=7) -> %.2f (n=21): expected growth with n", small, large)
	}
	if sharedLarge := mean(proto.BenOrShared, 21); large < 5*sharedLarge {
		t.Errorf("benor-crash %.2f vs benor-shared %.2f at n=21: the common coin should win decisively", large, sharedLarge)
	}
}

func TestProtocolEnsembleRejects(t *testing.T) {
	if _, err := ProtocolEnsemble(proto.ID(99), 7, 3, coin.SchemeAuto,
		EnsembleOptions{Trials: 1}); err == nil {
		t.Error("unknown protocol accepted")
	}
	if _, err := ProtocolEnsemble(proto.FailStop, 7, 4, coin.SchemeAuto,
		EnsembleOptions{Trials: 1}); err == nil {
		t.Error("k over bound accepted")
	}
	if _, err := ProtocolEnsemble(proto.FailStop, 7, 3, coin.SchemeShared,
		EnsembleOptions{Trials: 1}); err == nil {
		t.Error("coin override accepted for deterministic protocol")
	}
	if _, err := ProtocolEnsemble(proto.FailStop, 7, 3, coin.SchemeAuto,
		EnsembleOptions{Trials: 1, Start: 8}); err == nil {
		t.Error("out-of-range Start accepted")
	}
}
