package mc

import (
	"math/rand/v2"
	"testing"

	"resilient/internal/stats"
)

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed+1)) }

func TestFailStopValidate(t *testing.T) {
	if (&FailStop{N: 9, K: 3}).Validate() != nil {
		t.Error("valid chain rejected")
	}
	for _, c := range []*FailStop{{N: 0, K: 0}, {N: 5, K: 5}, {N: 5, K: -1}} {
		if c.Validate() == nil {
			t.Errorf("%+v accepted", c)
		}
	}
}

func TestFailStopAbsorbedRegions(t *testing.T) {
	c := FailStop{N: 90, K: 30} // k = n/3: paper's regions [0,30) and (60,90]
	for i := 0; i <= 90; i++ {
		want := i < 30 || i > 60
		if got := c.Absorbed(i); got != want {
			t.Errorf("Absorbed(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestFailStopStepFromUnanimity(t *testing.T) {
	c := FailStop{N: 30, K: 5}
	out, err := c.Step(0, rng(1))
	if err != nil {
		t.Fatal(err)
	}
	if out.Ones != 0 {
		t.Errorf("unanimity not preserved: %d ones", out.Ones)
	}
	// Everyone sees 25 zeros > (30+5)/2 = 17.5 -> all decide 0.
	if out.Decided0 != 30 || out.Decided1 != 0 {
		t.Errorf("decisions (%d, %d)", out.Decided0, out.Decided1)
	}
}

func TestFailStopStepCommittedRegionCollapses(t *testing.T) {
	// From a state in the absorbing region, one step reaches unanimity.
	c := FailStop{N: 90, K: 30}
	out, err := c.Step(29, rng(2)) // 29 < (n-k)/2 = 30
	if err != nil {
		t.Fatal(err)
	}
	if out.Ones != 0 {
		t.Errorf("absorbing state did not collapse: %d ones", out.Ones)
	}
}

func TestAbsorptionRunTerminates(t *testing.T) {
	c := FailStop{N: 60, K: 20}
	var acc stats.Accumulator
	for seed := uint64(0); seed < 200; seed++ {
		phases, err := c.AbsorptionRun(30, rng(seed), 0)
		if err != nil {
			t.Fatal(err)
		}
		acc.Add(float64(phases))
	}
	// The paper's bound for the collapsed chain is < 7 phases; the exact
	// chain from balanced start should be well below that.
	if acc.Mean() > 7 {
		t.Errorf("mean absorption %v > 7", acc.Mean())
	}
	if acc.Mean() <= 0 {
		t.Errorf("mean absorption %v <= 0", acc.Mean())
	}
}

func TestAbsorptionRunFromAbsorbedIsZero(t *testing.T) {
	c := FailStop{N: 60, K: 20}
	phases, err := c.AbsorptionRun(0, rng(1), 0)
	if err != nil || phases != 0 {
		t.Errorf("phases=%d err=%v", phases, err)
	}
}

func TestAbsorptionRunRejectsBadStart(t *testing.T) {
	c := FailStop{N: 10, K: 3}
	if _, err := c.AbsorptionRun(11, rng(1), 0); err == nil {
		t.Error("start beyond n accepted")
	}
	if _, err := c.AbsorptionRun(-1, rng(1), 0); err == nil {
		t.Error("negative start accepted")
	}
}

func TestDecisionRunAgreesAndTerminates(t *testing.T) {
	c := FailStop{N: 30, K: 9} // 3k < n
	for seed := uint64(0); seed < 50; seed++ {
		phases, _, err := c.DecisionRun(15, rng(seed), 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if phases < 1 || phases > 1000 {
			t.Fatalf("seed %d: implausible %d phases", seed, phases)
		}
	}
}

func TestDecisionRunUnanimousFast(t *testing.T) {
	c := FailStop{N: 30, K: 9}
	phases, ones, err := c.DecisionRun(30, rng(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ones {
		t.Error("unanimous 1s decided 0")
	}
	if phases != 1 {
		t.Errorf("unanimous input took %d phases, want 1", phases)
	}
}

func TestDecisionRunRequiresThreeKLessN(t *testing.T) {
	c := FailStop{N: 9, K: 3}
	if _, _, err := c.DecisionRun(4, rng(1), 0); err == nil {
		t.Error("3k = n accepted for decisions")
	}
}

func TestMaliciousValidate(t *testing.T) {
	if (&Malicious{N: 10, K: 2, Model: Mixed}).Validate() != nil {
		t.Error("valid chain rejected")
	}
	if (&Malicious{N: 10, K: 5, Model: Mixed}).Validate() == nil {
		t.Error("2k = n accepted")
	}
	if (&Malicious{N: 10, K: 2}).Validate() == nil {
		t.Error("missing model accepted")
	}
}

func TestMaliciousAbsorbedRegions(t *testing.T) {
	c := Malicious{N: 100, K: 10, Model: Mixed}
	// Absorbing: 2i < n-3k = 70 -> i < 35; 2i > n+k = 110 -> i > 55.
	for _, tc := range []struct {
		i    int
		want bool
	}{{34, true}, {35, false}, {55, false}, {56, true}, {0, true}, {90, true}} {
		if got := c.Absorbed(tc.i); got != tc.want {
			t.Errorf("Absorbed(%d) = %v, want %v", tc.i, got, tc.want)
		}
	}
}

func TestMaliciousStepBothModels(t *testing.T) {
	for _, model := range []AdversaryModel{Mixed, Forced} {
		c := Malicious{N: 50, K: 5, Model: model}
		out, err := c.Step(22, rng(4)) // near balance
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if out.Ones < 0 || out.Ones > c.Correct() {
			t.Fatalf("%v: ones %d outside range", model, out.Ones)
		}
	}
}

func TestMaliciousAbsorptionWithinPaperScale(t *testing.T) {
	// k = l*sqrt(n)/2 with l=1, n=100: k=5. Bound: 1/(2*Phi(1)) ~ 3.15.
	// The balancing adversary slows but does not prevent absorption; allow
	// a generous multiple.
	for _, model := range []AdversaryModel{Mixed, Forced} {
		c := Malicious{N: 100, K: 5, Model: model}
		var acc stats.Accumulator
		for seed := uint64(0); seed < 300; seed++ {
			phases, err := c.AbsorptionRun(c.Correct()/2, rng(seed), 0)
			if err != nil {
				t.Fatalf("%v seed %d: %v", model, seed, err)
			}
			acc.Add(float64(phases))
		}
		if acc.Mean() > 20 {
			t.Errorf("%v: mean absorption %v implausibly high", model, acc.Mean())
		}
	}
}

func TestMaliciousForcedSlowerThanMixed(t *testing.T) {
	// The Forced adversary (always in every view) can only slow things
	// down relative to Mixed. Compare means with many trials.
	mixed := Malicious{N: 100, K: 8, Model: Mixed}
	forced := Malicious{N: 100, K: 8, Model: Forced}
	var am, af stats.Accumulator
	for seed := uint64(0); seed < 1500; seed++ {
		pm, err := mixed.AbsorptionRun(46, rng(seed), 0)
		if err != nil {
			t.Fatal(err)
		}
		pf, err := forced.AbsorptionRun(46, rng(seed+99999), 0)
		if err != nil {
			t.Fatal(err)
		}
		am.Add(float64(pm))
		af.Add(float64(pf))
	}
	if af.Mean() < am.Mean()-3*(am.CI95()+af.CI95()) {
		t.Errorf("forced (%v) significantly faster than mixed (%v)", af.Mean(), am.Mean())
	}
}

func TestMaliciousDecisionRun(t *testing.T) {
	c := Malicious{N: 40, K: 4, Model: Mixed}
	for seed := uint64(0); seed < 30; seed++ {
		phases, _, err := c.DecisionRun(18, rng(seed), 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if phases < 1 {
			t.Fatalf("phases %d", phases)
		}
	}
}

func TestAdversaryModelString(t *testing.T) {
	if Mixed.String() != "mixed" || Forced.String() != "forced" {
		t.Error("model names wrong")
	}
	if AdversaryModel(9).String() == "" {
		t.Error("unknown model has empty name")
	}
}

func TestStepOutcomeDecisionCountsBounded(t *testing.T) {
	c := FailStop{N: 20, K: 6}
	for state := 0; state <= 20; state += 4 {
		out, err := c.Step(state, rng(uint64(state)))
		if err != nil {
			t.Fatal(err)
		}
		if out.Decided0+out.Decided1 > c.N {
			t.Fatalf("state %d: more decisions than processes", state)
		}
		if out.Decided0 > 0 && out.Decided1 > 0 {
			t.Fatalf("state %d: both values decided in one phase: counts (%d,%d)",
				state, out.Decided0, out.Decided1)
		}
	}
}
