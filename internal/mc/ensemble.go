package mc

import (
	"fmt"
	"math/rand/v2"

	"resilient/internal/stats"
	"resilient/internal/sweep"
)

// Ensemble runs: the Section 4 performance study is a Monte-Carlo campaign
// of many independent chain runs, so the ensemble entry points fan trials
// across worker goroutines. Determinism is guaranteed by construction:
//
//   - trial t draws from its own rand.NewPCG(Seed, t) stream, so the random
//     path of a trial depends only on (Seed, t), never on which worker ran
//     it or in what order;
//   - per-trial outcomes land in a slice indexed by trial number, and every
//     aggregate (mean, CI, histogram, percentiles) is folded from that slice
//     in increasing trial order.
//
// The merged result is therefore bit-identical for Workers=1 and Workers=N.

// EnsembleOptions configures a parallel ensemble of independent chain runs.
type EnsembleOptions struct {
	// Trials is the number of independent runs (must be > 0).
	Trials int
	// Workers bounds the number of concurrent worker goroutines
	// (0 = GOMAXPROCS). The merged result is identical for every value.
	Workers int
	// Start is the initial chain state for every trial.
	Start int
	// MaxPhases caps each run (0 = the per-run default).
	MaxPhases int
	// Seed is the ensemble base seed; trial t uses rand.NewPCG(Seed, t).
	Seed uint64
}

func (o EnsembleOptions) validate() error {
	if o.Trials <= 0 {
		return fmt.Errorf("mc: ensemble needs Trials > 0, got %d", o.Trials)
	}
	return nil
}

// trialRNG returns trial t's private generator.
func (o EnsembleOptions) trialRNG(t int) *rand.Rand {
	return rand.New(rand.NewPCG(o.Seed, uint64(t)))
}

// Ensemble is the deterministically merged outcome of an ensemble of
// independent runs.
type Ensemble struct {
	// Trials is the number of runs merged.
	Trials int
	// Phases holds the per-trial phase counts, indexed by trial number --
	// the raw material every aggregate below is folded from, in order.
	Phases []int
	// Mean, CI95, Min and Max summarize Phases.
	Mean, CI95, Min, Max float64
	// P50, P90 and P99 are interpolated percentiles of Phases.
	P50, P90, P99 float64
	// Hist counts trials per phase count.
	Hist *stats.IntHistogram
	// Decided1 counts trials whose common decision was 1 (decision
	// ensembles only; 0 for absorption ensembles).
	Decided1 int
}

// mergeEnsemble folds per-trial outcomes into an Ensemble in trial order.
func mergeEnsemble(phases []int, decidedOnes []bool) *Ensemble {
	e := &Ensemble{Trials: len(phases), Phases: phases, Hist: stats.NewIntHistogram()}
	var acc stats.Accumulator
	fs := make([]float64, len(phases))
	for i, p := range phases {
		acc.Add(float64(p))
		e.Hist.Add(p)
		fs[i] = float64(p)
	}
	s := acc.Summarize()
	e.Mean, e.CI95, e.Min, e.Max = s.Mean, s.CI95, s.Min, s.Max
	e.P50 = stats.Quantile(fs, 0.50)
	e.P90 = stats.Quantile(fs, 0.90)
	e.P99 = stats.Quantile(fs, 0.99)
	for _, d := range decidedOnes {
		if d {
			e.Decided1++
		}
	}
	return e
}

// decisionTrial is one decision run's outcome.
type decisionTrial struct {
	phases int
	one    bool
}

// absorptionEnsemble is the shared fan-out for both chains' absorption
// ensembles; run is the per-trial body.
func absorptionEnsemble(opts EnsembleOptions, run func(rng *rand.Rand) (int, error)) (*Ensemble, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	phases, err := sweep.Run(opts.Trials, opts.Workers, func(t int) (int, error) {
		return run(opts.trialRNG(t))
	})
	if err != nil {
		return nil, err
	}
	return mergeEnsemble(phases, nil), nil
}

// decisionEnsemble is the shared fan-out for both chains' decision
// ensembles.
func decisionEnsemble(opts EnsembleOptions, run func(rng *rand.Rand) (int, bool, error)) (*Ensemble, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	results, err := sweep.Run(opts.Trials, opts.Workers, func(t int) (decisionTrial, error) {
		ph, one, err := run(opts.trialRNG(t))
		return decisionTrial{phases: ph, one: one}, err
	})
	if err != nil {
		return nil, err
	}
	phases := make([]int, len(results))
	ones := make([]bool, len(results))
	for i, r := range results {
		phases[i] = r.phases
		ones[i] = r.one
	}
	return mergeEnsemble(phases, ones), nil
}

// AbsorptionEnsemble runs Trials independent absorption runs from
// opts.Start across opts.Workers goroutines and merges them
// deterministically (see the package comment on ensemble determinism).
func (c *FailStop) AbsorptionEnsemble(opts EnsembleOptions) (*Ensemble, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	c.handles() // resolve metric handles once, before the fan-out
	return absorptionEnsemble(opts, func(rng *rand.Rand) (int, error) {
		return c.AbsorptionRun(opts.Start, rng, opts.MaxPhases)
	})
}

// DecisionEnsemble runs Trials independent decision runs from opts.Start
// 1-inputs and merges them deterministically; Decided1 counts trials whose
// consensus value was 1.
func (c *FailStop) DecisionEnsemble(opts EnsembleOptions) (*Ensemble, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	c.handles()
	return decisionEnsemble(opts, func(rng *rand.Rand) (int, bool, error) {
		return c.DecisionRun(opts.Start, rng, opts.MaxPhases)
	})
}

// AbsorptionEnsemble is the malicious-chain analogue of
// FailStop.AbsorptionEnsemble.
func (c *Malicious) AbsorptionEnsemble(opts EnsembleOptions) (*Ensemble, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	c.handles()
	return absorptionEnsemble(opts, func(rng *rand.Rand) (int, error) {
		return c.AbsorptionRun(opts.Start, rng, opts.MaxPhases)
	})
}

// DecisionEnsemble is the malicious-chain analogue of
// FailStop.DecisionEnsemble.
func (c *Malicious) DecisionEnsemble(opts EnsembleOptions) (*Ensemble, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	c.handles()
	return decisionEnsemble(opts, func(rng *rand.Rand) (int, bool, error) {
		return c.DecisionRun(opts.Start, rng, opts.MaxPhases)
	})
}
