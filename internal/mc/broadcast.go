package mc

import (
	"fmt"
	"math/rand/v2"

	"resilient/internal/dist"
	"resilient/internal/sample"
	"resilient/internal/sweep"
)

// Broadcast is the sample-level Monte-Carlo experiment pinning the delivery
// claim of the sampled reliable broadcast (internal/sample): under a given
// Plan, with Faulty silent processes, what fraction of correct receivers
// fails to deliver one broadcast?
//
// Each trial redraws the whole directory — gossip fanouts, echo samples,
// ready samples — exactly as a production run draws it once, then replays
// the protocol's dataflow at sample granularity: a push-gossip reachability
// pass (Murmur), the echo-threshold test against each receiver's sample
// (Sieve), and the ready feedback/delivery fixpoint (Contagion). The
// adversary is the strongest one the delivery claim is stated against:
// Faulty processes are completely silent, so every threshold must be met
// from correct processes alone. Value consistency under equivocation is the
// analytic half of the argument (Plan's ε-consistency tail, DESIGN §13) and
// is not resampled here.
//
// Trials are deterministic per (Seed, trial) exactly like the phase-chain
// ensembles: trial t draws everything from rand.NewPCG(Seed, t).
type Broadcast struct {
	// Plan is the operating point under test.
	Plan sample.Plan
	// Faulty is the number of silent processes, occupying the highest ids
	// (samples are uniform, so the placement is irrelevant). Must be
	// between 0 and Plan.K.
	Faulty int
}

// Validate checks the experiment parameters.
func (b *Broadcast) Validate() error {
	if b.Plan.N < 2 || b.Plan.Echo < 1 {
		return fmt.Errorf("mc: broadcast needs a built plan, got %+v", b.Plan)
	}
	if b.Faulty < 0 || b.Faulty > b.Plan.K {
		return fmt.Errorf("mc: broadcast faulty=%d outside 0..k=%d", b.Faulty, b.Plan.K)
	}
	return nil
}

// broadcastTrial is one trial's outcome.
type broadcastTrial struct {
	failures  int // correct receivers that did not deliver
	unreached int // correct processes gossip never reached (diagnostic)
}

// trial replays one broadcast at sample granularity.
func (b *Broadcast) trial(rng *rand.Rand) broadcastTrial {
	p := b.Plan
	n := p.N
	correct := n - b.Faulty // ids 0..correct-1 are correct; the origin is 0
	sampler := dist.NewIndexSampler(n)
	buf := make([]int32, 0, p.Echo)

	// Murmur: push-gossip reachability. Faulty processes receive but never
	// relay. Every correct reached process (including the origin) echoes.
	reached := make([]bool, n)
	queue := make([]int32, 1, n)
	reached[0] = true
	queue[0] = 0
	for qi := 0; qi < len(queue); qi++ {
		pid := int(queue[qi])
		if pid >= correct {
			continue
		}
		buf = sampler.Draw(rng, p.Gossip, buf[:0])
		for _, t := range buf {
			if !reached[t] {
				reached[t] = true
				queue = append(queue, t)
			}
		}
	}

	// Sieve: receiver r accepts (and becomes ready) when its echo sample
	// holds at least Ê echoers.
	var out broadcastTrial
	readied := make([]bool, n)
	for r := 0; r < correct; r++ {
		if !reached[r] {
			out.unreached++
		}
		buf = sampler.Draw(rng, p.Echo, buf[:0])
		hits := 0
		for _, m := range buf {
			if int(m) < correct && reached[m] {
				hits++
			}
		}
		if hits >= p.EchoThreshold {
			readied[r] = true
		}
	}

	// Contagion: each correct receiver's ready sample is drawn once; the
	// feedback threshold propagates readies to a fixpoint, then the
	// delivery threshold is evaluated.
	samples := make([]int32, correct*p.Ready)
	for r := 0; r < correct; r++ {
		sampler.Draw(rng, p.Ready, samples[r*p.Ready:r*p.Ready:(r+1)*p.Ready])
	}
	for changed := true; changed; {
		changed = false
		for r := 0; r < correct; r++ {
			if readied[r] {
				continue
			}
			hits := 0
			for _, m := range samples[r*p.Ready : (r+1)*p.Ready] {
				if int(m) < correct && readied[m] {
					hits++
				}
			}
			if hits >= p.ReadyFeedback {
				readied[r] = true
				changed = true
			}
		}
	}
	for r := 0; r < correct; r++ {
		hits := 0
		for _, m := range samples[r*p.Ready : (r+1)*p.Ready] {
			if int(m) < correct && readied[m] {
				hits++
			}
		}
		if hits < p.ReadyDeliver {
			out.failures++
		}
	}
	return out
}

// DeliveryEnsemble summarizes a parallel ensemble of broadcast trials.
type DeliveryEnsemble struct {
	// Trials is the number of broadcasts replayed.
	Trials int
	// Receivers is the number of correct receivers evaluated per trial.
	Receivers int
	// Failures is the total number of (trial, receiver) non-deliveries.
	Failures int
	// FailureRate is Failures / (Trials·Receivers) — the empirical
	// per-(receiver, broadcast) failure probability the plan's ε bounds.
	FailureRate float64
	// MaxTrialFailures is the worst single trial.
	MaxTrialFailures int
	// Unreached is the total number of correct processes gossip failed to
	// reach (across all trials); delivery can still succeed for them via
	// their samples, so this is a diagnostic, not a failure count.
	Unreached int
}

// DeliveryRun runs opts.Trials independent broadcasts (opts.Start and
// opts.MaxPhases are ignored) and merges the outcomes in trial order; the
// result is identical at any worker count.
func (b *Broadcast) DeliveryRun(opts EnsembleOptions) (*DeliveryEnsemble, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	trials, err := sweep.Run(opts.Trials, opts.Workers, func(t int) (broadcastTrial, error) {
		return b.trial(opts.trialRNG(t)), nil
	})
	if err != nil {
		return nil, err
	}
	e := &DeliveryEnsemble{Trials: len(trials), Receivers: b.Plan.N - b.Faulty}
	for _, tr := range trials {
		e.Failures += tr.failures
		e.Unreached += tr.unreached
		if tr.failures > e.MaxTrialFailures {
			e.MaxTrialFailures = tr.failures
		}
	}
	e.FailureRate = float64(e.Failures) / (float64(e.Trials) * float64(e.Receivers))
	return e, nil
}
