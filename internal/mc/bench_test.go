package mc

import (
	"runtime"
	"testing"
)

// BenchmarkEnsembleParallel is the multi-core headline: ns/trial for a
// fail-stop absorption ensemble at workers = 1, 2 and GOMAXPROCS. The
// merged result must be identical across the sub-benchmarks -- parallelism
// buys throughput, never different numbers. CI records the workers=max line
// next to the single-run headlines.
func BenchmarkEnsembleParallel(b *testing.B) {
	chain := &FailStop{N: 300, K: 100}
	const trials = 64
	opts := EnsembleOptions{Trials: trials, Start: 150, Seed: 1}
	var baseMean float64
	haveBase := false
	cases := []struct {
		name    string
		workers int
	}{
		{"workers=1", 1},
		{"workers=2", 2},
		{"workers=max", runtime.GOMAXPROCS(0)}, // stable key across machines for CI comparison
	}
	for _, c := range cases {
		workers := c.workers
		b.Run(c.name, func(b *testing.B) {
			o := opts
			o.Workers = workers
			b.ReportAllocs()
			b.ResetTimer()
			var last *Ensemble
			for i := 0; i < b.N; i++ {
				e, err := chain.AbsorptionEnsemble(o)
				if err != nil {
					b.Fatal(err)
				}
				last = e
			}
			b.StopTimer()
			if !haveBase {
				baseMean, haveBase = last.Mean, true
			} else if last.Mean != baseMean {
				b.Fatalf("workers=%d changed the merged mean: %v != %v", workers, last.Mean, baseMean)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*trials), "ns/trial")
			b.ReportMetric(float64(b.N*trials)/b.Elapsed().Seconds(), "trials/s")
		})
	}
}

// BenchmarkAbsorptionRun is the single-trial baseline the ensemble numbers
// divide into.
func BenchmarkAbsorptionRun(b *testing.B) {
	chain := &FailStop{N: 300, K: 100}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opts := EnsembleOptions{Seed: 1}
		if _, err := chain.AbsorptionRun(150, opts.trialRNG(i), 0); err != nil {
			b.Fatal(err)
		}
	}
}
