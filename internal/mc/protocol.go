package mc

import (
	"fmt"

	"resilient/internal/coin"
	"resilient/internal/core"
	"resilient/internal/msg"
	"resilient/internal/proto"
	"resilient/internal/runtime"
	"resilient/internal/sweep"

	// The runner resolves protocols through the registry; the blank imports
	// pull every protocol package's registration in.
	_ "resilient/internal/benor"
	_ "resilient/internal/bivalence"
	_ "resilient/internal/failstop"
	_ "resilient/internal/majority"
	_ "resilient/internal/malicious"
)

// ProtocolEnsemble runs Trials independent full protocol executions --
// real machines under the discrete-event engine, not Markov-chain
// abstractions -- for any registered protocol, and merges them into the
// same Ensemble shape the chain ensembles produce, so protocols and their
// analytical models are directly comparable.
//
// opts.Start is the number of initial 1-inputs (the remaining n - Start
// processes start with 0), matching the chain decision ensembles.
// opts.MaxPhases is ignored: each execution runs to decision under the
// engine's event budget. override selects the coin scheme of randomized
// protocols (coin.SchemeAuto keeps the protocol's default).
//
// Determinism follows the ensemble contract: trial t's engine seed is drawn
// from its private (Seed, t) stream, so the merged result is bit-identical
// for every worker count.
func ProtocolEnsemble(p proto.ID, n, k int, override coin.Scheme, opts EnsembleOptions) (*Ensemble, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	d, ok := proto.Lookup(p)
	if !ok {
		return nil, fmt.Errorf("mc: unknown protocol %d", int(p))
	}
	scheme, err := d.ResolveCoin(override)
	if err != nil {
		return nil, fmt.Errorf("mc: %w", err)
	}
	if n < 1 {
		return nil, fmt.Errorf("mc: protocol ensemble needs n >= 1, got %d", n)
	}
	if k < 0 || k > p.MaxFaults(n) {
		return nil, fmt.Errorf("mc: k=%d outside %v bound %d at n=%d", k, p, p.MaxFaults(n), n)
	}
	if opts.Start < 0 || opts.Start > n {
		return nil, fmt.Errorf("mc: %d initial ones outside 0..%d", opts.Start, n)
	}
	inputs := make([]msg.Value, n)
	for i := 0; i < opts.Start; i++ {
		inputs[i] = msg.V1
	}
	results, err := sweep.Run(opts.Trials, opts.Workers, func(t int) (decisionTrial, error) {
		seed := opts.trialRNG(t).Uint64()
		res, err := runtime.Run(runtime.Config{
			N: n, K: k,
			Inputs: inputs,
			Spawn:  protocolSpawner(d, scheme, seed),
			Seed:   seed,
		})
		if err != nil {
			return decisionTrial{}, fmt.Errorf("mc: %v trial %d: %w", p, t, err)
		}
		if !res.AllDecided || !res.Agreement {
			return decisionTrial{}, fmt.Errorf("mc: %v trial %d: decided=%v agreement=%v stalled=%v",
				p, t, res.AllDecided, res.Agreement, res.Stalled)
		}
		phases := 0
		for _, ph := range res.DecisionPhase {
			if int(ph) > phases {
				//lint:allow maprange max fold is order-insensitive
				phases = int(ph)
			}
		}
		return decisionTrial{phases: phases, one: res.Value == msg.V1}, nil
	})
	if err != nil {
		return nil, err
	}
	phases := make([]int, len(results))
	ones := make([]bool, len(results))
	for i, r := range results {
		phases[i] = r.phases
		ones[i] = r.one
	}
	return mergeEnsemble(phases, ones), nil
}

// protocolSpawner builds the engine spawner for one execution: the shared
// coin is one per-run source every process queries, the local scheme draws
// from each process's own engine RNG.
func protocolSpawner(d proto.Descriptor, scheme coin.Scheme, seed uint64) runtime.Spawner {
	var shared coin.Source
	if scheme == coin.SchemeShared {
		shared = coin.NewShared(seed)
	}
	return func(ctx runtime.SpawnContext) (core.Machine, error) {
		deps := proto.Deps{Sink: ctx.Sink}
		switch scheme {
		case coin.SchemeLocal:
			deps.Coin = coin.NewLocal(ctx.RNG)
		case coin.SchemeShared:
			deps.Coin = shared
		}
		return d.Spawn(ctx.Config, deps)
	}
}
