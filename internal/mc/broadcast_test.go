package mc

import (
	"testing"

	"resilient/internal/sample"
)

func broadcastPlan(t testing.TB, n, k int, eps float64) sample.Plan {
	t.Helper()
	p, err := sample.NewPlan(n, k, eps)
	if err != nil {
		t.Fatalf("NewPlan(%d, %d, %g): %v", n, k, eps, err)
	}
	return p
}

func TestBroadcastValidate(t *testing.T) {
	if err := (&Broadcast{}).Validate(); err == nil {
		t.Error("zero-value broadcast accepted")
	}
	p := broadcastPlan(t, 100, 10, 1e-3)
	if err := (&Broadcast{Plan: p, Faulty: 11}).Validate(); err == nil {
		t.Error("faulty > k accepted")
	}
	if err := (&Broadcast{Plan: p, Faulty: -1}).Validate(); err == nil {
		t.Error("negative faulty accepted")
	}
	if err := (&Broadcast{Plan: p, Faulty: 10}).Validate(); err != nil {
		t.Errorf("valid broadcast rejected: %v", err)
	}
	if _, err := (&Broadcast{Plan: p}).DeliveryRun(EnsembleOptions{}); err == nil {
		t.Error("Trials=0 accepted")
	}
}

// TestBroadcastDeliveryWithinTwiceEps is the ISSUE-8 acceptance measurement:
// at n=1,000 under the full silent-fault budget, the measured per-(receiver,
// broadcast) failure rate over >= 10,000 Monte-Carlo trials must be at most
// 2ε.
func TestBroadcastDeliveryWithinTwiceEps(t *testing.T) {
	const (
		n   = 1000
		eps = 1e-3
	)
	k := n / 10
	b := &Broadcast{Plan: broadcastPlan(t, n, k, eps), Faulty: k}
	trials := 10_000
	if testing.Short() {
		trials = 1_000
	}
	e, err := b.DeliveryRun(EnsembleOptions{Trials: trials, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("plan %v: %d trials x %d receivers, %d failures (rate %.2e, budget %.2e), worst trial %d, unreached %d",
		b.Plan, e.Trials, e.Receivers, e.Failures, e.FailureRate, 2*eps, e.MaxTrialFailures, e.Unreached)
	if e.FailureRate > 2*eps {
		t.Errorf("failure rate %.3e exceeds 2eps = %.3e", e.FailureRate, 2*eps)
	}
}

// TestBroadcastDeliveryDeterministic pins the worker-count invariance
// guarantee for the new ensemble.
func TestBroadcastDeliveryDeterministic(t *testing.T) {
	b := &Broadcast{Plan: broadcastPlan(t, 200, 20, 1e-2), Faulty: 20}
	var prev *DeliveryEnsemble
	for _, workers := range []int{1, 4, 16} {
		e, err := b.DeliveryRun(EnsembleOptions{Trials: 300, Workers: workers, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && *e != *prev {
			t.Fatalf("workers=%d changed the merged ensemble: %+v vs %+v", workers, e, prev)
		}
		prev = e
	}
}

// TestBroadcastFaultFreeDelivers sanity-checks the experiment itself: with
// no faults and a generous plan, failures must be essentially absent.
func TestBroadcastFaultFreeDelivers(t *testing.T) {
	b := &Broadcast{Plan: broadcastPlan(t, 500, 50, 1e-3)}
	e, err := b.DeliveryRun(EnsembleOptions{Trials: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if e.FailureRate > 1e-3 {
		t.Errorf("fault-free failure rate %.3e", e.FailureRate)
	}
}

func BenchmarkBroadcastTrial(b *testing.B) {
	p, err := sample.NewPlan(1000, 100, 1e-3)
	if err != nil {
		b.Fatal(err)
	}
	bc := &Broadcast{Plan: p, Faulty: 100}
	opts := EnsembleOptions{Trials: 1, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bc.trial(opts.trialRNG(i))
	}
}
