package metrics

import (
	"sync/atomic"
	"testing"
)

// BenchmarkCounterContention is the counter-contention microbench behind the
// striped design: all P goroutines hammering one counter. The striped
// registry counter must scale where a single shared atomic serializes on
// cache-line ownership transfers (run with -cpu 1,2,8 to see the gap).
func BenchmarkCounterContention(b *testing.B) {
	b.Run("striped", func(b *testing.B) {
		c := NewRegistry().Counter("bench")
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Add(1)
			}
		})
		if c.Value() < int64(b.N) {
			b.Fatalf("lost increments: %d < %d", c.Value(), b.N)
		}
	})
	b.Run("single-atomic", func(b *testing.B) {
		var v atomic.Int64
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				v.Add(1)
			}
		})
	})
}

// BenchmarkCounterUncontended guards the single-goroutine hot path: the
// stripe-index hash must stay a few nanoseconds on top of the atomic add.
func BenchmarkCounterUncontended(b *testing.B) {
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
