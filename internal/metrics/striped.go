package metrics

import (
	"runtime"
	"sync/atomic"
	"unsafe"
)

// Striped counter cells. A registry-created Counter spreads its increments
// over several cache-line-padded cells so that trial workers hammering the
// same counter from different cores do not serialize on one cache line (the
// classic false-sharing / contended-atomic hotspot). Reads sum the cells;
// the JSON snapshot shape is unchanged because a counter still renders as a
// single int64.

// cacheLine is the assumed coherence granularity. Each cell is padded to
// this size so two cells never share a line.
const cacheLine = 64

// cell is one cache-line-padded counter stripe.
type cell struct {
	n atomic.Int64
	_ [cacheLine - 8]byte
}

// stripeCount is the number of cells per striped counter: the smallest
// power of two covering GOMAXPROCS at package init, floored at 8 (so runs
// that raise GOMAXPROCS later, e.g. `go test -cpu`, still spread) and capped
// at 64 to bound the footprint (64 cells x 64 B = 4 KiB per counter).
var stripeCount = func() int {
	n := 8
	for n < runtime.GOMAXPROCS(0) && n < 64 {
		n <<= 1
	}
	return n
}()

// stripeIndex derives a cheap quasi-goroutine-local value from the address
// of a stack variable: goroutines live on distinct stacks, so concurrent
// callers hash to distinct cells with high probability, without any
// runtime-private API. The index is stable within a goroutine between stack
// moves, which is all striping needs -- a moved stack merely re-homes the
// goroutine to another cell.
func stripeIndex() uint64 {
	var marker byte
	x := uint64(uintptr(unsafe.Pointer(&marker)))
	// splitmix64 finalizer so the low bits reflect the whole address.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return x
}
