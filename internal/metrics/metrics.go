// Package metrics is a small, dependency-free, concurrency-safe registry of
// counters, gauges, and fixed-bucket histograms: the run-accounting substrate
// for the Section 4 performance quantities (phases to absorption, messages
// per phase, decision latency) and for the engines' operational counters
// (events, bytes, frames, dials).
//
// The design mirrors how trace.Nop makes tracing free: every handle is
// nil-safe, so an engine holds a *Counter (or *Histogram) obtained once at
// run start and calls Add/Observe unconditionally -- on a nil handle those
// are no-ops that neither allocate nor synchronize. Registry counters are
// striped over cache-line-padded cells summed on read (see striped.go), so
// concurrent trial workers bumping the same counter do not serialize on one
// atomic; gauges are single atomics and histograms are mutex-guarded
// (observations are rare relative to counter bumps: one per run or per
// phase, not one per message).
//
// Snapshot() returns a plain struct whose JSON encoding is byte-stable:
// encoding/json sorts map keys, bucket bounds render through strconv with
// the shortest round-trip form, and the overflow bucket is labelled "+Inf".
package metrics

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Registry owns a flat namespace of metrics. The zero value is not usable;
// call NewRegistry. A nil *Registry is a valid "metrics off" handle: every
// lookup returns a nil instrument and every instrument method on nil is a
// no-op, so the zero-config path costs nothing.
type Registry struct {
	root   *registryRoot
	prefix string
}

// registryRoot holds the shared state behind a registry and all its scopes.
type registryRoot struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{root: &registryRoot{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}}
}

// Scoped returns a view of the registry that prepends prefix to every metric
// name. Scopes share the underlying metrics: r.Scoped("a.").Counter("x") and
// r.Counter("a.x") are the same counter. Scoped on a nil registry returns
// nil, keeping the whole chain free when metrics are off.
func (r *Registry) Scoped(prefix string) *Registry {
	if r == nil {
		return nil
	}
	return &Registry{root: r.root, prefix: r.prefix + prefix}
}

// Counter returns the counter with the given name, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	name = r.prefix + name
	root := r.root
	root.mu.Lock()
	defer root.mu.Unlock()
	c, ok := root.counters[name]
	if !ok {
		c = &Counter{cells: make([]cell, stripeCount)}
		root.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	name = r.prefix + name
	root := r.root
	root.mu.Lock()
	defer root.mu.Unlock()
	g, ok := root.gauges[name]
	if !ok {
		g = &Gauge{}
		root.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it with the
// given bucket upper bounds on first use (an implicit +Inf overflow bucket
// is always appended). Later calls ignore the bounds argument and return the
// existing histogram. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	name = r.prefix + name
	root := r.root
	root.mu.Lock()
	defer root.mu.Unlock()
	h, ok := root.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		root.histograms[name] = h
	}
	return h
}

// Counter is a monotone counter. Registry-created counters are striped:
// Add lands on one of several cache-line-padded cells picked by a cheap
// quasi-goroutine-local hash, and Value sums the cells, so concurrent
// writers on different cores do not contend on one cache line. The zero
// value is a valid single-cell counter. All methods are safe on nil and for
// concurrent use; a Value read concurrent with writers may miss in-flight
// increments but never invents counts, and a quiescent read is exact.
type Counter struct {
	base  atomic.Int64 // zero-value (unstriped) fallback cell
	cells []cell       // stripes; length is a power of two when non-empty
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	if cs := c.cells; len(cs) != 0 {
		cs[stripeIndex()&uint64(len(cs)-1)].n.Add(n)
		return
	}
	c.base.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil), summing all stripes.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	total := c.base.Load()
	for i := range c.cells {
		total += c.cells[i].n.Load()
	}
	return total
}

// Gauge is an atomic float64 cell. All methods are safe on nil.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta to the gauge with a CAS loop.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram of float64 observations. A value v
// lands in the first bucket with v <= bound; values above every bound land
// in the +Inf overflow bucket. All methods are safe on nil.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // strictly increasing upper bounds, may be empty
	counts []uint64  // len(bounds)+1; last is the overflow bucket
	count  uint64
	sum    float64
	min    float64
	max    float64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	// Drop duplicates and non-finite bounds; +Inf is implicit.
	out := bs[:0]
	for _, b := range bs {
		if math.IsInf(b, 0) || math.IsNaN(b) {
			continue
		}
		if len(out) > 0 && out[len(out)-1] == b {
			continue
		}
		out = append(out, b)
	}
	return &Histogram{bounds: out, counts: make([]uint64, len(out)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if h.count == 1 || v > h.max {
		h.max = v
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket counts:
// the target rank is located in its bucket cumulatively, then interpolated
// linearly between the bucket's bounds. The overflow bucket and the edges
// are clamped to the observed [min, max], so estimates never leave the
// observed range. Returns 0 on nil or before any observation.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

// quantileLocked is Quantile with h.mu held.
func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	// rank is the 1-based observation index the quantile falls on (nearest
	// rank with interpolation below).
	rank := q * float64(h.count)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		// The quantile lands in bucket i, spanning (lo, hi].
		lo := h.min
		if i > 0 {
			lo = h.bounds[i-1]
		}
		var hi float64
		if i < len(h.bounds) {
			hi = h.bounds[i]
		} else {
			hi = h.max // overflow bucket: cap at the observed maximum
		}
		if lo < h.min {
			lo = h.min
		}
		if hi > h.max {
			hi = h.max
		}
		if hi < lo {
			hi = lo
		}
		v := lo + (hi-lo)*((rank-prev)/float64(c))
		return v
	}
	return h.max
}

// Bucket is one histogram bucket in a snapshot. LE is the bucket's upper
// bound rendered as the shortest round-trip decimal, "+Inf" for the overflow
// bucket. Counts are per-bucket, not cumulative.
type Bucket struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is the frozen state of one histogram. P50/P95/P99 are
// bucket-interpolated quantile estimates (see Histogram.Quantile); like every
// other field they render deterministically, so snapshot JSON stays
// byte-stable for identical contents.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	Mean    float64  `json:"mean"`
	P50     float64  `json:"p50"`
	P95     float64  `json:"p95"`
	P99     float64  `json:"p99"`
	Buckets []Bucket `json:"buckets"`
}

// Snapshot is the frozen state of a whole registry. Its JSON encoding is
// byte-stable for identical contents: object keys come from sorted Go maps.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot freezes the registry's current state. On a nil registry it
// returns an empty (but non-nil-map) snapshot. Scoped views snapshot the
// whole shared registry, names fully prefixed.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	root := r.root
	root.mu.Lock()
	defer root.mu.Unlock()
	for name, c := range root.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range root.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range root.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	hs := HistogramSnapshot{
		Count:   h.count,
		Sum:     h.sum,
		Min:     h.min,
		Max:     h.max,
		Buckets: make([]Bucket, len(h.counts)),
	}
	if h.count > 0 {
		hs.Mean = h.sum / float64(h.count)
		hs.P50 = h.quantileLocked(0.50)
		hs.P95 = h.quantileLocked(0.95)
		hs.P99 = h.quantileLocked(0.99)
	}
	for i, c := range h.counts {
		le := "+Inf"
		if i < len(h.bounds) {
			le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
		}
		hs.Buckets[i] = Bucket{LE: le, Count: c}
	}
	return hs
}

// WriteJSON writes the snapshot as indented, key-sorted JSON followed by a
// newline.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ExpBuckets returns n exponentially spaced bounds start, start*factor, ...
// for histograms of long-tailed quantities (times, byte counts).
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, 0, n)
	b := start
	for i := 0; i < n; i++ {
		out = append(out, b)
		b *= factor
	}
	return out
}

// LinearBuckets returns n linearly spaced bounds start, start+step, ...
func LinearBuckets(start, step float64, n int) []float64 {
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, start+float64(i)*step)
	}
	return out
}

// PhaseBuckets is the standard bucket layout for phase-count histograms;
// the Section 4 analysis puts expected absorption under 7 phases, so the
// layout resolves that region finely and the tail coarsely.
func PhaseBuckets() []float64 {
	return []float64{1, 2, 3, 4, 5, 6, 7, 10, 15, 25, 50, 100, 1000}
}

// TimeBuckets is the standard bucket layout for wall-clock seconds.
func TimeBuckets() []float64 {
	return ExpBuckets(1e-6, 10, 10) // 1µs .. 10ks
}
