package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a") != c {
		t.Fatal("same name returned a different counter")
	}
	g := r.Gauge("g")
	g.Set(2.5)
	g.Add(1.5)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %v, want 4", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	hs := r.Snapshot().Histograms["h"]
	if hs.Count != 5 || hs.Min != 0.5 || hs.Max != 100 {
		t.Fatalf("summary = %+v", hs)
	}
	want := []uint64{2, 1, 1, 1} // le=1: {0.5, 1}; le=2: {1.5}; le=4: {3}; +Inf: {100}
	for i, b := range hs.Buckets {
		if b.Count != want[i] {
			t.Fatalf("bucket %d (le=%s) count = %d, want %d", i, b.LE, b.Count, want[i])
		}
	}
	if hs.Buckets[len(hs.Buckets)-1].LE != "+Inf" {
		t.Fatalf("overflow bucket labelled %q", hs.Buckets[len(hs.Buckets)-1].LE)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", LinearBuckets(10, 10, 10)) // 10, 20, ..., 100
	// 100 observations uniformly spread at 1..100: quantile estimates must
	// interpolate to within one bucket width of the exact order statistics.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	for _, tc := range []struct {
		q, want, tol float64
	}{
		{0.50, 50, 10},
		{0.95, 95, 10},
		{0.99, 99, 10},
		{0, 1, 0},
		{1, 100, 0},
	} {
		got := h.Quantile(tc.q)
		if got < tc.want-tc.tol || got > tc.want+tc.tol {
			t.Errorf("Quantile(%v) = %v, want %v±%v", tc.q, got, tc.want, tc.tol)
		}
	}
	hs := r.Snapshot().Histograms["lat"]
	if hs.P50 != h.Quantile(0.50) || hs.P95 != h.Quantile(0.95) || hs.P99 != h.Quantile(0.99) {
		t.Fatalf("snapshot percentiles %v/%v/%v disagree with Quantile", hs.P50, hs.P95, hs.P99)
	}
	// Estimates are clamped to the observed range, including in the overflow
	// bucket: a histogram whose observations all land above the last bound
	// still reports finite percentiles.
	over := r.Histogram("over", []float64{1})
	over.Observe(5)
	over.Observe(7)
	if got := over.Quantile(0.99); got < 5 || got > 7 {
		t.Fatalf("overflow-bucket quantile = %v, want within [5, 7]", got)
	}
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram Quantile must be 0")
	}
	if empty := r.Histogram("empty", []float64{1}); empty.Quantile(0.5) != 0 {
		t.Fatal("empty histogram Quantile must be 0")
	}
}

func TestNilRegistryIsFree(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []float64{1})
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	// All no-ops; must not panic.
	c.Inc()
	c.Add(10)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if r.Scoped("pre.") != nil {
		t.Fatal("Scoped(nil) must stay nil")
	}
	s := r.Snapshot()
	if s == nil || len(s.Counters) != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
	if n := testing.AllocsPerRun(100, func() { c.Add(1); h.Observe(1) }); n != 0 {
		t.Fatalf("nil instrument ops allocate %v times per run", n)
	}
}

func TestScopedSharesRoot(t *testing.T) {
	r := NewRegistry()
	sub := r.Scoped("engine.")
	sub.Counter("runs").Inc()
	sub.Scoped("inner.").Counter("x").Add(2)
	s := r.Snapshot()
	if s.Counters["engine.runs"] != 1 {
		t.Fatalf("scoped counter missing: %+v", s.Counters)
	}
	if s.Counters["engine.inner.x"] != 2 {
		t.Fatalf("nested scope counter missing: %+v", s.Counters)
	}
	if r.Counter("engine.runs") != sub.Counter("runs") {
		t.Fatal("scope and root must share the counter")
	}
}

// TestContention hammers one registry from parallel writers; run with -race.
func TestContention(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	const workers = 16
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 0xc0))
			scope := r.Scoped(fmt.Sprintf("w%d.", w%4))
			c := r.Counter("shared")
			h := r.Histogram("hist", []float64{1, 10, 100})
			g := r.Gauge("gauge")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				scope.Counter("own").Inc()
				h.Observe(rng.Float64() * 200)
				g.Add(1)
				if i%500 == 0 {
					_ = r.Snapshot() // concurrent reads must be safe too
				}
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counters["shared"]; got != workers*perWorker {
		t.Fatalf("shared counter = %d, want %d", got, workers*perWorker)
	}
	var scoped int64
	for i := 0; i < 4; i++ {
		scoped += s.Counters[fmt.Sprintf("w%d.own", i)]
	}
	if scoped != workers*perWorker {
		t.Fatalf("scoped counters sum = %d, want %d", scoped, workers*perWorker)
	}
	if s.Histograms["hist"].Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", s.Histograms["hist"].Count, workers*perWorker)
	}
	if g := s.Gauges["gauge"]; g != workers*perWorker {
		t.Fatalf("gauge = %v, want %d", g, workers*perWorker)
	}
}

// fillDeterministic populates a registry with a fixed-seed workload.
func fillDeterministic(seed uint64) *Registry {
	r := NewRegistry()
	rng := rand.New(rand.NewPCG(seed, 0xfeed))
	h := r.Histogram("run.phases", PhaseBuckets())
	tb := r.Histogram("run.seconds", TimeBuckets())
	for i := 0; i < 500; i++ {
		r.Counter("messages_sent").Add(int64(rng.IntN(100)))
		r.Counter("decisions").Inc()
		h.Observe(float64(1 + rng.IntN(12)))
		tb.Observe(rng.Float64() / 100)
	}
	r.Gauge("last_seed").Set(float64(seed))
	return r
}

// TestSnapshotJSONByteStable is the golden test: the same seeded workload
// must serialize to byte-identical JSON, independent of map iteration order
// or the order metrics were touched in.
func TestSnapshotJSONByteStable(t *testing.T) {
	var first []byte
	for i := 0; i < 5; i++ {
		var buf bytes.Buffer
		if err := fillDeterministic(42).Snapshot().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = append([]byte(nil), buf.Bytes()...)
			continue
		}
		if !bytes.Equal(first, buf.Bytes()) {
			t.Fatalf("snapshot JSON not byte-stable:\nfirst:\n%s\nrun %d:\n%s", first, i, buf.Bytes())
		}
	}
	// The JSON must be valid and key-sorted at the top level.
	var m map[string]json.RawMessage
	if err := json.Unmarshal(first, &m); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	for _, key := range []string{"counters", "gauges", "histograms"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("snapshot missing %q section:\n%s", key, first)
		}
	}
	if !json.Valid(first) {
		t.Fatal("invalid JSON")
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i, v := range want {
		if exp[i] != v {
			t.Fatalf("ExpBuckets = %v", exp)
		}
	}
	lin := LinearBuckets(0, 5, 3)
	want = []float64{0, 5, 10}
	for i, v := range want {
		if lin[i] != v {
			t.Fatalf("LinearBuckets = %v", lin)
		}
	}
	// Histogram construction must survive unsorted, duplicated bounds.
	r := NewRegistry()
	h := r.Histogram("h", []float64{4, 1, 2, 2})
	h.Observe(3)
	hs := r.Snapshot().Histograms["h"]
	if len(hs.Buckets) != 4 { // 1, 2, 4, +Inf
		t.Fatalf("buckets = %+v", hs.Buckets)
	}
	if hs.Buckets[2].Count != 1 {
		t.Fatalf("value 3 should land in le=4: %+v", hs.Buckets)
	}
}
