package metrics

import (
	"bytes"
	"sync"
	"testing"
)

func TestStripedCounterExactUnderConcurrency(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	c := r.Counter("striped")
	if len(c.cells) != stripeCount {
		t.Fatalf("registry counter has %d cells, want %d", len(c.cells), stripeCount)
	}
	const workers = 32
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("striped counter = %d, want %d", got, workers*perWorker)
	}
}

func TestStripeCountIsPowerOfTwo(t *testing.T) {
	if stripeCount < 1 || stripeCount&(stripeCount-1) != 0 {
		t.Fatalf("stripeCount = %d, want a power of two", stripeCount)
	}
}

func TestZeroValueCounterStillWorks(t *testing.T) {
	// A Counter constructed outside the registry has no stripes and must
	// fall back to the base cell.
	var c Counter
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("zero-value counter = %d, want 4", got)
	}
}

func TestStripedCounterSnapshotShapeUnchanged(t *testing.T) {
	// Striping is invisible in the snapshot: a counter still renders as one
	// int64 under its name.
	r := NewRegistry()
	r.Counter("a.b").Add(7)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want := "\"a.b\": 7"
	if !bytes.Contains(buf.Bytes(), []byte(want)) {
		t.Fatalf("snapshot missing %q:\n%s", want, buf.Bytes())
	}
}

func TestStripeIndexSpreadsGoroutines(t *testing.T) {
	// Distinct goroutines should not all collapse onto one stripe. The hash
	// is probabilistic, so only require more than one distinct cell across
	// many goroutines (with 64 goroutines and >= 8 stripes, a single-cell
	// outcome indicates a broken hash).
	r := NewRegistry()
	c := r.Counter("spread")
	const goroutines = 64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Add(1)
		}()
	}
	wg.Wait()
	used := 0
	for i := range c.cells {
		if c.cells[i].n.Load() > 0 {
			used++
		}
	}
	if used < 2 {
		t.Errorf("all %d goroutines landed on %d stripe(s)", goroutines, used)
	}
	if got := c.Value(); got != goroutines {
		t.Fatalf("sum over stripes = %d, want %d", got, goroutines)
	}
}
