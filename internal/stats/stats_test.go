package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Errorf("N = %d", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Errorf("mean %v", a.Mean())
	}
	// Population sd is 2; sample variance = 32/7.
	if math.Abs(a.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("variance %v", a.Variance())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("min %v max %v", a.Min(), a.Max())
	}
}

func TestAccumulatorZeroAndOneSample(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.StdErr() != 0 {
		t.Error("zero-value accumulator not zero")
	}
	a.Add(3)
	if a.Mean() != 3 || a.Variance() != 0 {
		t.Error("single sample wrong")
	}
}

func TestAccumulatorMatchesNaiveComputation(t *testing.T) {
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				continue
			}
			clean = append(clean, x)
		}
		if len(clean) < 2 {
			return true
		}
		var a Accumulator
		sum := 0.0
		for _, x := range clean {
			a.Add(x)
			sum += x
		}
		mean := sum / float64(len(clean))
		var ss float64
		for _, x := range clean {
			ss += (x - mean) * (x - mean)
		}
		v := ss / float64(len(clean)-1)
		scale := math.Max(1, math.Abs(mean))
		return math.Abs(a.Mean()-mean) < 1e-8*scale &&
			math.Abs(a.Variance()-v) < 1e-6*math.Max(1, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSummaryString(t *testing.T) {
	var a Accumulator
	a.Add(1)
	a.Add(2)
	if s := a.Summarize().String(); s == "" {
		t.Error("empty summary")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 9 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 5 {
		t.Errorf("median = %v", q)
	}
	if q := Quantile(xs, 0.25); q != 3 {
		t.Errorf("q25 = %v", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	// Out-of-range q clamps.
	if Quantile(xs, -1) != 1 || Quantile(xs, 2) != 9 {
		t.Error("clamping wrong")
	}
	// Input not modified.
	if xs[0] != 9 {
		t.Error("input mutated")
	}
}

func TestIntHistogram(t *testing.T) {
	h := NewIntHistogram()
	for _, v := range []int{3, 3, 5, 2, 3} {
		h.Add(v)
	}
	if h.Total() != 5 || h.Count(3) != 3 || h.Count(9) != 0 {
		t.Error("counts wrong")
	}
	if got := h.Keys(); len(got) != 3 || got[0] != 2 || got[2] != 5 {
		t.Errorf("keys %v", got)
	}
	if h.Fraction(3) != 0.6 {
		t.Errorf("fraction %v", h.Fraction(3))
	}
	if math.Abs(h.Mean()-3.2) > 1e-12 {
		t.Errorf("mean %v", h.Mean())
	}
	if h.Max() != 5 {
		t.Errorf("max %v", h.Max())
	}
	if h.String() != "2:1 3:3 5:1" {
		t.Errorf("string %q", h.String())
	}
}

func TestIntHistogramEmpty(t *testing.T) {
	h := NewIntHistogram()
	if h.Mean() != 0 || h.Max() != 0 || h.Fraction(1) != 0 || h.String() != "" {
		t.Error("empty histogram not neutral")
	}
}
