// Package stats provides the summary statistics used by the experiment
// harness: online mean/variance accumulation (Welford), normal-approximation
// confidence intervals, quantiles, and integer histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Accumulator collects samples and produces summary statistics. The zero
// value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one sample.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of samples recorded.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 with no samples).
func (a *Accumulator) Mean() float64 { return a.mean }

// Min returns the smallest sample (0 with no samples).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest sample (0 with no samples).
func (a *Accumulator) Max() float64 { return a.max }

// Variance returns the unbiased sample variance (0 with fewer than two
// samples).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 {
	return math.Sqrt(a.Variance())
}

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// CI95 returns the half-width of a 95% normal-approximation confidence
// interval for the mean.
func (a *Accumulator) CI95() float64 {
	return 1.96 * a.StdErr()
}

// Summary is an immutable snapshot of an Accumulator.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	CI95   float64
	Min    float64
	Max    float64
}

// Summarize snapshots the accumulator.
func (a *Accumulator) Summarize() Summary {
	return Summary{
		N:      a.n,
		Mean:   a.mean,
		StdDev: a.StdDev(),
		CI95:   a.CI95(),
		Min:    a.min,
		Max:    a.max,
	}
}

// String renders the summary as "mean ± ci95 (min..max, n)".
func (s Summary) String() string {
	return fmt.Sprintf("%.3f ± %.3f (min %.0f, max %.0f, n=%d)",
		s.Mean, s.CI95, s.Min, s.Max, s.N)
}

// Quantile returns the q-th quantile (0 <= q <= 1) of the samples using
// linear interpolation. The input slice is not modified.
func Quantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// IntHistogram counts occurrences of small non-negative integers, such as
// phases-to-decision.
type IntHistogram struct {
	counts map[int]int
	total  int
}

// NewIntHistogram returns an empty histogram.
func NewIntHistogram() *IntHistogram {
	return &IntHistogram{counts: make(map[int]int)}
}

// Add records one observation.
func (h *IntHistogram) Add(v int) {
	h.counts[v]++
	h.total++
}

// Count returns how many times v was observed.
func (h *IntHistogram) Count(v int) int { return h.counts[v] }

// Total returns the number of observations.
func (h *IntHistogram) Total() int { return h.total }

// Keys returns the observed values in ascending order.
func (h *IntHistogram) Keys() []int {
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Fraction returns the empirical probability of v.
func (h *IntHistogram) Fraction(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[v]) / float64(h.total)
}

// Mean returns the mean of the observations.
func (h *IntHistogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	sum := 0.0
	for v, c := range h.counts {
		sum += float64(v) * float64(c)
	}
	return sum / float64(h.total)
}

// Max returns the largest observed value (0 when empty).
func (h *IntHistogram) Max() int {
	max := 0
	first := true
	for v := range h.counts {
		if first || v > max {
			max = v
			first = false
		}
	}
	return max
}

// String renders the histogram as "v:count v:count ...".
func (h *IntHistogram) String() string {
	var b strings.Builder
	for i, k := range h.Keys() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", k, h.counts[k])
	}
	return b.String()
}
