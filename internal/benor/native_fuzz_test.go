package benor_test

import (
	"math/rand/v2"
	"testing"

	"resilient/internal/benor"
	"resilient/internal/core"
	"resilient/internal/machinetest"
	"resilient/internal/msg"
)

// FuzzMachine is the native fuzz entry point (CI runs it with -fuzztime):
// both Ben-Or modes under mutated configurations and hostile streams.
func FuzzMachine(f *testing.F) {
	f.Add(uint64(1), uint8(7), uint8(3), uint8(0), false)
	f.Add(uint64(11), uint8(11), uint8(2), uint8(5), true)
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, kRaw, selfRaw uint8, byz bool) {
		n := 4 + int(nRaw)%9
		mode := benor.Crash
		maxK := (n - 1) / 2
		if byz {
			mode = benor.Byzantine
			maxK = (n - 1) / 5
		}
		k := int(kRaw) % (maxK + 1)
		self := msg.ID(int(selfRaw) % n)
		m, err := benor.New(core.Config{
			N: n, K: k, Self: self, Input: msg.Value(int(seed) % 2),
		}, mode, rand.New(rand.NewPCG(seed, 7)), nil)
		if err != nil {
			t.Skipf("config n=%d k=%d rejected: %v", n, k, err)
		}
		rng := rand.New(rand.NewPCG(seed, 0xbe4f))
		if err := machinetest.Fuzz(m, rng, machinetest.Options{N: n, Steps: 800}); err != nil {
			t.Fatalf("seed %d (n=%d k=%d byz=%v): %v", seed, n, k, byz, err)
		}
	})
}
