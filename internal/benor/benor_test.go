package benor

import (
	"math/rand/v2"
	"testing"

	"resilient/internal/core"
	"resilient/internal/msg"
)

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed+1)) }

func cfg(n, k int, self msg.ID, input msg.Value) core.Config {
	return core.Config{N: n, K: k, Self: self, Input: input}
}

func mustNew(t *testing.T, c core.Config, mode Mode) *Machine {
	t.Helper()
	m, err := New(c, mode, rng(uint64(c.Self)+7), nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidates(t *testing.T) {
	if _, err := New(cfg(7, 3, 0, msg.V0), Crash, rng(1), nil); err != nil {
		t.Errorf("valid crash config rejected: %v", err)
	}
	if _, err := New(cfg(7, 4, 0, msg.V0), Crash, rng(1), nil); err == nil {
		t.Error("k beyond crash bound accepted")
	}
	if _, err := New(cfg(11, 2, 0, msg.V0), Byzantine, rng(1), nil); err != nil {
		t.Errorf("valid byzantine config rejected: %v", err)
	}
	if _, err := New(cfg(10, 2, 0, msg.V0), Byzantine, rng(1), nil); err == nil {
		t.Error("5k = n accepted for byzantine mode")
	}
	if _, err := New(cfg(7, 1, 0, msg.V0), Crash, nil, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := New(cfg(7, 1, 0, msg.V0), Mode(9), rng(1), nil); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestStartSendsRoundZeroReport(t *testing.T) {
	m := mustNew(t, cfg(5, 1, 2, msg.V1), Crash)
	outs := m.Start()
	if len(outs) != 1 || outs[0].Msg.Kind != msg.KindBenOrReport ||
		outs[0].Msg.Phase != 0 || outs[0].Msg.Value != msg.V1 {
		t.Fatalf("start %+v", outs)
	}
}

func TestUnanimousDecidesInRoundZero(t *testing.T) {
	// n=5, t=1: wait 4. All report 1 -> propose 1; all propose 1 -> > t
	// proposals -> decide in round 0.
	m := mustNew(t, cfg(5, 1, 0, msg.V1), Crash)
	m.Start()
	for s := 0; s < 4; s++ {
		m.OnMessage(msg.BenOrReport(msg.ID(s), 0, msg.V1))
	}
	// Now in step 2; feed 4 proposals for 1.
	for s := 0; s < 4; s++ {
		m.OnMessage(msg.BenOrProposal(msg.ID(s), 0, msg.V1, false))
	}
	if v, ok := m.Decided(); !ok || v != msg.V1 {
		t.Fatalf("decided (%d, %v)", v, ok)
	}
}

func TestNoMajorityProposesBot(t *testing.T) {
	m := mustNew(t, cfg(5, 1, 0, msg.V0), Crash)
	m.Start()
	var outs []core.Outbound
	vals := []msg.Value{1, 1, 0, 0}
	for s, v := range vals {
		outs = append(outs, m.OnMessage(msg.BenOrReport(msg.ID(s), 0, v))...)
	}
	if len(outs) != 1 || !outs[0].Msg.Bot {
		t.Fatalf("split reports should propose ?: %+v", outs)
	}
}

func TestAdoptFromSingleProposalCrash(t *testing.T) {
	m := mustNew(t, cfg(5, 1, 0, msg.V0), Crash)
	m.Start()
	for s := 0; s < 4; s++ {
		v := msg.V0
		if s < 2 {
			v = msg.V1
		}
		m.OnMessage(msg.BenOrReport(msg.ID(s), 0, v))
	}
	// One real proposal for 1 among bots: adopt 1, do not decide.
	m.OnMessage(msg.BenOrProposal(0, 0, msg.V1, false))
	m.OnMessage(msg.BenOrProposal(1, 0, msg.V0, true))
	m.OnMessage(msg.BenOrProposal(2, 0, msg.V0, true))
	outs := m.OnMessage(msg.BenOrProposal(3, 0, msg.V0, true))
	if _, ok := m.Decided(); ok {
		t.Fatal("decided from one proposal")
	}
	if m.CurrentValue() != msg.V1 {
		t.Errorf("adopted %d, want 1", m.CurrentValue())
	}
	if m.Phase() != 1 {
		t.Errorf("round %d", m.Phase())
	}
	// The next round's report must be sent.
	if len(outs) != 1 || outs[0].Msg.Kind != msg.KindBenOrReport || outs[0].Msg.Phase != 1 {
		t.Errorf("round-1 report missing: %+v", outs)
	}
}

func TestDuplicateSendersIgnored(t *testing.T) {
	m := mustNew(t, cfg(5, 1, 0, msg.V0), Crash)
	m.Start()
	for i := 0; i < 10; i++ {
		m.OnMessage(msg.BenOrReport(1, 0, msg.V1))
	}
	if m.Phase() != 0 {
		t.Fatal("duplicates advanced the round")
	}
}

func TestEarlyProposalBuffered(t *testing.T) {
	m := mustNew(t, cfg(5, 1, 0, msg.V0), Crash)
	m.Start()
	// Proposals for round 0 arrive before reports complete.
	m.OnMessage(msg.BenOrProposal(0, 0, msg.V1, false))
	m.OnMessage(msg.BenOrProposal(1, 0, msg.V1, false))
	if m.Phase() != 0 {
		t.Fatal("early proposals advanced")
	}
	for s := 0; s < 4; s++ {
		m.OnMessage(msg.BenOrReport(msg.ID(s), 0, msg.V1))
	}
	// Buffered proposals replay; two more finish step 2.
	m.OnMessage(msg.BenOrProposal(2, 0, msg.V1, false))
	m.OnMessage(msg.BenOrProposal(3, 0, msg.V1, false))
	if v, ok := m.Decided(); !ok || v != msg.V1 {
		t.Fatalf("decided (%d, %v) after buffered replay", v, ok)
	}
}

func TestByzantineThresholds(t *testing.T) {
	// n=11, t=2: wait 9; propose needs > 6.5 -> 7; adopt needs >= 3;
	// decide needs > 6.5 -> 7.
	m := mustNew(t, cfg(11, 2, 0, msg.V0), Byzantine)
	m.Start()
	for s := 0; s < 9; s++ {
		v := msg.V1
		if s >= 7 {
			v = msg.V0
		}
		m.OnMessage(msg.BenOrReport(msg.ID(s), 0, v))
	}
	// 7 ones -> proposes 1. Feed 3 proposals for 1, 6 bot: adopt, no decide.
	for s := 0; s < 3; s++ {
		m.OnMessage(msg.BenOrProposal(msg.ID(s), 0, msg.V1, false))
	}
	for s := 3; s < 9; s++ {
		m.OnMessage(msg.BenOrProposal(msg.ID(s), 0, msg.V0, true))
	}
	if _, ok := m.Decided(); ok {
		t.Fatal("decided below byzantine decide threshold")
	}
	if m.CurrentValue() != msg.V1 {
		t.Errorf("adopt threshold not applied: %d", m.CurrentValue())
	}
	// Two proposals only (below adopt threshold 3) in round 1: coin flips;
	// just verify no panic and round advances on 9 proposals.
	for s := 0; s < 9; s++ {
		m.OnMessage(msg.BenOrReport(msg.ID(s), 1, msg.Value(s%2)))
	}
	for s := 0; s < 9; s++ {
		m.OnMessage(msg.BenOrProposal(msg.ID(s), 1, msg.V0, true))
	}
	if m.Phase() != 2 {
		t.Errorf("round %d after two full rounds", m.Phase())
	}
}

func TestDecidedProcessLingersThenHalts(t *testing.T) {
	m := mustNew(t, cfg(5, 1, 0, msg.V1), Crash)
	m.Start()
	driveUnanimousRound := func(round msg.Phase) {
		for s := 0; s < 4; s++ {
			m.OnMessage(msg.BenOrReport(msg.ID(s), round, msg.V1))
		}
		for s := 0; s < 4; s++ {
			m.OnMessage(msg.BenOrProposal(msg.ID(s), round, msg.V1, false))
		}
	}
	driveUnanimousRound(0)
	if _, ok := m.Decided(); !ok {
		t.Fatal("not decided")
	}
	if m.Halted() {
		t.Fatal("halted without lingering")
	}
	driveUnanimousRound(1)
	driveUnanimousRound(2)
	if !m.Halted() {
		t.Fatalf("still running after linger rounds (round %d)", m.Phase())
	}
}

func TestCoinIsSeededDeterministic(t *testing.T) {
	run := func() msg.Value {
		m, err := New(cfg(5, 1, 0, msg.V0), Crash, rng(42), nil)
		if err != nil {
			t.Fatal(err)
		}
		m.Start()
		for s := 0; s < 4; s++ {
			m.OnMessage(msg.BenOrReport(msg.ID(s), 0, msg.Value(s%2)))
		}
		for s := 0; s < 4; s++ {
			m.OnMessage(msg.BenOrProposal(msg.ID(s), 0, msg.V0, true))
		}
		return m.CurrentValue() // coin outcome
	}
	if run() != run() {
		t.Error("same seed, different coin")
	}
}
