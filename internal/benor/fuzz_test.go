package benor_test

import (
	"math/rand/v2"
	"testing"

	"resilient/internal/benor"
	"resilient/internal/core"
	"resilient/internal/machinetest"
	"resilient/internal/msg"
)

// TestFuzzInvariants floods Ben-Or machines with hostile streams.
func TestFuzzInvariants(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewPCG(seed, 0xbe40))
		n := 4 + rng.IntN(8)
		k := rng.IntN((n-1)/2 + 1)
		m, err := benor.New(core.Config{
			N: n, K: k, Self: msg.ID(rng.IntN(n)), Input: msg.Value(rng.IntN(2)),
		}, benor.Crash, rand.New(rand.NewPCG(seed, 7)), nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := machinetest.Fuzz(m, rng, machinetest.Options{N: n, Steps: 2500}); err != nil {
			t.Fatalf("seed %d (n=%d k=%d): %v", seed, n, k, err)
		}
	}
}

// TestFuzzDialect restricts to report/proposal messages.
func TestFuzzDialect(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewPCG(seed, 0xbe41))
		n := 4 + rng.IntN(8)
		k := rng.IntN((n-1)/2 + 1)
		m, err := benor.New(core.Config{
			N: n, K: k, Self: 0, Input: msg.Value(rng.IntN(2)),
		}, benor.Crash, rand.New(rand.NewPCG(seed, 8)), nil)
		if err != nil {
			t.Fatal(err)
		}
		err = machinetest.Fuzz(m, rng, machinetest.Options{
			N: n, Steps: 2500,
			Kinds: []msg.Kind{msg.KindBenOrReport, msg.KindBenOrProposal}, MaxPhase: 10,
		})
		if err != nil {
			t.Fatalf("seed %d (n=%d k=%d): %v", seed, n, k, err)
		}
	}
}
