package benor

import (
	"resilient/internal/coin"
	"resilient/internal/core"
	"resilient/internal/proto"
	"resilient/internal/quorum"
)

// spawnMode builds the registry spawner for one Ben-Or mode; the coin
// source (local or shared per the descriptor) arrives through the deps.
func spawnMode(mode Mode) func(core.Config, proto.Deps) (core.Machine, error) {
	return func(cfg core.Config, deps proto.Deps) (core.Machine, error) {
		return NewWithCoin(cfg, mode, deps.Coin, deps.Sink)
	}
}

func init() {
	proto.Register(proto.Descriptor{
		ID:      proto.BenOrCrash,
		Name:    "benor-crash",
		Aliases: []string{"benor-crash"},
		Model:   quorum.FailStop,
		Bound:   "(n-1)/2",
		Coin:    coin.SchemeLocal,
		Spawn:   spawnMode(Crash),
	})
	proto.Register(proto.Descriptor{
		ID:      proto.BenOrByzantine,
		Name:    "benor-byzantine",
		Aliases: []string{"benor-byzantine"},
		Model:   quorum.Malicious,
		Bound:   "(n-1)/5",
		// Ben-Or's malicious variant needs fast propagation, 5k < n
		// (checked again, with the better error, by NewWithCoin).
		MaxFaults: func(n int) int { return (n - 1) / 5 },
		Coin:      coin.SchemeLocal,
		Spawn:     spawnMode(Byzantine),
	})
	proto.Register(proto.Descriptor{
		ID:      proto.BenOrShared,
		Name:    "benor-shared",
		Aliases: []string{"benor-shared"},
		Model:   quorum.FailStop,
		Bound:   "(n-1)/2",
		Coin:    coin.SchemeShared,
		Spawn:   spawnMode(Crash),
	})
}
