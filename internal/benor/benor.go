// Package benor implements Ben-Or's randomized consensus protocol
// ("Another advantage of free choice: Completely asynchronous agreement
// protocols", PODC 1983) -- the [BenO83] baseline the paper compares against
// in its conclusion: a protocol whose randomness lives in the processes
// (local coin flips) rather than in the message system, with exponential
// expected termination time in the fail-stop case and an n/5 resilience
// bound in the malicious case.
//
// Round structure (two steps per round, t = tolerated faults):
//
//	step 1: broadcast (report, r, x); wait for n-t reports.
//	        Crash mode:     if strictly more than n/2 reports carry the same
//	                        v, broadcast (proposal, r, v).
//	        Byzantine mode: the threshold is strictly more than (n+t)/2.
//	        Otherwise broadcast (proposal, r, ?).
//	step 2: wait for n-t proposals.
//	        Crash mode:     decide v on > t proposals for v; adopt v on >= 1.
//	        Byzantine mode: decide v on > (n+t)/2 proposals for v; adopt v
//	                        on >= t+1.
//	        Otherwise set x to a fair local coin flip.
//
// A decided process keeps participating (with its value pinned) for a
// configurable number of linger rounds so that laggards can finish, then
// halts.
package benor

import (
	"fmt"
	"math/rand/v2"

	"resilient/internal/coin"
	"resilient/internal/core"
	"resilient/internal/msg"
	"resilient/internal/quorum"
	"resilient/internal/trace"
)

// Mode selects the fault model (and with it the decision thresholds).
type Mode int

const (
	// Crash is Ben-Or's protocol for fail-stop faults, t < n/2.
	Crash Mode = iota + 1
	// Byzantine is Ben-Or's protocol for malicious faults, 5t < n.
	Byzantine
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Crash:
		return "crash"
	case Byzantine:
		return "byzantine"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// DefaultLinger is the number of rounds a decided process keeps
// participating before halting; two rounds suffice for every correct
// process to decide once the first one has.
const DefaultLinger = 2

type seenKey struct {
	sender msg.ID
	kind   msg.Kind
	round  msg.Phase
}

type pendKey struct {
	round msg.Phase
	kind  msg.Kind
}

// Machine is a Ben-Or protocol instance at one process.
type Machine struct {
	cfg  core.Config
	mode Mode
	coin coin.Source
	sink trace.Sink

	value msg.Value
	round msg.Phase
	step  int // 1 = collecting reports, 2 = collecting proposals

	reportCount [2]int
	propCount   [2]int
	botCount    int

	seen    map[seenKey]bool
	pending map[pendKey][]msg.Message

	started    bool
	decided    bool
	decision   msg.Value
	halted     bool
	lingerLeft int
}

var (
	_ core.Machine       = (*Machine)(nil)
	_ core.ValueReporter = (*Machine)(nil)
)

// New returns a Ben-Or machine with the classic process-local coin. rng
// drives the coin and must not be shared with other machines. sink may be
// nil. It is NewWithCoin over coin.NewLocal(rng), which draws the exact
// variates the pre-seam machine drew directly from rng.
func New(cfg core.Config, mode Mode, rng *rand.Rand, sink trace.Sink) (*Machine, error) {
	if rng == nil {
		return nil, fmt.Errorf("benor: nil rng (the protocol's coin needs one)")
	}
	return NewWithCoin(cfg, mode, coin.NewLocal(rng), sink)
}

// NewWithCoin returns a Ben-Or machine drawing its free choices from src:
// a per-process coin.Local reproduces [BenO83], a run-wide coin.Shared
// gives the common-coin variant with constant expected phases. src must
// not be nil; sink may be nil.
func NewWithCoin(cfg core.Config, mode Mode, src coin.Source, sink trace.Sink) (*Machine, error) {
	if src == nil {
		return nil, fmt.Errorf("benor: nil coin source (the protocol's free choice needs one)")
	}
	switch mode {
	case Crash:
		if err := cfg.Validate(quorum.FailStop); err != nil {
			return nil, fmt.Errorf("benor: %w", err)
		}
	case Byzantine:
		if err := cfg.Validate(quorum.Malicious); err != nil {
			return nil, fmt.Errorf("benor: %w", err)
		}
		if !quorum.FastPropagation(cfg.N, cfg.K) {
			return nil, fmt.Errorf("benor: byzantine mode needs 5k < n, got n=%d k=%d", cfg.N, cfg.K)
		}
	default:
		return nil, fmt.Errorf("benor: unknown mode %d", int(mode))
	}
	if sink == nil {
		sink = trace.Nop{}
	}
	return &Machine{
		cfg:        cfg,
		mode:       mode,
		coin:       src,
		sink:       sink,
		value:      cfg.Input,
		step:       1,
		seen:       make(map[seenKey]bool),
		pending:    make(map[pendKey][]msg.Message),
		lingerLeft: DefaultLinger,
	}, nil
}

// ID implements core.Machine.
func (m *Machine) ID() msg.ID { return m.cfg.Self }

// Phase implements core.Machine (the Ben-Or round number).
func (m *Machine) Phase() msg.Phase { return m.round }

// Decided implements core.Machine.
func (m *Machine) Decided() (msg.Value, bool) { return m.decision, m.decided }

// Halted implements core.Machine.
func (m *Machine) Halted() bool { return m.halted }

// CurrentValue implements core.ValueReporter.
func (m *Machine) CurrentValue() msg.Value { return m.value }

// Start broadcasts the round-0 report.
func (m *Machine) Start() []core.Outbound {
	if m.started {
		return nil
	}
	m.started = true
	return []core.Outbound{core.ToAll(msg.BenOrReport(m.cfg.Self, m.round, m.value))}
}

// OnMessage consumes one delivered message.
func (m *Machine) OnMessage(in msg.Message) []core.Outbound {
	if m.halted || !m.started {
		return nil
	}
	switch in.Kind {
	case msg.KindBenOrReport:
		if !in.Value.Valid() {
			return nil // malformed: reports always carry a binary value
		}
	case msg.KindBenOrProposal:
		if !in.Bot && !in.Value.Valid() {
			return nil // malformed: non-"?" proposals carry a binary value
		}
	case msg.KindState, msg.KindValue, msg.KindInitial, msg.KindEcho,
		msg.KindGraph, msg.KindGossip, msg.KindReady:
		return nil // explicitly ignored: other protocols' wire kinds
	default:
		return nil
	}
	var out []core.Outbound
	queue := []msg.Message{in}
	for len(queue) > 0 && !m.halted {
		cur := queue[0]
		queue = queue[1:]
		switch m.classify(cur) {
		case dropMsg:
		case bufferMsg:
			pk := pendKey{round: cur.Phase, kind: cur.Kind}
			m.pending[pk] = append(m.pending[pk], cur)
		default:
			sk := seenKey{sender: cur.From, kind: cur.Kind, round: cur.Phase}
			if !m.seen[sk] {
				m.seen[sk] = true
				out = append(out, m.count(cur)...)
			}
		}
		// Always re-check the buffer: a step or round transition may have
		// made previously buffered messages applicable.
		if !m.halted {
			pk := pendKey{round: m.round, kind: m.expectedKind()}
			if buf := m.pending[pk]; len(buf) > 0 {
				queue = append(queue, buf...)
				delete(m.pending, pk)
			}
		}
	}
	return out
}

type disposition int

const (
	processMsg disposition = iota
	bufferMsg
	dropMsg
)

func (m *Machine) classify(in msg.Message) disposition {
	switch {
	case in.Phase < m.round:
		return dropMsg
	case in.Phase > m.round:
		return bufferMsg
	}
	// Same round: reports belong to step 1, proposals to step 2.
	if in.Kind == m.expectedKind() {
		return processMsg
	}
	if in.Kind == msg.KindBenOrProposal && m.step == 1 {
		return bufferMsg // proposal from a faster process; hold for step 2
	}
	return dropMsg // late report while already in step 2
}

func (m *Machine) expectedKind() msg.Kind {
	if m.step == 1 {
		return msg.KindBenOrReport
	}
	return msg.KindBenOrProposal
}

func (m *Machine) count(in msg.Message) []core.Outbound {
	nk := quorum.WaitCount(m.cfg.N, m.cfg.K)
	if m.step == 1 {
		m.reportCount[in.Value]++
		if m.reportCount[0]+m.reportCount[1] < nk {
			return nil
		}
		return m.endStep1()
	}
	if in.Bot {
		m.botCount++
	} else {
		m.propCount[in.Value]++
	}
	if m.propCount[0]+m.propCount[1]+m.botCount < nk {
		return nil
	}
	return m.endStep2()
}

// endStep1 closes the report-collection step: propose the majority value if
// its support crosses the mode's proposal threshold, otherwise propose "?".
// In crash mode the threshold is a strict majority of all n processes (two
// conflicting proposals would need more than n reports in total); in
// Byzantine mode it is strictly more than (n+t)/2, so that even with t
// forged reports a proposal is backed by a strict majority of correct ones.
func (m *Machine) endStep1() []core.Outbound {
	m.step = 2
	for _, v := range []msg.Value{msg.V0, msg.V1} {
		ok := false
		if m.mode == Crash {
			ok = quorum.ExceedsHalf(m.reportCount[v], m.cfg.N)
		} else {
			ok = quorum.ExceedsHalfNPlusK(m.reportCount[v], m.cfg.N, m.cfg.K)
		}
		if ok {
			return []core.Outbound{core.ToAll(msg.BenOrProposal(m.cfg.Self, m.round, v, false))}
		}
	}
	return []core.Outbound{core.ToAll(msg.BenOrProposal(m.cfg.Self, m.round, msg.V0, true))}
}

// endStep2 closes the proposal-collection step: decide, adopt, or flip the
// coin; then begin the next round.
func (m *Machine) endStep2() []core.Outbound {
	decideNow := false
	var decideVal msg.Value
	adoptSet := false
	var adoptVal msg.Value
	for _, v := range []msg.Value{msg.V1, msg.V0} { // prefer larger count below
		c := m.propCount[v]
		if m.decideThreshold(c) && (!decideNow || c > m.propCount[decideVal]) {
			decideNow = true
			decideVal = v
		}
		if m.adoptThreshold(c) && (!adoptSet || c > m.propCount[adoptVal]) {
			adoptSet = true
			adoptVal = v
		}
	}
	switch {
	case m.decided:
		// Already decided in an earlier round: value stays pinned.
	case decideNow:
		m.decided = true
		m.decision = decideVal
		m.value = decideVal
		m.sink.Record(trace.Event{
			Kind: trace.EventDecide, Process: m.cfg.Self, Phase: m.round, Value: decideVal,
		})
	case adoptSet:
		m.value = adoptVal
	default:
		m.value = m.coin.Flip(m.round) // the free choice
	}

	if m.decided {
		if m.lingerLeft == 0 {
			m.halted = true
			m.sink.Record(trace.Event{
				Kind: trace.EventHalt, Process: m.cfg.Self, Phase: m.round, Value: m.decision,
			})
			return nil
		}
		m.lingerLeft--
	}

	m.round++
	m.step = 1
	m.reportCount = [2]int{}
	m.propCount = [2]int{}
	m.botCount = 0
	m.pruneOldRounds()
	m.sink.Record(trace.Event{
		Kind: trace.EventPhase, Process: m.cfg.Self, Phase: m.round, Value: m.value,
	})
	return []core.Outbound{core.ToAll(msg.BenOrReport(m.cfg.Self, m.round, m.value))}
}

func (m *Machine) decideThreshold(c int) bool {
	if m.mode == Crash {
		return c > m.cfg.K
	}
	return quorum.ExceedsHalfNPlusK(c, m.cfg.N, m.cfg.K)
}

func (m *Machine) adoptThreshold(c int) bool {
	if m.mode == Crash {
		return c >= 1
	}
	return c >= m.cfg.K+1
}

func (m *Machine) pruneOldRounds() {
	for k := range m.seen {
		if k.round < m.round {
			delete(m.seen, k)
		}
	}
	for k := range m.pending {
		if k.round < m.round {
			delete(m.pending, k)
		}
	}
}
