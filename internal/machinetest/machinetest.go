// Package machinetest provides a reusable fuzz harness for protocol state
// machines: it feeds a machine long streams of randomized (and partially
// hostile) messages and verifies the model invariants every machine must
// keep regardless of input -- no panic, write-once decisions, monotone
// phases, silence after halt, and bounded per-step output.
//
// It is imported only from the protocol packages' tests.
package machinetest

import (
	"fmt"
	"math/rand/v2"

	"resilient/internal/core"
	"resilient/internal/msg"
)

// Options tunes the fuzz stream.
type Options struct {
	// N is the system size used for random ids.
	N int
	// Steps is the number of messages to deliver.
	Steps int
	// Kinds restricts the generated message kinds; empty means all.
	Kinds []msg.Kind
	// MaxPhase bounds the random phases injected (wildcards included).
	MaxPhase int
}

// Fuzz drives the machine with a randomized message stream and returns an
// error describing the first violated invariant. A panic inside the machine
// is converted into an error.
func Fuzz(m core.Machine, rng *rand.Rand, opts Options) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("machine panicked: %v", r)
		}
	}()
	if opts.N <= 0 {
		opts.N = 5
	}
	if opts.Steps <= 0 {
		opts.Steps = 2000
	}
	if opts.MaxPhase <= 0 {
		opts.MaxPhase = 6
	}
	kinds := opts.Kinds
	if len(kinds) == 0 {
		kinds = []msg.Kind{
			msg.KindState, msg.KindValue, msg.KindInitial, msg.KindEcho,
			msg.KindBenOrReport, msg.KindBenOrProposal, msg.KindGraph,
		}
	}

	var (
		decidedVal msg.Value
		decidedSet bool
		lastPhase  = m.Phase()
		halted     = m.Halted()
	)
	checkStep := func(outs []core.Outbound, step int) error {
		if v, ok := m.Decided(); ok {
			if decidedSet && v != decidedVal {
				return fmt.Errorf("step %d: decision changed from %d to %d", step, decidedVal, v)
			}
			decidedVal, decidedSet = v, true
		} else if decidedSet {
			return fmt.Errorf("step %d: decision revoked", step)
		}
		if p := m.Phase(); !p.IsWildcard() && p < lastPhase {
			return fmt.Errorf("step %d: phase regressed %d -> %d", step, lastPhase, p)
		} else if !p.IsWildcard() {
			lastPhase = p
		}
		if halted && len(outs) > 0 {
			return fmt.Errorf("step %d: halted machine sent %d messages", step, len(outs))
		}
		halted = m.Halted()
		// A single step's output must be finite and modest: each protocol
		// step sends O(n) broadcasts at most.
		if len(outs) > 16*opts.N+16 {
			return fmt.Errorf("step %d: %d outbound messages from one step", step, len(outs))
		}
		return nil
	}

	if err := checkStep(m.Start(), -1); err != nil {
		return err
	}
	for step := 0; step < opts.Steps; step++ {
		in := randomMessage(rng, opts, kinds)
		outs := m.OnMessage(in)
		if err := checkStep(outs, step); err != nil {
			return err
		}
	}
	return nil
}

func randomMessage(rng *rand.Rand, opts Options, kinds []msg.Kind) msg.Message {
	from := msg.ID(rng.IntN(opts.N))
	subject := from
	if rng.IntN(4) == 0 {
		subject = msg.ID(rng.IntN(opts.N)) // occasionally forged
	}
	phase := msg.Phase(rng.IntN(opts.MaxPhase))
	if rng.IntN(10) == 0 {
		phase = msg.WildcardPhase
	}
	value := msg.Value(rng.IntN(2))
	if rng.IntN(20) == 0 {
		value = msg.Value(rng.IntN(256)) // malformed value
	}
	m := msg.Message{
		Kind:        kinds[rng.IntN(len(kinds))],
		From:        from,
		Subject:     subject,
		Phase:       phase,
		Value:       value,
		Cardinality: int32(rng.IntN(opts.N + 2)),
		Bot:         rng.IntN(5) == 0,
	}
	if m.Kind == msg.KindGraph {
		payload := make([]byte, rng.IntN(40))
		for i := range payload {
			payload[i] = byte(rng.IntN(256))
		}
		m.Payload = payload
	}
	return m
}
