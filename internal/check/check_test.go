package check

import (
	"math/rand/v2"
	"testing"

	"resilient/internal/core"
	"resilient/internal/failstop"
	"resilient/internal/faults"
	"resilient/internal/malicious"
	"resilient/internal/msg"
	"resilient/internal/runtime"
	"resilient/internal/trace"
)

func runChecked(t *testing.T, protocol string, n, k int, inputs []msg.Value,
	plan faults.Plan, byz map[msg.ID]bool, seed uint64) []Violation {
	t.Helper()
	buf := trace.NewBuffer(0)
	spawn := func(ctx runtime.SpawnContext) (core.Machine, error) {
		if protocol == "malicious" {
			return malicious.New(ctx.Config, ctx.Sink)
		}
		return failstop.New(ctx.Config, ctx.Sink)
	}
	res, err := runtime.Run(runtime.Config{
		N: n, K: k, Inputs: inputs,
		Spawn:     spawn,
		Crashes:   plan,
		Byzantine: byz,
		Seed:      seed,
		Sink:      buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return Run(Config{
		N: n, K: k, Inputs: inputs, Byzantine: byz, Protocol: protocol,
	}, buf.Events(), res)
}

func TestCleanFailStopRuns(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewPCG(seed, 1))
		inputs := make([]msg.Value, 7)
		for i := range inputs {
			inputs[i] = msg.Value(rng.IntN(2))
		}
		plan := faults.Random(rng, 7, 3, 3)
		if vs := runChecked(t, "failstop", 7, 3, inputs, plan, nil, seed); len(vs) > 0 {
			t.Fatalf("seed %d: violations: %v", seed, vs)
		}
	}
}

func TestCleanMaliciousRuns(t *testing.T) {
	for seed := uint64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewPCG(seed, 2))
		inputs := make([]msg.Value, 7)
		for i := range inputs {
			inputs[i] = msg.Value(rng.IntN(2))
		}
		if vs := runChecked(t, "malicious", 7, 2, inputs, nil, nil, seed); len(vs) > 0 {
			t.Fatalf("seed %d: violations: %v", seed, vs)
		}
	}
}

func TestDetectsDisagreement(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.EventDecide, Process: 0, Phase: 2, Value: msg.V0},
		{Kind: trace.EventDecide, Process: 1, Phase: 2, Value: msg.V1},
	}
	vs := Run(Config{N: 2, K: 0}, events, nil)
	if !hasViolation(vs, "agreement") {
		t.Fatalf("disagreement not detected: %v", vs)
	}
}

func TestDetectsDoubleDecision(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.EventDecide, Process: 0, Phase: 2, Value: msg.V0},
		{Kind: trace.EventDecide, Process: 0, Phase: 3, Value: msg.V1},
	}
	vs := Run(Config{N: 1, K: 0}, events, nil)
	if !hasViolation(vs, "write-once-decision") {
		t.Fatalf("double decision not detected: %v", vs)
	}
}

func TestDetectsPhaseRegression(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.EventPhase, Process: 0, Phase: 3},
		{Kind: trace.EventPhase, Process: 0, Phase: 1},
	}
	vs := Run(Config{N: 1, K: 0}, events, nil)
	if !hasViolation(vs, "phase-monotonicity") {
		t.Fatalf("phase regression not detected: %v", vs)
	}
}

func TestDetectsValidityViolation(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.EventDecide, Process: 0, Phase: 2, Value: msg.V1},
	}
	vs := Run(Config{N: 2, K: 0, Inputs: []msg.Value{0, 0}}, events, nil)
	if !hasViolation(vs, "validity") {
		t.Fatalf("validity violation not detected: %v", vs)
	}
}

func TestDetectsUnsupportedFailStopDecision(t *testing.T) {
	// A decide event with no preceding witnesses.
	events := []trace.Event{
		{Kind: trace.EventDecide, Process: 0, Phase: 2, Value: msg.V1},
	}
	vs := Run(Config{N: 5, K: 2, Protocol: "failstop"}, events, nil)
	if !hasViolation(vs, "decision-support") {
		t.Fatalf("unsupported decision not detected: %v", vs)
	}
}

func TestDetectsUnsupportedMaliciousDecision(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.EventAccept, Process: 0, Phase: 1, Value: msg.V1},
		{Kind: trace.EventAccept, Process: 0, Phase: 1, Value: msg.V1},
		{Kind: trace.EventDecide, Process: 0, Phase: 1, Value: msg.V1},
	}
	// n=7, k=2: needs > 4.5 accepts, only 2 present.
	vs := Run(Config{N: 7, K: 2, Protocol: "malicious"}, events, nil)
	if !hasViolation(vs, "decision-support") {
		t.Fatalf("unsupported decision not detected: %v", vs)
	}
}

func TestDetectsSendAfterCrash(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.EventCrash, Process: 0, Time: 1},
		{Kind: trace.EventSend, Process: 0, Time: 2},
	}
	vs := Run(Config{N: 1, K: 0}, events, nil)
	if !hasViolation(vs, "silence-after-crash") {
		t.Fatalf("zombie send not detected: %v", vs)
	}
}

func TestDetectsTraceResultMismatch(t *testing.T) {
	res := &runtime.Result{Decisions: map[msg.ID]msg.Value{0: msg.V1}}
	vs := Run(Config{N: 1, K: 0}, nil, res)
	if !hasViolation(vs, "trace-consistency") {
		t.Fatalf("mismatch not detected: %v", vs)
	}
}

func TestByzantineExempt(t *testing.T) {
	// A Byzantine process "deciding" a conflicting value is not a
	// violation.
	events := []trace.Event{
		{Kind: trace.EventDecide, Process: 0, Phase: 2, Value: msg.V0},
		{Kind: trace.EventDecide, Process: 1, Phase: 2, Value: msg.V1},
	}
	vs := Run(Config{N: 2, K: 1, Byzantine: map[msg.ID]bool{1: true}}, events, nil)
	if hasViolation(vs, "agreement") {
		t.Fatalf("byzantine decision flagged: %v", vs)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Invariant: "agreement", Process: 3, Detail: "boom"}
	if v.String() == "" {
		t.Error("empty string")
	}
	g := Violation{Invariant: "global", Process: -1, Detail: "boom"}
	if g.String() == "" {
		t.Error("empty global string")
	}
}

func hasViolation(vs []Violation, invariant string) bool {
	for _, v := range vs {
		if v.Invariant == invariant {
			return true
		}
	}
	return false
}
