// Package check is an execution-invariant checker: it consumes a trace and
// a result from the discrete-event engine and verifies the properties the
// paper proves, independently of the protocol implementations themselves.
//
// Checked invariants:
//
//   - agreement: no two correct processes decide different values
//     (consistency, Theorems 2 and 4);
//   - write-once decisions: no process decides twice (the model's d_p);
//   - validity: unanimous correct inputs force that decision;
//   - phase monotonicity: no process's phase ever decreases;
//   - decision support: every Figure-1 decision is preceded by more than k
//     witness events for the decided value at that process, and every
//     Figure-2 decision by more than (n+k)/2 accept events for it;
//   - silence after crash: a fail-stop death is final -- no sends follow
//     a process's crash event. (Sends may legitimately follow a *halt*
//     event within the same atomic step: Figure 1's deciders emit their
//     two final witness rounds as they halt.)
//
// The checker operates purely on trace events, so it also validates the
// engine's bookkeeping, not just the machines'.
package check

import (
	"fmt"

	"resilient/internal/msg"
	"resilient/internal/quorum"
	"resilient/internal/runtime"
	"resilient/internal/trace"
)

// Violation is one broken invariant.
type Violation struct {
	// Invariant names the broken property.
	Invariant string
	// Process is the offending process (or -1 for global properties).
	Process msg.ID
	// Detail explains the violation.
	Detail string
}

// String renders the violation.
func (v Violation) String() string {
	if v.Process < 0 {
		return fmt.Sprintf("%s: %s", v.Invariant, v.Detail)
	}
	return fmt.Sprintf("%s (p%d): %s", v.Invariant, v.Process, v.Detail)
}

// Config describes the checked execution.
type Config struct {
	// N and K are the system parameters.
	N, K int
	// Inputs are the initial values.
	Inputs []msg.Value
	// Byzantine marks processes exempt from correctness invariants.
	Byzantine map[msg.ID]bool
	// Protocol selects protocol-specific support checks: "failstop" checks
	// witness support, "malicious" checks accept support, "" skips them.
	Protocol string
	// SkipValidity disables the unanimous-input validity check, for
	// protocols that decide an agreed bivalent function of the inputs
	// rather than a majority-respecting value (the Section 5 protocol).
	SkipValidity bool
}

// Run checks the invariants over the given trace and result and returns all
// violations found (nil when clean).
func Run(cfg Config, events []trace.Event, res *runtime.Result) []Violation {
	c := &checker{
		cfg:       cfg,
		phases:    make(map[msg.ID]msg.Phase),
		decided:   make(map[msg.ID]msg.Value),
		halted:    make(map[msg.ID]bool),
		crashed:   make(map[msg.ID]bool),
		witnesses: make(map[supportKey]int),
		accepts:   make(map[supportKey]int),
	}
	for _, e := range events {
		c.observe(e)
	}
	c.global(res)
	return c.violations
}

type supportKey struct {
	p     msg.ID
	phase msg.Phase
	value msg.Value
}

type checker struct {
	cfg        Config
	violations []Violation

	phases    map[msg.ID]msg.Phase
	decided   map[msg.ID]msg.Value
	halted    map[msg.ID]bool
	crashed   map[msg.ID]bool
	witnesses map[supportKey]int
	accepts   map[supportKey]int
}

func (c *checker) fail(invariant string, p msg.ID, format string, args ...any) {
	c.violations = append(c.violations, Violation{
		Invariant: invariant,
		Process:   p,
		Detail:    fmt.Sprintf(format, args...),
	})
}

func (c *checker) isByz(p msg.ID) bool { return c.cfg.Byzantine[p] }

func (c *checker) observe(e trace.Event) {
	switch e.Kind {
	case trace.EventPhase:
		if c.isByz(e.Process) {
			return
		}
		if prev, ok := c.phases[e.Process]; ok && e.Phase < prev {
			c.fail("phase-monotonicity", e.Process, "phase %d after %d", e.Phase, prev)
		}
		c.phases[e.Process] = e.Phase
	case trace.EventWitness:
		c.witnesses[supportKey{p: e.Process, phase: e.Phase, value: e.Value}]++
	case trace.EventAccept:
		c.accepts[supportKey{p: e.Process, phase: e.Phase, value: e.Value}]++
	case trace.EventDecide:
		if c.isByz(e.Process) {
			return
		}
		if prev, ok := c.decided[e.Process]; ok {
			c.fail("write-once-decision", e.Process, "decided %d after %d", e.Value, prev)
			return
		}
		c.decided[e.Process] = e.Value
		c.checkSupport(e)
	case trace.EventCrash:
		c.crashed[e.Process] = true
	case trace.EventHalt:
		c.halted[e.Process] = true
	case trace.EventSend:
		if c.isByz(e.Process) {
			return
		}
		if c.crashed[e.Process] {
			c.fail("silence-after-crash", e.Process, "send at t=%v after crash", e.Time)
		}
	}
}

// checkSupport verifies the protocol-specific decision precondition.
func (c *checker) checkSupport(e trace.Event) {
	switch c.cfg.Protocol {
	case "failstop":
		// Figure 1 decides at phase t on the witnesses counted in phase
		// t-1 (the phase counter is incremented before the check).
		w := c.witnesses[supportKey{p: e.Process, phase: e.Phase - 1, value: e.Value}] +
			c.witnesses[supportKey{p: e.Process, phase: e.Phase, value: e.Value}]
		if !quorum.WitnessDecide(w, c.cfg.K) {
			c.fail("decision-support", e.Process,
				"decided %d in phase %d with only %d witnesses (need > %d)",
				e.Value, e.Phase, w, c.cfg.K)
		}
	case "malicious":
		a := c.accepts[supportKey{p: e.Process, phase: e.Phase, value: e.Value}]
		if !quorum.ExceedsHalfNPlusK(a, c.cfg.N, c.cfg.K) {
			c.fail("decision-support", e.Process,
				"decided %d in phase %d with only %d accepts (need > (n+k)/2 = %d)",
				e.Value, e.Phase, a, quorum.EchoAcceptCount(c.cfg.N, c.cfg.K)-1)
		}
	}
}

// global applies the end-state invariants.
func (c *checker) global(res *runtime.Result) {
	// Agreement across the trace's decide events.
	var firstVal msg.Value
	var firstSet bool
	for p, v := range c.decided {
		if !firstSet {
			firstVal, firstSet = v, true
			continue
		}
		if v != firstVal {
			c.fail("agreement", p, "decided %d while another process decided %d", v, firstVal)
			break
		}
	}
	// Trace decisions and result decisions must coincide.
	if res != nil {
		for p, v := range res.Decisions {
			if tv, ok := c.decided[p]; !ok {
				c.fail("trace-consistency", p, "result records decision %d missing from trace", v)
			} else if tv != v {
				c.fail("trace-consistency", p, "trace decided %d, result %d", tv, v)
			}
		}
	}
	// Validity: unanimous correct inputs force the decision.
	if !c.cfg.SkipValidity && len(c.cfg.Inputs) == c.cfg.N {
		unanimous := true
		var val msg.Value
		first := true
		for i, in := range c.cfg.Inputs {
			if c.isByz(msg.ID(i)) {
				continue
			}
			if first {
				val, first = in, false
				continue
			}
			if in != val {
				unanimous = false
				break
			}
		}
		if unanimous && !first {
			for p, v := range c.decided {
				if v != val {
					c.fail("validity", p, "unanimous input %d but decided %d", val, v)
				}
			}
		}
	}
}
