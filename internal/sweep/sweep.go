// Package sweep runs independent jobs concurrently with bounded
// parallelism, preserving result order and failing fast on the first error.
// The experiment harness uses it to spread seeded trials -- which are
// deterministic per (row, trial) index and therefore order-independent --
// across cores.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
)

// Run executes job(0..n-1) using at most workers goroutines (0 = GOMAXPROCS)
// and returns the results in index order. The first error cancels the
// remaining jobs (already-started jobs finish) and is returned.
func Run[T any](n, workers int, job func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if job == nil {
		return nil, fmt.Errorf("sweep: nil job")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			r, err := job(i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	fail := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = err
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				r, err := job(i)
				if err != nil {
					fail(fmt.Errorf("sweep job %d: %w", i, err))
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}
