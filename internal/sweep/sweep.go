// Package sweep runs independent jobs concurrently with bounded
// parallelism, preserving result order and failing fast on the first error.
// The experiment harness and the mc ensemble layer use it to spread seeded
// trials -- which are deterministic per (row, trial) index and therefore
// order-independent -- across cores.
//
// Workers claim indices in contiguous chunks of ~n/(workers*8) from a single
// atomic cursor, so for short jobs the scheduling cost is one atomic add per
// chunk rather than one mutex acquisition per index, while the 8x
// oversubscription keeps the tail balanced when job durations vary.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Run executes job(0..n-1) using at most workers goroutines (0 = GOMAXPROCS)
// and returns the results in index order. The first error cancels the
// remaining jobs (already-started jobs finish) and is returned. Result
// content is independent of the worker count: results[i] always holds the
// value job(i) returned.
func Run[T any](n, workers int, job func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if job == nil {
		return nil, fmt.Errorf("sweep: nil job")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			r, err := job(i)
			if err != nil {
				return nil, fmt.Errorf("sweep job %d: %w", i, err)
			}
			results[i] = r
		}
		return results, nil
	}

	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	var (
		wg       sync.WaitGroup
		next     atomic.Int64 // cursor into 0..n-1, claimed chunk-at-a-time
		stop     atomic.Bool
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		stop.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				start := int(next.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					if stop.Load() {
						return
					}
					r, err := job(i)
					if err != nil {
						fail(fmt.Errorf("sweep job %d: %w", i, err))
						return
					}
					results[i] = r
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}
