package sweep

import (
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRunOrderPreserved(t *testing.T) {
	got, err := Run(100, 8, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
}

func TestRunSerialPath(t *testing.T) {
	got, err := Run(10, 1, func(i int) (int, error) { return i, nil })
	if err != nil || len(got) != 10 {
		t.Fatalf("%v %v", got, err)
	}
}

func TestRunEmpty(t *testing.T) {
	got, err := Run[int](0, 4, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("%v %v", got, err)
	}
}

func TestRunNilJob(t *testing.T) {
	if _, err := Run[int](3, 2, nil); err == nil {
		t.Fatal("nil job accepted")
	}
}

func TestRunErrorFailsFast(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	_, err := Run(1000, 4, func(i int) (int, error) {
		ran.Add(1)
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error %v", err)
	}
	if ran.Load() >= 1000 {
		t.Error("no early cancellation")
	}
}

func TestRunEveryJobOnce(t *testing.T) {
	f := func(seed uint8) bool {
		n := int(seed%50) + 1
		var count atomic.Int64
		seen := make([]atomic.Bool, n)
		_, err := Run(n, 7, func(i int) (struct{}, error) {
			count.Add(1)
			if seen[i].Swap(true) {
				return struct{}{}, errors.New("duplicate")
			}
			return struct{}{}, nil
		})
		return err == nil && count.Load() == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWorkersClamped(t *testing.T) {
	// workers > n and workers <= 0 both work.
	if _, err := Run(3, 100, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(3, 0, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
}
