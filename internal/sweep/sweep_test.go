package sweep

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRunOrderPreserved(t *testing.T) {
	got, err := Run(100, 8, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
}

func TestRunSerialPath(t *testing.T) {
	got, err := Run(10, 1, func(i int) (int, error) { return i, nil })
	if err != nil || len(got) != 10 {
		t.Fatalf("%v %v", got, err)
	}
}

func TestRunEmpty(t *testing.T) {
	got, err := Run[int](0, 4, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("%v %v", got, err)
	}
}

func TestRunNilJob(t *testing.T) {
	if _, err := Run[int](3, 2, nil); err == nil {
		t.Fatal("nil job accepted")
	}
}

func TestRunErrorFailsFast(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	_, err := Run(1000, 4, func(i int) (int, error) {
		ran.Add(1)
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error %v", err)
	}
	if ran.Load() >= 1000 {
		t.Error("no early cancellation")
	}
}

func TestRunEveryJobOnce(t *testing.T) {
	f := func(seed uint8) bool {
		n := int(seed%50) + 1
		var count atomic.Int64
		seen := make([]atomic.Bool, n)
		_, err := Run(n, 7, func(i int) (struct{}, error) {
			count.Add(1)
			if seen[i].Swap(true) {
				return struct{}{}, errors.New("duplicate")
			}
			return struct{}{}, nil
		})
		return err == nil && count.Load() == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestChunkedClaimingCoversAllShapes(t *testing.T) {
	// Chunk sizes that divide n, leave remainders, exceed n, and collapse
	// to 1 must all produce every result exactly once, in order.
	for _, n := range []int{1, 2, 7, 31, 64, 100, 1000, 1024} {
		for _, workers := range []int{1, 2, 3, 7, 8, 16, 100} {
			got, err := Run(n, workers, func(i int) (int, error) { return i * 3, nil })
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			if len(got) != n {
				t.Fatalf("n=%d workers=%d: %d results", n, workers, len(got))
			}
			for i, v := range got {
				if v != i*3 {
					t.Fatalf("n=%d workers=%d: result[%d] = %d", n, workers, i, v)
				}
			}
		}
	}
}

func TestErrorIncludesJobIndex(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := Run(10, workers, func(i int) (int, error) {
			if i == 6 {
				return 0, boom
			}
			return i, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: error %v", workers, err)
		}
		if !strings.Contains(err.Error(), "sweep job 6") {
			t.Errorf("workers=%d: error %q does not name the job", workers, err)
		}
	}
}

func TestErrorCancelsMidChunk(t *testing.T) {
	// With one worker-sized chunk per worker, an error in the first chunk
	// must stop the erroring worker's remaining indices too.
	var ran atomic.Int64
	_, err := Run(64, 2, func(i int) (int, error) {
		ran.Add(1)
		return 0, errors.New("immediate")
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	// 64/(2*8) = 4 per chunk; both workers stop at a chunk/job boundary, so
	// far fewer than all 64 jobs run.
	if ran.Load() >= 64 {
		t.Errorf("%d jobs ran after an immediate error", ran.Load())
	}
}

func TestWorkersClamped(t *testing.T) {
	// workers > n and workers <= 0 both work.
	if _, err := Run(3, 100, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(3, 0, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
}
