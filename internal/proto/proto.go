// Package proto is the protocol registry: the single place that knows which
// consensus protocols exist, what they are called, what fault model and
// resilience bound they carry, what dependencies their machines need, and
// how to build one.
//
// Every protocol package registers a Descriptor for itself at init time
// (see its register.go), so adding a protocol to the zoo is a one-package
// change: nothing else in the tree switches on protocol identity. The
// public resilient.Protocol methods, the simulator and live-engine spawn
// paths, the replicated log, the Monte-Carlo ensembles, and the CLIs all
// resolve protocols through this registry.
//
// The registry is populated during package initialization only and is
// read-only afterwards, so lookups are safe from any goroutine without
// locking, and All iterates a slice sorted by ID -- never a map -- so every
// consumer sees the same deterministic order.
package proto

import (
	"fmt"
	"sort"
	"strings"

	"resilient/internal/coin"
	"resilient/internal/core"
	"resilient/internal/metrics"
	"resilient/internal/quorum"
	"resilient/internal/trace"
)

// ID selects a registered consensus protocol. The resilient package
// aliases this type as resilient.Protocol.
type ID int

// The registered protocols. The constants are fixed (they are part of the
// public API surface via the resilient package aliases); the registry
// carries everything else about them.
const (
	// FailStop is the Figure 1 protocol: witness messages,
	// k <= floor((n-1)/2) fail-stop faults.
	FailStop ID = iota + 1
	// Malicious is the Figure 2 protocol: authenticated echo broadcast,
	// k <= floor((n-1)/3) malicious faults.
	Malicious
	// Majority is the Section 4.1 analysis variant: plain value exchange,
	// majority adoption, supermajority decision (fail-stop).
	Majority
	// BenOrCrash is the [BenO83] baseline for fail-stop faults: local
	// coins, exponential expected phases in the worst case.
	BenOrCrash
	// BenOrByzantine is the [BenO83] baseline for malicious faults
	// (requires 5k < n).
	BenOrByzantine
	// Bivalence is the Section 5 weak-bivalence protocol for
	// initially-dead faults (tolerates any k < n).
	Bivalence
	// Broadcast is a single reliable broadcast: process 0 disseminates its
	// input and every correct process delivers it, over either the
	// full-quorum echo or the sampled primitive.
	Broadcast
	// BenOrShared is Ben-Or's structure driven by a deterministic common
	// coin (Aspnes cs/0209014): in every coin round all correct processes
	// flip the same value, so the expected phase count is constant instead
	// of growing with n.
	BenOrShared
)

// Deps bundles everything a protocol machine may need beyond its core
// config. Fields are zero when the run does not provide them.
type Deps struct {
	// Coin is the machine's randomness source; non-nil exactly when the
	// run's resolved coin scheme is local or shared. Protocols registered
	// with SchemeNone always receive nil.
	Coin coin.Source
	// Directory is the run's shared sample directory for protocols with an
	// echo-broadcast stage (a *sample.Directory; typed opaquely so the
	// registry does not import the sample package, which registers itself
	// here). Nil selects the full-quorum primitive.
	Directory any
	// Sink receives trace events; nil disables tracing.
	Sink trace.Sink
	// Metrics, when non-nil, receives machine-level accounting.
	Metrics *metrics.Registry
	// Unsafe selects the protocol's bound-unchecked variant, for
	// deliberately misconfigured lower-bound experiments. Protocols
	// without one ignore it.
	Unsafe bool
}

// Descriptor describes one registered protocol.
type Descriptor struct {
	// ID is the protocol's registry key.
	ID ID
	// Name is the canonical display name (e.g. "failstop(fig1)").
	Name string
	// Aliases are the accepted parse spellings, lower-case.
	Aliases []string
	// Model is the fault model the protocol is designed for.
	Model quorum.FaultModel
	// Bound renders the resilience bound for humans (e.g. "(n-1)/2").
	Bound string
	// MaxFaults returns the largest tolerable k at system size n; nil
	// means the model's tight bound quorum.MaxFaults(n, Model).
	MaxFaults func(n int) int
	// Coin is the protocol's default coin scheme; SchemeNone marks the
	// deterministic protocols, which reject coin overrides.
	Coin coin.Scheme
	// NeedsDirectory marks protocols whose echo stage can run over the
	// sampled broadcast primitive (they accept Deps.Directory).
	NeedsDirectory bool
	// CheckName is the invariant checker's protocol name for
	// decision-support checks ("" = the generic checks only).
	CheckName string
	// SkipValidity marks protocols that decide an agreed function of the
	// inputs rather than a majority-respecting input value, exempting them
	// from the checker's validity invariant.
	SkipValidity bool
	// Spawn builds one honest machine for the protocol.
	Spawn func(cfg core.Config, deps Deps) (core.Machine, error)
}

// registry state: populated by Register during package init, read-only
// afterwards. descs stays sorted by ID so All and Names are deterministic.
var (
	descs  []Descriptor
	byName = map[string]ID{}
)

// Register adds a protocol descriptor. It must be called from a protocol
// package's init function and panics on malformed or duplicate
// registrations -- the registry's contents are programmer-controlled, not
// input-driven.
func Register(d Descriptor) {
	if d.ID <= 0 || d.Name == "" || d.Spawn == nil || !d.Model.Valid() {
		panic(fmt.Sprintf("proto: malformed descriptor for %q (id %d)", d.Name, int(d.ID)))
	}
	if !d.Coin.Valid() || d.Coin == coin.SchemeAuto {
		panic(fmt.Sprintf("proto: %q must register a concrete coin scheme, got %v", d.Name, d.Coin))
	}
	if _, dup := Lookup(d.ID); dup {
		panic(fmt.Sprintf("proto: duplicate registration for id %d (%q)", int(d.ID), d.Name))
	}
	names := append([]string{strings.ToLower(d.Name)}, d.Aliases...)
	for _, name := range names {
		if owner, dup := byName[name]; dup {
			if owner == d.ID {
				continue // an alias repeating the descriptor's own name
			}
			panic(fmt.Sprintf("proto: duplicate protocol name %q", name))
		}
		byName[name] = d.ID
	}
	descs = append(descs, d)
	sort.Slice(descs, func(i, j int) bool { return descs[i].ID < descs[j].ID })
}

// Lookup returns the descriptor registered for id.
func Lookup(id ID) (Descriptor, bool) {
	for _, d := range descs {
		if d.ID == id {
			return d, true
		}
	}
	return Descriptor{}, false
}

// All returns every registered descriptor in ID order.
func All() []Descriptor {
	return append([]Descriptor(nil), descs...)
}

// Parse resolves a protocol name or alias, case-insensitively.
func Parse(name string) (ID, error) {
	id, ok := byName[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return 0, fmt.Errorf("proto: unknown protocol %q (want one of %s)", name, strings.Join(Names(), " | "))
	}
	return id, nil
}

// Names returns each registered protocol's primary alias (its first), in
// ID order -- the list CLI usage strings print.
func Names() []string {
	names := make([]string, 0, len(descs))
	for _, d := range descs {
		if len(d.Aliases) > 0 {
			names = append(names, d.Aliases[0])
		} else {
			names = append(names, d.Name)
		}
	}
	return names
}

// ResolveCoin resolves the coin scheme one run of the protocol should use:
// the descriptor's default under SchemeAuto, the override otherwise. It
// rejects overrides that contradict the protocol -- a coin for a
// deterministic protocol, or no coin for a randomized one.
func (d Descriptor) ResolveCoin(override coin.Scheme) (coin.Scheme, error) {
	if !override.Valid() {
		return 0, fmt.Errorf("proto: unknown coin scheme %d", int(override))
	}
	if override == coin.SchemeAuto {
		return d.Coin, nil
	}
	if d.Coin == coin.SchemeNone && override != coin.SchemeNone {
		return 0, fmt.Errorf("proto: %s is deterministic and takes no coin (got %v)", d.Name, override)
	}
	if d.Coin != coin.SchemeNone && override == coin.SchemeNone {
		return 0, fmt.Errorf("proto: %s needs a coin; scheme none is not runnable", d.Name)
	}
	return override, nil
}

// String names the protocol.
func (p ID) String() string {
	if d, ok := Lookup(p); ok {
		return d.Name
	}
	return fmt.Sprintf("Protocol(%d)", int(p))
}

// Valid reports whether p is a registered protocol.
func (p ID) Valid() bool {
	_, ok := Lookup(p)
	return ok
}

// Model returns the fault model the protocol is designed for.
func (p ID) Model() quorum.FaultModel {
	if d, ok := Lookup(p); ok {
		return d.Model
	}
	return quorum.FailStop
}

// MaxFaults returns the largest tolerable k for the protocol at system
// size n (0 for unregistered ids).
func (p ID) MaxFaults(n int) int {
	d, ok := Lookup(p)
	if !ok {
		return 0
	}
	if d.MaxFaults != nil {
		return d.MaxFaults(n)
	}
	return quorum.MaxFaults(n, d.Model)
}

// Aliases returns the protocol's accepted parse spellings.
func (p ID) Aliases() []string {
	if d, ok := Lookup(p); ok {
		return append([]string(nil), d.Aliases...)
	}
	return nil
}

// DefaultCoin returns the protocol's registered coin scheme.
func (p ID) DefaultCoin() coin.Scheme {
	if d, ok := Lookup(p); ok {
		return d.Coin
	}
	return coin.SchemeNone
}

// NeedsCoin reports whether the protocol draws coin randomness.
func (p ID) NeedsCoin() bool { return p.DefaultCoin() != coin.SchemeNone }

// NeedsDirectory reports whether the protocol's echo stage can run over
// the sampled broadcast primitive.
func (p ID) NeedsDirectory() bool {
	if d, ok := Lookup(p); ok {
		return d.NeedsDirectory
	}
	return false
}

// Bound renders the protocol's resilience bound for humans.
func (p ID) Bound() string {
	if d, ok := Lookup(p); ok {
		return d.Bound
	}
	return ""
}
