package proto_test

import (
	"strings"
	"testing"

	"resilient/internal/coin"
	"resilient/internal/core"
	"resilient/internal/proto"
	"resilient/internal/quorum"

	// Registration happens in the protocol packages' init functions; the
	// blank imports populate the registry under test.
	_ "resilient/internal/benor"
	_ "resilient/internal/bivalence"
	_ "resilient/internal/failstop"
	_ "resilient/internal/majority"
	_ "resilient/internal/malicious"
	_ "resilient/internal/sample"
)

// TestAllSortedAndComplete pins the registry's deterministic iteration
// order and the zoo's current size.
func TestAllSortedAndComplete(t *testing.T) {
	all := proto.All()
	if len(all) != 8 {
		t.Fatalf("%d protocols registered, want 8", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Fatalf("All() not strictly ID-sorted at %d: %v then %v", i, all[i-1].ID, all[i].ID)
		}
	}
	if len(proto.Names()) != len(all) {
		t.Fatalf("Names() has %d entries for %d descriptors", len(proto.Names()), len(all))
	}
}

// TestParseRoundTrips: every canonical name and alias parses back to its
// descriptor's ID, case-insensitively and whitespace-tolerantly.
func TestParseRoundTrips(t *testing.T) {
	for _, d := range proto.All() {
		spellings := append([]string{d.Name, strings.ToUpper(d.Name), " " + d.Name + " "}, d.Aliases...)
		for _, s := range spellings {
			got, err := proto.Parse(s)
			if err != nil || got != d.ID {
				t.Errorf("Parse(%q) = %v, %v; want %v", s, got, err, d.ID)
			}
		}
	}
	if _, err := proto.Parse("paxos"); err == nil || !strings.Contains(err.Error(), "failstop") {
		t.Errorf("Parse(unknown) error should list the registered names, got %v", err)
	}
}

// TestIDMethodsUnregistered: ID methods degrade gracefully for ids outside
// the registry instead of panicking.
func TestIDMethodsUnregistered(t *testing.T) {
	p := proto.ID(99)
	if p.Valid() {
		t.Error("unregistered id reported valid")
	}
	if got := p.String(); got != "Protocol(99)" {
		t.Errorf("String() = %q", got)
	}
	if p.MaxFaults(7) != 0 || p.NeedsCoin() || p.NeedsDirectory() || p.Bound() != "" {
		t.Error("unregistered id leaked non-zero protocol properties")
	}
}

// TestResolveCoin pins the override matrix: auto keeps the default, a coin
// for a deterministic protocol and scheme none for a randomized one are
// both contradictions.
func TestResolveCoin(t *testing.T) {
	deterministic := proto.Descriptor{Name: "det", Coin: coin.SchemeNone}
	randomized := proto.Descriptor{Name: "rnd", Coin: coin.SchemeLocal}
	if s, err := deterministic.ResolveCoin(coin.SchemeAuto); err != nil || s != coin.SchemeNone {
		t.Errorf("det+auto = %v, %v", s, err)
	}
	if s, err := randomized.ResolveCoin(coin.SchemeAuto); err != nil || s != coin.SchemeLocal {
		t.Errorf("rnd+auto = %v, %v", s, err)
	}
	if s, err := randomized.ResolveCoin(coin.SchemeShared); err != nil || s != coin.SchemeShared {
		t.Errorf("rnd+shared = %v, %v", s, err)
	}
	if _, err := deterministic.ResolveCoin(coin.SchemeShared); err == nil {
		t.Error("coin override accepted for a deterministic protocol")
	}
	if _, err := randomized.ResolveCoin(coin.SchemeNone); err == nil {
		t.Error("scheme none accepted for a randomized protocol")
	}
	if _, err := randomized.ResolveCoin(coin.Scheme(42)); err == nil {
		t.Error("unknown scheme accepted")
	}
}

// TestRegisterRejects: malformed and conflicting registrations panic
// before mutating the registry, keeping init-time mistakes loud.
func TestRegisterRejects(t *testing.T) {
	wantPanic := func(name string, d proto.Descriptor) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		proto.Register(d)
	}
	spawn := func(core.Config, proto.Deps) (core.Machine, error) { return nil, nil }
	wantPanic("no name", proto.Descriptor{ID: 99, Model: quorum.FailStop, Coin: coin.SchemeNone, Spawn: spawn})
	wantPanic("no spawn", proto.Descriptor{ID: 99, Name: "x", Model: quorum.FailStop, Coin: coin.SchemeNone})
	wantPanic("auto coin", proto.Descriptor{ID: 99, Name: "x", Model: quorum.FailStop, Coin: coin.SchemeAuto, Spawn: spawn})
	wantPanic("duplicate id", proto.Descriptor{ID: proto.FailStop, Name: "x", Model: quorum.FailStop, Coin: coin.SchemeNone, Spawn: spawn})
	wantPanic("taken name", proto.Descriptor{ID: 99, Name: "failstop(fig1)", Model: quorum.FailStop, Coin: coin.SchemeNone, Spawn: spawn})
}
