package transport

import (
	"errors"
	"sync"
	"testing"

	"resilient/internal/msg"
)

func TestMemBasicDelivery(t *testing.T) {
	net := NewMem(3)
	c0, err := net.Conn(0)
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := net.Conn(1)
	if err := c0.Send(1, msg.Val(0, 0, msg.V1)); err != nil {
		t.Fatal(err)
	}
	got, err := c1.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != msg.V1 || got.From != 0 {
		t.Errorf("received %+v", got)
	}
}

func TestMemStampsAuthenticatedSender(t *testing.T) {
	net := NewMem(3)
	c0, _ := net.Conn(0)
	c1, _ := net.Conn(1)
	forged := msg.Val(2, 0, msg.V1) // claims to be from p2
	if err := c0.Send(1, forged); err != nil {
		t.Fatal(err)
	}
	got, _ := c1.Recv()
	if got.From != 0 {
		t.Errorf("forged sender survived: From=%d", got.From)
	}
}

func TestMemFIFOPerSender(t *testing.T) {
	net := NewMem(2)
	c0, _ := net.Conn(0)
	c1, _ := net.Conn(1)
	for i := 0; i < 100; i++ {
		if err := c0.Send(1, msg.Val(0, msg.Phase(i), msg.V0)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		got, err := c1.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got.Phase != msg.Phase(i) {
			t.Fatalf("out of order: got %d want %d", got.Phase, i)
		}
	}
}

func TestMemSelfSend(t *testing.T) {
	net := NewMem(1)
	c, _ := net.Conn(0)
	if err := c.Send(0, msg.Val(0, 0, msg.V1)); err != nil {
		t.Fatal(err)
	}
	if got, err := c.Recv(); err != nil || got.From != 0 {
		t.Fatalf("self delivery failed: %v %v", got, err)
	}
}

func TestMemInvalidIDs(t *testing.T) {
	net := NewMem(2)
	if _, err := net.Conn(5); err == nil {
		t.Error("out-of-range conn accepted")
	}
	if _, err := net.Conn(-1); err == nil {
		t.Error("negative conn accepted")
	}
	c, _ := net.Conn(0)
	if err := c.Send(9, msg.Message{}); err == nil {
		t.Error("out-of-range destination accepted")
	}
}

func TestMemCloseUnblocksReceivers(t *testing.T) {
	net := NewMem(2)
	c, _ := net.Conn(1)
	done := make(chan error, 1)
	go func() {
		_, err := c.Recv()
		done <- err
	}()
	c.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Errorf("recv after close: %v", err)
	}
	if err := (func() error { c2, _ := net.Conn(0); return c2.Send(1, msg.Message{}) })(); !errors.Is(err, ErrClosed) {
		t.Errorf("send to closed: %v", err)
	}
}

func TestMemNetworkCloseReleasesAll(t *testing.T) {
	net := NewMem(4)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		c, _ := net.Conn(msg.ID(i))
		wg.Add(1)
		go func(i int, c Conn) {
			defer wg.Done()
			_, errs[i] = c.Recv()
		}(i, c)
	}
	net.Close()
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrClosed) {
			t.Errorf("receiver %d: %v", i, err)
		}
	}
}

func TestMemDrainAfterClose(t *testing.T) {
	// Messages already buffered are still drained after close.
	net := NewMem(2)
	c0, _ := net.Conn(0)
	c1, _ := net.Conn(1)
	c0.Send(1, msg.Val(0, 7, msg.V1))
	// Close only the sender side; the receiver's box still holds data.
	c0.Close()
	if got, err := c1.Recv(); err != nil || got.Phase != 7 {
		t.Errorf("buffered message lost: %v %v", got, err)
	}
}

func TestMemConcurrentSenders(t *testing.T) {
	net := NewMem(5)
	c4, _ := net.Conn(4)
	var wg sync.WaitGroup
	const per = 500
	for s := 0; s < 4; s++ {
		c, _ := net.Conn(msg.ID(s))
		wg.Add(1)
		go func(c Conn) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := c.Send(4, msg.Val(0, 0, msg.V0)); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	got := 0
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		for got < 4*per {
			if _, err := c4.Recv(); err != nil {
				t.Error(err)
				return
			}
			got++
		}
	}()
	wg.Wait()
	<-recvDone
	if got != 4*per {
		t.Errorf("received %d of %d", got, 4*per)
	}
}
