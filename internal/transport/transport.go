// Package transport defines the message-system interface used by the
// goroutine-based live engine (internal/livenet) and provides the in-memory
// implementation: per-process unbounded mailboxes with sender
// authentication, mirroring the paper's model where the message system
// "maintains for each process a message buffer of messages sent to it but
// not yet received" (Section 2.1).
package transport

import (
	"errors"
	"fmt"
	"sync"

	"resilient/internal/msg"
)

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// Conn is one process's endpoint onto the message system.
//
// Send places a message in the destination's buffer; the From field is
// stamped by the transport, so a process cannot impersonate another (the
// Section 3.1 authentication requirement). Recv blocks until a message is
// available or the endpoint is closed.
type Conn interface {
	ID() msg.ID
	Send(to msg.ID, m msg.Message) error
	Recv() (msg.Message, error)
	Close() error
}

// mailbox is an unbounded FIFO with blocking Pop.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []msg.Message
	closed bool
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) push(m msg.Message) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return ErrClosed
	}
	mb.queue = append(mb.queue, m)
	mb.cond.Signal()
	return nil
}

func (mb *mailbox) pop() (msg.Message, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for len(mb.queue) == 0 && !mb.closed {
		mb.cond.Wait()
	}
	if len(mb.queue) == 0 {
		return msg.Message{}, ErrClosed
	}
	m := mb.queue[0]
	mb.queue = mb.queue[1:]
	return m, nil
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.closed = true
	mb.cond.Broadcast()
}

// Mem is an in-memory message system connecting n processes.
type Mem struct {
	n     int
	boxes []*mailbox
}

// NewMem returns an in-memory message system for n processes.
func NewMem(n int) *Mem {
	boxes := make([]*mailbox, n)
	for i := range boxes {
		boxes[i] = newMailbox()
	}
	return &Mem{n: n, boxes: boxes}
}

// N returns the number of processes.
func (t *Mem) N() int { return t.n }

// Conn returns the endpoint for process id.
func (t *Mem) Conn(id msg.ID) (Conn, error) {
	if id < 0 || int(id) >= t.n {
		return nil, fmt.Errorf("transport: id %d outside 0..%d", id, t.n-1)
	}
	return &memConn{net: t, id: id}, nil
}

// Close closes every mailbox, releasing all blocked receivers.
func (t *Mem) Close() {
	for _, b := range t.boxes {
		b.close()
	}
}

type memConn struct {
	net *Mem
	id  msg.ID
}

var _ Conn = (*memConn)(nil)

func (c *memConn) ID() msg.ID { return c.id }

func (c *memConn) Send(to msg.ID, m msg.Message) error {
	if to < 0 || int(to) >= c.net.n {
		return fmt.Errorf("transport: destination %d outside 0..%d", to, c.net.n-1)
	}
	m.From = c.id // authenticated sender
	return c.net.boxes[to].push(m)
}

func (c *memConn) Recv() (msg.Message, error) {
	return c.net.boxes[c.id].pop()
}

func (c *memConn) Close() error {
	c.net.boxes[c.id].close()
	return nil
}
