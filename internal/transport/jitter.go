package transport

import (
	"math/rand/v2"
	"sync"
	"time"

	"resilient/internal/msg"
)

// Jitter wraps an in-memory message system with random per-message delivery
// delays. It realizes the paper's probabilistic assumption on the message
// system (Section 2.3: every possible view has probability at least epsilon
// of being the one seen) in the live goroutine engine, where raw mailbox
// FIFO order is otherwise close to deterministic -- deterministic enough, in
// fact, to livelock the Section 4.1 majority variant on a balanced input,
// which is a faithful reenactment of why the assumption is needed.
type Jitter struct {
	mem *Mem
	max time.Duration

	mu     sync.RWMutex // guards closed against the Add/Wait race
	closed bool

	rngMu sync.Mutex
	rng   *rand.Rand

	wg sync.WaitGroup
}

// NewJitter returns a jittered message system for n processes with delays
// uniform in (0, max]. seed determines the delay sequence.
func NewJitter(n int, max time.Duration, seed uint64) *Jitter {
	if max <= 0 {
		max = time.Millisecond
	}
	return &Jitter{
		mem: NewMem(n),
		max: max,
		rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
	}
}

// N returns the number of processes.
func (j *Jitter) N() int { return j.mem.N() }

// Conn returns the endpoint for process id.
func (j *Jitter) Conn(id msg.ID) (Conn, error) {
	inner, err := j.mem.Conn(id)
	if err != nil {
		return nil, err
	}
	return &jitterConn{j: j, inner: inner}, nil
}

// Close shuts the system down and waits for in-flight deliveries to drain.
func (j *Jitter) Close() {
	j.mu.Lock()
	j.closed = true
	j.mu.Unlock()
	j.mem.Close()
	j.wg.Wait()
}

func (j *Jitter) delay() time.Duration {
	j.rngMu.Lock()
	defer j.rngMu.Unlock()
	return time.Duration(j.rng.Int64N(int64(j.max))) + 1
}

type jitterConn struct {
	j     *Jitter
	inner Conn
}

var _ Conn = (*jitterConn)(nil)

func (c *jitterConn) ID() msg.ID { return c.inner.ID() }

// Send schedules an asynchronous delivery after a random delay. Delivery
// errors after the delay are deliberately dropped: a message to a closed
// endpoint is indistinguishable from a slow one, matching the model.
func (c *jitterConn) Send(to msg.ID, m msg.Message) error {
	c.j.mu.RLock()
	defer c.j.mu.RUnlock()
	if c.j.closed {
		return ErrClosed
	}
	d := c.j.delay()
	c.j.wg.Add(1)
	time.AfterFunc(d, func() {
		defer c.j.wg.Done()
		_ = c.inner.Send(to, m)
	})
	return nil
}

func (c *jitterConn) Recv() (msg.Message, error) {
	return c.inner.Recv()
}

func (c *jitterConn) Close() error {
	return c.inner.Close()
}
