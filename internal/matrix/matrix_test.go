package matrix

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestFromRowsAndAccessors(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("dims %dx%d", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 {
		t.Errorf("At(2,1) = %v", m.At(2, 1))
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Error("Set did not stick")
	}
	if m.RowSum(1) != 7 {
		t.Errorf("RowSum(1) = %v", m.RowSum(1))
	}
	if _, err := FromRows([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("ragged rows accepted")
	}
}

func TestMulIdentity(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	id := Identity(3)
	got, err := m.Mul(id)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if got.At(i, j) != m.At(i, j) {
				t.Fatalf("M*I != M at (%d,%d)", i, j)
			}
		}
	}
	if _, err := m.Mul(Identity(2)); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a, _ := FromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	b, _ := FromRows([][]float64{{8}, {-11}, {-3}})
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i, w := range want {
		if !almostEqual(x.At(i, 0), w, 1e-9) {
			t.Errorf("x[%d] = %v, want %v", i, x.At(i, 0), w)
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	b, _ := FromRows([][]float64{{1}, {2}})
	if _, err := Solve(a, b); !errors.Is(err, ErrSingular) {
		t.Errorf("want ErrSingular, got %v", err)
	}
}

func TestInverseProperty(t *testing.T) {
	// Property: for random diagonally-dominant matrices, A * A^-1 ~ I.
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed+1))
		n := 2 + int(seed%8)
		a := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.Float64()-0.5)
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // ensure nonsingularity
		}
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		prod, err := a.Mul(inv)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if !almostEqual(prod.At(i, j), want, 1e-8) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFundamentalGamblersRuin(t *testing.T) {
	// Symmetric random walk on {0..4} absorbing at 0 and 4: from state i the
	// expected absorption time is i*(4-i).
	q := New(3, 3) // transient states 1, 2, 3
	q.Set(0, 1, 0.5)
	q.Set(1, 0, 0.5)
	q.Set(1, 2, 0.5)
	q.Set(2, 1, 0.5)
	times, err := AbsorptionTimes(q)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 4, 3} // 1*3, 2*2, 3*1
	for i, w := range want {
		if !almostEqual(times[i], w, 1e-9) {
			t.Errorf("E[%d] = %v, want %v", i+1, times[i], w)
		}
	}
}

func TestFundamentalRejectsNonSquare(t *testing.T) {
	q := New(2, 3)
	if _, err := Fundamental(q); err == nil {
		t.Error("non-square Q accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) == 99 {
		t.Error("Clone shares storage")
	}
}

func TestSub(t *testing.T) {
	a, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	b, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	c, err := a.Sub(b)
	if err != nil {
		t.Fatal(err)
	}
	if c.At(0, 0) != 4 || c.At(1, 1) != 4 {
		t.Error("Sub wrong")
	}
	if _, err := a.Sub(Identity(3)); err == nil {
		t.Error("dimension mismatch accepted")
	}
}
