// Package matrix provides the small dense linear algebra needed by the
// Section 4 Markov-chain analysis: Gaussian elimination with partial
// pivoting for solving linear systems, matrix inversion, and the fundamental
// matrix N = (I - Q)^-1 whose row sums give expected absorption times
// (Isaacson & Madsen 1976, cited as [Isaa76] in the paper).
package matrix

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when elimination encounters an (effectively)
// singular matrix.
var ErrSingular = errors.New("matrix: singular matrix")

// Dense is a row-major dense matrix of float64.
type Dense struct {
	rows, cols int
	data       []float64
}

// New returns a zero rows-by-cols matrix.
func New(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows. The input is
// copied.
func FromRows(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 {
		return New(0, 0), nil
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("matrix: ragged row %d: %d cols, want %d", i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// RowSum returns the sum of row i.
func (m *Dense) RowSum(i int) float64 {
	sum := 0.0
	for j := 0; j < m.cols; j++ {
		sum += m.At(i, j)
	}
	return sum
}

// Mul returns the matrix product m*b.
func (m *Dense) Mul(b *Dense) (*Dense, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("matrix: mul dimension mismatch %dx%d * %dx%d",
			m.rows, m.cols, b.rows, b.cols)
	}
	out := New(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for kk := 0; kk < m.cols; kk++ {
			a := m.At(i, kk)
			if a == 0 {
				continue
			}
			for j := 0; j < b.cols; j++ {
				out.data[i*out.cols+j] += a * b.At(kk, j)
			}
		}
	}
	return out, nil
}

// Sub returns m - b.
func (m *Dense) Sub(b *Dense) (*Dense, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("matrix: sub dimension mismatch %dx%d - %dx%d",
			m.rows, m.cols, b.rows, b.cols)
	}
	out := New(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = m.data[i] - b.data[i]
	}
	return out, nil
}

// Solve solves A x = b for x via Gaussian elimination with partial pivoting,
// where b has one column per right-hand side. A must be square.
func Solve(a *Dense, b *Dense) (*Dense, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("matrix: solve needs square A, got %dx%d", a.rows, a.cols)
	}
	if b.rows != n {
		return nil, fmt.Errorf("matrix: rhs has %d rows, want %d", b.rows, n)
	}
	// Work on augmented copies.
	aw := a.Clone()
	bw := b.Clone()
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(aw.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(aw.At(r, col)); v > best {
				best = v
				pivot = r
			}
		}
		if best < 1e-13 {
			return nil, ErrSingular
		}
		if pivot != col {
			aw.swapRows(pivot, col)
			bw.swapRows(pivot, col)
		}
		pv := aw.At(col, col)
		for r := col + 1; r < n; r++ {
			f := aw.At(r, col) / pv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				aw.Set(r, c, aw.At(r, c)-f*aw.At(col, c))
			}
			for c := 0; c < bw.cols; c++ {
				bw.Set(r, c, bw.At(r, c)-f*bw.At(col, c))
			}
		}
	}
	// Back substitution.
	x := New(n, bw.cols)
	for c := 0; c < bw.cols; c++ {
		for r := n - 1; r >= 0; r-- {
			sum := bw.At(r, c)
			for j := r + 1; j < n; j++ {
				sum -= aw.At(r, j) * x.At(j, c)
			}
			x.Set(r, c, sum/aw.At(r, r))
		}
	}
	return x, nil
}

func (m *Dense) swapRows(i, j int) {
	if i == j {
		return
	}
	ri := m.data[i*m.cols : (i+1)*m.cols]
	rj := m.data[j*m.cols : (j+1)*m.cols]
	for c := range ri {
		ri[c], rj[c] = rj[c], ri[c]
	}
}

// Inverse returns A^-1.
func Inverse(a *Dense) (*Dense, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("matrix: inverse needs square matrix, got %dx%d", a.rows, a.cols)
	}
	return Solve(a, Identity(a.rows))
}

// Fundamental computes the fundamental matrix N = (I - Q)^-1 of an absorbing
// Markov chain, where Q is the transient-to-transient transition submatrix.
// Row sums of N are the expected numbers of steps to absorption starting in
// each transient state ([Isaa76], used in Section 4.1 eq. (12)-(13)).
func Fundamental(q *Dense) (*Dense, error) {
	if q.rows != q.cols {
		return nil, fmt.Errorf("matrix: fundamental needs square Q, got %dx%d", q.rows, q.cols)
	}
	iq, err := Identity(q.rows).Sub(q)
	if err != nil {
		return nil, err
	}
	n, err := Inverse(iq)
	if err != nil {
		return nil, fmt.Errorf("fundamental matrix: %w", err)
	}
	return n, nil
}

// AbsorptionTimes returns the vector of expected steps to absorption from
// each transient state: the row sums of the fundamental matrix of Q.
func AbsorptionTimes(q *Dense) ([]float64, error) {
	n, err := Fundamental(q)
	if err != nil {
		return nil, err
	}
	times := make([]float64, n.rows)
	for i := range times {
		times[i] = n.RowSum(i)
	}
	return times, nil
}
