// Package byzantine implements malicious-process behaviour strategies.
//
// The paper allows a malicious process to "send false and contradictory
// messages, even according to some malevolent plan" (Section 1), to fail to
// send messages, and to change its internal state arbitrarily (Section 3.1).
// Its Section 4 worst case is the omniscient *balancing* adversary: "they
// will try to balance the number of 1 and 0 messages in the system".
//
// Strategies are built by wrapping an honest protocol machine and rewriting
// the value-bearing messages it emits. The wrapped machine keeps tracking
// phases and thresholds correctly (a lying process must still *participate*
// plausibly to influence anyone), while the wrapper controls what the
// process claims its value to be -- per phase, or even per recipient.
// Sender identities can never be forged: the execution engines stamp the
// authenticated sender on every message (the Section 3.1 requirement).
package byzantine

import (
	"math/rand/v2"

	"resilient/internal/core"
	"resilient/internal/msg"
)

// Rewrite transforms one outbound send into zero or more sends. It is
// applied to every message the wrapped honest machine emits.
type Rewrite func(o core.Outbound) []core.Outbound

// Mutated wraps an honest machine and applies a rewrite to its output.
type Mutated struct {
	inner   core.Machine
	rewrite Rewrite
}

var _ core.Machine = (*Mutated)(nil)

// NewMutated wraps inner with the given rewrite.
func NewMutated(inner core.Machine, rewrite Rewrite) *Mutated {
	return &Mutated{inner: inner, rewrite: rewrite}
}

// ID implements core.Machine.
func (m *Mutated) ID() msg.ID { return m.inner.ID() }

// Phase implements core.Machine.
func (m *Mutated) Phase() msg.Phase { return m.inner.Phase() }

// Decided implements core.Machine. A Byzantine "decision" carries no weight
// in result evaluation; it is reported for completeness.
func (m *Mutated) Decided() (msg.Value, bool) { return m.inner.Decided() }

// Halted implements core.Machine.
func (m *Mutated) Halted() bool { return m.inner.Halted() }

// Start implements core.Machine.
func (m *Mutated) Start() []core.Outbound { return m.apply(m.inner.Start()) }

// OnMessage implements core.Machine.
func (m *Mutated) OnMessage(in msg.Message) []core.Outbound {
	return m.apply(m.inner.OnMessage(in))
}

func (m *Mutated) apply(outs []core.Outbound) []core.Outbound {
	if m.rewrite == nil {
		return outs
	}
	var result []core.Outbound
	for _, o := range outs {
		result = append(result, m.rewrite(o)...)
	}
	return result
}

// ownValueMessage reports whether o is a value-bearing message originated by
// self (as opposed to an echo of someone else's message), the kind of
// message a lying strategy rewrites.
func ownValueMessage(o core.Outbound, self msg.ID) bool {
	if o.Msg.From != self {
		return false
	}
	switch o.Msg.Kind {
	case msg.KindState, msg.KindValue, msg.KindInitial, msg.KindBenOrReport:
		return o.Msg.Subject == self
	default:
		return false
	}
}

// Silent is a process that never sends anything: indistinguishable from a
// process that was dead from the start.
type Silent struct {
	id msg.ID
}

var _ core.Machine = (*Silent)(nil)

// NewSilent returns a silent Byzantine process.
func NewSilent(id msg.ID) *Silent { return &Silent{id: id} }

// ID implements core.Machine.
func (s *Silent) ID() msg.ID { return s.id }

// Start implements core.Machine.
func (s *Silent) Start() []core.Outbound { return nil }

// OnMessage implements core.Machine.
func (s *Silent) OnMessage(msg.Message) []core.Outbound { return nil }

// Decided implements core.Machine.
func (s *Silent) Decided() (msg.Value, bool) { return 0, false }

// Halted implements core.Machine.
func (s *Silent) Halted() bool { return true }

// Phase implements core.Machine.
func (s *Silent) Phase() msg.Phase { return 0 }

// NewBalancer wraps inner with the Section 4 balancing strategy: every own
// value message is rewritten to the current *minority* value among correct
// processes, pushing the system toward the balanced state n/2 where the
// Markov chain lingers longest.
func NewBalancer(inner core.Machine, world core.WorldView) *Mutated {
	self := inner.ID()
	return NewMutated(inner, func(o core.Outbound) []core.Outbound {
		if ownValueMessage(o, self) && !o.Msg.Phase.IsWildcard() {
			zeros, ones := world.CorrectValueCounts()
			if ones >= zeros {
				o.Msg.Value = msg.V0
			} else {
				o.Msg.Value = msg.V1
			}
		}
		return []core.Outbound{o}
	})
}

// NewFixedLiar wraps inner so that it always claims value v, regardless of
// protocol state.
func NewFixedLiar(inner core.Machine, v msg.Value) *Mutated {
	self := inner.ID()
	return NewMutated(inner, func(o core.Outbound) []core.Outbound {
		if ownValueMessage(o, self) && !o.Msg.Phase.IsWildcard() {
			o.Msg.Value = v
		}
		return []core.Outbound{o}
	})
}

// NewFlipper wraps inner so that each own value message carries an
// independent coin flip.
func NewFlipper(inner core.Machine, rng *rand.Rand) *Mutated {
	self := inner.ID()
	return NewMutated(inner, func(o core.Outbound) []core.Outbound {
		if ownValueMessage(o, self) && !o.Msg.Phase.IsWildcard() {
			o.Msg.Value = msg.Value(rng.IntN(2))
		}
		return []core.Outbound{o}
	})
}

// NewEquivocator wraps inner so that every own value broadcast is split:
// processes with id < n/2 are told value 0 and the rest value 1. Against
// the Figure-2 echo mechanism the equivocation is futile -- at most one of
// the two values can gather more than (n+k)/2 echoes -- which is exactly
// what the consistency proof of Theorem 4 asserts and what the test suite
// verifies.
func NewEquivocator(inner core.Machine, n int) *Mutated {
	self := inner.ID()
	return NewMutated(inner, func(o core.Outbound) []core.Outbound {
		if !ownValueMessage(o, self) || o.Msg.Phase.IsWildcard() || o.To != msg.Broadcast {
			return []core.Outbound{o}
		}
		outs := make([]core.Outbound, 0, n)
		for q := 0; q < n; q++ {
			m := o.Msg
			// Positional split of the recipient list — the first half gets V0,
			// the rest V1 — not a quorum test on the count q.
			//lint:allow quorumarith equivocator splits recipients in half positionally, no threshold semantics
			if q < n/2 {
				m.Value = msg.V0
			} else {
				m.Value = msg.V1
			}
			outs = append(outs, core.To(msg.ID(q), m))
		}
		return outs
	})
}

// NewTwoFaced wraps inner so that own value messages claim 0 toward
// processes with id < boundary and 1 toward the rest. It is the coalition
// behaviour used in the Theorem 3 lower-bound construction, where the
// malicious processes in the intersection of S and T run schedule sigma_0
// toward S and sigma_1 toward T.
func NewTwoFaced(inner core.Machine, n int, boundary msg.ID) *Mutated {
	self := inner.ID()
	return NewMutated(inner, func(o core.Outbound) []core.Outbound {
		if !ownValueMessage(o, self) || o.Msg.Phase.IsWildcard() || o.To != msg.Broadcast {
			return []core.Outbound{o}
		}
		outs := make([]core.Outbound, 0, n)
		for q := 0; q < n; q++ {
			m := o.Msg
			if msg.ID(q) < boundary {
				m.Value = msg.V0
			} else {
				m.Value = msg.V1
			}
			outs = append(outs, core.To(msg.ID(q), m))
		}
		return outs
	})
}

// NewDoubleEchoer wraps inner so that every echo it sends is accompanied by
// a second echo with the complementary value. The first-message-per-sender
// rule makes the duplicate inert at correct receivers; this strategy exists
// to exercise that defence.
func NewDoubleEchoer(inner core.Machine) *Mutated {
	return NewMutated(inner, func(o core.Outbound) []core.Outbound {
		if o.Msg.Kind != msg.KindEcho || o.Msg.Phase.IsWildcard() {
			return []core.Outbound{o}
		}
		dup := o
		dup.Msg.Value = o.Msg.Value.Other()
		return []core.Outbound{o, dup}
	})
}

// NewMute wraps inner so that it processes messages normally but suppresses
// every send from some phase onward: a malicious process that simply stops
// talking (distinct from Silent, which never talks at all).
func NewMute(inner core.Machine, fromPhase msg.Phase) *Mutated {
	return NewMutated(inner, func(o core.Outbound) []core.Outbound {
		if inner.Phase() >= fromPhase {
			return nil
		}
		return []core.Outbound{o}
	})
}

// NewImpersonator returns the Section 3.1 impersonation attacker: a single
// malicious process that, in a message system WITHOUT sender
// authentication, fabricates a complete, internally consistent phase-0
// history of the Figure 2 protocol under every process's identity --
// initials from all n processes and matching echoes from all n senders --
// telling processes below the boundary that everyone started with 0 and the
// rest that everyone started with 1. Each victim immediately accepts n
// unanimous values and decides, and the two sides decide differently:
// "one malicious process can impersonate the whole system, leading the
// correct processes to conflicting decisions". Against an authenticating
// transport the same machine is harmless (every forged message is
// re-stamped with the attacker's identity and collapses into duplicates).
type Impersonator struct {
	id       msg.ID
	n        int
	boundary msg.ID
	started  bool
}

var _ core.Machine = (*Impersonator)(nil)

// NewImpersonatorMachine builds the impersonator for an n-process system,
// splitting victims at the boundary id.
func NewImpersonatorMachine(id msg.ID, n int, boundary msg.ID) *Impersonator {
	return &Impersonator{id: id, n: n, boundary: boundary}
}

// ID implements core.Machine.
func (im *Impersonator) ID() msg.ID { return im.id }

// Start emits the forged histories.
func (im *Impersonator) Start() []core.Outbound {
	if im.started {
		return nil
	}
	im.started = true
	var outs []core.Outbound
	for r := 0; r < im.n; r++ {
		v := msg.V1
		if msg.ID(r) < im.boundary {
			v = msg.V0
		}
		for q := 0; q < im.n; q++ {
			ini := msg.Initial(msg.ID(q), 0, v) // forged: claims to be from q
			outs = append(outs, core.To(msg.ID(r), ini))
			for snd := 0; snd < im.n; snd++ {
				e := msg.Echo(msg.ID(snd), msg.ID(q), 0, v) // forged echo
				outs = append(outs, core.To(msg.ID(r), e))
			}
		}
	}
	return outs
}

// OnMessage implements core.Machine; the attack is fire-and-forget.
func (im *Impersonator) OnMessage(msg.Message) []core.Outbound { return nil }

// Decided implements core.Machine.
func (im *Impersonator) Decided() (msg.Value, bool) { return 0, false }

// Halted implements core.Machine.
func (im *Impersonator) Halted() bool { return im.started }

// Phase implements core.Machine.
func (im *Impersonator) Phase() msg.Phase { return 0 }
