package byzantine

import (
	"math/rand/v2"
	"testing"

	"resilient/internal/core"
	"resilient/internal/malicious"
	"resilient/internal/msg"
)

// fakeWorld is a WorldView with fixed counts.
type fakeWorld struct {
	zeros, ones int
}

func (w fakeWorld) N() int                           { return w.zeros + w.ones }
func (w fakeWorld) K() int                           { return 1 }
func (w fakeWorld) CorrectValueCounts() (int, int)   { return w.zeros, w.ones }
func (w fakeWorld) CorrectDecidedCounts() (int, int) { return 0, 0 }

func honest(t *testing.T, n, k int, self msg.ID, input msg.Value) core.Machine {
	t.Helper()
	m, err := malicious.New(core.Config{N: n, K: k, Self: self, Input: input}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func initialsOf(outs []core.Outbound) []msg.Message {
	var res []msg.Message
	for _, o := range outs {
		if o.Msg.Kind == msg.KindInitial {
			res = append(res, o.Msg)
		}
	}
	return res
}

func TestSilent(t *testing.T) {
	s := NewSilent(3)
	if s.ID() != 3 || !s.Halted() {
		t.Error("silent basics wrong")
	}
	if s.Start() != nil || s.OnMessage(msg.Initial(1, 0, msg.V1)) != nil {
		t.Error("silent spoke")
	}
	if _, ok := s.Decided(); ok {
		t.Error("silent decided")
	}
	if s.Phase() != 0 {
		t.Error("silent phase")
	}
}

func TestBalancerClaimsMinority(t *testing.T) {
	// Ones lead -> balancer claims 0.
	b := NewBalancer(honest(t, 4, 1, 0, msg.V1), fakeWorld{zeros: 1, ones: 3})
	outs := b.Start()
	inis := initialsOf(outs)
	if len(inis) != 1 || inis[0].Value != msg.V0 {
		t.Fatalf("balancer sent %+v, want value 0", inis)
	}
	// Zeros lead -> claims 1.
	b2 := NewBalancer(honest(t, 4, 1, 0, msg.V0), fakeWorld{zeros: 3, ones: 1})
	if inis := initialsOf(b2.Start()); len(inis) != 1 || inis[0].Value != msg.V1 {
		t.Fatalf("balancer sent %+v, want value 1", inis)
	}
}

func TestBalancerLeavesEchoesAlone(t *testing.T) {
	b := NewBalancer(honest(t, 4, 1, 0, msg.V1), fakeWorld{zeros: 0, ones: 4})
	b.Start()
	outs := b.OnMessage(msg.Initial(2, 0, msg.V1))
	if len(outs) != 1 || outs[0].Msg.Kind != msg.KindEcho || outs[0].Msg.Value != msg.V1 {
		t.Fatalf("echo corrupted: %+v", outs)
	}
}

func TestFixedLiar(t *testing.T) {
	l := NewFixedLiar(honest(t, 4, 1, 2, msg.V1), msg.V0)
	inis := initialsOf(l.Start())
	if len(inis) != 1 || inis[0].Value != msg.V0 {
		t.Fatalf("liar sent %+v", inis)
	}
}

func TestFlipperDeterministicPerSeed(t *testing.T) {
	vals := func(seed uint64) msg.Value {
		f := NewFlipper(honest(t, 4, 1, 0, msg.V0), rand.New(rand.NewPCG(seed, 1)))
		return initialsOf(f.Start())[0].Value
	}
	if vals(7) != vals(7) {
		t.Error("same seed, different flip")
	}
}

func TestEquivocatorSplitsBroadcast(t *testing.T) {
	n := 6
	e := NewEquivocator(honest(t, n, 1, 0, msg.V1), n)
	outs := e.Start()
	if len(outs) != n {
		t.Fatalf("%d sends, want %d unicasts", len(outs), n)
	}
	for _, o := range outs {
		if o.To == msg.Broadcast {
			t.Fatal("broadcast not expanded")
		}
		want := msg.V1
		if int(o.To) < n/2 {
			want = msg.V0
		}
		if o.Msg.Value != want {
			t.Errorf("recipient %d got %d, want %d", o.To, o.Msg.Value, want)
		}
	}
}

func TestTwoFacedSplitsAtBoundary(t *testing.T) {
	n := 6
	tf := NewTwoFaced(honest(t, n, 1, 0, msg.V1), n, 2)
	outs := tf.Start()
	if len(outs) != n {
		t.Fatalf("%d sends", len(outs))
	}
	for _, o := range outs {
		want := msg.V1
		if o.To < 2 {
			want = msg.V0
		}
		if o.Msg.Value != want {
			t.Errorf("recipient %d got %d, want %d", o.To, o.Msg.Value, want)
		}
	}
}

func TestDoubleEchoerDuplicatesEchoes(t *testing.T) {
	d := NewDoubleEchoer(honest(t, 4, 1, 0, msg.V0))
	d.Start()
	outs := d.OnMessage(msg.Initial(2, 0, msg.V1))
	var echoes []msg.Message
	for _, o := range outs {
		if o.Msg.Kind == msg.KindEcho {
			echoes = append(echoes, o.Msg)
		}
	}
	if len(echoes) != 2 {
		t.Fatalf("%d echoes, want 2", len(echoes))
	}
	if echoes[0].Value == echoes[1].Value {
		t.Error("duplicate echo not conflicting")
	}
}

func TestMuteStopsTalking(t *testing.T) {
	inner := honest(t, 4, 1, 0, msg.V0)
	m := NewMute(inner, 0) // mute from phase 0: never sends
	if outs := m.Start(); outs != nil {
		t.Fatalf("mute spoke: %+v", outs)
	}
	if outs := m.OnMessage(msg.Initial(1, 0, msg.V1)); outs != nil {
		t.Fatalf("mute echoed: %+v", outs)
	}
}

func TestMutatedDelegates(t *testing.T) {
	inner := honest(t, 4, 1, 2, msg.V1)
	m := NewMutated(inner, nil)
	if m.ID() != 2 || m.Phase() != 0 || m.Halted() {
		t.Error("delegation wrong")
	}
	if outs := m.Start(); len(outs) != 1 {
		t.Error("nil rewrite should pass through")
	}
}

func TestWildcardMessagesNotRewritten(t *testing.T) {
	// Strategies leave post-decision wildcard messages intact; verify via
	// FixedLiar by pushing an honest machine to decision.
	inner := honest(t, 4, 1, 0, msg.V1)
	liar := NewFixedLiar(inner, msg.V0)
	liar.Start()
	// Drive the inner machine to decide 1: accept 3 subjects with value 1.
	var outs []core.Outbound
	for q := 0; q < 3; q++ {
		for s := 0; s < 3; s++ { // threshold (4+1)/2+1 = 3
			outs = append(outs, liar.OnMessage(msg.Echo(msg.ID(s), msg.ID(q), 0, msg.V1))...)
		}
	}
	var sawWild bool
	for _, o := range outs {
		if o.Msg.Phase.IsWildcard() {
			sawWild = true
			if o.Msg.Value != msg.V1 {
				t.Errorf("wildcard value rewritten to %d", o.Msg.Value)
			}
		}
	}
	if !sawWild {
		t.Fatal("no wildcard messages emitted after decision")
	}
}

func TestImpersonatorForgesFullHistories(t *testing.T) {
	n := 4
	im := NewImpersonatorMachine(3, n, 2)
	outs := im.Start()
	// Per recipient: n initials + n*n echoes.
	want := n * (n + n*n)
	if len(outs) != want {
		t.Fatalf("%d sends, want %d", len(outs), want)
	}
	for _, o := range outs {
		if o.To == msg.Broadcast {
			t.Fatal("impersonator must unicast")
		}
		wantVal := msg.V1
		if o.To < 2 {
			wantVal = msg.V0
		}
		if o.Msg.Value != wantVal {
			t.Fatalf("recipient %d got value %d", o.To, o.Msg.Value)
		}
		switch o.Msg.Kind {
		case msg.KindInitial:
			if o.Msg.From != o.Msg.Subject {
				t.Fatal("forged initial with mismatched subject")
			}
		case msg.KindEcho:
		default:
			t.Fatalf("unexpected kind %v", o.Msg.Kind)
		}
	}
	// Fire-and-forget: started once, then silent and halted.
	if im.Start() != nil || !im.Halted() {
		t.Fatal("impersonator restarted or kept running")
	}
	if im.OnMessage(msg.Initial(0, 0, msg.V0)) != nil {
		t.Fatal("impersonator responded to input")
	}
}
