package runtime

import (
	"testing"

	"resilient/internal/benor"
	"resilient/internal/core"
	"resilient/internal/failstop"
	"resilient/internal/faults"
	"resilient/internal/majority"
	"resilient/internal/malicious"
	"resilient/internal/msg"
	"resilient/internal/sched"
)

func failStopSpawner(t *testing.T) Spawner {
	t.Helper()
	return func(ctx SpawnContext) (core.Machine, error) {
		return failstop.New(ctx.Config, ctx.Sink)
	}
}

func majoritySpawner(t *testing.T) Spawner {
	t.Helper()
	return func(ctx SpawnContext) (core.Machine, error) {
		return majority.New(ctx.Config, ctx.Sink)
	}
}

func maliciousSpawner(t *testing.T) Spawner {
	t.Helper()
	return func(ctx SpawnContext) (core.Machine, error) {
		return malicious.New(ctx.Config, ctx.Sink)
	}
}

func benorSpawner(t *testing.T, mode benor.Mode) Spawner {
	t.Helper()
	return func(ctx SpawnContext) (core.Machine, error) {
		return benor.New(ctx.Config, mode, ctx.RNG, ctx.Sink)
	}
}

func mixedInputs(n int) []msg.Value {
	in := make([]msg.Value, n)
	for i := range in {
		in[i] = msg.Value(i % 2)
	}
	return in
}

func sameInputs(n int, v msg.Value) []msg.Value {
	in := make([]msg.Value, n)
	for i := range in {
		in[i] = v
	}
	return in
}

func requireConsensus(t *testing.T, res *Result, label string) {
	t.Helper()
	if res.Stalled != NotStalled {
		t.Fatalf("%s: stalled: %v", label, res.Stalled)
	}
	if !res.AllDecided {
		t.Fatalf("%s: not all correct processes decided (%d decisions)", label, res.DecidedCount())
	}
	if !res.Agreement {
		t.Fatalf("%s: agreement violated: %v", label, res.Decisions)
	}
}

func TestFailStopNoFaults(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		res, err := Run(Config{
			N: 7, K: 3, Inputs: mixedInputs(7),
			Spawn: failStopSpawner(t), Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		requireConsensus(t, res, "failstop")
	}
}

func TestFailStopUnanimousValidity(t *testing.T) {
	for _, v := range []msg.Value{msg.V0, msg.V1} {
		res, err := Run(Config{
			N: 9, K: 4, Inputs: sameInputs(9, v),
			Spawn: failStopSpawner(t), Seed: 42,
		})
		if err != nil {
			t.Fatal(err)
		}
		requireConsensus(t, res, "failstop unanimous")
		if res.Value != v {
			t.Fatalf("validity violated: inputs all %d, decided %d", v, res.Value)
		}
	}
}

func TestFailStopWithCrashes(t *testing.T) {
	// Kill k processes at assorted phases, including mid-broadcast.
	plan := faults.Plan{
		0: {Process: 0, Phase: 0, AfterSends: 0}, // initially dead
		3: {Process: 3, Phase: 1, AfterSends: 4}, // mid-broadcast in phase 1
		5: {Process: 5, Phase: 2, AfterSends: 9},
	}
	for seed := uint64(0); seed < 20; seed++ {
		res, err := Run(Config{
			N: 7, K: 3, Inputs: mixedInputs(7),
			Spawn: failStopSpawner(t), Crashes: plan, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		requireConsensus(t, res, "failstop with crashes")
	}
}

func TestMajorityVariant(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		res, err := Run(Config{
			N: 10, K: 3, Inputs: mixedInputs(10),
			Spawn: majoritySpawner(t), Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		requireConsensus(t, res, "majority")
	}
}

func TestMaliciousAllHonest(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		res, err := Run(Config{
			N: 7, K: 2, Inputs: mixedInputs(7),
			Spawn: maliciousSpawner(t), Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		requireConsensus(t, res, "malicious all-honest")
	}
}

func TestMaliciousUnanimousValidity(t *testing.T) {
	res, err := Run(Config{
		N: 7, K: 2, Inputs: sameInputs(7, msg.V1),
		Spawn: maliciousSpawner(t), Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireConsensus(t, res, "malicious unanimous")
	if res.Value != msg.V1 {
		t.Fatalf("validity violated: decided %d", res.Value)
	}
}

func TestBenOrCrashMode(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		res, err := Run(Config{
			N: 7, K: 3, Inputs: mixedInputs(7),
			Spawn: benorSpawner(t, benor.Crash), Seed: seed,
			Scheduler: sched.Uniform{Min: 0.1, Max: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		requireConsensus(t, res, "benor crash")
	}
}

func TestBenOrByzantineModeHonest(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		res, err := Run(Config{
			N: 11, K: 2, Inputs: mixedInputs(11),
			Spawn: benorSpawner(t, benor.Byzantine), Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		requireConsensus(t, res, "benor byzantine-mode honest")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		res, err := Run(Config{
			N: 7, K: 3, Inputs: mixedInputs(7),
			Spawn: failStopSpawner(t), Seed: 12345,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.MessagesSent != b.MessagesSent || a.SimTime != b.SimTime || a.Value != b.Value ||
		a.Events != b.Events {
		t.Fatalf("same seed produced different executions:\n%+v\n%+v", a, b)
	}
}
