package runtime

import (
	"testing"

	"resilient/internal/adversary"
	"resilient/internal/core"
	"resilient/internal/faults"
	"resilient/internal/msg"
	"resilient/internal/sched"
	"resilient/internal/trace"
)

func TestConfigValidation(t *testing.T) {
	good := Config{N: 3, K: 1, Inputs: mixedInputs(3), Spawn: failStopSpawner(t)}
	bad := []Config{
		{N: 0, K: 0, Inputs: nil, Spawn: good.Spawn},
		{N: 3, K: 3, Inputs: mixedInputs(3), Spawn: good.Spawn},
		{N: 3, K: -1, Inputs: mixedInputs(3), Spawn: good.Spawn},
		{N: 3, K: 1, Inputs: mixedInputs(2), Spawn: good.Spawn},
		{N: 3, K: 1, Inputs: []msg.Value{0, 1, 9}, Spawn: good.Spawn},
		{N: 3, K: 1, Inputs: mixedInputs(3), Spawn: nil},
		{N: 3, K: 1, Inputs: mixedInputs(3), Spawn: good.Spawn,
			Crashes: faults.Plan{5: {Process: 5}}},
		{N: 3, K: 1, Inputs: mixedInputs(3), Spawn: good.Spawn,
			Byzantine: map[msg.ID]bool{7: true}},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := Run(good); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestSpawnErrorPropagates(t *testing.T) {
	_, err := Run(Config{
		N: 3, K: 1, Inputs: mixedInputs(3),
		Spawn: func(ctx SpawnContext) (core.Machine, error) {
			if ctx.Config.Self == 2 {
				return nil, errTest
			}
			return failStopSpawner(t)(ctx)
		},
	})
	if err == nil {
		t.Fatal("spawn error swallowed")
	}
}

var errTest = errTestType{}

type errTestType struct{}

func (errTestType) Error() string { return "test error" }

func TestNilMachineRejected(t *testing.T) {
	_, err := Run(Config{
		N: 2, K: 0, Inputs: mixedInputs(2),
		Spawn: func(ctx SpawnContext) (core.Machine, error) { return nil, nil },
	})
	if err == nil {
		t.Fatal("nil machine accepted")
	}
}

func TestEventBudgetStops(t *testing.T) {
	res, err := Run(Config{
		N: 7, K: 3, Inputs: mixedInputs(7),
		Spawn:     failStopSpawner(t),
		MaxEvents: 5,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled != EventBudget {
		t.Fatalf("stall reason %v, want EventBudget", res.Stalled)
	}
}

func TestTimeHorizonStops(t *testing.T) {
	res, err := Run(Config{
		N: 7, K: 3, Inputs: mixedInputs(7),
		Spawn:      failStopSpawner(t),
		Scheduler:  sched.Constant{D: 100},
		MaxSimTime: 50, // first deliveries land at t=100
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled != TimeHorizon {
		t.Fatalf("stall reason %v, want TimeHorizon", res.Stalled)
	}
	if res.DecidedCount() != 0 {
		t.Fatal("decisions before any delivery")
	}
}

func TestQueueDrainedDetection(t *testing.T) {
	// Kill n-1 processes immediately: the survivor waits for n-k messages
	// that never come once the queue drains.
	plan := faults.InitiallyDead(1, 2)
	res, err := Run(Config{
		N: 3, K: 1, Inputs: mixedInputs(3),
		Spawn:   failStopSpawner(t),
		Crashes: plan,
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled != QueueDrained {
		t.Fatalf("stall reason %v, want QueueDrained", res.Stalled)
	}
}

func TestCrashedProcessesReported(t *testing.T) {
	plan := faults.Plan{
		0: {Process: 0, Phase: 0, AfterSends: 2},
	}
	res, err := Run(Config{
		N: 5, K: 2, Inputs: mixedInputs(5),
		Spawn:   failStopSpawner(t),
		Crashes: plan,
		Seed:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Crashed) != 1 || res.Crashed[0] != 0 {
		t.Fatalf("crashed %v, want [0]", res.Crashed)
	}
	requireConsensus(t, res, "crash reporting")
}

func TestMidBroadcastCrashDeliversPrefixOnly(t *testing.T) {
	// A process dying after 2 sends of its phase-0 broadcast reaches at
	// most 2 mailboxes.
	buf := trace.NewBuffer(0)
	plan := faults.Plan{0: {Process: 0, Phase: 0, AfterSends: 2}}
	_, err := Run(Config{
		N: 5, K: 2, Inputs: mixedInputs(5),
		Spawn:   failStopSpawner(t),
		Crashes: plan,
		Seed:    5,
		Sink:    buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	sent := 0
	for _, e := range buf.Filter(trace.EventSend) {
		if e.Process == 0 {
			sent++
		}
	}
	if sent != 2 {
		t.Fatalf("p0 sent %d messages, want exactly 2", sent)
	}
}

func TestAuthenticationStampsSender(t *testing.T) {
	// A machine that forges From on its messages: the runtime must
	// overwrite it.
	forger := &forgingMachine{id: 0, n: 3}
	res, err := Run(Config{
		N: 3, K: 0, Inputs: mixedInputs(3),
		Spawn: func(ctx SpawnContext) (core.Machine, error) {
			if ctx.Config.Self == 0 {
				return forger, nil
			}
			return majoritySpawner(t)(ctx)
		},
		Byzantine: map[msg.ID]bool{0: true},
		Seed:      6,
		MaxEvents: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	for _, m := range forger.seen {
		if m.From == 99 {
			t.Fatal("forged sender id survived the transport")
		}
	}
}

type forgingMachine struct {
	id   msg.ID
	n    int
	seen []msg.Message
}

func (f *forgingMachine) ID() msg.ID { return f.id }
func (f *forgingMachine) Start() []core.Outbound {
	m := msg.Val(99, 0, msg.V1) // claims to be p99
	return []core.Outbound{core.ToAll(m)}
}
func (f *forgingMachine) OnMessage(in msg.Message) []core.Outbound {
	f.seen = append(f.seen, in)
	return nil
}
func (f *forgingMachine) Decided() (msg.Value, bool) { return 0, false }
func (f *forgingMachine) Halted() bool               { return false }
func (f *forgingMachine) Phase() msg.Phase           { return 0 }

func TestPartitionSchedulerStallsMinority(t *testing.T) {
	res, err := Run(Config{
		N: 7, K: 3, Inputs: mixedInputs(7),
		Spawn:      failStopSpawner(t),
		Scheduler:  adversary.Partition{GroupOf: adversary.Halves(4)},
		Seed:       8,
		MaxSimTime: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The majority side (4 >= n-k) can decide; the 3-process side cannot.
	if !res.Agreement {
		t.Fatal("partition broke agreement within the bound")
	}
	if res.AllDecided {
		t.Fatal("minority partition decided without n-k reachable processes")
	}
}

func TestRunToCompletionCountsTrailingTraffic(t *testing.T) {
	a, err := Run(Config{
		N: 5, K: 2, Inputs: mixedInputs(5),
		Spawn: failStopSpawner(t), Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{
		N: 5, K: 2, Inputs: mixedInputs(5),
		Spawn: failStopSpawner(t), Seed: 9,
		RunToCompletion: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.Events < a.Events {
		t.Fatalf("run-to-completion processed fewer events (%d < %d)", b.Events, a.Events)
	}
}

func TestWorldViewCounts(t *testing.T) {
	// Exercise the world view through a balancer-style probe machine.
	var observed [2]int
	probe := func(ctx SpawnContext) (core.Machine, error) {
		if ctx.Config.Self == 3 {
			w := ctx.World
			return &probeMachine{id: 3, probe: func() {
				observed[0], observed[1] = w.CorrectValueCounts()
			}}, nil
		}
		return majoritySpawner(t)(ctx)
	}
	_, err := Run(Config{
		N: 4, K: 1, Inputs: []msg.Value{0, 0, 1, 1},
		Spawn:     probe,
		Byzantine: map[msg.ID]bool{3: true},
		Seed:      10,
		MaxEvents: 100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if observed[0]+observed[1] != 3 {
		t.Fatalf("world view saw %v correct processes, want 3", observed)
	}
}

type probeMachine struct {
	id    msg.ID
	probe func()
	done  bool
}

func (p *probeMachine) ID() msg.ID { return p.id }
func (p *probeMachine) Start() []core.Outbound {
	p.probe()
	return nil
}
func (p *probeMachine) OnMessage(msg.Message) []core.Outbound {
	if !p.done {
		p.probe()
		p.done = true
	}
	return nil
}
func (p *probeMachine) Decided() (msg.Value, bool) { return 0, false }
func (p *probeMachine) Halted() bool               { return false }
func (p *probeMachine) Phase() msg.Phase           { return 0 }

func TestStragglerFinishesViaWildcards(t *testing.T) {
	// One process is served 40x slower than the rest: the others decide and
	// halt long before it completes a phase; it must still decide, driven
	// purely by the Section 3.3 post-decision wildcard messages.
	n, k := 7, 2
	res, err := Run(Config{
		N: n, K: k, Inputs: mixedInputs(n),
		Spawn: maliciousSpawner(t),
		Scheduler: sched.Skewed{
			Base:       sched.Uniform{Min: 0.1, Max: 1},
			SlowSet:    map[msg.ID]bool{6: true},
			SlowFactor: 40,
		},
		Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireConsensus(t, res, "wildcard straggler")
	// The straggler must actually be the last decider by simulated time.
	var lastID msg.ID
	lastT := -1.0
	for id, at := range res.DecisionTime {
		if at > lastT {
			lastT, lastID = at, id
		}
	}
	if lastID != 6 {
		t.Logf("note: straggler p6 was not last (p%d was); scheduler skew too weak for seed", lastID)
	}
}

func TestFigure1StragglersAfterDecidersHalt(t *testing.T) {
	// Figure 1 deciders halt after two final witness batches. With maximal
	// crash budget spent and one heavily delayed process, the two final
	// batches must carry the straggler to its own decision.
	n, k := 7, 3
	res, err := Run(Config{
		N: n, K: k, Inputs: mixedInputs(n),
		Spawn: failStopSpawner(t),
		Crashes: faults.Plan{
			0: {Process: 0, Phase: 1, AfterSends: 3},
		},
		Scheduler: sched.Skewed{
			Base:       sched.Uniform{Min: 0.1, Max: 1},
			SlowSet:    map[msg.ID]bool{6: true},
			SlowFactor: 40,
		},
		Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireConsensus(t, res, "fig1 straggler")
}
