package runtime

// eventQueue is a 4-ary min-heap of pending deliveries ordered by
// (at, seq). It replaces container/heap, whose any-typed Push/Pop box every
// event on the heap's hottest path; here push and pop are monomorphic, so
// steady-state queue traffic performs zero allocations (the backing array
// grows amortized and is then reused for the rest of the run).
//
// The ordering key (at, seq) is a strict total order -- seq is unique per
// run -- so pop order is identical to the binary container/heap it
// replaces: the heap arity changes only the internal tree shape, never
// which event is the minimum. A 4-ary layout halves the tree depth, which
// wins on sift-down-heavy workloads like a discrete-event loop that pops as
// often as it pushes.
type eventQueue struct {
	h []event
}

// before reports whether a orders strictly before b.
func before(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// len returns the number of queued events.
func (q *eventQueue) len() int { return len(q.h) }

// peek returns the minimum event without removing it.
func (q *eventQueue) peek() (event, bool) {
	if len(q.h) == 0 {
		return event{}, false
	}
	return q.h[0], true
}

// push inserts e, sifting it up to its heap position.
func (q *eventQueue) push(e event) {
	q.h = append(q.h, e)
	i := len(q.h) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !before(&q.h[i], &q.h[parent]) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

// pop removes and returns the minimum event. It must not be called on an
// empty queue.
func (q *eventQueue) pop() event {
	top := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h[last] = event{} // drop the Payload reference for the GC
	q.h = q.h[:last]
	q.siftDown(0)
	return top
}

func (q *eventQueue) siftDown(i int) {
	n := len(q.h)
	for {
		first := i<<2 + 1
		if first >= n {
			return
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if before(&q.h[c], &q.h[min]) {
				min = c
			}
		}
		if !before(&q.h[min], &q.h[i]) {
			return
		}
		q.h[i], q.h[min] = q.h[min], q.h[i]
		i = min
	}
}
