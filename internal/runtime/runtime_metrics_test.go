package runtime_test

import (
	"sync"
	"testing"

	"resilient/internal/core"
	"resilient/internal/failstop"
	"resilient/internal/faults"
	"resilient/internal/metrics"
	"resilient/internal/msg"
	"resilient/internal/runtime"
)

func failstopConfig(n, k int, seed uint64, reg *metrics.Registry) runtime.Config {
	inputs := make([]msg.Value, n)
	for i := range inputs {
		inputs[i] = msg.Value(i % 2)
	}
	return runtime.Config{
		N: n, K: k, Inputs: inputs,
		Spawn: func(ctx runtime.SpawnContext) (core.Machine, error) {
			return failstop.New(ctx.Config, ctx.Sink)
		},
		Seed:    seed,
		Metrics: reg,
	}
}

// TestRunMetricsMatchResult checks that the registry's counters agree with
// the per-run Result fields, and that the result carries a snapshot.
func TestRunMetricsMatchResult(t *testing.T) {
	reg := metrics.NewRegistry()
	res, err := runtime.Run(failstopConfig(7, 3, 1, reg))
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil {
		t.Fatal("Result.Metrics missing despite attached registry")
	}
	c := res.Metrics.Counters
	if got := c["runtime.messages_sent"]; got != int64(res.MessagesSent) {
		t.Errorf("messages_sent counter = %d, Result = %d", got, res.MessagesSent)
	}
	if got := c["runtime.messages_delivered"]; got != int64(res.MessagesDelivered) {
		t.Errorf("messages_delivered counter = %d, Result = %d", got, res.MessagesDelivered)
	}
	if got := c["runtime.events"]; got != int64(res.Events) {
		t.Errorf("events counter = %d, Result = %d", got, res.Events)
	}
	if got := c["runtime.decisions"]; got != int64(len(res.Decisions)) {
		t.Errorf("decisions counter = %d, Result = %d", got, len(res.Decisions))
	}
	if c["runtime.runs"] != 1 || c["runtime.stalls"] != 0 {
		t.Errorf("runs/stalls = %d/%d, want 1/0", c["runtime.runs"], c["runtime.stalls"])
	}
	if res.WallClock <= 0 {
		t.Error("WallClock not recorded")
	}
	h := res.Metrics.Histograms["runtime.decision_phase"]
	if h.Count != uint64(len(res.DecisionPhase)) {
		t.Errorf("decision_phase histogram count = %d, want %d", h.Count, len(res.DecisionPhase))
	}
}

// TestRunMetricsCrashesAndStalls checks fault accounting: a run whose
// quorum is destroyed must record the stall and the crashes.
func TestRunMetricsCrashesAndStalls(t *testing.T) {
	reg := metrics.NewRegistry()
	cfg := failstopConfig(5, 2, 3, reg)
	// Kill 3 of 5 at phase 0: only 2 survive, below the n-k=3 quorum.
	cfg.Crashes = faults.InitiallyDead(2, 3, 4)
	res, err := runtime.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AllDecided {
		t.Fatal("run with a destroyed quorum decided")
	}
	c := res.Metrics.Counters
	if c["runtime.stalls"] != 1 {
		t.Errorf("stalls = %d, want 1", c["runtime.stalls"])
	}
	if c["runtime.crashes"] != 3 {
		t.Errorf("crashes = %d, want 3", c["runtime.crashes"])
	}
}

// TestRunMetricsNilRegistryUnchanged checks the zero-config path: no
// registry, identical Result (metrics must not perturb the execution).
func TestRunMetricsNilRegistryUnchanged(t *testing.T) {
	withReg, err := runtime.Run(failstopConfig(7, 3, 9, metrics.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	without, err := runtime.Run(failstopConfig(7, 3, 9, nil))
	if err != nil {
		t.Fatal(err)
	}
	if without.Metrics != nil {
		t.Error("Result.Metrics set without a registry")
	}
	if withReg.MessagesSent != without.MessagesSent || withReg.Value != without.Value ||
		withReg.MaxPhase != without.MaxPhase || withReg.Events != without.Events {
		t.Errorf("metrics perturbed the execution: %+v vs %+v", withReg, without)
	}
}

// TestSharedRegistryAcrossConcurrentRuns drives many runs in parallel into
// one registry; meaningful under -race, and the totals must add up.
func TestSharedRegistryAcrossConcurrentRuns(t *testing.T) {
	t.Parallel()
	reg := metrics.NewRegistry()
	const runs = 16
	sent := make([]int, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := runtime.Run(failstopConfig(5, 2, uint64(i), reg))
			if err != nil {
				t.Error(err)
				return
			}
			sent[i] = res.MessagesSent
		}(i)
	}
	wg.Wait()
	var total int64
	for _, s := range sent {
		total += int64(s)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["runtime.messages_sent"]; got != total {
		t.Errorf("aggregated messages_sent = %d, sum of runs = %d", got, total)
	}
	if got := snap.Counters["runtime.runs"]; got != runs {
		t.Errorf("runs counter = %d, want %d", got, runs)
	}
}
