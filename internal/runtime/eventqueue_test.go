package runtime

import (
	"container/heap"
	"math/rand/v2"
	"testing"
)

// refHeap is the container/heap implementation the typed queue replaced,
// kept here as the ordering oracle.
type refHeap []event

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// TestEventQueueMatchesContainerHeap drives the 4-ary queue and the
// container/heap oracle with identical interleaved push/pop sequences,
// including duplicate timestamps (where the seq tiebreak decides), and
// requires identical pop orders.
func TestEventQueueMatchesContainerHeap(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewPCG(seed, 7))
		var q eventQueue
		var ref refHeap
		var seq uint64
		for op := 0; op < 5000; op++ {
			if q.len() != ref.Len() {
				t.Fatalf("seed %d op %d: len %d vs %d", seed, op, q.len(), ref.Len())
			}
			if rng.IntN(3) != 0 || ref.Len() == 0 {
				seq++
				// Coarse timestamps force frequent at-ties.
				e := event{at: float64(rng.IntN(50)), seq: seq}
				q.push(e)
				heap.Push(&ref, e)
				continue
			}
			got := q.pop()
			want := heap.Pop(&ref).(event)
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("seed %d op %d: popped (at=%v seq=%d), oracle (at=%v seq=%d)",
					seed, op, got.at, got.seq, want.at, want.seq)
			}
		}
		for ref.Len() > 0 {
			got, want := q.pop(), heap.Pop(&ref).(event)
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("seed %d drain: popped seq=%d, oracle seq=%d", seed, got.seq, want.seq)
			}
		}
		if q.len() != 0 {
			t.Fatalf("seed %d: queue not drained", seed)
		}
	}
}

func TestEventQueuePeek(t *testing.T) {
	var q eventQueue
	if _, ok := q.peek(); ok {
		t.Fatal("peek on empty queue returned ok")
	}
	q.push(event{at: 2, seq: 1})
	q.push(event{at: 1, seq: 2})
	if e, ok := q.peek(); !ok || e.at != 1 {
		t.Fatalf("peek = (%v, %v), want at=1", e.at, ok)
	}
	if q.len() != 2 {
		t.Fatalf("peek consumed an event: len=%d", q.len())
	}
}

// TestEventQueuePushPopNoAllocs locks in the reason the typed queue exists:
// steady-state push/pop traffic must not allocate (container/heap boxed
// every event through any).
func TestEventQueuePushPopNoAllocs(t *testing.T) {
	var q eventQueue
	for i := 0; i < 1024; i++ { // pre-grow the backing array
		q.push(event{at: float64(i), seq: uint64(i)})
	}
	for q.len() > 0 {
		q.pop()
	}
	var seq uint64
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 512; i++ {
			seq++
			q.push(event{at: float64(seq % 97), seq: seq})
		}
		for q.len() > 0 {
			q.pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state push/pop allocated %.1f times per round", allocs)
	}
}

// BenchmarkEventQueue measures raw queue throughput: push 1e5 events with
// colliding timestamps, then pop them all.
func BenchmarkEventQueue(b *testing.B) {
	const size = 100_000
	rng := rand.New(rand.NewPCG(42, 0))
	at := make([]float64, size)
	for i := range at {
		at[i] = float64(rng.IntN(1000))
	}
	var q eventQueue
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < size; j++ {
			q.push(event{at: at[j], seq: uint64(j)})
		}
		for q.len() > 0 {
			q.pop()
		}
	}
}
