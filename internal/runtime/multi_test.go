package runtime

import (
	"testing"

	"resilient/internal/faults"
	"resilient/internal/msg"
)

// multiConfigs builds count independent malicious-protocol instances with
// per-instance seeds and unanimous inputs alternating by instance.
func multiConfigs(t *testing.T, count int) []Config {
	t.Helper()
	cfgs := make([]Config, count)
	for i := range cfgs {
		v := msg.V1
		if i%3 == 0 {
			v = msg.V0
		}
		cfgs[i] = Config{
			N: 7, K: 2, Inputs: sameInputs(7, v),
			Spawn: maliciousSpawner(t),
			Seed:  uint64(1000 + i*7919),
		}
	}
	return cfgs
}

// TestRunMultiMatchesSequentialRun pins the core equivalence: each
// instance's decisions under any window are identical to running its Config
// alone through Run, because instances interleave on the global clock but
// never interact.
func TestRunMultiMatchesSequentialRun(t *testing.T) {
	cfgs := multiConfigs(t, 9)
	want := make([]*Result, len(cfgs))
	for i, cfg := range cfgs {
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	for _, window := range []int{1, 2, 4, 16} {
		got, err := RunMulti(multiConfigs(t, 9), window)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(cfgs) {
			t.Fatalf("window %d: %d results for %d instances", window, len(got), len(cfgs))
		}
		for i, mr := range got {
			res := mr.Result
			if res == nil {
				t.Fatalf("window %d: instance %d has no result", window, i)
			}
			if !res.AllDecided || !res.Agreement {
				t.Fatalf("window %d: instance %d: decided=%v agreement=%v stalled=%v",
					window, i, res.AllDecided, res.Agreement, res.Stalled)
			}
			if res.Value != want[i].Value {
				t.Errorf("window %d: instance %d decided %v, sequential Run decided %v",
					window, i, res.Value, want[i].Value)
			}
			if res.MessagesSent != want[i].MessagesSent || res.SimTime != want[i].SimTime {
				t.Errorf("window %d: instance %d (msgs=%d simtime=%v) diverged from Run (msgs=%d simtime=%v)",
					window, i, res.MessagesSent, res.SimTime, want[i].MessagesSent, want[i].SimTime)
			}
		}
	}
}

// TestRunMultiWindowAdmission checks the pipeline-window schedule on the
// global clock: with window w, instance i is admitted no earlier than any of
// its predecessors' admissions, at most w instances overlap in [Start, End),
// and with w > 1 later instances start before earlier ones end (genuine
// pipelining), which a window of 1 must never do.
func TestRunMultiWindowAdmission(t *testing.T) {
	const count = 8
	for _, window := range []int{1, 3} {
		got, err := RunMulti(multiConfigs(t, count), window)
		if err != nil {
			t.Fatal(err)
		}
		overlapped := false
		for i := 1; i < count; i++ {
			if got[i].Start < got[i-1].Start {
				t.Fatalf("window %d: instance %d admitted at %v before instance %d at %v",
					window, i, got[i].Start, i-1, got[i-1].Start)
			}
			if got[i].Start < got[i-1].End {
				overlapped = true
				if window == 1 {
					t.Fatalf("window 1: instance %d started at %v before %d ended at %v",
						i, got[i].Start, i-1, got[i-1].End)
				}
			}
		}
		if window > 1 && !overlapped {
			t.Errorf("window %d: no instances ever overlapped", window)
		}
		// No global instant may have more than window instances in flight.
		for i := range got {
			inFlight := 0
			for j := range got {
				if got[j].Start <= got[i].Start && got[i].Start < got[j].End {
					inFlight++
				}
			}
			if inFlight > window {
				t.Fatalf("window %d: %d instances in flight at t=%v", window, inFlight, got[i].Start)
			}
		}
	}
}

// TestRunMultiDeterministic pins that the whole multi-run -- results and
// global placement -- is a pure function of the configs.
func TestRunMultiDeterministic(t *testing.T) {
	first, err := RunMulti(multiConfigs(t, 6), 3)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunMulti(multiConfigs(t, 6), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i].Start != second[i].Start || first[i].End != second[i].End ||
			first[i].Result.Value != second[i].Result.Value ||
			first[i].Result.MessagesSent != second[i].Result.MessagesSent {
			t.Fatalf("instance %d diverged across identical runs: %+v vs %+v",
				i, first[i], second[i])
		}
	}
}

// TestRunMultiCrashes checks fault plans apply per instance: an instance
// whose processes are initially dead beyond the proposer set still decides
// among the survivors, and the crash is reported on that instance only.
func TestRunMultiCrashes(t *testing.T) {
	cfgs := multiConfigs(t, 3)
	cfgs[1].Crashes = faults.InitiallyDead(3, 5)
	got, err := RunMulti(cfgs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, mr := range got {
		res := mr.Result
		if !res.AllDecided || !res.Agreement {
			t.Fatalf("instance %d: decided=%v agreement=%v", i, res.AllDecided, res.Agreement)
		}
		wantCrashes := 0
		if i == 1 {
			wantCrashes = 2
		}
		if len(res.Crashed) != wantCrashes {
			t.Errorf("instance %d crashed %v, want %d crashes", i, res.Crashed, wantCrashes)
		}
	}
}

// TestRunMultiValidation covers the error paths.
func TestRunMultiValidation(t *testing.T) {
	if _, err := RunMulti(multiConfigs(t, 2), 0); err == nil {
		t.Fatal("window 0 must be rejected")
	}
	bad := multiConfigs(t, 2)
	bad[1].N = 0
	if _, err := RunMulti(bad, 2); err == nil {
		t.Fatal("invalid instance config must be rejected")
	}
	if res, err := RunMulti(nil, 4); err != nil || res != nil {
		t.Fatalf("empty instance list = (%v, %v), want (nil, nil)", res, err)
	}
}
