// Package runtime is the deterministic discrete-event execution engine.
//
// It realizes the paper's system model (Section 2.1): processes take atomic
// steps -- receive a message, compute, send a finite set of messages -- and
// the message system delivers every sent message after a delay chosen by a
// pluggable scheduler. All nondeterminism flows through a single seeded
// random source, so a (Config, Seed) pair identifies exactly one execution;
// the stochastic schedulers realize the probabilistic delivery assumption of
// Section 2.3, and scripted schedulers realize the adversaries of the
// impossibility proofs.
//
// The engine supports fail-stop fault injection (death at any phase, even in
// the middle of a broadcast), Byzantine machines (via the Spawner), sender
// authentication (the engine stamps the true sender on every message),
// tracing, per-run metrics, and stall detection.
package runtime

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"time"

	"resilient/internal/core"
	"resilient/internal/faults"
	"resilient/internal/metrics"
	"resilient/internal/msg"
	"resilient/internal/policy"
	"resilient/internal/sched"
	"resilient/internal/trace"
)

// DefaultMaxEvents bounds the number of delivery events processed before the
// engine declares the run stalled; it is generous enough for every
// experiment in this repository at its configured sizes.
const DefaultMaxEvents = 20_000_000

// SpawnContext is everything a Spawner may use to build one process.
type SpawnContext struct {
	// Config is the per-process protocol configuration.
	Config core.Config
	// RNG is a process-private random source (e.g. for Ben-Or's coin).
	RNG *rand.Rand
	// World is the omniscient view; honest machines must ignore it.
	World core.WorldView
	// Sink receives trace events.
	Sink trace.Sink
	// Byzantine reports whether this process was listed in Config.Byzantine.
	Byzantine bool
}

// Spawner builds the protocol machine for one process.
type Spawner func(ctx SpawnContext) (core.Machine, error)

// Config describes one execution.
type Config struct {
	// N is the number of processes and K the protocol fault parameter.
	N, K int
	// Inputs holds the initial values i_p; len(Inputs) must equal N.
	Inputs []msg.Value
	// Spawn builds each process's machine.
	Spawn Spawner
	// Byzantine marks processes whose machines play an adversary role;
	// they are excluded from agreement/termination accounting.
	Byzantine map[msg.ID]bool
	// Crashes is the fail-stop fault plan.
	Crashes faults.Plan
	// Scheduler assigns message delays; defaults to Uniform[0.1, 1].
	// Ignored when Policy is set.
	Scheduler sched.Scheduler
	// Policy decides per-link delivery (delay and drop). When nil, the
	// Scheduler is wrapped via policy.FromScheduler, which is draw-identical
	// to consulting the scheduler directly -- the pre-policy goldens pin
	// this. A dropped message counts as sent but never delivers.
	Policy policy.LinkPolicy
	// Seed determines the execution.
	Seed uint64
	// Sink receives trace events; nil disables tracing.
	Sink trace.Sink
	// MaxEvents bounds processed deliveries (0 = DefaultMaxEvents).
	MaxEvents int
	// MaxSimTime stops the run once simulated time passes this horizon
	// (0 = unlimited). Used by the partition experiments, whose event
	// queues never drain.
	MaxSimTime float64
	// RunToCompletion keeps processing events after every correct process
	// has decided (for message-complexity measurements). By default the
	// run stops at the moment of the last correct decision.
	RunToCompletion bool
	// AllowForgery disables sender authentication: messages keep whatever
	// From field their sender wrote. The paper requires authentication for
	// the malicious case ("the message system must provide a way for
	// correct processes to verify the identity of the sender", Section
	// 3.1); this switch exists to demonstrate WHY -- see the E12
	// impersonation ablation, where a single forger splits the system.
	AllowForgery bool
	// Metrics, when non-nil, receives run-accounting counters and
	// histograms under the "runtime." prefix; nil keeps the hot path
	// allocation-free (like trace.Nop for tracing). A registry may be
	// shared across runs -- counters accumulate -- and is safe for
	// concurrent runs (e.g. a parallel sweep feeding one registry).
	Metrics *metrics.Registry
}

func (c *Config) validate() error {
	if c.N < 1 {
		return fmt.Errorf("runtime: need n >= 1, got %d", c.N)
	}
	if c.K < 0 || c.K >= c.N {
		return fmt.Errorf("runtime: need 0 <= k < n, got k=%d n=%d", c.K, c.N)
	}
	if len(c.Inputs) != c.N {
		return fmt.Errorf("runtime: %d inputs for %d processes", len(c.Inputs), c.N)
	}
	for i, v := range c.Inputs {
		if !v.Valid() {
			return fmt.Errorf("runtime: invalid input %d for p%d", v, i)
		}
	}
	if c.Spawn == nil {
		return errors.New("runtime: nil Spawner")
	}
	if err := c.Crashes.Validate(c.N); err != nil {
		return err
	}
	for id := range c.Byzantine {
		if id < 0 || int(id) >= c.N {
			return fmt.Errorf("runtime: byzantine id p%d outside 0..%d", id, c.N-1)
		}
	}
	return nil
}

// StallReason explains why a run ended without all correct processes
// deciding.
type StallReason int

const (
	// NotStalled means the run completed normally.
	NotStalled StallReason = iota
	// QueueDrained means no messages remained yet some correct process had
	// not decided: a genuine deadlock.
	QueueDrained
	// EventBudget means MaxEvents was exhausted: livelock or a run far
	// longer than expected.
	EventBudget
	// TimeHorizon means MaxSimTime was reached.
	TimeHorizon
)

// String names the reason.
func (r StallReason) String() string {
	switch r {
	case NotStalled:
		return "not stalled"
	case QueueDrained:
		return "queue drained (deadlock)"
	case EventBudget:
		return "event budget exhausted"
	case TimeHorizon:
		return "time horizon reached"
	default:
		return fmt.Sprintf("StallReason(%d)", int(r))
	}
}

// Result summarizes one execution.
type Result struct {
	// Decisions maps every non-Byzantine process that decided to its value.
	Decisions map[msg.ID]msg.Value
	// DecisionPhase maps deciders to the phase in which they decided.
	DecisionPhase map[msg.ID]msg.Phase
	// DecisionTime maps deciders to the simulation time of their decision.
	DecisionTime map[msg.ID]float64
	// Agreement reports whether all recorded decisions are equal.
	Agreement bool
	// Value is the common decision when Agreement holds and at least one
	// process decided.
	Value msg.Value
	// AllDecided reports whether every correct (non-Byzantine, non-crashed)
	// process decided.
	AllDecided bool
	// Stalled is non-zero when the run ended without AllDecided.
	Stalled StallReason
	// MessagesSent counts individual point-to-point sends (a broadcast to
	// n processes counts n).
	MessagesSent int
	// MessagesDelivered counts messages actually consumed by machines.
	MessagesDelivered int
	// MessagesDropped counts messages the link policy lost: they count as
	// sent but were never scheduled for delivery. Always zero under pure
	// scheduler policies.
	MessagesDropped int
	// Events counts processed delivery events, including drops.
	Events int
	// SimTime is the simulation clock at the end of the run.
	SimTime float64
	// MaxPhase is the largest phase any non-Byzantine machine reached.
	MaxPhase msg.Phase
	// Crashed lists processes that died during the run.
	Crashed []msg.ID
	// WallClock is the real time the run took inside Run.
	WallClock time.Duration
	// Metrics is a snapshot of Config.Metrics taken at the end of the run;
	// nil when no registry was attached. With a shared registry it reflects
	// everything accumulated so far, not just this run.
	Metrics *metrics.Snapshot
}

// DecidedCount returns the number of recorded decisions.
func (r *Result) DecidedCount() int { return len(r.Decisions) }

// event is one pending delivery.
type event struct {
	at  float64
	seq uint64
	to  msg.ID
	m   msg.Message
}

// runMetrics holds the engine's instrument handles, resolved once per run.
// Every handle is nil when no registry is attached, making each record call
// a no-op (see the metrics package).
type runMetrics struct {
	runs          *metrics.Counter
	sent          *metrics.Counter
	delivered     *metrics.Counter
	dropped       *metrics.Counter
	events        *metrics.Counter
	decisions     *metrics.Counter
	crashes       *metrics.Counter
	stalls        *metrics.Counter
	decisionPhase *metrics.Histogram
	maxPhase      *metrics.Histogram
	messages      *metrics.Histogram
	simTime       *metrics.Histogram
	wallSeconds   *metrics.Histogram
}

func newRunMetrics(reg *metrics.Registry) runMetrics {
	if reg == nil {
		return runMetrics{}
	}
	m := reg.Scoped("runtime.")
	return runMetrics{
		runs:          m.Counter("runs"),
		sent:          m.Counter("messages_sent"),
		delivered:     m.Counter("messages_delivered"),
		dropped:       m.Counter("messages_dropped"),
		events:        m.Counter("events"),
		decisions:     m.Counter("decisions"),
		crashes:       m.Counter("crashes"),
		stalls:        m.Counter("stalls"),
		decisionPhase: m.Histogram("decision_phase", metrics.PhaseBuckets()),
		maxPhase:      m.Histogram("max_phase", metrics.PhaseBuckets()),
		messages:      m.Histogram("messages_per_run", metrics.ExpBuckets(10, 4, 12)),
		simTime:       m.Histogram("sim_time", metrics.ExpBuckets(0.1, 4, 12)),
		wallSeconds:   m.Histogram("wall_seconds", metrics.TimeBuckets()),
	}
}

// runner holds one execution's state.
type runner struct {
	cfg      Config
	rng      *rand.Rand
	sink     trace.Sink
	traceOn  bool // sink.Enabled(), cached: gates per-message Event building
	pol      policy.LinkPolicy
	met      runMetrics
	machines []core.Machine
	harness  []*policy.FaultHarness
	crashed  []bool
	now      float64
	seq      uint64
	queue    eventQueue
	result   *Result
	// perm is the broadcast recipient-order scratch, shuffled in place per
	// broadcast (replacing a fresh rng.Perm allocation per call).
	perm []int
	// correct[i] reports whether process i counts toward agreement.
	correct []bool
	// mustDecide counts correct, crash-free processes yet to decide.
	mustDecide int
	decided    []bool
	// reporters[i] is machines[i]'s ValueReporter face, resolved once at
	// spawn so the omniscient world view never type-asserts on a hot path.
	reporters []core.ValueReporter
	// stepStamp identifies the current machine step; valStamp/valZeros/
	// valOnes memoize CorrectValueCounts within a step (no other machine's
	// state can change until the step ends, so one scan per step suffices
	// no matter how many sends a Byzantine balancer rewrites).
	stepStamp uint64
	valStamp  uint64
	valZeros  int
	valOnes   int
}

type worldView struct{ r *runner }

var _ core.WorldView = worldView{}

func (w worldView) N() int { return w.r.cfg.N }
func (w worldView) K() int { return w.r.cfg.K }

func (w worldView) CorrectValueCounts() (zeros, ones int) {
	r := w.r
	if r.valStamp == r.stepStamp {
		return r.valZeros, r.valOnes
	}
	for i, vr := range r.reporters {
		if vr == nil || !r.correct[i] || r.isDead(msg.ID(i)) {
			continue
		}
		if vr.CurrentValue() == msg.V1 {
			ones++
		} else {
			zeros++
		}
	}
	r.valStamp, r.valZeros, r.valOnes = r.stepStamp, zeros, ones
	return zeros, ones
}

func (w worldView) CorrectDecidedCounts() (zeros, ones int) {
	for i, m := range w.r.machines {
		if !w.r.correct[i] {
			continue
		}
		if v, ok := m.Decided(); ok {
			if v == msg.V1 {
				ones++
			} else {
				zeros++
			}
		}
	}
	return zeros, ones
}

// Run executes one configuration to completion and returns its result.
// An error indicates an invalid configuration or a Spawner failure, never a
// protocol misbehaviour: those are reported through the Result.
func Run(cfg Config) (*Result, error) {
	started := time.Now() //lint:allow walltime wall-clock run accounting; machines never observe it
	r, err := newRunner(cfg)
	if err != nil {
		return nil, err
	}
	r.start()
	r.loop()
	r.result.WallClock = time.Since(started) //lint:allow walltime wall-clock run accounting; machines never observe it
	r.finish()
	return r.result, nil
}

// newRunner validates the configuration and builds a runner with its
// machines spawned but no steps taken. Initial steps happen in start, so a
// multi-instance scheduler can admit an instance at a chosen global time.
func newRunner(cfg Config) (*runner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := &runner{
		cfg:       cfg,
		rng:       rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15)),
		sink:      cfg.Sink,
		pol:       cfg.Policy,
		met:       newRunMetrics(cfg.Metrics),
		machines:  make([]core.Machine, cfg.N),
		harness:   make([]*policy.FaultHarness, cfg.N),
		crashed:   make([]bool, cfg.N),
		correct:   make([]bool, cfg.N),
		decided:   make([]bool, cfg.N),
		reporters: make([]core.ValueReporter, cfg.N),
		perm:      make([]int, cfg.N),
		result: &Result{
			Decisions:     make(map[msg.ID]msg.Value),
			DecisionPhase: make(map[msg.ID]msg.Phase),
			DecisionTime:  make(map[msg.ID]float64),
		},
	}
	if r.sink == nil {
		r.sink = trace.Nop{}
	}
	r.traceOn = r.sink.Enabled()
	if r.pol == nil {
		r.pol = policy.FromScheduler(cfg.Scheduler)
	}
	world := worldView{r: r}
	for i := 0; i < cfg.N; i++ {
		id := msg.ID(i)
		byz := cfg.Byzantine[id]
		r.correct[i] = !byz
		if !byz {
			if _, crashes := cfg.Crashes[id]; !crashes {
				r.mustDecide++
			}
		}
		pcg := rand.NewPCG(cfg.Seed^uint64(i+1)*0xbf58476d1ce4e5b9, uint64(i)+cfg.Seed)
		m, err := cfg.Spawn(SpawnContext{
			Config:    core.Config{N: cfg.N, K: cfg.K, Self: id, Input: cfg.Inputs[i]},
			RNG:       rand.New(pcg),
			World:     world,
			Sink:      r.sink,
			Byzantine: byz,
		})
		if err != nil {
			return nil, fmt.Errorf("spawn p%d: %w", i, err)
		}
		if m == nil {
			return nil, fmt.Errorf("spawn p%d: nil machine", i)
		}
		r.machines[i] = m
		r.reporters[i], _ = m.(core.ValueReporter)
		r.harness[i] = policy.NewFaultHarness(m, cfg.Crashes)
	}
	return r, nil
}

// start takes every machine's initial step, enqueuing its first sends.
func (r *runner) start() {
	for i, m := range r.machines {
		r.stepStamp++
		r.noteProgress(msg.ID(i)) // a process may be planned to die before starting
		r.dispatch(msg.ID(i), m.Start())
		r.checkDecision(msg.ID(i))
	}
}

func (r *runner) isDead(id msg.ID) bool {
	return r.crashed[id] || r.harness[id].Dead()
}

// noteProgress lets the fault harness observe the process's phase, killing
// it if its planned crash point has been passed without sends.
func (r *runner) noteProgress(id msg.ID) {
	h := r.harness[id]
	wasDead := h.Dead()
	h.CheckPhase()
	if h.Dead() && !wasDead {
		r.markCrashed(id)
	}
}

func (r *runner) markCrashed(id msg.ID) {
	if r.crashed[id] {
		return
	}
	r.crashed[id] = true
	r.result.Crashed = append(r.result.Crashed, id)
	r.met.crashes.Inc()
	r.sink.Record(trace.Event{
		Time: r.now, Kind: trace.EventCrash, Process: id,
		Phase: r.machines[id].Phase(),
	})
}

// dispatch expands and enqueues the sends produced by one machine step,
// applying the sender's crash plan to each individual point-to-point send.
func (r *runner) dispatch(from msg.ID, outs []core.Outbound) {
	harness := r.harness[from]
	phase := r.machines[from].Phase()
	for _, o := range outs {
		if !r.cfg.AllowForgery {
			o.Msg.From = from // authenticated sender: forgery is impossible
		}
		if o.To != msg.Broadcast {
			if int(o.To) < 0 || int(o.To) >= r.cfg.N {
				continue
			}
			if !harness.AllowSendAt(phase) {
				r.markCrashed(from)
				return
			}
			r.enqueue(from, o.To, o.Msg)
			continue
		}
		// Broadcast in random recipient order, so that a mid-broadcast
		// death reaches a random subset of processes. The in-place
		// Fisher-Yates over the runner's scratch slice draws exactly the
		// variates rng.Perm would (rand/v2 Perm = identity + Shuffle, and
		// Shuffle's step i draws Uint64N(i+1)), so executions are
		// seed-for-seed identical to the allocating version it replaced.
		perm := r.perm
		for i := range perm {
			perm[i] = i
		}
		for i := len(perm) - 1; i > 0; i-- {
			j := int(r.rng.Uint64N(uint64(i + 1)))
			perm[i], perm[j] = perm[j], perm[i]
		}
		for _, q := range perm {
			if !harness.AllowSendAt(phase) {
				r.markCrashed(from)
				return
			}
			r.enqueue(from, msg.ID(q), o.Msg)
		}
	}
}

func (r *runner) enqueue(from, to msg.ID, m msg.Message) {
	v := r.pol.Link(from, to, m, r.now, r.rng)
	r.result.MessagesSent++
	r.met.sent.Inc()
	if v.Drop {
		// The link lost the message: it was sent but will never deliver.
		// No event is scheduled, so a fully partitioned run drains its
		// queue instead of chasing a 1e9-unit horizon.
		r.result.MessagesDropped++
		r.met.dropped.Inc()
		return
	}
	d := sched.Clamp(v.Delay)
	r.seq++
	r.queue.push(event{at: r.now + d, seq: r.seq, to: to, m: m})
	if r.traceOn {
		r.sink.Record(trace.Event{
			Time: r.now, Kind: trace.EventSend, Process: from,
			Phase: m.Phase, Value: m.Value,
			//lint:allow hotalloc note formatting runs only when a sink is enabled (traceOn gate)
			Note: fmt.Sprintf("%s -> p%d", m.Kind, to),
		})
	}
}

func (r *runner) loop() {
	maxEvents := r.maxEvents()
	for r.stepNext(maxEvents) {
	}
}

// maxEvents resolves the configured event budget.
func (r *runner) maxEvents() int {
	if r.cfg.MaxEvents <= 0 {
		return DefaultMaxEvents
	}
	return r.cfg.MaxEvents
}

// stepNext processes the next pending delivery. It returns false -- without
// consuming an event -- once the run is over: every correct process decided
// (unless RunToCompletion), the event budget or time horizon was hit, or the
// queue drained. This is the single-step face loop and the multi-instance
// scheduler share, so their per-event semantics cannot diverge.
func (r *runner) stepNext(maxEvents int) bool {
	if r.mustDecide == 0 && !r.cfg.RunToCompletion {
		return false
	}
	if r.result.Events >= maxEvents {
		r.result.Stalled = EventBudget
		return false
	}
	next, ok := r.queue.peek()
	if !ok {
		if r.mustDecide > 0 {
			r.result.Stalled = QueueDrained
		}
		return false
	}
	if r.cfg.MaxSimTime > 0 && next.at > r.cfg.MaxSimTime {
		if r.mustDecide > 0 {
			r.result.Stalled = TimeHorizon
		}
		return false
	}
	e := r.queue.pop()
	r.now = e.at
	r.result.Events++
	r.met.events.Inc()
	r.deliver(e)
	return true
}

func (r *runner) deliver(e event) {
	id := e.to
	m := r.machines[id]
	if r.isDead(id) || m.Halted() {
		r.met.dropped.Inc()
		return
	}
	r.result.MessagesDelivered++
	r.met.delivered.Inc()
	if r.traceOn {
		r.sink.Record(trace.Event{
			Time: r.now, Kind: trace.EventDeliver, Process: id,
			Phase: e.m.Phase, Value: e.m.Value,
			//lint:allow hotalloc note formatting runs only when a sink is enabled (traceOn gate)
			Note: fmt.Sprintf("%s from p%d", e.m.Kind, e.m.From),
		})
	}
	r.stepStamp++
	outs := m.OnMessage(e.m)
	r.noteProgress(id)
	if !r.isDead(id) {
		r.dispatch(id, outs)
	}
	r.checkDecision(id)
	if p := m.Phase(); r.correct[id] && p > r.result.MaxPhase {
		r.result.MaxPhase = p
	}
}

func (r *runner) checkDecision(id msg.ID) {
	if r.decided[id] || !r.correct[id] {
		return
	}
	v, ok := r.machines[id].Decided()
	if !ok {
		return
	}
	r.decided[id] = true
	r.result.Decisions[id] = v
	r.result.DecisionPhase[id] = r.machines[id].Phase()
	r.result.DecisionTime[id] = r.now
	r.met.decisions.Inc()
	r.met.decisionPhase.Observe(float64(r.machines[id].Phase()))
	if _, crashes := r.cfg.Crashes[id]; !crashes && !r.crashed[id] {
		r.mustDecide--
	}
}

func (r *runner) finish() {
	res := r.result
	res.SimTime = r.now
	res.AllDecided = r.mustDecide == 0
	res.Agreement = true
	first := true
	for _, v := range res.Decisions {
		if first {
			//lint:allow maprange Value is meaningful only when Agreement holds, i.e. all entries are equal
			res.Value = v
			first = false
			continue
		}
		if v != res.Value {
			res.Agreement = false
			break
		}
	}
	if first {
		// Nobody decided: vacuous agreement, but flag it via AllDecided.
		res.Agreement = true
	}
	r.met.runs.Inc()
	if res.Stalled != NotStalled {
		r.met.stalls.Inc()
	}
	r.met.maxPhase.Observe(float64(res.MaxPhase))
	r.met.messages.Observe(float64(res.MessagesSent))
	r.met.simTime.Observe(res.SimTime)
	r.met.wallSeconds.Observe(res.WallClock.Seconds())
	if r.cfg.Metrics != nil {
		res.Metrics = r.cfg.Metrics.Snapshot()
	}
}
