package runtime

import (
	"fmt"
	"time"
)

// MultiResult is one instance's outcome in a RunMulti execution, placed on
// the shared global clock.
type MultiResult struct {
	// Result is the instance's ordinary result; its SimTime and decision
	// times are instance-local (the instance's clock starts at 0 when it is
	// admitted).
	Result *Result
	// Start and End are the instance's admission and completion times on
	// the global virtual clock: End - Start is the instance's virtual
	// latency including any time it spent interleaved with its window
	// peers.
	Start, End float64
}

// multiInst is one in-flight instance of a multi-run.
type multiInst struct {
	index     int
	r         *runner
	offset    float64 // global admission time; global time = offset + r.now
	maxEvents int
	started   time.Time
}

// RunMulti executes many independent consensus instances over ONE shared
// virtual clock with a pipeline window: at most window instances are in
// flight at a time, instance i+window is admitted the moment an in-flight
// instance finishes, and within the window event processing interleaves in
// global-time order -- exactly the shape of a replicated log running w slots
// concurrently. Each instance is a complete Config executed with the same
// per-event semantics as Run (the instances share runner.stepNext), so a
// single-instance window degrades to sequential Run calls.
//
// Determinism: instances draw from their own seeded RNGs and never exchange
// messages, so the interleaving -- min global next-event time, ties to the
// earlier-admitted instance -- is a pure function of the Configs. Results
// are returned in instance order.
//
// An error reports an invalid configuration; protocol misbehaviour and
// stalls are reported per-instance through the Results.
func RunMulti(instances []Config, window int) ([]MultiResult, error) {
	if len(instances) == 0 {
		return nil, nil
	}
	if window < 1 {
		return nil, fmt.Errorf("runtime: pipeline window %d < 1", window)
	}

	results := make([]MultiResult, len(instances))
	active := make([]*multiInst, 0, window)
	next := 0
	now := 0.0 // global virtual clock: latest processed event time

	admit := func() error {
		for len(active) < window && next < len(instances) {
			r, err := newRunner(instances[next])
			if err != nil {
				return fmt.Errorf("runtime: instance %d: %w", next, err)
			}
			inst := &multiInst{
				index:     next,
				r:         r,
				offset:    now,
				maxEvents: r.maxEvents(),
				started:   time.Now(), //lint:allow walltime wall-clock run accounting; machines never observe it
			}
			r.start()
			results[next].Start = now
			active = append(active, inst)
			next++
		}
		return nil
	}
	if err := admit(); err != nil {
		return nil, err
	}

	for len(active) > 0 {
		// Pick the instance owning the globally next event. An instance
		// whose queue is empty cannot progress and is finalized first; ties
		// on event time go to the earlier-admitted instance, keeping the
		// schedule a pure function of the configs.
		best, bestAt := -1, 0.0
		for i, a := range active {
			e, ok := a.r.queue.peek()
			if !ok {
				best = i
				break
			}
			if at := a.offset + e.at; best == -1 || at < bestAt {
				best, bestAt = i, at
			}
		}
		a := active[best]
		if a.r.stepNext(a.maxEvents) {
			if at := a.offset + a.r.now; at > now {
				now = at
			}
			continue
		}
		// Instance over: finalize, free its slot, admit the next one.
		a.r.result.WallClock = time.Since(a.started) //lint:allow walltime wall-clock run accounting; machines never observe it
		a.r.finish()
		results[a.index].Result = a.r.result
		results[a.index].End = a.offset + a.r.now
		active = append(active[:best], active[best+1:]...)
		if err := admit(); err != nil {
			return nil, err
		}
	}
	return results, nil
}
