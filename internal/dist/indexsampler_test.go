package dist

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestIndexSamplerBasic(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	s := NewIndexSampler(50)
	if s.N() != 50 {
		t.Fatalf("N() = %d, want 50", s.N())
	}
	for trial := 0; trial < 200; trial++ {
		k := 1 + trial%50
		got := s.Draw(rng, k, nil)
		if len(got) != k {
			t.Fatalf("trial %d: drew %d indices, want %d", trial, len(got), k)
		}
		seen := make(map[int32]bool, k)
		for _, v := range got {
			if v < 0 || v >= 50 {
				t.Fatalf("trial %d: index %d out of range", trial, v)
			}
			if seen[v] {
				t.Fatalf("trial %d: duplicate index %d", trial, v)
			}
			seen[v] = true
		}
	}
}

func TestIndexSamplerKClampedToPopulation(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	s := NewIndexSampler(7)
	got := s.Draw(rng, 99, nil)
	if len(got) != 7 {
		t.Fatalf("clamped draw returned %d indices, want 7", len(got))
	}
	seen := make(map[int32]bool)
	for _, v := range got {
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("clamped draw is not a permutation: %v", got)
	}
}

// TestIndexSamplerPoolRestored verifies the swap-undo: after any draw the
// pool must be the identity permutation again, so a full-population draw
// from a fresh rng always equals a full-population draw from a fresh
// sampler with the same rng.
func TestIndexSamplerPoolRestored(t *testing.T) {
	s := NewIndexSampler(40)
	// Dirty the sampler with draws of assorted sizes.
	dirty := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 64; i++ {
		s.Draw(dirty, 1+i%40, nil)
	}
	a := s.Draw(rand.New(rand.NewPCG(7, 8)), 40, nil)
	b := NewIndexSampler(40).Draw(rand.New(rand.NewPCG(7, 8)), 40, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pool not restored: used sampler drew %v, fresh sampler drew %v", a, b)
		}
	}
}

// TestIndexSamplerDrawStable pins draw stability: a draw consumes exactly k
// IntN variates, so identically seeded streams yield identical samples
// regardless of sampler reuse, prior draws, or dst reuse.
func TestIndexSamplerDrawStable(t *testing.T) {
	s1 := NewIndexSampler(100)
	s2 := NewIndexSampler(100)
	r1 := rand.New(rand.NewPCG(42, 0))
	r2 := rand.New(rand.NewPCG(42, 0))
	buf := make([]int32, 0, 16)
	// s2 does interleaved unrelated draws from a separate stream; the draws
	// from the shared-seed streams must still agree element-wise.
	noise := rand.New(rand.NewPCG(9, 9))
	for trial := 0; trial < 50; trial++ {
		a := s1.Draw(r1, 16, nil)
		s2.Draw(noise, 5, buf[:0])
		b := s2.Draw(r2, 16, buf[:0])
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: draws diverged at %d: %v vs %v", trial, i, a, b)
			}
		}
	}
}

// TestIndexSamplerHypergeometricPMF is the property test against the
// analytic pmf in dist.go: fix a marked subset {0..Success-1} of the
// population, draw many samples, and compare the empirical distribution of
// |sample ∩ marked| to Hypergeometric.PMF. Uniform without-replacement
// sampling is exactly the hypergeometric experiment, so every support point
// must match within Monte-Carlo noise.
func TestIndexSamplerHypergeometricPMF(t *testing.T) {
	cases := []struct {
		pop, success, draw int
	}{
		{30, 12, 10},
		{100, 33, 20},
		{64, 5, 16},
	}
	const trials = 200_000
	for _, c := range cases {
		h := Hypergeometric{Pop: c.pop, Success: c.success, Draw: c.draw}
		if err := h.Validate(); err != nil {
			t.Fatalf("bad case %+v: %v", c, err)
		}
		rng := rand.New(rand.NewPCG(uint64(c.pop), uint64(c.draw)))
		s := NewIndexSampler(c.pop)
		counts := make([]int, c.draw+1)
		buf := make([]int32, 0, c.draw)
		for i := 0; i < trials; i++ {
			buf = s.Draw(rng, c.draw, buf[:0])
			overlap := 0
			for _, v := range buf {
				if int(v) < c.success {
					overlap++
				}
			}
			counts[overlap]++
		}
		for x := 0; x <= c.draw; x++ {
			want := h.PMF(x)
			got := float64(counts[x]) / trials
			// 5-sigma binomial noise band plus an absolute floor for the
			// far tails where a handful of hits is expected.
			sigma := math.Sqrt(want * (1 - want) / trials)
			tol := 5*sigma + 5e-5
			if math.Abs(got-want) > tol {
				t.Errorf("case %+v: P[overlap=%d] = %.6f, want %.6f (tol %.6f)",
					c, x, got, want, tol)
			}
		}
		// Mean check as a summary statistic.
		sum := 0.0
		for x, n := range counts {
			sum += float64(x) * float64(n)
		}
		gotMean := sum / trials
		if math.Abs(gotMean-h.Mean()) > 0.02*float64(c.draw) {
			t.Errorf("case %+v: empirical mean %.4f, want %.4f", c, gotMean, h.Mean())
		}
	}
}

func BenchmarkIndexSamplerDraw(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	s := NewIndexSampler(10_000)
	buf := make([]int32, 0, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = s.Draw(rng, 128, buf[:0])
	}
	_ = buf
}
