package dist

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestChooseSmallValues(t *testing.T) {
	cases := []struct {
		n, r int
		want float64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 1, 5}, {5, 2, 10},
		{10, 3, 120}, {20, 10, 184756}, {5, 6, 0}, {5, -1, 0},
	}
	for _, c := range cases {
		if got := Choose(c.n, c.r); !almostEqual(got, c.want, 1e-6*math.Max(1, c.want)) {
			t.Errorf("Choose(%d,%d) = %v, want %v", c.n, c.r, got, c.want)
		}
	}
}

func TestChoosePascalProperty(t *testing.T) {
	// C(n, r) = C(n-1, r-1) + C(n-1, r) in log space, for moderate sizes.
	for n := 2; n <= 60; n += 3 {
		for r := 1; r < n; r += 2 {
			lhs := Choose(n, r)
			rhs := Choose(n-1, r-1) + Choose(n-1, r)
			if !almostEqual(lhs, rhs, 1e-9*rhs) {
				t.Fatalf("Pascal violated at (%d,%d): %v vs %v", n, r, lhs, rhs)
			}
		}
	}
}

func TestHypergeometricPMFSumsToOne(t *testing.T) {
	cases := []Hypergeometric{
		{Pop: 10, Success: 4, Draw: 3},
		{Pop: 30, Success: 10, Draw: 20},
		{Pop: 100, Success: 50, Draw: 66},
		{Pop: 999, Success: 500, Draw: 666},
	}
	for _, h := range cases {
		sum := 0.0
		for x := 0; x <= h.Draw; x++ {
			sum += h.PMF(x)
		}
		if !almostEqual(sum, 1, 1e-9) {
			t.Errorf("%+v: pmf sums to %v", h, sum)
		}
	}
}

func TestHypergeometricMeanVariance(t *testing.T) {
	h := Hypergeometric{Pop: 60, Success: 24, Draw: 40}
	var mean, m2 float64
	for x := 0; x <= h.Draw; x++ {
		mean += float64(x) * h.PMF(x)
	}
	for x := 0; x <= h.Draw; x++ {
		d := float64(x) - mean
		m2 += d * d * h.PMF(x)
	}
	if !almostEqual(mean, h.Mean(), 1e-9) {
		t.Errorf("mean: empirical %v vs formula %v", mean, h.Mean())
	}
	if !almostEqual(m2, h.Variance(), 1e-9) {
		t.Errorf("variance: empirical %v vs formula %v", m2, h.Variance())
	}
}

func TestHypergeometricSymmetry(t *testing.T) {
	// P[X = x | b successes] = P[X = draw-x | pop-b successes].
	h1 := Hypergeometric{Pop: 50, Success: 20, Draw: 30}
	h2 := Hypergeometric{Pop: 50, Success: 30, Draw: 30}
	for x := 0; x <= 30; x++ {
		if !almostEqual(h1.PMF(x), h2.PMF(30-x), 1e-12) {
			t.Fatalf("symmetry violated at x=%d", x)
		}
	}
}

func TestHypergeometricTailIdentities(t *testing.T) {
	h := Hypergeometric{Pop: 40, Success: 15, Draw: 25}
	for x := -1; x <= 26; x++ {
		if !almostEqual(h.CDF(x)+h.TailAbove(x), 1, 1e-9) {
			t.Fatalf("CDF + Tail != 1 at x=%d", x)
		}
	}
}

func TestHypergeometricValidate(t *testing.T) {
	bad := []Hypergeometric{
		{Pop: -1, Success: 0, Draw: 0},
		{Pop: 5, Success: 6, Draw: 2},
		{Pop: 5, Success: 2, Draw: 6},
	}
	for _, h := range bad {
		if h.Validate() == nil {
			t.Errorf("%+v should be invalid", h)
		}
	}
	if (Hypergeometric{Pop: 5, Success: 2, Draw: 3}).Validate() != nil {
		t.Error("valid distribution rejected")
	}
}

func TestChebyshevMatchesPaperEq7(t *testing.T) {
	// Eq. (7): w_{n/2 - l*sqrt(n)/2 - 1} < 1/(2 l^2); with l^2 = 1.5 the
	// bound is 1/3. Verify the actual tail is below the Chebyshev bound.
	n := 900
	l := math.Sqrt(1.5)
	b := n/2 - int(l*math.Sqrt(float64(n))/2) - 1
	h := Hypergeometric{Pop: n, Success: b, Draw: 2 * n / 3}
	tail := h.TailAbove(n / 3) // P[X > n/3] = w_b with k = n/3
	if tail >= 1.0/3.0 {
		t.Errorf("tail %v >= 1/3, violating eq. (7)", tail)
	}
	cheb := h.ChebyshevTail(float64(n)/3 - h.Mean())
	if tail > cheb+1e-12 {
		t.Errorf("tail %v exceeds its Chebyshev bound %v", tail, cheb)
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, b := range []Binomial{{N: 10, P: 0.3}, {N: 100, P: 0.5}, {N: 57, P: 0.99}, {N: 8, P: 0}, {N: 8, P: 1}} {
		sum := 0.0
		for x := 0; x <= b.N; x++ {
			sum += b.PMF(x)
		}
		if !almostEqual(sum, 1, 1e-9) {
			t.Errorf("%+v: pmf sums to %v", b, sum)
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	b := Binomial{N: 40, P: 0.37}
	var mean float64
	for x := 0; x <= b.N; x++ {
		mean += float64(x) * b.PMF(x)
	}
	if !almostEqual(mean, b.Mean(), 1e-9) {
		t.Errorf("mean %v vs %v", mean, b.Mean())
	}
}

func TestPhiKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.15865525393145707},
		{1.2247448713915890, 0.11033568082387628}, // l = sqrt(1.5)
		{2, 0.022750131948179195},
		{-1, 0.8413447460685429},
	}
	for _, c := range cases {
		if got := Phi(c.x); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Phi(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestPhiComplementarity(t *testing.T) {
	f := func(x float64) bool {
		x = math.Mod(x, 10)
		return almostEqual(Phi(x)+NormalCDF(x), 1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalTailApproxMatchesBinomialRoughly(t *testing.T) {
	// Eq. (2)'s approximation should be within a few percent of the exact
	// binomial tail around one standard deviation.
	n, p := 400, 0.5
	b := Binomial{N: n, P: p}
	j := float64(n)*p + math.Sqrt(float64(n)*p*(1-p)) // mean + 1 sd
	exact := b.TailAbove(int(j) - 1)                  // P[X >= j]
	approx := NormalTailApprox(n, p, j)
	if math.Abs(exact-approx) > 0.03 {
		t.Errorf("normal approx %v vs exact %v", approx, exact)
	}
}

func TestHGSamplerMatchesDistribution(t *testing.T) {
	h := Hypergeometric{Pop: 60, Success: 25, Draw: 40}
	s, err := NewHGSampler(h)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	const trials = 200000
	counts := make(map[int]int)
	for i := 0; i < trials; i++ {
		x := s.Sample(rng)
		if x < s.Min() || x > s.Max() {
			t.Fatalf("sample %d outside [%d, %d]", x, s.Min(), s.Max())
		}
		counts[x]++
	}
	var mean float64
	for x, c := range counts {
		mean += float64(x) * float64(c)
	}
	mean /= trials
	if math.Abs(mean-h.Mean()) > 0.05 {
		t.Errorf("sample mean %v vs %v", mean, h.Mean())
	}
	// Spot-check a central probability.
	mode := int(h.Mean())
	want := h.PMF(mode)
	got := float64(counts[mode]) / trials
	if math.Abs(got-want) > 0.01 {
		t.Errorf("P[%d]: sampled %v vs exact %v", mode, got, want)
	}
}

func TestHGSamplerSupportBounds(t *testing.T) {
	// Draw > Pop - Success forces a minimum above zero.
	h := Hypergeometric{Pop: 10, Success: 7, Draw: 8}
	s, err := NewHGSampler(h)
	if err != nil {
		t.Fatal(err)
	}
	if s.Min() != 5 { // 8 - (10-7)
		t.Errorf("Min = %d, want 5", s.Min())
	}
	if s.Max() != 7 {
		t.Errorf("Max = %d, want 7", s.Max())
	}
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 1000; i++ {
		if x := s.Sample(rng); x < 5 || x > 7 {
			t.Fatalf("sample %d outside support", x)
		}
	}
}

func TestHGSamplerRejectsInvalid(t *testing.T) {
	if _, err := NewHGSampler(Hypergeometric{Pop: 5, Success: 9, Draw: 2}); err == nil {
		t.Error("invalid parameters accepted")
	}
}
