package dist

import (
	"math/rand/v2"
	"sort"
)

// HGSampler draws hypergeometric variates by inverse-CDF lookup over a
// precomputed table. Building the table costs O(draw); each sample costs
// O(log draw). The phase-level Monte Carlo engine builds one sampler per
// (population, success) pair per phase and draws once per process.
type HGSampler struct {
	h    Hypergeometric
	min  int       // smallest attainable value
	cdf  []float64 // cdf[i] = P[X <= min+i]
	mass float64   // total mass (1 up to rounding)
}

// NewHGSampler returns a sampler for the given distribution. It panics only
// on invalid parameters, which indicate a programming error in the caller.
func NewHGSampler(h Hypergeometric) (*HGSampler, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	min := h.Draw - (h.Pop - h.Success)
	if min < 0 {
		min = 0
	}
	max := h.Draw
	if h.Success < max {
		max = h.Success
	}
	s := &HGSampler{h: h, min: min}
	// Compute the pmf recursively from the mode outward to stay stable:
	// simple forward recursion from the minimum works well here because the
	// supports are small (<= draw) and we normalize at the end.
	//
	//   P(x+1)/P(x) = (Success-x)(Draw-x) / ((x+1)(Pop-Success-Draw+x+1))
	p := h.PMF(min) // log-space base value keeps the start accurate
	cdf := make([]float64, max-min+1)
	acc := 0.0
	x := min
	for i := range cdf {
		acc += p
		cdf[i] = acc
		num := float64(h.Success-x) * float64(h.Draw-x)
		den := float64(x+1) * float64(h.Pop-h.Success-h.Draw+x+1)
		if den > 0 {
			p *= num / den
		} else {
			p = 0
		}
		x++
	}
	s.cdf = cdf
	s.mass = acc
	return s, nil
}

// Sample draws one variate.
func (s *HGSampler) Sample(rng *rand.Rand) int {
	u := rng.Float64() * s.mass
	i := sort.SearchFloat64s(s.cdf, u)
	if i >= len(s.cdf) {
		i = len(s.cdf) - 1
	}
	return s.min + i
}

// Min returns the smallest attainable value.
func (s *HGSampler) Min() int { return s.min }

// Max returns the largest attainable value.
func (s *HGSampler) Max() int { return s.min + len(s.cdf) - 1 }
