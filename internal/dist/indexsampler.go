package dist

import "math/rand/v2"

// IndexSampler draws fixed-size uniform samples without replacement from the
// index set {0, …, n−1} via a partial Fisher–Yates shuffle over a reusable
// identity pool. Setup costs O(n) once; every Draw costs O(k) — the k swaps
// performed by the partial shuffle are recorded and undone in reverse, so
// the pool is the identity permutation again when Draw returns. That makes
// building n per-receiver samples O(n·k) instead of the O(n²) a rebuild-per-
// draw approach would cost, which is what keeps sample-directory
// construction feasible at n=10,000.
//
// Draws are stable: the sequence of indices returned is a pure function of
// the rng stream (exactly k IntN variates per Draw, one per element), so two
// runs seeded identically produce identical samples regardless of how many
// samplers exist or how Draw calls interleave across samplers.
type IndexSampler struct {
	pool  []int32
	swaps []int32
}

// NewIndexSampler returns a sampler over {0, …, n−1}. n must be positive.
func NewIndexSampler(n int) *IndexSampler {
	if n <= 0 {
		panic("dist: IndexSampler population must be positive")
	}
	s := &IndexSampler{pool: make([]int32, n)}
	for i := range s.pool {
		s.pool[i] = int32(i)
	}
	return s
}

// N returns the population size.
func (s *IndexSampler) N() int { return len(s.pool) }

// Draw appends k distinct indices, sampled uniformly without replacement,
// to dst and returns the extended slice. k is clamped to the population
// size. The returned indices are in shuffle order (uniformly random order),
// not sorted.
func (s *IndexSampler) Draw(rng *rand.Rand, k int, dst []int32) []int32 {
	n := len(s.pool)
	if k > n {
		k = n
	}
	if cap(s.swaps) < k {
		s.swaps = make([]int32, k)
	}
	swaps := s.swaps[:k]
	for i := 0; i < k; i++ {
		j := i + int(rng.IntN(n-i))
		s.pool[i], s.pool[j] = s.pool[j], s.pool[i]
		swaps[i] = int32(j)
		dst = append(dst, s.pool[i])
	}
	// Undo the swaps in reverse order: the pool is the identity permutation
	// again, so the next Draw sees a pristine pool without an O(n) reset.
	for i := k - 1; i >= 0; i-- {
		j := swaps[i]
		s.pool[i], s.pool[j] = s.pool[j], s.pool[i]
	}
	return dst
}
