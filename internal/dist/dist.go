// Package dist implements the probability distributions used by the Section 4
// performance analysis of the paper: the hypergeometric distribution (for the
// number of 1-valued messages in a random (n-k)-view, eq. (3)-(5)), the
// binomial distribution (for the per-phase state transition, eq. (1)), the
// normal tail function Phi (eq. (2)), and the Chebyshev bound (eq. (6)).
//
// All probability mass computations are done in log space via math.Lgamma so
// they remain accurate for populations in the thousands.
package dist

import (
	"fmt"
	"math"
)

// LogChoose returns log(C(n, r)) for 0 <= r <= n, and negative infinity for
// out-of-range r (C(n, r) = 0 there).
func LogChoose(n, r int) float64 {
	if r < 0 || r > n {
		return math.Inf(-1)
	}
	if r == 0 || r == n {
		return 0
	}
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(r + 1))
	c, _ := math.Lgamma(float64(n - r + 1))
	return a - b - c
}

// Choose returns C(n, r) as a float64. It overflows to +Inf gracefully for
// very large arguments; use LogChoose for exact log-space work.
func Choose(n, r int) float64 {
	return math.Exp(LogChoose(n, r))
}

// Hypergeometric is the distribution of the number of "special" items in a
// uniform random sample of size Draw from a population of size Pop containing
// Success special items. It is exactly X_(n,b,r) from Section 4.1 eq. (3):
// the number of 1-valued messages among the n-k messages a process receives
// when i of the n processes currently hold value 1.
type Hypergeometric struct {
	Pop     int // population size n
	Success int // number of special items b
	Draw    int // sample size r
}

// Validate reports whether the parameters define a proper distribution.
func (h Hypergeometric) Validate() error {
	if h.Pop < 0 || h.Success < 0 || h.Draw < 0 {
		//lint:allow hotalloc error construction on the invalid-parameter path only
		return fmt.Errorf("dist: negative hypergeometric parameter %+v", h)
	}
	if h.Success > h.Pop {
		//lint:allow hotalloc error construction on the invalid-parameter path only
		return fmt.Errorf("dist: success count %d exceeds population %d", h.Success, h.Pop)
	}
	if h.Draw > h.Pop {
		//lint:allow hotalloc error construction on the invalid-parameter path only
		return fmt.Errorf("dist: draw %d exceeds population %d", h.Draw, h.Pop)
	}
	return nil
}

// LogPMF returns log P[X = x].
func (h Hypergeometric) LogPMF(x int) float64 {
	if x < 0 || x > h.Draw || x > h.Success || h.Draw-x > h.Pop-h.Success {
		return math.Inf(-1)
	}
	return LogChoose(h.Success, x) +
		LogChoose(h.Pop-h.Success, h.Draw-x) -
		LogChoose(h.Pop, h.Draw)
}

// PMF returns P[X = x].
func (h Hypergeometric) PMF(x int) float64 {
	return math.Exp(h.LogPMF(x))
}

// TailAbove returns P[X > x].
func (h Hypergeometric) TailAbove(x int) float64 {
	lo := x + 1
	if lo < 0 {
		lo = 0
	}
	sum := 0.0
	for v := lo; v <= h.Draw; v++ {
		sum += h.PMF(v)
	}
	return clampProb(sum)
}

// CDF returns P[X <= x].
func (h Hypergeometric) CDF(x int) float64 {
	if x < 0 {
		return 0
	}
	sum := 0.0
	for v := 0; v <= x && v <= h.Draw; v++ {
		sum += h.PMF(v)
	}
	return clampProb(sum)
}

// Mean returns E[X] = Draw*Success/Pop (eq. (4)).
func (h Hypergeometric) Mean() float64 {
	if h.Pop == 0 {
		return 0
	}
	return float64(h.Draw) * float64(h.Success) / float64(h.Pop)
}

// Variance returns Var[X] = r*b*(n-b)*(n-r) / (n^2 * (n-1)) (eq. (5)).
func (h Hypergeometric) Variance() float64 {
	n := float64(h.Pop)
	if h.Pop <= 1 {
		return 0
	}
	b := float64(h.Success)
	r := float64(h.Draw)
	return r * b * (n - b) * (n - r) / (n * n * (n - 1))
}

// ChebyshevTail returns the Chebyshev bound P[|X - E[X]| > t] <= Var[X]/t^2
// (eq. (6)), clamped to [0, 1].
func (h Hypergeometric) ChebyshevTail(t float64) float64 {
	if t <= 0 {
		return 1
	}
	return clampProb(h.Variance() / (t * t))
}

// Binomial is the distribution of the sum of N independent Bernoulli(P)
// trials -- the per-phase count of processes adopting value 1 in eq. (1) of
// Section 4.1.
type Binomial struct {
	N int
	P float64
}

// Validate reports whether the parameters define a proper distribution.
func (b Binomial) Validate() error {
	if b.N < 0 {
		return fmt.Errorf("dist: negative binomial N=%d", b.N)
	}
	if b.P < 0 || b.P > 1 || math.IsNaN(b.P) {
		return fmt.Errorf("dist: binomial p=%v outside [0,1]", b.P)
	}
	return nil
}

// LogPMF returns log P[X = x].
func (b Binomial) LogPMF(x int) float64 {
	if x < 0 || x > b.N {
		return math.Inf(-1)
	}
	switch {
	case b.P == 0:
		if x == 0 {
			return 0
		}
		return math.Inf(-1)
	case b.P == 1:
		if x == b.N {
			return 0
		}
		return math.Inf(-1)
	}
	return LogChoose(b.N, x) +
		float64(x)*math.Log(b.P) +
		float64(b.N-x)*math.Log1p(-b.P)
}

// PMF returns P[X = x].
func (b Binomial) PMF(x int) float64 {
	return math.Exp(b.LogPMF(x))
}

// CDF returns P[X <= x].
func (b Binomial) CDF(x int) float64 {
	if x < 0 {
		return 0
	}
	if x >= b.N {
		return 1
	}
	sum := 0.0
	for v := 0; v <= x; v++ {
		sum += b.PMF(v)
	}
	return clampProb(sum)
}

// TailAbove returns P[X > x].
func (b Binomial) TailAbove(x int) float64 {
	return clampProb(1 - b.CDF(x))
}

// Mean returns N*P.
func (b Binomial) Mean() float64 {
	return float64(b.N) * b.P
}

// Variance returns N*P*(1-P).
func (b Binomial) Variance() float64 {
	return float64(b.N) * b.P * (1 - b.P)
}

// Phi is the upper tail of the standard normal distribution used throughout
// Section 4:
//
//	Phi(x) = (1 / sqrt(2*pi)) * Integral_x^inf exp(-t^2/2) dt.
//
// (The paper's eq. (2) writes the normalization as 1/(2*pi); the standard
// normal constant 1/sqrt(2*pi) is the one that makes Phi(0) = 1/2, which the
// paper itself uses in eq. (10), so that is what we implement.)
func Phi(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// NormalCDF is the standard normal lower CDF, 1 - Phi(x).
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalTailApprox approximates P[X >= j] for a Binomial(n, p) variable X by
// the normal tail Phi((j - n*p) / sqrt(n*p*(1-p))) exactly as in eq. (2).
func NormalTailApprox(n int, p float64, j float64) float64 {
	sd := math.Sqrt(float64(n) * p * (1 - p))
	if sd == 0 {
		if j <= float64(n)*p {
			return 1
		}
		return 0
	}
	return Phi((j - float64(n)*p) / sd)
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
