// Package trace provides structured event tracing for protocol executions.
// The runtime emits an Event at every interesting protocol step (send,
// deliver, phase advance, witness, accept, decide, crash); sinks collect or
// render them. Tracing is optional: the Nop sink makes it free.
package trace

import (
	"fmt"
	"io"
	"sync"

	"resilient/internal/msg"
)

// EventKind classifies trace events.
type EventKind uint8

const (
	// EventSend records a message handed to the transport.
	EventSend EventKind = iota + 1
	// EventDeliver records a message delivered to a process.
	EventDeliver
	// EventPhase records a process advancing to a new phase.
	EventPhase
	// EventWitness records a Figure-1 witness being counted.
	EventWitness
	// EventAccept records a Figure-2 value acceptance.
	EventAccept
	// EventDecide records a process assigning its decision variable.
	EventDecide
	// EventCrash records a fail-stop death.
	EventCrash
	// EventHalt records a process completing its protocol.
	EventHalt
	// EventNote records free-form diagnostic text.
	EventNote
)

// String returns the kind's name.
func (k EventKind) String() string {
	switch k {
	case EventSend:
		return "send"
	case EventDeliver:
		return "deliver"
	case EventPhase:
		return "phase"
	case EventWitness:
		return "witness"
	case EventAccept:
		return "accept"
	case EventDecide:
		return "decide"
	case EventCrash:
		return "crash"
	case EventHalt:
		return "halt"
	case EventNote:
		return "note"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one trace record.
type Event struct {
	Time    float64
	Kind    EventKind
	Process msg.ID
	Phase   msg.Phase
	Value   msg.Value
	Note    string
}

// String renders the event on one line.
func (e Event) String() string {
	if e.Note != "" {
		//lint:allow hotalloc String renders only for enabled sinks; the Nop sink short-circuits the hot path
		return fmt.Sprintf("t=%8.3f p%-3d %-8s phase=%-3s v=%d %s",
			e.Time, e.Process, e.Kind, e.Phase, e.Value, e.Note)
	}
	//lint:allow hotalloc String renders only for enabled sinks; the Nop sink short-circuits the hot path
	return fmt.Sprintf("t=%8.3f p%-3d %-8s phase=%-3s v=%d",
		e.Time, e.Process, e.Kind, e.Phase, e.Value)
}

// Sink receives trace events. Implementations must be safe for use from a
// single goroutine; the Buffer sink is additionally safe for concurrent use.
//
// Enabled is the hot-path fast gate: emitters that would do work just to
// build an Event (formatting a note, say) ask Enabled first and skip the
// whole Record call when it returns false. Enabled must be stable for the
// lifetime of a run; the engine caches it once per execution.
type Sink interface {
	Record(Event)
	// Enabled reports whether recorded events are observable. Sinks that
	// discard everything return false so emitters can skip Event
	// construction entirely.
	Enabled() bool
}

// Nop discards all events.
type Nop struct{}

// Record implements Sink by doing nothing.
func (Nop) Record(Event) {}

// Enabled implements Sink: a Nop sink observes nothing.
func (Nop) Enabled() bool { return false }

var _ Sink = Nop{}

// On reports whether s is a non-nil sink that observes events; it is the
// nil-tolerant form of s.Enabled() emitters use.
func On(s Sink) bool { return s != nil && s.Enabled() }

// Buffer accumulates events in memory. It is safe for concurrent use.
type Buffer struct {
	mu     sync.Mutex
	events []Event
	limit  int
}

// NewBuffer returns a buffer retaining at most limit events (0 = unlimited).
func NewBuffer(limit int) *Buffer {
	return &Buffer{limit: limit}
}

// Record implements Sink.
func (b *Buffer) Record(e Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.limit > 0 && len(b.events) >= b.limit {
		return
	}
	b.events = append(b.events, e)
}

// Events returns a copy of the recorded events.
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, len(b.events))
	copy(out, b.events)
	return out
}

// Enabled implements Sink.
func (b *Buffer) Enabled() bool { return true }

// Len returns the number of recorded events.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// Filter returns the recorded events of the given kind.
func (b *Buffer) Filter(kind EventKind) []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []Event
	for _, e := range b.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

var _ Sink = (*Buffer)(nil)

// Writer streams events to an io.Writer, one line each.
type Writer struct {
	w io.Writer
}

// NewWriter returns a sink that writes each event as a line to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

// Record implements Sink.
func (t *Writer) Record(e Event) {
	//lint:allow hotalloc a Writer sink exists to format; runs pick Nop when tracing is off
	fmt.Fprintln(t.w, e.String())
}

// Enabled implements Sink.
func (t *Writer) Enabled() bool { return true }

var _ Sink = (*Writer)(nil)

// Multi fans events out to several sinks.
type Multi []Sink

// Record implements Sink.
func (m Multi) Record(e Event) {
	for _, s := range m {
		s.Record(e)
	}
}

// Enabled implements Sink: a Multi observes events iff any member does.
func (m Multi) Enabled() bool {
	for _, s := range m {
		if s.Enabled() {
			return true
		}
	}
	return false
}

var _ Sink = Multi(nil)
