package trace

import (
	"strings"
	"sync"
	"testing"

	"resilient/internal/msg"
)

func TestEventKindNames(t *testing.T) {
	kinds := []EventKind{
		EventSend, EventDeliver, EventPhase, EventWitness,
		EventAccept, EventDecide, EventCrash, EventHalt, EventNote,
	}
	seen := make(map[string]bool)
	for _, k := range kinds {
		name := k.String()
		if strings.HasPrefix(name, "EventKind(") {
			t.Errorf("kind %d unnamed", k)
		}
		if seen[name] {
			t.Errorf("duplicate name %q", name)
		}
		seen[name] = true
	}
	if !strings.HasPrefix(EventKind(99).String(), "EventKind(") {
		t.Error("unknown kind should fall back")
	}
}

func TestEventString(t *testing.T) {
	e := Event{Time: 1.5, Kind: EventDecide, Process: 3, Phase: 2, Value: msg.V1}
	if !strings.Contains(e.String(), "decide") {
		t.Errorf("event string %q", e.String())
	}
	e.Note = "hello"
	if !strings.Contains(e.String(), "hello") {
		t.Errorf("note missing from %q", e.String())
	}
}

func TestNop(t *testing.T) {
	Nop{}.Record(Event{}) // must not panic
}

func TestBufferCollects(t *testing.T) {
	b := NewBuffer(0)
	for i := 0; i < 5; i++ {
		b.Record(Event{Kind: EventSend, Process: msg.ID(i)})
	}
	b.Record(Event{Kind: EventDecide, Process: 9})
	if b.Len() != 6 {
		t.Fatalf("len %d", b.Len())
	}
	evs := b.Events()
	if len(evs) != 6 || evs[5].Kind != EventDecide {
		t.Fatalf("events %v", evs)
	}
	// Events returns a copy.
	evs[0].Process = 42
	if b.Events()[0].Process == 42 {
		t.Error("Events leaks internal storage")
	}
	dec := b.Filter(EventDecide)
	if len(dec) != 1 || dec[0].Process != 9 {
		t.Errorf("filter %v", dec)
	}
}

func TestBufferLimit(t *testing.T) {
	b := NewBuffer(3)
	for i := 0; i < 10; i++ {
		b.Record(Event{})
	}
	if b.Len() != 3 {
		t.Errorf("len %d, want 3", b.Len())
	}
}

func TestBufferConcurrent(t *testing.T) {
	b := NewBuffer(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				b.Record(Event{Kind: EventSend})
			}
		}()
	}
	wg.Wait()
	if b.Len() != 8000 {
		t.Errorf("len %d", b.Len())
	}
}

func TestWriterAndMulti(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	buf := NewBuffer(0)
	m := Multi{w, buf}
	m.Record(Event{Kind: EventCrash, Process: 2})
	if !strings.Contains(sb.String(), "crash") {
		t.Errorf("writer output %q", sb.String())
	}
	if buf.Len() != 1 {
		t.Error("multi did not fan out")
	}
}
