package sched

import (
	"math"
	"math/rand/v2"
	"testing"

	"resilient/internal/msg"
)

func rng() *rand.Rand { return rand.New(rand.NewPCG(1, 2)) }

func TestUniformWithinBounds(t *testing.T) {
	u := Uniform{Min: 0.5, Max: 2.5}
	r := rng()
	for i := 0; i < 10000; i++ {
		d := u.Delay(0, 1, msg.Message{}, 0, r)
		if d < 0.5 || d > 2.5 {
			t.Fatalf("delay %v outside [0.5, 2.5]", d)
		}
	}
}

func TestUniformDegenerateBounds(t *testing.T) {
	r := rng()
	// Zero min becomes a tiny positive value; max < min collapses.
	u := Uniform{Min: 0, Max: 0}
	for i := 0; i < 100; i++ {
		if d := u.Delay(0, 1, msg.Message{}, 0, r); d <= 0 {
			t.Fatalf("non-positive delay %v", d)
		}
	}
	u2 := Uniform{Min: 5, Max: 1}
	for i := 0; i < 100; i++ {
		if d := u2.Delay(0, 1, msg.Message{}, 0, r); d != 5 {
			t.Fatalf("collapsed bounds gave %v", d)
		}
	}
}

func TestExponentialPositiveAndMean(t *testing.T) {
	e := Exponential{Mean: 2}
	r := rng()
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		d := e.Delay(0, 1, msg.Message{}, 0, r)
		if d <= 0 {
			t.Fatalf("non-positive delay %v", d)
		}
		sum += d
	}
	if mean := sum / n; math.Abs(mean-2) > 0.05 {
		t.Errorf("mean %v, want ~2", mean)
	}
	// Zero mean defaults to 1.
	e0 := Exponential{}
	if d := e0.Delay(0, 1, msg.Message{}, 0, r); d <= 0 {
		t.Error("zero-mean exponential non-positive")
	}
}

func TestConstant(t *testing.T) {
	c := Constant{D: 3}
	if d := c.Delay(0, 1, msg.Message{}, 0, rng()); d != 3 {
		t.Errorf("delay %v", d)
	}
	if d := (Constant{}).Delay(0, 1, msg.Message{}, 0, rng()); d != 1 {
		t.Errorf("zero-value constant gave %v", d)
	}
}

func TestSkewedSlowsTargets(t *testing.T) {
	s := Skewed{
		Base:       Constant{D: 1},
		SlowSet:    map[msg.ID]bool{3: true},
		SlowFactor: 10,
	}
	r := rng()
	if d := s.Delay(0, 3, msg.Message{}, 0, r); d != 10 {
		t.Errorf("slow target delay %v", d)
	}
	if d := s.Delay(0, 2, msg.Message{}, 0, r); d != 1 {
		t.Errorf("fast target delay %v", d)
	}
	// Factor below 1 clamps to 1; nil base defaults.
	s2 := Skewed{SlowSet: map[msg.ID]bool{1: true}, SlowFactor: 0.5}
	if d := s2.Delay(0, 1, msg.Message{}, 0, r); d <= 0 {
		t.Errorf("clamped factor delay %v", d)
	}
}

func TestFuncAdapter(t *testing.T) {
	f := Func(func(from, to msg.ID, m msg.Message, now float64, rng *rand.Rand) float64 {
		return float64(from) + float64(to)
	})
	if d := f.Delay(2, 3, msg.Message{}, 0, rng()); d != 5 {
		t.Errorf("func adapter gave %v", d)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{1, 1},
		{0, minDelay},
		{-5, minDelay},
		{math.NaN(), minDelay},
		{math.Inf(1), maxDelay},
		{1e300, maxDelay},
	}
	for _, c := range cases {
		if got := Clamp(c.in); got != c.want {
			t.Errorf("Clamp(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestName(t *testing.T) {
	for _, s := range []Scheduler{
		Uniform{Min: 1, Max: 2}, Exponential{Mean: 3}, Constant{D: 1},
		Skewed{Base: Constant{D: 1}}, Func(nil),
	} {
		if Name(s) == "" {
			t.Errorf("empty name for %T", s)
		}
	}
}
