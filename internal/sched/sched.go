// Package sched defines message-delivery scheduling policies for the
// discrete-event engine. A Scheduler assigns each message a delivery delay;
// because the engine is single-threaded and the scheduler is the only source
// of nondeterminism, a (scheduler, seed) pair fully determines an execution.
//
// The stochastic schedulers realize the paper's probabilistic assumption
// (Section 2.3): under any of them, every possible (n-k)-subset of a phase's
// messages has positive probability of forming a process's view, which is
// exactly the epsilon-assumption the convergence proofs need.
package sched

import (
	"fmt"
	"math"
	"math/rand/v2"

	"resilient/internal/msg"
)

// Scheduler assigns a delivery delay (in abstract simulation time units,
// strictly positive) to each message.
type Scheduler interface {
	// Delay returns the delivery latency for a message sent from -> to at
	// simulation time now. Implementations draw randomness only from rng.
	Delay(from, to msg.ID, m msg.Message, now float64, rng *rand.Rand) float64
}

// Uniform delivers each message after an independent uniform delay in
// [Min, Max]. It is the default scheduler.
type Uniform struct {
	Min, Max float64
}

// Delay implements Scheduler.
func (u Uniform) Delay(_, _ msg.ID, _ msg.Message, _ float64, rng *rand.Rand) float64 {
	lo, hi := u.Min, u.Max
	if lo <= 0 {
		lo = minDelay
	}
	if hi < lo {
		hi = lo
	}
	return lo + rng.Float64()*(hi-lo)
}

var _ Scheduler = Uniform{}

// Exponential delivers each message after an independent exponential delay
// with the given mean, modelling heavy-tailed network latency.
type Exponential struct {
	Mean float64
}

// Delay implements Scheduler.
func (e Exponential) Delay(_, _ msg.ID, _ msg.Message, _ float64, rng *rand.Rand) float64 {
	mean := e.Mean
	if mean <= 0 {
		mean = 1
	}
	d := rng.ExpFloat64() * mean
	if d < minDelay {
		d = minDelay
	}
	return d
}

var _ Scheduler = Exponential{}

// Constant delivers every message after the same fixed delay, yielding an
// effectively synchronous lock-step execution.
type Constant struct {
	D float64
}

// Delay implements Scheduler.
func (c Constant) Delay(_, _ msg.ID, _ msg.Message, _ float64, _ *rand.Rand) float64 {
	if c.D <= 0 {
		return 1
	}
	return c.D
}

var _ Scheduler = Constant{}

// Skewed delays messages *to* slow processes by an extra factor, creating
// persistent stragglers: a stress test for the protocols' indifference to
// which n-k messages arrive first.
type Skewed struct {
	Base       Scheduler
	SlowSet    map[msg.ID]bool
	SlowFactor float64
}

// Delay implements Scheduler.
func (s Skewed) Delay(from, to msg.ID, m msg.Message, now float64, rng *rand.Rand) float64 {
	base := s.Base
	if base == nil {
		base = Uniform{Min: 0.1, Max: 1}
	}
	d := base.Delay(from, to, m, now, rng)
	if s.SlowSet[to] {
		f := s.SlowFactor
		if f < 1 {
			f = 1
		}
		d *= f
	}
	return d
}

var _ Scheduler = Skewed{}

// Func adapts a plain function to the Scheduler interface, for tests and
// scripted adversaries.
type Func func(from, to msg.ID, m msg.Message, now float64, rng *rand.Rand) float64

// Delay implements Scheduler.
func (f Func) Delay(from, to msg.ID, m msg.Message, now float64, rng *rand.Rand) float64 {
	return f(from, to, m, now, rng)
}

var _ Scheduler = Func(nil)

// Clamp wraps a delay so it is finite and strictly positive; engines apply
// it to every scheduler result so a buggy policy cannot stall the event
// queue with zero, negative, NaN or infinite delays.
func Clamp(d float64) float64 {
	if math.IsNaN(d) || d < minDelay {
		return minDelay
	}
	if math.IsInf(d, +1) || d > maxDelay {
		return maxDelay
	}
	return d
}

const (
	minDelay = 1e-9
	maxDelay = 1e12
)

// Name returns a human-readable description for known scheduler types.
func Name(s Scheduler) string {
	switch v := s.(type) {
	case Uniform:
		return fmt.Sprintf("uniform[%.2g,%.2g]", v.Min, v.Max)
	case Exponential:
		return fmt.Sprintf("exp(mean=%.2g)", v.Mean)
	case Constant:
		return fmt.Sprintf("const(%.2g)", v.D)
	case Skewed:
		return fmt.Sprintf("skewed(x%.2g over %s)", v.SlowFactor, Name(v.Base))
	default:
		return fmt.Sprintf("%T", s)
	}
}
