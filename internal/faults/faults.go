// Package faults describes fail-stop fault plans: which processes die, in
// which phase, and after how many individual sends within that phase. The
// paper's fail-stop processes "may simply die ... without warning messages"
// (Section 2.1); dying in the middle of a broadcast -- so that only some
// recipients ever see the message -- is the hardest case and is directly
// expressible here.
package faults

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"resilient/internal/msg"
)

// Crash describes the death of a single process.
type Crash struct {
	// Process is the process that dies.
	Process msg.ID
	// Phase is the protocol phase in which it dies. Phase 0 with
	// AfterSends 0 means the process is initially dead and never sends.
	Phase msg.Phase
	// AfterSends is how many individual point-to-point sends the process
	// completes once it has reached Phase before dying. A broadcast to n
	// processes counts as n sends, so AfterSends in 1..n-1 kills the
	// process mid-broadcast.
	AfterSends int
}

// String describes the crash.
func (c Crash) String() string {
	return fmt.Sprintf("p%d dies in phase %s after %d sends", c.Process, c.Phase, c.AfterSends)
}

// Plan maps processes to their crash descriptions. Processes absent from the
// plan never crash.
type Plan map[msg.ID]Crash

// Validate checks that the plan is internally consistent for an n-process
// system.
func (p Plan) Validate(n int) error {
	for id, c := range p {
		if id != c.Process {
			return fmt.Errorf("faults: plan key p%d does not match crash process p%d", id, c.Process)
		}
		if id < 0 || int(id) >= n {
			return fmt.Errorf("faults: crash process p%d outside 0..%d", id, n-1)
		}
		if c.Phase < 0 {
			return fmt.Errorf("faults: crash phase %d negative for p%d", c.Phase, id)
		}
		if c.AfterSends < 0 {
			return fmt.Errorf("faults: negative AfterSends %d for p%d", c.AfterSends, id)
		}
	}
	return nil
}

// Size returns the number of processes that crash under the plan.
func (p Plan) Size() int { return len(p) }

// Processes returns the crashing processes in ascending order.
func (p Plan) Processes() []msg.ID {
	ids := make([]msg.ID, 0, len(p))
	for id := range p {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// None is the empty plan.
func None() Plan { return Plan{} }

// InitiallyDead returns a plan in which the given processes are dead from
// the start (the Section 5 fault case).
func InitiallyDead(ids ...msg.ID) Plan {
	p := make(Plan, len(ids))
	for _, id := range ids {
		p[id] = Crash{Process: id, Phase: 0, AfterSends: 0}
	}
	return p
}

// Random returns a plan crashing f distinct processes chosen uniformly from
// 0..n-1, each at a uniform phase in [0, maxPhase] after a uniform number of
// sends in [0, n] (so mid-broadcast deaths are common).
func Random(rng *rand.Rand, n, f int, maxPhase msg.Phase) Plan {
	if f > n {
		f = n
	}
	perm := rng.Perm(n)
	p := make(Plan, f)
	for i := 0; i < f; i++ {
		id := msg.ID(perm[i])
		p[id] = Crash{
			Process:    id,
			Phase:      msg.Phase(rng.IntN(int(maxPhase) + 1)),
			AfterSends: rng.IntN(n + 1),
		}
	}
	return p
}

// Tracker tracks a single process's progress toward its planned crash. The
// execution engines consult it before every individual send and delivery.
type Tracker struct {
	crash   Crash
	hasPlan bool
	dead    bool
	armed   bool
	budget  int
}

// NewTracker returns a tracker for the given process under the plan. A
// process without an entry in the plan gets an inert tracker.
func NewTracker(p Plan, id msg.ID) *Tracker {
	c, ok := p[id]
	return &Tracker{crash: c, hasPlan: ok, budget: c.AfterSends}
}

// Dead reports whether the process has died.
func (t *Tracker) Dead() bool { return t.dead }

// Planned reports whether the process has a crash plan at all.
func (t *Tracker) Planned() bool { return t.hasPlan }

// AllowSend is called before each individual send while the process is in
// the given phase. It returns false -- and marks the process dead -- when the
// planned crash point has been reached.
func (t *Tracker) AllowSend(phase msg.Phase) bool {
	if t.dead {
		return false
	}
	if !t.hasPlan {
		return true
	}
	if !t.armed && phase >= t.crash.Phase {
		t.armed = true
	}
	if !t.armed {
		return true
	}
	if t.budget == 0 {
		t.dead = true
		return false
	}
	t.budget--
	return true
}

// CheckPhase is called when the process advances to a new phase; a process
// whose crash phase has been reached with a zero send budget dies
// immediately even if it never attempts another send.
func (t *Tracker) CheckPhase(phase msg.Phase) {
	if t.dead || !t.hasPlan {
		return
	}
	if phase >= t.crash.Phase {
		t.armed = true
		if t.budget == 0 {
			t.dead = true
		}
	}
}
