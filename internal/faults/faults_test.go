package faults

import (
	"math/rand/v2"
	"testing"

	"resilient/internal/msg"
)

func TestPlanValidate(t *testing.T) {
	good := Plan{
		1: {Process: 1, Phase: 0, AfterSends: 3},
		4: {Process: 4, Phase: 2, AfterSends: 0},
	}
	if err := good.Validate(5); err != nil {
		t.Errorf("good plan rejected: %v", err)
	}
	bad := []Plan{
		{1: {Process: 2}},                           // key mismatch
		{9: {Process: 9}},                           // out of range
		{1: {Process: 1, Phase: -1}},                // negative phase
		{1: {Process: 1, Phase: 0, AfterSends: -2}}, // negative sends
		{msg.ID(-1): {Process: -1, Phase: 0}},       // negative id
		{3: {Process: 3, Phase: 0, AfterSends: -1}}, // negative sends again
	}
	for i, p := range bad {
		if err := p.Validate(5); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
}

func TestInitiallyDead(t *testing.T) {
	p := InitiallyDead(2, 4)
	if p.Size() != 2 {
		t.Fatalf("size %d", p.Size())
	}
	for _, id := range []msg.ID{2, 4} {
		c := p[id]
		if c.Phase != 0 || c.AfterSends != 0 {
			t.Errorf("p%d: %+v not initially dead", id, c)
		}
	}
	ids := p.Processes()
	if len(ids) != 2 || ids[0] != 2 || ids[1] != 4 {
		t.Errorf("Processes() = %v", ids)
	}
}

func TestRandomPlan(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	p := Random(rng, 10, 4, 5)
	if p.Size() != 4 {
		t.Fatalf("size %d", p.Size())
	}
	if err := p.Validate(10); err != nil {
		t.Fatalf("random plan invalid: %v", err)
	}
	// f > n clamps.
	p2 := Random(rng, 3, 10, 2)
	if p2.Size() != 3 {
		t.Errorf("clamped size %d", p2.Size())
	}
}

func TestTrackerNoPlanNeverDies(t *testing.T) {
	tr := NewTracker(None(), 0)
	for i := 0; i < 1000; i++ {
		if !tr.AllowSend(msg.Phase(i)) {
			t.Fatal("inert tracker denied a send")
		}
	}
	tr.CheckPhase(999)
	if tr.Dead() || tr.Planned() {
		t.Error("inert tracker died")
	}
}

func TestTrackerDiesAfterBudget(t *testing.T) {
	p := Plan{0: {Process: 0, Phase: 2, AfterSends: 3}}
	tr := NewTracker(p, 0)
	// Before the crash phase: unlimited sends.
	for i := 0; i < 50; i++ {
		if !tr.AllowSend(1) {
			t.Fatal("denied before crash phase")
		}
	}
	// At the crash phase: exactly 3 more sends.
	for i := 0; i < 3; i++ {
		if !tr.AllowSend(2) {
			t.Fatalf("send %d denied within budget", i)
		}
	}
	if tr.AllowSend(2) {
		t.Fatal("send allowed beyond budget")
	}
	if !tr.Dead() {
		t.Fatal("not dead after budget exhausted")
	}
	if tr.AllowSend(5) {
		t.Fatal("dead process sent")
	}
}

func TestTrackerArmsOnLaterPhase(t *testing.T) {
	// A process that skips past its crash phase still dies.
	p := Plan{0: {Process: 0, Phase: 1, AfterSends: 0}}
	tr := NewTracker(p, 0)
	if !tr.AllowSend(0) {
		t.Fatal("phase 0 send denied")
	}
	if tr.AllowSend(3) {
		t.Fatal("send allowed at phase 3 > crash phase with zero budget")
	}
	if !tr.Dead() {
		t.Fatal("not dead")
	}
}

func TestTrackerCheckPhaseKillsSilently(t *testing.T) {
	p := Plan{0: {Process: 0, Phase: 2, AfterSends: 0}}
	tr := NewTracker(p, 0)
	tr.CheckPhase(1)
	if tr.Dead() {
		t.Fatal("died early")
	}
	tr.CheckPhase(2)
	if !tr.Dead() {
		t.Fatal("CheckPhase did not kill at crash phase with zero budget")
	}
}

func TestTrackerPartialBudgetSurvivesPhaseCheck(t *testing.T) {
	p := Plan{0: {Process: 0, Phase: 2, AfterSends: 2}}
	tr := NewTracker(p, 0)
	tr.CheckPhase(2)
	if tr.Dead() {
		t.Fatal("killed with remaining budget")
	}
	if !tr.AllowSend(2) || !tr.AllowSend(2) {
		t.Fatal("budgeted sends denied")
	}
	if tr.AllowSend(2) {
		t.Fatal("budget not enforced")
	}
}

func TestCrashString(t *testing.T) {
	c := Crash{Process: 3, Phase: 1, AfterSends: 4}
	if c.String() == "" {
		t.Error("empty string")
	}
}
