package netxport

import (
	"errors"
	"net"
	"testing"
	"time"

	"resilient/internal/msg"
	"resilient/internal/transport"
)

// deadAddr returns a loopback address that actively refuses connections: the
// port was just bound and released, so nothing listens there.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestDialAbortsAfterClose pins the dial-context wiring: once Close has run,
// a dial must fail immediately with ErrClosed instead of attempting a TCP
// connect. Before the context-bounded dialer, an in-flight connect to a
// blackholed address could run out the OS connect timeout (minutes) with
// the link lock held, stalling Close's flush phase behind it.
func TestDialAbortsAfterClose(t *testing.T) {
	// 203.0.113.1 is TEST-NET-3 (RFC 5737): never routed, so any real
	// connect attempt would hang until a timeout. The canceled context must
	// prevent the attempt from starting at all.
	e, err := Listen(0, []string{"127.0.0.1:0", "203.0.113.1:9"})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	start := time.Now()
	_, err = e.dial(1, 0)
	if !errors.Is(err, transport.ErrClosed) {
		t.Errorf("dial after Close: %v, want transport.ErrClosed", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("dial after Close took %v; the canceled context must abort it immediately", elapsed)
	}
}

// TestCloseAbortsDialRetryStorm pins flush-phase liveness: Close must return
// promptly even while a writer is mid-retry-storm against an unreachable
// peer (the e.done select aborts the backoff sleeps, and pending frames to a
// dead peer are dropped, not waited on).
func TestCloseAbortsDialRetryStorm(t *testing.T) {
	e, err := Listen(0, []string{"127.0.0.1:0", deadAddr(t)})
	if err != nil {
		t.Fatal(err)
	}
	// Park frames on the dead peer's queue; the writer goroutine enters its
	// dial-retry loop against the refusing address.
	for i := 0; i < 4; i++ {
		if err := e.Send(1, msg.Val(0, msg.Phase(i), msg.V0)); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(10 * time.Millisecond) // let the writer start dialing
	start := time.Now()
	e.Close()
	// The full undisturbed retry budget is dialAttempts dials with backoff
	// per flush attempt; Close must cut through it, not run it out.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("Close took %v with a writer in a dial-retry storm", elapsed)
	}
}
