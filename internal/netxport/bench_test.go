package netxport

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"resilient/internal/msg"
)

// drainEndpoint consumes an endpoint's inbox until it closes, counting into
// got.
func drainEndpoint(ep *Endpoint, got *atomic.Int64) {
	for {
		if _, err := ep.Recv(); err != nil {
			return
		}
		got.Add(1)
	}
}

// benchLoopback pushes b.N messages through an n-endpoint loopback mesh --
// every endpoint sending round-robin to its peers concurrently, the shape of
// a consensus broadcast storm -- and reports aggregate msgs/s. With coalesce
// off this is the pre-change transport's cost profile (one write syscall per
// frame), so the coalesce/direct ratio at each n is the headline number.
func benchLoopback(b *testing.B, n int, coalesce bool) {
	eps := mesh(b, n)
	for _, ep := range eps {
		ep.SetCoalescing(coalesce)
	}
	var got atomic.Int64
	for _, ep := range eps {
		go drainEndpoint(ep, &got)
	}

	// Split b.N messages across the n senders, remainder to the low ids.
	quota := make([]int, n)
	for i := 0; i < n; i++ {
		quota[i] = b.N / n
		if i < b.N%n {
			quota[i]++
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			ep := eps[self]
			for k := 0; k < quota[self]; k++ {
				to := msg.ID((self + 1 + k%(n-1)) % n) // round-robin over peers
				if err := ep.Send(to, msg.Val(0, msg.Phase(k), msg.V1)); err != nil {
					b.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for got.Load() < int64(b.N) {
		runtime.Gosched()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
}

// BenchmarkNetxportLoopback is the live-path throughput headline tracked by
// the CI bench lane: messages per second over real loopback sockets at
// cluster sizes n=7/13/21, with the coalescing writer and with the direct
// one-write-per-frame path.
func BenchmarkNetxportLoopback(b *testing.B) {
	for _, mode := range []struct {
		name     string
		coalesce bool
	}{{"coalesce", true}, {"direct", false}} {
		for _, n := range []int{7, 13, 21} {
			b.Run(fmt.Sprintf("%s/n=%d", mode.name, n), func(b *testing.B) {
				benchLoopback(b, n, mode.coalesce)
			})
		}
	}
}

// maxTransportAllocsPerMessage is the transport hot path's allocation
// ceiling, the socket-path sibling of the simulator's
// BenchmarkSimulateZeroAlloc gate. A sent message crosses Send -> enqueue ->
// writer flush -> peer read loop -> decoder -> inbox; in steady state (warm
// buffers, established connection) that whole chain is append/reuse only.
// The allowance above zero absorbs runtime jitter (netpoll, timer churn),
// not a per-message allocation.
const maxTransportAllocsPerMessage = 0.5

// BenchmarkNetxportZeroAlloc FAILS, not just reports, when the steady-state
// socket path allocates more than the ceiling per message (sender and
// receiver goroutines included -- AllocsPerRun counts the whole process).
func BenchmarkNetxportZeroAlloc(b *testing.B) {
	eps := mesh(b, 2)
	var got atomic.Int64
	go drainEndpoint(eps[1], &got)
	m := msg.Val(0, 1, msg.V1)

	send := func(count int) {
		start := got.Load()
		for i := 0; i < count; i++ {
			if err := eps[0].Send(1, m); err != nil {
				b.Fatal(err)
			}
		}
		// Quiesce: the writer's flush and the peer's decode must land inside
		// the measured window to be attributed.
		for got.Load() < start+int64(count) {
			runtime.Gosched()
		}
	}
	send(2000) // warm: dial, grow the pending/spare/decoder buffers

	const batch = 5000
	allocs := testing.AllocsPerRun(3, func() { send(batch) })
	perMessage := allocs / batch
	if perMessage > maxTransportAllocsPerMessage {
		b.Fatalf("%.4f allocs per message (%.0f allocs / %d messages), ceiling %.2f",
			perMessage, allocs, batch, maxTransportAllocsPerMessage)
	}

	b.ReportAllocs()
	b.ResetTimer()
	send(b.N)
	b.StopTimer()
	b.ReportMetric(perMessage, "allocs/msg")
}
