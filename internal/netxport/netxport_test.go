package netxport

import (
	"fmt"
	"testing"
	"time"

	"resilient/internal/msg"
)

// mesh starts n endpoints on ephemeral loopback ports, fully wired.
func mesh(t testing.TB, n int) []*Endpoint {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	eps := make([]*Endpoint, n)
	for i := 0; i < n; i++ {
		ep, err := Listen(msg.ID(i), addrs)
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
		t.Cleanup(func() { ep.Close() })
	}
	for _, ep := range eps {
		for j, other := range eps {
			ep.SetPeerAddr(msg.ID(j), other.Addr())
		}
	}
	return eps
}

func recvWithTimeout(t *testing.T, ep *Endpoint) msg.Message {
	t.Helper()
	type res struct {
		m   msg.Message
		err error
	}
	ch := make(chan res, 1)
	go func() {
		m, err := ep.Recv()
		ch <- res{m, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatal(r.err)
		}
		return r.m
	case <-time.After(10 * time.Second):
		t.Fatal("recv timed out")
		return msg.Message{}
	}
}

func TestSendRecvAcrossSockets(t *testing.T) {
	eps := mesh(t, 2)
	want := msg.State(0, 3, msg.V1, 9)
	if err := eps[0].Send(1, want); err != nil {
		t.Fatal(err)
	}
	got := recvWithTimeout(t, eps[1])
	if got.Kind != msg.KindState || got.Phase != 3 || got.Value != msg.V1 || got.Cardinality != 9 {
		t.Errorf("got %+v", got)
	}
	if got.From != 0 {
		t.Errorf("authenticated sender %d", got.From)
	}
}

func TestSelfSendLocalPath(t *testing.T) {
	eps := mesh(t, 1)
	if err := eps[0].Send(0, msg.Val(0, 1, msg.V0)); err != nil {
		t.Fatal(err)
	}
	got := recvWithTimeout(t, eps[0])
	if got.Phase != 1 {
		t.Errorf("got %+v", got)
	}
}

func TestIdentityStampedNotClaimed(t *testing.T) {
	eps := mesh(t, 3)
	forged := msg.Val(2, 0, msg.V1) // p0 claims to be p2
	if err := eps[0].Send(1, forged); err != nil {
		t.Fatal(err)
	}
	got := recvWithTimeout(t, eps[1])
	if got.From != 0 {
		t.Errorf("forgery survived: From=%d", got.From)
	}
}

func TestManyMessagesBothDirections(t *testing.T) {
	eps := mesh(t, 2)
	const count = 200
	go func() {
		for i := 0; i < count; i++ {
			eps[0].Send(1, msg.Val(0, msg.Phase(i), msg.V0))
			eps[1].Send(0, msg.Val(1, msg.Phase(i), msg.V1))
		}
	}()
	for i := 0; i < count; i++ {
		a := recvWithTimeout(t, eps[1])
		if a.Phase != msg.Phase(i) {
			t.Fatalf("p1 got phase %d want %d", a.Phase, i)
		}
		b := recvWithTimeout(t, eps[0])
		if b.Phase != msg.Phase(i) {
			t.Fatalf("p0 got phase %d want %d", b.Phase, i)
		}
	}
}

func TestSendToUnknownDestination(t *testing.T) {
	eps := mesh(t, 2)
	if err := eps[0].Send(9, msg.Message{}); err == nil {
		t.Error("destination outside table accepted")
	}
}

func TestCloseIsIdempotentAndFast(t *testing.T) {
	eps := mesh(t, 3)
	// Generate some cross-traffic so accepted connections exist.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			eps[i].Send(msg.ID(j), msg.Val(0, 0, msg.V0))
		}
	}
	done := make(chan struct{})
	go func() {
		for _, ep := range eps {
			ep.Close()
			ep.Close() // idempotent
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close deadlocked")
	}
}

func TestListenRejectsBadID(t *testing.T) {
	if _, err := Listen(5, []string{"127.0.0.1:0"}); err == nil {
		t.Error("id outside table accepted")
	}
}

func TestLargeGraphPayload(t *testing.T) {
	eps := mesh(t, 2)
	payload := make([]byte, 10000)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := eps[0].Send(1, msg.Graph(0, 2, payload)); err != nil {
		t.Fatal(err)
	}
	got := recvWithTimeout(t, eps[1])
	if len(got.Payload) != len(payload) {
		t.Fatalf("payload length %d", len(got.Payload))
	}
	for i := range payload {
		if got.Payload[i] != payload[i] {
			t.Fatal("payload corrupted")
		}
	}
}

func TestAddrFormat(t *testing.T) {
	eps := mesh(t, 1)
	var host string
	var port int
	if _, err := fmt.Sscanf(eps[0].Addr(), "%s", &host); err != nil && port == 0 {
		t.Skip("addr parse not critical")
	}
	if eps[0].Addr() == "" {
		t.Error("empty address")
	}
}
