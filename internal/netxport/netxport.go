// Package netxport is a TCP implementation of the transport.Conn interface:
// n processes connected in a full mesh over loopback (or any reachable
// addresses), with length-prefixed binary frames (internal/msg codec).
//
// The transport is throughput-grade: outbound messages are encoded with
// msg.AppendEncode into a per-peer pending buffer and drained by a per-peer
// writer goroutine that flushes many frames in one syscall (write
// coalescing), and inbound frames are parsed by a streaming msg.Decoder out
// of one reused read buffer -- the steady-state path allocates nothing per
// message. A small linger window (SetLinger) lets a burst accumulate into
// one flush; the writer hard-flushes whatever is pending the moment it wakes
// with the queue non-empty, so latency stays bounded by linger + one write.
// SetCoalescing(false) restores the one-write-per-frame direct path for
// comparison.
//
// Every frame carries a 4-byte instance id, multiplexing many consensus
// instances over ONE socket per peer pair: Instance(i) returns a
// transport.Conn view whose sends are tagged with i and whose receives see
// only instance-i traffic, so a replicated log running hundreds of Figure-2
// instances pays n^2 sockets once, not per instance. The endpoint itself is
// instance 0.
//
// Each endpoint listens on its own address. Outbound connections are
// established lazily on first send, one per peer: a slow, unreachable, or
// retry-storming peer never blocks sends to the others. A connection whose
// write fails (or exceeds the write deadline) is evicted and redialed --
// with a backoff that grows with consecutive failures -- and the writer
// retries the interrupted batch once after redialing, so a transient
// eviction loses no frames. Close flushes every pending queue (bounded by
// the write deadline) before tearing sockets down.
//
// Connections are identified by a fixed-size hello frame carrying the
// dialer's process id. Inbound messages are stamped with the hello
// identity, never the message's claimed sender, so impersonation requires
// owning the peer's listening socket -- a stand-in for the paper's
// requirement that "the message system must provide a way for correct
// processes to verify the identity of the sender" (Section 3.1). A
// production deployment would pin identities with TLS; this package keeps
// the demo dependency-free.
package netxport

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"resilient/internal/metrics"
	"resilient/internal/msg"
	"resilient/internal/transport"
)

// muxHeaderLen is the per-frame instance-id header (uint32, big-endian)
// between the length prefix and the msg encoding.
const muxHeaderLen = 4

// Dial and write policy: a freshly started cluster races listener startup
// against first sends, so transient dial failures are expected and retried
// with a short backoff before surfacing an error. Repeated failures across
// Send calls widen the backoff up to maxDialBackoff; a successful dial or
// write resets it. Writes carry a deadline so a peer that stops reading
// cannot wedge a sender forever.
const (
	dialAttempts        = 3
	dialBackoff         = 5 * time.Millisecond
	maxDialBackoff      = 250 * time.Millisecond
	dialTimeout         = 10 * time.Second
	defaultWriteTimeout = 10 * time.Second
)

// defaultLinger is the default coalescing window: how long a waking writer
// lets a burst accumulate before flushing it in one syscall. It bounds the
// extra latency coalescing can add to a lone message.
const defaultLinger = 50 * time.Microsecond

// defaultQueueCap is the default per-peer pending-buffer cap in bytes.
// Beyond it, Send blocks (backpressure) until the writer drains the queue.
const defaultQueueCap = 1 << 20

// netMetrics holds the endpoint's instrument handles; all fields are nil
// (free no-ops) when metrics are off.
type netMetrics struct {
	bytesSent    *metrics.Counter
	bytesRecv    *metrics.Counter
	framesSent   *metrics.Counter
	framesRecv   *metrics.Counter
	flushes      *metrics.Counter
	dials        *metrics.Counter
	dialRetries  *metrics.Counter
	dialErrors   *metrics.Counter
	decodeErrors *metrics.Counter
	localFrames  *metrics.Counter
	evictions    *metrics.Counter
	muxDrops     *metrics.Counter
	flushDrops   *metrics.Counter
}

func newNetMetrics(reg *metrics.Registry) *netMetrics {
	if reg == nil {
		return &netMetrics{}
	}
	m := reg.Scoped("net.")
	return &netMetrics{
		bytesSent:    m.Counter("bytes_sent"),
		bytesRecv:    m.Counter("bytes_received"),
		framesSent:   m.Counter("frames_sent"),
		framesRecv:   m.Counter("frames_received"),
		flushes:      m.Counter("flushes"),
		dials:        m.Counter("dials"),
		dialRetries:  m.Counter("dial_retries"),
		dialErrors:   m.Counter("dial_errors"),
		decodeErrors: m.Counter("decode_errors"),
		localFrames:  m.Counter("local_frames"),
		evictions:    m.Counter("conn_evictions"),
		muxDrops:     m.Counter("mux_drops"),
		flushDrops:   m.Counter("flush_frame_drops"),
	}
}

// peerLink is one peer's outbound state: the pending frame buffer its
// writer goroutine drains, and the connection the frames flush to. The
// mutex guards the queue and connection fields; the coalescing writer never
// holds it across a syscall, so senders keep enqueuing while a flush is in
// flight (natural batching). The direct (non-coalescing) path holds it
// across dial+write, serializing frames to that peer only.
type peerLink struct {
	mu      sync.Mutex
	cond    *sync.Cond // signaled on empty->nonempty and after each drain
	pending []byte     // encoded frames awaiting flush
	frames  int        // frame count in pending
	spare   []byte     // writer's drained batch, swapped back for reuse
	started bool       // writer goroutine running
	closed  bool       // endpoint closing: reject new frames, flush the rest
	scratch []byte     // direct-path encode buffer (under mu)
	conn    net.Conn   // nil when down; established lazily, evicted on failure
	fails   int        // consecutive dial/write failures, drives the backoff
}

// Endpoint is one process's TCP endpoint. It implements transport.Conn as
// instance 0; Instance returns further multiplexed conns.
type Endpoint struct {
	id    msg.ID
	addrs []string // addrs[i] is process i's listen address
	ln    net.Listener

	mu       sync.Mutex
	links    map[msg.ID]*peerLink // per-peer outbound state
	accepted []net.Conn           // inbound connections, closed on shutdown
	dialed   []net.Conn           // every outbound conn, closed on shutdown
	closed   bool                 // guards link/instance creation after Close

	inbox chan inboundMsg
	insts atomic.Pointer[map[uint32]*instConn]
	done  chan struct{}

	// dialCtx is canceled by Close after the flush phase so a straggling
	// connect aborts instead of running out its own timeout. Flush-phase
	// dials themselves are bounded by dialTimeout, not the OS connect
	// timeout — a blackholed peer address would otherwise stall Close for
	// minutes.
	dialCtx    context.Context
	dialCancel context.CancelFunc
	wg         sync.WaitGroup // accept loop + read loops
	wwg        sync.WaitGroup // per-peer writer goroutines

	// met is swapped atomically so SetMetrics races cleanly with the
	// accept/read goroutines; the pointer is never nil.
	met atomic.Pointer[netMetrics]

	// writeTimeout is the per-write deadline in nanoseconds (0 disables).
	writeTimeout atomic.Int64
	// linger is the coalescing window in nanoseconds (0 flushes immediately).
	linger atomic.Int64
	// queueCap is the per-peer pending cap in bytes.
	queueCap atomic.Int64
	// coalesce selects the batched writer (true) or the one-write-per-frame
	// direct path (false).
	coalesce atomic.Bool

	closeOnce sync.Once
}

type inboundMsg struct {
	m   msg.Message
	err error
}

var _ transport.Conn = (*Endpoint)(nil)

// Listen creates the endpoint for process id, listening on addrs[id]. The
// address may use port 0; the actual address is available via Addr.
func Listen(id msg.ID, addrs []string) (*Endpoint, error) {
	if id < 0 || int(id) >= len(addrs) {
		return nil, fmt.Errorf("netxport: id %d outside address table of %d", id, len(addrs))
	}
	ln, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return nil, fmt.Errorf("netxport: listen %s: %w", addrs[id], err)
	}
	e := &Endpoint{
		id:    id,
		addrs: append([]string(nil), addrs...),
		ln:    ln,
		links: make(map[msg.ID]*peerLink),
		inbox: make(chan inboundMsg, 1024),
		done:  make(chan struct{}),
	}
	e.dialCtx, e.dialCancel = context.WithCancel(context.Background())
	e.addrs[id] = ln.Addr().String()
	e.met.Store(newNetMetrics(nil))
	e.writeTimeout.Store(int64(defaultWriteTimeout))
	e.linger.Store(int64(defaultLinger))
	e.queueCap.Store(defaultQueueCap)
	e.coalesce.Store(true)
	insts := make(map[uint32]*instConn)
	e.insts.Store(&insts)
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// SetMetrics attaches a metrics registry; subsequent traffic is accounted
// under the "net." prefix (bytes, frames, flushes, dials, retries,
// evictions, mux drops). Safe to call at any time, including concurrently
// with traffic; nil detaches.
func (e *Endpoint) SetMetrics(reg *metrics.Registry) {
	e.met.Store(newNetMetrics(reg))
}

// SetWriteTimeout changes the per-write deadline (0 disables deadlines).
// Safe to call concurrently with traffic.
func (e *Endpoint) SetWriteTimeout(d time.Duration) {
	e.writeTimeout.Store(int64(d))
}

// SetLinger changes the coalescing window: how long a waking writer lets
// further frames accumulate before flushing the batch. 0 flushes
// immediately. Safe to call concurrently with traffic.
func (e *Endpoint) SetLinger(d time.Duration) {
	e.linger.Store(int64(d))
}

// SetQueueCap changes the per-peer pending cap in bytes; beyond it Send
// blocks until the writer drains. Values < 1 fall back to the default.
func (e *Endpoint) SetQueueCap(bytes int) {
	if bytes < 1 {
		bytes = defaultQueueCap
	}
	e.queueCap.Store(int64(bytes))
}

// SetCoalescing selects the batched per-peer writer (true, the default) or
// the one-write-per-frame direct path (false). Call it before traffic
// starts: once a peer's writer goroutine is running, frames to that peer
// keep flowing through its queue regardless.
func (e *Endpoint) SetCoalescing(on bool) {
	e.coalesce.Store(on)
}

// Addr returns the endpoint's actual listen address.
func (e *Endpoint) Addr() string { return e.ln.Addr().String() }

// SetPeerAddr updates the address table entry for a peer (used when peers
// listen on ephemeral ports discovered after startup).
func (e *Endpoint) SetPeerAddr(id msg.ID, addr string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if id >= 0 && int(id) < len(e.addrs) {
		e.addrs[id] = addr
	}
}

func (e *Endpoint) peerAddr(id msg.ID) string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.addrs[id]
}

// ID implements transport.Conn.
func (e *Endpoint) ID() msg.ID { return e.id }

// Send implements transport.Conn on the endpoint's own stream (instance 0).
func (e *Endpoint) Send(to msg.ID, m msg.Message) error {
	return e.send(to, 0, m)
}

// send stamps the authenticated sender and routes one message: local
// delivery for self-sends, otherwise the destination link's coalescing
// queue (or the direct path when coalescing is off). This is the transport
// hot path: encoding appends into reused per-link buffers and the only
// blocking is queue backpressure.
func (e *Endpoint) send(to msg.ID, inst uint32, m msg.Message) error {
	if to < 0 || int(to) >= len(e.addrs) {
		//lint:allow hotalloc misuse error path, never taken by a well-formed cluster
		return fmt.Errorf("netxport: destination %d outside address table", to)
	}
	m.From = e.id
	met := e.met.Load()
	if to == e.id {
		// Local delivery without a socket round-trip.
		if !e.route(inst, inboundMsg{m: m}) {
			return transport.ErrClosed
		}
		met.localFrames.Inc()
		return nil
	}
	l, err := e.link(to)
	if err != nil {
		return err
	}
	if e.coalesce.Load() {
		l.mu.Lock()
		err := e.enqueueLocked(l, to, inst, m)
		l.mu.Unlock()
		if err == nil {
			l.cond.Broadcast()
		}
		return err
	}
	return e.sendDirect(l, to, inst, m)
}

// appendFrame appends one wire frame -- length prefix, instance id, msg
// encoding -- to dst.
func appendFrame(dst []byte, inst uint32, m msg.Message) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(msg.EncodedLen(m))+muxHeaderLen)
	dst = binary.BigEndian.AppendUint32(dst, inst)
	return msg.AppendEncode(dst, m)
}

// enqueueLocked appends one frame to the link's pending buffer, blocking
// while the queue is over its cap, and lazily starts the link's writer.
// Called with l.mu held; the caller broadcasts after unlocking.
func (e *Endpoint) enqueueLocked(l *peerLink, to msg.ID, inst uint32, m msg.Message) error {
	capBytes := int(e.queueCap.Load())
	for len(l.pending) >= capBytes && !l.closed {
		l.cond.Wait()
	}
	if l.closed {
		return transport.ErrClosed
	}
	l.pending = appendFrame(l.pending, inst, m)
	l.frames++
	if !l.started {
		l.started = true
		e.wwg.Add(1)
		go e.writeLoop(l, to)
	}
	return nil
}

// sendDirect is the one-write-per-frame path: dial and write under the link
// lock, exactly the pre-coalescing transport's cost profile. If the link's
// writer goroutine is already running, the frame joins its queue instead --
// two paths must never interleave writes on one socket.
func (e *Endpoint) sendDirect(l *peerLink, to msg.ID, inst uint32, m msg.Message) error {
	l.mu.Lock()
	if l.started {
		err := e.enqueueLocked(l, to, inst, m)
		l.mu.Unlock()
		if err == nil {
			l.cond.Broadcast()
		}
		return err
	}
	defer l.mu.Unlock()
	if l.closed {
		return transport.ErrClosed
	}
	met := e.met.Load()
	if l.conn == nil {
		// Deliberate dial-under-lock: the direct path reproduces the
		// pre-coalescing transport's serialized cost profile, only this
		// peer's link is stalled, and the dial is deadline- and
		// close-cancellable.
		//lint:allow lockblock direct path serializes dial+write per peer by design; bounded by dialTimeout and Close cancel
		conn, err := e.dial(to, l.fails)
		if err != nil {
			l.fails++
			return err
		}
		l.fails = 0
		l.conn = conn
		e.track(conn)
	}
	l.scratch = appendFrame(l.scratch[:0], inst, m)
	// Deliberate write-under-lock: one write per frame, serialized per peer
	// (two paths must never interleave writes on one socket), bounded by the
	// write deadline.
	//lint:allow lockblock direct path serializes dial+write per peer by design; bounded by the write deadline
	if err := e.write(l.conn, l.scratch); err != nil {
		e.evictLocked(l, l.conn)
		//lint:allow hotalloc write-failure path is cold; the frame is reported lost
		return fmt.Errorf("netxport: write to p%d: %w", to, err)
	}
	l.fails = 0
	met.framesSent.Inc()
	met.flushes.Inc()
	met.bytesSent.Add(int64(len(l.scratch)))
	return nil
}

// writeLoop drains one peer's queue: it waits for frames, lets a burst
// accumulate for the linger window, then swaps the pending buffer out and
// flushes it in one write. On endpoint close it keeps draining until the
// queue is empty (flush-on-close), then exits.
func (e *Endpoint) writeLoop(l *peerLink, to msg.ID) {
	defer e.wwg.Done()
	for {
		l.mu.Lock()
		for len(l.pending) == 0 && !l.closed {
			l.cond.Wait()
		}
		if len(l.pending) == 0 {
			l.mu.Unlock()
			return // closed and fully drained
		}
		closing := l.closed
		l.mu.Unlock()
		if d := time.Duration(e.linger.Load()); d > 0 && !closing {
			// Linger: a hot sender keeps appending while we sleep, turning
			// many frames into one syscall. Bounded, and skipped when
			// closing so shutdown never waits on the window.
			time.Sleep(d)
		}
		l.mu.Lock()
		batch := l.pending
		frames := l.frames
		l.pending = l.spare[:0]
		l.frames = 0
		l.mu.Unlock()
		l.cond.Broadcast() // senders blocked on a full queue re-check
		e.flushBatch(l, to, batch, frames)
		l.mu.Lock()
		l.spare = batch[:0] // recycle the drained batch's capacity
		l.mu.Unlock()
	}
}

// flushBatch writes one drained batch to the peer, dialing if the link is
// down. A failed write evicts the connection and retries the whole batch
// once on a fresh dial -- the batch either lands contiguously or is
// dropped (and counted), never half-recycled.
func (e *Endpoint) flushBatch(l *peerLink, to msg.ID, batch []byte, frames int) {
	met := e.met.Load()
	for attempt := 0; attempt < 2; attempt++ {
		conn, err := e.writerConn(l, to)
		if err != nil {
			break
		}
		if err := e.write(conn, batch); err != nil {
			e.evict(l, conn)
			continue // redial once and resend the batch
		}
		met.flushes.Inc()
		met.framesSent.Add(int64(frames))
		met.bytesSent.Add(int64(len(batch)))
		l.mu.Lock()
		l.fails = 0
		l.mu.Unlock()
		return
	}
	// Undeliverable: the peer is unreachable past the retry budget. Frames
	// to a dead peer are dropped, exactly like the pre-coalescing transport
	// surfaced (and then discarded) a send error per frame.
	met.flushDrops.Add(int64(frames))
}

// writerConn returns the link's live connection, dialing outside the link
// lock so senders keep enqueuing during a retry storm.
func (e *Endpoint) writerConn(l *peerLink, to msg.ID) (net.Conn, error) {
	l.mu.Lock()
	conn, fails := l.conn, l.fails
	l.mu.Unlock()
	if conn != nil {
		return conn, nil
	}
	conn, err := e.dial(to, fails)
	l.mu.Lock()
	if err != nil {
		l.fails++
	} else {
		l.fails = 0
		l.conn = conn
	}
	l.mu.Unlock()
	if err != nil {
		return nil, err
	}
	e.track(conn)
	return conn, nil
}

// link returns (creating if needed) the outbound state for a peer. Only the
// map access holds the endpoint lock.
func (e *Endpoint) link(to msg.ID) (*peerLink, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, transport.ErrClosed
	}
	l, ok := e.links[to]
	if !ok {
		l = &peerLink{}
		l.cond = sync.NewCond(&l.mu)
		e.links[to] = l
	}
	return l, nil
}

// track records an outbound connection for shutdown.
func (e *Endpoint) track(conn net.Conn) {
	e.mu.Lock()
	e.dialed = append(e.dialed, conn)
	e.mu.Unlock()
}

// write performs one deadline-bounded write.
func (e *Endpoint) write(conn net.Conn, b []byte) error {
	if d := time.Duration(e.writeTimeout.Load()); d > 0 {
		conn.SetWriteDeadline(time.Now().Add(d))
	}
	_, err := conn.Write(b)
	return err
}

// evict drops a link's broken connection so the next flush redials instead
// of reusing a poisoned socket.
func (e *Endpoint) evict(l *peerLink, conn net.Conn) {
	l.mu.Lock()
	e.evictLocked(l, conn)
	l.mu.Unlock()
}

// evictLocked is evict with l.mu already held.
func (e *Endpoint) evictLocked(l *peerLink, conn net.Conn) {
	conn.Close()
	if l.conn == conn {
		l.conn = nil
	}
	l.fails++
	e.met.Load().evictions.Inc()
}

// dial establishes one connection to a peer and identifies itself with the
// hello frame. The backoff between attempts starts at dialBackoff scaled by
// the link's consecutive-failure count and doubles per attempt (capped at
// maxDialBackoff); sleeps abort promptly when the endpoint closes. No lock
// is held by the caller on the coalescing path, so a retry storm toward one
// peer cannot stall anything but that peer's own queue.
func (e *Endpoint) dial(to msg.ID, fails int) (net.Conn, error) {
	met := e.met.Load()
	base := dialBackoff << min(fails, 6)
	if base > maxDialBackoff {
		base = maxDialBackoff
	}
	var (
		c   net.Conn
		err error
	)
	for attempt := 0; attempt < dialAttempts; attempt++ {
		if attempt > 0 {
			met.dialRetries.Inc()
			d := base << (attempt - 1)
			if d > maxDialBackoff {
				d = maxDialBackoff
			}
			select {
			case <-time.After(d):
			case <-e.done:
				return nil, transport.ErrClosed
			}
		}
		met.dials.Inc()
		// A bounded, cancellable connect: the deadline caps how long a
		// blackholed address can hold this writer, and Close's cancel aborts
		// the connect immediately so the flush phase never waits on it.
		d := net.Dialer{Timeout: dialTimeout}
		c, err = d.DialContext(e.dialCtx, "tcp", e.peerAddr(to))
		if err == nil {
			break
		}
		if e.dialCtx.Err() != nil {
			return nil, transport.ErrClosed
		}
	}
	if err != nil {
		met.dialErrors.Inc()
		//lint:allow hotalloc dial-failure path is cold by construction
		return nil, fmt.Errorf("netxport: dial p%d at %s: %w", to, e.peerAddr(to), err)
	}
	var hello [4]byte
	binary.BigEndian.PutUint32(hello[:], uint32(e.id))
	if err := e.write(c, hello[:]); err != nil {
		c.Close()
		//lint:allow hotalloc hello-failure path is cold by construction
		return nil, fmt.Errorf("netxport: hello to p%d: %w", to, err)
	}
	return c, nil
}

// Recv implements transport.Conn on the endpoint's own stream (instance 0).
func (e *Endpoint) Recv() (msg.Message, error) {
	select {
	case in, ok := <-e.inbox:
		if !ok {
			return msg.Message{}, transport.ErrClosed
		}
		return in.m, in.err
	case <-e.done:
		return msg.Message{}, transport.ErrClosed
	}
}

// Close implements transport.Conn: it stops link and instance creation,
// lets every per-peer writer flush its remaining frames (bounded by the
// write deadline and the dial retry budget), then closes all connections
// and joins the reader goroutines. It never takes a link lock across a
// syscall, so it cannot deadlock against a sender mid-dial or mid-write.
func (e *Endpoint) Close() error {
	e.closeOnce.Do(func() {
		close(e.done)
		e.ln.Close()
		e.mu.Lock()
		e.closed = true
		links := make([]*peerLink, 0, len(e.links))
		for _, l := range e.links {
			links = append(links, l)
		}
		e.mu.Unlock()
		// Flush phase: mark links closed and wake their writers (and any
		// senders blocked on backpressure). Writers drain what is pending,
		// then exit; new enqueues are rejected with ErrClosed.
		for _, l := range links {
			l.mu.Lock()
			l.closed = true
			l.mu.Unlock()
			l.cond.Broadcast()
		}
		e.wwg.Wait()
		// Writers are gone; abort any direct-path dial still in flight so a
		// concurrent Send cannot outlive the endpoint.
		e.dialCancel()
		e.mu.Lock()
		// Every outbound conn ever dialed is tracked in dialed (eviction
		// closes but does not untrack, and double-close is harmless).
		for _, c := range e.dialed {
			c.Close()
		}
		// Accepted connections must be closed too, or their readLoops
		// would block until the remote side shuts down -- a circular wait
		// when a whole cluster closes at once.
		for _, c := range e.accepted {
			c.Close()
		}
		e.mu.Unlock()
	})
	e.wg.Wait()
	return nil
}

func (e *Endpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		e.accepted = append(e.accepted, conn)
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

// readLoop authenticates one inbound connection by its hello frame, then
// streams frames through a reused decoder buffer: no per-frame allocation
// for payload-free messages. Malformed frames are counted and skipped; a
// framing-level violation (oversized length prefix, short read) drops the
// connection, as the stream can no longer be trusted.
func (e *Endpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer conn.Close()
	var hello [4]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return
	}
	from := msg.ID(int32(binary.BigEndian.Uint32(hello[:])))
	if from < 0 || int(from) >= len(e.addrs) {
		return // unknown identity
	}
	dec := msg.NewDecoder(conn)
	for {
		frame, err := dec.Frame()
		if err != nil {
			return
		}
		met := e.met.Load()
		met.framesRecv.Inc()
		met.bytesRecv.Add(int64(len(frame)) + 4)
		if len(frame) < muxHeaderLen {
			met.decodeErrors.Inc()
			continue
		}
		inst := binary.BigEndian.Uint32(frame[:muxHeaderLen])
		m, err := msg.Decode(frame[muxHeaderLen:])
		if err != nil {
			met.decodeErrors.Inc()
			continue // malformed frame from a (possibly malicious) peer
		}
		m.From = from // authenticated identity, not the claimed one
		if !e.route(inst, inboundMsg{m: m}) {
			return
		}
	}
}

// route delivers one inbound message to its instance's inbox. Unknown or
// detached instances drop the message (counted); a false return means the
// endpoint is closing and the caller should stop reading.
func (e *Endpoint) route(inst uint32, in inboundMsg) bool {
	if inst == 0 {
		select {
		case e.inbox <- in:
			return true
		case <-e.done:
			return false
		}
	}
	c := (*e.insts.Load())[inst]
	if c == nil {
		e.met.Load().muxDrops.Inc()
		return true
	}
	select {
	case c.inbox <- in:
	case <-c.done:
		e.met.Load().muxDrops.Inc()
	case <-e.done:
		return false
	}
	return true
}

// Instance returns a transport.Conn multiplexed over this endpoint's
// sockets: its sends tag frames with inst, and its receives see only
// frames tagged inst. Instance 0 is the endpoint itself; each other id may
// be claimed by at most one live conn at a time. Closing an instance conn
// detaches it and releases its id for a fresh claim -- a replicated log
// churning through one instance per slot keeps the demux table bounded by
// its pipeline window -- without touching the endpoint; closing the
// endpoint closes every instance.
//
// Create the instance on BOTH ends before traffic flows: frames for an
// unregistered instance are dropped (counted as net.mux_drops), matching
// the paper's model of a message system that only buffers for known
// processes.
func (e *Endpoint) Instance(inst uint32) (transport.Conn, error) {
	if inst == 0 {
		return nil, fmt.Errorf("netxport: instance 0 is the endpoint's own stream")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, transport.ErrClosed
	}
	cur := *e.insts.Load()
	if _, dup := cur[inst]; dup {
		return nil, fmt.Errorf("netxport: instance %d already claimed", inst)
	}
	c := &instConn{
		e:     e,
		inst:  inst,
		inbox: make(chan inboundMsg, 1024),
		done:  make(chan struct{}),
	}
	next := make(map[uint32]*instConn, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[inst] = c
	e.insts.Store(&next)
	return c, nil
}

// release removes a closed instance conn from the demux table so its id can
// be claimed again and the table does not grow with instance churn. The
// copy-on-write swap happens under e.mu -- the same lock Instance claims
// under -- so a release never loses a concurrent claim; the read side
// (route) keeps its lock-free atomic load. A conn that lost its id to a
// newer claimant (already-released id, re-claimed) leaves the table alone.
func (e *Endpoint) release(inst uint32, c *instConn) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := *e.insts.Load()
	if cur[inst] != c {
		return
	}
	next := make(map[uint32]*instConn, len(cur))
	for k, v := range cur {
		if k != inst {
			next[k] = v
		}
	}
	e.insts.Store(&next)
}

// instConn is one multiplexed instance's view of an Endpoint.
type instConn struct {
	e         *Endpoint
	inst      uint32
	inbox     chan inboundMsg
	done      chan struct{}
	closeOnce sync.Once
}

var _ transport.Conn = (*instConn)(nil)

// ID implements transport.Conn.
func (c *instConn) ID() msg.ID { return c.e.id }

// Send implements transport.Conn, tagging the frame with the instance id.
func (c *instConn) Send(to msg.ID, m msg.Message) error {
	select {
	case <-c.done:
		return transport.ErrClosed
	default:
	}
	return c.e.send(to, c.inst, m)
}

// Recv implements transport.Conn over the instance's demuxed inbox.
func (c *instConn) Recv() (msg.Message, error) {
	select {
	case in := <-c.inbox:
		return in.m, in.err
	case <-c.done:
		return msg.Message{}, transport.ErrClosed
	case <-c.e.done:
		return msg.Message{}, transport.ErrClosed
	}
}

// Close detaches the instance: its Recv unblocks with ErrClosed, subsequent
// frames for it are dropped, and its id is released for a fresh Instance
// claim. The endpoint and its sockets stay up for the remaining instances.
func (c *instConn) Close() error {
	c.closeOnce.Do(func() {
		close(c.done)
		c.e.release(c.inst, c)
	})
	return nil
}
