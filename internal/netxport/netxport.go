// Package netxport is a TCP implementation of the transport.Conn interface:
// n processes connected in a full mesh over loopback (or any reachable
// addresses), with length-prefixed binary frames (internal/msg codec).
//
// Each endpoint listens on its own address. Connections are established
// lazily on first send and identified by a fixed-size hello frame carrying
// the dialer's process id. Inbound messages are stamped with the hello
// identity, never the message's claimed sender, so impersonation requires
// owning the peer's listening socket -- a stand-in for the paper's
// requirement that "the message system must provide a way for correct
// processes to verify the identity of the sender" (Section 3.1). A
// production deployment would pin identities with TLS; this package keeps
// the demo dependency-free.
package netxport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"resilient/internal/metrics"
	"resilient/internal/msg"
	"resilient/internal/transport"
)

const maxFrame = 1 << 20

// Dial retry policy: a freshly started cluster races listener startup
// against first sends, so transient dial failures are expected and retried
// with a short backoff before surfacing an error.
const (
	dialAttempts = 3
	dialBackoff  = 5 * time.Millisecond
)

// netMetrics holds the endpoint's instrument handles; all fields are nil
// (free no-ops) when metrics are off.
type netMetrics struct {
	bytesSent    *metrics.Counter
	bytesRecv    *metrics.Counter
	framesSent   *metrics.Counter
	framesRecv   *metrics.Counter
	dials        *metrics.Counter
	dialRetries  *metrics.Counter
	dialErrors   *metrics.Counter
	decodeErrors *metrics.Counter
	localFrames  *metrics.Counter
}

func newNetMetrics(reg *metrics.Registry) *netMetrics {
	if reg == nil {
		return &netMetrics{}
	}
	m := reg.Scoped("net.")
	return &netMetrics{
		bytesSent:    m.Counter("bytes_sent"),
		bytesRecv:    m.Counter("bytes_received"),
		framesSent:   m.Counter("frames_sent"),
		framesRecv:   m.Counter("frames_received"),
		dials:        m.Counter("dials"),
		dialRetries:  m.Counter("dial_retries"),
		dialErrors:   m.Counter("dial_errors"),
		decodeErrors: m.Counter("decode_errors"),
		localFrames:  m.Counter("local_frames"),
	}
}

// Endpoint is one process's TCP endpoint. It implements transport.Conn.
type Endpoint struct {
	id    msg.ID
	addrs []string // addrs[i] is process i's listen address
	ln    net.Listener

	mu       sync.Mutex
	peers    map[msg.ID]net.Conn // outbound connections, lazily dialed
	accepted []net.Conn          // inbound connections, closed on shutdown

	inbox chan inboundMsg
	done  chan struct{}
	wg    sync.WaitGroup

	// met is swapped atomically so SetMetrics races cleanly with the
	// accept/read goroutines; the pointer is never nil.
	met atomic.Pointer[netMetrics]

	closeOnce sync.Once
}

type inboundMsg struct {
	m   msg.Message
	err error
}

var _ transport.Conn = (*Endpoint)(nil)

// Listen creates the endpoint for process id, listening on addrs[id]. The
// address may use port 0; the actual address is available via Addr.
func Listen(id msg.ID, addrs []string) (*Endpoint, error) {
	if id < 0 || int(id) >= len(addrs) {
		return nil, fmt.Errorf("netxport: id %d outside address table of %d", id, len(addrs))
	}
	ln, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return nil, fmt.Errorf("netxport: listen %s: %w", addrs[id], err)
	}
	e := &Endpoint{
		id:    id,
		addrs: append([]string(nil), addrs...),
		ln:    ln,
		peers: make(map[msg.ID]net.Conn),
		inbox: make(chan inboundMsg, 1024),
		done:  make(chan struct{}),
	}
	e.addrs[id] = ln.Addr().String()
	e.met.Store(newNetMetrics(nil))
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// SetMetrics attaches a metrics registry; subsequent traffic is accounted
// under the "net." prefix (bytes, frames, dials, retries). Safe to call at
// any time, including concurrently with traffic; nil detaches.
func (e *Endpoint) SetMetrics(reg *metrics.Registry) {
	e.met.Store(newNetMetrics(reg))
}

// Addr returns the endpoint's actual listen address.
func (e *Endpoint) Addr() string { return e.ln.Addr().String() }

// SetPeerAddr updates the address table entry for a peer (used when peers
// listen on ephemeral ports discovered after startup).
func (e *Endpoint) SetPeerAddr(id msg.ID, addr string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if id >= 0 && int(id) < len(e.addrs) {
		e.addrs[id] = addr
	}
}

// ID implements transport.Conn.
func (e *Endpoint) ID() msg.ID { return e.id }

// Send implements transport.Conn: it lazily dials the destination, then
// writes one frame.
func (e *Endpoint) Send(to msg.ID, m msg.Message) error {
	if to < 0 || int(to) >= len(e.addrs) {
		return fmt.Errorf("netxport: destination %d outside address table", to)
	}
	m.From = e.id
	met := e.met.Load()
	if to == e.id {
		// Local delivery without a socket round-trip.
		select {
		case e.inbox <- inboundMsg{m: m}:
			met.localFrames.Inc()
			return nil
		case <-e.done:
			return transport.ErrClosed
		}
	}
	conn, err := e.peer(to)
	if err != nil {
		return err
	}
	frame := msg.Encode(m)
	var lenbuf [4]byte
	binary.BigEndian.PutUint32(lenbuf[:], uint32(len(frame)))
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, err := conn.Write(lenbuf[:]); err != nil {
		return fmt.Errorf("netxport: write to p%d: %w", to, err)
	}
	if _, err := conn.Write(frame); err != nil {
		return fmt.Errorf("netxport: write to p%d: %w", to, err)
	}
	met.framesSent.Inc()
	met.bytesSent.Add(int64(len(lenbuf) + len(frame)))
	return nil
}

func (e *Endpoint) peer(to msg.ID) (net.Conn, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.peers[to]; ok {
		return c, nil
	}
	met := e.met.Load()
	var (
		c   net.Conn
		err error
	)
	for attempt := 0; attempt < dialAttempts; attempt++ {
		if attempt > 0 {
			met.dialRetries.Inc()
			time.Sleep(dialBackoff << (attempt - 1))
		}
		met.dials.Inc()
		c, err = net.Dial("tcp", e.addrs[to])
		if err == nil {
			break
		}
	}
	if err != nil {
		met.dialErrors.Inc()
		return nil, fmt.Errorf("netxport: dial p%d at %s: %w", to, e.addrs[to], err)
	}
	var hello [4]byte
	binary.BigEndian.PutUint32(hello[:], uint32(e.id))
	if _, err := c.Write(hello[:]); err != nil {
		c.Close()
		return nil, fmt.Errorf("netxport: hello to p%d: %w", to, err)
	}
	e.peers[to] = c
	return c, nil
}

// Recv implements transport.Conn.
func (e *Endpoint) Recv() (msg.Message, error) {
	select {
	case in, ok := <-e.inbox:
		if !ok {
			return msg.Message{}, transport.ErrClosed
		}
		return in.m, in.err
	case <-e.done:
		return msg.Message{}, transport.ErrClosed
	}
}

// Close implements transport.Conn: it stops the accept loop and closes all
// connections.
func (e *Endpoint) Close() error {
	e.closeOnce.Do(func() {
		close(e.done)
		e.ln.Close()
		e.mu.Lock()
		for _, c := range e.peers {
			c.Close()
		}
		// Accepted connections must be closed too, or their readLoops
		// would block until the remote side shuts down -- a circular wait
		// when a whole cluster closes at once.
		for _, c := range e.accepted {
			c.Close()
		}
		e.mu.Unlock()
	})
	e.wg.Wait()
	return nil
}

func (e *Endpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		e.accepted = append(e.accepted, conn)
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

func (e *Endpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer conn.Close()
	var hello [4]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return
	}
	from := msg.ID(int32(binary.BigEndian.Uint32(hello[:])))
	if from < 0 || int(from) >= len(e.addrs) {
		return // unknown identity
	}
	var lenbuf [4]byte
	for {
		if _, err := io.ReadFull(conn, lenbuf[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(lenbuf[:])
		if size > maxFrame {
			return
		}
		frame := make([]byte, size)
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		met := e.met.Load()
		met.framesRecv.Inc()
		met.bytesRecv.Add(int64(len(lenbuf)) + int64(size))
		m, err := msg.Decode(frame)
		if err != nil {
			met.decodeErrors.Inc()
			continue // malformed frame from a (possibly malicious) peer
		}
		m.From = from // authenticated identity, not the claimed one
		select {
		case e.inbox <- inboundMsg{m: m}:
		case <-e.done:
			return
		}
	}
}
