// Package netxport is a TCP implementation of the transport.Conn interface:
// n processes connected in a full mesh over loopback (or any reachable
// addresses), with length-prefixed binary frames (internal/msg codec).
//
// Each endpoint listens on its own address. Outbound connections are
// established lazily on first send, one per peer, each with its own lock:
// a slow, unreachable, or retry-storming peer never blocks sends to the
// others. A connection whose write fails (or exceeds the write deadline) is
// evicted and redialed -- with a backoff that grows with consecutive
// failures -- on the next send, so one broken socket does not poison the
// peer entry forever.
//
// Connections are identified by a fixed-size hello frame carrying the
// dialer's process id. Inbound messages are stamped with the hello
// identity, never the message's claimed sender, so impersonation requires
// owning the peer's listening socket -- a stand-in for the paper's
// requirement that "the message system must provide a way for correct
// processes to verify the identity of the sender" (Section 3.1). A
// production deployment would pin identities with TLS; this package keeps
// the demo dependency-free.
package netxport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"resilient/internal/metrics"
	"resilient/internal/msg"
	"resilient/internal/transport"
)

const maxFrame = 1 << 20

// Dial and write policy: a freshly started cluster races listener startup
// against first sends, so transient dial failures are expected and retried
// with a short backoff before surfacing an error. Repeated failures across
// Send calls widen the backoff up to maxDialBackoff; a successful dial or
// write resets it. Writes carry a deadline so a peer that stops reading
// cannot wedge a sender forever.
const (
	dialAttempts        = 3
	dialBackoff         = 5 * time.Millisecond
	maxDialBackoff      = 250 * time.Millisecond
	defaultWriteTimeout = 10 * time.Second
)

// netMetrics holds the endpoint's instrument handles; all fields are nil
// (free no-ops) when metrics are off.
type netMetrics struct {
	bytesSent    *metrics.Counter
	bytesRecv    *metrics.Counter
	framesSent   *metrics.Counter
	framesRecv   *metrics.Counter
	dials        *metrics.Counter
	dialRetries  *metrics.Counter
	dialErrors   *metrics.Counter
	decodeErrors *metrics.Counter
	localFrames  *metrics.Counter
	evictions    *metrics.Counter
}

func newNetMetrics(reg *metrics.Registry) *netMetrics {
	if reg == nil {
		return &netMetrics{}
	}
	m := reg.Scoped("net.")
	return &netMetrics{
		bytesSent:    m.Counter("bytes_sent"),
		bytesRecv:    m.Counter("bytes_received"),
		framesSent:   m.Counter("frames_sent"),
		framesRecv:   m.Counter("frames_received"),
		dials:        m.Counter("dials"),
		dialRetries:  m.Counter("dial_retries"),
		dialErrors:   m.Counter("dial_errors"),
		decodeErrors: m.Counter("decode_errors"),
		localFrames:  m.Counter("local_frames"),
		evictions:    m.Counter("conn_evictions"),
	}
}

// peerLink is one peer's outbound connection state. Its mutex serializes
// writes to that peer only; dialing (including its backoff sleeps) happens
// under the link lock, never under the endpoint lock.
type peerLink struct {
	mu    sync.Mutex
	conn  net.Conn // nil when down; established lazily, evicted on failure
	fails int      // consecutive dial/write failures, drives the backoff
}

// Endpoint is one process's TCP endpoint. It implements transport.Conn.
type Endpoint struct {
	id    msg.ID
	addrs []string // addrs[i] is process i's listen address
	ln    net.Listener

	mu       sync.Mutex
	links    map[msg.ID]*peerLink // per-peer outbound state
	accepted []net.Conn           // inbound connections, closed on shutdown
	dialed   []net.Conn           // every outbound conn, closed on shutdown

	inbox chan inboundMsg
	done  chan struct{}
	wg    sync.WaitGroup

	// met is swapped atomically so SetMetrics races cleanly with the
	// accept/read goroutines; the pointer is never nil.
	met atomic.Pointer[netMetrics]

	// writeTimeout is the per-write deadline in nanoseconds (0 disables).
	writeTimeout atomic.Int64

	closeOnce sync.Once
}

type inboundMsg struct {
	m   msg.Message
	err error
}

var _ transport.Conn = (*Endpoint)(nil)

// Listen creates the endpoint for process id, listening on addrs[id]. The
// address may use port 0; the actual address is available via Addr.
func Listen(id msg.ID, addrs []string) (*Endpoint, error) {
	if id < 0 || int(id) >= len(addrs) {
		return nil, fmt.Errorf("netxport: id %d outside address table of %d", id, len(addrs))
	}
	ln, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return nil, fmt.Errorf("netxport: listen %s: %w", addrs[id], err)
	}
	e := &Endpoint{
		id:    id,
		addrs: append([]string(nil), addrs...),
		ln:    ln,
		links: make(map[msg.ID]*peerLink),
		inbox: make(chan inboundMsg, 1024),
		done:  make(chan struct{}),
	}
	e.addrs[id] = ln.Addr().String()
	e.met.Store(newNetMetrics(nil))
	e.writeTimeout.Store(int64(defaultWriteTimeout))
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// SetMetrics attaches a metrics registry; subsequent traffic is accounted
// under the "net." prefix (bytes, frames, dials, retries, evictions). Safe
// to call at any time, including concurrently with traffic; nil detaches.
func (e *Endpoint) SetMetrics(reg *metrics.Registry) {
	e.met.Store(newNetMetrics(reg))
}

// SetWriteTimeout changes the per-write deadline (0 disables deadlines).
// Safe to call concurrently with traffic.
func (e *Endpoint) SetWriteTimeout(d time.Duration) {
	e.writeTimeout.Store(int64(d))
}

// Addr returns the endpoint's actual listen address.
func (e *Endpoint) Addr() string { return e.ln.Addr().String() }

// SetPeerAddr updates the address table entry for a peer (used when peers
// listen on ephemeral ports discovered after startup).
func (e *Endpoint) SetPeerAddr(id msg.ID, addr string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if id >= 0 && int(id) < len(e.addrs) {
		e.addrs[id] = addr
	}
}

func (e *Endpoint) peerAddr(id msg.ID) string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.addrs[id]
}

// ID implements transport.Conn.
func (e *Endpoint) ID() msg.ID { return e.id }

// Send implements transport.Conn: it lazily dials the destination if its
// link is down, then writes one frame under that link's lock. A failed
// write evicts the connection so the next Send redials.
func (e *Endpoint) Send(to msg.ID, m msg.Message) error {
	if to < 0 || int(to) >= len(e.addrs) {
		return fmt.Errorf("netxport: destination %d outside address table", to)
	}
	m.From = e.id
	met := e.met.Load()
	if to == e.id {
		// Local delivery without a socket round-trip.
		select {
		case e.inbox <- inboundMsg{m: m}:
			met.localFrames.Inc()
			return nil
		case <-e.done:
			return transport.ErrClosed
		}
	}
	l := e.link(to)
	l.mu.Lock()
	defer l.mu.Unlock()
	conn, err := e.ensure(l, to)
	if err != nil {
		return err
	}
	frame := msg.Encode(m)
	var lenbuf [4]byte
	binary.BigEndian.PutUint32(lenbuf[:], uint32(len(frame)))
	if err := e.write(conn, lenbuf[:]); err != nil {
		e.evict(l, conn)
		return fmt.Errorf("netxport: write to p%d: %w", to, err)
	}
	if err := e.write(conn, frame); err != nil {
		e.evict(l, conn)
		return fmt.Errorf("netxport: write to p%d: %w", to, err)
	}
	l.fails = 0
	met.framesSent.Inc()
	met.bytesSent.Add(int64(len(lenbuf) + len(frame)))
	return nil
}

// link returns (creating if needed) the outbound state for a peer. Only the
// map access holds the endpoint lock; dialing and writing hold the link
// lock alone.
func (e *Endpoint) link(to msg.ID) *peerLink {
	e.mu.Lock()
	defer e.mu.Unlock()
	l, ok := e.links[to]
	if !ok {
		l = &peerLink{}
		e.links[to] = l
	}
	return l
}

// write performs one deadline-bounded write.
func (e *Endpoint) write(conn net.Conn, b []byte) error {
	if d := time.Duration(e.writeTimeout.Load()); d > 0 {
		conn.SetWriteDeadline(time.Now().Add(d))
	}
	_, err := conn.Write(b)
	return err
}

// evict drops a link's broken connection so the next Send redials instead
// of reusing a poisoned socket. Called with the link lock held.
func (e *Endpoint) evict(l *peerLink, conn net.Conn) {
	conn.Close()
	if l.conn == conn {
		l.conn = nil
	}
	l.fails++
	e.met.Load().evictions.Inc()
}

// ensure returns the link's live connection, dialing with retries if it is
// down. The backoff between attempts starts at dialBackoff and doubles both
// within a call and across consecutive failed calls (capped at
// maxDialBackoff); sleeps abort promptly when the endpoint closes. Called
// with the link lock held -- and deliberately NOT the endpoint lock, so a
// retry storm toward one peer cannot stall senders to any other peer.
func (e *Endpoint) ensure(l *peerLink, to msg.ID) (net.Conn, error) {
	if l.conn != nil {
		return l.conn, nil
	}
	met := e.met.Load()
	base := dialBackoff << min(l.fails, 6)
	if base > maxDialBackoff {
		base = maxDialBackoff
	}
	var (
		c   net.Conn
		err error
	)
	for attempt := 0; attempt < dialAttempts; attempt++ {
		if attempt > 0 {
			met.dialRetries.Inc()
			d := base << (attempt - 1)
			if d > maxDialBackoff {
				d = maxDialBackoff
			}
			select {
			case <-time.After(d):
			case <-e.done:
				return nil, transport.ErrClosed
			}
		}
		met.dials.Inc()
		c, err = net.Dial("tcp", e.peerAddr(to))
		if err == nil {
			break
		}
	}
	if err != nil {
		l.fails++
		met.dialErrors.Inc()
		return nil, fmt.Errorf("netxport: dial p%d at %s: %w", to, e.peerAddr(to), err)
	}
	var hello [4]byte
	binary.BigEndian.PutUint32(hello[:], uint32(e.id))
	if err := e.write(c, hello[:]); err != nil {
		c.Close()
		l.fails++
		return nil, fmt.Errorf("netxport: hello to p%d: %w", to, err)
	}
	l.fails = 0
	l.conn = c
	e.mu.Lock()
	e.dialed = append(e.dialed, c)
	e.mu.Unlock()
	return c, nil
}

// Recv implements transport.Conn.
func (e *Endpoint) Recv() (msg.Message, error) {
	select {
	case in, ok := <-e.inbox:
		if !ok {
			return msg.Message{}, transport.ErrClosed
		}
		return in.m, in.err
	case <-e.done:
		return msg.Message{}, transport.ErrClosed
	}
}

// Close implements transport.Conn: it stops the accept loop and closes all
// connections. It never takes a link lock, so it cannot deadlock against a
// sender mid-dial or mid-write; closing the sockets (and the done channel)
// unblocks those senders instead.
func (e *Endpoint) Close() error {
	e.closeOnce.Do(func() {
		close(e.done)
		e.ln.Close()
		e.mu.Lock()
		// Every outbound conn ever dialed is tracked in dialed (eviction
		// closes but does not untrack, and double-close is harmless).
		for _, c := range e.dialed {
			c.Close()
		}
		// Accepted connections must be closed too, or their readLoops
		// would block until the remote side shuts down -- a circular wait
		// when a whole cluster closes at once.
		for _, c := range e.accepted {
			c.Close()
		}
		e.mu.Unlock()
	})
	e.wg.Wait()
	return nil
}

func (e *Endpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		e.accepted = append(e.accepted, conn)
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

func (e *Endpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer conn.Close()
	var hello [4]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return
	}
	from := msg.ID(int32(binary.BigEndian.Uint32(hello[:])))
	if from < 0 || int(from) >= len(e.addrs) {
		return // unknown identity
	}
	var lenbuf [4]byte
	for {
		if _, err := io.ReadFull(conn, lenbuf[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(lenbuf[:])
		if size > maxFrame {
			return
		}
		frame := make([]byte, size)
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		met := e.met.Load()
		met.framesRecv.Inc()
		met.bytesRecv.Add(int64(len(lenbuf)) + int64(size))
		m, err := msg.Decode(frame)
		if err != nil {
			met.decodeErrors.Inc()
			continue // malformed frame from a (possibly malicious) peer
		}
		m.From = from // authenticated identity, not the claimed one
		select {
		case e.inbox <- inboundMsg{m: m}:
		case <-e.done:
			return
		}
	}
}
