package netxport

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"resilient/internal/msg"
	"resilient/internal/transport"
)

// TestInstanceChurnRace stresses the demux table under concurrent instance
// churn: receiver-side instances are claimed, drained, and closed in a tight
// loop while the sender keeps blasting frames at every id, so the read loop
// demuxes into conns that are being claimed and released under it. Run with
// -race this pins the copy-on-write discipline; the closing assertions pin
// that Close releases ids (re-claim succeeds) and that the table does not
// grow with churn.
func TestInstanceChurnRace(t *testing.T) {
	eps := mesh(t, 2)
	sender, receiver := eps[0], eps[1]

	const (
		ids    = 8  // instance ids cycled by both sides
		rounds = 40 // claim/drain/close rounds per receiver worker
	)

	// Sender side: one long-lived instance conn per id, each hammering the
	// receiver for the whole test.
	var stop atomic.Bool
	var senderWG sync.WaitGroup
	for i := 1; i <= ids; i++ {
		conn, err := sender.Instance(uint32(i))
		if err != nil {
			t.Fatal(err)
		}
		senderWG.Add(1)
		go func(c transport.Conn, v msg.Value) {
			defer senderWG.Done()
			m := msg.Val(0, 0, v)
			for !stop.Load() {
				if err := c.Send(1, m); err != nil {
					return
				}
			}
		}(conn, msg.Value(uint8(i%2)))
	}

	// Receiver side: workers churn through the ids -- claim, receive a few
	// frames, close, re-claim. Different workers fight over the same id
	// space, so claims legitimately fail while another worker holds the id.
	var churnWG sync.WaitGroup
	var claims, rejects atomic.Int64
	for w := 0; w < 4; w++ {
		churnWG.Add(1)
		go func(w int) {
			defer churnWG.Done()
			for r := 0; r < rounds; r++ {
				id := uint32(1 + (w+r)%ids)
				conn, err := receiver.Instance(id)
				if err != nil {
					rejects.Add(1)
					runtime.Gosched() // another worker holds the id right now
					continue
				}
				claims.Add(1)
				for k := 0; k < 2; k++ {
					if _, err := conn.Recv(); err != nil {
						break
					}
				}
				conn.Close()
			}
		}(w)
	}
	churnWG.Wait()
	stop.Store(true)
	senderWG.Wait()

	if claims.Load() == 0 {
		t.Fatal("no receiver-side claim ever succeeded")
	}
	// Close released every id: the table is empty again and every id is
	// immediately claimable.
	if n := len(*receiver.insts.Load()); n != 0 {
		t.Fatalf("demux table holds %d entries after every instance closed", n)
	}
	for i := 1; i <= ids; i++ {
		conn, err := receiver.Instance(uint32(i))
		if err != nil {
			t.Fatalf("re-claim instance %d after churn: %v", i, err)
		}
		conn.Close()
	}
}

// TestInstanceCloseReleasesID pins the claim/release contract sequentially:
// a claimed id rejects duplicates, Close releases it, a fresh claim gets a
// working conn, and the stale conn stays dead.
func TestInstanceCloseReleasesID(t *testing.T) {
	eps := mesh(t, 2)
	a, b := eps[0], eps[1]

	first, err := b.Instance(7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Instance(7); err == nil {
		t.Fatal("duplicate claim of a live id must fail")
	}
	first.Close()
	if _, err := first.Recv(); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("stale conn Recv = %v, want ErrClosed", err)
	}

	second, err := b.Instance(7)
	if err != nil {
		t.Fatalf("re-claim after Close: %v", err)
	}
	src, err := a.Instance(7)
	if err != nil {
		t.Fatal(err)
	}
	want := msg.Val(0, 3, msg.V1)
	if err := src.Send(1, want); err != nil {
		t.Fatal(err)
	}
	got, err := second.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != want.Kind || got.Phase != want.Phase || got.Value != want.Value || got.From != 0 {
		t.Fatalf("re-claimed conn received %+v", got)
	}
	// Closing the STALE conn again must not evict the new claimant.
	first.Close()
	if n := len(*b.insts.Load()); n != 1 {
		t.Fatalf("stale double-close changed the table: %d entries, want 1", n)
	}
	second.Close()
	src.Close()
}
