package netxport

import (
	"errors"
	"testing"
	"time"

	"resilient/internal/metrics"
	"resilient/internal/msg"
	"resilient/internal/transport"
)

// drainOrdered receives count messages from ep and checks their phases run
// 0..count-1 -- any frame lost, duplicated, or reordered trips it.
func drainOrdered(t *testing.T, ep *Endpoint, count int) {
	t.Helper()
	for i := 0; i < count; i++ {
		got := recvWithTimeout(t, ep)
		if got.Phase != msg.Phase(i) {
			t.Fatalf("frame %d arrived with phase %d (lost/duplicated/reordered)", i, got.Phase)
		}
	}
}

// waitCounter polls a registry until the counter reaches want; the writer and
// read loops update counters asynchronously to Send/Recv.
func waitCounter(t *testing.T, reg *metrics.Registry, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if got := reg.Snapshot().Counters[name]; got >= want {
			if got != want {
				t.Fatalf("%s = %d, want %d", name, got, want)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want %d", name, reg.Snapshot().Counters[name], want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalescedAccountingAndBatching is the coalesced-path counterpart of
// TestTransportMetricsAccounting: every frame is counted exactly once on both
// sides, and the flush count proves many frames shared a syscall.
func TestCoalescedAccountingAndBatching(t *testing.T) {
	eps := mesh(t, 2)
	sender := metrics.NewRegistry()
	receiver := metrics.NewRegistry()
	eps[0].SetMetrics(sender)
	eps[1].SetMetrics(receiver)
	// A generous linger guarantees the burst below lands in few batches
	// regardless of scheduling.
	eps[0].SetLinger(5 * time.Millisecond)

	const frames = 400
	for i := 0; i < frames; i++ {
		if err := eps[0].Send(1, msg.Val(0, msg.Phase(i), msg.V1)); err != nil {
			t.Fatal(err)
		}
	}
	drainOrdered(t, eps[1], frames)

	waitCounter(t, sender, "net.frames_sent", frames)
	waitCounter(t, receiver, "net.frames_received", frames)
	s := sender.Snapshot().Counters
	if s["net.flushes"] >= frames/2 {
		t.Errorf("flushes = %d for %d frames: writer is not coalescing", s["net.flushes"], frames)
	}
	if s["net.flushes"] < 1 {
		t.Error("no flush recorded")
	}
	if s["net.bytes_sent"] <= 0 {
		t.Error("bytes_sent never counted")
	}
	if s["net.flush_frame_drops"] != 0 {
		t.Errorf("flush_frame_drops = %d on a healthy link", s["net.flush_frame_drops"])
	}
	if s["net.dials"] != 1 {
		t.Errorf("dials = %d, want 1 (one socket for the whole burst)", s["net.dials"])
	}
}

// TestQueueFullBackpressure pins the bounded-queue contract: with a tiny cap
// and a slow writer, Send must block (not drop, not grow without bound) until
// the writer drains -- and every frame still arrives, in order.
func TestQueueFullBackpressure(t *testing.T) {
	eps := mesh(t, 2)
	// ~31 bytes per frame: a 512-byte cap fits ~16 frames, so 300 frames
	// force many block/drain cycles; the 5ms linger makes each cycle long
	// enough that the sender demonstrably waited.
	eps[0].SetQueueCap(512)
	eps[0].SetLinger(5 * time.Millisecond)

	const frames = 300
	start := time.Now()
	sent := make(chan struct{})
	go func() {
		defer close(sent)
		for i := 0; i < frames; i++ {
			if err := eps[0].Send(1, msg.Val(0, msg.Phase(i), msg.V0)); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	drainOrdered(t, eps[1], frames)
	<-sent
	// 300 frames through a ~16-frame window gated by a 5ms linger cannot
	// finish in one window: the sender must have blocked across several
	// drain cycles.
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("burst finished in %v: queue cap did not apply backpressure", elapsed)
	}
}

// TestCloseFlushesPendingFrames pins flush-on-close: frames enqueued but not
// yet flushed when Close is called must still reach the peer before the
// sockets come down.
func TestCloseFlushesPendingFrames(t *testing.T) {
	eps := mesh(t, 2)
	// A long linger parks the writer mid-window with the whole burst still
	// pending, so Close races a full queue, not an empty one.
	eps[0].SetLinger(200 * time.Millisecond)

	const frames = 100
	for i := 0; i < frames; i++ {
		if err := eps[0].Send(1, msg.Val(0, msg.Phase(i), msg.V0)); err != nil {
			t.Fatal(err)
		}
	}
	eps[0].Close()
	// Close returned, so the writer has flushed and exited; the frames are
	// on the wire (or already in the peer's inbox).
	drainOrdered(t, eps[1], frames)

	// After Close the endpoint must reject new frames instead of queueing
	// them into the void.
	if err := eps[0].Send(1, msg.Val(0, 0, msg.V0)); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("send after close: %v, want transport.ErrClosed", err)
	}
}

// TestEvictionMidFlushRedials breaks the established socket under the
// writer, then checks the interrupted batch is retried on a fresh dial with
// no frame lost or duplicated.
func TestEvictionMidFlushRedials(t *testing.T) {
	eps := mesh(t, 2)
	reg := metrics.NewRegistry()
	eps[0].SetMetrics(reg)

	// Establish the connection and let the writer go idle.
	if err := eps[0].Send(1, msg.Val(0, 0, msg.V0)); err != nil {
		t.Fatal(err)
	}
	recvWithTimeout(t, eps[1])
	waitCounter(t, reg, "net.frames_sent", 1)

	// Sever the socket out from under the link. The next flush's write
	// fails locally (nothing reaches the peer), forcing the evict-redial-
	// retry path for the whole batch.
	eps[0].mu.Lock()
	l := eps[0].links[1]
	eps[0].mu.Unlock()
	l.mu.Lock()
	conn := l.conn
	l.mu.Unlock()
	conn.Close()

	const frames = 50
	for i := 0; i < frames; i++ {
		if err := eps[0].Send(1, msg.Val(0, msg.Phase(i), msg.V1)); err != nil {
			t.Fatal(err)
		}
	}
	drainOrdered(t, eps[1], frames)

	c := reg.Snapshot().Counters
	if c["net.conn_evictions"] == 0 {
		t.Error("severed connection was never evicted")
	}
	if c["net.flush_frame_drops"] != 0 {
		t.Errorf("flush_frame_drops = %d: batch was dropped instead of retried", c["net.flush_frame_drops"])
	}
	if c["net.dials"] < 2 {
		t.Errorf("dials = %d, want >= 2 (redial after eviction)", c["net.dials"])
	}
}

// recvConn is recvWithTimeout for a transport.Conn (instance views).
func recvConn(t *testing.T, c transport.Conn) msg.Message {
	t.Helper()
	type res struct {
		m   msg.Message
		err error
	}
	ch := make(chan res, 1)
	go func() {
		m, err := c.Recv()
		ch <- res{m, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatal(r.err)
		}
		return r.m
	case <-time.After(10 * time.Second):
		t.Fatal("recv timed out")
		return msg.Message{}
	}
}

// TestInstanceMuxIsolation checks the demux contract: traffic tagged with an
// instance id is visible only to that instance's conn, and the endpoint's
// own stream (instance 0) is unaffected.
func TestInstanceMuxIsolation(t *testing.T) {
	eps := mesh(t, 2)
	send1, err := eps[0].Instance(1)
	if err != nil {
		t.Fatal(err)
	}
	send2, err := eps[0].Instance(2)
	if err != nil {
		t.Fatal(err)
	}
	recv1, err := eps[1].Instance(1)
	if err != nil {
		t.Fatal(err)
	}
	recv2, err := eps[1].Instance(2)
	if err != nil {
		t.Fatal(err)
	}

	if err := send1.Send(1, msg.Val(0, 10, msg.V0)); err != nil {
		t.Fatal(err)
	}
	if err := send2.Send(1, msg.Val(0, 20, msg.V1)); err != nil {
		t.Fatal(err)
	}
	if err := eps[0].Send(1, msg.Val(0, 30, msg.V0)); err != nil {
		t.Fatal(err)
	}

	if got := recvConn(t, recv1); got.Phase != 10 {
		t.Errorf("instance 1 saw phase %d", got.Phase)
	}
	if got := recvConn(t, recv2); got.Phase != 20 {
		t.Errorf("instance 2 saw phase %d", got.Phase)
	}
	if got := recvWithTimeout(t, eps[1]); got.Phase != 30 {
		t.Errorf("endpoint stream saw phase %d", got.Phase)
	}
	if send1.ID() != 0 || recv2.ID() != 1 {
		t.Errorf("instance IDs %d/%d, want the endpoint's", send1.ID(), recv2.ID())
	}
}

// TestInstanceClaimRules: instance 0 is reserved, duplicates are rejected,
// and a detached (closed) instance's frames are dropped and counted while
// the endpoint keeps serving the rest.
func TestInstanceClaimRules(t *testing.T) {
	eps := mesh(t, 2)
	if _, err := eps[0].Instance(0); err == nil {
		t.Error("instance 0 claim accepted")
	}
	c, err := eps[0].Instance(7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eps[0].Instance(7); err == nil {
		t.Error("duplicate instance claim accepted")
	}

	// Closed instance: its Recv unblocks, its inbound frames drop.
	reg := metrics.NewRegistry()
	eps[1].SetMetrics(reg)
	c.Close()
	if _, err := c.Recv(); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("recv on closed instance: %v", err)
	}
	if err := c.Send(1, msg.Val(0, 0, msg.V0)); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("send on closed instance: %v", err)
	}

	// Frames for an instance the receiver never registered are dropped and
	// counted; the endpoint stream still works afterwards.
	send9, err := eps[0].Instance(9)
	if err != nil {
		t.Fatal(err)
	}
	if err := send9.Send(1, msg.Val(0, 1, msg.V0)); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, reg, "net.mux_drops", 1)
	if err := eps[0].Send(1, msg.Val(0, 2, msg.V1)); err != nil {
		t.Fatal(err)
	}
	if got := recvWithTimeout(t, eps[1]); got.Phase != 2 {
		t.Errorf("endpoint stream got phase %d after a mux drop", got.Phase)
	}

	// Endpoint close takes every instance down with it.
	c2, err := eps[1].Instance(3)
	if err != nil {
		t.Fatal(err)
	}
	eps[1].Close()
	if _, err := c2.Recv(); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("recv on instance of closed endpoint: %v", err)
	}
	if _, err := eps[1].Instance(4); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("instance claim on closed endpoint: %v", err)
	}
}
