package netxport

import (
	"testing"
	"time"

	"resilient/internal/metrics"
	"resilient/internal/msg"
)

// TestTransportMetricsAccounting sends frames both across sockets and via
// the local fast path and checks the net.* counters add up on both sides.
func TestTransportMetricsAccounting(t *testing.T) {
	eps := mesh(t, 2)
	// Direct mode: counters update synchronously with Send, so the exact
	// assertions below cannot race the writer goroutine. The coalesced
	// path's accounting is covered in coalesce_test.go.
	eps[0].SetCoalescing(false)
	sender := metrics.NewRegistry()
	receiver := metrics.NewRegistry()
	eps[0].SetMetrics(sender)
	eps[1].SetMetrics(receiver)

	const frames = 5
	for i := 0; i < frames; i++ {
		if err := eps[0].Send(1, msg.Val(0, msg.Phase(i), msg.V1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < frames; i++ {
		recvWithTimeout(t, eps[1])
	}
	// Local fast path: self-sends never hit the socket.
	if err := eps[0].Send(0, msg.Val(0, 0, msg.V0)); err != nil {
		t.Fatal(err)
	}
	recvWithTimeout(t, eps[0])

	s := sender.Snapshot().Counters
	if s["net.frames_sent"] != frames {
		t.Errorf("frames_sent = %d, want %d", s["net.frames_sent"], frames)
	}
	if s["net.local_frames"] != 1 {
		t.Errorf("local_frames = %d, want 1", s["net.local_frames"])
	}
	if s["net.bytes_sent"] <= 0 {
		t.Error("bytes_sent never counted")
	}
	if s["net.dials"] != 1 {
		t.Errorf("dials = %d, want 1 (connection reused)", s["net.dials"])
	}

	// The read loop runs on its own goroutine; the frames are already in the
	// inbox, but counter increments may trail the channel send briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r := receiver.Snapshot().Counters
		if r["net.frames_received"] == frames && r["net.bytes_received"] > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("frames_received = %d, want %d", r["net.frames_received"], frames)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDialRetriesCounted points an endpoint at a dead address and checks
// the failed attempts are recorded as retries and errors.
func TestDialRetriesCounted(t *testing.T) {
	eps := mesh(t, 2)
	eps[0].SetCoalescing(false) // dial failure must surface from Send itself
	reg := metrics.NewRegistry()
	eps[0].SetMetrics(reg)
	// A port nothing listens on: reserve one, then close it.
	dead := eps[1].Addr()
	eps[1].Close()
	eps[0].SetPeerAddr(1, dead)

	if err := eps[0].Send(1, msg.Val(0, 0, msg.V0)); err == nil {
		t.Fatal("send to dead peer succeeded")
	}
	c := reg.Snapshot().Counters
	if c["net.dial_errors"] != 1 {
		t.Errorf("dial_errors = %d, want 1", c["net.dial_errors"])
	}
	if c["net.dial_retries"] != dialAttempts-1 {
		t.Errorf("dial_retries = %d, want %d", c["net.dial_retries"], dialAttempts-1)
	}
	if c["net.frames_sent"] != 0 {
		t.Errorf("frames_sent = %d after a failed dial, want 0", c["net.frames_sent"])
	}
}
