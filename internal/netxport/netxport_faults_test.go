package netxport

import (
	"testing"
	"time"

	"resilient/internal/metrics"
	"resilient/internal/msg"
)

// TestDeadPeerDoesNotBlockHealthyPeer pins the per-peer locking contract:
// while one Send is stuck in the dial-retry backoff toward a dead address,
// a Send to a healthy peer on the same endpoint must complete. Under the
// old endpoint-wide lock the healthy send waited out the full backoff.
func TestDeadPeerDoesNotBlockHealthyPeer(t *testing.T) {
	eps := mesh(t, 3)
	eps[0].SetCoalescing(false) // dial errors must surface synchronously from Send
	dead := eps[2].Addr()
	eps[2].Close()
	eps[0].SetPeerAddr(2, dead)
	// Inflate the dead link's consecutive-failure count so its backoff is
	// long enough to observe (a few failed rounds push base toward the cap).
	for i := 0; i < 4; i++ {
		if err := eps[0].Send(2, msg.Val(0, 0, msg.V0)); err == nil {
			t.Fatal("send to dead peer succeeded")
		}
	}

	slow := make(chan struct{})
	go func() {
		eps[0].Send(2, msg.Val(0, 0, msg.V0)) // sits in backoff sleeps
		close(slow)
	}()
	time.Sleep(10 * time.Millisecond) // let the slow send enter its dial loop

	start := time.Now()
	if err := eps[0].Send(1, msg.Val(0, 1, msg.V1)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("healthy-peer send took %v while dead-peer send was dialing", d)
	}
	recvWithTimeout(t, eps[1])
	select {
	case <-slow:
	case <-time.After(10 * time.Second):
		t.Fatal("dead-peer send never returned")
	}
}

// TestEvictionAndRedial kills a peer under an established connection, then
// brings it back on a fresh port: the broken socket must be evicted (not
// poison the link forever) and a later Send must redial and get through.
func TestEvictionAndRedial(t *testing.T) {
	eps := mesh(t, 2)
	eps[0].SetCoalescing(false) // write errors must surface synchronously from Send
	reg := metrics.NewRegistry()
	eps[0].SetMetrics(reg)

	if err := eps[0].Send(1, msg.Val(0, 0, msg.V0)); err != nil {
		t.Fatal(err)
	}
	recvWithTimeout(t, eps[1])

	eps[1].Close()
	// The established connection is now broken. TCP may buffer a write or
	// two before the kernel reports the reset, so keep sending until the
	// failure surfaces and the conn is evicted.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := eps[0].Send(1, msg.Val(0, 1, msg.V0)); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("write to closed peer never failed")
		}
		time.Sleep(time.Millisecond)
	}
	if reg.Snapshot().Counters["net.conn_evictions"] == 0 {
		t.Error("broken connection was not evicted")
	}

	// Restart the peer on a new ephemeral port.
	addrs := []string{eps[0].Addr(), "127.0.0.1:0"}
	ep1, err := Listen(1, addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ep1.Close() })
	eps[0].SetPeerAddr(1, ep1.Addr())

	// The link carries failure history, so the first sends may still burn a
	// backoff round; retry until the redial lands.
	deadline = time.Now().Add(10 * time.Second)
	for {
		if err := eps[0].Send(1, msg.Val(0, 2, msg.V1)); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("send never recovered after peer restart")
		}
	}
	got := recvWithTimeout(t, ep1)
	if got.Phase != 2 || got.From != 0 {
		t.Errorf("recovered send delivered %+v", got)
	}
}

// TestCloseUnblocksBackoffSleep: an endpoint closing mid-backoff must abort
// the sleep promptly instead of serving out the full retry schedule.
func TestCloseUnblocksBackoffSleep(t *testing.T) {
	eps := mesh(t, 2)
	eps[0].SetCoalescing(false) // park the Send itself in the dial backoff
	dead := eps[1].Addr()
	eps[1].Close()
	eps[0].SetPeerAddr(1, dead)
	// Build up failure history so the backoff is near the cap.
	for i := 0; i < 8; i++ {
		eps[0].Send(1, msg.Val(0, 0, msg.V0))
	}
	done := make(chan struct{})
	go func() {
		eps[0].Send(1, msg.Val(0, 0, msg.V0))
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	start := time.Now()
	eps[0].Close()
	select {
	case <-done:
		if d := time.Since(start); d > 2*time.Second {
			t.Errorf("backoff sleep survived Close for %v", d)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("send stuck in backoff after Close")
	}
}

// TestWriteTimeoutConfigurable just exercises the setter; the deadline path
// itself is covered implicitly by every socket test.
func TestWriteTimeoutConfigurable(t *testing.T) {
	eps := mesh(t, 2)
	eps[0].SetWriteTimeout(time.Second)
	if err := eps[0].Send(1, msg.Val(0, 0, msg.V0)); err != nil {
		t.Fatal(err)
	}
	recvWithTimeout(t, eps[1])
	eps[0].SetWriteTimeout(0) // disable
	if err := eps[0].Send(1, msg.Val(0, 1, msg.V0)); err != nil {
		t.Fatal(err)
	}
	recvWithTimeout(t, eps[1])
}
