package policy

import (
	"testing"

	"resilient/internal/core"
	"resilient/internal/faults"
	"resilient/internal/msg"
)

// phaseMachine is a minimal machine whose phase is set by the test.
type phaseMachine struct {
	id    msg.ID
	phase msg.Phase
}

func (m *phaseMachine) ID() msg.ID                            { return m.id }
func (m *phaseMachine) Start() []core.Outbound                { return nil }
func (m *phaseMachine) OnMessage(msg.Message) []core.Outbound { return nil }
func (m *phaseMachine) Decided() (msg.Value, bool)            { return 0, false }
func (m *phaseMachine) Halted() bool                          { return false }
func (m *phaseMachine) Phase() msg.Phase                      { return m.phase }

func TestHarnessInertWithoutPlan(t *testing.T) {
	m := &phaseMachine{id: 2}
	h := NewFaultHarness(m, nil)
	if h.Planned() {
		t.Fatal("nil plan reported as planned")
	}
	for i := 0; i < 100; i++ {
		if !h.AllowSend() {
			t.Fatal("inert harness suppressed a send")
		}
	}
	m.phase = 50
	h.CheckPhase()
	if h.Dead() {
		t.Fatal("inert harness died")
	}
	if h.Machine() != m {
		t.Fatal("Machine() lost the wrapped machine")
	}
}

func TestHarnessInitiallyDead(t *testing.T) {
	m := &phaseMachine{id: 1}
	h := NewFaultHarness(m, faults.InitiallyDead(1))
	if h.Dead() {
		t.Fatal("dead before any observation")
	}
	h.CheckPhase() // phase 0, zero send budget: dies on first observation
	if !h.Dead() {
		t.Fatal("initially-dead process survived CheckPhase")
	}
	if h.AllowSend() {
		t.Fatal("dead process allowed to send")
	}
}

func TestHarnessCrashMidBroadcast(t *testing.T) {
	m := &phaseMachine{id: 0}
	plan := faults.Plan{0: {Process: 0, Phase: 2, AfterSends: 3}}
	h := NewFaultHarness(m, plan)

	// Phase 0 and 1: unlimited sends.
	for phase := msg.Phase(0); phase < 2; phase++ {
		m.phase = phase
		h.CheckPhase()
		for i := 0; i < 10; i++ {
			if !h.AllowSend() {
				t.Fatalf("send suppressed in pre-crash phase %d", phase)
			}
		}
	}

	// Phase 2: exactly 3 sends complete, the 4th kills the process.
	m.phase = 2
	h.CheckPhase()
	if h.Dead() {
		t.Fatal("died at phase entry despite positive send budget")
	}
	for i := 0; i < 3; i++ {
		if !h.AllowSendAt(2) {
			t.Fatalf("send %d suppressed before budget exhausted", i)
		}
	}
	if h.AllowSendAt(2) {
		t.Fatal("send allowed past the planned crash point")
	}
	if !h.Dead() {
		t.Fatal("process alive after exhausting its send budget")
	}
}

func TestHarnessDiesAtPhaseWithoutSends(t *testing.T) {
	// A zero send budget at phase 3 kills the process the moment it reaches
	// phase 3, even if it never attempts another send.
	m := &phaseMachine{id: 4}
	h := NewFaultHarness(m, faults.Plan{4: {Process: 4, Phase: 3}})
	m.phase = 2
	h.CheckPhase()
	if h.Dead() {
		t.Fatal("died before its crash phase")
	}
	m.phase = 3
	h.CheckPhase()
	if !h.Dead() {
		t.Fatal("survived reaching its crash phase with zero budget")
	}
}
