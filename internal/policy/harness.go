package policy

import (
	"resilient/internal/core"
	"resilient/internal/faults"
	"resilient/internal/msg"
)

// FaultHarness applies a fail-stop crash plan to one process: it pairs the
// process's machine with its faults.Tracker so every engine runs the same
// crash semantics -- death at a planned phase (even with no further sends),
// initially-dead processes, and suppression of the sends past the planned
// crash point, which kills a process in the middle of a broadcast.
//
// The harness is engine-neutral and single-threaded, like the machine it
// wraps: the discrete-event runner consults it inside its dispatch loop and
// a livenet driver consults it from the process's goroutine.
type FaultHarness struct {
	machine core.Machine
	tracker *faults.Tracker
}

// NewFaultHarness wraps machine with its entry in plan; a machine absent
// from the plan (or a nil plan) gets an inert harness that never kills it.
func NewFaultHarness(machine core.Machine, plan faults.Plan) *FaultHarness {
	return &FaultHarness{
		machine: machine,
		tracker: faults.NewTracker(plan, machine.ID()),
	}
}

// Machine returns the wrapped machine.
func (h *FaultHarness) Machine() core.Machine { return h.machine }

// Dead reports whether the process has died under its plan.
func (h *FaultHarness) Dead() bool { return h.tracker.Dead() }

// Planned reports whether the process has a crash plan at all.
func (h *FaultHarness) Planned() bool { return h.tracker.Planned() }

// CheckPhase observes the machine's current phase, killing the process if
// its planned crash point has been passed without sends (including the
// initially-dead case, phase 0 after 0 sends). Engines call it after every
// machine step, and once before Start for initially-dead processes.
func (h *FaultHarness) CheckPhase() {
	h.tracker.CheckPhase(h.machine.Phase())
}

// AllowSend gates one individual point-to-point send at the machine's
// current phase; it returns false -- and the process is dead from then on --
// when the planned crash point has been reached.
func (h *FaultHarness) AllowSend() bool {
	return h.tracker.AllowSend(h.machine.Phase())
}

// AllowSendAt is AllowSend with the phase snapshotted by the caller; the
// discrete-event engine's dispatch loop reads the phase once per machine
// step instead of once per send.
func (h *FaultHarness) AllowSendAt(phase msg.Phase) bool {
	return h.tracker.AllowSend(phase)
}
