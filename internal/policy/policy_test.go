package policy

import (
	"math/rand/v2"
	"testing"

	"resilient/internal/adversary"
	"resilient/internal/msg"
	"resilient/internal/sched"
)

func testRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// TestSchedulerAdapterDrawIdentical pins the bit-exactness contract the
// runtime refactor relies on: wrapping a scheduler in the policy layer must
// consume exactly the variates the bare scheduler would, in the same order,
// and produce the same delays.
func TestSchedulerAdapterDrawIdentical(t *testing.T) {
	schedulers := map[string]sched.Scheduler{
		"uniform":   sched.Uniform{Min: 0.1, Max: 1},
		"exp":       sched.Exponential{Mean: 0.7},
		"const":     sched.Constant{D: 2},
		"partition": adversary.Partition{GroupOf: adversary.Halves(3)},
		"bridge":    adversary.Bridge{GroupOf: adversary.Overlap(2, 4)},
	}
	for name, s := range schedulers {
		t.Run(name, func(t *testing.T) {
			raw, wrapped := testRNG(7), testRNG(7)
			pol := FromScheduler(s)
			m := msg.Message{Kind: msg.KindState, Value: msg.V1}
			for i := 0; i < 200; i++ {
				from, to := msg.ID(i%7), msg.ID((i+3)%7)
				now := float64(i) * 0.25
				want := s.Delay(from, to, m, now, raw)
				got := pol.Link(from, to, m, now, wrapped)
				if got.Drop {
					t.Fatalf("step %d: scheduler adapter dropped a message", i)
				}
				if got.Delay != want {
					t.Fatalf("step %d: delay %v, want %v", i, got.Delay, want)
				}
			}
		})
	}
}

func TestFromSchedulerNilDefaults(t *testing.T) {
	pol := FromScheduler(nil)
	rng := testRNG(1)
	v := pol.Link(0, 1, msg.Message{}, 0, rng)
	if v.Drop || v.Delay < 0.1 || v.Delay > 1 {
		t.Fatalf("default policy verdict %+v, want uniform[0.1,1] delay", v)
	}
}

func TestPartitionDropsCrossGroupOnly(t *testing.T) {
	pol := Partition{GroupOf: adversary.Halves(2)}
	rng := testRNG(3)
	m := msg.Message{}
	if v := pol.Link(0, 1, m, 0, rng); v.Drop {
		t.Fatalf("in-group message dropped: %+v", v)
	}
	if v := pol.Link(0, 3, m, 0, rng); !v.Drop {
		t.Fatalf("cross-group message delivered: %+v", v)
	}
	if v := pol.Link(3, 1, m, 0, rng); !v.Drop {
		t.Fatalf("cross-group message delivered: %+v", v)
	}
	// Nil GroupOf: everyone is one group.
	open := Partition{}
	if v := open.Link(0, 3, m, 0, rng); v.Drop {
		t.Fatalf("nil GroupOf dropped a message: %+v", v)
	}
}

func TestDropRate(t *testing.T) {
	pol := Drop{P: 0.25}
	rng := testRNG(11)
	const trials = 20000
	dropped := 0
	for i := 0; i < trials; i++ {
		if pol.Link(0, 1, msg.Message{}, 0, rng).Drop {
			dropped++
		}
	}
	rate := float64(dropped) / trials
	if rate < 0.22 || rate > 0.28 {
		t.Fatalf("drop rate %.3f, want ~0.25", rate)
	}
}

func TestDropZeroAndOne(t *testing.T) {
	rng := testRNG(5)
	never := Drop{P: 0}
	always := Drop{P: 1}
	for i := 0; i < 100; i++ {
		if never.Link(0, 1, msg.Message{}, 0, rng).Drop {
			t.Fatal("Drop{P:0} dropped a message")
		}
		if !always.Link(0, 1, msg.Message{}, 0, rng).Drop {
			t.Fatal("Drop{P:1} delivered a message")
		}
	}
}

func TestNameCoversBuiltins(t *testing.T) {
	cases := map[string]LinkPolicy{
		"uniform[0.1,1]":                  FromScheduler(nil),
		"partition(over uniform[0.1,1])":  Partition{},
		"drop(p=0.1 over uniform[0.1,1])": Drop{P: 0.1},
	}
	for want, pol := range cases {
		if got := Name(pol); got != want {
			t.Errorf("Name(%T) = %q, want %q", pol, got, want)
		}
	}
}
