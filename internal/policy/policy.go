// Package policy is the engine-neutral fault/delivery layer shared by every
// execution engine in this repository: the discrete-event simulator
// (internal/runtime), the in-memory and jittered goroutine engines, and the
// TCP engine (internal/livenet over internal/netxport).
//
// The paper has one system model -- processes take atomic receive/compute/
// send steps while an adversarial message system chooses delivery order, and
// fail-stop processes "may simply die ... without warning messages" (Section
// 2.1) -- so the repository keeps one implementation of it. A LinkPolicy
// decides, per individual point-to-point message, whether the link drops the
// message and how long it delays it; a FaultHarness (harness.go) applies a
// fail-stop crash plan to one process. Both are pure functions of their
// inputs and a caller-supplied RNG, so the simulator stays a deterministic
// function of (Config, Seed), while the live engines interpret the same
// delays in wall-clock time (one abstract unit = a configurable Duration).
//
// Existing scheduling machinery plugs in unchanged: every sched.Scheduler --
// including the adversary.Partition and adversary.Bridge schedulers of the
// lower-bound constructions -- becomes a LinkPolicy via FromScheduler.
package policy

import (
	"fmt"
	"math/rand/v2"

	"resilient/internal/msg"
	"resilient/internal/sched"
)

// Verdict is one link's decision for one message.
type Verdict struct {
	// Drop discards the message: it is counted as sent but never delivered.
	// In the paper's reliable-delivery model a drop stands for a delay
	// beyond every horizon of interest (the Theorem 1/3 constructions delay
	// cross-partition messages "arbitrarily long" rather than losing them).
	Drop bool
	// Delay is the delivery latency in abstract time units; engines clamp
	// it via sched.Clamp. Live engines convert units to wall-clock time.
	Delay float64
}

// LinkPolicy decides delivery for each message on each link. Implementations
// draw randomness only from the rng argument and must not retain it; now is
// the engine's current time in abstract units (simulated time under the
// discrete-event engine, elapsed-wall-clock/unit under the live engines).
type LinkPolicy interface {
	Link(from, to msg.ID, m msg.Message, now float64, rng *rand.Rand) Verdict
}

// Scheduler adapts a sched.Scheduler to the LinkPolicy contract: the policy
// never drops and delays exactly what the scheduler returns, drawing the
// same variates in the same order. adversary.Partition and adversary.Bridge
// are sched.Schedulers, so this one adapter also covers the scripted
// lower-bound adversaries.
type Scheduler struct {
	S sched.Scheduler
}

var _ LinkPolicy = Scheduler{}

// Link implements LinkPolicy.
func (p Scheduler) Link(from, to msg.ID, m msg.Message, now float64, rng *rand.Rand) Verdict {
	return Verdict{Delay: p.S.Delay(from, to, m, now, rng)}
}

// FromScheduler wraps s (defaulting to the engines' Uniform[0.1, 1]) as a
// LinkPolicy.
func FromScheduler(s sched.Scheduler) LinkPolicy {
	if s == nil {
		s = sched.Uniform{Min: 0.1, Max: 1}
	}
	return Scheduler{S: s}
}

// Partition drops every message crossing a group boundary and delegates
// in-group messages to Base. It is the policy-native form of
// adversary.Partition: where the simulator's scripted scheduler delays
// cross-group messages by adversary.CrossDelay (so the run remains a legal
// prefix of a reliable execution), a live engine cannot wait 1e9 units, so
// the partition policy expresses the same observable prefix as drops.
type Partition struct {
	// GroupOf assigns each process to a group; nil means one group.
	GroupOf func(msg.ID) int
	// Base supplies in-group delays; nil defaults to Uniform[0.1, 1].
	Base LinkPolicy
}

var _ LinkPolicy = Partition{}

// Link implements LinkPolicy.
func (p Partition) Link(from, to msg.ID, m msg.Message, now float64, rng *rand.Rand) Verdict {
	if p.GroupOf != nil && p.GroupOf(from) != p.GroupOf(to) {
		return Verdict{Drop: true}
	}
	base := p.Base
	if base == nil {
		base = defaultPolicy
	}
	return base.Link(from, to, m, now, rng)
}

// Drop loses each message independently with probability P and otherwise
// delegates to Base. The drop coin is drawn before the base delay, so a
// Drop{P: 0} policy is draw-shifted, not draw-identical, to its base.
type Drop struct {
	// P is the per-message loss probability in [0, 1].
	P float64
	// Base decides the surviving messages; nil defaults to Uniform[0.1, 1].
	Base LinkPolicy
}

var _ LinkPolicy = Drop{}

// Link implements LinkPolicy.
func (d Drop) Link(from, to msg.ID, m msg.Message, now float64, rng *rand.Rand) Verdict {
	if rng.Float64() < d.P {
		return Verdict{Drop: true}
	}
	base := d.Base
	if base == nil {
		base = defaultPolicy
	}
	return base.Link(from, to, m, now, rng)
}

// defaultPolicy is the engines' default delivery assumption.
var defaultPolicy LinkPolicy = Scheduler{S: sched.Uniform{Min: 0.1, Max: 1}}

// Default returns the default policy: Uniform[0.1, 1] delays, no loss.
func Default() LinkPolicy { return defaultPolicy }

// Name returns a human-readable description for known policy types.
func Name(p LinkPolicy) string {
	switch v := p.(type) {
	case Scheduler:
		return sched.Name(v.S)
	case Partition:
		return fmt.Sprintf("partition(over %s)", Name(orDefault(v.Base)))
	case Drop:
		return fmt.Sprintf("drop(p=%.2g over %s)", v.P, Name(orDefault(v.Base)))
	default:
		return fmt.Sprintf("%T", p)
	}
}

func orDefault(p LinkPolicy) LinkPolicy {
	if p == nil {
		return defaultPolicy
	}
	return p
}
