// Package dense provides allocation-free replacements for the small maps
// the protocol machines used to keep on their hot paths: bitsets indexed by
// process ID (IDs are always 0..n-1) and a phase-indexed message buffer.
// All types are plain slices with freelists, so steady-state operation
// performs no heap allocations; that invariant is what the engine's
// zero-allocation benchmarks measure (see DESIGN.md, "Performance").
package dense

import (
	"resilient/internal/msg"
)

// Bitset is a fixed-capacity bitset. The zero value is empty and must be
// sized with Reset or NewBitset before use.
type Bitset struct {
	words []uint64
}

// NewBitset returns a bitset able to hold n bits, all clear.
func NewBitset(n int) Bitset {
	return Bitset{words: make([]uint64, (n+63)/64)}
}

// Reset clears the bitset, growing it to hold n bits if needed.
func (b *Bitset) Reset(n int) {
	w := (n + 63) / 64
	if cap(b.words) < w {
		b.words = make([]uint64, w)
		return
	}
	b.words = b.words[:w]
	clear(b.words)
}

// Test reports whether bit i is set. Out-of-range bits read as clear.
func (b *Bitset) Test(i int) bool {
	w := i >> 6
	if i < 0 || w >= len(b.words) {
		return false
	}
	return b.words[w]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i and reports whether it was already set. Out-of-range bits
// are ignored (reported as already set, so callers treat them as duplicates).
func (b *Bitset) Set(i int) (already bool) {
	w := i >> 6
	if i < 0 || w >= len(b.words) {
		return true
	}
	mask := uint64(1) << (uint(i) & 63)
	already = b.words[w]&mask != 0
	b.words[w] |= mask
	return already
}

// Clone returns an independent copy of the bitset.
func (b *Bitset) Clone() Bitset {
	return Bitset{words: append([]uint64(nil), b.words...)}
}

// phaseBucket holds the buffered messages of one phase.
type phaseBucket struct {
	phase msg.Phase
	msgs  []msg.Message
}

// PhaseBuffer buffers messages addressed to future phases, replacing the
// map[msg.Phase][]msg.Message the machines used to keep. Buckets are held
// sorted by phase in a small vector (the live window of phases is tiny),
// and consumed buckets recycle their storage through a freelist, so
// steady-state buffering allocates nothing.
type PhaseBuffer struct {
	buckets []phaseBucket
	free    [][]msg.Message
}

// Add buffers m under phase ph.
func (p *PhaseBuffer) Add(ph msg.Phase, m msg.Message) {
	i := p.find(ph)
	if i < 0 {
		i = p.insert(ph)
	}
	p.buckets[i].msgs = append(p.buckets[i].msgs, m)
}

// Len returns the number of messages buffered for phase ph.
func (p *PhaseBuffer) Len(ph msg.Phase) int {
	if i := p.find(ph); i >= 0 {
		return len(p.buckets[i].msgs)
	}
	return 0
}

// TakeInto appends phase ph's buffered messages to dst, removes the bucket,
// recycles its storage, and returns the extended dst.
func (p *PhaseBuffer) TakeInto(ph msg.Phase, dst []msg.Message) []msg.Message {
	i := p.find(ph)
	if i < 0 {
		return dst
	}
	dst = append(dst, p.buckets[i].msgs...)
	p.removeAt(i)
	return dst
}

// DropBelow discards every bucket with phase strictly below ph.
func (p *PhaseBuffer) DropBelow(ph msg.Phase) {
	for len(p.buckets) > 0 && p.buckets[0].phase < ph {
		p.removeAt(0)
	}
}

// Drop discards phase ph's bucket, if any.
func (p *PhaseBuffer) Drop(ph msg.Phase) {
	if i := p.find(ph); i >= 0 {
		p.removeAt(i)
	}
}

// ForEach calls fn for each non-empty phase in ascending order. The msgs
// slice is owned by the buffer and must not be retained.
func (p *PhaseBuffer) ForEach(fn func(ph msg.Phase, msgs []msg.Message)) {
	for _, b := range p.buckets {
		fn(b.phase, b.msgs)
	}
}

// Buckets returns the number of live phase buckets.
func (p *PhaseBuffer) Buckets() int { return len(p.buckets) }

// Clone returns an independent deep copy of the buffer.
func (p *PhaseBuffer) Clone() PhaseBuffer {
	c := PhaseBuffer{buckets: make([]phaseBucket, len(p.buckets))}
	for i, b := range p.buckets {
		c.buckets[i] = phaseBucket{
			phase: b.phase,
			msgs:  append([]msg.Message(nil), b.msgs...),
		}
	}
	return c
}

func (p *PhaseBuffer) find(ph msg.Phase) int {
	for i := range p.buckets {
		if p.buckets[i].phase == ph {
			return i
		}
	}
	return -1
}

// insert adds an empty bucket for ph (which must not exist) keeping buckets
// sorted by phase, and returns its index.
func (p *PhaseBuffer) insert(ph msg.Phase) int {
	var msgs []msg.Message
	if n := len(p.free); n > 0 {
		msgs = p.free[n-1]
		p.free = p.free[:n-1]
	}
	// Inline binary search for the first bucket with phase > ph: sort.Search
	// would force the predicate closure (and p with it) to the heap on a
	// path reachable from every message step.
	i, j := 0, len(p.buckets)
	for i < j {
		h := int(uint(i+j) >> 1)
		if p.buckets[h].phase > ph {
			j = h
		} else {
			i = h + 1
		}
	}
	p.buckets = append(p.buckets, phaseBucket{})
	copy(p.buckets[i+1:], p.buckets[i:])
	p.buckets[i] = phaseBucket{phase: ph, msgs: msgs}
	return i
}

func (p *PhaseBuffer) removeAt(i int) {
	b := p.buckets[i]
	p.free = append(p.free, b.msgs[:0])
	copy(p.buckets[i:], p.buckets[i+1:])
	p.buckets = p.buckets[:len(p.buckets)-1]
}
