package dense

import (
	"testing"

	"resilient/internal/msg"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	for _, i := range []int{0, 1, 63, 64, 65, 129} {
		if b.Test(i) {
			t.Fatalf("fresh bit %d set", i)
		}
		if b.Set(i) {
			t.Fatalf("Set(%d) reported already on first set", i)
		}
		if !b.Test(i) || !b.Set(i) {
			t.Fatalf("bit %d did not stick", i)
		}
	}
	if b.Test(2) {
		t.Fatal("untouched bit set")
	}
}

func TestBitsetOutOfRange(t *testing.T) {
	b := NewBitset(8)
	for _, i := range []int{-1, 8, 64, 1 << 30} {
		// Bits 8..63 share the single word, so only truly out-of-word
		// indices are rejected; -1 and >=64 must be safe no-ops.
		if i >= 0 && i < 64 {
			continue
		}
		if !b.Set(i) {
			t.Errorf("Set(%d) out of range should report already", i)
		}
		if b.Test(i) {
			t.Errorf("Test(%d) out of range should be clear", i)
		}
	}
}

func TestBitsetResetReuses(t *testing.T) {
	b := NewBitset(100)
	b.Set(99)
	b.Reset(100)
	if b.Test(99) {
		t.Fatal("Reset kept a bit")
	}
	b.Reset(64) // shrink within capacity
	if b.Set(10) {
		t.Fatal("bit survived shrink reset")
	}
	b.Reset(4096) // grow
	if b.Test(10) {
		t.Fatal("grow kept a bit")
	}
	if b.Set(4095) {
		t.Fatal("grown bitset rejects in-range bit")
	}
}

func TestBitsetClone(t *testing.T) {
	b := NewBitset(64)
	b.Set(7)
	c := b.Clone()
	c.Set(8)
	if b.Test(8) {
		t.Fatal("clone shares storage")
	}
	if !c.Test(7) {
		t.Fatal("clone lost a bit")
	}
}

func mkMsg(ph msg.Phase, from msg.ID) msg.Message {
	return msg.State(from, ph, msg.V0, 1)
}

func TestPhaseBufferOrdering(t *testing.T) {
	var p PhaseBuffer
	p.Add(3, mkMsg(3, 0))
	p.Add(1, mkMsg(1, 1))
	p.Add(3, mkMsg(3, 2))
	p.Add(2, mkMsg(2, 3))
	if p.Buckets() != 3 {
		t.Fatalf("buckets = %d, want 3", p.Buckets())
	}
	if p.Len(3) != 2 || p.Len(1) != 1 || p.Len(7) != 0 {
		t.Fatalf("Len wrong: %d %d %d", p.Len(3), p.Len(1), p.Len(7))
	}
	var phases []msg.Phase
	p.ForEach(func(ph msg.Phase, msgs []msg.Message) { phases = append(phases, ph) })
	if len(phases) != 3 || phases[0] != 1 || phases[1] != 2 || phases[2] != 3 {
		t.Fatalf("ForEach order = %v, want ascending", phases)
	}
	got := p.TakeInto(3, nil)
	if len(got) != 2 || got[0].From != 0 || got[1].From != 2 {
		t.Fatalf("TakeInto(3) = %v", got)
	}
	if p.Len(3) != 0 || p.Buckets() != 2 {
		t.Fatal("TakeInto did not remove the bucket")
	}
}

func TestPhaseBufferDrop(t *testing.T) {
	var p PhaseBuffer
	for ph := msg.Phase(0); ph < 5; ph++ {
		p.Add(ph, mkMsg(ph, msg.ID(ph)))
	}
	p.Drop(2)
	if p.Len(2) != 0 || p.Buckets() != 4 {
		t.Fatal("Drop(2) failed")
	}
	p.DropBelow(4)
	if p.Buckets() != 1 || p.Len(4) != 1 {
		t.Fatalf("DropBelow left %d buckets", p.Buckets())
	}
}

func TestPhaseBufferCloneIsDeep(t *testing.T) {
	var p PhaseBuffer
	p.Add(1, mkMsg(1, 0))
	c := p.Clone()
	c.Add(1, mkMsg(1, 1))
	c.Add(2, mkMsg(2, 2))
	if p.Len(1) != 1 || p.Buckets() != 1 {
		t.Fatal("clone shares storage with original")
	}
	if c.Len(1) != 2 || c.Buckets() != 2 {
		t.Fatal("clone lost its own writes")
	}
}

// TestPhaseBufferSteadyStateNoAllocs verifies the freelist: cycling messages
// through take-and-readd at a sliding phase window settles to zero
// allocations per round.
func TestPhaseBufferSteadyStateNoAllocs(t *testing.T) {
	var p PhaseBuffer
	ph := msg.Phase(0)
	// Warm up bucket and message storage.
	for i := 0; i < 8; i++ {
		p.Add(ph+1, mkMsg(ph+1, msg.ID(i)))
	}
	var dst []msg.Message
	dst = p.TakeInto(ph+1, dst[:0])
	_ = dst
	allocs := testing.AllocsPerRun(200, func() {
		ph++
		for i := 0; i < 8; i++ {
			p.Add(ph+1, mkMsg(ph+1, msg.ID(i)))
		}
		dst = p.TakeInto(ph+1, dst[:0])
	})
	if allocs != 0 {
		t.Fatalf("steady-state buffering allocated %.1f times per round", allocs)
	}
}
