// Package explore is an exhaustive state-space model checker for small
// protocol instances: it enumerates EVERY reachable configuration of the
// system -- all interleavings of message deliveries, and optionally all
// fail-stop crash points -- and checks the paper's consistency property on
// each: "there is no reachable configuration where correct processes decide
// different values" (Section 2.1). Where the simulation engine samples
// schedules, the explorer proves the property for the given instance
// outright (subject to the state budget).
//
// Configurations are deduplicated by a canonical encoding of all machine
// snapshots plus the multiset of in-flight messages, which collapses the
// factorially many interleavings onto the usually-small set of distinct
// states.
package explore

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"strconv"

	"resilient/internal/core"
	"resilient/internal/msg"
)

// Machine is the explorable protocol machine: a core.Machine that can be
// deep-copied, canonically serialized, and queried about no-op deliveries.
type Machine interface {
	core.Machine
	CloneMachine() Machine
	Snapshot() []byte
	// WouldIgnore reports whether delivering m is a guaranteed no-op.
	// The explorer prunes such deliveries eagerly instead of branching on
	// them: a no-op delivery commutes with every other transition, so
	// removing the message immediately reaches the same configurations.
	WouldIgnore(m msg.Message) bool
}

// Config describes the instance to explore.
type Config struct {
	// N and K are the system parameters.
	N, K int
	// Inputs are the initial values (length N).
	Inputs []msg.Value
	// Spawn builds the machine for one process.
	Spawn func(self msg.ID, input msg.Value) (Machine, error)
	// MaxCrashes additionally branches on killing up to this many
	// processes at every configuration (0 = no crash branching).
	MaxCrashes int
	// MaxStates bounds the exploration (0 = 1,000,000). When exceeded the
	// result reports Truncated instead of full coverage.
	MaxStates int
}

// Result summarizes an exploration.
type Result struct {
	// States is the number of distinct configurations visited.
	States int
	// Transitions is the number of delivery/crash edges taken.
	Transitions int
	// DecidedStates counts configurations in which at least one correct
	// process has decided.
	DecidedStates int
	// Violation describes the first consistency violation found ("" when
	// none). Exploration stops at the first violation.
	Violation string
	// Truncated reports whether the state budget cut exploration short:
	// if false and Violation is empty, the consistency property holds for
	// EVERY reachable configuration of this instance.
	Truncated bool
}

// flight is one undelivered message.
type flight struct {
	to  msg.ID
	m   msg.Message
	enc string // canonical encoding, for dedup and ordering
}

// state is one global configuration.
type state struct {
	machines []Machine
	inflight []flight
	crashed  []bool
	nCrashed int
}

// Explore runs the search from the initial configuration.
func Explore(cfg Config) (*Result, error) {
	if cfg.N < 1 || len(cfg.Inputs) != cfg.N {
		return nil, fmt.Errorf("explore: need %d inputs, got %d", cfg.N, len(cfg.Inputs))
	}
	if cfg.Spawn == nil {
		return nil, errors.New("explore: nil Spawn")
	}
	maxStates := cfg.MaxStates
	if maxStates <= 0 {
		maxStates = 1_000_000
	}

	init := &state{
		machines: make([]Machine, cfg.N),
		crashed:  make([]bool, cfg.N),
	}
	for i := 0; i < cfg.N; i++ {
		m, err := cfg.Spawn(msg.ID(i), cfg.Inputs[i])
		if err != nil {
			return nil, fmt.Errorf("explore: spawn p%d: %w", i, err)
		}
		init.machines[i] = m
	}
	for i, m := range init.machines {
		init.absorb(msg.ID(i), m.Start(), cfg.N)
	}
	init.normalize()

	res := &Result{}
	visited := map[[32]byte]bool{canonKey(init): true}
	queue := []*state{init}
	res.States = 1

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]

		if v := checkConsistency(cur); v != "" {
			res.Violation = v
			return res, nil
		}
		if anyDecided(cur) {
			res.DecidedStates++
		}

		for _, next := range successors(cur, cfg) {
			res.Transitions++
			key := canonKey(next)
			if visited[key] {
				continue
			}
			if res.States >= maxStates {
				res.Truncated = true
				return res, nil
			}
			visited[key] = true
			res.States++
			queue = append(queue, next)
		}
	}
	return res, nil
}

// successors generates every distinct next configuration: one per distinct
// in-flight message delivery, plus (optionally) one per crashable process.
func successors(cur *state, cfg Config) []*state {
	var out []*state
	seen := make(map[string]bool)
	for i, f := range cur.inflight {
		key := "dlv|" + f.enc
		if seen[key] {
			continue // delivering identical messages to the same target commutes
		}
		seen[key] = true
		next := cur.clone()
		next.removeInflight(i)
		outs := next.machines[f.to].OnMessage(f.m)
		next.absorb(f.to, outs, cfg.N)
		next.normalize()
		out = append(out, next)
	}
	if cur.nCrashed < cfg.MaxCrashes {
		for p := 0; p < cfg.N; p++ {
			if cur.crashed[p] {
				continue
			}
			next := cur.clone()
			next.crashed[p] = true
			next.nCrashed++
			next.normalize()
			out = append(out, next)
		}
	}
	return out
}

// normalize eagerly discards in-flight messages whose delivery is a
// guaranteed no-op: messages to crashed or halted processes and messages the
// target would ignore (stale phases, foreign kinds, duplicates). Such
// deliveries commute with every other transition, so dropping them
// immediately is sound and collapses the state space dramatically.
func (s *state) normalize() {
	kept := s.inflight[:0]
	for _, f := range s.inflight {
		if s.crashed[f.to] || s.machines[f.to].Halted() || s.machines[f.to].WouldIgnore(f.m) {
			continue
		}
		kept = append(kept, f)
	}
	s.inflight = kept
}

// absorb enqueues the sends of one machine step, expanding broadcasts.
// Sends from a crashed process are dropped (its crash happened before this
// step could have, so this only triggers for the crash-branch successor
// generation, which never steps crashed machines).
func (s *state) absorb(from msg.ID, outs []core.Outbound, n int) {
	for _, o := range outs {
		o.Msg.From = from // authenticated
		if o.To == msg.Broadcast {
			for q := 0; q < n; q++ {
				s.addFlight(msg.ID(q), o.Msg)
			}
			continue
		}
		if o.To >= 0 && int(o.To) < n {
			s.addFlight(o.To, o.Msg)
		}
	}
}

func (s *state) addFlight(to msg.ID, m msg.Message) {
	// One buffer, sized up front: destination, separator, message encoding.
	buf := make([]byte, 0, 12+msg.EncodedLen(m))
	buf = strconv.AppendInt(buf, int64(to), 10)
	buf = append(buf, '|')
	buf = msg.AppendEncode(buf, m)
	s.inflight = append(s.inflight, flight{to: to, m: m, enc: string(buf)})
}

func (s *state) removeInflight(i int) {
	s.inflight = append(s.inflight[:i:i], s.inflight[i+1:]...)
}

func (s *state) clone() *state {
	c := &state{
		machines: make([]Machine, len(s.machines)),
		inflight: append([]flight(nil), s.inflight...),
		crashed:  append([]bool(nil), s.crashed...),
		nCrashed: s.nCrashed,
	}
	for i, m := range s.machines {
		c.machines[i] = m.CloneMachine()
	}
	return c
}

// canonKey hashes the canonical encoding into a fixed-size key, keeping the
// visited set compact (the 2^-128-ish collision odds are negligible next to
// the state budgets involved).
func canonKey(s *state) [32]byte {
	return sha256.Sum256([]byte(canonical(s)))
}

// canonical returns the dedup encoding: machine snapshots in id order plus
// the sorted in-flight multiset plus the crash set.
func canonical(s *state) string {
	var b []byte
	for i, m := range s.machines {
		b = append(b, byte(i))
		if s.crashed[i] {
			b = append(b, 'X')
		}
		b = append(b, m.Snapshot()...)
		b = append(b, 0, 0)
	}
	encs := make([]string, len(s.inflight))
	for i, f := range s.inflight {
		encs[i] = f.enc
	}
	sort.Strings(encs)
	for _, e := range encs {
		b = append(b, e...)
		b = append(b, 1)
	}
	return string(b)
}

// checkConsistency returns a description of a decision conflict among
// non-crashed... among ALL processes (a crashed process's earlier decision
// still counts: the paper's d_p is permanent).
func checkConsistency(s *state) string {
	var val msg.Value
	var holder int
	first := true
	for i, m := range s.machines {
		v, ok := m.Decided()
		if !ok {
			continue
		}
		if first {
			val, holder, first = v, i, false
			continue
		}
		if v != val {
			return fmt.Sprintf("p%d decided %d while p%d decided %d", i, v, holder, val)
		}
	}
	return ""
}

func anyDecided(s *state) bool {
	for _, m := range s.machines {
		if _, ok := m.Decided(); ok {
			return true
		}
	}
	return false
}
