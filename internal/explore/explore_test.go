package explore

import (
	"fmt"
	"testing"

	"resilient/internal/core"
	"resilient/internal/failstop"
	"resilient/internal/majority"
	"resilient/internal/msg"
)

// Adapters giving the concrete machines the explorable interface.

type fsMachine struct{ *failstop.Machine }

func (a fsMachine) CloneMachine() Machine { return fsMachine{a.Machine.Clone()} }

type majMachine struct{ *majority.Machine }

func (a majMachine) CloneMachine() Machine { return majMachine{a.Machine.Clone()} }

func failstopSpawn(n, k int) func(msg.ID, msg.Value) (Machine, error) {
	return func(self msg.ID, input msg.Value) (Machine, error) {
		m, err := failstop.New(core.Config{N: n, K: k, Self: self, Input: input}, nil)
		if err != nil {
			return nil, err
		}
		return fsMachine{m}, nil
	}
}

func majoritySpawn(n, k int) func(msg.ID, msg.Value) (Machine, error) {
	return func(self msg.ID, input msg.Value) (Machine, error) {
		m, err := majority.New(core.Config{N: n, K: k, Self: self, Input: input}, nil)
		if err != nil {
			return nil, err
		}
		return majMachine{m}, nil
	}
}

// TestFailStopConsistencyProvenUnanimous proves, by complete enumeration of
// every reachable configuration under every delivery schedule, that the
// Figure 1 protocol at n=3, k=1 with unanimous inputs never reaches a
// configuration with two different decisions. (The unanimous state spaces
// are small enough to exhaust outright.)
func TestFailStopConsistencyProvenUnanimous(t *testing.T) {
	n, k := 3, 1
	for _, v := range []msg.Value{msg.V0, msg.V1} {
		inputs := []msg.Value{v, v, v}
		res, err := Explore(Config{
			N: n, K: k, Inputs: inputs,
			Spawn:     failstopSpawn(n, k),
			MaxStates: 500_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != "" {
			t.Fatalf("inputs %v: consistency violated: %s", inputs, res.Violation)
		}
		if res.Truncated {
			t.Fatalf("inputs %v: truncated at %d states", inputs, res.States)
		}
		if res.DecidedStates == 0 {
			t.Fatalf("inputs %v: no reachable decided configuration", inputs)
		}
		t.Logf("inputs %v: %d states, %d transitions, consistency PROVEN",
			inputs, res.States, res.Transitions)
	}
}

// TestFailStopConsistencyBoundedSplit model-checks the harder mixed-input
// patterns under a state budget: bounded verification rather than a full
// proof (the 2-vs-1 spaces run to millions of states), but every explored
// configuration must be consistent.
func TestFailStopConsistencyBoundedSplit(t *testing.T) {
	budget := 60_000
	if !testing.Short() {
		budget = 250_000
	}
	n, k := 3, 1
	for _, inputs := range [][]msg.Value{
		{1, 0, 0}, {0, 1, 1}, {1, 0, 1},
	} {
		res, err := Explore(Config{
			N: n, K: k, Inputs: inputs,
			Spawn:     failstopSpawn(n, k),
			MaxStates: budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != "" {
			t.Fatalf("inputs %v: consistency violated: %s", inputs, res.Violation)
		}
		status := "PROVEN (space exhausted)"
		if res.Truncated {
			status = "bounded (budget reached)"
		}
		t.Logf("inputs %v: %d states checked, %s", inputs, res.States, status)
	}
}

// TestFailStopConsistencyWithCrashes additionally branches on killing one
// process at every configuration: the crash-augmented explored set must
// still contain no conflicting decisions.
func TestFailStopConsistencyWithCrashes(t *testing.T) {
	budget := 60_000
	if !testing.Short() {
		budget = 250_000
	}
	n, k := 3, 1
	inputs := []msg.Value{1, 0, 1}
	res, err := Explore(Config{
		N: n, K: k, Inputs: inputs,
		Spawn:      failstopSpawn(n, k),
		MaxCrashes: 1,
		MaxStates:  budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != "" {
		t.Fatalf("consistency violated under crashes: %s", res.Violation)
	}
	t.Logf("with crashes: %d states checked (truncated=%v)", res.States, res.Truncated)
}

// TestMajorityConsistencyBudgeted explores the never-halting majority
// variant at n=4, k=1 under a state budget. The variant's processes run
// forever, so the reachable set is infinite; within the budget no
// conflicting decisions may appear.
func TestMajorityConsistencyBudgeted(t *testing.T) {
	n, k := 4, 1
	res, err := Explore(Config{
		N: n, K: k, Inputs: []msg.Value{1, 1, 0, 0},
		Spawn:     majoritySpawn(n, k),
		MaxStates: 60_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != "" {
		t.Fatalf("consistency violated: %s", res.Violation)
	}
	if !res.Truncated {
		t.Logf("surprisingly finite: %d states", res.States)
	}
}

// TestExploreValidatesConfig covers the error paths.
func TestExploreValidatesConfig(t *testing.T) {
	if _, err := Explore(Config{N: 2, Inputs: []msg.Value{0}}); err == nil {
		t.Error("input length mismatch accepted")
	}
	if _, err := Explore(Config{N: 1, Inputs: []msg.Value{0}}); err == nil {
		t.Error("nil spawn accepted")
	}
	bad := func(msg.ID, msg.Value) (Machine, error) { return nil, fmt.Errorf("nope") }
	if _, err := Explore(Config{N: 1, Inputs: []msg.Value{0}, Spawn: bad}); err == nil {
		t.Error("spawn error swallowed")
	}
}

// TestExplorerCatchesABrokenProtocol plants a deliberately broken machine
// (decides its input immediately) and verifies the explorer reports the
// resulting disagreement -- guarding against a checker that can never fail.
func TestExplorerCatchesABrokenProtocol(t *testing.T) {
	res, err := Explore(Config{
		N: 2, K: 0, Inputs: []msg.Value{0, 1},
		Spawn: func(self msg.ID, input msg.Value) (Machine, error) {
			return &brokenMachine{id: self, input: input}, nil
		},
		MaxStates: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == "" {
		t.Fatal("broken protocol passed the explorer")
	}
}

type brokenMachine struct {
	id      msg.ID
	input   msg.Value
	started bool
}

func (b *brokenMachine) ID() msg.ID { return b.id }
func (b *brokenMachine) Start() []core.Outbound {
	b.started = true
	return []core.Outbound{core.ToAll(msg.Val(b.id, 0, b.input))}
}
func (b *brokenMachine) OnMessage(msg.Message) []core.Outbound { return nil }
func (b *brokenMachine) Decided() (msg.Value, bool)            { return b.input, b.started }
func (b *brokenMachine) Halted() bool                          { return false }
func (b *brokenMachine) Phase() msg.Phase                      { return 0 }
func (b *brokenMachine) CloneMachine() Machine                 { c := *b; return &c }
func (b *brokenMachine) WouldIgnore(msg.Message) bool          { return true }
func (b *brokenMachine) Snapshot() []byte {
	f := byte(0)
	if b.started {
		f = 1
	}
	return []byte{byte(b.id), byte(b.input), f}
}
