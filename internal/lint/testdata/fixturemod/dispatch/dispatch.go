// Package dispatch exercises the msgexhaustive rule: machines that cover
// every fixture kind (directly or through a same-package helper), machines
// that miss one, guard-style dispatch, a forwarding wrapper that never reads
// Kind, a machine implementing core.Machine only through an embedded base,
// an explicitly configured dispatch function, and an annotated exception.
//
// Every OnMessage here is also a hot root (core.Machine), so the bodies stay
// allocation-free by construction.
package dispatch

import "fixture/core"

// Exhaustive switches over every kind, ignoring Data explicitly: no finding.
type Exhaustive struct{ id int }

// ID implements core.Machine.
func (e *Exhaustive) ID() int { return e.id }

// OnMessage implements core.Machine.
func (e *Exhaustive) OnMessage(in core.Msg) []core.Msg {
	switch in.Kind {
	case core.KindPing:
		e.id++
	case core.KindPong:
		e.id--
	case core.KindData:
		// Explicitly ignored: data frames are the tracker's business.
	}
	return nil
}

// Partial handles Ping and Pong but takes no position on Data: msgexhaustive
// finding.
type Partial struct{ id int }

// ID implements core.Machine.
func (p *Partial) ID() int { return p.id }

// OnMessage implements core.Machine; it misses KindData.
func (p *Partial) OnMessage(in core.Msg) []core.Msg {
	switch in.Kind {
	case core.KindPing:
		p.id++
	case core.KindPong:
		p.id--
	}
	return nil
}

// Guard dispatches with a != guard; it reads Kind but names only Ping:
// msgexhaustive finding listing KindPong and KindData.
type Guard struct{ id int }

// ID implements core.Machine.
func (g *Guard) ID() int { return g.id }

// OnMessage implements core.Machine in the guard style.
func (g *Guard) OnMessage(in core.Msg) []core.Msg {
	if in.Kind != core.KindPing {
		return nil
	}
	g.id++
	return nil
}

// Forward never reads Kind — it relays the message untouched — so it makes
// no dispatch decision and is exempt: no finding.
type Forward struct{ inner core.Machine }

// ID implements core.Machine.
func (f *Forward) ID() int { return f.inner.ID() }

// OnMessage implements core.Machine by pure forwarding.
func (f *Forward) OnMessage(in core.Msg) []core.Msg { return f.inner.OnMessage(in) }

// Helper covers the kinds through a same-package helper: the closure walk
// must collect classify's mentions. No finding.
type Helper struct{ id int }

// ID implements core.Machine.
func (h *Helper) ID() int { return h.id }

// OnMessage implements core.Machine, delegating the position to classify.
func (h *Helper) OnMessage(in core.Msg) []core.Msg {
	if classify(in.Kind) {
		h.id++
	}
	return nil
}

// classify takes the position for Helper: every kind is named here.
func classify(k core.Kind) bool {
	switch k {
	case core.KindPing, core.KindPong:
		return true
	case core.KindData:
		return false
	}
	return false
}

// base provides ID by promotion, so Embedded satisfies core.Machine only
// through the embedded field; the implementors walk must still root its
// OnMessage. It names only Ping: msgexhaustive finding.
type base struct{ id int }

func (b base) ID() int { return b.id }

// Embedded implements core.Machine via the embedded base.
type Embedded struct {
	base
}

// OnMessage implements core.Machine; it misses KindPong and KindData.
func (e *Embedded) OnMessage(in core.Msg) []core.Msg {
	if in.Kind == core.KindPing {
		e.id++
	}
	return nil
}

// Allowed misses KindData behind a reasoned allow: suppressed.
type Allowed struct{ id int }

// ID implements core.Machine.
func (a *Allowed) ID() int { return a.id }

// OnMessage implements core.Machine.
//
//lint:allow msgexhaustive fixture demo: Data is consumed by the paired tracker
func (a *Allowed) OnMessage(in core.Msg) []core.Msg {
	if in.Kind == core.KindPing || in.Kind == core.KindPong {
		a.id++
	}
	return nil
}

var sink int

// Consume is an explicitly configured dispatch root (DispatchFuncs); it
// reads Kind but names only KindData: msgexhaustive finding for Ping and
// Pong.
func Consume(in core.Msg) {
	if in.Kind == core.KindData {
		sink++
	}
}
