// Package core declares the fixture machine contract. Methods of types
// implementing Machine are hot-path roots for the hotalloc rule, mirroring
// the real module's core.Machine.
package core

// Msg is a fixture message.
type Msg struct {
	From, To int
	Value    int
}

// Machine is the fixture hot interface.
type Machine interface {
	ID() int
	OnMessage(in Msg) []Msg
}
