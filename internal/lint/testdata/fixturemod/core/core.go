// Package core declares the fixture machine contract. Methods of types
// implementing Machine are hot-path roots for the hotalloc rule and dispatch
// roots for the msgexhaustive rule, mirroring the real module's core.Machine;
// Sender.Send is the configured blocking transport call for the lockblock
// rule, mirroring transport.Conn.Send.
package core

// Kind discriminates fixture messages, mirroring the real msg.Kind.
type Kind uint8

// The fixture wire kinds. Every dispatch root that reads Kind must take a
// position on each of these.
const (
	KindPing Kind = iota + 1
	KindPong
	KindData
)

// Msg is a fixture message.
type Msg struct {
	From, To int
	Kind     Kind
	Value    int
}

// Machine is the fixture hot interface; OnMessage is also the dispatch root
// for the msgexhaustive rule.
type Machine interface {
	ID() int
	OnMessage(in Msg) []Msg
}

// Sender is the fixture transport send contract. Send may block on
// backpressure, so Config.BlockingFuncs names it for the lockblock rule.
type Sender interface {
	Send(m Msg) error
}
