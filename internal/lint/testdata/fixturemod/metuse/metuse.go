// Package metuse exercises the metricshandle loop rule outside hot code:
// the rule applies module-wide, not only to hot bodies.
package metuse

import "fixture/metrics"

// LoopLookup resolves a handle on every iteration: metricshandle finding.
func LoopLookup(reg *metrics.Registry, n int) {
	for i := 0; i < n; i++ {
		reg.Counter("loop.iters").Add(1)
	}
}

// CachedLookup hoists the handle out of the loop: no finding.
func CachedLookup(reg *metrics.Registry, n int) {
	c := reg.Counter("loop.iters")
	for i := 0; i < n; i++ {
		c.Add(1)
	}
}

// ScopedOnce derives a scoped view once per call, outside any loop: no
// finding.
func ScopedOnce(reg *metrics.Registry) *metrics.Registry {
	return reg.Scoped("fixture.")
}
