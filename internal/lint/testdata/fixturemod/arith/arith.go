// Package arith exercises the quorumarith rule: each threshold shape appears
// once outside the audited thresh package — the (n±k)/2 half-split, the
// 2x-scaled comparison, the halved-count comparison, and the 2k+1 resilience
// bound — alongside the arithmetic on n-named values that must stay legal
// (positional indexing, scaling an unrelated limit), an annotated exception,
// and a QuorumAllowedFuncs-exempt sizing function.
package arith

// Config mirrors the engine config's process-count fields.
type Config struct {
	N, K int
}

// Decide compares against the open-coded Figure-2 threshold: quorumarith
// finding (comparison against a halved count).
func Decide(c Config, count int) bool {
	return count > (c.N+c.K)/2
}

// Accept computes the half-split threshold as a value: quorumarith finding
// ((n±k)/2 half-split).
func Accept(c Config) int {
	return (c.N+c.K)/2 + 1
}

// Absorbed open-codes the doubled comparison: quorumarith finding (scaled
// comparison).
func Absorbed(c Config, i int) bool {
	return 2*i > c.N+c.K
}

// Majority compares against a halved process count: quorumarith finding.
func Majority(q, n int) bool {
	return q < n/2
}

// MinN open-codes the 2k+1 resilience bound: quorumarith finding.
func MinN(k int) int {
	return 2*k + 1
}

// Window keeps one deliberate local threshold behind a reasoned allow:
// suppressed.
func Window(n, k, i int) bool {
	//lint:allow quorumarith fixture demo: window bound audited against the markov chain
	return 2*i < n-k
}

// Sizer owns its arithmetic (QuorumAllowedFuncs names it): no finding.
func Sizer(n, k int) int {
	return (n+k)/2 + k
}

// Mid indexes with n/2 — positional arithmetic, not a threshold: no finding.
func Mid(xs []int, n int) int {
	return xs[n/2]
}

// Twice scales an unrelated limit: no finding.
func Twice(i, limit int) bool {
	return i < 2*limit
}
