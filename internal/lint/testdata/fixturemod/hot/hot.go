// Package hot implements the fixture Machine: its interface methods are hot
// roots, everything they reach is hot, and each allocation source the
// hotalloc rule knows about appears once — plus the negatives (cold code,
// constructor-time resolution, an annotated exception) that must stay legal.
package hot

import (
	"fmt"
	"strconv"

	"fixture/core"
	"fixture/metrics"
)

// enabled gates the trace formatting below; it is always false in the
// fixture.
var enabled bool

// M is the fixture machine.
type M struct {
	id   int
	reg  *metrics.Registry
	hits *metrics.Counter
	note string
}

// New constructs a machine, resolving the metric handle once: no finding.
func New(id int, reg *metrics.Registry) *M {
	return &M{id: id, reg: reg, hits: reg.Counter("hot.hits")}
}

// ID implements core.Machine.
func (m *M) ID() int { return m.id }

// OnMessage implements core.Machine; it is a hot root.
func (m *M) OnMessage(in core.Msg) []core.Msg {
	m.hits.Add(1)
	// fmt formatting on the hot path: hotalloc finding.
	m.note = fmt.Sprintf("m%d", in.From)
	// String concatenation on the hot path: hotalloc finding.
	m.note = m.note + strconv.Itoa(in.Value)
	// Map literal on the hot path: hotalloc finding.
	seen := map[int]bool{in.From: true}
	_ = seen
	// Handle resolution in a hot body: metricshandle finding.
	m.reg.Counter("hot.msgs").Add(1)
	m.trace(in)
	return m.dispatch(in)
}

// dispatch is reachable from OnMessage, so it is hot too.
func (m *M) dispatch(in core.Msg) []core.Msg {
	// Integer boxed into an interface parameter: hotalloc finding.
	box(in.Value)
	// Capturing closure escapes to the heap: hotalloc finding.
	f := func() int { return m.id }
	_ = f()
	// Map allocation via make: hotalloc finding.
	counts := make(map[int]int, 2)
	counts[in.From]++
	// Generic helper with an inferred instantiation: the hot set must follow
	// the call and flag the allocation inside tally.
	_ = tally(in.From)
	return nil
}

// tally is a generic helper reached from the hot path.
func tally[T comparable](k T) map[T]int {
	// Map literal inside a hot generic helper: hotalloc finding.
	return map[T]int{k: 1}
}

// trace formats behind an always-off gate, with an annotated exception: no
// finding.
func (m *M) trace(in core.Msg) {
	if !enabled {
		return
	}
	//lint:allow hotalloc fixture demo: formatting behind the enabled gate
	m.note = fmt.Sprintf("ev %d", in.Value)
}

// box boxes any basic-typed argument.
func box(v interface{}) { _ = v }

// Drive is an explicitly configured hot root (HotFuncs, "fixture/hot.Drive").
func Drive(ms []core.Msg) {
	for _, in := range ms {
		leak(in.Value)
	}
}

// leak is hot because Drive reaches it.
func leak(v int) string {
	// String concatenation, reachable from the HotFuncs root: hotalloc
	// finding.
	return "v=" + strconv.Itoa(v)
}

// Cold is reachable from no hot root: formatting here is legal, no finding.
func Cold(v int) string {
	return fmt.Sprintf("cold %d", v)
}
