// Package pool is a fixture blessed parallel entry point: it is listed in
// both DeterministicPkgs and GoroutineAllowed, so spawning workers here is
// legal while the other determinism rules still apply.
package pool

import "sync"

// Fan runs fn on n workers: no finding (pool is goroutine-blessed).
func Fan(n int, fn func(int)) {
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}
