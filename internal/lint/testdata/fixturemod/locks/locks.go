// Package locks exercises the lock-safety rules: each lockblock, lockorder,
// and lockreturn shape appears once, alongside the blessed idioms —
// sync.Cond.Wait backpressure, defer-guarded and early-return unlocks,
// goroutine handoff (including a method value as the entry point), and an
// annotated deliberate flush-under-lock — that must stay legal.
package locks

import (
	"errors"
	"net"
	"sync"
	"time"

	"fixture/core"
)

var errShut = errors.New("queue shut")

// Queue is a fixture send queue; Queue.mu is one lock class shared by every
// instance.
type Queue struct {
	mu   sync.Mutex
	cond *sync.Cond
	ch   chan core.Msg
	out  core.Sender
	n    int
}

// Table is a second lock class for the ordering fixtures.
type Table struct {
	mu sync.RWMutex
	m  map[int]int
}

// SendUnderLock sends on a channel while Queue.mu is held: lockblock finding.
func (q *Queue) SendUnderLock(m core.Msg) {
	q.mu.Lock()
	q.ch <- m
	q.mu.Unlock()
}

// SleepUnderLock sleeps inside the critical section: lockblock finding.
func (q *Queue) SleepUnderLock() {
	q.mu.Lock()
	defer q.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// ConnUnderLock performs the configured blocking send (core.Sender.Send)
// while the lock is held: lockblock finding.
func (q *Queue) ConnUnderLock(m core.Msg) {
	q.mu.Lock()
	defer q.mu.Unlock()
	_ = q.out.Send(m)
}

// DialDeep reaches net.Dial through a helper two calls down: the transitive
// summary reports lockblock at the outer call.
func (q *Queue) DialDeep() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.redial()
}

func (q *Queue) redial() { _, _ = dial() }

func dial() (net.Conn, error) { return net.Dial("tcp", "localhost:0") }

// LockAB acquires Queue.mu then Table.mu; LockBA the reverse. The AB/BA
// conflict is a lockorder finding at both acquisition sites.
func LockAB(q *Queue, t *Table) {
	q.mu.Lock()
	t.mu.Lock()
	t.mu.Unlock()
	q.mu.Unlock()
}

// LockBA is the other half of the ordering conflict.
func LockBA(q *Queue, t *Table) {
	t.mu.Lock()
	q.mu.Lock()
	q.mu.Unlock()
	t.mu.Unlock()
}

// Reenter acquires the Queue.mu class while an instance of it is already
// held: lockorder finding (sync mutexes are not reentrant).
func Reenter(a, b *Queue) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

// LeakOnError returns from the error path with the lock still held and no
// defer guarding it: lockreturn finding.
func (q *Queue) LeakOnError() error {
	q.mu.Lock()
	if q.n == 0 {
		return errShut
	}
	q.n--
	q.mu.Unlock()
	return nil
}

// Wait blocks on the condition variable with the lock held: sync.Cond.Wait
// releases the mutex while waiting (the blessed backpressure idiom), so no
// finding.
func (q *Queue) Wait() {
	q.mu.Lock()
	for q.n == 0 {
		q.cond.Wait()
	}
	q.n--
	q.mu.Unlock()
}

// SendAfterUnlock releases the lock before the channel send: no finding.
func (q *Queue) SendAfterUnlock(m core.Msg) {
	q.mu.Lock()
	q.n++
	q.mu.Unlock()
	q.ch <- m
}

// EarlyReturn unlocks on every path before blocking, exercising the
// branch-merge logic: no finding.
func (q *Queue) EarlyReturn(m core.Msg) bool {
	q.mu.Lock()
	if q.n == 0 {
		q.mu.Unlock()
		return false
	}
	q.n--
	q.mu.Unlock()
	q.ch <- m
	return true
}

// Spawn starts the pump under the lock: the goroutine body runs on its own
// stack, so its blocking receive is not charged to this critical section.
func (q *Queue) Spawn() {
	q.mu.Lock()
	go q.pump()
	q.mu.Unlock()
}

// PumpValue uses the pump method value as the goroutine entry point; the
// driver must parse the shape and still not charge pump's blocking to the
// critical section.
func (q *Queue) PumpValue() {
	q.mu.Lock()
	f := q.pump
	q.mu.Unlock()
	go f()
}

// pump drains the channel; it blocks, but never under a lock.
func (q *Queue) pump() {
	for m := range q.ch {
		q.n += m.Value
	}
}

// FlushLocked deliberately writes under the lock — the coalescing-flush
// idiom — behind a reasoned allow: suppressed.
func (q *Queue) FlushLocked(m core.Msg) {
	q.mu.Lock()
	defer q.mu.Unlock()
	//lint:allow lockblock fixture demo: deliberate coalescing flush under the link lock
	_ = q.out.Send(m)
}

// Get takes the read lock with a defer guard: no finding.
func (t *Table) Get(k int) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}
