// Package seed exercises the seedhygiene rule: RNG constructors must derive
// their seed material from a parameter, field, or trial index.
package seed

import (
	"math/rand/v2"
	"time"
)

// Constant reuses one stream everywhere: seedhygiene finding.
func Constant() *rand.Rand {
	return rand.New(rand.NewPCG(1, 2))
}

// WallClock is unrepeatable: seedhygiene finding.
func WallClock() *rand.Rand {
	return rand.New(rand.NewPCG(uint64(time.Now().UnixNano()), 0))
}

// Derived takes the seed from a parameter and the stream from a trial
// index: no finding.
func Derived(seed uint64, trial int) *rand.Rand {
	return rand.New(rand.NewPCG(seed, uint64(trial)))
}

// Cfg carries an explicit seed.
type Cfg struct{ Seed uint64 }

// RNG seeds from a config field plus constant stream-separation salt: no
// finding.
func (c Cfg) RNG() *rand.Rand {
	return rand.New(rand.NewPCG(c.Seed, 0xbeef))
}
