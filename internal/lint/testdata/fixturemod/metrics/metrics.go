// Package metrics is a fixture registry with the same handle-resolution
// shape as the real one: Counter/Gauge/Histogram/Scoped are the lookups the
// metricshandle rule tracks.
package metrics

// Registry resolves named handles.
type Registry struct{}

// Counter resolves a counter handle.
func (r *Registry) Counter(name string) *Counter { _ = name; return &Counter{} }

// Gauge resolves a gauge handle.
func (r *Registry) Gauge(name string) *Gauge { _ = name; return &Gauge{} }

// Histogram resolves a histogram handle.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	_, _ = name, bounds
	return &Histogram{}
}

// Scoped derives a prefixed view of the registry.
func (r *Registry) Scoped(prefix string) *Registry { _ = prefix; return r }

// Counter is a fixture counter handle.
type Counter struct{ n int64 }

// Add increments the counter.
func (c *Counter) Add(d int64) { c.n += d }

// Gauge is a fixture gauge handle.
type Gauge struct{ v float64 }

// Set sets the gauge.
func (g *Gauge) Set(v float64) { g.v = v }

// Histogram is a fixture histogram handle.
type Histogram struct{ n int }

// Observe records one sample.
func (h *Histogram) Observe(v float64) { _ = v; h.n++ }
