// Package thresh is the fixture's audited threshold home (QuorumAllowedPkgs
// names it): the same arithmetic that is a quorumarith finding elsewhere is
// legal here, mirroring the real module's internal/quorum.
package thresh

// ExceedsHalfNPlusK reports count > (n+k)/2 in overflow-safe form.
func ExceedsHalfNPlusK(count, n, k int) bool {
	return 2*count > n+k
}

// MinProcesses is the 2k+1 fail-stop resilience bound.
func MinProcesses(k int) int {
	return 2*k + 1
}
