// Package det is a fixture deterministic package: the determinism rule
// family (walltime, globalrand, maprange, goroutine) runs against it. Each
// function below is either a positive (expected finding, recorded in
// golden.txt) or a negative (an idiom the rules must keep legal).
package det

import (
	"math/rand/v2"
	"sort"
	"time"
)

// Clock reads the wall clock: walltime finding.
func Clock() int64 {
	return time.Now().UnixNano()
}

// Elapsed measures wall time: walltime finding.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0)
}

// Stamp reads the wall clock behind an annotated exception: no finding.
func Stamp() int64 {
	//lint:allow walltime fixture demo of an annotated wall-clock read
	return time.Now().UnixNano()
}

// GlobalDraw draws from the process-global RNG: globalrand finding.
func GlobalDraw() int {
	return rand.IntN(6)
}

// SeededDraw draws from an explicit parameter-seeded source: no finding.
func SeededDraw(seed uint64) int {
	rng := rand.New(rand.NewPCG(seed, 1))
	return rng.IntN(6)
}

// LastWins keeps whichever value the randomized iteration visits last:
// maprange finding.
func LastWins(m map[int]int) int {
	last := 0
	for _, v := range m {
		last = v
	}
	return last
}

// Fold accumulates in iteration order: maprange finding.
func Fold(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}

// CollectValues appends values in iteration order: maprange finding.
func CollectValues(m map[int]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// SortedKeys is the blessed idiom — collect only the keys, sort, then
// index: no finding.
func SortedKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// PruneBelow deletes while ranging, which Go defines and order cannot
// affect: no finding.
func PruneBelow(m map[int]int, min int) {
	for k := range m {
		if k < min {
			delete(m, k)
		}
	}
}

// CopyInto performs keyed copies, which commute: no finding.
func CopyInto(dst, src map[int]int) {
	for k, v := range src {
		dst[k] = v
	}
}

// Detach spawns a goroutine outside a blessed package: goroutine finding.
func Detach(fn func()) {
	go fn()
}

// Below, the directive is missing its reason: malformed-allow finding.
//
//lint:allow maprange

// Quiet does nothing wrong, so the directive above it suppresses nothing:
// unused-allow finding.
//
//lint:allow globalrand this exception is stale on purpose
func Quiet() {}
