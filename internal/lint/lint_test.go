package lint

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureConfig mirrors ProjectConfig for the fixture module under testdata:
// det and pool are the deterministic packages (pool goroutine-blessed),
// core.Machine is the hot interface and the dispatch root, hot.Drive a named
// hot root, locks the lock-safety package, and thresh the audited threshold
// home.
func fixtureConfig() Config {
	return Config{
		Dir:                filepath.Join("testdata", "fixturemod"),
		DeterministicPkgs:  []string{"fixture/det", "fixture/pool"},
		GoroutineAllowed:   []string{"fixture/pool"},
		MetricsPkg:         "fixture/metrics",
		HotIfaces:          []string{"fixture/core.Machine"},
		HotFuncs:           []string{"fixture/hot.Drive"},
		LockPkgs:           []string{"fixture/locks"},
		BlockingFuncs:      []string{"fixture/core.Sender.Send"},
		MsgKindType:        "fixture/core.Kind",
		DispatchIfaces:     []string{"fixture/core.Machine.OnMessage"},
		DispatchFuncs:      []string{"fixture/dispatch.Consume"},
		QuorumAllowedPkgs:  []string{"fixture/thresh"},
		QuorumAllowedFuncs: []string{"fixture/arith.Sizer"},
	}
}

func runFixture(t *testing.T) []Finding {
	t.Helper()
	findings, err := Run(fixtureConfig())
	if err != nil {
		t.Fatalf("Run(fixture): %v", err)
	}
	return findings
}

func renderFindings(fs []Finding) []byte {
	var buf bytes.Buffer
	for _, f := range fs {
		buf.WriteString(f.String())
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestFixtureGolden locks the full diagnostic output over the fixture module:
// every rule's positives fire with the expected file:line and message, and
// none of the negatives (blessed idioms, annotated exceptions, cold code) do.
func TestFixtureGolden(t *testing.T) {
	got := renderFindings(runFixture(t))
	golden := filepath.Join("testdata", "golden.txt")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("fixture findings diverge from golden (run with -update to regenerate)\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestEveryRuleRepresented guards the fixture itself: each rule family must
// have at least one surviving positive, so a rule cannot silently stop firing
// without the golden shrinking.
func TestEveryRuleRepresented(t *testing.T) {
	rules := map[string]bool{}
	for _, f := range runFixture(t) {
		rules[f.Rule] = true
	}
	for _, want := range []string{
		"walltime", "globalrand", "maprange", "goroutine",
		"hotalloc", "metricshandle", "seedhygiene", "allow",
		"lockblock", "lockorder", "lockreturn",
		"msgexhaustive", "quorumarith",
	} {
		if !rules[want] {
			t.Errorf("no fixture finding exercises rule %q", want)
		}
	}
}

// TestFindingsDeterministic runs the analysis twice and requires identical,
// (file, line, col, rule, message)-sorted findings and byte-identical JSON:
// the linter must hold itself to the determinism standard it enforces.
func TestFindingsDeterministic(t *testing.T) {
	first := runFixture(t)
	second := runFixture(t)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("two runs over the same tree differ:\n%s\nvs\n%s",
			renderFindings(first), renderFindings(second))
	}
	sorted := append([]Finding(nil), first...)
	sortFindings(sorted)
	if !reflect.DeepEqual(first, sorted) {
		t.Errorf("findings not sorted by (file, line, col, rule, message):\n%s", renderFindings(first))
	}
	j1, err := WriteJSON(first)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := WriteJSON(second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Error("JSON output differs between identical runs")
	}
}

// TestWriteGitHub pins the Actions annotation encoding, including the
// workflow-command escaping of %, CR, and LF in messages.
func TestWriteGitHub(t *testing.T) {
	got := WriteGitHub([]Finding{
		{File: "a/b.go", Line: 3, Col: 7, Rule: "lockblock", Message: "x held"},
		{File: "c.go", Line: 1, Col: 1, Rule: "allow", Message: "100% sure\nline two"},
	})
	want := "::error file=a/b.go,line=3,col=7,title=consensuslint lockblock::x held\n" +
		"::error file=c.go,line=1,col=1,title=consensuslint allow::100%25 sure%0Aline two\n"
	if string(got) != want {
		t.Errorf("WriteGitHub:\n got %q\nwant %q", got, want)
	}
	if out := WriteGitHub(nil); len(out) != 0 {
		t.Errorf("WriteGitHub(nil) = %q, want empty", out)
	}
}

// TestWriteJSONEmpty pins the clean-tree JSON encoding.
func TestWriteJSONEmpty(t *testing.T) {
	data, err := WriteJSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "[]\n" {
		t.Errorf("WriteJSON(nil) = %q, want %q", data, "[]\n")
	}
}
