// Message-kind exhaustiveness rule. The wire format multiplexes every
// protocol over one Message struct discriminated by msg.Kind, so a machine's
// dispatch decides per kind whether to act or drop — and the scary failure
// mode is the silent one: a new kind (PR 8 added Gossip and Ready) sails
// through an old machine's `if in.Kind != KindX` guard into the drop path
// without anyone ever having decided that is correct. Tests only sample the
// kinds they inject; this rule makes the position explicit in the source.
//
// For every dispatch root (each method named by Config.DispatchIfaces on
// every module type implementing that interface, plus the explicit
// Config.DispatchFuncs), the rule collects the same-package closure — the
// root plus every function in the root's own package statically reachable
// from it, excluding `go` statements — and requires that, if the closure
// reads the Kind type at all, it names every declared Kind constant: a
// mention is a position, whether it handles the kind or explicitly ignores
// it. Closures that never touch Kind (forwarding wrappers, always-silent
// machines) are exempt — they take no position because they make no
// decision. Mentions inside other packages do not count: a constructor in
// the msg package referencing KindEcho says nothing about what THIS machine
// does with echoes.
//
// Adding a tenth Kind constant therefore fails lint at every machine until
// each one either handles it or names it on an explicit ignore path.
package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// checkMsgExhaustive enforces kind coverage at every dispatch root.
func (a *analysis) checkMsgExhaustive() {
	kindType, kindConsts := a.lookupKindEnum()
	if kindType == nil || len(kindConsts) == 0 {
		return
	}
	for _, root := range a.dispatchRoots() {
		a.checkDispatchRoot(root, kindType, kindConsts)
	}
}

// lookupKindEnum resolves Config.MsgKindType to its named type and the
// package-level constants of that type, sorted by constant value (declaration
// order for an iota enum).
func (a *analysis) lookupKindEnum() (types.Type, []*types.Const) {
	name := a.cfg.MsgKindType
	dot := strings.LastIndex(name, ".")
	if dot < 0 {
		return nil, nil
	}
	pkgPath, typeName := name[:dot], name[dot+1:]
	for _, p := range a.pkgs {
		if p.path != pkgPath {
			continue
		}
		obj, ok := p.pkg.Scope().Lookup(typeName).(*types.TypeName)
		if !ok {
			return nil, nil
		}
		kt := obj.Type()
		var consts []*types.Const
		scope := p.pkg.Scope()
		for _, n := range scope.Names() {
			if c, ok := scope.Lookup(n).(*types.Const); ok && types.Identical(c.Type(), kt) {
				consts = append(consts, c)
			}
		}
		sort.Slice(consts, func(i, j int) bool {
			return constLess(consts[i], consts[j])
		})
		return kt, consts
	}
	return nil, nil
}

func constLess(a, b *types.Const) bool {
	av, aok := constant.Uint64Val(a.Val())
	bv, bok := constant.Uint64Val(b.Val())
	if aok && bok && av != bv {
		return av < bv
	}
	return a.Name() < b.Name()
}

// dispatchRoots resolves the configured dispatch entry points.
func (a *analysis) dispatchRoots() []*declSite {
	var out []*declSite
	seen := map[*ast.FuncDecl]bool{}
	add := func(fn *types.Func) {
		site, ok := a.decls[fn]
		if !ok || seen[site.decl] {
			return
		}
		seen[site.decl] = true
		out = append(out, site)
	}
	for _, spec := range a.cfg.DispatchIfaces {
		dot := strings.LastIndex(spec, ".")
		if dot < 0 {
			continue
		}
		ifaceName, method := spec[:dot], spec[dot+1:]
		iface := a.lookupInterface(ifaceName)
		if iface == nil {
			continue
		}
		for _, fn := range a.implementors(iface, method) {
			add(fn)
		}
	}
	for _, p := range a.pkgs {
		for _, f := range p.files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				if containsString(a.cfg.DispatchFuncs, declKey(p, fd)) {
					if obj, ok := p.info.Defs[fd.Name].(*types.Func); ok {
						add(obj)
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].decl.Pos() < out[j].decl.Pos() })
	return out
}

// checkDispatchRoot verifies one dispatch root's closure.
func (a *analysis) checkDispatchRoot(root *declSite, kindType types.Type, kindConsts []*types.Const) {
	closure := a.samePackageClosure(root)
	mentioned := map[*types.Const]bool{}
	readsKind := false
	for _, site := range closure {
		info := site.pkg.info
		ast.Inspect(site.decl, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				return true // body still scanned: mentions count wherever they appear
			case *ast.Ident:
				obj := info.Uses[n]
				if obj == nil {
					obj = info.Defs[n]
				}
				if c, ok := obj.(*types.Const); ok && types.Identical(c.Type(), kindType) {
					mentioned[c] = true
					readsKind = true
				}
			case *ast.SelectorExpr:
				if v, ok := info.Uses[n.Sel].(*types.Var); ok && v.IsField() && types.Identical(v.Type(), kindType) {
					readsKind = true
				}
			}
			return true
		})
	}
	if !readsKind {
		return // forwarding wrapper or always-silent machine: no decision made
	}
	var missing []string
	for _, c := range kindConsts {
		if !mentioned[c] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	recv := ""
	if fd := root.decl; fd.Recv != nil && len(fd.Recv.List) > 0 {
		recv = receiverLabel(fd) + "."
	}
	a.report(root.decl.Pos(), "msgexhaustive",
		"%s%s dispatches on %s but takes no position on %s; handle each kind or name it on an explicit ignore path",
		recv, root.decl.Name.Name, a.cfg.MsgKindType, strings.Join(missing, ", "))
}

// samePackageClosure returns the root plus every function in the root's
// package statically reachable from it (method values and direct calls;
// interface calls are not followed — they leave the package's decision
// scope).
func (a *analysis) samePackageClosure(root *declSite) []*declSite {
	var out []*declSite
	seen := map[*ast.FuncDecl]bool{}
	work := []*declSite{root}
	for len(work) > 0 {
		site := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[site.decl] {
			continue
		}
		seen[site.decl] = true
		out = append(out, site)
		info := site.pkg.info
		ast.Inspect(site.decl, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := info.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			next, ok := a.decls[fn]
			if !ok || next.pkg != root.pkg {
				return true
			}
			work = append(work, next)
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].decl.Pos() < out[j].decl.Pos() })
	return out
}

// receiverLabel renders a method's receiver type name, pointers stripped.
func receiverLabel(fd *ast.FuncDecl) string {
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}
