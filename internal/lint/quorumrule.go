// Quorum-arithmetic rule. The paper's guarantees are carried by a handful of
// exact integer thresholds — "more than (n+k)/2" echoes to accept (Figure 2),
// 2k+1 / 3k+1 minimum process counts (Theorems 1-4), "more than n/2" witness
// majorities (Figure 1) — and internal/quorum implements each one once, in
// overflow- and rounding-audited form. An open-coded `(n+k)/2` elsewhere is a
// latent fork: it can drift from the audited helper by one off-by-one and
// decide with a minority, which is exactly the class of bug no sampled test
// reliably catches.
//
// The rule flags threshold-shaped arithmetic over fault-parameter names
// (n-like: n/N; k-like: k/K, f/F) in any package outside
// Config.QuorumAllowedPkgs, and outside the specific functions named by
// Config.QuorumAllowedFuncs (sizing planners that legitimately own their
// arithmetic). Four shapes are recognized:
//
//   - half-split: (n±k)/2 — the Figure-2 accept/decide threshold family —
//     in any context, including as an array index or argument;
//   - scaled comparison: a comparison with 2*x or 3*x on one side and an
//     n-like or k-like reference on the other (2*count > n+k, 2*k >= n);
//   - halved comparison: a comparison against an n-like value divided by 2
//     (q < n/2);
//   - resilience bound: 2*k+1 or 3*k+1 (the minimum-process counts).
//
// Arithmetic that merely indexes with n (xs[n/2]) or scales an unrelated
// variable (i < 2*limit) is deliberately not matched.
package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// checkQuorumArith flags threshold arithmetic outside the audited packages.
func (a *analysis) checkQuorumArith() {
	for _, p := range a.pkgs {
		if containsString(a.cfg.QuorumAllowedPkgs, p.path) {
			continue
		}
		for _, f := range p.files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if containsString(a.cfg.QuorumAllowedFuncs, declKey(p, fd)) {
					continue
				}
				a.checkQuorumIn(fd.Body)
			}
		}
	}
}

// checkQuorumIn walks one function body, reporting each outermost matching
// expression once (a comparison containing a half-split reports at the
// comparison, not twice).
func (a *analysis) checkQuorumIn(body *ast.BlockStmt) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		if what, hit := quorumShape(be); hit {
			a.report(be.Pos(), "quorumarith",
				"%s outside internal/quorum; route the threshold through the audited helpers (quorum.ExceedsHalf, ExceedsHalfNPlusK, EchoAcceptCount, MinProcesses, ...)",
				what)
			return false // subsumes nested shapes
		}
		return true
	}
	ast.Inspect(body, walk)
}

// quorumShape classifies one binary expression against the four threshold
// shapes, returning a human label on a match.
func quorumShape(be *ast.BinaryExpr) (string, bool) {
	switch be.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
		// Scaled comparison: 2*expr or 3*expr on one side, n/k named on the
		// other.
		if hasSmallScale(x) && refsFaultParam(y) {
			return "threshold comparison with a 2x/3x scaled count", true
		}
		if hasSmallScale(y) && refsFaultParam(x) {
			return "threshold comparison with a 2x/3x scaled count", true
		}
		// Halved comparison: one side is <n-like>/2.
		if isHalvedFaultParam(x) || isHalvedFaultParam(y) {
			return "comparison against a halved process count", true
		}
		return "", false
	case token.QUO:
		// Half-split: (n±k)/2 anywhere.
		if isIntLit(be.Y, "2") {
			if num, ok := ast.Unparen(be.X).(*ast.BinaryExpr); ok &&
				(num.Op == token.ADD || num.Op == token.SUB) &&
				refsName(num, nLike) && refsName(num, kLike) {
				return "(n±k)/2 half-split", true
			}
		}
		return "", false
	case token.ADD:
		// Resilience bound: 2*k+1 or 3*k+1 (either operand order).
		x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
		if (isIntLit(y, "1") && isScaledFaultParam(x)) ||
			(isIntLit(x, "1") && isScaledFaultParam(y)) {
			return "2k+1/3k+1 resilience bound", true
		}
		return "", false
	}
	return "", false
}

// nLike and kLike classify the final name of an identifier or selector as a
// process-count or fault-budget parameter.
func nLike(name string) bool {
	return strings.EqualFold(name, "n")
}

func kLike(name string) bool {
	return strings.EqualFold(name, "k") || strings.EqualFold(name, "f")
}

// refsFaultParam reports whether the expression references an n-like or
// k-like name anywhere.
func refsFaultParam(e ast.Expr) bool {
	return refsName(e, nLike) || refsName(e, kLike)
}

// refsName reports whether the expression contains an identifier or field
// selector whose final name satisfies match. Call results do not count: a
// name must be read, not computed.
func refsName(e ast.Expr, match func(string) bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			return false
		case *ast.SelectorExpr:
			if match(n.Sel.Name) {
				found = true
			}
			return false // the base (c in c.N) is not itself a parameter read
		case *ast.Ident:
			if match(n.Name) {
				found = true
			}
		}
		return !found
	})
	return found
}

// hasSmallScale reports whether the expression contains a 2*x or 3*x
// multiplication.
func hasSmallScale(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if be, ok := n.(*ast.BinaryExpr); ok && be.Op == token.MUL {
			if isIntLit(be.X, "2") || isIntLit(be.X, "3") ||
				isIntLit(be.Y, "2") || isIntLit(be.Y, "3") {
				found = true
			}
		}
		return !found
	})
	return found
}

// isHalvedFaultParam matches <expr-referencing-n>/2.
func isHalvedFaultParam(e ast.Expr) bool {
	be, ok := ast.Unparen(e).(*ast.BinaryExpr)
	return ok && be.Op == token.QUO && isIntLit(be.Y, "2") && refsName(be.X, nLike)
}

// isScaledFaultParam matches 2*<k-like> or 3*<k-like>.
func isScaledFaultParam(e ast.Expr) bool {
	be, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok || be.Op != token.MUL {
		return false
	}
	if isIntLit(be.X, "2") || isIntLit(be.X, "3") {
		return refsName(be.Y, kLike)
	}
	if isIntLit(be.Y, "2") || isIntLit(be.Y, "3") {
		return refsName(be.X, kLike)
	}
	return false
}

// isIntLit matches a literal integer token with the given text.
func isIntLit(e ast.Expr, text string) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == text
}
