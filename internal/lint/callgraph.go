// Hot-set computation: which functions are reachable from the machine-step /
// event-dispatch roots? The walk is a conservative static call graph over the
// typed ASTs: direct calls and method calls with concrete receivers follow
// the resolved object; calls through an interface fan out to every module
// type implementing that interface; any other reference to a module function
// (a method value, a callback argument) marks the referenced function hot as
// well. Over-approximation only ever produces an extra diagnostic, which the
// //lint:allow escape hatch can silence with a reason.
package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// buildHotSet seeds the hot roots from cfg.HotIfaces and cfg.HotFuncs and
// propagates reachability.
func (a *analysis) buildHotSet() {
	a.hot = make(map[*ast.FuncDecl]*pkgInfo)
	var work []*declSite

	add := func(obj *types.Func) {
		site, ok := a.decls[obj]
		if !ok {
			return // not declared in this module
		}
		if _, seen := a.hot[site.decl]; seen {
			return
		}
		a.hot[site.decl] = site.pkg
		work = append(work, site)
	}

	// Roots 1: every method of every module type implementing a hot
	// interface (e.g. each protocol machine's Start/OnMessage/Decided...).
	for _, ifaceName := range a.cfg.HotIfaces {
		iface := a.lookupInterface(ifaceName)
		if iface == nil {
			continue
		}
		for _, p := range a.pkgs {
			scope := p.pkg.Scope()
			for _, name := range scope.Names() {
				tn, ok := scope.Lookup(name).(*types.TypeName)
				if !ok || tn.IsAlias() {
					continue
				}
				named, ok := tn.Type().(*types.Named)
				if !ok {
					continue
				}
				for _, fn := range implMethods(named, iface) {
					add(fn)
				}
			}
		}
	}

	// Roots 2: explicitly named dispatch functions.
	for _, p := range a.pkgs {
		for _, f := range p.files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				if containsString(a.cfg.HotFuncs, declKey(p, fd)) {
					if obj, ok := p.info.Defs[fd.Name].(*types.Func); ok {
						add(obj)
					}
				}
			}
		}
	}

	// Propagate: walk each hot body (function literals included — a literal
	// defined on a hot path runs on it) and mark everything it can reach.
	for len(work) > 0 {
		site := work[len(work)-1]
		work = work[:len(work)-1]
		info := site.pkg.info
		ast.Inspect(site.decl, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if fn, ok := info.Uses[n].(*types.Func); ok {
					add(fn)
				}
			case *ast.SelectorExpr:
				if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal {
					if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
						for _, fn := range a.implementors(iface, n.Sel.Name) {
							add(fn)
						}
					}
				}
			}
			return true
		})
	}
}

// lookupInterface resolves "importpath.Name" to an interface type among the
// loaded module packages.
func (a *analysis) lookupInterface(name string) *types.Interface {
	dot := strings.LastIndex(name, ".")
	if dot < 0 {
		return nil
	}
	pkgPath, typeName := name[:dot], name[dot+1:]
	for _, p := range a.pkgs {
		if p.path != pkgPath {
			continue
		}
		obj := p.pkg.Scope().Lookup(typeName)
		if obj == nil {
			return nil
		}
		iface, _ := obj.Type().Underlying().(*types.Interface)
		return iface
	}
	return nil
}

// implMethods returns named's methods that satisfy iface (empty when named
// does not implement it, even via pointer receiver).
func implMethods(named *types.Named, iface *types.Interface) []*types.Func {
	t := types.Type(named)
	if !types.Implements(t, iface) {
		t = types.NewPointer(named)
		if !types.Implements(t, iface) {
			return nil
		}
	}
	var out []*types.Func
	for i := 0; i < iface.NumMethods(); i++ {
		obj, _, _ := types.LookupFieldOrMethod(t, true, named.Obj().Pkg(), iface.Method(i).Name())
		if fn, ok := obj.(*types.Func); ok {
			out = append(out, fn)
		}
	}
	return out
}

// implementors returns, across the whole module, the named method of every
// type implementing iface: the possible dynamic targets of an interface call.
func (a *analysis) implementors(iface *types.Interface, method string) []*types.Func {
	var out []*types.Func
	for _, p := range a.pkgs {
		scope := p.pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			t := types.Type(named)
			if !types.Implements(t, iface) {
				t = types.NewPointer(named)
				if !types.Implements(t, iface) {
					continue
				}
			}
			obj, _, _ := types.LookupFieldOrMethod(t, true, p.pkg, method)
			if fn, ok := obj.(*types.Func); ok {
				out = append(out, fn)
			}
		}
	}
	return out
}

// declKey renders a function declaration as "importpath.Func" or
// "importpath.Type.Method" (pointer receivers stripped), the HotFuncs form.
func declKey(p *pkgInfo, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return p.path + "." + fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver [T]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		default:
			if id, ok := t.(*ast.Ident); ok {
				return p.path + "." + id.Name + "." + fd.Name.Name
			}
			return p.path + "." + fd.Name.Name
		}
	}
}
