// Metrics-discipline rule. Registry.Counter/Gauge/Histogram/Scoped take the
// registry mutex and hash the metric name; PR 3 fixed a real bug class where
// chains re-resolved six handles per Step. The rule enforces the fix
// globally: resolve handles once at construction, never inside a loop or a
// hot (step/dispatch) body.
package lint

import (
	"go/ast"
	"go/types"
)

// metricsLookups are the Registry methods that resolve or derive handles.
var metricsLookups = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true, "Scoped": true,
}

func (a *analysis) checkMetricsDiscipline() {
	for _, p := range a.pkgs {
		for _, f := range p.files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				_, isHot := a.hot[fd]
				a.checkMetricsIn(p, fd, isHot)
			}
		}
	}
}

func (a *analysis) checkMetricsIn(p *pkgInfo, fd *ast.FuncDecl, hot bool) {
	var walk func(n ast.Node, loopDepth int)
	walk = func(n ast.Node, loopDepth int) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
		case *ast.CallExpr:
			if name, ok := a.metricsLookup(p, n); ok {
				switch {
				case loopDepth > 0:
					a.report(n.Pos(), "metricshandle",
						"metrics handle %s resolved inside a loop; resolve once before the loop and reuse the handle", name)
				case hot:
					a.report(n.Pos(), "metricshandle",
						"metrics handle %s resolved in a hot step/dispatch body (%s); resolve at construction and cache the handle", name, fd.Name.Name)
				}
			}
		}
		depth := loopDepth
		for _, c := range childNodes(n) {
			walk(c, depth)
		}
	}
	walk(fd.Body, 0)
}

// metricsLookup reports whether call resolves a metrics handle on the
// configured registry type.
func (a *analysis) metricsLookup(p *pkgInfo, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !metricsLookups[sel.Sel.Name] {
		return "", false
	}
	fn, ok := p.info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != a.cfg.MetricsPkg {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	return sel.Sel.Name + "(" + firstArgLabel(call) + ")", true
}

// firstArgLabel renders the metric name argument when it is a plain string
// literal, for friendlier diagnostics.
func firstArgLabel(call *ast.CallExpr) string {
	if len(call.Args) == 0 {
		return ""
	}
	if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok {
		return lit.Value
	}
	return "..."
}

// childNodes returns the direct children of n, in source order.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first { // the root itself
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}
