// Seed-hygiene rule. Reproducibility requires that every RNG stream be
// derivable from the experiment description: a constant seed silently reuses
// one stream everywhere (trials stop being independent), and a wall-clock
// seed makes the run unrepeatable. Seeds must flow in from a parameter, a
// config field, or a trial index; mixing in constant stream-separation salt
// alongside such a value is fine.
package lint

import (
	"go/ast"
	"go/types"
)

// seededCtors are the rand constructors whose arguments are seed material.
var seededCtors = map[string]bool{
	"NewPCG": true, "NewChaCha8": true, "NewSource": true,
}

func (a *analysis) checkSeedHygiene() {
	for _, p := range a.pkgs {
		for _, f := range p.files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := stdFuncCall(p.info, call, "math/rand/v2")
				if !ok {
					name, ok = stdFuncCall(p.info, call, "math/rand")
				}
				if !ok || !seededCtors[name] || len(call.Args) == 0 {
					return true
				}
				if wallClockSeed(p.info, call) {
					a.report(call.Pos(), "seedhygiene",
						"rand.%s seeded from the wall clock; runs must be reproducible from an explicit seed", name)
					return true
				}
				allConst := true
				for _, arg := range call.Args {
					if !constLike(p.info, arg) {
						allConst = false
						break
					}
				}
				if allConst {
					a.report(call.Pos(), "seedhygiene",
						"rand.%s seeded with constants only; derive the seed from a parameter, config field, or trial index", name)
				}
				return true
			})
		}
	}
}

// wallClockSeed reports whether any seed argument involves a time-package
// call (time.Now().UnixNano() and friends).
func wallClockSeed(info *types.Info, call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				if fn := calleeFunc(info, c); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" {
					found = true
				}
			}
			return !found
		})
	}
	return found
}

// constLike reports whether e carries no runtime-varying input: constants,
// conversions of constants, and composite literals of constants.
func constLike(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return true
	}
	switch e := e.(type) {
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if !constLike(info, el) {
				return false
			}
		}
		return true
	case *ast.CallExpr:
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return constLike(info, e.Args[0]) // conversion of a constant
		}
	}
	return false
}
