// Determinism rules. The engines promise that a (Config, Seed) pair names
// exactly one execution (DESIGN §7); these analyzers reject the four ways Go
// code most easily breaks that promise: wall clocks, the process-global RNG,
// order-sensitive map iteration, and stray goroutines.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// wallClockFuncs are the time-package functions that read or wait on the wall
// clock. time.Duration arithmetic and time.Unix conversions stay legal.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// globalRandAllowed are the math/rand(/v2) package-level functions that do
// NOT draw from the shared global source: constructors taking an explicit
// seed or source.
var globalRandAllowed = map[string]bool{
	"New": true, "NewPCG": true, "NewChaCha8": true,
	"NewZipf": true, "NewSource": true, "Int64Seed": true,
}

func (a *analysis) checkDeterminism() {
	for _, p := range a.pkgs {
		if !a.isDeterministic(p) {
			continue
		}
		goroutineOK := containsString(a.cfg.GoroutineAllowed, p.path)
		for _, f := range p.files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if name, ok := stdFuncCall(p.info, n, "time"); ok && wallClockFuncs[name] {
						a.report(n.Pos(), "walltime",
							"time.%s reads the wall clock; deterministic code must take time from the simulation clock", name)
					}
					if name, ok := stdFuncCall(p.info, n, "math/rand/v2"); ok && !globalRandAllowed[name] {
						a.report(n.Pos(), "globalrand",
							"rand.%s draws from the process-global RNG; use the run's seeded *rand.Rand", name)
					}
					if name, ok := stdFuncCall(p.info, n, "math/rand"); ok && !globalRandAllowed[name] {
						a.report(n.Pos(), "globalrand",
							"rand.%s draws from the process-global RNG; use the run's seeded *rand.Rand", name)
					}
				case *ast.GoStmt:
					if !goroutineOK {
						a.report(n.Pos(), "goroutine",
							"goroutine spawned outside the blessed parallel entry points; deterministic engines are single-threaded by contract")
					}
				case *ast.RangeStmt:
					a.checkMapRange(p, n)
				}
				return true
			})
		}
	}
}

// checkMapRange flags order-sensitive bodies of map iterations. Go randomizes
// map order per iteration, so anything the body does that depends on visit
// order — sends, appends, folds, last-writer-wins assignments — makes the run
// schedule-dependent. Order-insensitive idioms stay legal: pure scans,
// delete-while-iterating, keyed copies (dst[k] = v), and the sorted-keys
// idiom (collect only the keys, sort, then loop).
func (a *analysis) checkMapRange(p *pkgInfo, rng *ast.RangeStmt) {
	t := p.info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	keyObj := rangeVarObj(p.info, rng.Key)
	valObj := rangeVarObj(p.info, rng.Value)
	loopVar := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := p.info.Uses[id]; obj != nil && (obj == keyObj || obj == valObj) {
					found = true
				}
			}
			return !found
		})
		return found
	}
	outer := func(e ast.Expr) bool {
		id := rootIdent(e)
		if id == nil {
			return false
		}
		obj := p.info.Uses[id]
		if obj == nil {
			obj = p.info.Defs[id]
		}
		if obj == nil {
			return false
		}
		return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
	}

	// keyOnlyAppend recognizes append(xs, k) where k is the range key — the
	// collecting half of the sorted-keys idiom. It is allowed both as a bare
	// call and as the RHS of `keys = append(keys, k)`.
	keyOnlyAppend := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok || !builtinCall(p.info, call, "append") {
			return false
		}
		if call.Ellipsis != token.NoPos || len(call.Args) != 2 {
			return false
		}
		argID, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
		return ok && keyObj != nil && p.info.Uses[argID] == keyObj
	}

	flag := func(pos token.Pos, what string) {
		a.report(pos, "maprange",
			"map iteration order is randomized but the body %s; iterate sorted keys instead (collect keys, sort, then index)", what)
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			flag(rng.Pos(), "sends on a channel in iteration order")
			return false
		case *ast.CallExpr:
			// Builtin: append is order-sensitive unless it collects only
			// the keys (the first half of the sorted-keys idiom).
			if builtinCall(p.info, n, "append") && !keyOnlyAppend(n) {
				flag(n.Pos(), "appends in iteration order")
			}
		case *ast.IncDecStmt:
			if outer(n.X) {
				flag(n.Pos(), "accumulates a fold across iterations")
			}
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			if n.Tok != token.ASSIGN { // compound: +=, -=, |=, ...
				for _, lhs := range n.Lhs {
					if outer(lhs) {
						flag(n.Pos(), "accumulates a fold across iterations")
						break
					}
				}
				return true
			}
			for i, lhs := range n.Lhs {
				// dst[k] = v is a keyed copy: order-insensitive.
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if id, ok := ast.Unparen(ix.Index).(*ast.Ident); ok && keyObj != nil && p.info.Uses[id] == keyObj {
						continue
					}
				}
				rhs := n.Rhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				if keyOnlyAppend(rhs) {
					continue
				}
				if outer(lhs) && loopVar(rhs) {
					flag(n.Pos(), "writes a loop-dependent value to a variable that outlives the loop (last writer wins)")
					break
				}
			}
		}
		return true
	})
}

// rangeVarObj resolves the object bound by a range clause variable.
func rangeVarObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id] // "for k = range m" with an existing variable
}

// rootIdent unwraps selectors, indexes, stars, and parens to the base
// identifier of an assignable expression.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return t
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		default:
			return nil
		}
	}
}
