package lint

import (
	"path/filepath"
	"testing"
)

// BenchmarkLintTree times the analysis over the repository's own module, one
// sub-benchmark per rule family plus the full pass. The module is loaded and
// type-checked once outside the timers, so each sub-benchmark measures only
// its family's walk — the numbers CI compares against the stored baseline to
// catch a rule regressing into super-linear behavior.
func BenchmarkLintTree(b *testing.B) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		b.Fatal(err)
	}
	cfg := ProjectConfig(root)
	pkgs, fset, err := loadModule(cfg.Dir)
	if err != nil {
		b.Fatal(err)
	}
	families := []string{
		"determinism", "hotalloc", "metricshandle", "seedhygiene",
		"locksafety", "msgexhaustive", "quorumarith",
	}
	for _, family := range families {
		b.Run(family, func(b *testing.B) {
			fcfg := cfg
			fcfg.Rules = []string{family}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runLoaded(fcfg, pkgs, fset)
			}
		})
	}
	b.Run("all", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runLoaded(cfg, pkgs, fset)
		}
	})
}
