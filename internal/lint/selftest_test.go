package lint

import (
	"path/filepath"
	"testing"
)

// TestRealTreeClean is the meta-test: the repository's own module must lint
// clean under ProjectConfig, so every invariant the rules encode — no wall
// clocks or global RNG in deterministic packages, no allocation on the
// step/dispatch hot path, cached metric handles, derived seeds — holds in
// the tree that ships the linter. Each remaining exception carries a
// //lint:allow with its justification; a stale one fails this test too.
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(ProjectConfig(root))
	if err != nil {
		t.Fatalf("Run(ProjectConfig): %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
