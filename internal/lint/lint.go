// Package lint is consensuslint: a stdlib-only static-analysis suite that
// enforces this repository's execution-model invariants at compile time.
//
// The simulator's correctness argument (DESIGN §7, EXPERIMENTS.md) rests on
// every run being a pure function of (Config, Seed): goldens, ensemble
// merges, and the workers=1..N determinism guarantee all assume it. The
// zero-allocation hot path (DESIGN §6) and the cached-metric-handle
// discipline are equally load-bearing for throughput. Those invariants were
// previously guarded only by golden files and benchmarks, which catch a
// violation after it has corrupted a run; the analyzers here reject the
// violating code before it compiles into an experiment.
//
// Rule families (each finding is tagged [rule]):
//
//   - determinism: walltime, globalrand, maprange, goroutine — deterministic
//     packages must not read wall clocks, draw from the process-global RNG,
//     iterate maps in an order-sensitive way, or spawn goroutines outside
//     the blessed parallel entry points.
//   - hot-path allocations: hotalloc — functions reachable from the
//     machine-step/event-dispatch call graph must not call fmt formatters,
//     concatenate strings, box integers into interfaces, capture closures,
//     or allocate maps.
//   - metrics discipline: metricshandle — metrics.Registry handle resolution
//     (Counter/Gauge/Histogram/Scoped) must happen once at construction, not
//     inside loops or step bodies.
//   - seed hygiene: seedhygiene — RNG constructors must derive their seeds
//     from a parameter, field, or trial index, never a literal or the wall
//     clock.
//   - lock safety: lockblock, lockorder, lockreturn — in the packages with
//     real concurrency, no blocking operation may run while a mutex is held,
//     any two mutexes must be acquired in one global order, and no path may
//     return with a lock held unless a defer guards it (locksafety.go).
//   - message exhaustiveness: msgexhaustive — every protocol machine's
//     dispatch must take an explicit position (handle or named ignore) on
//     every msg.Kind constant, so adding a kind fails lint until every
//     machine decides (msgrule.go).
//   - quorum arithmetic: quorumarith — consensus-threshold arithmetic on n
//     and k belongs in internal/quorum; open-coded (n+k)/2, 2*k+1, or n/2
//     comparisons elsewhere are findings (quorumrule.go).
//
// A finding may be suppressed with a directive on the same line or the line
// immediately above:
//
//	//lint:allow <rule> <reason>
//
// The reason is mandatory and malformed or unused directives are themselves
// findings (rule "allow"), so the escape hatch cannot rot silently.
//
// The implementation is stdlib-only by design (go/parser + go/types with the
// source importer); it does not depend on golang.org/x/tools.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic. File is slash-separated and relative to the
// module root, so output is byte-identical regardless of where the module is
// checked out.
type Finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// String renders the finding in the canonical "file:line: [rule] message"
// form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Rule, f.Message)
}

// Config selects the module to analyze and parameterizes the project-specific
// rules, so the same analyzers run against both the real tree and the test
// fixtures.
type Config struct {
	// Dir is the module root (the directory containing go.mod).
	Dir string
	// DeterministicPkgs lists import paths subject to the determinism rules
	// (walltime, globalrand, maprange, goroutine).
	DeterministicPkgs []string
	// GoroutineAllowed lists deterministic packages that are nevertheless
	// blessed parallel entry points and may spawn goroutines.
	GoroutineAllowed []string
	// MetricsPkg is the import path of the metrics registry package whose
	// Counter/Gauge/Histogram/Scoped lookups the metricshandle rule tracks.
	MetricsPkg string
	// HotIfaces lists interfaces ("importpath.Name") whose implementing
	// methods are hot-path roots (the protocol Machine contract).
	HotIfaces []string
	// HotFuncs lists additional hot-path roots as "importpath.Func" or
	// "importpath.Type.Method" (receiver base type, pointer stripped).
	HotFuncs []string
	// LockPkgs lists import paths subject to the lock-safety rules
	// (lockblock, lockorder, lockreturn): the packages with real mutexes.
	LockPkgs []string
	// BlockingFuncs lists functions treated as blocking operations by the
	// lockblock rule, as "importpath.Func" or "importpath.Type.Method"
	// (interface methods included — e.g. a transport's Send, which may
	// block on backpressure).
	BlockingFuncs []string
	// MsgKindType is the fully qualified named type ("importpath.Name")
	// whose constants every dispatch root must cover (msgexhaustive).
	MsgKindType string
	// DispatchIfaces lists dispatch roots as "importpath.Iface.Method":
	// that method of every module type implementing the interface.
	DispatchIfaces []string
	// DispatchFuncs lists additional dispatch roots in the HotFuncs form.
	DispatchFuncs []string
	// QuorumAllowedPkgs lists import paths where threshold arithmetic on
	// n and k is audited and therefore legal (quorumarith).
	QuorumAllowedPkgs []string
	// QuorumAllowedFuncs lists individual functions (HotFuncs form) exempt
	// from quorumarith — sizing planners that own their arithmetic.
	QuorumAllowedFuncs []string
	// Rules optionally restricts the run to the named rule families
	// ("determinism", "hotalloc", "metricshandle", "seedhygiene",
	// "locksafety", "msgexhaustive", "quorumarith"). Empty means all. Used
	// by the per-family benchmarks; the CLI always runs everything.
	Rules []string
}

// ProjectConfig returns the configuration for this repository's module
// rooted at dir.
func ProjectConfig(dir string) Config {
	const mod = "resilient"
	det := []string{
		mod + "/internal/runtime",
		mod + "/internal/failstop",
		mod + "/internal/malicious",
		mod + "/internal/echo",
		mod + "/internal/benor",
		mod + "/internal/mc",
		mod + "/internal/sweep",
		mod + "/internal/experiments",
		mod + "/internal/sched",
		mod + "/internal/policy",
		mod + "/internal/sample",
		// The registry and the coin sources sit under every replayable run:
		// a wall-clock read or map iteration there would leak into all of
		// them.
		mod + "/internal/proto",
		mod + "/internal/coin",
	}
	return Config{
		Dir:               dir,
		DeterministicPkgs: det,
		GoroutineAllowed: []string{
			mod + "/internal/sweep",
			mod + "/internal/mc",
		},
		MetricsPkg: mod + "/internal/metrics",
		HotIfaces: []string{
			mod + "/internal/core.Machine",
			// Link policies run once per message send on every engine.
			mod + "/internal/policy.LinkPolicy",
			// Coin sources flip once per randomized-protocol coin round on
			// every machine; the shared source is also read concurrently
			// from live-engine goroutines, so it must stay allocation-free.
			mod + "/internal/coin.Source",
		},
		HotFuncs: []string{
			// The discrete-event dispatch loop: deliver/dispatch/enqueue and
			// the event queue follow by static calls.
			mod + "/internal/runtime.runner.loop",
			// The Monte-Carlo per-phase chain steps. The lowercase inner
			// step is the per-phase unit: AbsorptionRun/DecisionRun resolve
			// metric handles once (atomic-cached) and then call step in the
			// phase loop, so re-introducing per-phase handle resolution or
			// allocation inside step is exactly what must be caught.
			mod + "/internal/mc.FailStop.step",
			mod + "/internal/mc.Malicious.step",
			// The TCP transport's per-message paths: send covers the
			// encode/enqueue/flush chain (appendFrame, enqueueLocked,
			// writeLoop, flushBatch follow by static calls), readLoop covers
			// the streaming decode/demux chain. Cold subpaths (dial errors,
			// misuse errors) carry lint:allow annotations.
			mod + "/internal/netxport.Endpoint.send",
			mod + "/internal/netxport.Endpoint.readLoop",
			// The replicated log's per-slot commit/batch path: recordSlot
			// folds every decided slot into the report and the metrics
			// registry, batchFrames packs each batch into wire chunks; both
			// run once per slot in the pipelined commit loop.
			mod + ".logRun.recordSlot",
			mod + ".batchFrames",
			// The sampled broadcast's per-message delivery loop: Observe is
			// the per-echo tally (also the malicious machine's sampled echo
			// stage), trial replays whole broadcasts inside the MC ensemble.
			mod + "/internal/sample.Tracker.Observe",
			mod + "/internal/mc.Broadcast.trial",
		},
		LockPkgs: []string{
			// The packages with real mutexes: the TCP transport's per-peer
			// links and endpoint table, the livenet policy layer's delivery
			// timers, the in-memory transports, the metrics registry, the
			// trace buffer, and the sweep error latch.
			mod + "/internal/netxport",
			mod + "/internal/livenet",
			mod + "/internal/transport",
			mod + "/internal/metrics",
			mod + "/internal/trace",
			mod + "/internal/sweep",
		},
		BlockingFuncs: []string{
			// transport.Conn sends may block on backpressure (netxport's
			// queue cap) and receives always block; neither belongs inside a
			// critical section.
			mod + "/internal/transport.Conn.Send",
			mod + "/internal/transport.Conn.Recv",
		},
		MsgKindType: mod + "/internal/msg.Kind",
		DispatchIfaces: []string{
			// Every protocol machine's message dispatch must cover the wire
			// kinds; forwarding wrappers that never read Kind are exempt.
			mod + "/internal/core.Machine.OnMessage",
		},
		QuorumAllowedPkgs: []string{
			// quorum owns the audited threshold helpers; dist derives its
			// view distributions from the same bounds.
			mod + "/internal/quorum",
			mod + "/internal/dist",
		},
		QuorumAllowedFuncs: []string{
			// The sampled-broadcast planner sizes its samples from the
			// ε-tail analysis (arXiv 1908.01738), not the Figure-2 quorums;
			// its arithmetic is audited in plan_test.go against the paper.
			mod + "/internal/sample.NewPlan",
			mod + "/internal/sample.sizeStage",
			mod + "/internal/sample.minSafetyThreshold",
			mod + "/internal/sample.Plan.Degenerate",
			mod + "/internal/sample.Plan.EchoFailure",
		},
	}
}

// Run loads every package in the module at cfg.Dir and returns all findings,
// sorted by (file, line, col, rule, message). A nil slice with a nil error
// means the tree is clean.
func Run(cfg Config) ([]Finding, error) {
	pkgs, fset, err := loadModule(cfg.Dir)
	if err != nil {
		return nil, err
	}
	return runLoaded(cfg, pkgs, fset), nil
}

// runLoaded analyzes an already-loaded module. Splitting the load from the
// analysis lets BenchmarkLintTree time each rule family without re-parsing
// and re-type-checking the tree per family.
func runLoaded(cfg Config, pkgs []*pkgInfo, fset *token.FileSet) []Finding {
	a := &analysis{cfg: cfg, fset: fset, pkgs: pkgs}
	a.buildIndex()
	a.buildHotSet()
	if a.ruleOn("determinism") {
		a.checkDeterminism()
	}
	if a.ruleOn("hotalloc") {
		a.checkHotAllocs()
	}
	if a.ruleOn("metricshandle") {
		a.checkMetricsDiscipline()
	}
	if a.ruleOn("seedhygiene") {
		a.checkSeedHygiene()
	}
	if a.ruleOn("locksafety") {
		a.checkLockSafety()
	}
	if a.ruleOn("msgexhaustive") {
		a.checkMsgExhaustive()
	}
	if a.ruleOn("quorumarith") {
		a.checkQuorumArith()
	}
	a.applyAllowDirectives()
	sortFindings(a.findings)
	return a.findings
}

// ruleOn reports whether a rule family runs under cfg.Rules (empty = all).
func (a *analysis) ruleOn(family string) bool {
	return len(a.cfg.Rules) == 0 || containsString(a.cfg.Rules, family)
}

// WriteJSON renders findings as indented JSON ("[]" when empty) followed by
// a newline; the encoding is byte-stable for identical findings.
func WriteJSON(findings []Finding) ([]byte, error) {
	if findings == nil {
		findings = []Finding{}
	}
	data, err := json.MarshalIndent(findings, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteGitHub renders findings as GitHub Actions workflow commands, one
// "::error" annotation per finding, so a CI step's findings attach inline to
// the offending lines of a pull request. Empty findings render nothing.
func WriteGitHub(findings []Finding) []byte {
	var b strings.Builder
	for _, f := range findings {
		fmt.Fprintf(&b, "::error file=%s,line=%d,col=%d,title=consensuslint %s::%s\n",
			f.File, f.Line, f.Col, f.Rule, githubEscape(f.Message))
	}
	return []byte(b.String())
}

// githubEscape encodes the characters the workflow-command grammar reserves
// in message data.
func githubEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// analysis carries the loaded module and accumulates findings.
type analysis struct {
	cfg      Config
	fset     *token.FileSet
	pkgs     []*pkgInfo
	decls    map[*types.Func]*declSite
	hot      map[*ast.FuncDecl]*pkgInfo
	findings []Finding
}

// declSite locates one module-level function declaration.
type declSite struct {
	pkg  *pkgInfo
	decl *ast.FuncDecl
}

func (a *analysis) report(pos token.Pos, rule, format string, args ...interface{}) {
	p := a.fset.Position(pos)
	file := p.Filename
	if rel, ok := relPath(a.cfg.Dir, file); ok {
		file = rel
	}
	a.findings = append(a.findings, Finding{
		File:    file,
		Line:    p.Line,
		Col:     p.Column,
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// buildIndex maps every module function object to its declaration.
func (a *analysis) buildIndex() {
	a.decls = make(map[*types.Func]*declSite)
	for _, p := range a.pkgs {
		for _, f := range p.files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				if obj, ok := p.info.Defs[fd.Name].(*types.Func); ok {
					a.decls[obj] = &declSite{pkg: p, decl: fd}
				}
			}
		}
	}
}

// isDeterministic reports whether the package is subject to the determinism
// rule family.
func (a *analysis) isDeterministic(p *pkgInfo) bool {
	return containsString(a.cfg.DeterministicPkgs, p.path)
}

func containsString(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// calleeFunc resolves the function object a call expression invokes, or nil
// for builtins, conversions, and calls through plain function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// stdFuncCall reports whether call invokes pkgPath.name (a package-level
// function of an imported package).
func stdFuncCall(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", false
	}
	return fn.Name(), true
}

// builtinCall reports whether the call invokes the named builtin. Builtins
// resolve to *types.Builtin in Uses (or to nothing in degenerate files),
// never to a package-level object, so a plain nil test misses them.
func builtinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		return true
	}
	_, ok = obj.(*types.Builtin)
	return ok
}

// relPath returns file relative to root in slash form.
func relPath(root, file string) (string, bool) {
	root = strings.TrimSuffix(root, "/")
	if root == "" || root == "." {
		return strings.TrimPrefix(file, "./"), true
	}
	if strings.HasPrefix(file, root+"/") {
		return strings.TrimPrefix(file, root+"/"), true
	}
	return file, false
}
