// The //lint:allow escape hatch.
//
// Grammar, one directive per comment line:
//
//	//lint:allow <rule> <reason...>
//
// placed either on the offending line or on the line directly above it. The
// reason is mandatory: an allow is a reviewed, justified exception, and the
// justification travels with the code. A directive that is malformed or that
// suppresses nothing is itself reported under rule "allow", so stale
// exceptions surface instead of rotting.
package lint

import (
	"strings"
)

const allowPrefix = "//lint:allow"

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	file   string
	line   int
	rule   string
	reason string
	used   bool
}

// applyAllowDirectives drops findings covered by well-formed directives and
// appends findings for malformed or unused ones.
func (a *analysis) applyAllowDirectives() {
	var directives []*allowDirective
	for _, p := range a.pkgs {
		for _, f := range p.files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, allowPrefix) {
						continue
					}
					pos := a.fset.Position(c.Pos())
					rest := strings.TrimPrefix(c.Text, allowPrefix)
					if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
						continue // e.g. //lint:allowance — not ours
					}
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						a.report(c.Pos(), "allow",
							`malformed directive %q: want "//lint:allow <rule> <reason>"`, c.Text)
						continue
					}
					file := pos.Filename
					if rel, ok := relPath(a.cfg.Dir, file); ok {
						file = rel
					}
					directives = append(directives, &allowDirective{
						file:   file,
						line:   pos.Line,
						rule:   fields[0],
						reason: strings.Join(fields[1:], " "),
					})
				}
			}
		}
	}
	if len(directives) == 0 {
		return
	}
	kept := a.findings[:0]
	for _, f := range a.findings {
		if d := matchDirective(directives, f); d != nil {
			d.used = true
			continue
		}
		kept = append(kept, f)
	}
	a.findings = kept
	for _, d := range directives {
		if !d.used {
			a.findings = append(a.findings, Finding{
				File: d.file, Line: d.line, Col: 1, Rule: "allow",
				Message: "//lint:allow " + d.rule + " suppresses nothing here; delete the stale directive",
			})
		}
	}
}

// matchDirective finds a directive covering the finding: same file, same
// rule, and on the finding's line or the line above it.
func matchDirective(ds []*allowDirective, f Finding) *allowDirective {
	for _, d := range ds {
		if d.file == f.File && d.rule == f.Rule && (d.line == f.Line || d.line == f.Line-1) {
			return d
		}
	}
	return nil
}
