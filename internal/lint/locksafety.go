// Lock-safety rules. PRs 5-8 made the live half of the repository genuinely
// concurrent — per-peer write locks with coalescing writers in netxport,
// wall-clock delivery timers in livenet, striped registries in metrics — and
// the invariants that keep it deadlock- and wedge-free are conventions the
// compiler cannot see: never block on I/O or a channel while a mutex is
// held, acquire any two mutexes in one global order, and never leave a
// function with a lock still held unless a defer guards it.
//
// Three rules enforce those conventions over every package listed in
// Config.LockPkgs:
//
//   - lockblock: a blocking operation (channel send/receive, select without
//     default, time.Sleep, net dial/read/write, WaitGroup.Wait, io.ReadFull
//     and friends, or a call that transitively reaches one) executes while a
//     sync.Mutex/RWMutex is held. sync.Cond.Wait is exempt — it releases the
//     mutex while waiting and is the blessed backpressure idiom.
//   - lockorder: two lock classes are acquired in opposite orders somewhere
//     in the package (the classic AB/BA deadlock shape), or a class is
//     re-acquired while an instance of it is already held (sync mutexes are
//     not reentrant).
//   - lockreturn: a path returns with a lock still held and no defer
//     guarding its release.
//
// The analysis is a per-function held-set walk over the typed AST: lock
// classes are identified by (struct type, field name) for mutex fields and
// by object identity for mutex variables; branches are walked with copies of
// the held set and merged by intersection (a lock is "held" after a branch
// only if every non-terminating arm holds it), so only must-hold facts
// produce findings. Function literals are walked as independent roots with
// an empty held set — goroutine bodies and stored callbacks run on their own
// stacks — and calls reached through `go` or `defer` statements do not
// propagate blocking or acquisition facts. Blocking and lock-acquisition
// summaries propagate transitively over the module's static call graph, so a
// helper that hides a net.Dial three calls deep still triggers lockblock at
// the outermost call made under a lock.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// blockingNetFuncPrefixes match package-level net functions that perform
// network I/O (net.Dial, net.DialTimeout, net.Listen, net.LookupHost, ...).
// Pure helpers (JoinHostPort, ParseIP) do not block.
var blockingNetFuncPrefixes = []string{"Dial", "Listen", "Lookup", "Resolve"}

// blockingNetMethods are methods on net package types that perform I/O.
var blockingNetMethods = map[string]bool{
	"Read": true, "Write": true, "Accept": true, "AcceptTCP": true,
	"ReadFrom": true, "WriteTo": true, "Dial": true, "DialContext": true,
}

// blockingIOFuncs are io package helpers that block until their reader or
// writer does.
var blockingIOFuncs = map[string]bool{
	"ReadFull": true, "ReadAll": true, "Copy": true, "CopyN": true, "CopyBuffer": true,
}

// lockOp classifies one sync mutex method call.
type lockOp int

const (
	opNone lockOp = iota
	opLock
	opUnlock
)

// heldLock is one mutex class currently held on the walked path.
type heldLock struct {
	class   string    // lock class key, e.g. "peerLink.mu"
	pos     token.Pos // acquisition site
	guarded bool      // a defer releases it
}

// heldSet is the ordered set of locks held on the current path.
type heldSet []heldLock

func (h heldSet) clone() heldSet { return append(heldSet(nil), h...) }

func (h heldSet) index(class string) int {
	for i := range h {
		if h[i].class == class {
			return i
		}
	}
	return -1
}

// intersect keeps only the locks held in both sets (by class), preserving
// h's order and merging the guarded flag conservatively (guarded only if
// guarded on both arms).
func intersect(a, b heldSet) heldSet {
	var out heldSet
	for _, l := range a {
		if j := b.index(l.class); j >= 0 {
			l.guarded = l.guarded && b[j].guarded
			out = append(out, l)
		}
	}
	return out
}

// funcFacts is the per-function summary used for transitive propagation.
type funcFacts struct {
	mayBlock bool
	blockVia string          // human label for the ultimate blocking operation
	acquires map[string]bool // lock classes the function may acquire
}

// lockEdge records the first site at which class `after` was acquired while
// `before` was held.
type lockEdge struct {
	pos token.Pos
	fn  string // enclosing function name, for the diagnostic
}

// lockAnalysis carries the package-local state of one locksafety pass.
type lockAnalysis struct {
	a     *analysis
	p     *pkgInfo
	facts map[*types.Func]*funcFacts
	edges map[[2]string]lockEdge
}

// checkLockSafety runs the three lock rules over every configured package.
func (a *analysis) checkLockSafety() {
	facts := a.buildLockFacts()
	for _, p := range a.pkgs {
		if !containsString(a.cfg.LockPkgs, p.path) {
			continue
		}
		la := &lockAnalysis{a: a, p: p, facts: facts, edges: map[[2]string]lockEdge{}}
		for _, root := range la.roots() {
			la.walkRoot(root)
		}
		la.reportOrderConflicts()
	}
}

// lockRoot is one independently executing body: a declared function or a
// function literal (goroutine body, timer callback, stored closure).
type lockRoot struct {
	name string
	body *ast.BlockStmt
}

// roots lists every function declaration and every function literal in the
// package, in source order. Literals start with an empty held set: they run
// on their own stack, not their creator's.
func (la *lockAnalysis) roots() []lockRoot {
	var out []lockRoot
	for _, f := range la.p.files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, lockRoot{name: fd.Name.Name, body: fd.Body})
			name := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					out = append(out, lockRoot{name: name + " (func literal)", body: lit.Body})
				}
				return true
			})
		}
	}
	return out
}

func (la *lockAnalysis) walkRoot(root lockRoot) {
	la.walkStmts(root.body.List, nil, root.name)
}

// walkStmts walks a statement list with the given held set, returning the
// held set at the fall-through exit and whether every path terminated
// (returned) before reaching it.
func (la *lockAnalysis) walkStmts(stmts []ast.Stmt, held heldSet, fn string) (heldSet, bool) {
	for _, s := range stmts {
		var term bool
		held, term = la.walkStmt(s, held, fn)
		if term {
			return held, true
		}
	}
	return held, false
}

func (la *lockAnalysis) walkStmt(s ast.Stmt, held heldSet, fn string) (heldSet, bool) {
	switch s := s.(type) {
	case nil:
		return held, false
	case *ast.BlockStmt:
		return la.walkStmts(s.List, held, fn)
	case *ast.LabeledStmt:
		return la.walkStmt(s.Stmt, held, fn)
	case *ast.ExprStmt:
		return la.walkExpr(s.X, held, fn), false
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			held = la.walkExpr(r, held, fn)
		}
		for _, l := range s.Lhs {
			held = la.walkExpr(l, held, fn)
		}
		return held, false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						held = la.walkExpr(v, held, fn)
					}
				}
			}
		}
		return held, false
	case *ast.IncDecStmt:
		return la.walkExpr(s.X, held, fn), false
	case *ast.SendStmt:
		held = la.walkExpr(s.Chan, held, fn)
		held = la.walkExpr(s.Value, held, fn)
		la.blockWhileHeld(s.Arrow, held, fn, "channel send")
		return held, false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			held = la.walkExpr(r, held, fn)
		}
		la.checkReturn(s.Return, held, fn)
		return held, true
	case *ast.BranchStmt:
		// break/continue/goto leave the current straight-line path; treating
		// them as terminators keeps the post-branch merge from intersecting
		// with a path that jumped away.
		return held, true
	case *ast.DeferStmt:
		la.applyDeferGuards(s.Call, held)
		return held, false
	case *ast.GoStmt:
		// The spawned body runs on its own stack (walked as a separate root);
		// evaluate only the call operands, which run on this path.
		for _, arg := range s.Call.Args {
			held = la.walkExpr(arg, held, fn)
		}
		return held, false
	case *ast.IfStmt:
		held, _ = la.walkStmt(s.Init, held, fn)
		held = la.walkExpr(s.Cond, held, fn)
		thenHeld, thenTerm := la.walkStmts(s.Body.List, held.clone(), fn)
		elseHeld, elseTerm := held, false
		if s.Else != nil {
			elseHeld, elseTerm = la.walkStmt(s.Else, held.clone(), fn)
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseHeld, false
		case elseTerm:
			return thenHeld, false
		default:
			return intersect(thenHeld, elseHeld), false
		}
	case *ast.ForStmt:
		held, _ = la.walkStmt(s.Init, held, fn)
		if s.Cond != nil {
			held = la.walkExpr(s.Cond, held, fn)
		}
		// The body is walked once for its own findings; lock-state changes
		// inside a loop body are balanced per iteration in well-formed code,
		// so the post-loop state is the pre-loop state (must-hold
		// approximation).
		la.walkStmts(s.Body.List, held.clone(), fn)
		if s.Post != nil {
			la.walkStmt(s.Post, held.clone(), fn)
		}
		return held, false
	case *ast.RangeStmt:
		held = la.walkExpr(s.X, held, fn)
		if t := la.p.info.TypeOf(s.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				la.blockWhileHeld(s.Range, held, fn, "range over a channel")
			}
		}
		la.walkStmts(s.Body.List, held.clone(), fn)
		return held, false
	case *ast.SwitchStmt:
		held, _ = la.walkStmt(s.Init, held, fn)
		if s.Tag != nil {
			held = la.walkExpr(s.Tag, held, fn)
		}
		return la.walkCases(s.Body, held, fn, hasDefaultCase(s.Body))
	case *ast.TypeSwitchStmt:
		held, _ = la.walkStmt(s.Init, held, fn)
		held, _ = la.walkStmt(s.Assign, held, fn)
		return la.walkCases(s.Body, held, fn, hasDefaultCase(s.Body))
	case *ast.SelectStmt:
		if !hasDefaultComm(s.Body) {
			la.blockWhileHeld(s.Select, held, fn, "select without default")
		}
		return la.walkCases(s.Body, held, fn, true)
	default:
		return held, false
	}
}

// walkCases merges the arms of a switch/type-switch/select body. An absent
// default arm means the pre-state itself is a possible exit, so it joins the
// intersection.
func (la *lockAnalysis) walkCases(body *ast.BlockStmt, held heldSet, fn string, hasDefault bool) (heldSet, bool) {
	type arm struct {
		held heldSet
		term bool
	}
	var arms []arm
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			h := held.clone()
			for _, e := range c.List {
				h = la.walkExpr(e, h, fn)
			}
			h, t := la.walkStmts(c.Body, h, fn)
			arms = append(arms, arm{h, t})
		case *ast.CommClause:
			h := held.clone()
			if c.Comm != nil {
				// The comm op itself executes after selection; channel
				// blocking is reported once at the select, not per arm.
				if es, ok := c.Comm.(*ast.ExprStmt); ok {
					if ue, ok := es.X.(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
						h = la.walkExpr(ue.X, h, fn)
					}
				}
			}
			h, t := la.walkStmts(c.Body, h, fn)
			arms = append(arms, arm{h, t})
		}
	}
	if !hasDefault {
		arms = append(arms, arm{held, false})
	}
	var out heldSet
	first := true
	allTerm := len(arms) > 0
	for _, a := range arms {
		if a.term {
			continue
		}
		allTerm = false
		if first {
			out, first = a.held, false
		} else {
			out = intersect(out, a.held)
		}
	}
	if allTerm {
		return held, true
	}
	return out, false
}

// walkExpr walks an expression for lock operations, blocking operations, and
// calls, returning the updated held set. Function literals are skipped: they
// are separate roots.
func (la *lockAnalysis) walkExpr(e ast.Expr, held heldSet, fn string) heldSet {
	switch e := e.(type) {
	case nil:
		return held
	case *ast.FuncLit:
		return held
	case *ast.UnaryExpr:
		held = la.walkExpr(e.X, held, fn)
		if e.Op == token.ARROW {
			la.blockWhileHeld(e.OpPos, held, fn, "channel receive")
		}
		return held
	case *ast.CallExpr:
		held = la.walkExpr(e.Fun, held, fn)
		for _, arg := range e.Args {
			held = la.walkExpr(arg, held, fn)
		}
		return la.applyCall(e, held, fn)
	case *ast.BinaryExpr:
		held = la.walkExpr(e.X, held, fn)
		return la.walkExpr(e.Y, held, fn)
	case *ast.ParenExpr:
		return la.walkExpr(e.X, held, fn)
	case *ast.SelectorExpr:
		return la.walkExpr(e.X, held, fn)
	case *ast.IndexExpr:
		held = la.walkExpr(e.X, held, fn)
		return la.walkExpr(e.Index, held, fn)
	case *ast.IndexListExpr:
		held = la.walkExpr(e.X, held, fn)
		for _, ix := range e.Indices {
			held = la.walkExpr(ix, held, fn)
		}
		return held
	case *ast.SliceExpr:
		held = la.walkExpr(e.X, held, fn)
		held = la.walkExpr(e.Low, held, fn)
		held = la.walkExpr(e.High, held, fn)
		return la.walkExpr(e.Max, held, fn)
	case *ast.StarExpr:
		return la.walkExpr(e.X, held, fn)
	case *ast.TypeAssertExpr:
		return la.walkExpr(e.X, held, fn)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			held = la.walkExpr(el, held, fn)
		}
		return held
	case *ast.KeyValueExpr:
		held = la.walkExpr(e.Key, held, fn)
		return la.walkExpr(e.Value, held, fn)
	default:
		return held
	}
}

// applyCall classifies one call on the walked path: a mutex operation
// updates the held set, a blocking operation reports lockblock, and a module
// call applies its transitive summary.
func (la *lockAnalysis) applyCall(call *ast.CallExpr, held heldSet, fn string) heldSet {
	info := la.p.info

	if op, class, ok := la.mutexOp(call); ok {
		switch op {
		case opLock:
			la.recordAcquire(call.Pos(), class, held, fn)
			if held.index(class) < 0 {
				held = append(held.clone(), heldLock{class: class, pos: call.Pos()})
			}
		case opUnlock:
			if i := held.index(class); i >= 0 {
				held = append(held[:i:i], held[i+1:]...)
			}
		}
		return held
	}

	callee := calleeFunc(info, call)
	if callee == nil {
		return held
	}
	if label, blocks := la.blockingCall(callee); blocks {
		la.blockWhileHeld(call.Pos(), held, fn, label)
		return held
	}
	if facts, ok := la.facts[callee]; ok {
		if facts.mayBlock {
			la.blockWhileHeld(call.Pos(), held, fn,
				fmt.Sprintf("call to %s (reaches %s)", callee.Name(), facts.blockVia))
		}
		for _, class := range sortedKeys(facts.acquires) {
			la.recordAcquire(call.Pos(), class, held, fn)
		}
	}
	return held
}

// recordAcquire adds ordering edges held -> class and flags re-acquisition
// of an already-held class.
func (la *lockAnalysis) recordAcquire(pos token.Pos, class string, held heldSet, fn string) {
	for _, h := range held {
		if h.class == class {
			la.a.report(pos, "lockorder",
				"%s acquired in %s while an instance of %s is already held (line %d); sync mutexes are not reentrant",
				class, fn, class, la.a.fset.Position(h.pos).Line)
			continue
		}
		key := [2]string{h.class, class}
		if _, seen := la.edges[key]; !seen {
			la.edges[key] = lockEdge{pos: pos, fn: fn}
		}
	}
}

// blockWhileHeld reports lockblock when the held set is non-empty.
func (la *lockAnalysis) blockWhileHeld(pos token.Pos, held heldSet, fn, what string) {
	if len(held) == 0 {
		return
	}
	names := make([]string, len(held))
	for i, h := range held {
		names[i] = h.class
	}
	sort.Strings(names)
	la.a.report(pos, "lockblock",
		"%s in %s while %s is held; release the lock before blocking or move the operation out of the critical section",
		what, fn, strings.Join(names, " and "))
}

// checkReturn reports lockreturn for held, non-defer-guarded locks.
func (la *lockAnalysis) checkReturn(pos token.Pos, held heldSet, fn string) {
	for _, h := range held {
		if h.guarded {
			continue
		}
		la.a.report(pos, "lockreturn",
			"return from %s with %s still held (locked at line %d and no defer releases it); unlock on every path or defer the unlock",
			fn, h.class, la.a.fset.Position(h.pos).Line)
	}
}

// applyDeferGuards marks locks released by a defer: either a direct
// `defer x.mu.Unlock()` or a deferred closure containing unlock calls.
func (la *lockAnalysis) applyDeferGuards(call *ast.CallExpr, held heldSet) {
	guard := func(c *ast.CallExpr) {
		if op, class, ok := la.mutexOp(c); ok && op == opUnlock {
			if i := held.index(class); i >= 0 {
				held[i].guarded = true
			}
		}
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				guard(c)
			}
			return true
		})
		return
	}
	guard(call)
}

// reportOrderConflicts emits lockorder findings for every class pair acquired
// in both orders within the package.
func (la *lockAnalysis) reportOrderConflicts() {
	var keys [][2]string
	for k := range la.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		rev := [2]string{k[1], k[0]}
		other, conflict := la.edges[rev]
		if !conflict || k[0] > k[1] {
			continue // report each conflicting pair once, from its lexically first direction
		}
		e := la.edges[k]
		la.a.report(e.pos, "lockorder",
			"%s acquired while %s is held in %s, but %s acquires them in the opposite order (line %d); pick one global order",
			k[1], k[0], e.fn, other.fn, la.a.fset.Position(other.pos).Line)
		la.a.report(other.pos, "lockorder",
			"%s acquired while %s is held in %s, but %s acquires them in the opposite order (line %d); pick one global order",
			k[0], k[1], other.fn, e.fn, la.a.fset.Position(e.pos).Line)
	}
}

// mutexOp classifies a call as a sync.Mutex/RWMutex lock or unlock and
// resolves the lock class it targets.
func (la *lockAnalysis) mutexOp(call *ast.CallExpr) (lockOp, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return opNone, "", false
	}
	fn, ok := la.p.info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return opNone, "", false
	}
	recv := recvTypeName(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return opNone, "", false
	}
	var op lockOp
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		op = opLock
	case "Unlock", "RUnlock":
		op = opUnlock
	default:
		return opNone, "", false
	}
	class, ok := la.lockClass(sel.X)
	if !ok {
		return opNone, "", false
	}
	return op, class, true
}

// lockClass names the mutex an expression denotes: "OwnerType.field" for a
// struct field, "pkgvar <name>" for a package-level variable, "<name>" for a
// local. Field classes are shared across instances of the owning type —
// coarse, but exactly the granularity a lock-ordering convention is written
// at.
func (la *lockAnalysis) lockClass(e ast.Expr) (string, bool) {
	info := la.p.info
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		obj, ok := info.Uses[e.Sel].(*types.Var)
		if !ok {
			return "", false
		}
		if obj.IsField() {
			owner := ""
			if t := info.TypeOf(e.X); t != nil {
				owner = namedTypeName(t)
			}
			if owner == "" {
				return "", false
			}
			return owner + "." + obj.Name(), true
		}
		return obj.Name(), true // package-level var accessed via pkg selector
	case *ast.Ident:
		obj, ok := info.Uses[e].(*types.Var)
		if !ok {
			return "", false
		}
		return obj.Name(), true
	}
	return "", false
}

// blockingCall reports whether a resolved callee is an inherently blocking
// standard-library operation or a configured blocking function, with a label
// for the diagnostic.
func (la *lockAnalysis) blockingCall(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	name := fn.Name()
	recv := recvTypeName(fn)
	switch pkg.Path() {
	case "time":
		if recv == "" && name == "Sleep" {
			return "time.Sleep", true
		}
	case "net":
		if recv == "" {
			for _, prefix := range blockingNetFuncPrefixes {
				if strings.HasPrefix(name, prefix) {
					return "net." + name, true
				}
			}
		} else if blockingNetMethods[name] {
			return "net." + recv + "." + name, true
		}
	case "io":
		if recv == "" && blockingIOFuncs[name] {
			return "io." + name, true
		}
	case "sync":
		if recv == "WaitGroup" && name == "Wait" {
			return "sync.WaitGroup.Wait", true
		}
	}
	if containsString(la.a.cfg.BlockingFuncs, funcKey(fn)) {
		return funcKey(fn), true
	}
	return "", false
}

// buildLockFacts computes, for every module function, whether it may block
// and which lock classes it may acquire, propagated over static calls
// (excluding go and defer statements) to a fixed point.
func (a *analysis) buildLockFacts() map[*types.Func]*funcFacts {
	facts := make(map[*types.Func]*funcFacts, len(a.decls))
	callers := make(map[*types.Func][]*types.Func) // callee -> callers
	for fn := range a.decls {
		facts[fn] = &funcFacts{acquires: map[string]bool{}}
	}

	var work []*types.Func
	enqueue := func(fn *types.Func) { work = append(work, fn) }

	for fn, site := range a.decls {
		p := site.pkg
		la := &lockAnalysis{a: a, p: p} // for mutexOp/blockingCall/lockClass only
		f := facts[fn]
		skip := map[ast.Node]bool{}
		ast.Inspect(site.decl, func(n ast.Node) bool {
			if skip[n] {
				return false
			}
			switch n := n.(type) {
			case *ast.GoStmt:
				skip[n.Call] = true // spawned work does not block the caller
				return true
			case *ast.DeferStmt:
				skip[n.Call] = true // deferred work runs at return
				return true
			case *ast.FuncLit:
				return false // separate execution context
			case *ast.SendStmt:
				f.setBlock("channel send")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					f.setBlock("channel receive")
				}
			case *ast.RangeStmt:
				if t := p.info.TypeOf(n.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						f.setBlock("range over a channel")
					}
				}
			case *ast.SelectStmt:
				if !hasDefaultComm(n.Body) {
					f.setBlock("select without default")
				}
			case *ast.CallExpr:
				if op, class, ok := la.mutexOp(n); ok {
					if op == opLock {
						f.acquires[class] = true
					}
					return true
				}
				callee := calleeFunc(p.info, n)
				if callee == nil {
					return true
				}
				if label, blocks := la.blockingCall(callee); blocks {
					f.setBlock(label)
					return true
				}
				if _, inModule := a.decls[callee]; inModule {
					callers[callee] = append(callers[callee], fn)
				}
			}
			return true
		})
		enqueue(fn)
	}

	// Propagate to a fixed point: a caller blocks if any callee blocks, and
	// acquires everything its callees acquire.
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		f := facts[fn]
		for _, caller := range callers[fn] {
			cf := facts[caller]
			changed := false
			if f.mayBlock && !cf.mayBlock {
				cf.mayBlock = true
				cf.blockVia = fn.Name() + " -> " + f.blockVia
				changed = true
			}
			for class := range f.acquires {
				if !cf.acquires[class] {
					cf.acquires[class] = true
					changed = true
				}
			}
			if changed {
				enqueue(caller)
			}
		}
	}
	return facts
}

func (f *funcFacts) setBlock(label string) {
	if !f.mayBlock {
		f.mayBlock = true
		f.blockVia = label
	}
}

// hasDefaultCase reports whether a switch body has a default clause.
func hasDefaultCase(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// hasDefaultComm reports whether a select body has a default clause.
func hasDefaultComm(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// recvTypeName returns the bare name of a method's receiver type ("" for
// package-level functions), pointers stripped.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	return namedTypeName(sig.Recv().Type())
}

// namedTypeName resolves a type to its named base ("peerLink" for
// *peerLink), or "" for unnamed types.
func namedTypeName(t types.Type) string {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt.Obj().Name()
		case *types.Alias:
			t = types.Unalias(tt)
		default:
			return ""
		}
	}
}

// funcKey renders a function as "pkgpath.Name" or "pkgpath.Recv.Name", the
// Config.BlockingFuncs form.
func funcKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	if recv := recvTypeName(fn); recv != "" {
		return fn.Pkg().Path() + "." + recv + "." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
