// Hot-path allocation rules. The simulator budget is ~0 allocations per
// message (DESIGN §6, BenchmarkSimulateZeroAlloc); these checks flag the
// allocation sources that have historically crept into step/dispatch code:
// fmt formatting, string concatenation, integer-to-interface boxing, closure
// captures, and per-step map allocation.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// fmtFormatters are the fmt functions that allocate on every call.
var fmtFormatters = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
	"Appendf": true, "Append": true, "Appendln": true,
	"Fprintf": true, "Fprint": true, "Fprintln": true,
	"Printf": true, "Print": true, "Println": true,
}

func (a *analysis) checkHotAllocs() {
	// Deterministic iteration order for reporting (findings are re-sorted
	// globally, but walking in source order keeps any future debugging sane).
	decls := make([]*ast.FuncDecl, 0, len(a.hot))
	for d := range a.hot {
		decls = append(decls, d)
	}
	sort.Slice(decls, func(i, j int) bool { return decls[i].Pos() < decls[j].Pos() })
	for _, decl := range decls {
		a.checkHotDecl(a.hot[decl], decl)
	}
}

func (a *analysis) checkHotDecl(p *pkgInfo, decl *ast.FuncDecl) {
	if decl.Body == nil {
		return
	}
	info := p.info
	name := decl.Name.Name
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fname, ok := stdFuncCall(info, n, "fmt"); ok && fmtFormatters[fname] {
				a.report(n.Pos(), "hotalloc",
					"fmt.%s allocates on the hot path (reachable from %s); build trace notes lazily behind Sink.Enabled or precompute them", fname, name)
				return true // args are subsumed by this finding
			}
			a.checkBoxing(p, n, name)
			if builtinCall(info, n, "make") && len(n.Args) > 0 {
				if t := info.TypeOf(n.Args[0]); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						a.report(n.Pos(), "hotalloc",
							"map allocated on the hot path (reachable from %s); preallocate in the constructor or use dense tables (internal/dense)", name)
					}
				}
			}
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					a.report(n.Pos(), "hotalloc",
						"map literal allocated on the hot path (reachable from %s); preallocate in the constructor or use dense tables (internal/dense)", name)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				tv := info.Types[n]
				if tv.Value == nil && isStringType(tv.Type) {
					a.report(n.Pos(), "hotalloc",
						"string concatenation allocates on the hot path (reachable from %s)", name)
				}
			}
		case *ast.FuncLit:
			if capt := capturedVars(info, decl, n); len(capt) > 0 {
				a.report(n.Pos(), "hotalloc",
					"closure captures %s and escapes to the heap on the hot path (reachable from %s); hoist it to a method", capt[0], name)
			}
		}
		return true
	})
}

// checkBoxing flags basic-typed arguments passed to interface parameters:
// each such call boxes the value on the heap. fmt formatter calls are
// excluded (already reported wholesale above).
func (a *analysis) checkBoxing(p *pkgInfo, call *ast.CallExpr, hotName string) {
	info := p.info
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() { // conversion, not a call
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing here
			}
			slice, ok := params.At(params.Len() - 1).Type().Underlying().(*types.Slice)
			if !ok {
				continue
			}
			pt = slice.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		atv := info.Types[arg]
		if atv.Type == nil || atv.Value != nil {
			continue // constants are boxed statically by the compiler
		}
		if b, ok := atv.Type.Underlying().(*types.Basic); ok && b.Info()&(types.IsInteger|types.IsFloat|types.IsBoolean) != 0 {
			a.report(arg.Pos(), "hotalloc",
				"%s argument boxed into an interface parameter allocates on the hot path (reachable from %s)", b.Name(), hotName)
		}
	}
}

// capturedVars lists variables a function literal captures from its enclosing
// function. A literal with no captures compiles to a static function value
// and is allocation-free, so only capturing literals are flagged.
func capturedVars(info *types.Info, encl *ast.FuncDecl, lit *ast.FuncLit) []string {
	seen := map[types.Object]bool{}
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.IsField() || seen[obj] {
			return true
		}
		// Captured: declared inside the enclosing declaration but outside
		// this literal. Package-level vars fail the first test.
		if obj.Pos() >= encl.Pos() && obj.Pos() < lit.Pos() {
			seen[obj] = true
			names = append(names, obj.Name())
		}
		return true
	})
	sort.Strings(names)
	return names
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
