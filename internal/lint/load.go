// Module loading: parse and type-check every package in a module using only
// the standard library. Module-internal imports are resolved recursively by
// this loader; everything else (the standard library) goes through the
// go/importer source importer, which type-checks GOROOT packages from source
// and therefore needs no pre-built export data.
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"sort"
	"strings"
)

// pkgInfo is one fully type-checked module package.
type pkgInfo struct {
	path  string // import path
	dir   string // slash-separated directory (relative to module root for submodule dirs)
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// loader resolves and type-checks module packages on demand.
type loader struct {
	fset    *token.FileSet
	root    string // module root directory
	modPath string // module path from go.mod
	std     types.Importer
	pkgs    map[string]*pkgInfo
	loading map[string]bool
}

// loadModule type-checks every package under dir's module and returns them
// sorted by import path.
func loadModule(dir string) ([]*pkgInfo, *token.FileSet, error) {
	modPath, err := readModulePath(path.Join(dir, "go.mod"))
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	// The source importer consults build.Default; with cgo disabled every
	// package we touch (net included) resolves to its pure-Go variant, so no
	// C toolchain is needed.
	build.Default.CgoEnabled = false
	l := &loader{
		fset:    fset,
		root:    dir,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*pkgInfo),
		loading: make(map[string]bool),
	}
	dirs, err := packageDirs(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, d := range dirs {
		importPath := modPath
		if d != "." {
			importPath = path.Join(modPath, d)
		}
		if _, err := l.load(importPath); err != nil {
			return nil, nil, err
		}
	}
	out := make([]*pkgInfo, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].path < out[j].path })
	return out, fset, nil
}

// Import implements types.Importer, routing module-internal paths to this
// loader and everything else to the source importer.
func (l *loader) Import(importPath string) (*types.Package, error) {
	if importPath == l.modPath || strings.HasPrefix(importPath, l.modPath+"/") {
		p, err := l.load(importPath)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return l.std.Import(importPath)
}

// load type-checks one module package (memoized).
func (l *loader) load(importPath string) (*pkgInfo, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	rel := "."
	if importPath != l.modPath {
		rel = strings.TrimPrefix(importPath, l.modPath+"/")
	}
	dir := l.root
	if rel != "." {
		dir = path.Join(l.root, rel)
	}
	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, path.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l, FakeImportC: true}
	pkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	p := &pkgInfo{path: importPath, dir: rel, files: files, pkg: pkg, info: info}
	l.pkgs[importPath] = p
	return p, nil
}

// packageDirs returns every directory under root (relative, slash form, "."
// for the root itself) that contains at least one non-test Go file, skipping
// testdata, vendor, and hidden or underscore directories.
func packageDirs(root string) ([]string, error) {
	var out []string
	var walk func(rel string) error
	walk = func(rel string) error {
		dir := root
		if rel != "." {
			dir = path.Join(root, rel)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		hasGo := false
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() {
				if name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
					continue
				}
				sub := name
				if rel != "." {
					sub = path.Join(rel, name)
				}
				// A nested module belongs to a different build; skip it.
				if _, err := os.Stat(path.Join(dir, name, "go.mod")); err == nil {
					continue
				}
				if err := walk(sub); err != nil {
					return err
				}
				continue
			}
			if isLintableGoFile(name) {
				hasGo = true
			}
		}
		if hasGo {
			out = append(out, rel)
		}
		return nil
	}
	if err := walk("."); err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// goFileNames returns the sorted non-test Go files in dir.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && isLintableGoFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func isLintableGoFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(file string) (string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return "", fmt.Errorf("lint: %w (is the directory a module root?)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", file)
}
