// Package failstop implements the k-resilient consensus protocol for the
// fail-stop case -- Figure 1 of Bracha & Toueg, "Resilient Consensus
// Protocols" (PODC 1983) -- for any k <= floor((n-1)/2).
//
// Protocol sketch (Figure 1). Each process repeatedly runs phases. In a
// phase it broadcasts its state (phaseno, value, cardinality) and waits for
// n-k messages of the current phase. A received message whose cardinality
// exceeds n/2 is a *witness* for its value. At the end of the phase the
// process adopts the witnessed value if any witness arrived (the paper
// proves at most one value can be witnessed), otherwise the value with the
// larger message set; its new cardinality is the size of that message set.
// It decides value i upon counting strictly more than k witnesses for i, and
// then sends two final rounds of (phase, i, n-k) messages -- enough witnesses
// "in the message system to force the rest of the processes to reach the
// same decision" -- and halts.
//
// Messages from a future phase are buffered and replayed when the phase is
// reached (the paper re-enqueues them with send(p, msg)); messages from past
// phases are discarded, exactly as in the pseudocode.
package failstop

import (
	"fmt"
	"sort"

	"resilient/internal/core"
	"resilient/internal/dense"
	"resilient/internal/msg"
	"resilient/internal/quorum"
	"resilient/internal/trace"
)

// Machine is a Figure-1 protocol instance at one process. It implements
// core.Machine and is not safe for concurrent use (engines serialize steps).
type Machine struct {
	cfg     core.Config
	sink    trace.Sink
	traceOn bool

	value       msg.Value
	cardinality int
	phase       msg.Phase

	msgCount [2]int
	witCount [2]int
	pending  dense.PhaseBuffer

	// scratch is the per-step replay queue, reused across OnMessage calls
	// so a delivery that triggers no phase change allocates nothing.
	scratch []msg.Message

	started  bool
	decided  bool
	decision msg.Value
	halted   bool
}

var (
	_ core.Machine       = (*Machine)(nil)
	_ core.ValueReporter = (*Machine)(nil)
)

// New returns a Figure-1 machine for the given configuration. sink may be
// nil to disable tracing.
func New(cfg core.Config, sink trace.Sink) (*Machine, error) {
	if err := cfg.Validate(quorum.FailStop); err != nil {
		return nil, fmt.Errorf("failstop: %w", err)
	}
	return newUnchecked(cfg, sink), nil
}

// NewUnsafe returns a machine without validating (n, k) against the
// resilience bound. It exists solely for the lower-bound experiments that
// deliberately configure k beyond floor((n-1)/2).
func NewUnsafe(cfg core.Config, sink trace.Sink) *Machine {
	return newUnchecked(cfg, sink)
}

func newUnchecked(cfg core.Config, sink trace.Sink) *Machine {
	if sink == nil {
		sink = trace.Nop{}
	}
	return &Machine{
		cfg:         cfg,
		sink:        sink,
		traceOn:     sink.Enabled(),
		value:       cfg.Input,
		cardinality: 1,
	}
}

// ID implements core.Machine.
func (m *Machine) ID() msg.ID { return m.cfg.Self }

// Phase implements core.Machine.
func (m *Machine) Phase() msg.Phase { return m.phase }

// Decided implements core.Machine.
func (m *Machine) Decided() (msg.Value, bool) { return m.decision, m.decided }

// Halted implements core.Machine.
func (m *Machine) Halted() bool { return m.halted }

// CurrentValue implements core.ValueReporter.
func (m *Machine) CurrentValue() msg.Value { return m.value }

// Cardinality exposes the process's current cardinality variable, for tests.
func (m *Machine) Cardinality() int { return m.cardinality }

// Start broadcasts the phase-0 state message.
func (m *Machine) Start() []core.Outbound {
	if m.started {
		return nil
	}
	m.started = true
	return []core.Outbound{core.ToAll(msg.State(m.cfg.Self, m.phase, m.value, m.cardinality))}
}

// OnMessage consumes one delivered message.
func (m *Machine) OnMessage(in msg.Message) []core.Outbound {
	if m.halted || !m.started {
		return nil
	}
	switch in.Kind {
	case msg.KindState:
		// The only kind the Figure-1 exchange speaks.
	case msg.KindValue, msg.KindInitial, msg.KindEcho, msg.KindBenOrReport,
		msg.KindBenOrProposal, msg.KindGraph, msg.KindGossip, msg.KindReady:
		return nil // explicitly ignored: other protocols' wire kinds
	default:
		return nil
	}
	if !in.Value.Valid() {
		return nil // malformed; the fail-stop model never lies, so just drop
	}
	var out []core.Outbound
	queue := append(m.scratch[:0], in)
	for head := 0; head < len(queue) && !m.halted; head++ {
		cur := queue[head]
		switch {
		case cur.Phase < m.phase:
			continue // stale: the pseudocode silently discards these
		case cur.Phase > m.phase:
			m.pending.Add(cur.Phase, cur)
			continue
		}
		m.msgCount[cur.Value]++
		if quorum.ExceedsHalf(int(cur.Cardinality), m.cfg.N) {
			m.witCount[cur.Value]++
			if m.traceOn {
				m.sink.Record(trace.Event{
					Kind: trace.EventWitness, Process: m.cfg.Self,
					Phase: m.phase, Value: cur.Value,
				})
			}
		}
		if m.msgCount[0]+m.msgCount[1] == quorum.WaitCount(m.cfg.N, m.cfg.K) {
			out = append(out, m.endPhase()...)
			if !m.halted {
				queue = m.pending.TakeInto(m.phase, queue)
			}
		}
	}
	m.scratch = queue[:0]
	return out
}

// endPhase performs the bottom half of the Figure-1 loop body: adopt the new
// value and cardinality, advance the phase, then either decide (and send the
// two final witness rounds) or broadcast the next state message.
func (m *Machine) endPhase() []core.Outbound {
	// "if there is i such that witness_count(i) > 0 then value := i".
	// The paper proves (consistency claim, Theorem 2) that within the fault
	// bound at most one value is ever witnessed; if both appear -- possible
	// only when the bound is deliberately violated -- prefer the better
	// supported value so behaviour stays deterministic.
	switch {
	case m.witCount[0] > 0 && m.witCount[1] > 0:
		if m.witCount[1] > m.witCount[0] ||
			(m.witCount[1] == m.witCount[0] && m.msgCount[1] > m.msgCount[0]) {
			m.value = msg.V1
		} else {
			m.value = msg.V0
		}
	case m.witCount[0] > 0:
		m.value = msg.V0
	case m.witCount[1] > 0:
		m.value = msg.V1
	case m.msgCount[1] > m.msgCount[0]:
		m.value = msg.V1
	default:
		m.value = msg.V0
	}
	m.cardinality = m.msgCount[m.value]
	m.phase++
	m.sink.Record(trace.Event{
		Kind: trace.EventPhase, Process: m.cfg.Self, Phase: m.phase, Value: m.value,
	})

	if quorum.WitnessDecide(m.witCount[m.value], m.cfg.K) {
		// Decide. Note the phase was already advanced, so with the decision
		// made on phase-t witnesses we send (t+1, i, n-k) and (t+2, i, n-k),
		// matching the consistency proof of Theorem 2.
		m.decided = true
		m.decision = m.value
		m.halted = true
		m.sink.Record(trace.Event{
			Kind: trace.EventDecide, Process: m.cfg.Self, Phase: m.phase, Value: m.decision,
		})
		m.sink.Record(trace.Event{
			Kind: trace.EventHalt, Process: m.cfg.Self, Phase: m.phase, Value: m.decision,
		})
		nk := quorum.WaitCount(m.cfg.N, m.cfg.K)
		return []core.Outbound{
			core.ToAll(msg.State(m.cfg.Self, m.phase, m.value, nk)),
			core.ToAll(msg.State(m.cfg.Self, m.phase+1, m.value, nk)),
		}
	}

	m.msgCount = [2]int{}
	m.witCount = [2]int{}
	return []core.Outbound{core.ToAll(msg.State(m.cfg.Self, m.phase, m.value, m.cardinality))}
}

// Clone returns a deep copy of the machine, for exhaustive state-space
// exploration (internal/explore).
func (m *Machine) Clone() *Machine {
	c := *m
	c.pending = m.pending.Clone()
	c.scratch = nil
	return &c
}

// Snapshot returns a deterministic encoding of the machine's full state,
// used as a hash key by the state-space explorer.
func (m *Machine) Snapshot() []byte {
	var b []byte
	b = append(b, byte(m.value), byte(m.cardinality), byte(m.cardinality>>8))
	b = appendInt32(b, int32(m.phase))
	b = append(b, byte(m.msgCount[0]), byte(m.msgCount[1]),
		byte(m.witCount[0]), byte(m.witCount[1]))
	var flags byte
	if m.started {
		flags |= 1
	}
	if m.decided {
		flags |= 2
	}
	if m.halted {
		flags |= 4
	}
	b = append(b, flags, byte(m.decision))
	// Pending messages in deterministic order (PhaseBuffer iterates phases
	// ascending; message encodings are sorted within a phase).
	m.pending.ForEach(func(p msg.Phase, msgs []msg.Message) {
		encs := make([]string, len(msgs))
		var scratch []byte
		for i, mm := range msgs {
			scratch = msg.AppendEncode(scratch[:0], mm)
			encs[i] = string(scratch)
		}
		sort.Strings(encs)
		b = appendInt32(b, int32(p))
		for _, e := range encs {
			b = append(b, e...)
		}
	})
	return b
}

func appendInt32(b []byte, v int32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// WouldIgnore reports whether delivering in to the machine is a guaranteed
// no-op (no state change, no sends). The state-space explorer uses this to
// prune irrelevant deliveries.
func (m *Machine) WouldIgnore(in msg.Message) bool {
	if m.halted || !m.started {
		return true
	}
	if in.Kind != msg.KindState || !in.Value.Valid() {
		return true
	}
	return in.Phase < m.phase
}
