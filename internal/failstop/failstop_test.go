package failstop

import (
	"testing"

	"resilient/internal/core"
	"resilient/internal/msg"
	"resilient/internal/quorum"
)

func cfg(n, k int, self msg.ID, input msg.Value) core.Config {
	return core.Config{N: n, K: k, Self: self, Input: input}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(cfg(7, 3, 0, msg.V0), nil); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if _, err := New(cfg(7, 4, 0, msg.V0), nil); err == nil {
		t.Error("k beyond bound accepted")
	}
	if _, err := New(cfg(7, 3, 9, msg.V0), nil); err == nil {
		t.Error("self out of range accepted")
	}
	if _, err := New(core.Config{N: 7, K: 3, Self: 0, Input: msg.Value(9)}, nil); err == nil {
		t.Error("invalid input accepted")
	}
	if NewUnsafe(cfg(4, 2, 0, msg.V0), nil) == nil {
		t.Error("NewUnsafe returned nil")
	}
}

func TestStartBroadcastsInitialState(t *testing.T) {
	m, _ := New(cfg(5, 2, 3, msg.V1), nil)
	outs := m.Start()
	if len(outs) != 1 || outs[0].To != msg.Broadcast {
		t.Fatalf("Start outs %+v", outs)
	}
	got := outs[0].Msg
	if got.Kind != msg.KindState || got.Phase != 0 || got.Value != msg.V1 || got.Cardinality != 1 {
		t.Errorf("initial message %+v", got)
	}
	if m.Start() != nil {
		t.Error("second Start sent again")
	}
}

func TestIgnoresBeforeStartAndForeignKinds(t *testing.T) {
	m, _ := New(cfg(5, 2, 0, msg.V0), nil)
	if out := m.OnMessage(msg.State(1, 0, msg.V0, 1)); out != nil {
		t.Error("message processed before Start")
	}
	m.Start()
	if out := m.OnMessage(msg.Echo(1, 1, 0, msg.V0)); out != nil {
		t.Error("echo message processed by fail-stop machine")
	}
}

// feed drives the machine with one phase of messages and returns its output.
func feed(t *testing.T, m *Machine, phase msg.Phase, values []msg.Value, cards []int) []core.Outbound {
	t.Helper()
	var outs []core.Outbound
	for i, v := range values {
		outs = append(outs, m.OnMessage(msg.State(msg.ID(i+1), phase, v, cards[i]))...)
	}
	return outs
}

func TestPhaseAdvanceAdoptsMajority(t *testing.T) {
	// n=5, k=2: waits for 3 messages.
	m, _ := New(cfg(5, 2, 0, msg.V0), nil)
	m.Start()
	outs := feed(t, m, 0, []msg.Value{1, 1, 0}, []int{1, 1, 1})
	if m.Phase() != 1 {
		t.Fatalf("phase %d after 3 messages", m.Phase())
	}
	if m.CurrentValue() != msg.V1 {
		t.Errorf("value %d, want majority 1", m.CurrentValue())
	}
	if m.Cardinality() != 2 {
		t.Errorf("cardinality %d, want 2", m.Cardinality())
	}
	if len(outs) != 1 || outs[0].Msg.Phase != 1 || outs[0].Msg.Value != msg.V1 {
		t.Errorf("phase-1 broadcast %+v", outs)
	}
}

func TestTieBreaksToZero(t *testing.T) {
	// n=5, k=1: waits for 4; a 2-2 split must adopt 0 (the pseudocode's
	// else branch).
	m, _ := New(cfg(5, 1, 0, msg.V1), nil)
	m.Start()
	feed(t, m, 0, []msg.Value{1, 1, 0, 0}, []int{1, 1, 1, 1})
	if m.CurrentValue() != msg.V0 {
		t.Errorf("tie adopted %d, want 0", m.CurrentValue())
	}
}

func TestWitnessOverridesMajority(t *testing.T) {
	// One witness for 0 (cardinality > n/2) beats a numeric majority of 1s.
	m, _ := New(cfg(5, 2, 0, msg.V1), nil)
	m.Start()
	feed(t, m, 0, []msg.Value{1, 1, 0}, []int{1, 1, 3})
	if m.CurrentValue() != msg.V0 {
		t.Errorf("witnessed value not adopted: %d", m.CurrentValue())
	}
}

func TestDecideOnMoreThanKWitnesses(t *testing.T) {
	n, k := 5, 2
	m, _ := New(cfg(n, k, 0, msg.V0), nil)
	m.Start()
	// Three witnesses for 1 (cardinality 3 > 5/2): witness_count = 3 > k.
	outs := feed(t, m, 0, []msg.Value{1, 1, 1}, []int{3, 3, 3})
	v, ok := m.Decided()
	if !ok || v != msg.V1 {
		t.Fatalf("decided=(%d,%v), want (1,true)", v, ok)
	}
	if !m.Halted() {
		t.Fatal("decided machine not halted")
	}
	// Must send the two final rounds (t+1, v, n-k), (t+2, v, n-k).
	if len(outs) != 2 {
		t.Fatalf("final sends: %d, want 2", len(outs))
	}
	nk := quorum.WaitCount(n, k)
	for i, o := range outs {
		want := msg.Phase(1 + i)
		if o.Msg.Phase != want || o.Msg.Value != msg.V1 || int(o.Msg.Cardinality) != nk {
			t.Errorf("final send %d: %+v", i, o.Msg)
		}
	}
	// Halted: ignores everything afterwards.
	if out := m.OnMessage(msg.State(1, 1, msg.V0, 1)); out != nil {
		t.Error("halted machine responded")
	}
}

func TestExactlyKWitnessesDoesNotDecide(t *testing.T) {
	// witness_count must strictly exceed k.
	n, k := 7, 2
	m, _ := New(cfg(n, k, 0, msg.V0), nil)
	m.Start()
	// 5 messages: 2 witnesses for 1, 3 plain 1s.
	feed(t, m, 0, []msg.Value{1, 1, 1, 1, 1}, []int{4, 4, 1, 1, 1})
	if _, ok := m.Decided(); ok {
		t.Fatal("decided with witness_count == k")
	}
	if m.Phase() != 1 {
		t.Fatal("phase did not advance")
	}
}

func TestFuturePhaseBuffered(t *testing.T) {
	m, _ := New(cfg(5, 2, 0, msg.V0), nil)
	m.Start()
	// Two future-phase messages arrive early.
	m.OnMessage(msg.State(1, 1, msg.V1, 3))
	m.OnMessage(msg.State(2, 1, msg.V1, 3))
	if m.Phase() != 0 {
		t.Fatal("future messages advanced the phase")
	}
	// Completing phase 0 replays them.
	feed(t, m, 0, []msg.Value{0, 0, 0}, []int{1, 1, 1})
	if m.Phase() != 1 {
		t.Fatalf("phase %d", m.Phase())
	}
	// The two buffered witnesses are already counted; one more message
	// completes phase 1 with witnesses 2 <= k, no decision.
	m.OnMessage(msg.State(3, 1, msg.V1, 3))
	if m.Phase() != 2 {
		t.Fatalf("phase %d after replay + 1", m.Phase())
	}
	if m.CurrentValue() != msg.V1 {
		t.Errorf("witnessed value not adopted after replay")
	}
}

func TestStalePhaseDropped(t *testing.T) {
	m, _ := New(cfg(5, 2, 0, msg.V0), nil)
	m.Start()
	feed(t, m, 0, []msg.Value{0, 0, 0}, []int{1, 1, 1})
	// A stale phase-0 message must not count toward phase 1.
	m.OnMessage(msg.State(4, 0, msg.V1, 4))
	if m.Phase() != 1 {
		t.Fatal("stale message advanced phase")
	}
}

func TestUnanimousDecidesInTwoPhases(t *testing.T) {
	// All inputs equal: decision by the end of phase 1 (the paper's
	// bivalence argument: "within two steps").
	n, k := 7, 3
	m, _ := New(cfg(n, k, 0, msg.V1), nil)
	m.Start()
	feed(t, m, 0, []msg.Value{1, 1, 1, 1}, []int{1, 1, 1, 1})
	if _, ok := m.Decided(); ok {
		t.Fatal("decided too early")
	}
	nk := quorum.WaitCount(n, k)
	feed(t, m, 1, []msg.Value{1, 1, 1, 1}, []int{nk, nk, nk, nk})
	v, ok := m.Decided()
	if !ok || v != msg.V1 {
		t.Fatalf("not decided after two unanimous phases: (%d, %v)", v, ok)
	}
}

func TestCardinalityOneIsNeverAWitnessBeyondN2(t *testing.T) {
	// With n = 2 a cardinality-1 message is not a witness (1 <= 2/2 is
	// false: 2*1 > 2 is false).
	m, _ := New(cfg(2, 0, 0, msg.V0), nil)
	m.Start()
	m.OnMessage(msg.State(1, 0, msg.V1, 1))
	m.OnMessage(msg.State(0, 0, msg.V0, 1))
	if _, ok := m.Decided(); ok {
		t.Fatal("decided from cardinality-1 messages at n=2")
	}
}
