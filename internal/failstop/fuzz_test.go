package failstop_test

import (
	"math/rand/v2"
	"testing"

	"resilient/internal/core"
	"resilient/internal/failstop"
	"resilient/internal/machinetest"
	"resilient/internal/msg"
)

// TestFuzzInvariants floods Figure 1 machines with hostile message streams:
// wrong kinds, invalid values, forged subjects, wildcard phases, absurd
// cardinalities. The machine must keep the model invariants regardless.
func TestFuzzInvariants(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewPCG(seed, 0xfa22))
		n := 3 + rng.IntN(8)
		k := rng.IntN((n-1)/2 + 1)
		m, err := failstop.New(core.Config{
			N: n, K: k, Self: msg.ID(rng.IntN(n)), Input: msg.Value(rng.IntN(2)),
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := machinetest.Fuzz(m, rng, machinetest.Options{N: n, Steps: 3000}); err != nil {
			t.Fatalf("seed %d (n=%d k=%d): %v", seed, n, k, err)
		}
	}
}

// TestFuzzStateOnly uses only well-formed state messages, the machine's own
// dialect, to push it deep into its phase logic.
func TestFuzzStateOnly(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewPCG(seed, 0xfa23))
		n := 3 + rng.IntN(8)
		k := rng.IntN((n-1)/2 + 1)
		m, err := failstop.New(core.Config{
			N: n, K: k, Self: 0, Input: msg.Value(rng.IntN(2)),
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		err = machinetest.Fuzz(m, rng, machinetest.Options{
			N: n, Steps: 3000, Kinds: []msg.Kind{msg.KindState}, MaxPhase: 10,
		})
		if err != nil {
			t.Fatalf("seed %d (n=%d k=%d): %v", seed, n, k, err)
		}
	}
}
