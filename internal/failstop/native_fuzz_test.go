package failstop_test

import (
	"math/rand/v2"
	"testing"

	"resilient/internal/core"
	"resilient/internal/failstop"
	"resilient/internal/machinetest"
	"resilient/internal/msg"
)

// FuzzMachine is the native fuzz entry point (CI runs it with -fuzztime):
// the fuzzer mutates the configuration and stream seed, the shared
// machinetest harness checks the model invariants.
func FuzzMachine(f *testing.F) {
	f.Add(uint64(1), uint8(7), uint8(3), uint8(0))
	f.Add(uint64(42), uint8(5), uint8(2), uint8(4))
	f.Add(uint64(7), uint8(9), uint8(0), uint8(8))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, kRaw, selfRaw uint8) {
		n := 3 + int(nRaw)%9
		k := int(kRaw) % ((n-1)/2 + 1)
		self := msg.ID(int(selfRaw) % n)
		m, err := failstop.New(core.Config{
			N: n, K: k, Self: self, Input: msg.Value(int(seed) % 2),
		}, nil)
		if err != nil {
			t.Fatalf("config n=%d k=%d rejected: %v", n, k, err)
		}
		rng := rand.New(rand.NewPCG(seed, 0xfa2f))
		if err := machinetest.Fuzz(m, rng, machinetest.Options{N: n, Steps: 800}); err != nil {
			t.Fatalf("seed %d (n=%d k=%d self=%d): %v", seed, n, k, self, err)
		}
	})
}
