package failstop

import (
	"resilient/internal/coin"
	"resilient/internal/core"
	"resilient/internal/proto"
	"resilient/internal/quorum"
)

func init() {
	proto.Register(proto.Descriptor{
		ID:        proto.FailStop,
		Name:      "failstop(fig1)",
		Aliases:   []string{"failstop", "fig1"},
		Model:     quorum.FailStop,
		Bound:     "(n-1)/2",
		Coin:      coin.SchemeNone,
		CheckName: "failstop",
		Spawn: func(cfg core.Config, deps proto.Deps) (core.Machine, error) {
			if deps.Unsafe {
				return NewUnsafe(cfg, deps.Sink), nil
			}
			return New(cfg, deps.Sink)
		},
	})
}
