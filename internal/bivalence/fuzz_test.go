package bivalence_test

import (
	"math/rand/v2"
	"testing"

	"resilient/internal/bivalence"
	"resilient/internal/core"
	"resilient/internal/machinetest"
	"resilient/internal/msg"
)

// TestFuzzInvariants floods the Section 5 machine with hostile streams,
// including malformed knowledge payloads.
func TestFuzzInvariants(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewPCG(seed, 0xb1f0))
		n := 3 + rng.IntN(6)
		k := rng.IntN(n)
		m, err := bivalence.New(core.Config{
			N: n, K: k, Self: msg.ID(rng.IntN(n)), Input: msg.Value(rng.IntN(2)),
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := machinetest.Fuzz(m, rng, machinetest.Options{N: n, Steps: 2000}); err != nil {
			t.Fatalf("seed %d (n=%d k=%d): %v", seed, n, k, err)
		}
	}
}
