package bivalence_test

import (
	"testing"

	"resilient/internal/bivalence"
	"resilient/internal/core"
	"resilient/internal/faults"
	"resilient/internal/msg"
	"resilient/internal/runtime"
)

func spawner() runtime.Spawner {
	return func(ctx runtime.SpawnContext) (core.Machine, error) {
		return bivalence.New(ctx.Config, ctx.Sink)
	}
}

func run(t *testing.T, n, k int, inputs []msg.Value, dead []msg.ID, seed uint64) *runtime.Result {
	t.Helper()
	res, err := runtime.Run(runtime.Config{
		N: n, K: k, Inputs: inputs,
		Spawn:   spawner(),
		Crashes: faults.InitiallyDead(dead...),
		Seed:    seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAllCorrectDecidesParity(t *testing.T) {
	// With K=0 every process hears everyone, the graph is complete, and the
	// decision is the parity of the inputs.
	cases := []struct {
		inputs []msg.Value
		want   msg.Value
	}{
		{[]msg.Value{0, 0, 0, 0, 0}, 0},
		{[]msg.Value{1, 0, 0, 0, 0}, 1},
		{[]msg.Value{1, 1, 0, 0, 0}, 0},
		{[]msg.Value{1, 1, 1, 1, 1}, 1},
	}
	for _, tc := range cases {
		res := run(t, 5, 0, tc.inputs, nil, 1)
		if !res.AllDecided || !res.Agreement {
			t.Fatalf("inputs %v: not decided/agreed: %+v", tc.inputs, res)
		}
		if res.Value != tc.want {
			t.Errorf("inputs %v: decided %d, want parity %d", tc.inputs, res.Value, tc.want)
		}
	}
}

func TestWeakBivalence(t *testing.T) {
	// Both outcomes are reachable with all processes correct: flipping one
	// input flips the decision.
	a := run(t, 4, 0, []msg.Value{0, 0, 0, 0}, nil, 3)
	b := run(t, 4, 0, []msg.Value{1, 0, 0, 0}, nil, 3)
	if a.Value == b.Value {
		t.Fatalf("flipping one input did not flip the decision: %d vs %d", a.Value, b.Value)
	}
}

func TestInitialDeathPinsDecisionToZero(t *testing.T) {
	// Any initial death prevents "G+ contains all the processes", so the
	// decision is pinned to 0 regardless of inputs -- the weak-bivalence
	// fixed decision of Section 5.
	for seed := uint64(0); seed < 10; seed++ {
		res := run(t, 6, 2, []msg.Value{1, 1, 1, 1, 1, 1}, []msg.ID{4, 5}, seed)
		if !res.AllDecided || !res.Agreement {
			t.Fatalf("seed %d: not decided/agreed: stall=%v decisions=%v", seed, res.Stalled, res.Decisions)
		}
		if res.Value != msg.V0 {
			t.Errorf("seed %d: decided %d, want fixed 0 under faults", seed, res.Value)
		}
	}
}

func TestToleratesManyFaults(t *testing.T) {
	// K = n-1: every process but one may be dead, far beyond the n/2 bound
	// of strong-bivalence protocols -- the Section 5 separation.
	n := 6
	dead := []msg.ID{1, 2, 3, 4, 5}
	res := run(t, n, n-1, []msg.Value{1, 0, 1, 0, 1, 0}, dead, 9)
	if !res.AllDecided || !res.Agreement {
		t.Fatalf("not decided/agreed: stall=%v decisions=%v", res.Stalled, res.Decisions)
	}
	if res.Value != msg.V0 {
		t.Errorf("decided %d, want 0", res.Value)
	}
}

func TestAgreementUnderPartialDeaths(t *testing.T) {
	// Deaths below K: all survivors must agree (on 0 or on parity, but
	// together).
	for seed := uint64(0); seed < 15; seed++ {
		res := run(t, 7, 3, []msg.Value{1, 0, 1, 1, 0, 0, 1}, []msg.ID{6}, seed)
		if !res.AllDecided || !res.Agreement {
			t.Fatalf("seed %d: stall=%v decisions=%v", seed, res.Stalled, res.Decisions)
		}
	}
}
