package bivalence

import (
	"resilient/internal/coin"
	"resilient/internal/core"
	"resilient/internal/proto"
	"resilient/internal/quorum"
)

func init() {
	proto.Register(proto.Descriptor{
		ID:        proto.Bivalence,
		Name:      "bivalence(s5)",
		Aliases:   []string{"bivalence"},
		Model:     quorum.FailStop,
		Bound:     "n-1",
		MaxFaults: func(n int) int { return n - 1 },
		Coin:      coin.SchemeNone,
		// The Section 5 protocol decides an agreed bivalent function of
		// the inputs (their parity), not a majority-respecting value.
		SkipValidity: true,
		Spawn: func(cfg core.Config, deps proto.Deps) (core.Machine, error) {
			return New(cfg, deps.Sink)
		},
	})
}
