// Package bivalence implements the Section 5 protocol sketched in the
// paper's footnote: a consensus protocol, for the fault case where all
// faulty processes are *initially dead*, that satisfies the paper's weak
// interpretation of bivalence and overcomes ANY number of faults.
//
// Construction (following the footnote, which adapts the initially-dead
// protocol of [Fisc83]): processes first broadcast their input and wait for
// stage-0 messages from n-K processes; the senders heard form this process's
// in-neighbourhood S_p of the communication graph G (edge q -> p iff
// q in S_p). They then run n-1 flooding stages: in each stage every process
// broadcasts all rows it knows -- a row for q being (input_q, S_q) -- and
// waits for the stage's message from every member of S_p (all of whom are
// alive, since they spoke in stage 0; initially-dead faults never speak).
// Rows propagate one G-hop per stage, so if the transitive closure G+ is
// strongly connected, after n-1 stages every live process knows every row.
//
// Decision rule (the footnote's): if G+ "turns out to be strongly connected,
// and it contains all the processes" -- i.e. this process knows the row of
// every one of the n processes and the graph they form is strongly connected
// -- then decide an agreed bivalent function of all the inputs (we use the
// parity of the inputs); otherwise decide 0.
//
// Consistency holds because the verdict is a function of the objective graph
// G: rows are authentic (fail-stop processes never lie), any process that
// assembles all n rows computes the same verdict, strong connectivity
// guarantees every live process assembles them, and when the condition fails
// no process can falsely verify it. With one or more initial deaths the
// decision is pinned to 0 -- the fixed decision that the paper's weak
// bivalence permits in the presence of faults.
package bivalence

import (
	"fmt"
	"slices"

	"resilient/internal/core"
	"resilient/internal/msg"
	"resilient/internal/trace"
)

// Machine is a Section-5 protocol instance at one process.
type Machine struct {
	cfg  core.Config
	sink trace.Sink

	stage msg.Phase // 0 = collecting inputs; 1..n-1 = flooding stages

	neighbors []msg.ID        // S_p, fixed at the end of stage 0
	inSet     map[msg.ID]bool // membership in S_p

	rows       map[msg.ID]*row
	stage0Seen map[msg.ID]bool
	stageSeen  map[msg.ID]bool // senders heard in the current flooding stage
	pending    map[msg.Phase][]msg.Message

	started  bool
	decided  bool
	decision msg.Value
	halted   bool
}

// row is everything known about one process.
type row struct {
	input     msg.Value
	hasInput  bool
	neighbors []msg.ID // S_q; nil until q's stage-1 knowledge arrives
	hasRow    bool
}

var _ core.Machine = (*Machine)(nil)

// New returns a Section-5 machine. K may be any value in 0..n-1: the
// protocol tolerates any number of initially-dead processes.
func New(cfg core.Config, sink trace.Sink) (*Machine, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("bivalence: need n >= 1, got %d", cfg.N)
	}
	if cfg.K < 0 || cfg.K >= cfg.N {
		return nil, fmt.Errorf("bivalence: need 0 <= K < n, got K=%d n=%d", cfg.K, cfg.N)
	}
	if cfg.Self < 0 || int(cfg.Self) >= cfg.N {
		return nil, fmt.Errorf("bivalence: self %d outside 0..%d", cfg.Self, cfg.N-1)
	}
	if !cfg.Input.Valid() {
		return nil, fmt.Errorf("bivalence: invalid input %d", cfg.Input)
	}
	if sink == nil {
		sink = trace.Nop{}
	}
	return &Machine{
		cfg:        cfg,
		sink:       sink,
		inSet:      make(map[msg.ID]bool),
		rows:       make(map[msg.ID]*row),
		stage0Seen: make(map[msg.ID]bool),
		stageSeen:  make(map[msg.ID]bool),
		pending:    make(map[msg.Phase][]msg.Message),
	}, nil
}

// ID implements core.Machine.
func (m *Machine) ID() msg.ID { return m.cfg.Self }

// Phase implements core.Machine (the stage number).
func (m *Machine) Phase() msg.Phase { return m.stage }

// Decided implements core.Machine.
func (m *Machine) Decided() (msg.Value, bool) { return m.decision, m.decided }

// Halted implements core.Machine.
func (m *Machine) Halted() bool { return m.halted }

// Neighbors returns S_p once stage 0 has completed (for tests).
func (m *Machine) Neighbors() []msg.ID {
	out := make([]msg.ID, len(m.neighbors))
	copy(out, m.neighbors)
	return out
}

// Start broadcasts the stage-0 input message.
func (m *Machine) Start() []core.Outbound {
	if m.started {
		return nil
	}
	m.started = true
	m.rows[m.cfg.Self] = &row{input: m.cfg.Input, hasInput: true}
	//lint:allow hotalloc one map per machine Start, not per message
	payload := encodeRows(map[msg.ID]*row{m.cfg.Self: m.rows[m.cfg.Self]})
	return []core.Outbound{core.ToAll(msg.Graph(m.cfg.Self, 0, payload))}
}

// OnMessage consumes one delivered message.
func (m *Machine) OnMessage(in msg.Message) []core.Outbound {
	if m.halted || !m.started {
		return nil
	}
	switch in.Kind {
	case msg.KindGraph:
		// The only kind the communication-graph protocol speaks.
	case msg.KindState, msg.KindValue, msg.KindInitial, msg.KindEcho,
		msg.KindBenOrReport, msg.KindBenOrProposal, msg.KindGossip, msg.KindReady:
		return nil // explicitly ignored: other protocols' wire kinds
	default:
		return nil
	}
	var out []core.Outbound
	queue := []msg.Message{in}
	for len(queue) > 0 && !m.halted {
		cur := queue[0]
		queue = queue[1:]
		switch {
		case cur.Phase < m.stage:
			continue
		case cur.Phase > m.stage:
			m.pending[cur.Phase] = append(m.pending[cur.Phase], cur)
			continue
		}
		advanced := m.consume(cur)
		if advanced {
			out = append(out, m.advance()...)
			if !m.halted {
				if buf := m.pending[m.stage]; len(buf) > 0 {
					queue = append(queue, buf...)
					delete(m.pending, m.stage)
				}
			}
		}
	}
	return out
}

// consume processes one current-stage message and reports whether the stage
// completed.
func (m *Machine) consume(cur msg.Message) bool {
	if m.stage == 0 {
		if m.stage0Seen[cur.From] {
			return false
		}
		m.stage0Seen[cur.From] = true
		m.mergeRows(cur.Payload)
		m.neighbors = append(m.neighbors, cur.From)
		m.inSet[cur.From] = true
		return len(m.neighbors) >= m.cfg.N-m.cfg.K
	}
	// Flooding stage: only S_p members gate progress, but any authentic
	// knowledge is merged (it can only help completeness).
	m.mergeRows(cur.Payload)
	if !m.inSet[cur.From] || m.stageSeen[cur.From] {
		return false
	}
	m.stageSeen[cur.From] = true
	return len(m.stageSeen) == len(m.neighbors)
}

// advance moves to the next stage, or decides after the last one.
func (m *Machine) advance() []core.Outbound {
	if m.stage == 0 {
		// S_p is now fixed: complete our own row.
		self := m.rows[m.cfg.Self]
		self.neighbors = append([]msg.ID(nil), m.neighbors...)
		slices.Sort(self.neighbors)
		self.hasRow = true
	}
	m.stage++
	clear(m.stageSeen)
	m.sink.Record(trace.Event{
		Kind: trace.EventPhase, Process: m.cfg.Self, Phase: m.stage,
	})
	if int(m.stage) <= m.cfg.N-1 {
		return []core.Outbound{core.ToAll(msg.Graph(m.cfg.Self, m.stage, encodeRows(m.rows)))}
	}
	m.decide()
	return nil
}

// decide applies the footnote's decision rule.
func (m *Machine) decide() {
	m.decided = true
	m.halted = true
	m.decision = msg.V0
	if m.completeAndStronglyConnected() {
		m.decision = parity(m.rows, m.cfg.N)
	}
	m.sink.Record(trace.Event{
		Kind: trace.EventDecide, Process: m.cfg.Self, Phase: m.stage, Value: m.decision,
	})
}

// completeAndStronglyConnected reports whether all n rows are known and the
// graph they form (edge q -> p iff q in S_p) is strongly connected.
func (m *Machine) completeAndStronglyConnected() bool {
	n := m.cfg.N
	adj := make([][]msg.ID, n)  // adj[q] = processes p with q -> p
	radj := make([][]msg.ID, n) // reverse edges
	for p := 0; p < n; p++ {
		r := m.rows[msg.ID(p)]
		if r == nil || !r.hasRow || !r.hasInput {
			return false
		}
		for _, q := range r.neighbors {
			if q < 0 || int(q) >= n {
				return false
			}
			adj[q] = append(adj[q], msg.ID(p))
			radj[p] = append(radj[p], q)
		}
	}
	return reachesAll(adj, n) && reachesAll(radj, n)
}

// reachesAll reports whether node 0 reaches every node along adj.
func reachesAll(adj [][]msg.ID, n int) bool {
	seen := make([]bool, n)
	stack := []msg.ID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == n
}

// parity returns the agreed bivalent function of all inputs: their XOR.
// Flipping any single input flips the outcome, so with all processes
// correct both decision values are reachable (weak bivalence); validity in
// the majority sense is deliberately not provided, which is exactly the
// Section 5 point.
func parity(rows map[msg.ID]*row, n int) msg.Value {
	var v msg.Value
	for p := 0; p < n; p++ {
		v ^= rows[msg.ID(p)].input
	}
	return v
}

// mergeRows merges an encoded knowledge payload into the local rows.
func (m *Machine) mergeRows(payload []byte) {
	decoded, err := decodeRows(payload)
	if err != nil {
		return // malformed knowledge is ignored; fail-stop senders never lie
	}
	for id, r := range decoded {
		if id < 0 || int(id) >= m.cfg.N {
			continue
		}
		cur := m.rows[id]
		if cur == nil {
			cur = &row{}
			m.rows[id] = cur
		}
		if r.hasInput && !cur.hasInput {
			cur.input = r.input
			cur.hasInput = true
		}
		if r.hasRow && !cur.hasRow {
			cur.neighbors = r.neighbors
			cur.hasRow = true
		}
	}
}
