package bivalence_test

import (
	"math/rand/v2"
	"testing"

	"resilient/internal/bivalence"
	"resilient/internal/core"
	"resilient/internal/machinetest"
	"resilient/internal/msg"
)

// FuzzMachine is the native fuzz entry point (CI runs it with -fuzztime):
// the Section 5 machine under mutated configurations, hostile streams, and
// the raw graph payloads the fuzz harness generates for KindGraph.
func FuzzMachine(f *testing.F) {
	f.Add(uint64(1), uint8(5), uint8(2), uint8(0))
	f.Add(uint64(3), uint8(8), uint8(7), uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, kRaw, selfRaw uint8) {
		n := 3 + int(nRaw)%7
		k := int(kRaw) % n
		self := msg.ID(int(selfRaw) % n)
		m, err := bivalence.New(core.Config{
			N: n, K: k, Self: self, Input: msg.Value(int(seed) % 2),
		}, nil)
		if err != nil {
			t.Fatalf("config n=%d k=%d rejected: %v", n, k, err)
		}
		rng := rand.New(rand.NewPCG(seed, 0xb1ff))
		if err := machinetest.Fuzz(m, rng, machinetest.Options{N: n, Steps: 800}); err != nil {
			t.Fatalf("seed %d (n=%d k=%d self=%d): %v", seed, n, k, self, err)
		}
	})
}
