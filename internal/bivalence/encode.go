package bivalence

import (
	"encoding/binary"
	"errors"
	"slices"

	"resilient/internal/msg"
)

// Knowledge payload wire format (big-endian):
//
//	u16 rowCount
//	per row:
//	  u32 id
//	  u8  flags (bit0 = hasInput, bit1 = hasRow)
//	  u8  input
//	  u16 neighborCount
//	  u32 * neighborCount
const (
	flagHasInput = 0x01
	flagHasRow   = 0x02
)

var errMalformed = errors.New("bivalence: malformed knowledge payload")

func encodeRows(rows map[msg.ID]*row) []byte {
	ids := make([]msg.ID, 0, len(rows))
	for id := range rows {
		ids = append(ids, id)
	}
	slices.Sort(ids)

	size := 2
	for _, id := range ids {
		size += 4 + 1 + 1 + 2 + 4*len(rows[id].neighbors)
	}
	buf := make([]byte, 0, size)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(ids)))
	for _, id := range ids {
		r := rows[id]
		buf = binary.BigEndian.AppendUint32(buf, uint32(id))
		var flags byte
		if r.hasInput {
			flags |= flagHasInput
		}
		if r.hasRow {
			flags |= flagHasRow
		}
		buf = append(buf, flags, byte(r.input))
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(r.neighbors)))
		for _, q := range r.neighbors {
			buf = binary.BigEndian.AppendUint32(buf, uint32(q))
		}
	}
	return buf
}

func decodeRows(buf []byte) (map[msg.ID]*row, error) {
	if len(buf) < 2 {
		return nil, errMalformed
	}
	count := int(binary.BigEndian.Uint16(buf[:2]))
	buf = buf[2:]
	//lint:allow hotalloc decoding builds the received knowledge graph; the bivalence protocol exchanges whole maps by design
	rows := make(map[msg.ID]*row, count)
	for i := 0; i < count; i++ {
		if len(buf) < 8 {
			return nil, errMalformed
		}
		id := msg.ID(int32(binary.BigEndian.Uint32(buf[:4])))
		flags := buf[4]
		input := msg.Value(buf[5])
		ncount := int(binary.BigEndian.Uint16(buf[6:8]))
		buf = buf[8:]
		if len(buf) < 4*ncount {
			return nil, errMalformed
		}
		r := &row{
			hasInput: flags&flagHasInput != 0,
			hasRow:   flags&flagHasRow != 0,
		}
		if r.hasInput {
			if !input.Valid() {
				return nil, errMalformed
			}
			r.input = input
		}
		if ncount > 0 {
			r.neighbors = make([]msg.ID, ncount)
			for j := 0; j < ncount; j++ {
				r.neighbors[j] = msg.ID(int32(binary.BigEndian.Uint32(buf[4*j : 4*j+4])))
			}
		}
		buf = buf[4*ncount:]
		rows[id] = r
	}
	if len(buf) != 0 {
		return nil, errMalformed
	}
	return rows, nil
}
