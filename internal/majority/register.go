package majority

import (
	"resilient/internal/coin"
	"resilient/internal/core"
	"resilient/internal/proto"
	"resilient/internal/quorum"
)

func init() {
	proto.Register(proto.Descriptor{
		ID:      proto.Majority,
		Name:    "majority(s4.1)",
		Aliases: []string{"majority"},
		Model:   quorum.FailStop,
		Bound:   "(n-1)/3",
		// The Section 4.1 variant needs n-k > (n+k)/2 to reach its
		// decision threshold: floor((n-1)/3), as the paper states.
		MaxFaults: func(n int) int { return quorum.MaxFaults(n, quorum.Malicious) },
		Coin:      coin.SchemeNone,
		Spawn: func(cfg core.Config, deps proto.Deps) (core.Machine, error) {
			if deps.Unsafe {
				return NewUnsafe(cfg, deps.Sink), nil
			}
			return New(cfg, deps.Sink)
		},
	})
}
