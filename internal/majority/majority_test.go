package majority

import (
	"testing"

	"resilient/internal/core"
	"resilient/internal/msg"
)

func cfg(n, k int, self msg.ID, input msg.Value) core.Config {
	return core.Config{N: n, K: k, Self: self, Input: input}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(cfg(7, 2, 0, msg.V0), nil); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if _, err := New(cfg(7, 3, 0, msg.V0), nil); err == nil {
		t.Error("k with unreachable decision threshold accepted (need 3k < n)")
	}
	if NewUnsafe(cfg(4, 2, 0, msg.V0), nil) == nil {
		t.Error("NewUnsafe returned nil")
	}
}

func feed(t *testing.T, m *Machine, phase msg.Phase, vals []msg.Value) {
	t.Helper()
	for i, v := range vals {
		m.OnMessage(msg.Val(msg.ID(i+1), phase, v))
	}
}

func TestAdoptsMajority(t *testing.T) {
	m, _ := New(cfg(5, 1, 0, msg.V0), nil)
	m.Start()
	feed(t, m, 0, []msg.Value{1, 1, 1, 0})
	if m.Phase() != 1 || m.CurrentValue() != msg.V1 {
		t.Errorf("phase %d value %d", m.Phase(), m.CurrentValue())
	}
}

func TestTieAdoptsZero(t *testing.T) {
	// An even wait count (n-k = 4) permits a 2-2 tie, which the pseudocode
	// resolves to 0; k = 2 here exceeds the variant's decision bound, so
	// the unsafe constructor is used (ties cannot occur with a valid odd
	// wait count anyway).
	m := NewUnsafe(cfg(6, 2, 0, msg.V1), nil)
	m.Start()
	feed(t, m, 0, []msg.Value{1, 1, 0, 0})
	if m.CurrentValue() != msg.V0 {
		t.Errorf("tie adopted %d", m.CurrentValue())
	}
}

func TestDecidesOnSupermajority(t *testing.T) {
	// n=7, k=2: wait 5; decide needs > 4.5, i.e. all 5.
	m, _ := New(cfg(7, 2, 0, msg.V0), nil)
	m.Start()
	feed(t, m, 0, []msg.Value{1, 1, 1, 1, 1})
	if v, ok := m.Decided(); !ok || v != msg.V1 {
		t.Fatalf("decided (%d, %v)", v, ok)
	}
	// Never halts: keeps broadcasting its pinned value.
	if m.Halted() {
		t.Fatal("majority machine halted")
	}
}

func TestOneBelowThresholdDoesNotDecide(t *testing.T) {
	m, _ := New(cfg(7, 2, 0, msg.V0), nil)
	m.Start()
	feed(t, m, 0, []msg.Value{1, 1, 1, 1, 0})
	if _, ok := m.Decided(); ok {
		t.Fatal("decided below threshold")
	}
}

func TestDecidedValuePinned(t *testing.T) {
	m, _ := New(cfg(7, 2, 0, msg.V0), nil)
	m.Start()
	feed(t, m, 0, []msg.Value{1, 1, 1, 1, 1})
	// Later phases full of zeros must not change the pinned value.
	feed(t, m, 1, []msg.Value{0, 0, 0, 0, 0})
	if m.CurrentValue() != msg.V1 {
		t.Errorf("pinned value changed to %d", m.CurrentValue())
	}
	if v, _ := m.Decided(); v != msg.V1 {
		t.Errorf("decision changed to %d", v)
	}
}

func TestDuplicateSenderIgnored(t *testing.T) {
	m, _ := New(cfg(5, 1, 0, msg.V0), nil)
	m.Start()
	for i := 0; i < 10; i++ {
		m.OnMessage(msg.Val(1, 0, msg.V1))
	}
	if m.Phase() != 0 {
		t.Fatal("duplicates advanced the phase")
	}
}

func TestFutureBufferedAndReplayed(t *testing.T) {
	m := NewUnsafe(cfg(5, 2, 0, msg.V0), nil)
	m.Start()
	feed(t, m, 1, []msg.Value{0, 0, 1})
	if m.Phase() != 0 {
		t.Fatal("future values advanced the phase")
	}
	feed(t, m, 0, []msg.Value{0, 0, 1})
	// Phase 0 completes on 3 messages; the buffered phase-1 messages
	// replay and complete phase 1 as well (mixed, so no decision).
	if m.Phase() != 2 {
		t.Fatalf("phase %d, want 2", m.Phase())
	}
	if _, ok := m.Decided(); ok {
		t.Fatal("mixed messages should not decide")
	}
}

func TestForeignKindIgnored(t *testing.T) {
	m, _ := New(cfg(5, 1, 0, msg.V0), nil)
	m.Start()
	if out := m.OnMessage(msg.State(1, 0, msg.V1, 3)); out != nil {
		t.Error("state message processed by majority machine")
	}
}
