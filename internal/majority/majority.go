// Package majority implements the protocol variant analysed in Section 4.1
// of the paper: "In each phase processes send each other their value, and
// wait for n-k messages. Processes change their values to the majority of
// the received message values, and decide a value when receiving more than
// (n+k)/2 messages with that value."
//
// The paper uses this variant (a simplification of the Figure-2 protocol,
// run in the fail-stop model where messages are honest) because its
// execution is exactly the Markov chain P of Section 4.1, making the
// analytic absorption-time bounds directly comparable to measurements.
//
// A decided process keeps participating with its value pinned to the
// decision (the paper's variant never exits its loop); executions are
// stopped by the engine once every correct process has decided.
package majority

import (
	"fmt"
	"sort"

	"resilient/internal/core"
	"resilient/internal/msg"
	"resilient/internal/quorum"
	"resilient/internal/trace"
)

// Machine is a Section-4.1 majority-variant instance at one process.
type Machine struct {
	cfg  core.Config
	sink trace.Sink

	value msg.Value
	phase msg.Phase

	msgCount [2]int
	counted  map[msg.ID]bool
	pending  map[msg.Phase][]msg.Message

	started  bool
	decided  bool
	decision msg.Value
}

var (
	_ core.Machine       = (*Machine)(nil)
	_ core.ValueReporter = (*Machine)(nil)
)

// New returns a majority-variant machine. The paper introduces the variant
// as "a simple variant of the protocol in Fig. 2, that is a
// floor((n-1)/3)-resilient protocol" (Section 4.1): its decision threshold
// of strictly more than (n+k)/2 is reachable from the n-k messages a
// process waits for only when 3k < n, so (n, k) is validated against that
// bound even though the variant runs in the fail-stop fault model. sink may
// be nil.
func New(cfg core.Config, sink trace.Sink) (*Machine, error) {
	if err := cfg.Validate(quorum.Malicious); err != nil {
		return nil, fmt.Errorf("majority: %w", err)
	}
	return NewUnsafe(cfg, sink), nil
}

// NewUnsafe returns a machine without validating (n, k); the Theorem-1
// lower-bound experiment configures k = n/2 deliberately.
func NewUnsafe(cfg core.Config, sink trace.Sink) *Machine {
	if sink == nil {
		sink = trace.Nop{}
	}
	return &Machine{
		cfg:     cfg,
		sink:    sink,
		value:   cfg.Input,
		counted: make(map[msg.ID]bool),
		pending: make(map[msg.Phase][]msg.Message),
	}
}

// ID implements core.Machine.
func (m *Machine) ID() msg.ID { return m.cfg.Self }

// Phase implements core.Machine.
func (m *Machine) Phase() msg.Phase { return m.phase }

// Decided implements core.Machine.
func (m *Machine) Decided() (msg.Value, bool) { return m.decision, m.decided }

// Halted implements core.Machine. The variant never halts on its own; the
// engine stops the run once all correct processes have decided.
func (m *Machine) Halted() bool { return false }

// CurrentValue implements core.ValueReporter.
func (m *Machine) CurrentValue() msg.Value { return m.value }

// Start broadcasts the phase-0 value message.
func (m *Machine) Start() []core.Outbound {
	if m.started {
		return nil
	}
	m.started = true
	return []core.Outbound{core.ToAll(msg.Val(m.cfg.Self, m.phase, m.value))}
}

// OnMessage consumes one delivered message.
func (m *Machine) OnMessage(in msg.Message) []core.Outbound {
	if !m.started {
		return nil
	}
	switch in.Kind {
	case msg.KindValue:
		// The only kind this exchange speaks.
	case msg.KindState, msg.KindInitial, msg.KindEcho, msg.KindBenOrReport,
		msg.KindBenOrProposal, msg.KindGraph, msg.KindGossip, msg.KindReady:
		return nil // explicitly ignored: other protocols' wire kinds
	default:
		return nil
	}
	if !in.Value.Valid() {
		return nil
	}
	var out []core.Outbound
	queue := []msg.Message{in}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		switch {
		case cur.Phase < m.phase:
			continue
		case cur.Phase > m.phase:
			m.pending[cur.Phase] = append(m.pending[cur.Phase], cur)
			continue
		}
		if m.counted[cur.From] {
			continue // one value per process per phase
		}
		m.counted[cur.From] = true
		m.msgCount[cur.Value]++
		if m.msgCount[0]+m.msgCount[1] == quorum.WaitCount(m.cfg.N, m.cfg.K) {
			out = append(out, m.endPhase()...)
			if buf := m.pending[m.phase]; len(buf) > 0 {
				queue = append(queue, buf...)
				delete(m.pending, m.phase)
			}
		}
	}
	return out
}

func (m *Machine) endPhase() []core.Outbound {
	if !m.decided {
		if m.msgCount[1] > m.msgCount[0] {
			m.value = msg.V1
		} else {
			m.value = msg.V0
		}
		for _, v := range []msg.Value{msg.V0, msg.V1} {
			if quorum.ExceedsHalfNPlusK(m.msgCount[v], m.cfg.N, m.cfg.K) {
				m.decided = true
				m.decision = v
				m.value = v
				m.sink.Record(trace.Event{
					Kind: trace.EventDecide, Process: m.cfg.Self,
					Phase: m.phase, Value: v,
				})
				break
			}
		}
	}
	// A decided process keeps echoing its pinned value so the rest of the
	// system can reach its own decision.
	m.msgCount = [2]int{}
	clear(m.counted)
	m.phase++
	m.sink.Record(trace.Event{
		Kind: trace.EventPhase, Process: m.cfg.Self, Phase: m.phase, Value: m.value,
	})
	return []core.Outbound{core.ToAll(msg.Val(m.cfg.Self, m.phase, m.value))}
}

// Clone returns a deep copy of the machine, for exhaustive state-space
// exploration (internal/explore).
func (m *Machine) Clone() *Machine {
	c := *m
	c.counted = make(map[msg.ID]bool, len(m.counted))
	for id, v := range m.counted {
		c.counted[id] = v
	}
	c.pending = make(map[msg.Phase][]msg.Message, len(m.pending))
	for p, msgs := range m.pending {
		c.pending[p] = append([]msg.Message(nil), msgs...)
	}
	return &c
}

// Snapshot returns a deterministic encoding of the machine's full state,
// used as a hash key by the state-space explorer.
func (m *Machine) Snapshot() []byte {
	var b []byte
	b = append(b, byte(m.value))
	b = append(b, byte(int32(m.phase)), byte(int32(m.phase)>>8))
	b = append(b, byte(m.msgCount[0]), byte(m.msgCount[1]))
	var flags byte
	if m.started {
		flags |= 1
	}
	if m.decided {
		flags |= 2
	}
	b = append(b, flags, byte(m.decision))
	ids := make([]int, 0, len(m.counted))
	for id, v := range m.counted {
		if v {
			ids = append(ids, int(id))
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		b = append(b, byte(id))
	}
	b = append(b, 0xFF)
	phases := make([]int, 0, len(m.pending))
	for p := range m.pending {
		phases = append(phases, int(p))
	}
	sort.Ints(phases)
	for _, p := range phases {
		msgs := m.pending[msg.Phase(p)]
		encs := make([]string, len(msgs))
		var scratch []byte
		for i, mm := range msgs {
			scratch = msg.AppendEncode(scratch[:0], mm)
			encs[i] = string(scratch)
		}
		sort.Strings(encs)
		b = append(b, byte(p))
		for _, e := range encs {
			b = append(b, e...)
		}
	}
	return b
}

// WouldIgnore reports whether delivering in to the machine is a guaranteed
// no-op (no state change, no sends). The state-space explorer uses this to
// prune irrelevant deliveries.
func (m *Machine) WouldIgnore(in msg.Message) bool {
	if !m.started {
		return true
	}
	if in.Kind != msg.KindValue || !in.Value.Valid() {
		return true
	}
	if in.Phase < m.phase {
		return true
	}
	return in.Phase == m.phase && m.counted[in.From]
}
