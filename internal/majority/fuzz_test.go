package majority_test

import (
	"math/rand/v2"
	"testing"

	"resilient/internal/core"
	"resilient/internal/machinetest"
	"resilient/internal/majority"
	"resilient/internal/msg"
)

// TestFuzzInvariants floods the Section 4.1 variant with hostile streams.
func TestFuzzInvariants(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewPCG(seed, 0x3a10))
		n := 4 + rng.IntN(8)
		k := rng.IntN((n-1)/3 + 1)
		m, err := majority.New(core.Config{
			N: n, K: k, Self: msg.ID(rng.IntN(n)), Input: msg.Value(rng.IntN(2)),
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := machinetest.Fuzz(m, rng, machinetest.Options{N: n, Steps: 2500}); err != nil {
			t.Fatalf("seed %d (n=%d k=%d): %v", seed, n, k, err)
		}
	}
}
