package resilient

import (
	"context"
	"fmt"
	"time"

	"resilient/internal/core"
	"resilient/internal/faults"
	"resilient/internal/livenet"
	"resilient/internal/msg"
	"resilient/internal/policy"
	"resilient/internal/runtime"
	"resilient/internal/transport"
)

// Engine selects an execution engine. All engines run the same protocol
// machines under the same fault plans and link policies; they differ only in
// where asynchrony comes from.
type Engine int

const (
	// EngineSim is the deterministic discrete-event simulator: virtual
	// time, seeded randomness, reproducible executions.
	EngineSim Engine = iota + 1
	// EngineMem runs one goroutine per process over an in-memory message
	// system; asynchrony comes from the Go scheduler.
	EngineMem
	// EngineJitter is EngineMem with random per-message delivery delays in
	// the transport, realizing the paper's probabilistic delivery
	// assumption (Section 2.3) in real time.
	EngineJitter
	// EngineTCP runs one goroutine per process over a loopback TCP mesh --
	// real sockets, real frames, the deployment shape.
	EngineTCP
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case EngineSim:
		return "sim"
	case EngineMem:
		return "mem"
	case EngineJitter:
		return "jitter"
	case EngineTCP:
		return "tcp"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Live reports whether the engine runs in real time (everything but the
// simulator).
func (e Engine) Live() bool { return e == EngineMem || e == EngineJitter || e == EngineTCP }

// Valid reports whether e names an engine.
func (e Engine) Valid() bool { return e >= EngineSim && e <= EngineTCP }

// ParseEngine resolves an engine name: sim | mem | jitter | tcp.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "sim", "":
		return EngineSim, nil
	case "mem":
		return EngineMem, nil
	case "jitter":
		return EngineJitter, nil
	case "tcp":
		return EngineTCP, nil
	default:
		return 0, fmt.Errorf("resilient: unknown engine %q (want sim | mem | jitter | tcp)", s)
	}
}

// LinkPolicy decides per-link message delivery -- delay, loss, partition --
// for every engine; see the internal policy package. A policy built from a
// Scheduler reproduces the simulator's delay behaviour bit-exactly.
type LinkPolicy = policy.LinkPolicy

// DropPolicy loses each message independently with probability P before
// consulting Base for the delay of survivors.
type DropPolicy = policy.Drop

// PartitionPolicy drops every message crossing between groups; GroupOf maps
// a process to its group.
type PartitionPolicy = policy.Partition

// PolicyFromScheduler lifts a delay Scheduler into a LinkPolicy that never
// drops (nil selects the default Uniform[0.1, 1] scheduler).
func PolicyFromScheduler(s Scheduler) LinkPolicy { return policy.FromScheduler(s) }

// HalvesPartition returns a GroupOf function splitting processes into
// [0, boundary) and [boundary, n).
func HalvesPartition(boundary ID) func(ID) int {
	return func(id ID) int {
		if id < boundary {
			return 0
		}
		return 1
	}
}

// Scenario is one engine-independent experiment: protocol, system size,
// inputs, faults, and link behaviour. The same Scenario value runs on any
// Engine via RunScenario.
type Scenario struct {
	// Protocol selects the consensus protocol.
	Protocol Protocol
	// N is the system size; K the fault parameter.
	N, K int
	// Inputs holds the n initial values.
	Inputs []Value
	// Seed selects the execution (simulator) and seeds policy and coin
	// randomness (all engines).
	Seed uint64
	// Crashes schedules fail-stop deaths, keyed by process. All engines
	// apply the same crash-at-(phase, afterSends) semantics.
	Crashes map[ID]Crash
	// Adversaries assigns Byzantine strategies to processes. All
	// strategies except StrategyBalancer (which needs the simulator's
	// omniscient world view) run on every engine.
	Adversaries map[ID]Strategy
	// Scheduler is the simulator's delay policy when Policy is nil;
	// live engines ignore it (use Policy for engine-independent delays).
	Scheduler Scheduler
	// Policy, when non-nil, decides per-link delivery on every engine:
	// virtual delay units in the simulator, wall-clock units of Unit on
	// the live engines.
	Policy LinkPolicy
	// Unit is the wall-clock length of one abstract delay unit on live
	// engines (0 = livenet.DefaultUnit, one millisecond).
	Unit time.Duration
	// TCP tunes the loopback TCP transport on EngineTCP runs (coalescing
	// window, queue cap, direct mode); other engines ignore it.
	TCP TCPTuning
	// Broadcast selects the echo-broadcast primitive (see
	// SimOptions.Broadcast); all engines honour it.
	Broadcast BroadcastScheme
	// Eps is the sampled scheme's per-acceptance error bound
	// (0 = sample.DefaultEps).
	Eps float64
	// Coin overrides the coin scheme of randomized protocols (see
	// SimOptions.Coin); all engines honour it.
	Coin CoinScheme
	// Unsafe skips the resilience-bound validation of (n, k).
	Unsafe bool
	// Metrics, when non-nil, receives run accounting: "runtime." counters
	// from the simulator, "livenet." (and "net." for TCP) from the live
	// engines.
	Metrics *MetricsRegistry
}

// Outcome is the engine-independent view of one scenario execution. The
// engine-specific report (Sim or Live) carries the full detail.
type Outcome struct {
	// Engine is the engine that produced this outcome.
	Engine Engine
	// Decisions maps every correct process that decided to its value.
	Decisions map[ID]Value
	// DecisionPhase maps deciders to the phase in which they decided.
	DecisionPhase map[ID]Phase
	// Agreement reports whether all decisions carry the same value.
	Agreement bool
	// Value is the common decision when Agreement holds.
	Value Value
	// AllDecided reports whether every correct (non-Byzantine,
	// non-crash-planned) process decided.
	AllDecided bool
	// Crashed lists processes that died under the fault plan.
	Crashed []ID
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// Sim is the simulator's full result (EngineSim only).
	Sim *Result
	// Live is the live engine's full report (live engines only).
	Live *ClusterReport
}

// RunScenario executes one scenario on the chosen engine. The context
// bounds live runs (the simulator ignores it; bound simulated runs with
// MaxEvents/MaxSimTime via Simulate directly). On a live run that ends
// before every correct process decides, the partial Outcome is returned
// alongside the error.
func RunScenario(ctx context.Context, engine Engine, sc Scenario) (*Outcome, error) {
	if !sc.Protocol.Valid() {
		return nil, fmt.Errorf("resilient: unknown protocol %d", int(sc.Protocol))
	}
	switch engine {
	case EngineSim:
		res, err := Simulate(sc.Protocol, sc.N, sc.K, sc.Inputs, SimOptions{
			Seed:        sc.Seed,
			Scheduler:   sc.Scheduler,
			Policy:      sc.Policy,
			Crashes:     sc.Crashes,
			Adversaries: sc.Adversaries,
			Broadcast:   sc.Broadcast,
			Eps:         sc.Eps,
			Coin:        sc.Coin,
			Unsafe:      sc.Unsafe,
			Metrics:     sc.Metrics,
		})
		if err != nil {
			return nil, err
		}
		return &Outcome{
			Engine:        EngineSim,
			Decisions:     res.Decisions,
			DecisionPhase: res.DecisionPhase,
			Agreement:     res.Agreement,
			Value:         res.Value,
			AllDecided:    res.AllDecided,
			Crashed:       res.Crashed,
			Elapsed:       res.WallClock,
			Sim:           res,
		}, nil
	case EngineMem, EngineJitter, EngineTCP:
		cluster, err := newScenarioCluster(engine, sc)
		if err != nil {
			return nil, err
		}
		rep, runErr := cluster.Run(ctx)
		if rep == nil {
			return nil, runErr
		}
		out := &Outcome{
			Engine:        engine,
			Decisions:     rep.DecisionMap(),
			DecisionPhase: make(map[ID]Phase, len(rep.Decisions)),
			Agreement:     rep.Agreement,
			Value:         rep.Value,
			AllDecided:    rep.AllDecided,
			Crashed:       rep.Crashed,
			Elapsed:       rep.Elapsed,
			Live:          rep,
		}
		for _, d := range rep.Decisions {
			out.DecisionPhase[d.Process] = d.Phase
		}
		return out, runErr
	default:
		return nil, fmt.Errorf("resilient: unknown engine %d", int(engine))
	}
}

// newScenarioCluster assembles a live cluster for the scenario: machines
// (honest or strategy-wrapped), transport, fault plan, and link policy.
func newScenarioCluster(engine Engine, sc Scenario) (*livenet.Cluster, error) {
	machines, err := liveMachines(sc)
	if err != nil {
		return nil, err
	}
	var cluster *livenet.Cluster
	switch engine {
	case EngineMem:
		cluster, err = livenet.NewMemCluster(machines)
	case EngineJitter:
		maxDelay := sc.Unit
		if maxDelay <= 0 {
			maxDelay = livenet.DefaultUnit
		}
		cluster, err = livenet.NewJitterCluster(machines, maxDelay, sc.Seed)
	case EngineTCP:
		var conns []transport.Conn
		conns, err = tcpMeshConns(sc.N, sc.Metrics, sc.TCP)
		if err != nil {
			return nil, err
		}
		cluster, err = livenet.NewCluster(machines, conns)
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
		}
	}
	if err != nil {
		return nil, err
	}
	cluster.Metrics = sc.Metrics
	cluster.Crashes = faults.Plan(sc.Crashes)
	cluster.Policy = sc.Policy
	cluster.Unit = sc.Unit
	cluster.Seed = sc.Seed
	if len(sc.Adversaries) > 0 {
		cluster.Byzantine = make(map[msg.ID]bool, len(sc.Adversaries))
		for id := range sc.Adversaries {
			cluster.Byzantine[id] = true
		}
	}
	return cluster, nil
}

// liveMachines builds the scenario's machines for a live engine by reusing
// the simulator's spawner (honest machines, Unsafe variants, and
// strategy-wrapped adversaries) with a synthesized spawn context: a seeded
// per-process RNG, no trace sink, and -- crucially -- no world view, which
// is why the omniscient StrategyBalancer is rejected up front.
func liveMachines(sc Scenario) ([]core.Machine, error) {
	if len(sc.Inputs) != sc.N {
		return nil, fmt.Errorf("resilient: %d inputs for %d processes", len(sc.Inputs), sc.N)
	}
	if !sc.Unsafe && sc.K > sc.Protocol.MaxFaults(sc.N) {
		return nil, fmt.Errorf("resilient: k=%d exceeds %v bound %d at n=%d",
			sc.K, sc.Protocol, sc.Protocol.MaxFaults(sc.N), sc.N)
	}
	for id, strat := range sc.Adversaries {
		if int(id) < 0 || int(id) >= sc.N {
			return nil, fmt.Errorf("resilient: adversary %d outside 0..%d", id, sc.N-1)
		}
		if strat == StrategyBalancer {
			return nil, fmt.Errorf("resilient: %v needs the simulator's omniscient world view; run it on EngineSim", strat)
		}
	}
	simOpts := SimOptions{
		Seed:        sc.Seed,
		Adversaries: sc.Adversaries,
		Broadcast:   sc.Broadcast,
		Eps:         sc.Eps,
		Coin:        sc.Coin,
		Unsafe:      sc.Unsafe,
	}
	dir, err := sampleDirectory(sc.Protocol, sc.N, sc.K, simOpts)
	if err != nil {
		return nil, err
	}
	spawner, err := spawnerFor(sc.Protocol, simOpts, dir)
	if err != nil {
		return nil, err
	}
	machines := make([]core.Machine, sc.N)
	for i := 0; i < sc.N; i++ {
		id := ID(i)
		_, byz := sc.Adversaries[id]
		m, err := spawner(runtime.SpawnContext{
			Config:    core.Config{N: sc.N, K: sc.K, Self: id, Input: sc.Inputs[i]},
			RNG:       newRand(sc.Seed ^ uint64(i+1)*0x9e3779b97f4a7c15),
			Byzantine: byz,
		})
		if err != nil {
			return nil, fmt.Errorf("resilient: build p%d: %w", i, err)
		}
		machines[i] = m
	}
	return machines, nil
}
