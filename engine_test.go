package resilient

import (
	"context"
	"fmt"
	"slices"
	"testing"
	"time"

	"resilient/internal/adversary"
	"resilient/internal/proto"
)

func unanimous(n int, v Value) []Value {
	inputs := make([]Value, n)
	for i := range inputs {
		inputs[i] = v
	}
	return inputs
}

// runParity executes one scenario on every engine in the matrix and checks
// the engine-independent outcome is identical: every correct process
// decides, all decisions agree, and -- because the inputs are unanimous --
// validity pins the decided value, so it must match across engines even
// though the schedules differ wildly.
func runParity(t *testing.T, sc Scenario, wantValue Value, wantDeciders int, wantCrashed []ID) {
	t.Helper()
	for _, engine := range []Engine{EngineSim, EngineMem, EngineTCP} {
		t.Run(engine.String(), func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			out, err := RunScenario(ctx, engine, sc)
			if err != nil {
				t.Fatalf("%v: %v", engine, err)
			}
			if !out.AllDecided {
				t.Fatalf("%v: not all correct processes decided: %+v", engine, out.Decisions)
			}
			if !out.Agreement {
				t.Fatalf("%v: disagreement: %+v", engine, out.Decisions)
			}
			if out.Value != wantValue {
				t.Fatalf("%v: decided %d, want %d", engine, out.Value, wantValue)
			}
			if len(out.Decisions) != wantDeciders {
				t.Fatalf("%v: %d deciders, want %d", engine, len(out.Decisions), wantDeciders)
			}
			for id, v := range out.Decisions {
				if v != wantValue {
					t.Fatalf("%v: p%d decided %d, want %d", engine, id, v, wantValue)
				}
			}
			crashed := slices.Clone(out.Crashed)
			slices.Sort(crashed)
			if !slices.Equal(crashed, wantCrashed) {
				t.Fatalf("%v: crashed %v, want %v", engine, crashed, wantCrashed)
			}
		})
	}
}

// TestEngineParityFailStop runs one fail-stop scenario -- a mid-broadcast
// death and an initially-dead process, k faults in total -- on the
// simulator, the in-memory engine, and the TCP mesh.
func TestEngineParityFailStop(t *testing.T) {
	runParity(t, Scenario{
		Protocol: ProtocolFailStop,
		N:        7, K: 3,
		Inputs: unanimous(7, V1),
		Seed:   11,
		Crashes: map[ID]Crash{
			5: {Process: 5, Phase: 1, AfterSends: 3},
			6: {Process: 6, Phase: 0, AfterSends: 0},
		},
	}, V1, 5, []ID{5, 6})
}

// TestEngineParityMalicious runs one malicious scenario -- a constant liar
// plus a fail-stop crash, k faults in total -- on all three engines.
func TestEngineParityMalicious(t *testing.T) {
	runParity(t, Scenario{
		Protocol: ProtocolMalicious,
		N:        7, K: 2,
		Inputs: unanimous(7, V1),
		Seed:   5,
		Adversaries: map[ID]Strategy{
			5: StrategyLiar0,
		},
		Crashes: map[ID]Crash{
			6: {Process: 6, Phase: 0, AfterSends: 0},
		},
	}, V1, 5, []ID{6})
}

// TestEngineParityBenOrShared runs the shared-coin Ben-Or variant on all
// three engines. The shared coin derives flips from (run seed, phase)
// alone, so one read-only source serves every process concurrently -- the
// live engines exercise that concurrency for real.
func TestEngineParityBenOrShared(t *testing.T) {
	runParity(t, Scenario{
		Protocol: ProtocolBenOrShared,
		N:        7, K: 3,
		Inputs: unanimous(7, V1),
		Seed:   7,
	}, V1, 7, nil)
}

// TestEngineParityRegistry runs every registered protocol through the
// simulator and the in-memory engine at its own resilience bound,
// fault-free with unanimous inputs: all processes decide, they agree, and
// -- unless the protocol's checker skips validity -- the decision is the
// unanimous input. Directory-capable protocols run in their full-mesh
// fallback (no directory wired). Registering a protocol automatically
// enrolls it here.
func TestEngineParityRegistry(t *testing.T) {
	for _, p := range Protocols() {
		d, ok := proto.Lookup(p)
		if !ok {
			t.Fatalf("Protocols() returned unregistered %v", p)
		}
		sc := Scenario{
			Protocol: p,
			N:        7, K: p.MaxFaults(7),
			Inputs: unanimous(7, V1),
			Seed:   9,
		}
		for _, engine := range []Engine{EngineSim, EngineMem} {
			t.Run(fmt.Sprintf("%v/%v", p, engine), func(t *testing.T) {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				out, err := RunScenario(ctx, engine, sc)
				if err != nil {
					t.Fatal(err)
				}
				if !out.AllDecided || !out.Agreement {
					t.Fatalf("allDecided=%v agreement=%v decisions=%+v",
						out.AllDecided, out.Agreement, out.Decisions)
				}
				if !d.SkipValidity && out.Value != V1 {
					t.Fatalf("decided %d, validity demands the unanimous input %d", out.Value, V1)
				}
			})
		}
	}
}

// TestTCPCrashAtPhasePlan drives a full crash-at-phase plan over real
// sockets: k of n processes die at planned points (one initially dead, one
// mid-broadcast, one at a phase boundary) and the n-k survivors, a strict
// majority, still decide.
func TestTCPCrashAtPhasePlan(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	out, err := RunScenario(ctx, EngineTCP, Scenario{
		Protocol: ProtocolFailStop,
		N:        7, K: 3,
		Inputs: []Value{0, 1, 0, 1, 0, 1, 0},
		Seed:   3,
		Crashes: map[ID]Crash{
			2: {Process: 2, Phase: 1, AfterSends: 2},
			4: {Process: 4, Phase: 2, AfterSends: 0},
			6: {Process: 6, Phase: 0, AfterSends: 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllDecided || !out.Agreement {
		t.Fatalf("survivors failed to decide: %+v", out)
	}
	if want := []ID{2, 4, 6}; !slices.Equal(out.Crashed, want) {
		t.Fatalf("crashed %v, want %v", out.Crashed, want)
	}
	if len(out.Decisions) != 4 {
		t.Fatalf("%d deciders, want 4", len(out.Decisions))
	}
	for _, id := range []ID{2, 4, 6} {
		if _, ok := out.Decisions[id]; ok {
			t.Fatalf("crashed p%d recorded a decision", id)
		}
	}
}

// TestBalancerIsSimOnly: the omniscient balancer strategy needs the
// simulator's world view; live engines must reject it up front instead of
// crashing mid-run.
func TestBalancerIsSimOnly(t *testing.T) {
	ctx := context.Background()
	_, err := RunScenario(ctx, EngineMem, Scenario{
		Protocol: ProtocolMalicious,
		N:        7, K: 2,
		Inputs:      unanimous(7, V1),
		Adversaries: map[ID]Strategy{6: StrategyBalancer},
	})
	if err == nil {
		t.Fatal("balancer accepted on a live engine")
	}
	// The same scenario must still run on the simulator.
	if _, err := RunScenario(ctx, EngineSim, Scenario{
		Protocol: ProtocolMalicious,
		N:        7, K: 2,
		Inputs:      unanimous(7, V1),
		Adversaries: map[ID]Strategy{6: StrategyBalancer},
	}); err != nil {
		t.Fatalf("balancer rejected on the simulator: %v", err)
	}
}

// TestParseEngine pins the flag-facing engine names.
func TestParseEngine(t *testing.T) {
	for _, want := range []Engine{EngineSim, EngineMem, EngineJitter, EngineTCP} {
		got, err := ParseEngine(want.String())
		if err != nil || got != want {
			t.Errorf("ParseEngine(%q) = %v, %v", want.String(), got, err)
		}
	}
	if _, err := ParseEngine("quantum"); err == nil {
		t.Error("unknown engine accepted")
	}
	if EngineSim.Live() {
		t.Error("sim reported live")
	}
	for _, e := range []Engine{EngineMem, EngineJitter, EngineTCP} {
		if !e.Live() {
			t.Errorf("%v not reported live", e)
		}
	}
}

// TestBridgeCoalitionEnablesBothSides is the Theorem 3 schedule shape as an
// end-to-end run: groups S = {0..3} and T = {2..6} overlap in a coalition
// {2, 3} that talks to both sides. Each side has at least n-k members, so
// with the coalition bridging them every process reaches its witness quorum
// and decides -- under a schedule where direct S-only/T-only traffic never
// flows.
func TestBridgeCoalitionEnablesBothSides(t *testing.T) {
	res, err := Simulate(ProtocolFailStop, 7, 3, unanimous(7, V1), SimOptions{
		Seed:       3,
		Scheduler:  adversary.Bridge{GroupOf: adversary.Overlap(2, 4)},
		MaxSimTime: 1e5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided || !res.Agreement || res.Value != V1 {
		t.Fatalf("bridged run failed: allDecided=%v agreement=%v value=%d stalled=%v",
			res.AllDecided, res.Agreement, res.Value, res.Stalled)
	}
}

// TestPartitionStallsWhereBridgeDecides is the control for the bridge test:
// the same split without the coalition (a hard Halves(2) partition) leaves
// the small side short of its quorum, so the run cannot complete.
func TestPartitionStallsWhereBridgeDecides(t *testing.T) {
	res, err := Simulate(ProtocolFailStop, 7, 3, unanimous(7, V1), SimOptions{
		Seed:       3,
		Scheduler:  adversary.Partition{GroupOf: adversary.Halves(2)},
		MaxSimTime: 1e5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AllDecided {
		t.Fatal("hard-partitioned run decided everywhere")
	}
	if res.Stalled != TimeHorizon {
		t.Fatalf("stalled = %v, want %v (cross traffic parked beyond the horizon)", res.Stalled, TimeHorizon)
	}
}

// TestPartitionPolicyDrainsInsteadOfHorizonChase: expressed as a link
// policy, the same partition drops cross traffic outright, so the simulator
// drains its queue and stops instead of chasing a 1e9-unit delivery
// horizon; the drops are accounted.
func TestPartitionPolicyDrainsInsteadOfHorizonChase(t *testing.T) {
	res, err := Simulate(ProtocolFailStop, 7, 3, unanimous(7, V1), SimOptions{
		Seed:   3,
		Policy: PartitionPolicy{GroupOf: HalvesPartition(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AllDecided {
		t.Fatal("partition-policy run decided everywhere")
	}
	if res.Stalled != QueueDrained {
		t.Fatalf("stalled = %v, want %v", res.Stalled, QueueDrained)
	}
	if res.MessagesDropped == 0 {
		t.Fatal("no drops recorded under a partition policy")
	}
	// Dropped messages never enter the queue, so they can account for at
	// most the sent/delivered gap (the rest reached halted machines).
	if res.MessagesDropped > res.MessagesSent-res.MessagesDelivered {
		t.Fatalf("dropped %d exceeds sent %d - delivered %d",
			res.MessagesDropped, res.MessagesSent, res.MessagesDelivered)
	}
}

// TestScenarioSimMatchesSimulate: EngineSim through the scenario API is the
// same deterministic execution as calling Simulate directly.
func TestScenarioSimMatchesSimulate(t *testing.T) {
	sc := Scenario{
		Protocol: ProtocolFailStop,
		N:        7, K: 3,
		Inputs: []Value{0, 1, 0, 1, 0, 1, 0},
		Seed:   42,
	}
	out, err := RunScenario(context.Background(), EngineSim, sc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(sc.Protocol, sc.N, sc.K, sc.Inputs, SimOptions{Seed: sc.Seed})
	if err != nil {
		t.Fatal(err)
	}
	if out.Sim.SimTime != res.SimTime || out.Sim.MessagesSent != res.MessagesSent ||
		out.Value != res.Value || out.Sim.Events != res.Events {
		t.Fatalf("scenario sim diverged from Simulate: %+v vs %+v", out.Sim, res)
	}
}
