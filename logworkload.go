package resilient

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// Defaults for the open-loop log workload.
const (
	// DefaultWorkloadOps is the number of operations generated.
	DefaultWorkloadOps = 4096
	// DefaultWorkloadClients is the simulated client population.
	DefaultWorkloadClients = 64
	// DefaultWorkloadOpBytes is the operation payload size.
	DefaultWorkloadOpBytes = 16
	// workloadOpHeader is the fixed op prefix: sequence (8) + client (4).
	workloadOpHeader = 12
)

// LogWorkloadOptions configures an open-loop replicated-log workload: a
// generator submits operations on a paced arrival schedule regardless of
// commit progress (open loop -- queueing delay is measured, not hidden),
// an adaptive batcher folds arrivals into slot batches (full batch OR
// linger expiry, mirroring the TCP transport's write coalescer), and the
// log pipeline commits them.
type LogWorkloadOptions struct {
	// Log configures the underlying replicated log.
	Log LogOptions
	// Ops is the total operations to submit (0 = DefaultWorkloadOps).
	Ops int
	// Rate is the target arrival rate in ops/sec with exponential
	// inter-arrival times. 0 submits every operation up front (unpaced:
	// the closed-loop maximum-throughput shape).
	Rate float64
	// Clients is the simulated client population; each operation is stamped
	// with a client drawn from it (0 = DefaultWorkloadClients).
	Clients int
	// OpBytes is each operation's payload size, at least the 12-byte
	// sequence+client header (0 = DefaultWorkloadOpBytes).
	OpBytes int
}

// genWorkloadOps deterministically generates the workload's operations:
// a sequence number, a client id drawn from the seeded RNG, and padding to
// OpBytes.
func genWorkloadOps(seed uint64, count, clients, opBytes int) [][]byte {
	rng := newRand(seed ^ 0xc2b2ae3d27d4eb4f)
	ops := make([][]byte, count)
	buf := make([]byte, count*opBytes)
	for i := range ops {
		op := buf[i*opBytes : (i+1)*opBytes]
		binary.BigEndian.PutUint64(op[0:8], uint64(i))
		binary.BigEndian.PutUint32(op[8:12], uint32(rng.IntN(clients)))
		for j := workloadOpHeader; j < opBytes; j++ {
			op[j] = byte(i >> (j % 8))
		}
		ops[i] = op
	}
	return ops
}

// RunLogWorkload drives the replicated log with a generated workload and
// reports committed throughput and commit-latency percentiles. With Rate 0,
// or on EngineSim (whose clock is virtual), the workload degenerates to the
// closed-loop RunLog over the same deterministically generated operations.
func RunLogWorkload(ctx context.Context, opts LogWorkloadOptions) (*LogReport, error) {
	count := opts.Ops
	if count == 0 {
		count = DefaultWorkloadOps
	}
	if count < 1 {
		return nil, fmt.Errorf("resilient: workload ops %d < 1", count)
	}
	clients := opts.Clients
	if clients == 0 {
		clients = DefaultWorkloadClients
	}
	if clients < 1 {
		return nil, fmt.Errorf("resilient: workload clients %d < 1", clients)
	}
	opBytes := opts.OpBytes
	if opBytes == 0 {
		opBytes = DefaultWorkloadOpBytes
	}
	if opBytes < workloadOpHeader {
		return nil, fmt.Errorf("resilient: workload op size %d < %d-byte header", opBytes, workloadOpHeader)
	}
	if opts.Rate < 0 {
		return nil, fmt.Errorf("resilient: workload rate %v < 0", opts.Rate)
	}

	ops := genWorkloadOps(opts.Log.Seed, count, clients, opBytes)
	r, err := newLogRun(opts.Log)
	if err != nil {
		return nil, err
	}
	if r.engine == EngineSim || opts.Rate == 0 {
		return RunLog(ctx, opts.Log, ops)
	}

	ch := make(chan *logBatch, 2*r.window)
	go r.feedOpenLoop(ctx, ch, ops, opts.Rate)
	return r.runLive(ctx, ch)
}

// feedOpenLoop submits ops on an exponential arrival schedule at rate
// ops/sec and batches them adaptively: a batch closes when full or when its
// oldest operation has lingered past the linger window, whichever is first.
// The schedule never waits for commits -- if the pipeline falls behind, the
// batcher queue grows and the delay shows up in commit latency, which is
// the point of an open-loop driver.
func (r *logRun) feedOpenLoop(ctx context.Context, ch chan<- *logBatch, ops [][]byte, rate float64) {
	defer close(ch)
	rng := newRand(r.seed ^ 0x9e3779b97f4a7c15)
	var cur *logBatch
	var lingerEnd time.Time
	flush := func() bool {
		if cur == nil {
			return true
		}
		select {
		case ch <- cur:
			cur = nil
			return true
		case <-ctx.Done():
			return false
		}
	}
	next := time.Now()
	for _, op := range ops {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		next = next.Add(time.Duration(-math.Log(u) / rate * float64(time.Second)))
		for {
			now := time.Now()
			if cur != nil && !lingerEnd.After(now) {
				if !flush() {
					return
				}
			}
			if !next.After(now) {
				break
			}
			sleep := next.Sub(now)
			if cur != nil {
				if d := lingerEnd.Sub(now); d < sleep {
					sleep = d
				}
			}
			timer := time.NewTimer(sleep)
			select {
			case <-ctx.Done():
				timer.Stop()
				return
			case <-timer.C:
			}
		}
		if cur == nil {
			cur = &logBatch{}
			lingerEnd = time.Now().Add(r.linger)
		}
		cur.ops = append(cur.ops, op)
		cur.submitted = append(cur.submitted, time.Now())
		if len(cur.ops) >= r.batch {
			if !flush() {
				return
			}
		}
	}
	flush()
}
