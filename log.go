package resilient

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"resilient/internal/faults"
	"resilient/internal/livenet"
	"resilient/internal/metrics"
	"resilient/internal/msg"
	"resilient/internal/netxport"
	"resilient/internal/runtime"
	"resilient/internal/transport"
)

// Defaults for the replicated-log layer.
const (
	// DefaultLogBatch is the maximum number of operations per slot batch.
	DefaultLogBatch = 16
	// DefaultLogPipeline is the window of consensus slots in flight at once.
	DefaultLogPipeline = 4
	// DefaultLogLinger is how long the open-loop batcher holds a non-full
	// batch open waiting for more operations.
	DefaultLogLinger = 200 * time.Microsecond
	// maxLogOp bounds a single operation's payload so any batch chunk fits
	// in one wire frame with room for framing overhead.
	maxLogOp = msg.MaxPayload - 16
)

// LogCrash schedules a slot-boundary fail-stop: the process participates
// fully in every slot before Slot and not at all from Slot on. Slots whose
// rotating proposer is dead become no-op slots -- the survivors still run
// consensus for the slot and unanimously decide "no batch", preserving the
// one-decision-per-slot invariant the commit order is built on.
type LogCrash struct {
	// Process is the crashing process.
	Process ID
	// Slot is the first slot the process is dead for.
	Slot int
}

// LogOptions configures a replicated-log run. The log multiplexes one
// consensus instance per slot (Figure-2 authenticated echo by default) over
// a shared transport: slot s is proposed by process s mod n, carries a
// batch of operations when that proposer is alive, and commits in slot
// order.
type LogOptions struct {
	// Engine selects the execution engine (default EngineSim).
	Engine Engine
	// Protocol selects the per-slot consensus protocol (default
	// ProtocolMalicious). A slot needs a validity-respecting binary
	// consensus decision, so ProtocolBroadcast (not a consensus) and
	// ProtocolBivalence (decides input parity) are rejected.
	Protocol Protocol
	// Coin overrides the coin scheme of randomized slot protocols (see
	// SimOptions.Coin).
	Coin CoinScheme
	// N is the replica count (default 7); K the fault parameter
	// (0 = the protocol's bound for N).
	N, K int
	// Seed selects the execution; per-slot machine seeds derive from it.
	Seed uint64
	// Batch is the maximum operations per slot (0 = DefaultLogBatch).
	Batch int
	// Pipeline is the window of slots in flight concurrently
	// (0 = DefaultLogPipeline). Commits are still delivered in slot order
	// through a reorder buffer bounded by the window.
	Pipeline int
	// Linger is the open-loop batcher's hold time for a non-full batch
	// (0 = DefaultLogLinger); closed-loop RunLog ignores it.
	Linger time.Duration
	// Crashes schedules slot-boundary fail-stop deaths. At most K processes
	// may crash over the whole run.
	Crashes []LogCrash
	// TCP tunes the loopback TCP transport on EngineTCP runs.
	TCP TCPTuning
	// Unit is the maximum per-message delay on EngineJitter runs
	// (0 = livenet.DefaultUnit); other engines ignore it.
	Unit time.Duration
	// Metrics, when non-nil, receives log accounting under "log." plus the
	// underlying engine's usual instruments.
	Metrics *MetricsRegistry
}

// LogReport summarizes a replicated-log run.
type LogReport struct {
	// Engine is the engine that produced this report.
	Engine Engine
	// Ops counts committed operations.
	Ops int
	// Slots counts consensus instances run, NoopSlots the subset that
	// decided "no batch" because their proposer was dead, and Batches the
	// batches committed.
	Slots, NoopSlots, Batches int
	// Committed holds every committed operation in commit order. Two runs
	// of the same seed, ops, and crash plan produce byte-identical
	// sequences on every engine.
	Committed [][]byte
	// SlotDecisions holds each slot's decided value in slot order: V1 for a
	// committed batch, V0 for a no-op slot.
	SlotDecisions []Value
	// Elapsed is the wall-clock duration of the run and OpsPerSec the
	// committed-operation throughput over it.
	Elapsed   time.Duration
	OpsPerSec float64
	// P50, P95, P99 are commit-latency percentiles -- operation submission
	// to in-order commit delivery -- on live engines (zero on EngineSim,
	// whose latencies are virtual; see SimTime).
	P50, P95, P99 time.Duration
	// SimTime is the global virtual end time of the run (EngineSim only).
	SimTime float64
}

// logMetrics holds the log layer's instrument handles; all fields are nil
// (free no-ops) when metrics are off.
type logMetrics struct {
	slots      *metrics.Counter
	noops      *metrics.Counter
	batches    *metrics.Counter
	ops        *metrics.Counter
	commitSecs *metrics.Histogram
	batchOps   *metrics.Histogram
}

func newLogMetrics(reg *MetricsRegistry) logMetrics {
	if reg == nil {
		return logMetrics{}
	}
	m := reg.Scoped("log.")
	return logMetrics{
		slots:      m.Counter("slots"),
		noops:      m.Counter("noop_slots"),
		batches:    m.Counter("batches"),
		ops:        m.Counter("ops_committed"),
		commitSecs: m.Histogram("commit_latency_seconds", metrics.TimeBuckets()),
		batchOps:   m.Histogram("batch_ops", metrics.ExpBuckets(1, 2, 8)),
	}
}

// logBatch is one slot's worth of operations with their arrival times
// (nil submitted = closed loop, latency measured from run start).
type logBatch struct {
	ops       [][]byte
	submitted []time.Time
}

// slotDesc describes one consensus slot: its rotating proposer, the
// per-process alive mask under the slot-boundary crash plan, and the batch
// it carries (nil for a no-op slot).
type slotDesc struct {
	slot     int
	proposer ID
	run      []bool
	batch    *logBatch
}

// logRun is a normalized, validated log configuration.
type logRun struct {
	engine   Engine
	protocol Protocol
	coin     CoinScheme
	n, k     int
	seed     uint64
	batch    int
	window   int
	linger   time.Duration
	crashAt  map[ID]int // process -> first dead slot
	tcp      TCPTuning
	unit     time.Duration
	reg      *MetricsRegistry
	met      logMetrics
}

func newLogRun(opts LogOptions) (*logRun, error) {
	r := &logRun{
		engine:   opts.Engine,
		protocol: opts.Protocol,
		coin:     opts.Coin,
		n:        opts.N,
		k:        opts.K,
		seed:     opts.Seed,
		batch:    opts.Batch,
		window:   opts.Pipeline,
		linger:   opts.Linger,
		tcp:      opts.TCP,
		unit:     opts.Unit,
		reg:      opts.Metrics,
	}
	if r.engine == 0 {
		r.engine = EngineSim
	}
	if !r.engine.Valid() {
		return nil, fmt.Errorf("resilient: unknown engine %d", int(r.engine))
	}
	if r.protocol == 0 {
		r.protocol = ProtocolMalicious
	}
	if !r.protocol.Valid() {
		return nil, fmt.Errorf("resilient: unknown protocol %d", int(r.protocol))
	}
	if r.protocol == ProtocolBroadcast || r.protocol == ProtocolBivalence {
		return nil, fmt.Errorf("resilient: log slots need a validity-respecting consensus protocol, not %v", r.protocol)
	}
	if r.n == 0 {
		r.n = 7
	}
	if r.n < 1 {
		return nil, fmt.Errorf("resilient: log needs n >= 1, got %d", r.n)
	}
	if r.k == 0 {
		r.k = r.protocol.MaxFaults(r.n)
	}
	if r.k < 0 || r.k > r.protocol.MaxFaults(r.n) {
		return nil, fmt.Errorf("resilient: log k=%d exceeds %v bound %d at n=%d",
			r.k, r.protocol, r.protocol.MaxFaults(r.n), r.n)
	}
	if r.batch == 0 {
		r.batch = DefaultLogBatch
	}
	if r.batch < 1 {
		return nil, fmt.Errorf("resilient: log batch %d < 1", r.batch)
	}
	if r.window == 0 {
		r.window = DefaultLogPipeline
	}
	if r.window < 1 {
		return nil, fmt.Errorf("resilient: log pipeline window %d < 1", r.window)
	}
	if r.linger == 0 {
		r.linger = DefaultLogLinger
	}
	if len(opts.Crashes) > r.k {
		return nil, fmt.Errorf("resilient: %d log crashes exceed k=%d", len(opts.Crashes), r.k)
	}
	r.crashAt = make(map[ID]int, len(opts.Crashes))
	for _, c := range opts.Crashes {
		if int(c.Process) < 0 || int(c.Process) >= r.n {
			return nil, fmt.Errorf("resilient: log crash process %d outside 0..%d", c.Process, r.n-1)
		}
		if c.Slot < 0 {
			return nil, fmt.Errorf("resilient: log crash slot %d < 0", c.Slot)
		}
		if _, dup := r.crashAt[c.Process]; dup {
			return nil, fmt.Errorf("resilient: duplicate log crash for process %d", c.Process)
		}
		r.crashAt[c.Process] = c.Slot
	}
	r.met = newLogMetrics(r.reg)
	return r, nil
}

// aliveAt reports whether process p participates in slot s.
func (r *logRun) aliveAt(p ID, s int) bool {
	at, crashed := r.crashAt[p]
	return !crashed || s < at
}

// desc builds slot s's descriptor carrying the given batch; the caller must
// pass nil exactly when s's proposer is dead.
func (r *logRun) desc(s int, b *logBatch) slotDesc {
	d := slotDesc{slot: s, proposer: ID(s % r.n), run: make([]bool, r.n), batch: b}
	for i := 0; i < r.n; i++ {
		d.run[i] = r.aliveAt(ID(i), s)
	}
	return d
}

// plan lays batches onto slots: each batch takes the next slot whose
// rotating proposer is alive, and every dead-proposer slot skipped on the
// way becomes a no-op slot (the survivors still decide it, to V0). The
// slot sequence -- hence the commit order -- is a pure function of the
// batch sequence and the crash plan, which is what makes the committed
// sequence engine-independent.
func (r *logRun) plan(batches []*logBatch) []slotDesc {
	var descs []slotDesc
	s := 0
	for _, b := range batches {
		for !r.aliveAt(ID(s%r.n), s) {
			descs = append(descs, r.desc(s, nil))
			s++
		}
		descs = append(descs, r.desc(s, b))
		s++
	}
	return descs
}

// slotSeed derives slot s's machine seed.
func (r *logRun) slotSeed(s int) uint64 {
	return r.seed ^ (uint64(s)+1)*0x94d049bb133111eb
}

// slotInputs returns the unanimous per-process input for a slot: V1
// (commit the batch) when the proposer is alive, V0 (no-op) otherwise.
func (d *slotDesc) inputs(n int) []Value {
	v := msg.V0
	if d.batch != nil {
		v = msg.V1
	}
	in := make([]Value, n)
	for i := range in {
		in[i] = v
	}
	return in
}

// batchFrames packs a batch's operations into length-prefixed wire chunks,
// each within the frame payload bound.
func batchFrames(ops [][]byte) [][]byte {
	var frames [][]byte
	var cur []byte
	var buf [binary.MaxVarintLen64]byte
	for _, op := range ops {
		n := binary.PutUvarint(buf[:], uint64(len(op)))
		if len(cur) > 0 && len(cur)+n+len(op) > msg.MaxPayload {
			frames = append(frames, cur)
			cur = nil
		}
		cur = append(cur, buf[:n]...)
		cur = append(cur, op...)
	}
	if len(cur) > 0 {
		frames = append(frames, cur)
	}
	return frames
}

// RunLog runs the replicated log to completion over a fixed operation list
// (closed loop): the operations are batched Batch at a time, each batch is
// committed through its own consensus slot with up to Pipeline slots in
// flight, and the report's Committed sequence reflects in-order commit
// delivery. The same (ops, seed, crash plan) produces a byte-identical
// committed sequence on every engine.
func RunLog(ctx context.Context, opts LogOptions, ops [][]byte) (*LogReport, error) {
	r, err := newLogRun(opts)
	if err != nil {
		return nil, err
	}
	for i, op := range ops {
		if len(op) > maxLogOp {
			return nil, fmt.Errorf("resilient: log op %d is %d bytes (max %d)", i, len(op), maxLogOp)
		}
	}
	var batches []*logBatch
	for lo := 0; lo < len(ops); lo += r.batch {
		hi := lo + r.batch
		if hi > len(ops) {
			hi = len(ops)
		}
		batches = append(batches, &logBatch{ops: ops[lo:hi]})
	}
	if r.engine == EngineSim {
		return r.runSim(batches)
	}
	ch := make(chan *logBatch, len(batches))
	for _, b := range batches {
		ch <- b
	}
	close(ch)
	return r.runLive(ctx, ch)
}

// runSim executes the planned slots on the deterministic simulator via
// runtime.RunMulti: every slot is an independent instance config and the
// pipeline window is the multi-run's admission window on the shared global
// virtual clock.
func (r *logRun) runSim(batches []*logBatch) (*LogReport, error) {
	start := time.Now()
	descs := r.plan(batches)
	cfgs := make([]runtime.Config, len(descs))
	for i, d := range descs {
		seed := r.slotSeed(d.slot)
		spawner, err := spawnerFor(r.protocol, SimOptions{Seed: seed, Coin: r.coin}, nil)
		if err != nil {
			return nil, err
		}
		var dead []msg.ID
		for p, ok := range d.run {
			if !ok {
				dead = append(dead, msg.ID(p))
			}
		}
		cfgs[i] = runtime.Config{
			N:       r.n,
			K:       r.k,
			Inputs:  d.inputs(r.n),
			Spawn:   spawner,
			Crashes: faults.InitiallyDead(dead...),
			Seed:    seed,
			Metrics: r.reg,
		}
	}
	mrs, err := runtime.RunMulti(cfgs, r.window)
	if err != nil {
		return nil, err
	}
	rep := &LogReport{Engine: EngineSim}
	for i, mr := range mrs {
		res := mr.Result
		if !res.AllDecided || !res.Agreement {
			return nil, fmt.Errorf("resilient: log slot %d: decided=%v agreement=%v stalled=%v",
				descs[i].slot, res.AllDecided, res.Agreement, res.Stalled)
		}
		r.recordSlot(rep, descs[i], res.Value, time.Time{})
		if mr.End > rep.SimTime {
			rep.SimTime = mr.End
		}
	}
	r.finishReport(rep, start, nil)
	return rep, nil
}

// slotRes is one finished slot on a live engine.
type slotRes struct {
	desc slotDesc
	out  livenet.InstanceOutcome
	err  error
}

// runLive executes batches arriving on ch over a live engine with up to
// window slots in flight. Slot transports: EngineTCP multiplexes every slot
// over ONE shared loopback mesh via per-slot netxport instance conns;
// EngineMem and EngineJitter give each slot a fresh in-memory system.
// Commits are delivered in slot order through a reorder buffer bounded by
// the window, and each operation's latency is measured from submission to
// that in-order delivery point.
func (r *logRun) runLive(ctx context.Context, ch <-chan *logBatch) (*LogReport, error) {
	start := time.Now()
	var endpoints []*netxport.Endpoint
	if r.engine == EngineTCP {
		eps, err := tcpMeshEndpoints(r.n, r.reg, r.tcp)
		if err != nil {
			return nil, err
		}
		endpoints = eps
		defer func() {
			for _, ep := range endpoints {
				ep.Close()
			}
		}()
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	resCh := make(chan slotRes, r.window)
	sem := make(chan struct{}, r.window)
	var wg sync.WaitGroup

	// Collector: reorder finished slots into slot order and commit at the
	// frontier. Commit latency is stamped HERE -- a slot that finished early
	// but sits behind a straggler in the window has not committed yet.
	rep := &LogReport{Engine: r.engine}
	var lats []time.Duration
	var runErr error
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		pendingRes := make(map[int]slotRes, r.window)
		frontier := 0
		for res := range resCh {
			pendingRes[res.desc.slot] = res
			for {
				next, ok := pendingRes[frontier]
				if !ok {
					break
				}
				delete(pendingRes, frontier)
				frontier++
				if next.err != nil {
					if runErr == nil {
						runErr = fmt.Errorf("resilient: log slot %d: %w", next.desc.slot, next.err)
						cancel()
					}
					continue
				}
				if !next.out.Agreement {
					if runErr == nil {
						runErr = fmt.Errorf("resilient: log slot %d: replicas disagreed", next.desc.slot)
						cancel()
					}
					continue
				}
				now := time.Now()
				r.recordSlot(rep, next.desc, next.out.Value, now)
				if b := next.desc.batch; b != nil && next.out.Value == msg.V1 {
					for i := range b.ops {
						at := start
						if b.submitted != nil {
							at = b.submitted[i]
						}
						l := now.Sub(at)
						lats = append(lats, l)
						r.met.commitSecs.Observe(l.Seconds())
					}
				}
			}
		}
	}()

	launch := func(d slotDesc) {
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			out, err := r.runLiveSlot(runCtx, d, endpoints)
			resCh <- slotRes{desc: d, out: out, err: err}
		}()
	}

	s := 0
dispatch:
	for b := range ch {
		for !r.aliveAt(ID(s%r.n), s) {
			launch(r.desc(s, nil))
			s++
			if runCtx.Err() != nil {
				break dispatch
			}
		}
		launch(r.desc(s, b))
		s++
		if runCtx.Err() != nil {
			break
		}
	}
	wg.Wait()
	close(resCh)
	<-collectorDone

	if runErr == nil && ctx.Err() != nil {
		runErr = ctx.Err()
	}
	r.finishReport(rep, start, lats)
	return rep, runErr
}

// runLiveSlot runs one consensus slot over the engine's transport. On TCP
// the slot claims instance id slot+1 on every live endpoint (id 0 is the
// endpoints' own base channel); dead replicas never claim theirs, so frames
// addressed to them are dropped by the demux exactly like traffic to a
// crashed host's dead process. The proposer ships the batch payload as
// length-prefixed Graph frames on the slot's own conns before consensus
// starts -- consensus machines ignore the payload kind, but the bytes cross
// the real wire, so throughput numbers include payload transfer.
func (r *logRun) runLiveSlot(ctx context.Context, d slotDesc, endpoints []*netxport.Endpoint) (livenet.InstanceOutcome, error) {
	seed := r.slotSeed(d.slot)
	machines, err := buildMachines(r.protocol, r.n, r.k, d.inputs(r.n), seed, r.coin)
	if err != nil {
		return livenet.InstanceOutcome{}, err
	}
	conns := make([]transport.Conn, r.n)
	switch r.engine {
	case EngineTCP:
		inst := uint32(d.slot) + 1
		for i := 0; i < r.n; i++ {
			if !d.run[i] {
				continue
			}
			c, err := endpoints[i].Instance(inst)
			if err != nil {
				for _, pc := range conns {
					if pc != nil {
						pc.Close()
					}
				}
				return livenet.InstanceOutcome{}, fmt.Errorf("slot %d instance conn p%d: %w", d.slot, i, err)
			}
			conns[i] = c
		}
	case EngineMem, EngineJitter:
		var net interface {
			Conn(msg.ID) (transport.Conn, error)
			Close()
		}
		if r.engine == EngineJitter {
			maxDelay := r.unit
			if maxDelay <= 0 {
				maxDelay = livenet.DefaultUnit
			}
			net = transport.NewJitter(r.n, maxDelay, seed)
		} else {
			net = transport.NewMem(r.n)
		}
		defer net.Close()
		for i := 0; i < r.n; i++ {
			if !d.run[i] {
				continue
			}
			c, err := net.Conn(msg.ID(i))
			if err != nil {
				return livenet.InstanceOutcome{}, err
			}
			conns[i] = c
		}
	default:
		return livenet.InstanceOutcome{}, fmt.Errorf("resilient: engine %v is not live", r.engine)
	}

	if b := d.batch; b != nil {
		src := conns[d.proposer]
		for chunk, frame := range batchFrames(b.ops) {
			m := msg.Graph(d.proposer, Phase(chunk), frame)
			for p := 0; p < r.n; p++ {
				if p == int(d.proposer) || !d.run[p] {
					continue
				}
				if err := src.Send(ID(p), m); err != nil {
					for _, pc := range conns {
						if pc != nil {
							pc.Close()
						}
					}
					return livenet.InstanceOutcome{}, fmt.Errorf("slot %d payload to p%d: %w", d.slot, p, err)
				}
			}
		}
	}
	return livenet.RunInstance(ctx, machines, conns, d.run, r.reg)
}

// recordSlot folds one decided slot into the report (commitAt is zero on
// the simulator).
func (r *logRun) recordSlot(rep *LogReport, d slotDesc, v Value, commitAt time.Time) {
	rep.Slots++
	rep.SlotDecisions = append(rep.SlotDecisions, v)
	r.met.slots.Inc()
	if d.batch == nil {
		rep.NoopSlots++
		r.met.noops.Inc()
		return
	}
	if v != msg.V1 {
		// An alive proposer's batch slot decided no-op: the batch is lost,
		// which the committed sequence (and the parity test) will expose.
		return
	}
	rep.Batches++
	rep.Ops += len(d.batch.ops)
	rep.Committed = append(rep.Committed, d.batch.ops...)
	r.met.batches.Inc()
	r.met.ops.Add(int64(len(d.batch.ops)))
	r.met.batchOps.Observe(float64(len(d.batch.ops)))
}

// finishReport stamps duration, throughput, and (live) latency percentiles.
func (r *logRun) finishReport(rep *LogReport, start time.Time, lats []time.Duration) {
	rep.Elapsed = time.Since(start)
	if secs := rep.Elapsed.Seconds(); secs > 0 {
		rep.OpsPerSec = float64(rep.Ops) / secs
	}
	if len(lats) == 0 {
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rank := func(q float64) time.Duration {
		i := int(q*float64(len(lats))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return lats[i]
	}
	rep.P50, rep.P95, rep.P99 = rank(0.50), rank(0.95), rank(0.99)
}
