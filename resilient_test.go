package resilient

import (
	"context"
	"math"
	"testing"
	"time"
)

func mixed(n int) []Value {
	in := make([]Value, n)
	for i := range in {
		in[i] = Value(i % 2)
	}
	return in
}

func TestSimulateAllProtocols(t *testing.T) {
	cases := []struct {
		p    Protocol
		n, k int
	}{
		{ProtocolFailStop, 7, 3},
		{ProtocolMalicious, 7, 2},
		{ProtocolMajority, 8, 2},
		{ProtocolBenOrCrash, 6, 2},
		{ProtocolBenOrByzantine, 11, 2},
		{ProtocolBivalence, 5, 2},
	}
	for _, tc := range cases {
		t.Run(tc.p.String(), func(t *testing.T) {
			for seed := uint64(0); seed < 5; seed++ {
				res, err := Simulate(tc.p, tc.n, tc.k, mixed(tc.n), SimOptions{Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				if !res.AllDecided || !res.Agreement || res.Stalled != NotStalled {
					t.Fatalf("seed %d: decided=%v agreement=%v stall=%v",
						seed, res.AllDecided, res.Agreement, res.Stalled)
				}
			}
		})
	}
}

func TestSimulateRejectsOverBudgetK(t *testing.T) {
	if _, err := Simulate(ProtocolFailStop, 6, 3, mixed(6), SimOptions{}); err == nil {
		t.Fatal("expected error for k=3, n=6 (bound is 2)")
	}
	if _, err := Simulate(ProtocolMalicious, 6, 2, mixed(6), SimOptions{}); err == nil {
		t.Fatal("expected error for k=2, n=6 (bound is 1)")
	}
}

func TestSimulateWithAdversaries(t *testing.T) {
	strategies := []Strategy{
		StrategySilent, StrategyBalancer, StrategyFlipper,
		StrategyLiar0, StrategyLiar1, StrategyEquivocator,
		StrategyDoubleEcho, StrategyMute,
	}
	for _, s := range strategies {
		t.Run(s.String(), func(t *testing.T) {
			// k = 2 < n/3 keeps the omniscient adversaries' stalling power
			// moderate; the full k = (n-1)/3 regime is exercised by the E4
			// experiment harness, which budgets for the long tail.
			for seed := uint64(0); seed < 3; seed++ {
				res, err := Simulate(ProtocolMalicious, 7, 2, mixed(7), SimOptions{
					Seed:        seed,
					Adversaries: map[ID]Strategy{5: s, 6: s},
				})
				if err != nil {
					t.Fatal(err)
				}
				if !res.AllDecided || !res.Agreement || res.Stalled != NotStalled {
					t.Fatalf("seed %d strategy %v: decided=%v agreement=%v stall=%v decisions=%v",
						seed, s, res.AllDecided, res.Agreement, res.Stalled, res.Decisions)
				}
			}
		})
	}
}

func TestRunClusterLive(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := RunCluster(ctx, ProtocolFailStop, 5, 2, mixed(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Decisions) != 5 || !rep.Agreement {
		t.Fatalf("decisions=%d agreement=%v", len(rep.Decisions), rep.Agreement)
	}
}

func TestRunTCPClusterLive(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := RunTCPCluster(ctx, ProtocolMalicious, 4, 1, mixed(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Decisions) != 4 || !rep.Agreement {
		t.Fatalf("decisions=%d agreement=%v", len(rep.Decisions), rep.Agreement)
	}
}

func TestPhaseBoundUnderSeven(t *testing.T) {
	for _, n := range []int{30, 99, 300, 3000, 30000} {
		b := FailStopPhaseBound(n, DefaultBandL)
		if b >= 7 {
			t.Errorf("n=%d: bound %v >= 7, contradicting the paper", n, b)
		}
		if b <= 1 || math.IsNaN(b) {
			t.Errorf("n=%d: implausible bound %v", n, b)
		}
	}
}

func TestAnalyzeFailStopMatchesMonteCarlo(t *testing.T) {
	n, k := 60, 20 // k = n/3, the paper's analysis point
	an, err := AnalyzeFailStop(n, k)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateFailStopAbsorption(n, k, 3000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(an.FromBalanced - est.Mean); diff > 4*est.CI95+0.05 {
		t.Errorf("exact %v vs MC %v: |diff| %v too large", an.FromBalanced, est, diff)
	}
}

func TestAnalyzeMaliciousBound(t *testing.T) {
	// k = l*sqrt(n)/2 with l = 1 at n = 100: k = 5. The paper's bound is
	// 1/(2*Phi(1)) ~ 3.15; the exact chain must respect a comparable scale.
	an, err := AnalyzeMalicious(100, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	if an.FromBalanced <= 0 {
		t.Fatalf("non-positive absorption time %v", an.FromBalanced)
	}
	bound := MaliciousPhaseBound(1.0)
	if an.FromBalanced > 25*bound {
		t.Errorf("exact %v wildly exceeds the paper's scale %v", an.FromBalanced, bound)
	}
}
