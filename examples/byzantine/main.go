// Byzantine: ten processes reach consensus with the Figure 2 echo protocol
// while three of them -- the floor((10-1)/3) maximum -- run hostile
// strategies: one equivocates (different values to different peers), one is
// the omniscient balancer of Section 4, and one sends conflicting duplicate
// echoes. The echo-broadcast acceptance rule (strictly more than (n+k)/2
// matching echoes, first echo per sender only) defuses all three.
package main

import (
	"fmt"
	"log"

	"resilient"
)

func main() {
	n, k := 10, 3
	inputs := make([]resilient.Value, n)
	for i := range inputs {
		inputs[i] = resilient.Value(i % 2)
	}

	for _, strategies := range []map[resilient.ID]resilient.Strategy{
		{7: resilient.StrategyEquivocator, 8: resilient.StrategyBalancer, 9: resilient.StrategyDoubleEcho},
		{7: resilient.StrategySilent, 8: resilient.StrategySilent, 9: resilient.StrategySilent},
		{7: resilient.StrategyLiar1, 8: resilient.StrategyLiar1, 9: resilient.StrategyLiar1},
	} {
		res, err := resilient.Simulate(resilient.ProtocolMalicious, n, k, inputs, resilient.SimOptions{
			Seed:        7,
			Adversaries: strategies,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("adversaries %v\n", strategyNames(strategies))
		fmt.Printf("  correct processes decided: %d/%d, agreement: %v, value: %d, phases: %d\n",
			res.DecidedCount(), n-k, res.Agreement, res.Value, res.MaxPhase)
	}
}

func strategyNames(m map[resilient.ID]resilient.Strategy) []string {
	names := make([]string, 0, len(m))
	for id, s := range m {
		names = append(names, fmt.Sprintf("p%d=%v", id, s))
	}
	return names
}
