// TCP cluster: five processes run the Figure 2 malicious-case protocol as
// a real cluster -- one goroutine per process, full mesh of loopback TCP
// connections, length-prefixed binary frames -- rather than inside the
// simulator. This is the deployment shape a downstream user would run.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"resilient"
)

func main() {
	n, k := 5, 1
	inputs := []resilient.Value{1, 0, 1, 0, 1}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	report, err := resilient.RunTCPCluster(ctx, resilient.ProtocolMalicious, n, k, inputs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("TCP cluster of %d (k=%d) finished in %v\n", n, k, report.Elapsed.Round(time.Millisecond))
	fmt.Printf("  agreement: %v, value: %d\n", report.Agreement, report.Value)
	for _, d := range report.Decisions {
		fmt.Printf("  p%d decided %d in phase %d\n", d.Process, d.Value, d.Phase)
	}
}
