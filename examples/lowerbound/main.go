// Lowerbound: watch Theorem 1 happen. Six processes run a strawman
// protocol configured to tolerate k = n/2 = 3 faults -- beyond the paper's
// floor((n-1)/2) bound -- under a network partition that separates the two
// halves (perfectly legal in an asynchronous system). Each half contains
// n-k = 3 processes, enough for the protocol to keep going alone, so the
// halves decide their own inputs: 0 on one side, 1 on the other.
// Disagreement, exactly as Theorem 1 says must be possible.
//
// Then the same partition runs against the real Figure 1 protocol at the
// same (unsafe) k: it refuses to decide rather than disagree.
package main

import (
	"fmt"
	"log"

	"resilient"
)

func main() {
	// This example drives the internal lower-bound experiment through the
	// public Simulate API using the majority variant, whose unreachable
	// decide threshold at k = n/2 demonstrates the liveness horn; the
	// disagreement horn is shown by cmd/lowerbound, which uses the greedy
	// strawman protocol.
	n, k := 6, 3
	inputs := []resilient.Value{0, 0, 0, 1, 1, 1}

	res, err := resilient.Simulate(resilient.ProtocolFailStop, n, k, inputs, resilient.SimOptions{
		Seed:       99,
		Unsafe:     true, // k = n/2 exceeds floor((n-1)/2) = 2
		MaxSimTime: 500,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 1 at n=2k=%d under free scheduling:\n", n)
	fmt.Printf("  decided: %d/%d, agreement: %v, stalled: %v\n\n",
		res.DecidedCount(), n, res.Agreement, res.Stalled)

	fmt.Println("With k = n/2 the witness cardinality can never exceed n/2, so Figure 1")
	fmt.Println("can stall forever; and Theorem 1 proves every protocol that instead")
	fmt.Println("keeps deciding can be driven to disagreement. Run cmd/lowerbound to see")
	fmt.Println("the full table, including the disagreement execution.")
}
