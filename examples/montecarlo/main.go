// Monte Carlo: reproduce the Section 4 analysis numbers interactively.
// Compares, at n = 300, the exact Markov absorption time, the paper's
// closed-form bound (< 7 phases for l^2 = 1.5), and fast Monte-Carlo
// estimates under the uniform-view model -- then does the same for the
// malicious chain with k = sqrt(n)/2 balancing adversaries.
package main

import (
	"fmt"
	"log"

	"resilient"
)

func main() {
	const n = 300
	k := n / 3 // the paper's Section 4.1 parametrization

	exact, err := resilient.AnalyzeFailStop(n, k)
	if err != nil {
		log.Fatal(err)
	}
	est, err := resilient.EstimateFailStopAbsorption(n, k, 4000, 1)
	if err != nil {
		log.Fatal(err)
	}
	bound := resilient.FailStopPhaseBound(n, resilient.DefaultBandL)
	fmt.Printf("fail-stop chain, n=%d k=%d (Section 4.1)\n", n, k)
	fmt.Printf("  exact expected absorption: %.3f phases\n", exact.FromBalanced)
	fmt.Printf("  Monte-Carlo estimate:      %v phases\n", est)
	fmt.Printf("  paper bound eq.(13):       %.3f phases (< 7: %v)\n\n", bound, bound < 7)

	km := 9 // ~ sqrt(300)/2, i.e. l ~ 1
	exactM, err := resilient.AnalyzeMalicious(n, km, true)
	if err != nil {
		log.Fatal(err)
	}
	estM, err := resilient.EstimateMaliciousAbsorption(n, km, 4000, true, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("malicious chain, n=%d k=%d balancing adversaries (Section 4.2)\n", n, km)
	fmt.Printf("  exact expected absorption: %.3f phases\n", exactM.FromBalanced)
	fmt.Printf("  Monte-Carlo estimate:      %v phases\n", estM)
	fmt.Printf("  paper bound 1/(2*Phi(l)):  %.3f phases\n",
		resilient.MaliciousPhaseBound(2*float64(km)/17.32))
}
