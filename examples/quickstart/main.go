// Quickstart: seven processes reach binary consensus with the Figure 1
// fail-stop protocol while three of them die mid-run -- the maximum
// tolerable, since floor((7-1)/2) = 3.
package main

import (
	"fmt"
	"log"

	"resilient"
)

func main() {
	n, k := 7, 3
	inputs := []resilient.Value{1, 0, 1, 1, 0, 0, 1}

	res, err := resilient.Simulate(resilient.ProtocolFailStop, n, k, inputs, resilient.SimOptions{
		Seed: 2026,
		Crashes: map[resilient.ID]resilient.Crash{
			// p6 never says a word; p5 dies in the middle of its phase-1
			// broadcast (only some peers see it); p4 dies later.
			6: {Process: 6, Phase: 0, AfterSends: 0},
			5: {Process: 5, Phase: 1, AfterSends: 3},
			4: {Process: 4, Phase: 2, AfterSends: 5},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("consensus with %d/%d processes crashing\n", len(res.Crashed), n)
	fmt.Printf("  all decided: %v\n", res.AllDecided)
	fmt.Printf("  agreement:   %v\n", res.Agreement)
	fmt.Printf("  value:       %d\n", res.Value)
	fmt.Printf("  messages:    %d\n", res.MessagesSent)
	for id, v := range res.Decisions {
		fmt.Printf("  p%d decided %d in phase %d\n", id, v, res.DecisionPhase[id])
	}
}
