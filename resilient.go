// Package resilient is a from-scratch Go implementation of the consensus
// protocols of Gabriel Bracha and Sam Toueg, "Resilient Consensus
// Protocols" (PODC 1983): probabilistically terminating binary consensus
// for fully asynchronous systems, tolerating up to floor((n-1)/2) fail-stop
// processes (Figure 1) or floor((n-1)/3) malicious processes (Figure 2) --
// both bounds tight (Theorems 1-4).
//
// The package offers three ways to run a protocol:
//
//   - Simulate: a deterministic discrete-event simulation with fault
//     injection, adversarial scheduling, and full metrics (the tool the
//     experiments are built on).
//   - RunCluster / RunTCPCluster: a live goroutine-per-process execution
//     over an in-memory message system or real TCP sockets.
//   - NewMachine: raw protocol state machines, for embedding in a custom
//     engine.
//
// The analysis side of the paper (Section 4) is exposed through the
// Analyze* and Estimate* functions: exact Markov-chain absorption times,
// the paper's closed-form bounds, and fast Monte-Carlo estimation.
package resilient

import (
	"fmt"

	"resilient/internal/benor"
	"resilient/internal/bivalence"
	"resilient/internal/core"
	"resilient/internal/failstop"
	"resilient/internal/majority"
	"resilient/internal/malicious"
	"resilient/internal/msg"
	"resilient/internal/quorum"
	"resilient/internal/sample"
)

// Value is a binary consensus value (0 or 1).
type Value = msg.Value

// Convenience values.
const (
	V0 = msg.V0
	V1 = msg.V1
)

// ID identifies a process (0..n-1).
type ID = msg.ID

// Phase is a protocol phase number.
type Phase = msg.Phase

// Machine is a protocol instance at a single process; see the core package
// contract: Start once, then OnMessage per delivery, never concurrently.
type Machine = core.Machine

// FaultModel selects the failure assumptions.
type FaultModel = quorum.FaultModel

// Fault models.
const (
	// FailStop processes may only die, without warning.
	FailStop = quorum.FailStop
	// Malicious processes may lie, equivocate, and coordinate.
	Malicious = quorum.Malicious
)

// Protocol selects a consensus protocol implementation.
type Protocol int

const (
	// ProtocolFailStop is the Figure 1 protocol: witness messages,
	// k <= floor((n-1)/2) fail-stop faults.
	ProtocolFailStop Protocol = iota + 1
	// ProtocolMalicious is the Figure 2 protocol: authenticated echo
	// broadcast, k <= floor((n-1)/3) malicious faults.
	ProtocolMalicious
	// ProtocolMajority is the Section 4.1 analysis variant: plain value
	// exchange, majority adoption, supermajority decision (fail-stop).
	ProtocolMajority
	// ProtocolBenOrCrash is the [BenO83] baseline for fail-stop faults.
	ProtocolBenOrCrash
	// ProtocolBenOrByzantine is the [BenO83] baseline for malicious
	// faults (requires 5k < n).
	ProtocolBenOrByzantine
	// ProtocolBivalence is the Section 5 weak-bivalence protocol for
	// initially-dead faults (tolerates any k < n).
	ProtocolBivalence
	// ProtocolBroadcast is a single reliable broadcast: process 0
	// disseminates its input and every correct process delivers it. It is
	// the echo-stage primitive of Figure 2 isolated as its own protocol,
	// runnable over either broadcast scheme (full-quorum echo or the
	// sample-based scheme of internal/sample) for the scalability
	// benchmarks; see SimOptions.Broadcast.
	ProtocolBroadcast
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case ProtocolFailStop:
		return "failstop(fig1)"
	case ProtocolMalicious:
		return "malicious(fig2)"
	case ProtocolMajority:
		return "majority(s4.1)"
	case ProtocolBenOrCrash:
		return "benor-crash"
	case ProtocolBenOrByzantine:
		return "benor-byzantine"
	case ProtocolBivalence:
		return "bivalence(s5)"
	case ProtocolBroadcast:
		return "broadcast"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Valid reports whether p names a protocol.
func (p Protocol) Valid() bool {
	return p >= ProtocolFailStop && p <= ProtocolBroadcast
}

// Model returns the fault model a protocol is designed for.
func (p Protocol) Model() FaultModel {
	switch p {
	case ProtocolMalicious, ProtocolBenOrByzantine, ProtocolBroadcast:
		return Malicious
	default:
		return FailStop
	}
}

// MaxFaults returns the largest tolerable k for the protocol at system size
// n: floor((n-1)/2) for the fail-stop protocols, floor((n-1)/3) for the
// malicious ones (and floor((n-1)/5) for Ben-Or's Byzantine variant), and
// n-1 for the Section 5 initially-dead protocol.
func (p Protocol) MaxFaults(n int) int {
	switch p {
	case ProtocolBenOrByzantine:
		return (n - 1) / 5
	case ProtocolBivalence:
		return n - 1
	case ProtocolMajority:
		// The Section 4.1 variant needs n-k > (n+k)/2 to reach its
		// decision threshold: floor((n-1)/3), as the paper states.
		return quorum.MaxFaults(n, quorum.Malicious)
	default:
		return quorum.MaxFaults(n, p.Model())
	}
}

// MachineConfig configures a single protocol machine.
type MachineConfig struct {
	// N is the system size; K the tolerated fault count; Self this
	// process's id; Input its initial value.
	N, K  int
	Self  ID
	Input Value
}

// NewMachine builds a raw protocol state machine for one process, for use
// with a custom execution engine. Machines returned here are honest; see
// Simulate's Adversary option for Byzantine behaviours.
func NewMachine(p Protocol, cfg MachineConfig) (Machine, error) {
	cc := core.Config{N: cfg.N, K: cfg.K, Self: cfg.Self, Input: cfg.Input}
	switch p {
	case ProtocolFailStop:
		return failstop.New(cc, nil)
	case ProtocolMalicious:
		return malicious.New(cc, nil)
	case ProtocolMajority:
		return majority.New(cc, nil)
	case ProtocolBenOrCrash, ProtocolBenOrByzantine:
		return nil, fmt.Errorf("resilient: %v needs a random source; use NewBenOrMachine", p)
	case ProtocolBivalence:
		return bivalence.New(cc, nil)
	case ProtocolBroadcast:
		// The full-quorum variant; the sampled variant needs the run's
		// shared sample directory, so it is built through Simulate.
		return sample.NewEchoMachine(cc, 0)
	default:
		return nil, fmt.Errorf("resilient: unknown protocol %d", int(p))
	}
}

// NewBenOrMachine builds a Ben-Or machine with the given coin seed.
func NewBenOrMachine(p Protocol, cfg MachineConfig, coinSeed uint64) (Machine, error) {
	cc := core.Config{N: cfg.N, K: cfg.K, Self: cfg.Self, Input: cfg.Input}
	mode := benor.Crash
	switch p {
	case ProtocolBenOrCrash:
	case ProtocolBenOrByzantine:
		mode = benor.Byzantine
	default:
		return nil, fmt.Errorf("resilient: %v is not a Ben-Or protocol", p)
	}
	return benor.New(cc, mode, newRand(coinSeed), nil)
}

// MaxFaultsFor returns the tight resilience bound of the paper for a fault
// model: floor((n-1)/2) correct processes suffice and are necessary for
// fail-stop, floor((n-1)/3) for malicious.
func MaxFaultsFor(n int, m FaultModel) int {
	return quorum.MaxFaults(n, m)
}

// CheckConfig validates an (n, k) pair against a fault model's bound.
func CheckConfig(n, k int, m FaultModel) error {
	return quorum.Check(n, k, m)
}
