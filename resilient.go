// Package resilient is a from-scratch Go implementation of the consensus
// protocols of Gabriel Bracha and Sam Toueg, "Resilient Consensus
// Protocols" (PODC 1983): probabilistically terminating binary consensus
// for fully asynchronous systems, tolerating up to floor((n-1)/2) fail-stop
// processes (Figure 1) or floor((n-1)/3) malicious processes (Figure 2) --
// both bounds tight (Theorems 1-4).
//
// The package offers three ways to run a protocol:
//
//   - Simulate: a deterministic discrete-event simulation with fault
//     injection, adversarial scheduling, and full metrics (the tool the
//     experiments are built on).
//   - RunCluster / RunTCPCluster: a live goroutine-per-process execution
//     over an in-memory message system or real TCP sockets.
//   - NewMachine: raw protocol state machines, for embedding in a custom
//     engine.
//
// Protocols live in a registry (internal/proto): each protocol package
// registers a descriptor -- name, fault model, resilience bound, coin
// scheme, machine constructor -- and every layer here resolves protocols
// through it, so adding a protocol is a one-package change. Randomized
// protocols draw their free choices through the coin seam (internal/coin):
// per-process local coins reproduce [BenO83], the deterministic shared
// coin gives the constant-expected-phase common-coin variant.
//
// The analysis side of the paper (Section 4) is exposed through the
// Analyze* and Estimate* functions: exact Markov-chain absorption times,
// the paper's closed-form bounds, and fast Monte-Carlo estimation.
package resilient

import (
	"fmt"

	"resilient/internal/coin"
	"resilient/internal/core"
	"resilient/internal/msg"
	"resilient/internal/proto"
	"resilient/internal/quorum"

	// Every protocol package registers its descriptors with the registry at
	// init time; these imports pull the whole zoo in.
	_ "resilient/internal/benor"
	_ "resilient/internal/bivalence"
	_ "resilient/internal/failstop"
	_ "resilient/internal/majority"
	_ "resilient/internal/malicious"
	_ "resilient/internal/sample"
)

// Value is a binary consensus value (0 or 1).
type Value = msg.Value

// Convenience values.
const (
	V0 = msg.V0
	V1 = msg.V1
)

// ID identifies a process (0..n-1).
type ID = msg.ID

// Phase is a protocol phase number.
type Phase = msg.Phase

// Machine is a protocol instance at a single process; see the core package
// contract: Start once, then OnMessage per delivery, never concurrently.
type Machine = core.Machine

// FaultModel selects the failure assumptions.
type FaultModel = quorum.FaultModel

// Fault models.
const (
	// FailStop processes may only die, without warning.
	FailStop = quorum.FailStop
	// Malicious processes may lie, equivocate, and coordinate.
	Malicious = quorum.Malicious
)

// Protocol selects a consensus protocol implementation. It is the registry
// id of internal/proto: String, Valid, Model, MaxFaults, Aliases, Bound,
// NeedsCoin, and DefaultCoin are all registry lookups.
type Protocol = proto.ID

const (
	// ProtocolFailStop is the Figure 1 protocol: witness messages,
	// k <= floor((n-1)/2) fail-stop faults.
	ProtocolFailStop = proto.FailStop
	// ProtocolMalicious is the Figure 2 protocol: authenticated echo
	// broadcast, k <= floor((n-1)/3) malicious faults.
	ProtocolMalicious = proto.Malicious
	// ProtocolMajority is the Section 4.1 analysis variant: plain value
	// exchange, majority adoption, supermajority decision (fail-stop).
	ProtocolMajority = proto.Majority
	// ProtocolBenOrCrash is the [BenO83] baseline for fail-stop faults.
	ProtocolBenOrCrash = proto.BenOrCrash
	// ProtocolBenOrByzantine is the [BenO83] baseline for malicious
	// faults (requires 5k < n).
	ProtocolBenOrByzantine = proto.BenOrByzantine
	// ProtocolBivalence is the Section 5 weak-bivalence protocol for
	// initially-dead faults (tolerates any k < n).
	ProtocolBivalence = proto.Bivalence
	// ProtocolBroadcast is a single reliable broadcast: process 0
	// disseminates its input and every correct process delivers it. It is
	// the echo-stage primitive of Figure 2 isolated as its own protocol,
	// runnable over either broadcast scheme (full-quorum echo or the
	// sample-based scheme of internal/sample) for the scalability
	// benchmarks; see SimOptions.Broadcast.
	ProtocolBroadcast = proto.Broadcast
	// ProtocolBenOrShared is Ben-Or's structure driven by the
	// deterministic shared coin: all correct processes flip the same value
	// each round, so the expected phase count is constant instead of
	// growing with n. See internal/coin.
	ProtocolBenOrShared = proto.BenOrShared
)

// ParseProtocol resolves a protocol name or alias (e.g. "failstop",
// "fig2", "benor-shared"), case-insensitively, against the registry.
func ParseProtocol(name string) (Protocol, error) {
	return proto.Parse(name)
}

// Protocols returns every registered protocol in id order.
func Protocols() []Protocol {
	ds := proto.All()
	ps := make([]Protocol, len(ds))
	for i, d := range ds {
		ps[i] = d.ID
	}
	return ps
}

// CoinScheme selects how a run sources the coin randomness of randomized
// protocols; see the internal coin package.
type CoinScheme = coin.Scheme

// Coin schemes.
const (
	// CoinAuto uses the protocol's registered default scheme.
	CoinAuto = coin.SchemeAuto
	// CoinNone marks the deterministic protocols (not an override).
	CoinNone = coin.SchemeNone
	// CoinLocal gives every process an independent local coin ([BenO83]).
	CoinLocal = coin.SchemeLocal
	// CoinShared gives every process the same deterministic common coin
	// derived from the run seed.
	CoinShared = coin.SchemeShared
)

// ParseCoinScheme resolves a coin scheme name: auto | none | local | shared.
func ParseCoinScheme(name string) (CoinScheme, error) {
	return coin.ParseScheme(name)
}

// MachineConfig configures a single protocol machine.
type MachineConfig struct {
	// N is the system size; K the tolerated fault count; Self this
	// process's id; Input its initial value.
	N, K  int
	Self  ID
	Input Value
	// CoinSeed seeds the machine's coin for protocols that draw one: give
	// every process a distinct value under the local scheme and the same
	// run-wide value under the shared scheme. Deterministic protocols
	// ignore it.
	CoinSeed uint64
	// Coin overrides the protocol's default coin scheme (CoinAuto keeps
	// the default); overrides that contradict the protocol are rejected.
	Coin CoinScheme
}

// NewMachine builds a raw protocol state machine for one process, for use
// with a custom execution engine. Machines returned here are honest; see
// Simulate's Adversary option for Byzantine behaviours. Protocols with a
// sampled broadcast stage get their full-quorum variant (the sampled one
// needs a run-wide sample directory, built through Simulate).
func NewMachine(p Protocol, cfg MachineConfig) (Machine, error) {
	d, ok := proto.Lookup(p)
	if !ok {
		return nil, fmt.Errorf("resilient: unknown protocol %d", int(p))
	}
	scheme, err := d.ResolveCoin(cfg.Coin)
	if err != nil {
		return nil, fmt.Errorf("resilient: %w", err)
	}
	deps := proto.Deps{}
	switch scheme {
	case CoinLocal:
		deps.Coin = coin.NewLocal(newRand(cfg.CoinSeed))
	case CoinShared:
		deps.Coin = coin.NewShared(cfg.CoinSeed)
	}
	return d.Spawn(core.Config{N: cfg.N, K: cfg.K, Self: cfg.Self, Input: cfg.Input}, deps)
}

// NewBenOrMachine builds a Ben-Or machine with the given coin seed.
//
// Deprecated: NewMachine accepts the Ben-Or protocols directly; set
// MachineConfig.CoinSeed instead.
func NewBenOrMachine(p Protocol, cfg MachineConfig, coinSeed uint64) (Machine, error) {
	if p != ProtocolBenOrCrash && p != ProtocolBenOrByzantine && p != ProtocolBenOrShared {
		return nil, fmt.Errorf("resilient: %v is not a Ben-Or protocol", p)
	}
	cfg.CoinSeed = coinSeed
	return NewMachine(p, cfg)
}

// MaxFaultsFor returns the tight resilience bound of the paper for a fault
// model: floor((n-1)/2) correct processes suffice and are necessary for
// fail-stop, floor((n-1)/3) for malicious.
func MaxFaultsFor(n int, m FaultModel) int {
	return quorum.MaxFaults(n, m)
}

// CheckConfig validates an (n, k) pair against a fault model's bound.
func CheckConfig(n, k int, m FaultModel) error {
	return quorum.Check(n, k, m)
}
