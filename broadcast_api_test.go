package resilient

import (
	"context"
	"testing"
)

func sameInputs(n int, v Value) []Value {
	in := make([]Value, n)
	for i := range in {
		in[i] = v
	}
	return in
}

// TestSimulateBroadcastEchoScheme runs the broadcast protocol over the
// default full-quorum primitive: every process must deliver p0's input.
func TestSimulateBroadcastEchoScheme(t *testing.T) {
	const n, k = 50, 5
	res, err := Simulate(ProtocolBroadcast, n, k, sameInputs(n, V1), SimOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement || !res.AllDecided || res.Value != V1 {
		t.Fatalf("echo broadcast: agreement=%v allDecided=%v value=%v",
			res.Agreement, res.AllDecided, res.Value)
	}
}

// TestSimulateBroadcastSampledScheme runs the broadcast protocol over the
// sampled primitive at a size the full-quorum scheme would already strain,
// and pins the message reduction the scheme exists for.
func TestSimulateBroadcastSampledScheme(t *testing.T) {
	const n, k = 1000, 100
	sampled, err := Simulate(ProtocolBroadcast, n, k, sameInputs(n, V1), SimOptions{
		Seed: 2, Broadcast: SchemeSample, RunToCompletion: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sampled.Agreement || sampled.Value != V1 {
		t.Fatalf("sampled broadcast: agreement=%v value=%v", sampled.Agreement, sampled.Value)
	}
	if len(sampled.Decisions) < n-1 { // ε-delivery: allow stray sampling misses
		t.Fatalf("sampled broadcast delivered %d/%d", len(sampled.Decisions), n)
	}

	echo, err := Simulate(ProtocolBroadcast, n, k, sameInputs(n, V1), SimOptions{
		Seed: 2, RunToCompletion: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(echo.MessagesSent) / float64(sampled.MessagesSent); ratio < 5 {
		t.Errorf("sampled scheme sent %d msgs vs echo %d: reduction %.1fx, want >= 5x",
			sampled.MessagesSent, echo.MessagesSent, ratio)
	}
}

// TestSimulateMaliciousSampledScheme runs full Figure-2 consensus over the
// sampled echo primitive through the public API: agreement, validity, and
// fewer messages than the full-quorum run.
func TestSimulateMaliciousSampledScheme(t *testing.T) {
	const n, k = 100, 10
	sampled, err := Simulate(ProtocolMalicious, n, k, sameInputs(n, V0), SimOptions{
		Seed: 3, Broadcast: SchemeSample, RunToCompletion: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sampled.Agreement || !sampled.AllDecided || sampled.Value != V0 {
		t.Fatalf("sampled consensus: agreement=%v allDecided=%v value=%v",
			sampled.Agreement, sampled.AllDecided, sampled.Value)
	}
	full, err := Simulate(ProtocolMalicious, n, k, sameInputs(n, V0), SimOptions{
		Seed: 3, RunToCompletion: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sampled.MessagesSent >= full.MessagesSent {
		t.Errorf("sampled consensus sent %d msgs, full-quorum %d", sampled.MessagesSent, full.MessagesSent)
	}
}

// TestSimulateSampledWithSilentAdversaries keeps the Byzantine plumbing
// honest: silent adversaries under the sampled scheme must not block
// agreement among the correct processes.
func TestSimulateSampledWithSilentAdversaries(t *testing.T) {
	const n, k = 100, 10
	adv := map[ID]Strategy{}
	for i := n - k/2; i < n; i++ {
		adv[ID(i)] = StrategySilent
	}
	res, err := Simulate(ProtocolMalicious, n, k, sameInputs(n, V1), SimOptions{
		Seed: 4, Broadcast: SchemeSample, Adversaries: adv,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement || !res.AllDecided || res.Value != V1 {
		t.Fatalf("sampled consensus under silent faults: agreement=%v allDecided=%v value=%v",
			res.Agreement, res.AllDecided, res.Value)
	}
}

// TestSampledSchemeValidation pins the knob's error paths.
func TestSampledSchemeValidation(t *testing.T) {
	if _, err := Simulate(ProtocolMalicious, 10, 3, sameInputs(10, V0), SimOptions{
		Broadcast: BroadcastScheme(7),
	}); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := Simulate(ProtocolMalicious, 9, 3, sameInputs(9, V0), SimOptions{
		Broadcast: SchemeSample, Unsafe: true, Eps: 1e-3,
	}); err == nil {
		t.Error("unsafe sampled run accepted")
	}
	if _, err := Simulate(ProtocolMalicious, 10, 3, sameInputs(10, V0), SimOptions{
		Broadcast: SchemeSample, Eps: 0.5,
	}); err == nil {
		t.Error("eps=0.5 accepted")
	}
	// Protocols without an echo stage ignore the knob.
	if _, err := Simulate(ProtocolFailStop, 7, 3, sameInputs(7, V0), SimOptions{
		Broadcast: SchemeSample,
	}); err != nil {
		t.Errorf("failstop under the sample knob: %v", err)
	}
	for _, s := range []BroadcastScheme{SchemeEcho, SchemeSample} {
		if !s.Valid() || s.String() == "" {
			t.Errorf("scheme %d invalid or unnamed", int(s))
		}
	}
	if BroadcastScheme(7).Valid() {
		t.Error("out-of-range scheme valid")
	}
}

// TestScenarioSampledAcrossEngines runs the same sampled-consensus scenario
// on the simulator and the in-memory live engine: both must reach agreement
// on the unanimous input.
func TestScenarioSampledAcrossEngines(t *testing.T) {
	sc := Scenario{
		Protocol: ProtocolMalicious, N: 40, K: 4,
		Inputs: sameInputs(40, V1), Seed: 5, Broadcast: SchemeSample, Eps: 1e-2,
	}
	for _, engine := range []Engine{EngineSim, EngineMem} {
		out, err := RunScenario(context.Background(), engine, sc)
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		if !out.Agreement || !out.AllDecided || out.Value != V1 {
			t.Fatalf("%v: agreement=%v allDecided=%v value=%v",
				engine, out.Agreement, out.AllDecided, out.Value)
		}
	}
}
