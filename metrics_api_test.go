package resilient

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"
)

// TestSimulateWithMetrics drives the public entry point with a registry and
// checks the result snapshot, the registry snapshot, and the JSON writer.
func TestSimulateWithMetrics(t *testing.T) {
	reg := NewMetricsRegistry()
	res, err := Simulate(ProtocolFailStop, 7, 3, mixed(7), SimOptions{Seed: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil {
		t.Fatal("Result.Metrics missing")
	}
	if got := res.Metrics.Counters["runtime.messages_sent"]; got != int64(res.MessagesSent) {
		t.Errorf("snapshot messages_sent = %d, result = %d", got, res.MessagesSent)
	}
	if res.WallClock <= 0 {
		t.Error("WallClock not recorded")
	}

	var buf bytes.Buffer
	if err := WriteMetricsJSON(&buf, reg); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Counters   map[string]int64 `json:"counters"`
		Histograms map[string]any   `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
	if decoded.Counters["runtime.decisions"] != 7 {
		t.Errorf("decisions in JSON = %d, want 7", decoded.Counters["runtime.decisions"])
	}
	if _, ok := decoded.Histograms["runtime.decision_phase"]; !ok {
		t.Error("decision_phase histogram missing from JSON")
	}
}

// TestSimulateScopedRegistries checks per-protocol attribution: two runs
// into one registry under different scopes stay separable.
func TestSimulateScopedRegistries(t *testing.T) {
	reg := NewMetricsRegistry()
	if _, err := Simulate(ProtocolFailStop, 7, 3, mixed(7), SimOptions{
		Seed: 2, Metrics: reg.Scoped("failstop."),
	}); err != nil {
		t.Fatal(err)
	}
	adv := map[ID]Strategy{6: StrategyBalancer}
	if _, err := Simulate(ProtocolMalicious, 7, 2, mixed(7), SimOptions{
		Seed: 2, Adversaries: adv, Metrics: reg.Scoped("malicious."),
	}); err != nil {
		t.Fatal(err)
	}
	c := reg.Snapshot().Counters
	if c["failstop.runtime.messages_sent"] <= 0 {
		t.Error("fail-stop scope empty")
	}
	if c["malicious.runtime.messages_sent"] <= 0 {
		t.Error("malicious scope empty")
	}
	if c["runtime.messages_sent"] != 0 {
		t.Errorf("unscoped series leaked: %d", c["runtime.messages_sent"])
	}
}

// TestRunClusterWithMetrics exercises the functional option on the live
// goroutine engine.
func TestRunClusterWithMetrics(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	reg := NewMetricsRegistry()
	rep, err := RunCluster(ctx, ProtocolFailStop, 5, 2, mixed(5), WithClusterMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Agreement {
		t.Fatalf("no agreement: %+v", rep)
	}
	c := reg.Snapshot().Counters
	if c["livenet.decisions"] != int64(len(rep.Decisions)) {
		t.Errorf("livenet.decisions = %d, want %d", c["livenet.decisions"], len(rep.Decisions))
	}
}

// TestRunTCPClusterWithMetrics checks that the TCP path wires the registry
// into both the engine (livenet.*) and the transport (net.*).
func TestRunTCPClusterWithMetrics(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	reg := NewMetricsRegistry()
	rep, err := RunTCPCluster(ctx, ProtocolFailStop, 5, 2, mixed(5), WithClusterMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Agreement {
		t.Fatalf("no agreement: %+v", rep)
	}
	c := reg.Snapshot().Counters
	if c["livenet.messages_sent"] <= 0 {
		t.Error("livenet traffic not accounted")
	}
	if c["net.frames_sent"] <= 0 && c["net.local_frames"] <= 0 {
		t.Error("transport frames not accounted")
	}
	if c["net.bytes_sent"] <= 0 {
		t.Error("transport bytes not accounted")
	}
}
