package resilient

import (
	"context"
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"resilient/internal/experiments"
)

// One benchmark per experiment in the DESIGN.md index. Each iteration
// regenerates the experiment's tables at reduced (Quick) scale; the real
// tables in EXPERIMENTS.md come from `go run ./cmd/experiments` at full
// scale. Benchmarking the harness keeps the entire reproduction path --
// protocol machines, engines, chains, statistics -- on the measured path.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	p := experiments.QuickParams()
	p.Trials = 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i) + 1
		tables, err := e.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

func BenchmarkE1FailStopAbsorption(b *testing.B)  { benchExperiment(b, "E1") }
func BenchmarkE2MaliciousAbsorption(b *testing.B) { benchExperiment(b, "E2") }
func BenchmarkE3FailStopProtocol(b *testing.B)    { benchExperiment(b, "E3") }
func BenchmarkE4MaliciousProtocol(b *testing.B)   { benchExperiment(b, "E4") }
func BenchmarkE5LowerBound(b *testing.B)          { benchExperiment(b, "E5") }
func BenchmarkE6MajorityApprox(b *testing.B)      { benchExperiment(b, "E6") }
func BenchmarkE7FastPropagation(b *testing.B)     { benchExperiment(b, "E7") }
func BenchmarkE8BenOrBaseline(b *testing.B)       { benchExperiment(b, "E8") }
func BenchmarkE9MessageComplexity(b *testing.B)   { benchExperiment(b, "E9") }
func BenchmarkE10Bivalence(b *testing.B)          { benchExperiment(b, "E10") }

// Protocol micro-benchmarks: one full consensus execution per iteration
// under the discrete-event engine.

func benchSimulate(b *testing.B, p Protocol, n, k int, opts SimOptions) {
	b.Helper()
	inputs := make([]Value, n)
	for i := range inputs {
		inputs[i] = Value(i % 2)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts.Seed = uint64(i)
		res, err := Simulate(p, n, k, inputs, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllDecided {
			b.Fatalf("iteration %d stalled: %v", i, res.Stalled)
		}
	}
}

func BenchmarkFailStopN7K3(b *testing.B) {
	benchSimulate(b, ProtocolFailStop, 7, 3, SimOptions{})
}

func BenchmarkFailStopN21K10(b *testing.B) {
	benchSimulate(b, ProtocolFailStop, 21, 10, SimOptions{})
}

func BenchmarkMaliciousN7K2(b *testing.B) {
	benchSimulate(b, ProtocolMalicious, 7, 2, SimOptions{})
}

func BenchmarkMaliciousN13K4(b *testing.B) {
	benchSimulate(b, ProtocolMalicious, 13, 4, SimOptions{})
}

func BenchmarkMaliciousWithBalancers(b *testing.B) {
	benchSimulate(b, ProtocolMalicious, 10, 3, SimOptions{
		Adversaries: map[ID]Strategy{8: StrategyBalancer, 9: StrategyBalancer},
	})
}

func BenchmarkBenOrCrashN7K3(b *testing.B) {
	benchSimulate(b, ProtocolBenOrCrash, 7, 3, SimOptions{})
}

func BenchmarkBivalenceN7(b *testing.B) {
	benchSimulate(b, ProtocolBivalence, 7, 2, SimOptions{
		Crashes: map[ID]Crash{6: {Process: 6, Phase: 0, AfterSends: 0}},
	})
}

// BenchmarkSimulateZeroAlloc is the zero-allocation regression gate: a full
// consensus execution with no trace sink and no metrics registry must stay
// under maxAllocsPerMessage heap allocations per sent message (per-run setup
// -- machines, trackers, result maps -- included). Before the typed event
// queue, lazy tracing, in-place broadcast shuffle, and dense tallies this
// ratio was ~3.6 (Figure 1) and ~3.9 (Figure 2); it is now ~0.1, almost all
// of it per-run setup. The benchmark FAILS, not just reports, when the
// ceiling is breached.
const maxAllocsPerMessage = 0.25

func BenchmarkSimulateZeroAlloc(b *testing.B) {
	cases := []struct {
		name     string
		protocol Protocol
		n, k     int
	}{
		{"failstop/n=21", ProtocolFailStop, 21, 10},
		{"malicious/n=13", ProtocolMalicious, 13, 4},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			inputs := make([]Value, c.n)
			for i := range inputs {
				inputs[i] = Value(i % 2)
			}
			run := func() *Result {
				res, err := Simulate(c.protocol, c.n, c.k, inputs, SimOptions{Seed: 1})
				if err != nil || !res.AllDecided {
					b.Fatalf("run failed: %v (stalled=%v)", err, res.Stalled)
				}
				return res
			}
			messages := run().MessagesSent
			allocs := testing.AllocsPerRun(5, func() { run() })
			perMessage := allocs / float64(messages)
			if perMessage > maxAllocsPerMessage {
				b.Fatalf("%.4f allocs per message (%.0f allocs / %d messages), ceiling %.2f",
					perMessage, allocs, messages, maxAllocsPerMessage)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run()
			}
			b.ReportMetric(perMessage, "allocs/msg")
		})
	}
}

// Broadcast-primitive benchmarks: one full reliable broadcast per iteration
// under the discrete-event engine, echo (full-quorum, O(n²) messages) vs
// sample (O(n·E) messages, ε = 1e-3) at matched sizes. RunToCompletion keeps
// every send on the measured path, and msgs/broadcast reports the traffic
// the sampled scheme exists to cut. The CI bench-scale lane snapshots these
// numbers into BENCH_broadcast.json; n=10,000 runs under the sampled scheme
// only (the echo scheme's 10⁸ messages exceed the engine's event budget,
// which is the point).
func benchBroadcast(b *testing.B, scheme BroadcastScheme, n int) {
	b.Helper()
	k := n / 10
	inputs := make([]Value, n)
	for i := range inputs {
		inputs[i] = V1
	}
	var msgs int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Simulate(ProtocolBroadcast, n, k, inputs, SimOptions{
			Seed: uint64(i) + 1, Broadcast: scheme, RunToCompletion: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Agreement || len(res.Decisions) < n-1 {
			b.Fatalf("iteration %d: agreement=%v delivered=%d/%d",
				i, res.Agreement, len(res.Decisions), n)
		}
		msgs = res.MessagesSent
	}
	b.ReportMetric(float64(msgs), "msgs/broadcast")
}

func BenchmarkBroadcast(b *testing.B) {
	b.Run("echo/n=100", func(b *testing.B) { benchBroadcast(b, SchemeEcho, 100) })
	b.Run("echo/n=1000", func(b *testing.B) { benchBroadcast(b, SchemeEcho, 1000) })
	b.Run("sample/n=100", func(b *testing.B) { benchBroadcast(b, SchemeSample, 100) })
	b.Run("sample/n=1000", func(b *testing.B) { benchBroadcast(b, SchemeSample, 1000) })
	b.Run("sample/n=10000", func(b *testing.B) { benchBroadcast(b, SchemeSample, 10000) })
}

// Live-path benchmarks: full consensus executions over real loopback TCP
// sockets, tracked by the CI bench-live lane next to the netxport loopback
// micro-benchmark. Each iteration stands up a fresh mesh, runs to decision,
// and tears it down -- mesh setup is deliberately on the measured path, as
// it is in any real deployment of the demo.

func benchLiveTCP(b *testing.B, p Protocol, n, k int, tcp TCPTuning) {
	b.Helper()
	inputs := make([]Value, n)
	for i := range inputs {
		inputs[i] = Value(i % 2)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		out, err := RunScenario(ctx, EngineTCP, Scenario{
			Protocol: p,
			N:        n,
			K:        k,
			Inputs:   inputs,
			Seed:     uint64(i) + 1,
			TCP:      tcp,
		})
		cancel()
		if err != nil {
			b.Fatal(err)
		}
		if !out.AllDecided || !out.Agreement {
			b.Fatalf("iteration %d: allDecided=%v agreement=%v", i, out.AllDecided, out.Agreement)
		}
	}
}

func BenchmarkLiveTCPFailStopN5(b *testing.B) {
	benchLiveTCP(b, ProtocolFailStop, 5, 2, TCPTuning{})
}

func BenchmarkLiveTCPMaliciousN7(b *testing.B) {
	benchLiveTCP(b, ProtocolMalicious, 7, 2, TCPTuning{})
}

func BenchmarkLiveTCPMaliciousN7Direct(b *testing.B) {
	benchLiveTCP(b, ProtocolMalicious, 7, 2, TCPTuning{NoCoalesce: true})
}

// benchLogThroughput runs the replicated log over real TCP at n=7 and
// reports committed ops/sec: 64 slots per iteration regardless of batch
// size, so the batch-1 and batch-16 variants do the same consensus work and
// the ops/sec ratio isolates what batching (amortizing a slot across many
// operations) and pipelining (overlapping slots in the window) buy.
func benchLogThroughput(b *testing.B, batch, window int) {
	b.Helper()
	const slots = 64
	ops := make([][]byte, slots*batch)
	for i := range ops {
		op := make([]byte, 16)
		binary.BigEndian.PutUint64(op, uint64(i))
		ops[i] = op
	}
	var total float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		rep, err := RunLog(ctx, LogOptions{
			Engine:   EngineTCP,
			N:        7,
			Seed:     uint64(i) + 1,
			Batch:    batch,
			Pipeline: window,
		}, ops)
		cancel()
		if err != nil {
			b.Fatal(err)
		}
		if rep.Ops != len(ops) {
			b.Fatalf("iteration %d committed %d/%d ops", i, rep.Ops, len(ops))
		}
		total += rep.OpsPerSec
	}
	b.StopTimer()
	b.ReportMetric(total/float64(b.N), "ops/sec")
}

func BenchmarkLogThroughput(b *testing.B) {
	b.Run("tcp-n7/batch1-win4", func(b *testing.B) { benchLogThroughput(b, 1, 4) })
	b.Run("tcp-n7/batch16-win1", func(b *testing.B) { benchLogThroughput(b, 16, 1) })
	b.Run("tcp-n7/batch16-win4", func(b *testing.B) { benchLogThroughput(b, 16, 4) })
}

// Analysis micro-benchmarks.

func BenchmarkAnalyzeFailStopExact(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeFailStop(150, 50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzeMaliciousExact(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeMalicious(150, 6, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMonteCarloAbsorption(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateFailStopAbsorption(300, 100, 100, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// Scaling benchmarks: engine cost as a function of n for both figures.

func BenchmarkScalingFigure1(b *testing.B) {
	for _, n := range []int{5, 9, 13, 17, 21} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchSimulate(b, ProtocolFailStop, n, (n-1)/2, SimOptions{})
		})
	}
}

func BenchmarkScalingFigure2(b *testing.B) {
	for _, n := range []int{4, 7, 10, 13} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchSimulate(b, ProtocolMalicious, n, (n-1)/3, SimOptions{})
		})
	}
}

func BenchmarkE11Ablations(b *testing.B) { benchExperiment(b, "E11") }

func BenchmarkE12Impersonation(b *testing.B) { benchExperiment(b, "E12") }
